package algclique

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/clique"
)

// ErrSessionClosed is returned by operations on a closed session.
var ErrSessionClosed = errors.New("algclique: session is closed")

// Clique is a reusable simulated congested clique for instances of one
// fixed size n: a session. It owns everything that is expensive to set up
// and identical across operations —
//
//   - the simulated network(s), reset and reused instead of rebuilt,
//     including their local-computation worker pools,
//   - the resolved engine plan (engine selection, bilinear scheme, and
//     padding decisions are computed once at construction),
//   - reusable row-matrix buffers for padding operands,
//
// and every algorithm in the package is a method on it. Construction
// options (engine, padding policy, workers) are fixed for the session's
// lifetime; per-operation options (seed, delta, round limit, context) are
// passed to each call. Methods may be called from multiple goroutines; the
// session serialises them, since a congested clique runs one algorithm at a
// time.
//
// The session keeps a cumulative ledger of every completed operation —
// Stats returns it, ResetStats clears it — so a pipeline's total
// communication cost (with per-operation phase breakdowns) is measured for
// free. Close releases the worker pools; the package-level one-shot
// functions are thin wrappers that build a session, run one operation, and
// close it.
type Clique struct {
	mu  sync.Mutex
	n   int
	cfg config

	nAny    int // clique size for semiring (never-padded) operations
	nRing   int // clique size for ring operations (scheme padding)
	ringErr error

	nets    map[int]*clique.Network
	bnet    *clique.BroadcastNetwork
	lpool   *clique.LocalPool
	matPool map[int][]*ccmm.RowMat[int64]
	scratch map[int]*ccmm.Scratch
	closed  bool

	ledger      []OpStats
	totalRounds int64
	totalWords  int64
}

// OpStats is one completed operation in a session's ledger.
type OpStats struct {
	// Op names the operation ("MatMul", "APSP", …).
	Op string
	Stats
}

// SessionStats is a session's cumulative communication ledger.
type SessionStats struct {
	// N is the instance size the session serves.
	N int
	// Rounds and Words total the cost of all operations since the last
	// ResetStats, including aborted ones (their partial cost was charged).
	Rounds int64
	Words  int64
	// Ops lists every operation in order, each with its full Stats
	// including the per-phase breakdown.
	Ops []OpStats
}

// NewClique builds a session simulating congested-clique algorithms on
// instances of size n ≥ 1. Engine resolution, bilinear-scheme selection,
// and padding decisions happen here, once; the session's networks and
// buffers are then reused by every operation.
func NewClique(n int, opts ...SessionOption) (*Clique, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o.apply(&cfg)
	}
	return newSession(n, cfg)
}

// newSession builds a session from an already-merged config; the one-shot
// wrappers use it to honour call options passed through the flat Option
// list.
func newSession(n int, cfg config) (*Clique, error) {
	nAny, err := cfg.paddedSize(n, anySize)
	if err != nil {
		return nil, err
	}
	s := &Clique{
		n:       n,
		cfg:     cfg,
		nAny:    nAny,
		nets:    make(map[int]*clique.Network),
		matPool: make(map[int][]*ccmm.RowMat[int64]),
		scratch: make(map[int]*ccmm.Scratch),
	}
	s.nRing, s.ringErr = cfg.paddedSize(n, ringSize)
	return s, nil
}

// oneShot builds the throwaway session behind a package-level function.
func oneShot(n int, opts []Option) (*Clique, error) {
	return newSession(n, newConfig(opts))
}

// N returns the instance size the session serves.
func (s *Clique) N() int { return s.n }

// Engine returns the session's engine selection.
func (s *Clique) Engine() Engine { return s.cfg.engine }

// Close releases the session's simulator resources (worker pools). The
// ledger remains readable; further operations return ErrSessionClosed.
// Close is idempotent.
func (s *Clique) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	for _, net := range s.nets {
		net.Close()
	}
	if s.lpool != nil {
		s.lpool.Close()
	}
	return nil
}

// Trim releases the session's cached working set — engine scratch pools,
// simulator queue and mailbox capacity, and pooled operand buffers — while
// keeping the session fully usable (everything rebuilds lazily on the next
// operation). Long-lived sessions whose workload has shrunk call it so one
// past peak does not pin its footprint forever; the per-operation Reset
// already releases individual buffers above a high-water threshold, Trim
// is the explicit full release.
//
// Trim is safe to call concurrently with in-flight operations — including
// from a pool's eviction goroutine. Operations hold the session mutex for
// their whole run, so Trim simply waits for the current operation to
// finish and releases between operations; it can never pull scratch or
// queue capacity out from under a running product.
func (s *Clique) Trim() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, net := range s.nets {
		net.Trim()
	}
	for _, sc := range s.scratch {
		sc.Trim()
	}
	for n := range s.matPool {
		delete(s.matPool, n)
	}
}

// Stats returns a copy of the session's cumulative ledger (deep enough
// that mutating the snapshot, including phase entries, cannot corrupt the
// session).
func (s *Clique) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := SessionStats{N: s.n, Rounds: s.totalRounds, Words: s.totalWords}
	out.Ops = make([]OpStats, len(s.ledger))
	for i, op := range s.ledger {
		out.Ops[i] = op
		out.Ops[i].Phases = append([]PhaseStat(nil), op.Phases...)
	}
	return out
}

// ResetStats clears the cumulative ledger.
func (s *Clique) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ledger = nil
	s.totalRounds, s.totalWords = 0, 0
}

// record appends a completed operation to the ledger (mu held). The phase
// slice is copied: the same Stats value is returned to the operation's
// caller, who is free to mutate it.
func (s *Clique) record(op string, st Stats) {
	st.Phases = append([]PhaseStat(nil), st.Phases...)
	s.ledger = append(s.ledger, OpStats{Op: op, Stats: st})
	s.totalRounds += st.Rounds
	s.totalWords += st.Words
}

// sizeFor maps an algorithm's size class to the session's padded clique
// size for it.
func (s *Clique) sizeFor(class sizeClass) (int, error) {
	if class == ringSize {
		if s.ringErr != nil {
			return 0, s.ringErr
		}
		return s.nRing, nil
	}
	return s.nAny, nil
}

// networkFor returns the session's persistent network of the given size,
// building it on first use (mu held).
func (s *Clique) networkFor(n int) *clique.Network {
	if net, ok := s.nets[n]; ok {
		return net
	}
	var opts []clique.Option
	if s.cfg.workers > 0 {
		opts = append(opts, clique.WithWorkers(s.cfg.workers))
	}
	net := clique.New(n, opts...)
	s.nets[n] = net
	return net
}

// localPool returns the session's local-compute worker pool (mu held),
// built on first use. It is how broadcast-model runs — which have no
// unicast network and hence no ForEach pool — fan local kernels out;
// WithWorkers governs its size exactly as it governs the network pools, so
// one option rules all of a session's parallelism.
func (s *Clique) localPool() *clique.LocalPool {
	if s.lpool == nil {
		s.lpool = clique.NewLocalPool(s.cfg.workers)
	}
	return s.lpool
}

// scratchFor returns the session's persistent engine scratch for the given
// clique size, building it on first use (mu held). One scratch per size is
// enough: operations serialise, so a scratch is never shared by two
// in-flight products.
func (s *Clique) scratchFor(n int) *ccmm.Scratch {
	if sc, ok := s.scratch[n]; ok {
		return sc
	}
	sc := ccmm.NewScratch()
	s.scratch[n] = sc
	return sc
}

// getMat borrows an n×n row-matrix buffer from the pool (mu held). The
// contents are stale; callers must overwrite every entry (padMatInto does).
func (s *Clique) getMat(n int) *ccmm.RowMat[int64] {
	free := s.matPool[n]
	if k := len(free); k > 0 {
		m := free[k-1]
		s.matPool[n] = free[:k-1]
		return m
	}
	return ccmm.NewRowMat[int64](n)
}

// maxPooledMats bounds the per-size buffer pool: enough for the operands
// and results in flight during one operation. Engines allocate their
// results outside the pool, so without a cap a long-lived session would
// retain one surplus matrix per operation; beyond the cap buffers go to
// the GC instead.
const maxPooledMats = 4

// putMat returns a buffer to the pool, or drops it at capacity (mu held).
func (s *Clique) putMat(m *ccmm.RowMat[int64]) {
	n := m.N()
	if len(s.matPool[n]) < maxPooledMats {
		s.matPool[n] = append(s.matPool[n], m)
	}
}

// simNetwork is the accounting/abort surface shared by the unicast and
// broadcast simulators, which lets one run harness serve both.
type simNetwork interface {
	Stats() clique.Stats
	Reset()
	SetRoundLimit(limit int64)
	SetContext(ctx context.Context)
	SetTransport(t clique.Transport)
}

// opRun is the per-operation harness: it holds the session lock, the reset
// network, the merged per-call config, and the buffers borrowed for the
// run. begin acquires it; end (deferred) converts abort panics to errors,
// snapshots the operation's Stats, records the ledger entry, returns
// buffers, and releases the lock.
type opRun struct {
	s        *Clique
	op       string
	cfg      config
	sim      simNetwork
	net      *clique.Network          // non-nil for unicast runs
	bnet     *clique.BroadcastNetwork // non-nil for broadcast runs
	plan     *ccmm.Plan
	sc       *ccmm.Scratch // session-owned engine pools for this size
	n        int           // padded clique size for this run
	orig     int           // original instance size
	route    ccmm.Route    // density-aware routing decision, when one ran
	borrowed []*ccmm.RowMat[int64]

	fi        *clique.FaultInjector // armed fault injector, when a plan is set
	attempts  int                   // product attempts (retry loop)
	certified bool                  // result passed certification
}

// acquire locks the session and merges the per-call config; on error the
// lock is released.
func (s *Clique) acquire(orig int, opts []CallOption) (config, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return config{}, ErrSessionClosed
	}
	if orig != s.n {
		s.mu.Unlock()
		return config{}, fmt.Errorf("algclique: instance size %d on a session for n=%d: %w", orig, s.n, ccmm.ErrSize)
	}
	cfg := s.cfg
	for _, o := range opts {
		o.apply(&cfg)
	}
	return cfg, nil
}

// beginAt starts an operation on a clique of the given (padded) size.
func (s *Clique) beginAt(op string, orig, n int, opts []CallOption) (*opRun, error) {
	cfg, err := s.acquire(orig, opts)
	if err != nil {
		return nil, err
	}
	return s.newRun(op, cfg, orig, n), nil
}

// newRun builds and arms the per-operation harness (mu held).
func (s *Clique) newRun(op string, cfg config, orig, n int) *opRun {
	net := s.networkFor(n)
	r := &opRun{s: s, op: op, cfg: cfg, sim: net, net: net,
		plan: ccmm.PlanSparse(n, cfg.engine.internal(), cfg.sparseThreshold),
		sc:   s.scratchFor(n),
		n:    n, orig: orig}
	r.arm()
	return r
}

// arm resets the run's simulator and applies the per-call abort settings
// and the session's transport (direct by default; WithWireTransport and
// WithTransportVerification override). Unicast runs also arm the
// session's sparse threshold on the network, so every matrix product the
// operation performs — including ones graph algorithms resolve internally
// via PlanFor — honours WithSparseThreshold.
func (r *opRun) arm() {
	r.sim.Reset()
	r.sim.SetRoundLimit(r.cfg.roundLimit)
	r.sim.SetContext(r.cfg.ctx)
	r.sim.SetTransport(r.cfg.transport)
	if r.net != nil {
		r.net.SetSparseThreshold(r.cfg.sparseThreshold)
		r.armFault(r.cfg)
	}
}

// armFault builds and arms the operation's fault injector from its merged
// config — or disarms a stale one: the injector survives Reset like the
// round limit, so every operation must set it, including to nil (a panic
// escaping a faulted run skips end's disarm, and the next operation must
// not inherit its chaos).
func (r *opRun) armFault(cfg config) {
	r.fi = nil
	if cfg.fault != nil {
		r.fi = clique.NewFaultInjector(*cfg.fault, ccmm.PayloadCorrupters...)
	}
	r.net.SetFaultInjector(r.fi)
}

// begin starts an operation whose clique size follows from the algorithm's
// size class. The closed/size checks in acquire take precedence over the
// deferred ring-padding error.
func (s *Clique) begin(op string, orig int, class sizeClass, opts []CallOption) (*opRun, error) {
	cfg, err := s.acquire(orig, opts)
	if err != nil {
		return nil, err
	}
	n, err := s.sizeFor(class)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	return s.newRun(op, cfg, orig, n), nil
}

// end completes the operation; it must be deferred immediately after a
// successful begin, with the method's named stats and error results.
func (r *opRun) end(stats *Stats, err *error) {
	s := r.s
	if rec := recover(); rec != nil {
		e, ok := abortError(rec)
		if !ok {
			s.mu.Unlock()
			panic(rec)
		}
		*err = e
	}
	*stats = statsFrom(r.sim.Stats(), r.orig)
	stats.Routing = r.route.Decision()
	stats.Attempts = r.attempts
	stats.Certified = r.certified
	// Taint backstop for operations without their own retry loop (graph
	// algorithms, attempts == 0): a run that "succeeded" while data faults
	// fired, with nothing vouching for the result, must not return a
	// silently wrong answer. Products police themselves per attempt in
	// runProduct (a retried attempt may be clean while the cumulative
	// ledger is not).
	if *err == nil && r.attempts == 0 && r.fi != nil && dataFaults(r.fi.Stats()) > 0 {
		*err = &clique.FaultError{Kind: clique.FaultDisrupt, Node: -1,
			Round: stats.Rounds, Injected: r.fi.Stats()}
	}
	r.sim.SetContext(nil)
	r.sim.SetRoundLimit(0)
	if r.net != nil {
		r.net.SetFaultInjector(nil)
	}
	for _, m := range r.borrowed {
		s.putMat(m)
	}
	r.borrowed = nil
	s.record(r.op, *stats)
	s.mu.Unlock()
}

// borrow pads rows into a pooled n×n distributed matrix, filling missing
// entries with the algebra's zero; the buffer returns to the pool when the
// operation ends.
func (r *opRun) borrow(rows Mat, zero int64) *ccmm.RowMat[int64] {
	m := r.s.getMat(r.n)
	padMatInto(m, rows, zero)
	r.borrowed = append(r.borrowed, m)
	return m
}

// recycle hands an engine-produced matrix (whose contents have been copied
// out) to the pool when the operation ends.
func (r *opRun) recycle(m *ccmm.RowMat[int64]) {
	if m != nil && m.N() == r.n {
		r.borrowed = append(r.borrowed, m)
	}
}

// engine returns the run's requested engine for the application-layer
// algorithms (their inner products resolve through the memoised plan
// cache).
func (r *opRun) engine() ccmm.Engine { return r.cfg.engine.internal() }

// beginBroadcast starts an operation on the session's broadcast-model
// network (built on first use; broadcast algorithms never pad).
func (s *Clique) beginBroadcast(op string, orig int, opts []CallOption) (*opRun, error) {
	cfg, err := s.acquire(orig, opts)
	if err != nil {
		return nil, err
	}
	if cfg.fault != nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("algclique: fault injection requires the unicast simulator; %s runs on the broadcast model", op)
	}
	if s.bnet == nil {
		s.bnet = clique.NewBroadcast(s.n)
	}
	r := &opRun{s: s, op: op, cfg: cfg, sim: s.bnet, bnet: s.bnet, n: s.n, orig: orig}
	r.arm()
	return r, nil
}

// BatchItem is one product in a batched session call. Opts are per-item
// call options merged over the batch-level options — a serving layer
// coalescing independent requests into one batch threads each request's
// cancellation context (WithContext) and round budget through here while
// the batch shares one resolved plan and one armed network.
type BatchItem struct {
	A, B Mat
	Opts []CallOption
}

// batchSpec ties a batched entry point to its product kind: the ledger
// name, the clique-size class, the padding zero of its algebra, the
// routed plan product it executes, and the certification check matching
// its algebra (Freivalds for rings, spot-checks for semirings).
type batchSpec struct {
	op      string
	class   sizeClass
	zero    int64
	mul     func(r *opRun, a, b *ccmm.RowMat[int64]) (*ccmm.RowMat[int64], ccmm.Route, error)
	certify func(r *opRun, a, b, c *ccmm.RowMat[int64], k int, seed uint64) (bool, error)
}

var matMulSpec = batchSpec{op: "MatMul", class: ringSize, zero: 0,
	mul: func(r *opRun, a, b *ccmm.RowMat[int64]) (*ccmm.RowMat[int64], ccmm.Route, error) {
		return r.plan.MulIntRouted(r.net, r.sc, a, b)
	},
	certify: func(r *opRun, a, b, c *ccmm.RowMat[int64], k int, seed uint64) (bool, error) {
		return ccmm.CertifyIntProduct(r.net, a, b, c, k, seed)
	}}

var matMulBoolSpec = batchSpec{op: "MatMulBool", class: ringSize, zero: 0,
	mul: func(r *opRun, a, b *ccmm.RowMat[int64]) (*ccmm.RowMat[int64], ccmm.Route, error) {
		return r.plan.MulBoolRouted(r.net, r.sc, a, b)
	},
	certify: func(r *opRun, a, b, c *ccmm.RowMat[int64], k int, seed uint64) (bool, error) {
		return ccmm.CertifyBoolProduct(r.net, a, b, c, k, seed)
	}}

var distanceProductSpec = batchSpec{op: "DistanceProduct", class: anySize, zero: Inf,
	mul: func(r *opRun, a, b *ccmm.RowMat[int64]) (*ccmm.RowMat[int64], ccmm.Route, error) {
		return r.plan.MulMinPlusRouted(r.net, r.sc, a, b)
	},
	certify: func(r *opRun, a, b, c *ccmm.RowMat[int64], k int, seed uint64) (bool, error) {
		return ccmm.CertifyMinPlusProduct(r.net, a, b, c, k, seed)
	}}

// runProduct executes one product under the fault plane's contract: run,
// certify when armed, and retry — fresh fault draws, fresh probe seed,
// pending traffic dropped, operands re-padded — while the budget lasts.
// It returns the truncated product or a typed error; a completed product
// that data faults touched is only returned when certification vouched
// for it.
func (r *opRun) runProduct(cfg config, spec batchSpec, a, b Mat) (Mat, error) {
	retries := cfg.certifyRetries
	if retries < 0 {
		if cfg.certifyProbes > 0 {
			retries = DefaultCertificationRetries
		} else {
			retries = 0
		}
	}
	for attempt := 0; ; attempt++ {
		r.attempts = attempt + 1
		if attempt > 0 {
			// Clear any half-delivered traffic of the failed attempt; the
			// accounting (cumulative across attempts — retries are not
			// free) and the fault ledger stay.
			r.net.DropPending()
			if r.fi != nil {
				r.fi.Advance()
			}
		}
		var before int64
		if r.fi != nil {
			before = dataFaults(r.fi.Stats())
		}
		// Re-pad per attempt: cheap insurance that every attempt starts
		// from pristine operands whatever the previous one garbled.
		pa, pb := r.borrow(a, spec.zero), r.borrow(b, spec.zero)
		p, err := r.attemptProduct(spec, pa, pb, before)
		if err == nil && cfg.certifyProbes > 0 {
			ok, cerr := spec.certify(r, pa, pb, p, cfg.certifyProbes, certSeed(cfg.seed, attempt))
			switch {
			case cerr != nil:
				err = cerr
			case !ok:
				err = &CertificationError{Op: r.op, Attempts: attempt + 1,
					Probes: cfg.certifyProbes, Injected: r.faults()}
			default:
				r.certified = true
			}
		}
		if err == nil && !r.certified && r.fi != nil && dataFaults(r.fi.Stats()) > before {
			// The product completed, but data faults fired during the
			// attempt and nothing vouched for the result.
			err = &clique.FaultError{Kind: clique.FaultDisrupt, Node: -1,
				Round: r.net.Stats().Rounds, Injected: r.fi.Stats()}
		}
		if err == nil {
			prod := truncateRows(p, r.orig)
			r.recycle(p)
			return prod, nil
		}
		r.recycle(p)
		if attempt >= retries || !r.retryable(err, before) {
			return nil, err
		}
	}
}

// attemptProduct runs the spec's product once, converting a raw panic that
// is collateral damage of injected data faults (a decode or kernel
// tripping over garbled bytes) into a typed *FaultError. Injected panics
// (FaultPlan.PanicAtFlush) and genuine bugs propagate raw — the former
// exists precisely to exercise the recovery layers above.
func (r *opRun) attemptProduct(spec batchSpec, pa, pb *ccmm.RowMat[int64], before int64) (p *ccmm.RowMat[int64], err error) {
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		if e, ok := clique.AsAbort(rec); ok {
			err = e
			return
		}
		if r.fi != nil && !r.fi.PanicInjected() && dataFaults(r.fi.Stats()) > before {
			err = &clique.FaultError{Kind: clique.FaultDisrupt, Node: -1,
				Round: r.net.Stats().Rounds, Injected: r.fi.Stats()}
			return
		}
		panic(rec)
	}()
	p, route, err := spec.mul(r, pa, pb)
	r.route = route
	return p, err
}

// retryable decides whether a failed attempt is worth re-running: only
// failures injected faults explain. Round budgets and cancellations are
// global to the operation, a crashed node stays crashed on the same
// network, and an engine error on a fault-free attempt would just
// reproduce.
func (r *opRun) retryable(err error, before int64) bool {
	if r.fi == nil || r.fi.Crashed() {
		return false
	}
	var rl *clique.RoundLimitError
	var cancel *clique.CanceledError
	if errors.As(err, &rl) || errors.As(err, &cancel) {
		return false
	}
	var fe *clique.FaultError
	if errors.As(err, &fe) {
		return fe.Kind != clique.FaultCrash
	}
	var ce *CertificationError
	if errors.As(err, &ce) {
		return true
	}
	// Any other error (transport divergence, a sparse bound failing) is
	// fault-induced only if faults actually fired during the attempt.
	return dataFaults(r.fi.Stats()) > before
}

// faults snapshots the run's fault ledger (zero when disarmed).
func (r *opRun) faults() clique.FaultStats {
	if r.fi == nil {
		return clique.FaultStats{}
	}
	return r.fi.Stats()
}

// beginBatch is begin for a whole batch: one lock acquisition, one merged
// config, one memoised plan/scratch resolution, and one arming of the
// session-scoped network settings (transport, sparse threshold) that every
// item shares.
func (s *Clique) beginBatch(spec batchSpec, opts []CallOption) (*opRun, error) {
	cfg, err := s.acquire(s.n, opts)
	if err != nil {
		return nil, err
	}
	n, err := s.sizeFor(spec.class)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	return s.newRun(spec.op, cfg, s.n, n), nil
}

// endBatch releases the batch harness. Per-item aborts were already
// converted by runItem; anything else propagates once the lock is safely
// released.
func (r *opRun) endBatch() {
	s := r.s
	if rec := recover(); rec != nil {
		s.mu.Unlock()
		panic(rec)
	}
	r.sim.SetContext(nil)
	r.sim.SetRoundLimit(0)
	if r.net != nil {
		r.net.SetFaultInjector(nil)
	}
	s.mu.Unlock()
}

// runItem executes one product of a batch on the already-armed run: the
// simulator is reset (warm capacity kept) so the item gets its own Stats
// and ledger entry, and only the per-call abort settings — the item's
// context and round limit — are re-armed. Plan, scratch, transport, and
// sparse threshold carry over from beginBatch.
func (r *opRun) runItem(spec batchSpec, it *BatchItem) (prod Mat, st Stats, err error) {
	orig, err := squareSize(it.A, it.B)
	if err != nil {
		return nil, Stats{}, err
	}
	if orig != r.orig {
		return nil, Stats{}, fmt.Errorf("algclique: instance size %d on a session for n=%d: %w", orig, r.orig, ccmm.ErrSize)
	}
	cfg := r.cfg
	for _, o := range it.Opts {
		o.apply(&cfg)
	}
	r.sim.Reset()
	r.sim.SetRoundLimit(cfg.roundLimit)
	r.sim.SetContext(cfg.ctx)
	r.armFault(cfg) // per-item injector: each item gets a fresh fault ledger
	r.route = ccmm.Route{}
	r.attempts, r.certified = 0, false
	defer func() {
		if rec := recover(); rec != nil {
			e, ok := abortError(rec)
			if !ok {
				panic(rec) // endBatch unlocks and re-raises
			}
			err = e
		}
		st = statsFrom(r.sim.Stats(), r.orig)
		st.Routing = r.route.Decision()
		st.Attempts = r.attempts
		st.Certified = r.certified
		for _, m := range r.borrowed {
			r.s.putMat(m)
		}
		r.borrowed = r.borrowed[:0]
		r.s.record(r.op, st)
	}()
	prod, err = r.runProduct(cfg, spec, it.A, it.B)
	return prod, st, err
}

// runBatch runs every item of a batch inside one per-operation harness,
// amortising lock acquisition, plan and scratch resolution, and network
// arming across the whole batch; it stops at the first error, returning
// the already-computed results alongside it.
func (s *Clique) runBatch(spec batchSpec, items []BatchItem, opts []CallOption) ([]Mat, []Stats, error) {
	if len(items) == 0 {
		return nil, nil, nil
	}
	r, err := s.beginBatch(spec, opts)
	if err != nil {
		return nil, nil, err
	}
	defer r.endBatch()
	prods := make([]Mat, 0, len(items))
	stats := make([]Stats, 0, len(items))
	for i := range items {
		p, st, err := r.runItem(spec, &items[i])
		if err != nil {
			return prods, stats, err
		}
		prods = append(prods, p)
		stats = append(stats, st)
	}
	return prods, stats, nil
}

func pairItems(pairs [][2]Mat) []BatchItem {
	items := make([]BatchItem, len(pairs))
	for i, p := range pairs {
		items[i] = BatchItem{A: p[0], B: p[1]}
	}
	return items
}

// MatMulBatch runs a batch of integer matrix products on the session. The
// plan, scratch pools, and session-scoped network configuration are
// resolved and armed once for the whole batch (not per pair); each item
// still gets its own Stats, ledger entry, and per-item call options. It
// stops at the first error: the returned slices hold the results of the
// items before the failing one (whose index is len of the result slice).
func (s *Clique) MatMulBatch(items []BatchItem, opts ...CallOption) ([]Mat, []Stats, error) {
	return s.runBatch(matMulSpec, items, opts)
}

// MatMulBoolBatch is MatMulBatch over the Boolean semiring (see
// MatMulBool).
func (s *Clique) MatMulBoolBatch(items []BatchItem, opts ...CallOption) ([]Mat, []Stats, error) {
	return s.runBatch(matMulBoolSpec, items, opts)
}

// DistanceProductBatch is MatMulBatch for min-plus products (see
// DistanceProduct).
func (s *Clique) DistanceProductBatch(items []BatchItem, opts ...CallOption) ([]Mat, []Stats, error) {
	if s.cfg.engine == Fast {
		return nil, nil, fmt.Errorf("algclique: min-plus is not a ring; use Auto, Semiring3D or Naive: %w", ccmm.ErrSize)
	}
	return s.runBatch(distanceProductSpec, items, opts)
}

// MatMuls runs a batch of integer matrix products on the session,
// amortising setup across the whole batch. It returns one product and one
// Stats per pair, stopping at the first error (already-computed results are
// returned alongside it).
func (s *Clique) MatMuls(pairs [][2]Mat, opts ...CallOption) ([]Mat, []Stats, error) {
	return s.MatMulBatch(pairItems(pairs), opts...)
}

// DistanceProducts runs a batch of min-plus products on the session,
// amortising setup across the whole batch. It returns one product and one
// Stats per pair, stopping at the first error (already-computed results are
// returned alongside it).
func (s *Clique) DistanceProducts(pairs [][2]Mat, opts ...CallOption) ([]Mat, []Stats, error) {
	return s.DistanceProductBatch(pairItems(pairs), opts...)
}
