package algclique

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/clique"
)

// ErrSessionClosed is returned by operations on a closed session.
var ErrSessionClosed = errors.New("algclique: session is closed")

// Clique is a reusable simulated congested clique for instances of one
// fixed size n: a session. It owns everything that is expensive to set up
// and identical across operations —
//
//   - the simulated network(s), reset and reused instead of rebuilt,
//     including their local-computation worker pools,
//   - the resolved engine plan (engine selection, bilinear scheme, and
//     padding decisions are computed once at construction),
//   - reusable row-matrix buffers for padding operands,
//
// and every algorithm in the package is a method on it. Construction
// options (engine, padding policy, workers) are fixed for the session's
// lifetime; per-operation options (seed, delta, round limit, context) are
// passed to each call. Methods may be called from multiple goroutines; the
// session serialises them, since a congested clique runs one algorithm at a
// time.
//
// The session keeps a cumulative ledger of every completed operation —
// Stats returns it, ResetStats clears it — so a pipeline's total
// communication cost (with per-operation phase breakdowns) is measured for
// free. Close releases the worker pools; the package-level one-shot
// functions are thin wrappers that build a session, run one operation, and
// close it.
type Clique struct {
	mu  sync.Mutex
	n   int
	cfg config

	nAny    int // clique size for semiring (never-padded) operations
	nRing   int // clique size for ring operations (scheme padding)
	ringErr error

	nets    map[int]*clique.Network
	bnet    *clique.BroadcastNetwork
	matPool map[int][]*ccmm.RowMat[int64]
	scratch map[int]*ccmm.Scratch
	closed  bool

	ledger      []OpStats
	totalRounds int64
	totalWords  int64
}

// OpStats is one completed operation in a session's ledger.
type OpStats struct {
	// Op names the operation ("MatMul", "APSP", …).
	Op string
	Stats
}

// SessionStats is a session's cumulative communication ledger.
type SessionStats struct {
	// N is the instance size the session serves.
	N int
	// Rounds and Words total the cost of all operations since the last
	// ResetStats, including aborted ones (their partial cost was charged).
	Rounds int64
	Words  int64
	// Ops lists every operation in order, each with its full Stats
	// including the per-phase breakdown.
	Ops []OpStats
}

// NewClique builds a session simulating congested-clique algorithms on
// instances of size n ≥ 1. Engine resolution, bilinear-scheme selection,
// and padding decisions happen here, once; the session's networks and
// buffers are then reused by every operation.
func NewClique(n int, opts ...SessionOption) (*Clique, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o.apply(&cfg)
	}
	return newSession(n, cfg)
}

// newSession builds a session from an already-merged config; the one-shot
// wrappers use it to honour call options passed through the flat Option
// list.
func newSession(n int, cfg config) (*Clique, error) {
	nAny, err := cfg.paddedSize(n, anySize)
	if err != nil {
		return nil, err
	}
	s := &Clique{
		n:       n,
		cfg:     cfg,
		nAny:    nAny,
		nets:    make(map[int]*clique.Network),
		matPool: make(map[int][]*ccmm.RowMat[int64]),
		scratch: make(map[int]*ccmm.Scratch),
	}
	s.nRing, s.ringErr = cfg.paddedSize(n, ringSize)
	return s, nil
}

// oneShot builds the throwaway session behind a package-level function.
func oneShot(n int, opts []Option) (*Clique, error) {
	return newSession(n, newConfig(opts))
}

// N returns the instance size the session serves.
func (s *Clique) N() int { return s.n }

// Engine returns the session's engine selection.
func (s *Clique) Engine() Engine { return s.cfg.engine }

// Close releases the session's simulator resources (worker pools). The
// ledger remains readable; further operations return ErrSessionClosed.
// Close is idempotent.
func (s *Clique) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	for _, net := range s.nets {
		net.Close()
	}
	return nil
}

// Trim releases the session's cached working set — engine scratch pools,
// simulator queue and mailbox capacity, and pooled operand buffers — while
// keeping the session fully usable (everything rebuilds lazily on the next
// operation). Long-lived sessions whose workload has shrunk call it so one
// past peak does not pin its footprint forever; the per-operation Reset
// already releases individual buffers above a high-water threshold, Trim
// is the explicit full release.
func (s *Clique) Trim() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, net := range s.nets {
		net.Trim()
	}
	for _, sc := range s.scratch {
		sc.Trim()
	}
	for n := range s.matPool {
		delete(s.matPool, n)
	}
}

// Stats returns a copy of the session's cumulative ledger (deep enough
// that mutating the snapshot, including phase entries, cannot corrupt the
// session).
func (s *Clique) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := SessionStats{N: s.n, Rounds: s.totalRounds, Words: s.totalWords}
	out.Ops = make([]OpStats, len(s.ledger))
	for i, op := range s.ledger {
		out.Ops[i] = op
		out.Ops[i].Phases = append([]PhaseStat(nil), op.Phases...)
	}
	return out
}

// ResetStats clears the cumulative ledger.
func (s *Clique) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ledger = nil
	s.totalRounds, s.totalWords = 0, 0
}

// record appends a completed operation to the ledger (mu held). The phase
// slice is copied: the same Stats value is returned to the operation's
// caller, who is free to mutate it.
func (s *Clique) record(op string, st Stats) {
	st.Phases = append([]PhaseStat(nil), st.Phases...)
	s.ledger = append(s.ledger, OpStats{Op: op, Stats: st})
	s.totalRounds += st.Rounds
	s.totalWords += st.Words
}

// sizeFor maps an algorithm's size class to the session's padded clique
// size for it.
func (s *Clique) sizeFor(class sizeClass) (int, error) {
	if class == ringSize {
		if s.ringErr != nil {
			return 0, s.ringErr
		}
		return s.nRing, nil
	}
	return s.nAny, nil
}

// networkFor returns the session's persistent network of the given size,
// building it on first use (mu held).
func (s *Clique) networkFor(n int) *clique.Network {
	if net, ok := s.nets[n]; ok {
		return net
	}
	var opts []clique.Option
	if s.cfg.workers > 0 {
		opts = append(opts, clique.WithWorkers(s.cfg.workers))
	}
	net := clique.New(n, opts...)
	s.nets[n] = net
	return net
}

// scratchFor returns the session's persistent engine scratch for the given
// clique size, building it on first use (mu held). One scratch per size is
// enough: operations serialise, so a scratch is never shared by two
// in-flight products.
func (s *Clique) scratchFor(n int) *ccmm.Scratch {
	if sc, ok := s.scratch[n]; ok {
		return sc
	}
	sc := ccmm.NewScratch()
	s.scratch[n] = sc
	return sc
}

// getMat borrows an n×n row-matrix buffer from the pool (mu held). The
// contents are stale; callers must overwrite every entry (padMatInto does).
func (s *Clique) getMat(n int) *ccmm.RowMat[int64] {
	free := s.matPool[n]
	if k := len(free); k > 0 {
		m := free[k-1]
		s.matPool[n] = free[:k-1]
		return m
	}
	return ccmm.NewRowMat[int64](n)
}

// maxPooledMats bounds the per-size buffer pool: enough for the operands
// and results in flight during one operation. Engines allocate their
// results outside the pool, so without a cap a long-lived session would
// retain one surplus matrix per operation; beyond the cap buffers go to
// the GC instead.
const maxPooledMats = 4

// putMat returns a buffer to the pool, or drops it at capacity (mu held).
func (s *Clique) putMat(m *ccmm.RowMat[int64]) {
	n := m.N()
	if len(s.matPool[n]) < maxPooledMats {
		s.matPool[n] = append(s.matPool[n], m)
	}
}

// simNetwork is the accounting/abort surface shared by the unicast and
// broadcast simulators, which lets one run harness serve both.
type simNetwork interface {
	Stats() clique.Stats
	Reset()
	SetRoundLimit(limit int64)
	SetContext(ctx context.Context)
	SetTransport(t clique.Transport)
}

// opRun is the per-operation harness: it holds the session lock, the reset
// network, the merged per-call config, and the buffers borrowed for the
// run. begin acquires it; end (deferred) converts abort panics to errors,
// snapshots the operation's Stats, records the ledger entry, returns
// buffers, and releases the lock.
type opRun struct {
	s        *Clique
	op       string
	cfg      config
	sim      simNetwork
	net      *clique.Network          // non-nil for unicast runs
	bnet     *clique.BroadcastNetwork // non-nil for broadcast runs
	plan     *ccmm.Plan
	sc       *ccmm.Scratch // session-owned engine pools for this size
	n        int           // padded clique size for this run
	orig     int           // original instance size
	route    ccmm.Route    // density-aware routing decision, when one ran
	borrowed []*ccmm.RowMat[int64]
}

// acquire locks the session and merges the per-call config; on error the
// lock is released.
func (s *Clique) acquire(orig int, opts []CallOption) (config, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return config{}, ErrSessionClosed
	}
	if orig != s.n {
		s.mu.Unlock()
		return config{}, fmt.Errorf("algclique: instance size %d on a session for n=%d: %w", orig, s.n, ccmm.ErrSize)
	}
	cfg := s.cfg
	for _, o := range opts {
		o.apply(&cfg)
	}
	return cfg, nil
}

// beginAt starts an operation on a clique of the given (padded) size.
func (s *Clique) beginAt(op string, orig, n int, opts []CallOption) (*opRun, error) {
	cfg, err := s.acquire(orig, opts)
	if err != nil {
		return nil, err
	}
	return s.newRun(op, cfg, orig, n), nil
}

// newRun builds and arms the per-operation harness (mu held).
func (s *Clique) newRun(op string, cfg config, orig, n int) *opRun {
	net := s.networkFor(n)
	r := &opRun{s: s, op: op, cfg: cfg, sim: net, net: net,
		plan: ccmm.PlanSparse(n, cfg.engine.internal(), cfg.sparseThreshold),
		sc:   s.scratchFor(n),
		n:    n, orig: orig}
	r.arm()
	return r
}

// arm resets the run's simulator and applies the per-call abort settings
// and the session's transport (direct by default; WithWireTransport and
// WithTransportVerification override). Unicast runs also arm the
// session's sparse threshold on the network, so every matrix product the
// operation performs — including ones graph algorithms resolve internally
// via PlanFor — honours WithSparseThreshold.
func (r *opRun) arm() {
	r.sim.Reset()
	r.sim.SetRoundLimit(r.cfg.roundLimit)
	r.sim.SetContext(r.cfg.ctx)
	r.sim.SetTransport(r.cfg.transport)
	if r.net != nil {
		r.net.SetSparseThreshold(r.cfg.sparseThreshold)
	}
}

// begin starts an operation whose clique size follows from the algorithm's
// size class. The closed/size checks in acquire take precedence over the
// deferred ring-padding error.
func (s *Clique) begin(op string, orig int, class sizeClass, opts []CallOption) (*opRun, error) {
	cfg, err := s.acquire(orig, opts)
	if err != nil {
		return nil, err
	}
	n, err := s.sizeFor(class)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	return s.newRun(op, cfg, orig, n), nil
}

// end completes the operation; it must be deferred immediately after a
// successful begin, with the method's named stats and error results.
func (r *opRun) end(stats *Stats, err *error) {
	s := r.s
	if rec := recover(); rec != nil {
		e, ok := abortError(rec)
		if !ok {
			s.mu.Unlock()
			panic(rec)
		}
		*err = e
	}
	*stats = statsFrom(r.sim.Stats(), r.orig)
	stats.Routing = r.route.Decision()
	r.sim.SetContext(nil)
	r.sim.SetRoundLimit(0)
	for _, m := range r.borrowed {
		s.putMat(m)
	}
	r.borrowed = nil
	s.record(r.op, *stats)
	s.mu.Unlock()
}

// borrow pads rows into a pooled n×n distributed matrix, filling missing
// entries with the algebra's zero; the buffer returns to the pool when the
// operation ends.
func (r *opRun) borrow(rows Mat, zero int64) *ccmm.RowMat[int64] {
	m := r.s.getMat(r.n)
	padMatInto(m, rows, zero)
	r.borrowed = append(r.borrowed, m)
	return m
}

// recycle hands an engine-produced matrix (whose contents have been copied
// out) to the pool when the operation ends.
func (r *opRun) recycle(m *ccmm.RowMat[int64]) {
	if m != nil && m.N() == r.n {
		r.borrowed = append(r.borrowed, m)
	}
}

// engine returns the run's requested engine for the application-layer
// algorithms (their inner products resolve through the memoised plan
// cache).
func (r *opRun) engine() ccmm.Engine { return r.cfg.engine.internal() }

// beginBroadcast starts an operation on the session's broadcast-model
// network (built on first use; broadcast algorithms never pad).
func (s *Clique) beginBroadcast(op string, orig int, opts []CallOption) (*opRun, error) {
	cfg, err := s.acquire(orig, opts)
	if err != nil {
		return nil, err
	}
	if s.bnet == nil {
		s.bnet = clique.NewBroadcast(s.n)
	}
	r := &opRun{s: s, op: op, cfg: cfg, sim: s.bnet, bnet: s.bnet, n: s.n, orig: orig}
	r.arm()
	return r, nil
}

// batch runs mul over every pair, amortising session setup across the
// whole batch; it stops at the first error, returning the already-computed
// results alongside it.
func (s *Clique) batch(pairs [][2]Mat, opts []CallOption,
	mul func(a, b Mat, opts ...CallOption) (Mat, Stats, error)) ([]Mat, []Stats, error) {
	prods := make([]Mat, 0, len(pairs))
	stats := make([]Stats, 0, len(pairs))
	for _, pair := range pairs {
		p, st, err := mul(pair[0], pair[1], opts...)
		if err != nil {
			return prods, stats, err
		}
		prods = append(prods, p)
		stats = append(stats, st)
	}
	return prods, stats, nil
}

// MatMuls runs a batch of integer matrix products on the session,
// amortising setup across the whole batch. It returns one product and one
// Stats per pair, stopping at the first error (already-computed results are
// returned alongside it).
func (s *Clique) MatMuls(pairs [][2]Mat, opts ...CallOption) ([]Mat, []Stats, error) {
	return s.batch(pairs, opts, s.MatMul)
}

// DistanceProducts runs a batch of min-plus products on the session,
// amortising setup across the whole batch. It returns one product and one
// Stats per pair, stopping at the first error (already-computed results are
// returned alongside it).
func (s *Clique) DistanceProducts(pairs [][2]Mat, opts ...CallOption) ([]Mat, []Stats, error) {
	return s.batch(pairs, opts, s.DistanceProduct)
}
