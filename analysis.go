package algclique

import (
	"github.com/algebraic-clique/algclique/internal/baseline"
)

// TransitiveClosure computes reachability: out[u][v] = 1 iff a (directed)
// path u→v exists or u = v, by ⌈log₂ n⌉ Boolean squarings of A ∨ I —
// O(n^ρ log n) rounds. This is the reachability step of Corollary 8,
// exposed on its own.
func (s *Clique) TransitiveClosure(g *Graph, opts ...CallOption) (reach Mat, stats Stats, err error) {
	r, err := s.begin("TransitiveClosure", g.N(), ringSize, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	defer r.end(&stats, &err)
	padded := padGraph(g, r.n)
	mat := r.s.getMat(r.n)
	r.borrowed = append(r.borrowed, mat)
	for v := 0; v < r.n; v++ {
		row := mat.Rows[v]
		for j := range row {
			row[j] = 0
		}
		row[v] = 1
		padded.Row(v).ForEach(func(u int) { row[u] = 1 })
	}
	cur := mat
	for iter := 0; 1<<iter < r.n; iter++ {
		next, merr := r.plan.MulBoolScratch(r.net, r.sc, cur, cur)
		if merr != nil {
			err = merr
			return
		}
		r.recycle(next)
		cur = next
	}
	reach = truncateRows(cur, r.orig)
	return
}

// TransitiveClosure is the one-shot form of Clique.TransitiveClosure.
func TransitiveClosure(g *Graph, opts ...Option) (Mat, Stats, error) {
	s, err := oneShot(g.N(), opts)
	if err != nil {
		return nil, Stats{}, err
	}
	defer s.Close()
	return s.TransitiveClosure(g)
}

// Diameter returns the unweighted diameter (the largest finite pairwise
// distance) of an undirected graph via Seidel APSP, and whether the graph
// is connected. For an edgeless or single-node graph the diameter is 0.
func (s *Clique) Diameter(g *Graph, opts ...CallOption) (diam int64, connected bool, stats Stats, err error) {
	res, stats, err := s.apspUnweighted("Diameter", g, opts)
	if err != nil {
		return 0, false, stats, err
	}
	connected = true
	for u := range res.Dist {
		for v := range res.Dist[u] {
			d := res.Dist[u][v]
			if IsInf(d) {
				connected = false
				continue
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam, connected, stats, nil
}

// Diameter is the one-shot form of Clique.Diameter.
func Diameter(g *Graph, opts ...Option) (int64, bool, Stats, error) {
	s, err := oneShot(g.N(), opts)
	if err != nil {
		return 0, false, Stats{}, err
	}
	defer s.Close()
	return s.Diameter(g)
}

// MatMulBroadcast multiplies integer matrices on the *broadcast* congested
// clique (each node sends one identical word to everyone per round), where
// Ω̃(n) rounds are necessary for matrix multiplication (§4, Corollary 24).
// Measured against MatMul it quantifies the unicast/broadcast separation
// the paper's lower-bound section discusses. It goes through the same
// option/stats machinery as every other entry point: round limits,
// cancellation contexts, and per-phase breakdowns all apply.
func (s *Clique) MatMulBroadcast(a, b Mat, opts ...CallOption) (prod Mat, stats Stats, err error) {
	orig, err := squareSize(a, b)
	if err != nil {
		return nil, Stats{}, err
	}
	r, err := s.beginBroadcast("MatMulBroadcast", orig, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	defer r.end(&stats, &err)
	p, merr := baseline.BroadcastMatMul(r.bnet, s.localPool(), r.borrow(a, 0), r.borrow(b, 0))
	if merr != nil {
		err = merr
		return
	}
	prod = truncateRows(p, orig)
	return
}

// MatMulBroadcast is the one-shot form of Clique.MatMulBroadcast.
func MatMulBroadcast(a, b Mat, opts ...Option) (Mat, Stats, error) {
	n := len(a)
	s, err := oneShot(n, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	defer s.Close()
	return s.MatMulBroadcast(a, b)
}
