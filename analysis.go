package algclique

import (
	"github.com/algebraic-clique/algclique/internal/baseline"
	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/clique"
)

// TransitiveClosure computes reachability: out[u][v] = 1 iff a (directed)
// path u→v exists or u = v, by ⌈log₂ n⌉ Boolean squarings of A ∨ I —
// O(n^ρ log n) rounds. This is the reachability step of Corollary 8,
// exposed on its own.
func TransitiveClosure(g *Graph, opts ...Option) (reach [][]int64, stats Stats, err error) {
	defer captureRoundLimit(&err)
	c := newConfig(opts)
	n, err := c.paddedSize(g.N(), ringSize)
	if err != nil {
		return nil, Stats{}, err
	}
	net := c.network(n)
	padded := padGraph(g, n)
	mat := ccmm.NewRowMat[int64](n)
	for v := 0; v < n; v++ {
		row := mat.Rows[v]
		row[v] = 1
		padded.Row(v).ForEach(func(u int) { row[u] = 1 })
	}
	for iter := 0; 1<<iter < n; iter++ {
		mat, err = ccmm.MulBool(net, c.engine.internal(), mat, mat)
		if err != nil {
			return nil, statsOf(net, g.N()), err
		}
	}
	return truncateRows(mat, g.N()), statsOf(net, g.N()), nil
}

// Diameter returns the unweighted diameter (the largest finite pairwise
// distance) of an undirected graph via Seidel APSP, and whether the graph
// is connected. For an edgeless or single-node graph the diameter is 0.
func Diameter(g *Graph, opts ...Option) (diam int64, connected bool, stats Stats, err error) {
	res, stats, err := APSPUnweighted(g, opts...)
	if err != nil {
		return 0, false, stats, err
	}
	connected = true
	for u := range res.Dist {
		for v := range res.Dist[u] {
			d := res.Dist[u][v]
			if IsInf(d) {
				connected = false
				continue
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam, connected, stats, nil
}

// MatMulBroadcast multiplies integer matrices on the *broadcast* congested
// clique (each node sends one identical word to everyone per round), where
// Ω̃(n) rounds are necessary for matrix multiplication (§4, Corollary 24).
// Measured against MatMul it quantifies the unicast/broadcast separation
// the paper's lower-bound section discusses.
func MatMulBroadcast(a, b [][]int64) ([][]int64, Stats, error) {
	n, err := squareSize(a, b)
	if err != nil {
		return nil, Stats{}, err
	}
	bnet := clique.NewBroadcast(n)
	p, err := baseline.BroadcastMatMul(bnet, padMat(a, n, 0), padMat(b, n, 0))
	if err != nil {
		return nil, Stats{}, err
	}
	stats := Stats{N: n, Rounds: bnet.Rounds(), Words: bnet.Words()}
	return truncateRows(p, n), stats, nil
}
