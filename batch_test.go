package algclique_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	cc "github.com/algebraic-clique/algclique"
	"github.com/algebraic-clique/algclique/internal/clique"
)

func batchPairs(n, k int) [][2]cc.Mat {
	pairs := make([][2]cc.Mat, k)
	for i := range pairs {
		pairs[i] = [2]cc.Mat{sessionTestMat(n, int64(100+2*i)), sessionTestMat(n, int64(101+2*i))}
	}
	return pairs
}

// TestBatchMatchesSingleCalls pins the batch entry points to the
// pair-by-pair results: amortising plan/scratch/arming across the batch
// must not change a single product or its charged stats.
func TestBatchMatchesSingleCalls(t *testing.T) {
	const n, k = 16, 4
	pairs := batchPairs(n, k)

	single, err := cc.NewClique(n, cc.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	batched, err := cc.NewClique(n, cc.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer batched.Close()

	for name, run := range map[string]struct {
		one   func(a, b cc.Mat) (cc.Mat, cc.Stats, error)
		batch func(pairs [][2]cc.Mat) ([]cc.Mat, []cc.Stats, error)
	}{
		"MatMuls": {
			one:   func(a, b cc.Mat) (cc.Mat, cc.Stats, error) { return single.MatMul(a, b) },
			batch: func(p [][2]cc.Mat) ([]cc.Mat, []cc.Stats, error) { return batched.MatMuls(p) },
		},
		"DistanceProducts": {
			one:   func(a, b cc.Mat) (cc.Mat, cc.Stats, error) { return single.DistanceProduct(a, b) },
			batch: func(p [][2]cc.Mat) ([]cc.Mat, []cc.Stats, error) { return batched.DistanceProducts(p) },
		},
	} {
		prods, stats, err := run.batch(pairs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(prods) != k || len(stats) != k {
			t.Fatalf("%s: got %d products, %d stats, want %d", name, len(prods), len(stats), k)
		}
		for i, pair := range pairs {
			want, wantStats, err := run.one(pair[0], pair[1])
			if err != nil {
				t.Fatalf("%s single %d: %v", name, i, err)
			}
			if !reflect.DeepEqual(prods[i], want) {
				t.Errorf("%s: batch product %d differs from the single call", name, i)
			}
			if stats[i].Rounds != wantStats.Rounds || stats[i].Words != wantStats.Words {
				t.Errorf("%s: batch stats %d = %d rounds / %d words, single call %d / %d",
					name, i, stats[i].Rounds, stats[i].Words, wantStats.Rounds, wantStats.Words)
			}
		}
	}
}

// TestBatchAmortisesSetup is the amortisation gate: a k-item batch must
// allocate strictly less than k single session calls, because the batch
// resolves the plan and scratch and arms the network configuration once
// instead of per pair.
func TestBatchAmortisesSetup(t *testing.T) {
	const n, k = 16, 8
	pairs := batchPairs(n, k)

	single, err := cc.NewClique(n, cc.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	batched, err := cc.NewClique(n, cc.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer batched.Close()

	// Warm both sessions so pooled buffers and ledger capacity exist.
	if _, _, err := single.DistanceProduct(pairs[0][0], pairs[0][1]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := batched.DistanceProducts(pairs); err != nil {
		t.Fatal(err)
	}

	singles := testing.AllocsPerRun(5, func() {
		for _, pair := range pairs {
			if _, _, err := single.DistanceProduct(pair[0], pair[1]); err != nil {
				t.Fatal(err)
			}
		}
	})
	inBatch := testing.AllocsPerRun(5, func() {
		if _, _, err := batched.DistanceProducts(pairs); err != nil {
			t.Fatal(err)
		}
	})
	if inBatch >= singles {
		t.Errorf("batch of %d allocates %.0f, %d single calls allocate %.0f — the batch must be strictly cheaper",
			k, inBatch, k, singles)
	}
	t.Logf("allocs per %d-op batch: %.0f batched vs %.0f single calls", k, inBatch, singles)
}

// TestBatchPerItemContext threads one item's cancellation context through
// a batch: the items before it complete, the cancelled item aborts with
// its context's error, and the batch stops there.
func TestBatchPerItemContext(t *testing.T) {
	const n = 16
	pairs := batchPairs(n, 3)
	sess, err := cc.NewClique(n, cc.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: the second item must abort immediately
	items := []cc.BatchItem{
		{A: pairs[0][0], B: pairs[0][1]},
		{A: pairs[1][0], B: pairs[1][1], Opts: []cc.CallOption{cc.WithContext(ctx)}},
		{A: pairs[2][0], B: pairs[2][1]},
	}
	prods, stats, err := sess.MatMulBatch(items)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(prods) != 1 || len(stats) != 1 {
		t.Fatalf("got %d products before the cancelled item, want 1", len(prods))
	}
	want, _, err := sess.MatMul(pairs[0][0], pairs[0][1])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(prods[0], want) {
		t.Error("the item before the cancelled one returned a wrong product")
	}

	// The session stays fully usable after a batch abort.
	if _, _, err := sess.MatMul(pairs[2][0], pairs[2][1]); err != nil {
		t.Fatalf("session unusable after batch abort: %v", err)
	}
}

// TestBatchPerItemRoundLimit arms a round limit on one item only.
func TestBatchPerItemRoundLimit(t *testing.T) {
	const n = 16
	pairs := batchPairs(n, 2)
	sess, err := cc.NewClique(n, cc.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	items := []cc.BatchItem{
		{A: pairs[0][0], B: pairs[0][1], Opts: []cc.CallOption{cc.WithRoundLimit(1)}},
		{A: pairs[1][0], B: pairs[1][1]},
	}
	prods, _, err := sess.DistanceProductBatch(items)
	var rle *clique.RoundLimitError
	if !errors.As(err, &rle) {
		t.Fatalf("err = %v, want a round-limit abort on item 0", err)
	}
	if len(prods) != 0 {
		t.Fatalf("got %d products, want 0 (item 0 aborted)", len(prods))
	}
	// The limit is per item: the same batch without it completes.
	items[0].Opts = nil
	prods, _, err = sess.DistanceProductBatch(items)
	if err != nil || len(prods) != 2 {
		t.Fatalf("unlimited batch: %d products, err %v", len(prods), err)
	}
}

// TestBatchWrongSizeItem rejects a mis-sized item mid-batch without
// losing the results before it.
func TestBatchWrongSizeItem(t *testing.T) {
	const n = 16
	pairs := batchPairs(n, 1)
	sess, err := cc.NewClique(n, cc.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	bad := sessionTestMat(n-1, 9)
	prods, _, err := sess.MatMulBatch([]cc.BatchItem{
		{A: pairs[0][0], B: pairs[0][1]},
		{A: bad, B: bad},
	})
	if err == nil {
		t.Fatal("mis-sized item accepted")
	}
	if len(prods) != 1 {
		t.Fatalf("got %d products before the mis-sized item, want 1", len(prods))
	}
}
