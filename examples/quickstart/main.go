// Quickstart: open a session (a reusable simulated congested clique), run
// several of the paper's algorithms on it, and inspect both per-operation
// and cumulative communication costs.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	cc "github.com/algebraic-clique/algclique"
)

func main() {
	// A 16-node graph: two overlapping communities with a shared core.
	g := cc.NewGraph(16, false)
	edges := [][2]int{
		{0, 1}, {0, 2}, {1, 2}, // triangle in community A
		{2, 3}, {3, 4}, {2, 4}, // triangle sharing node 2
		{4, 5}, {5, 6}, {6, 4}, // triangle in community B
		{6, 7}, {7, 8}, {8, 9}, // a tail
		{9, 10}, {10, 11}, {11, 9}, // triangle at the end
		{12, 13}, {14, 15}, // stray edges
	}
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}

	// A session owns the simulated network, the resolved engine plan, and
	// reusable buffers; every operation below shares them. Session options
	// (engine, padding, workers) are fixed here; per-call options (seed,
	// round limits, contexts) go to the individual methods.
	sess, err := cc.NewClique(g.N())
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	count, stats, err := sess.CountTriangles(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges\n", g.N(), g.EdgeCount())
	fmt.Printf("triangles: %d\n", count)
	fmt.Printf("simulated congested clique: n=%d, %d rounds, %d words\n",
		stats.N, stats.Rounds, stats.Words)
	for _, p := range stats.Phases {
		fmt.Printf("  phase %-18s %3d rounds %8d words\n", p.Name, p.Rounds, p.Words)
	}

	// More questions on the same session — the network and engine plan are
	// reused, not rebuilt.
	c4, _, err := sess.CountFourCycles(g)
	if err != nil {
		log.Fatal(err)
	}
	girth, ok, _, err := sess.Girth(g, cc.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4-cycles: %d; girth: %d (cyclic: %v)\n", c4, girth, ok)

	// The session ledger totals the whole pipeline.
	ledger := sess.Stats()
	fmt.Printf("session total: %d operations, %d rounds, %d words\n",
		len(ledger.Ops), ledger.Rounds, ledger.Words)
	for _, op := range ledger.Ops {
		fmt.Printf("  %-18s %5d rounds %9d words\n", op.Op, op.Rounds, op.Words)
	}

	// One-shot helpers remain for single measurements: here the Θ(n)-round
	// learn-everything baseline for comparison.
	_, naive, err := cc.CountTriangles(g, cc.WithEngine(cc.Naive))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive baseline: %d rounds (algebraic: %d)\n", naive.Rounds, stats.Rounds)
}
