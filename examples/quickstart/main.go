// Quickstart: count triangles in a small graph on a simulated congested
// clique and inspect the communication cost.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	cc "github.com/algebraic-clique/algclique"
)

func main() {
	// A 16-node graph: two overlapping communities with a shared core.
	g := cc.NewGraph(16, false)
	edges := [][2]int{
		{0, 1}, {0, 2}, {1, 2}, // triangle in community A
		{2, 3}, {3, 4}, {2, 4}, // triangle sharing node 2
		{4, 5}, {5, 6}, {6, 4}, // triangle in community B
		{6, 7}, {7, 8}, {8, 9}, // a tail
		{9, 10}, {10, 11}, {11, 9}, // triangle at the end
		{12, 13}, {14, 15}, // stray edges
	}
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}

	count, stats, err := cc.CountTriangles(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges\n", g.N(), g.EdgeCount())
	fmt.Printf("triangles: %d\n", count)
	fmt.Printf("simulated congested clique: n=%d, %d rounds, %d words\n",
		stats.N, stats.Rounds, stats.Words)
	for _, p := range stats.Phases {
		fmt.Printf("  phase %-18s %3d rounds %8d words\n", p.Name, p.Rounds, p.Words)
	}

	// The same computation on the learn-everything baseline costs Θ(n)
	// rounds — compare.
	_, naive, err := cc.CountTriangles(g, cc.WithEngine(cc.Naive))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive baseline: %d rounds (algebraic: %d)\n", naive.Rounds, stats.Rounds)
}
