// Girthprobe: girth computation on structured graphs (Theorem 5 /
// Corollary 16) — the shortest-cycle statistic that, before this paper,
// had no non-trivial congested-clique algorithm.
//
//	go run ./examples/girthprobe
package main

import (
	"fmt"
	"log"

	cc "github.com/algebraic-clique/algclique"
)

func main() {
	fmt.Println("undirected girth (Theorem 5: density test + colour-coding / gather):")
	undirected := []struct {
		name string
		g    *cc.Graph
	}{
		{"Petersen graph (girth 5)", cc.Petersen()},
		{"6×6 torus (girth 4)", cc.Torus(6, 6)},
		{"triangle + long cycles", withChord()},
		{"random tree (acyclic)", cc.Tree(40, 11)},
		{"dense G(64, .5) (girth 3 whp)", cc.GNP(64, 0.5, false, 12)},
	}
	for _, tc := range undirected {
		girth, ok, stats, err := cc.Girth(tc.g, cc.WithColourings(60), cc.WithSeed(5))
		if err != nil {
			log.Fatal(err)
		}
		if ok {
			fmt.Printf("  %-32s girth %2d   (%4d rounds, clique n=%d)\n",
				tc.name, girth, stats.Rounds, stats.N)
		} else {
			fmt.Printf("  %-32s acyclic    (%4d rounds, clique n=%d)\n",
				tc.name, stats.Rounds, stats.N)
		}
	}

	fmt.Println("\ndirected girth (Corollary 16: reachability doubling + binary search):")
	directed := []struct {
		name string
		g    *cc.Graph
	}{
		{"directed 12-cycle", cc.Cycle(12, true)},
		{"2-cycle (antiparallel pair)", antiparallel()},
		{"random tournament-ish", cc.GNP(32, 0.08, true, 13)},
		{"DAG (acyclic)", dag(24)},
	}
	for _, tc := range directed {
		girth, ok, stats, err := cc.Girth(tc.g)
		if err != nil {
			log.Fatal(err)
		}
		if ok {
			fmt.Printf("  %-32s girth %2d   (%4d rounds)\n", tc.name, girth, stats.Rounds)
		} else {
			fmt.Printf("  %-32s acyclic    (%4d rounds)\n", tc.name, stats.Rounds)
		}
	}
}

// withChord: a 15-cycle with a chord creating a short cycle.
func withChord() *cc.Graph {
	g := cc.NewGraph(15, false)
	for i := 0; i < 15; i++ {
		g.AddEdge(i, (i+1)%15)
	}
	g.AddEdge(0, 2) // chord: triangle 0-1-2
	return g
}

func antiparallel() *cc.Graph {
	g := cc.NewGraph(10, true)
	g.AddEdge(3, 7)
	g.AddEdge(7, 3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	return g
}

func dag(n int) *cc.Graph {
	g := cc.NewGraph(n, true)
	for u := 0; u < n; u++ {
		for v := u + 1; v < u+4 && v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}
