// Routingtables: weighted all-pairs shortest paths with routing tables —
// the distance-computation workload of §3.3. Computes exact APSP by
// min-plus iterated squaring (Corollary 6), extracts actual routes from
// the witness-built routing tables, and compares against the naive
// learn-everything baseline and the (1+δ)-approximation (Theorem 9).
//
//	go run ./examples/routingtables
package main

import (
	"fmt"
	"log"

	cc "github.com/algebraic-clique/algclique"
)

func main() {
	// A weighted network: 25 routers, sparse random links with latencies.
	const n = 25
	g := cc.RandomConnectedWeighted(n, 0.12, 20, true, 99)
	fmt.Printf("network: %d nodes, directed weighted links (latency 1..20)\n\n", n)

	res, stats, err := cc.APSP(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact APSP (semiring squaring): %d rounds on an n=%d clique (padded from %d)\n",
		stats.Rounds, stats.N, n)
	if err := cc.ValidateRouting(g, res); err != nil {
		log.Fatal(err)
	}
	fmt.Println("routing tables validated: every path realises its distance")

	// Print a few routes.
	for _, pair := range [][2]int{{0, 13}, {7, 2}, {24, 11}} {
		u, v := pair[0], pair[1]
		path := res.Path(u, v)
		fmt.Printf("  route %2d → %2d: distance %3d, path %v\n", u, v, res.Dist[u][v], path)
	}

	naive, sn, err := cc.APSPNaive(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnaive baseline: %d rounds (exact algebraic: %d)\n", sn.Rounds, stats.Rounds)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if naive.Dist[u][v] != res.Dist[u][v] {
				log.Fatalf("baseline disagrees at (%d,%d)", u, v)
			}
		}
	}

	approx, stretch, sa, err := cc.APSPApprox(g, cc.WithDelta(0.25))
	if err != nil {
		log.Fatal(err)
	}
	worst := 1.0
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if cc.IsInf(res.Dist[u][v]) || res.Dist[u][v] == 0 {
				continue
			}
			if r := float64(approx.Dist[u][v]) / float64(res.Dist[u][v]); r > worst {
				worst = r
			}
		}
	}
	fmt.Printf("approximate APSP (δ=0.25): %d rounds, stretch bound %.3f, measured max stretch %.3f\n",
		sa.Rounds, stretch, worst)
}
