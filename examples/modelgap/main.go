// Modelgap: one matrix product, four execution models — quantifying the
// paper's central claims in a single run:
//
//   - broadcast congested clique: Θ(n) rounds (the §4 lower bound regime),
//   - unicast naive gather:       Θ(n) rounds,
//   - semiring 3D algorithm:      O(n^{1/3}) rounds (Theorem 1.1),
//   - fast bilinear algorithm:    O(n^{1-2/σ}) rounds (Theorem 1.2),
//
// plus the constant-round sparse square of §1.2 on a sparse graph.
//
//	go run ./examples/modelgap
package main

import (
	"fmt"
	"log"

	cc "github.com/algebraic-clique/algclique"
)

func main() {
	const n = 216 // valid for all engines: 216 = 6³, padded to 225 = 15² for fast
	a := randomMatrix(n, 1)
	b := randomMatrix(n, 2)

	fmt.Printf("multiplying two %d×%d integer matrices, one row per node\n\n", n, n)
	fmt.Println("model / algorithm                rounds   clique size")

	prodB, sb, err := cc.MatMulBroadcast(a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("broadcast clique (Θ(n) forced)  %7d   %d\n", sb.Rounds, sb.N)

	prodN, sn, err := cc.MatMul(a, b, cc.WithEngine(cc.Naive))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unicast, naive gather           %7d   %d\n", sn.Rounds, sn.N)

	prod3, s3, err := cc.MatMul(a, b, cc.WithEngine(cc.Semiring3D))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unicast, semiring 3D            %7d   %d\n", s3.Rounds, s3.N)

	prodF, sf, err := cc.MatMul(a, b, cc.WithEngine(cc.Fast))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unicast, fast bilinear          %7d   %d (padded from %d)\n",
		sf.Rounds, sf.N, n)

	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if prodB[i][j] != prodN[i][j] || prodN[i][j] != prod3[i][j] || prod3[i][j] != prodF[i][j] {
				log.Fatalf("products disagree at (%d,%d)", i, j)
			}
		}
	}
	fmt.Println("\nall four products agree entry-for-entry")

	// Bonus: on a sparse graph, A² needs no algebra at all (Theorem 4's
	// machinery, constant rounds).
	g := cc.GNP(n, 2.5/float64(n), false, 3)
	_, ss, err := cc.SquareAdjacencySparse(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsparse A² on G(%d, 2.5/n): %d rounds — constant in n (§1.2)\n",
		n, ss.Rounds)
}

func randomMatrix(n int, seed uint64) [][]int64 {
	g := cc.RandomWeighted(n, 0.95, 50, true, seed)
	out := make([][]int64, n)
	for i := 0; i < n; i++ {
		out[i] = make([]int64, n)
		for j := 0; j < n; j++ {
			if w := g.Weight(i, j); !cc.IsInf(w) {
				out[i][j] = w
			}
		}
	}
	return out
}
