// Socialcount: subgraph counting on a skewed "social" graph — the
// motivating workload for distributed subgraph detection. Counts triangles
// and 4-cycles with the algebraic algorithms, cross-checks the triangle
// count against the combinatorial baseline of Dolev et al., and detects
// 4-cycles in O(1) rounds (Theorem 4).
//
//	go run ./examples/socialcount
package main

import (
	"fmt"
	"log"

	cc "github.com/algebraic-clique/algclique"
)

func main() {
	// A preferential-attachment graph: heavy-tailed degrees, like a social
	// network neighbourhood graph.
	const n = 128
	g := cc.PreferentialAttachment(n, 3, 2024)
	fmt.Printf("social graph: %d nodes, %d edges\n\n", g.N(), g.EdgeCount())

	triangles, st, err := cc.CountTriangles(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("triangles (algebraic, %v engine):  %6d in %4d rounds\n",
		cc.Auto, triangles, st.Rounds)

	dolev, sd, err := cc.CountTrianglesDolev(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("triangles (Dolev et al. baseline): %6d in %4d rounds\n", dolev, sd.Rounds)
	if triangles != dolev {
		log.Fatalf("count mismatch: %d vs %d", triangles, dolev)
	}

	c4s, sc, err := cc.CountFourCycles(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4-cycles (trace formula):          %6d in %4d rounds\n", c4s, sc.Rounds)

	found, sdet, err := cc.DetectFourCycle(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4-cycle detection (Theorem 4):     %6v in %4d rounds — constant in n\n",
		found, sdet.Rounds)

	// Triadic closure ratio: how much denser in triangles is the hub
	// region than a degree-matched random graph? (A classic social-network
	// statistic, computed entirely with congested-clique primitives.)
	rnd := cc.GNP(n, float64(2*g.EdgeCount())/float64(n*(n-1)), false, 7)
	rndTri, _, err := cc.CountTriangles(rnd)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntriangles in a density-matched G(n,p): %d (PA graph has %.1f× more)\n",
		rndTri, float64(triangles)/float64(max64(rndTri, 1)))
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
