package ring_test

import (
	"math/rand/v2"
	"testing"

	"github.com/algebraic-clique/algclique/internal/ring"
)

func roundTripTuples[T any](t *testing.T, name string, codec ring.Codec[T], gen func(rng *rand.Rand) T, eq func(a, b T) bool) {
	t.Helper()
	tc := ring.NewTupleCodec[T](codec)
	rng := rand.New(rand.NewPCG(7, 7))
	for _, k := range []int{0, 1, 2, 63, 64, 65, 200} {
		tups := make([]ring.Tuple[T], k)
		for i := range tups {
			tups[i] = ring.Tuple[T]{Idx: int32(rng.IntN(1 << 20)), Val: gen(rng)}
		}
		// Encode at a nonzero offset: chunks must append cleanly.
		prefix := []ring.Word{0xdead, 0xbeef}
		enc, vbuf := tc.EncodeSlice(append([]ring.Word(nil), prefix...), tups, nil)
		chunk := enc[len(prefix):]
		if len(chunk) != tc.EncodedLen(k) {
			t.Fatalf("%s k=%d: encoded %d words, EncodedLen says %d", name, k, len(chunk), tc.EncodedLen(k))
		}
		if got := tc.CountFor(len(chunk)); got != k {
			t.Fatalf("%s k=%d: CountFor(%d) = %d", name, k, len(chunk), got)
		}
		out := make([]ring.Tuple[T], k)
		tc.DecodeSlice(out, chunk, vbuf)
		for i := range out {
			if out[i].Idx != tups[i].Idx || !eq(out[i].Val, tups[i].Val) {
				t.Fatalf("%s k=%d: tuple %d decoded as %+v, want %+v", name, k, i, out[i], tups[i])
			}
		}
	}
}

func TestTupleCodecRoundTrip(t *testing.T) {
	eqI := func(a, b int64) bool { return a == b }
	roundTripTuples[int64](t, "int64", ring.Int64{}, func(rng *rand.Rand) int64 { return rng.Int64N(1 << 40) }, eqI)
	roundTripTuples[int64](t, "min-plus", ring.MinPlus{}, func(rng *rand.Rand) int64 {
		if rng.IntN(4) == 0 {
			return ring.Inf
		}
		return rng.Int64N(1000)
	}, eqI)
	roundTripTuples[int64](t, "zp", ring.NewZp(1_000_003), func(rng *rand.Rand) int64 { return rng.Int64N(1_000_003) }, eqI)
	roundTripTuples[ring.ValW](t, "min-plus-w", ring.MinPlusW{}, func(rng *rand.Rand) ring.ValW {
		return ring.ValW{V: rng.Int64N(1000), W: rng.Int64N(64)}
	}, func(a, b ring.ValW) bool { return a == b })
	roundTripTuples[bool](t, "bool", ring.Bool{}, func(rng *rand.Rand) bool { return rng.IntN(2) == 1 }, func(a, b bool) bool { return a == b })
	roundTripTuples[bool](t, "packed-bool", ring.PackedBool{}, func(rng *rand.Rand) bool { return rng.IntN(2) == 1 }, func(a, b bool) bool { return a == b })
}

// The packed tuple stream must keep PackedBool's compression: k tuples
// cost k index words plus ⌈k/64⌉ value words, not 2k.
func TestTupleCodecPackedLen(t *testing.T) {
	tc := ring.NewTupleCodec[bool](ring.PackedBool{})
	for _, k := range []int{1, 64, 65, 128, 1000} {
		want := k + (k+63)/64
		if got := tc.EncodedLen(k); got != want {
			t.Errorf("EncodedLen(%d) = %d, want %d", k, got, want)
		}
	}
}

// The index word must carry row ids from graphs far larger than 2¹⁶
// nodes without truncation: CSR products at n = 10⁵⁺ ship tuple streams
// whose Idx values exceed any 16-bit packing, and the codec's contract is
// the full non-negative int32 range. Exercised across a value codec of
// every width — 1-word int64, the 2-word ValW pair, and the sub-word
// packed Boolean, whose bit-packing must never bleed into index words.
func TestTupleCodecWideIndices(t *testing.T) {
	idxs := []int32{0, 1<<16 - 1, 1 << 16, 100_000, 1_000_000, 1 << 30, 1<<31 - 1}
	check := func(name string, decoded []int32) {
		t.Helper()
		for i, want := range idxs {
			if decoded[i] != want {
				t.Fatalf("%s: index %d decoded as %d, want %d", name, i, decoded[i], want)
			}
		}
	}
	{
		tc := ring.NewTupleCodec[int64](ring.Int64{})
		tups := make([]ring.Tuple[int64], len(idxs))
		for i, x := range idxs {
			tups[i] = ring.Tuple[int64]{Idx: x, Val: int64(i + 1)}
		}
		enc, vbuf := tc.EncodeSlice(nil, tups, nil)
		out := make([]ring.Tuple[int64], len(idxs))
		tc.DecodeSlice(out, enc, vbuf)
		got := make([]int32, len(out))
		for i := range out {
			got[i] = out[i].Idx
			if out[i].Val != int64(i+1) {
				t.Fatalf("int64: value %d decoded as %d", i, out[i].Val)
			}
		}
		check("int64", got)
	}
	{
		tc := ring.NewTupleCodec[ring.ValW](ring.MinPlusW{})
		tups := make([]ring.Tuple[ring.ValW], len(idxs))
		for i, x := range idxs {
			tups[i] = ring.Tuple[ring.ValW]{Idx: x, Val: ring.ValW{V: int64(x), W: int64(i)}}
		}
		enc, vbuf := tc.EncodeSlice(nil, tups, nil)
		out := make([]ring.Tuple[ring.ValW], len(idxs))
		tc.DecodeSlice(out, enc, vbuf)
		got := make([]int32, len(out))
		for i := range out {
			got[i] = out[i].Idx
			if out[i].Val != (ring.ValW{V: int64(idxs[i]), W: int64(i)}) {
				t.Fatalf("min-plus-w: value %d decoded as %+v", i, out[i].Val)
			}
		}
		check("min-plus-w", got)
	}
	{
		tc := ring.NewTupleCodec[bool](ring.PackedBool{})
		tups := make([]ring.Tuple[bool], len(idxs))
		for i, x := range idxs {
			tups[i] = ring.Tuple[bool]{Idx: x, Val: i%2 == 0}
		}
		enc, vbuf := tc.EncodeSlice(nil, tups, nil)
		out := make([]ring.Tuple[bool], len(idxs))
		tc.DecodeSlice(out, enc, vbuf)
		got := make([]int32, len(out))
		for i := range out {
			got[i] = out[i].Idx
			if out[i].Val != (i%2 == 0) {
				t.Fatalf("packed-bool: value %d decoded as %v", i, out[i].Val)
			}
		}
		check("packed-bool", got)
	}
}

// CountFor must reject word counts no chunk length produces.
func TestTupleCodecCountForMalformed(t *testing.T) {
	tc := ring.NewTupleCodec[ring.ValW](ring.MinPlusW{})
	// ValW tuples occupy 3 words each; 4 words is not a chunk length.
	if got := tc.CountFor(4); got != -1 {
		t.Errorf("CountFor(4) = %d, want -1", got)
	}
	if got := tc.CountFor(0); got != 0 {
		t.Errorf("CountFor(0) = %d, want 0", got)
	}
	if got := tc.CountFor(6); got != 2 {
		t.Errorf("CountFor(6) = %d, want 2", got)
	}
}
