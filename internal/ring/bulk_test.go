package ring_test

import (
	"math/rand/v2"
	"testing"

	"github.com/algebraic-clique/algclique/internal/ring"
)

// roundTrip checks EncodeSlice/DecodeSlice against each other and, for the
// fixed-width codecs, against the per-element layout they must preserve.
func roundTrip[T any](t *testing.T, name string, c ring.BulkCodec[T], vals []T, eq func(a, b T) bool, fixedWidth bool) {
	t.Helper()
	enc := c.EncodeSlice(nil, vals)
	if len(enc) != c.EncodedLen(len(vals)) {
		t.Fatalf("%s: EncodeSlice produced %d words, EncodedLen says %d", name, len(enc), c.EncodedLen(len(vals)))
	}
	out := make([]T, len(vals))
	c.DecodeSlice(out, enc)
	for i := range vals {
		if !eq(vals[i], out[i]) {
			t.Fatalf("%s: round trip mismatch at %d: %v != %v", name, i, vals[i], out[i])
		}
	}
	if !fixedWidth {
		return
	}
	// Fixed-width codecs must keep the wire format of the per-element path:
	// the bulk encoding is its concatenation, bit for bit.
	w := c.Width()
	if c.EncodedLen(len(vals)) != w*len(vals) {
		t.Fatalf("%s: fixed-width EncodedLen(%d) = %d, want %d", name, len(vals), c.EncodedLen(len(vals)), w*len(vals))
	}
	ref := make([]ring.Word, w*len(vals))
	for i, v := range vals {
		c.Encode(v, ref[i*w:(i+1)*w])
	}
	for i := range ref {
		if ref[i] != enc[i] {
			t.Fatalf("%s: bulk encoding differs from per-element layout at word %d: %#x != %#x", name, i, enc[i], ref[i])
		}
	}
	// And the adapter over the bare per-element methods must agree too.
	adapted := ring.AsBulk[T](perElementOnly[T]{c}).EncodeSlice(nil, vals)
	for i := range ref {
		if adapted[i] != ref[i] {
			t.Fatalf("%s: AsBulk adapter layout differs at word %d", name, i)
		}
	}
}

// perElementOnly hides a codec's bulk methods so AsBulk takes the adapter
// path.
type perElementOnly[T any] struct {
	c ring.Codec[T]
}

func (p perElementOnly[T]) Width() int                  { return p.c.Width() }
func (p perElementOnly[T]) Encode(v T, dst []ring.Word) { p.c.Encode(v, dst) }
func (p perElementOnly[T]) Decode(src []ring.Word) T    { return p.c.Decode(src) }

func TestBulkCodecsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	const k = 257 // deliberately not a multiple of 64

	ints := make([]int64, k)
	for i := range ints {
		ints[i] = rng.Int64() - rng.Int64()
	}
	roundTrip(t, "Int64", ring.Int64{}, ints, func(a, b int64) bool { return a == b }, true)
	roundTrip(t, "Zp", ring.NewZp(101), ints, func(a, b int64) bool { return a == b }, true)

	mps := make([]int64, k)
	for i := range mps {
		if rng.IntN(4) == 0 {
			mps[i] = ring.Inf
		} else {
			mps[i] = rng.Int64N(1 << 40)
		}
	}
	roundTrip(t, "MinPlus", ring.MinPlus{}, mps, func(a, b int64) bool { return a == b }, true)

	valws := make([]ring.ValW, k)
	for i := range valws {
		valws[i] = ring.ValW{V: rng.Int64N(1 << 40), W: int64(rng.IntN(100)) - 1}
	}
	roundTrip(t, "MinPlusW", ring.MinPlusW{}, valws, func(a, b ring.ValW) bool { return a == b }, true)

	bools := make([]bool, k)
	for i := range bools {
		bools[i] = rng.IntN(2) == 1
	}
	roundTrip(t, "Bool", ring.Bool{}, bools, func(a, b bool) bool { return a == b }, true)
	roundTrip(t, "PackedBool", ring.PackedBool{}, bools, func(a, b bool) bool { return a == b }, false)
}

// TestPackedBoolLayout pins the packed transport: ⌈k/64⌉ words, element i
// in bit i%64 of word i/64, trailing bits zero, and stale destination words
// fully overwritten.
func TestPackedBoolLayout(t *testing.T) {
	p := ring.PackedBool{}
	for _, k := range []int{0, 1, 63, 64, 65, 128, 200} {
		if got, want := p.EncodedLen(k), (k+63)/64; got != want {
			t.Fatalf("EncodedLen(%d) = %d, want %d", k, got, want)
		}
	}
	vals := make([]bool, 130)
	vals[0], vals[63], vals[64], vals[129] = true, true, true, true
	// Seed dst with garbage capacity to check words are fully rewritten.
	dst := append(make([]ring.Word, 0, 8), 0xdead)
	enc := p.EncodeSlice(dst[:1], vals)[1:]
	if len(enc) != 3 {
		t.Fatalf("encoded length %d, want 3", len(enc))
	}
	if enc[0] != 1|1<<63 || enc[1] != 1 || enc[2] != 1<<1 {
		t.Fatalf("packed layout wrong: %#x %#x %#x", enc[0], enc[1], enc[2])
	}
	out := make([]bool, len(vals))
	p.DecodeSlice(out, enc)
	for i := range vals {
		if out[i] != vals[i] {
			t.Fatalf("bit %d round-tripped wrong", i)
		}
	}
	// Single-element encoding coincides with Bool's word.
	var one [1]ring.Word
	p.Encode(true, one[:])
	if one[0] != 1 || !p.Decode(one[:]) {
		t.Fatal("single-element encoding must be the 0/1 word")
	}
}

// TestBulkAppendPreservesPrefix checks that EncodeSlice appends without
// disturbing already-encoded chunks — the chunk-concatenation contract the
// engines rely on for multi-part messages.
func TestBulkAppendPreservesPrefix(t *testing.T) {
	p := ring.PackedBool{}
	a := []bool{true, false, true}
	b := []bool{false, true}
	msg := p.EncodeSlice(nil, a)
	msg = p.EncodeSlice(msg, b)
	if len(msg) != p.EncodedLen(len(a))+p.EncodedLen(len(b)) {
		t.Fatalf("chunked message length %d", len(msg))
	}
	gotA := make([]bool, len(a))
	gotB := make([]bool, len(b))
	p.DecodeSlice(gotA, msg)
	p.DecodeSlice(gotB, msg[p.EncodedLen(len(a)):])
	for i := range a {
		if gotA[i] != a[i] {
			t.Fatalf("chunk A bit %d wrong", i)
		}
	}
	for i := range b {
		if gotB[i] != b[i] {
			t.Fatalf("chunk B bit %d wrong", i)
		}
	}
}
