package ring

// Int64 is the ring of 64-bit integers with wrap-around overflow semantics.
// All quantities manipulated by the paper's algorithms (entry values,
// path counts, traces) are bounded by n^O(1) for the simulated sizes, so no
// overflow occurs in practice; tests pin the magnitudes.
type Int64 struct{}

var _ Ring[int64] = Int64{}
var _ Codec[int64] = Int64{}

// Zero returns 0.
func (Int64) Zero() int64 { return 0 }

// One returns 1.
func (Int64) One() int64 { return 1 }

// Add returns a + b.
func (Int64) Add(a, b int64) int64 { return a + b }

// Mul returns a * b.
func (Int64) Mul(a, b int64) int64 { return a * b }

// Neg returns -a.
func (Int64) Neg(a int64) int64 { return -a }

// Sub returns a - b.
func (Int64) Sub(a, b int64) int64 { return a - b }

// Scale returns c * a.
func (Int64) Scale(c int64, a int64) int64 { return c * a }

// Equal reports a == b.
func (Int64) Equal(a, b int64) bool { return a == b }

// Width returns the one-word transport width of an int64.
func (Int64) Width() int { return 1 }

// Encode stores a as a single word.
func (Int64) Encode(v int64, dst []Word) { dst[0] = Word(v) }

// Decode reads a single-word int64.
func (Int64) Decode(src []Word) int64 { return int64(src[0]) }
