package ring

// Poly is the truncated polynomial ring Z[X] / X^cap with int64
// coefficients. It implements the embedding of the distance product into a
// ring product (Lemma 18 of the paper): a min-plus entry w becomes the
// monomial X^w, values ≥ cap (in particular Inf) become the zero polynomial,
// and after an ordinary ring product the distance-product entry is recovered
// as the degree of the lowest non-zero monomial.
//
// A Poly element costs cap words on the wire, which is exactly the paper's
// O(M) bandwidth factor for entries bounded by M (Lemma 18 uses degree ≤ 2M,
// i.e. cap = 2M+1).
type Poly struct {
	cap int
}

// NewPoly returns the ring Z[X]/X^cap. cap must be positive.
func NewPoly(cap int) Poly {
	if cap <= 0 {
		panic("ring: polynomial capacity must be positive")
	}
	return Poly{cap: cap}
}

// PolyElem is a dense coefficient vector of length cap. A nil slice is the
// zero polynomial (its coefficients are all zero); operations normalise.
type PolyElem []int64

var _ Ring[PolyElem] = Poly{}
var _ Codec[PolyElem] = Poly{}

// Cap returns the truncation capacity (maximum degree + 1).
func (p Poly) Cap() int { return p.cap }

// Zero returns the zero polynomial.
func (p Poly) Zero() PolyElem { return nil }

// One returns the constant polynomial 1.
func (p Poly) One() PolyElem {
	e := make(PolyElem, p.cap)
	e[0] = 1
	return e
}

// Monomial returns X^deg, or the zero polynomial if deg is out of range.
// Pass a min-plus value directly: infinite values exceed any cap and map to
// zero, as Lemma 18 requires.
func (p Poly) Monomial(deg int64) PolyElem {
	if deg < 0 || deg >= int64(p.cap) {
		return nil
	}
	e := make(PolyElem, p.cap)
	e[deg] = 1
	return e
}

// MinDegree returns the degree of the lowest non-zero monomial and true, or
// (0, false) for the zero polynomial. This recovers the distance-product
// value from an embedded product.
func (p Poly) MinDegree(e PolyElem) (int64, bool) {
	for i, c := range e {
		if c != 0 {
			return int64(i), true
		}
	}
	return 0, false
}

func (p Poly) coeff(e PolyElem, i int) int64 {
	if i < len(e) {
		return e[i]
	}
	return 0
}

// Add returns a + b coefficient-wise.
func (p Poly) Add(a, b PolyElem) PolyElem {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make(PolyElem, p.cap)
	for i := range out {
		out[i] = p.coeff(a, i) + p.coeff(b, i)
	}
	return out
}

// Mul returns the convolution a*b truncated to degree < cap.
func (p Poly) Mul(a, b PolyElem) PolyElem {
	if a == nil || b == nil {
		return nil
	}
	out := make(PolyElem, p.cap)
	for i, ca := range a {
		if ca == 0 {
			continue
		}
		hi := p.cap - i
		if hi > len(b) {
			hi = len(b)
		}
		for j := 0; j < hi; j++ {
			if cb := b[j]; cb != 0 {
				out[i+j] += ca * cb
			}
		}
	}
	return out
}

// Neg returns -a.
func (p Poly) Neg(a PolyElem) PolyElem {
	if a == nil {
		return nil
	}
	out := make(PolyElem, p.cap)
	for i := range a {
		out[i] = -a[i]
	}
	return out
}

// Sub returns a - b.
func (p Poly) Sub(a, b PolyElem) PolyElem {
	if b == nil {
		return a
	}
	out := make(PolyElem, p.cap)
	for i := range out {
		out[i] = p.coeff(a, i) - p.coeff(b, i)
	}
	return out
}

// Scale returns c*a.
func (p Poly) Scale(c int64, a PolyElem) PolyElem {
	if c == 0 || a == nil {
		return nil
	}
	out := make(PolyElem, p.cap)
	for i := range a {
		out[i] = c * a[i]
	}
	return out
}

// Equal compares polynomials coefficient-wise (zero-padded).
func (p Poly) Equal(a, b PolyElem) bool {
	for i := 0; i < p.cap; i++ {
		if p.coeff(a, i) != p.coeff(b, i) {
			return false
		}
	}
	return true
}

// Width returns cap: one word per coefficient.
func (p Poly) Width() int { return p.cap }

// Encode writes the zero-padded coefficient vector.
func (p Poly) Encode(v PolyElem, dst []Word) {
	for i := 0; i < p.cap; i++ {
		dst[i] = Word(p.coeff(v, i))
	}
}

// Decode reads a coefficient vector, normalising all-zero to nil.
func (p Poly) Decode(src []Word) PolyElem {
	allZero := true
	out := make(PolyElem, p.cap)
	for i := 0; i < p.cap; i++ {
		out[i] = int64(src[i])
		if out[i] != 0 {
			allZero = false
		}
	}
	if allZero {
		return nil
	}
	return out
}
