package ring_test

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"github.com/algebraic-clique/algclique/internal/ring"
)

// semiringLaws exercises the semiring axioms on randomly generated elements.
func semiringLaws[T any](t *testing.T, r ring.Semiring[T], gen func(*rand.Rand) T) {
	t.Helper()
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 200; i++ {
		a, b, c := gen(rng), gen(rng), gen(rng)
		if !r.Equal(r.Add(a, b), r.Add(b, a)) {
			t.Fatalf("Add not commutative: %v, %v", a, b)
		}
		if !r.Equal(r.Add(r.Add(a, b), c), r.Add(a, r.Add(b, c))) {
			t.Fatalf("Add not associative: %v, %v, %v", a, b, c)
		}
		if !r.Equal(r.Add(a, r.Zero()), a) {
			t.Fatalf("Zero not additive identity for %v", a)
		}
		if !r.Equal(r.Mul(r.Mul(a, b), c), r.Mul(a, r.Mul(b, c))) {
			t.Fatalf("Mul not associative: %v, %v, %v", a, b, c)
		}
		if !r.Equal(r.Mul(a, r.One()), a) || !r.Equal(r.Mul(r.One(), a), a) {
			t.Fatalf("One not multiplicative identity for %v", a)
		}
		if !r.Equal(r.Mul(a, r.Zero()), r.Zero()) || !r.Equal(r.Mul(r.Zero(), a), r.Zero()) {
			t.Fatalf("Zero not annihilating for %v", a)
		}
		if !r.Equal(r.Mul(a, r.Add(b, c)), r.Add(r.Mul(a, b), r.Mul(a, c))) {
			t.Fatalf("left distributivity failed: %v, %v, %v", a, b, c)
		}
		if !r.Equal(r.Mul(r.Add(a, b), c), r.Add(r.Mul(a, c), r.Mul(b, c))) {
			t.Fatalf("right distributivity failed: %v, %v, %v", a, b, c)
		}
	}
}

// ringLaws additionally checks subtraction and negation.
func ringLaws[T any](t *testing.T, r ring.Ring[T], gen func(*rand.Rand) T) {
	t.Helper()
	semiringLaws[T](t, r, gen)
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 200; i++ {
		a, b := gen(rng), gen(rng)
		if !r.Equal(r.Add(a, r.Neg(a)), r.Zero()) {
			t.Fatalf("a + (-a) != 0 for %v", a)
		}
		if !r.Equal(r.Sub(a, b), r.Add(a, r.Neg(b))) {
			t.Fatalf("Sub inconsistent with Neg: %v, %v", a, b)
		}
		if !r.Equal(r.Scale(3, a), r.Add(a, r.Add(a, a))) {
			t.Fatalf("Scale(3, a) != a+a+a for %v", a)
		}
		if !r.Equal(r.Scale(-1, a), r.Neg(a)) {
			t.Fatalf("Scale(-1, a) != -a for %v", a)
		}
	}
}

func codecRoundTrip[T any](t *testing.T, c ring.Codec[T], eq func(a, b T) bool, gen func(*rand.Rand) T) {
	t.Helper()
	rng := rand.New(rand.NewPCG(5, 6))
	buf := make([]ring.Word, c.Width())
	for i := 0; i < 200; i++ {
		v := gen(rng)
		c.Encode(v, buf)
		got := c.Decode(buf)
		if !eq(v, got) {
			t.Fatalf("codec round trip: sent %v, got %v", v, got)
		}
	}
}

func smallInt(rng *rand.Rand) int64 { return rng.Int64N(2001) - 1000 }

func TestInt64Laws(t *testing.T) {
	ringLaws[int64](t, ring.Int64{}, smallInt)
	codecRoundTrip[int64](t, ring.Int64{}, func(a, b int64) bool { return a == b }, smallInt)
}

func TestInt64LawsQuick(t *testing.T) {
	r := ring.Int64{}
	distrib := func(a, b, c int64) bool {
		return r.Mul(a, r.Add(b, c)) == r.Add(r.Mul(a, b), r.Mul(a, c))
	}
	if err := quick.Check(distrib, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoolLaws(t *testing.T) {
	gen := func(rng *rand.Rand) bool { return rng.IntN(2) == 0 }
	semiringLaws[bool](t, ring.Bool{}, gen)
	codecRoundTrip[bool](t, ring.Bool{}, func(a, b bool) bool { return a == b }, gen)
}

func TestZpLaws(t *testing.T) {
	z := ring.NewZp(1_000_003)
	gen := func(rng *rand.Rand) int64 { return rng.Int64N(z.Modulus()) }
	ringLaws[int64](t, z, gen)
	codecRoundTrip[int64](t, z, func(a, b int64) bool { return a == b }, gen)
}

func TestZpNorm(t *testing.T) {
	z := ring.NewZp(7)
	for _, tc := range []struct{ in, want int64 }{
		{0, 0}, {6, 6}, {7, 0}, {8, 1}, {-1, 6}, {-7, 0}, {-8, 6},
	} {
		if got := z.Norm(tc.in); got != tc.want {
			t.Errorf("Norm(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestZpPanicsOnBadModulus(t *testing.T) {
	for _, p := range []int64{0, 1, -3, 1 << 31} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZp(%d) did not panic", p)
				}
			}()
			ring.NewZp(p)
		}()
	}
}

func genMinPlus(rng *rand.Rand) int64 {
	if rng.IntN(5) == 0 {
		return ring.Inf
	}
	return rng.Int64N(1000)
}

func TestMinPlusLaws(t *testing.T) {
	semiringLaws[int64](t, ring.MinPlus{}, genMinPlus)
	codecRoundTrip[int64](t, ring.MinPlus{},
		func(a, b int64) bool { return a == b }, genMinPlus)
}

func TestMinPlusInfSaturation(t *testing.T) {
	mp := ring.MinPlus{}
	if got := mp.Mul(ring.Inf, ring.Inf); !ring.IsInf(got) {
		t.Errorf("Inf * Inf = %d, not infinite", got)
	}
	if got := mp.Mul(ring.Inf, 5); !ring.IsInf(got) {
		t.Errorf("Inf * 5 = %d, not infinite", got)
	}
	if got := mp.Add(ring.Inf, 5); got != 5 {
		t.Errorf("min(Inf, 5) = %d, want 5", got)
	}
	if ring.IsInf(0) || ring.IsInf(ring.Inf-1) || !ring.IsInf(ring.Inf) || !ring.IsInf(ring.Inf+5) {
		t.Error("IsInf threshold wrong")
	}
}

func genValW(rng *rand.Rand) ring.ValW {
	v := ring.ValW{V: rng.Int64N(100), W: rng.Int64N(8)}
	switch rng.IntN(6) {
	case 0:
		v.V = ring.Inf
		v.W = ring.NoWitness
	case 1:
		v.W = ring.NoWitness
	}
	return v
}

// TestMinPlusWLaws checks the witness-tagged semiring. Left distributivity
// only holds when the left factor is untagged, which is the only way the 3D
// algorithm uses it (S entries are untagged, T entries carry the tag); the
// test mirrors that restriction.
func TestMinPlusWLaws(t *testing.T) {
	r := ring.MinPlusW{}
	rng := rand.New(rand.NewPCG(7, 8))
	for i := 0; i < 500; i++ {
		a, b, c := genValW(rng), genValW(rng), genValW(rng)
		if !r.Equal(r.Add(a, b), r.Add(b, a)) {
			t.Fatalf("Add not commutative: %v %v", a, b)
		}
		if !r.Equal(r.Add(r.Add(a, b), c), r.Add(a, r.Add(b, c))) {
			t.Fatalf("Add not associative: %v %v %v", a, b, c)
		}
		if !r.Equal(r.Mul(r.Mul(a, b), c), r.Mul(a, r.Mul(b, c))) {
			t.Fatalf("Mul not associative: %v %v %v", a, b, c)
		}
		if !r.Equal(r.Mul(a, r.Zero()), r.Zero()) || !r.Equal(r.Mul(r.Zero(), a), r.Zero()) {
			t.Fatalf("Zero not annihilating: %v", a)
		}
		// Right distributivity holds unconditionally.
		if !r.Equal(r.Mul(r.Add(a, b), c), r.Add(r.Mul(a, c), r.Mul(b, c))) {
			t.Fatalf("right distributivity failed: %v %v %v", a, b, c)
		}
		// Left distributivity with untagged left factor.
		u := ring.ValW{V: a.V, W: ring.NoWitness}
		if !r.Equal(r.Mul(u, r.Add(b, c)), r.Add(r.Mul(u, b), r.Mul(u, c))) {
			t.Fatalf("untagged left distributivity failed: %v %v %v", u, b, c)
		}
	}
	codecRoundTrip[ring.ValW](t, r, r.Equal, genValW)
}

func TestMinPlusWWitnessPropagation(t *testing.T) {
	r := ring.MinPlusW{}
	s := ring.ValW{V: 3, W: ring.NoWitness}
	tt := ring.ValW{V: 4, W: 9}
	got := r.Mul(s, tt)
	if got.V != 7 || got.W != 9 {
		t.Errorf("Mul(s, t) = %+v, want {7 9}", got)
	}
	// Tie-break: smaller witness wins.
	x := ring.ValW{V: 5, W: 2}
	y := ring.ValW{V: 5, W: 1}
	if got := r.Add(x, y); got.W != 1 {
		t.Errorf("tie-break chose witness %d, want 1", got.W)
	}
	// Tagged beats untagged on ties.
	z := ring.ValW{V: 5, W: ring.NoWitness}
	if got := r.Add(x, z); got.W != 2 {
		t.Errorf("tagged-vs-untagged tie chose witness %d, want 2", got.W)
	}
}

func genPoly(p ring.Poly) func(*rand.Rand) ring.PolyElem {
	return func(rng *rand.Rand) ring.PolyElem {
		if rng.IntN(6) == 0 {
			return nil
		}
		e := make(ring.PolyElem, p.Cap())
		for i := range e {
			if rng.IntN(3) == 0 {
				e[i] = rng.Int64N(21) - 10
			}
		}
		return e
	}
}

func TestPolyLaws(t *testing.T) {
	p := ring.NewPoly(8)
	ringLaws[ring.PolyElem](t, p, genPoly(p))
	codecRoundTrip[ring.PolyElem](t, p, p.Equal, genPoly(p))
}

func TestPolyMonomialEmbedding(t *testing.T) {
	// Lemma 18 core: min-degree of products of monomials adds degrees.
	p := ring.NewPoly(16)
	for a := int64(0); a < 8; a++ {
		for b := int64(0); b < 8; b++ {
			prod := p.Mul(p.Monomial(a), p.Monomial(b))
			deg, ok := p.MinDegree(prod)
			if !ok || deg != a+b {
				t.Fatalf("MinDegree(X^%d * X^%d) = (%d, %v), want %d", a, b, deg, ok, a+b)
			}
		}
	}
	// Values at or beyond the cap vanish — the "∞ becomes 0" rule.
	if p.Monomial(16) != nil || p.Monomial(ring.Inf) != nil || p.Monomial(-1) != nil {
		t.Error("out-of-range monomial should be the zero polynomial")
	}
	// Truncation: degrees ≥ cap are dropped by Mul.
	prod := p.Mul(p.Monomial(10), p.Monomial(10))
	if _, ok := p.MinDegree(prod); ok {
		t.Error("product exceeding cap should truncate to zero")
	}
}

func TestPolyMinDegreeOfSum(t *testing.T) {
	// The distance-product embedding sums many monomials; min-degree picks
	// the shortest path even when counts exceed one.
	p := ring.NewPoly(10)
	sum := p.Add(p.Add(p.Monomial(7), p.Monomial(3)), p.Monomial(3))
	deg, ok := p.MinDegree(sum)
	if !ok || deg != 3 {
		t.Fatalf("MinDegree = (%d, %v), want 3", deg, ok)
	}
}

func TestPolyDecodeNormalisesZero(t *testing.T) {
	p := ring.NewPoly(4)
	buf := make([]ring.Word, 4)
	if p.Decode(buf) != nil {
		t.Error("decoding all-zero words should yield the nil zero polynomial")
	}
}

func TestNewPolyPanicsOnBadCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPoly(0) did not panic")
		}
	}()
	ring.NewPoly(0)
}
