package ring

// BulkCodec extends Codec with slice-at-a-time transport: whole rows and
// blocks are encoded and decoded in one monomorphic call instead of one
// interface dispatch per element. All shipped codecs implement it; AsBulk
// adapts any remaining Codec.
//
// The bulk contract deliberately generalises the per-element one:
//
//   - EncodedLen(k) is the number of words a k-element slice occupies. For
//     fixed-width codecs it is k·Width(), so the wire format (and therefore
//     every round count) is unchanged; a packing codec such as PackedBool
//     may return fewer words.
//   - A slice encoding is one atomic chunk. It is NOT guaranteed to be the
//     concatenation of per-element encodings (PackedBool's is not), and it
//     may only be decoded from its first word. Protocols that concatenate
//     several chunks into one message must place each chunk at the word
//     offset given by the EncodedLen sums of the chunks before it — which
//     every node can compute from globally known parameters, keeping the
//     routing oblivious and header-free.
type BulkCodec[T any] interface {
	Codec[T]
	// EncodedLen returns the number of words that encode count elements.
	EncodedLen(count int) int
	// EncodeSlice appends the encoding of vals onto dst and returns the
	// extended slice (exactly EncodedLen(len(vals)) words are appended).
	EncodeSlice(dst []Word, vals []T) []Word
	// DecodeSlice decodes len(out) elements into out from the chunk
	// starting at src[0]; src must hold at least EncodedLen(len(out)) words.
	DecodeSlice(out []T, src []Word)
}

// AsBulk returns c itself when it already implements BulkCodec, and a
// generic per-element adapter otherwise. Engines call it once per product,
// so exotic codecs keep working while the shipped ones take the
// monomorphic fast path.
func AsBulk[T any](c Codec[T]) BulkCodec[T] {
	if bc, ok := c.(BulkCodec[T]); ok {
		return bc
	}
	return bulkAdapter[T]{c}
}

// bulkAdapter lifts a per-element Codec to the bulk interface with the
// fixed-width layout (element i at words [i·w, (i+1)·w)).
type bulkAdapter[T any] struct {
	Codec[T]
}

func (a bulkAdapter[T]) EncodedLen(count int) int { return count * a.Width() }

func (a bulkAdapter[T]) EncodeSlice(dst []Word, vals []T) []Word {
	w := a.Width()
	base := len(dst)
	dst = append(dst, make([]Word, len(vals)*w)...)
	for i, v := range vals {
		a.Encode(v, dst[base+i*w:base+(i+1)*w])
	}
	return dst
}

func (a bulkAdapter[T]) DecodeSlice(out []T, src []Word) {
	w := a.Width()
	for i := range out {
		out[i] = a.Decode(src[i*w : (i+1)*w])
	}
}

// grow extends dst by k words and returns (extended, window) where window
// is the newly appended k-word region.
//
//cc:hotpath
func grow(dst []Word, k int) ([]Word, []Word) {
	base := len(dst)
	if cap(dst)-base < k {
		dst = append(dst, make([]Word, k)...) //cc:hotalloc-ok(capacity growth; pooled callers reuse dst)
	} else {
		dst = dst[:base+k]
	}
	return dst, dst[base : base+k]
}

// --- Monomorphic bulk implementations for the shipped codecs. ---
//
// These are memmove-style loops with no interface dispatch in the body;
// they are what the congested-clique engines hit for every row, block, and
// mailbox in a product.

// EncodedLen returns count (one word per element).
func (Int64) EncodedLen(count int) int { return count }

// EncodeSlice appends vals one word per element.
//
//cc:hotpath
func (Int64) EncodeSlice(dst []Word, vals []int64) []Word {
	dst, w := grow(dst, len(vals))
	for i, v := range vals {
		w[i] = Word(v)
	}
	return dst
}

// DecodeSlice decodes one word per element.
//
//cc:hotpath
func (Int64) DecodeSlice(out []int64, src []Word) {
	for i := range out {
		out[i] = int64(src[i])
	}
}

// EncodedLen returns count (one word per element).
func (MinPlus) EncodedLen(count int) int { return count }

// EncodeSlice appends vals one word per element.
//
//cc:hotpath
func (MinPlus) EncodeSlice(dst []Word, vals []int64) []Word {
	dst, w := grow(dst, len(vals))
	for i, v := range vals {
		w[i] = Word(v)
	}
	return dst
}

// DecodeSlice decodes one word per element.
//
//cc:hotpath
func (MinPlus) DecodeSlice(out []int64, src []Word) {
	for i := range out {
		out[i] = int64(src[i])
	}
}

// EncodedLen returns count (one word per element).
func (Zp) EncodedLen(count int) int { return count }

// EncodeSlice appends vals one word per element.
//
//cc:hotpath
func (Zp) EncodeSlice(dst []Word, vals []int64) []Word {
	dst, w := grow(dst, len(vals))
	for i, v := range vals {
		w[i] = Word(v)
	}
	return dst
}

// DecodeSlice decodes one word per element.
//
//cc:hotpath
func (Zp) DecodeSlice(out []int64, src []Word) {
	for i := range out {
		out[i] = int64(src[i])
	}
}

// EncodedLen returns 2·count (value and witness words).
func (MinPlusW) EncodedLen(count int) int { return 2 * count }

// EncodeSlice appends vals as interleaved (value, witness) word pairs.
//
//cc:hotpath
func (MinPlusW) EncodeSlice(dst []Word, vals []ValW) []Word {
	dst, w := grow(dst, 2*len(vals))
	for i, v := range vals {
		w[2*i] = Word(v.V)
		w[2*i+1] = Word(v.W)
	}
	return dst
}

// DecodeSlice decodes interleaved (value, witness) word pairs.
//
//cc:hotpath
func (MinPlusW) DecodeSlice(out []ValW, src []Word) {
	for i := range out {
		out[i] = ValW{V: int64(src[2*i]), W: int64(src[2*i+1])}
	}
}

// EncodedLen returns count (one full word per boolean; see PackedBool for
// the bit-packed transport).
func (Bool) EncodedLen(count int) int { return count }

// EncodeSlice appends vals as 0/1 words.
//
//cc:hotpath
func (Bool) EncodeSlice(dst []Word, vals []bool) []Word {
	dst, w := grow(dst, len(vals))
	for i, v := range vals {
		if v {
			w[i] = 1
		} else {
			w[i] = 0
		}
	}
	return dst
}

// DecodeSlice decodes 0/1 words.
//
//cc:hotpath
func (Bool) DecodeSlice(out []bool, src []Word) {
	for i := range out {
		out[i] = src[i] != 0
	}
}

var (
	_ BulkCodec[int64] = Int64{}
	_ BulkCodec[int64] = MinPlus{}
	_ BulkCodec[int64] = Zp{}
	_ BulkCodec[ValW]  = MinPlusW{}
	_ BulkCodec[bool]  = Bool{}
)
