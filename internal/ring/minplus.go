package ring

import "math"

// Inf is the additive identity of the min-plus semiring: "no path".
// It is chosen so that Inf + Inf does not overflow int64.
const Inf int64 = math.MaxInt64 / 4

// IsInf reports whether a min-plus value represents "no path". Any value at
// or above Inf is treated as infinite; sums of two finite distances stay
// below Inf for all inputs the library accepts.
func IsInf(a int64) bool { return a >= Inf }

// MinPlus is the tropical (min, +) semiring over int64 with Inf as zero.
// The matrix product over MinPlus is the distance product
// (S ⋆ T)[u][v] = min_w S[u][w] + T[w][v] used by all APSP algorithms
// (§3.3 of the paper).
type MinPlus struct{}

var _ Semiring[int64] = MinPlus{}
var _ Codec[int64] = MinPlus{}

// Zero returns Inf, the identity of min.
func (MinPlus) Zero() int64 { return Inf }

// One returns 0, the identity of +.
func (MinPlus) One() int64 { return 0 }

// Add returns min(a, b).
func (MinPlus) Add(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Mul returns a + b, saturating at Inf.
func (MinPlus) Mul(a, b int64) int64 {
	if IsInf(a) || IsInf(b) {
		return Inf
	}
	return a + b
}

// Equal reports equality, identifying all infinite values.
func (MinPlus) Equal(a, b int64) bool {
	if IsInf(a) && IsInf(b) {
		return true
	}
	return a == b
}

// Width returns the one-word transport width.
func (MinPlus) Width() int { return 1 }

// Encode stores the value as a single word.
func (MinPlus) Encode(v int64, dst []Word) { dst[0] = Word(v) }

// Decode reads a single-word min-plus value.
func (MinPlus) Decode(src []Word) int64 { return int64(src[0]) }

// ValW is a min-plus value tagged with a witness: the index w that achieved
// the minimum in a distance product. NoWitness marks untagged entries.
type ValW struct {
	V int64 // distance value
	W int64 // witness index, or NoWitness
}

// NoWitness marks a ValW whose witness is unknown or not applicable.
const NoWitness int64 = -1

// MinPlusW is the min-plus semiring on witness-tagged values. It is how the
// semiring (3D) matmul algorithm is "easily modified to produce witnesses"
// (§3.3): seed the right operand's entries with their row index as witness;
// multiplication propagates the right operand's tag, and addition keeps the
// tag of the smaller value (ties broken toward the smaller witness so the
// algebra stays associative and deterministic).
type MinPlusW struct{}

var _ Semiring[ValW] = MinPlusW{}
var _ Codec[ValW] = MinPlusW{}

// Zero returns (Inf, NoWitness).
func (MinPlusW) Zero() ValW { return ValW{V: Inf, W: NoWitness} }

// One returns (0, NoWitness).
func (MinPlusW) One() ValW { return ValW{V: 0, W: NoWitness} }

// Add returns the smaller of a and b, breaking value ties toward the
// smaller witness (with NoWitness ordered last).
func (MinPlusW) Add(a, b ValW) ValW {
	if less(a, b) {
		return a
	}
	return b
}

// Less reports the strict order Add minimises over: by value, then by
// witness with NoWitness last. Specialised kernels (matrix.Mul's MinPlusW
// fast path) use it to reproduce Add's tie-breaking exactly.
func (MinPlusW) Less(a, b ValW) bool { return less(a, b) }

func less(a, b ValW) bool {
	if a.V != b.V {
		return a.V < b.V
	}
	// Order witnesses with NoWitness last so real witnesses win ties.
	aw, bw := a.W, b.W
	if aw == NoWitness {
		return false
	}
	if bw == NoWitness {
		return true
	}
	return aw < bw
}

// Mul adds values and keeps the right operand's witness, falling back to the
// left one when the right operand is untagged.
func (MinPlusW) Mul(a, b ValW) ValW {
	if IsInf(a.V) || IsInf(b.V) {
		return ValW{V: Inf, W: NoWitness}
	}
	w := b.W
	if w == NoWitness {
		w = a.W
	}
	return ValW{V: a.V + b.V, W: w}
}

// Equal compares values and witnesses, identifying all infinities.
func (MinPlusW) Equal(a, b ValW) bool {
	if IsInf(a.V) && IsInf(b.V) {
		return true
	}
	return a == b
}

// Width returns the two-word transport width (value + witness).
func (MinPlusW) Width() int { return 2 }

// Encode stores value then witness.
func (MinPlusW) Encode(v ValW, dst []Word) {
	dst[0] = Word(v.V)
	dst[1] = Word(v.W)
}

// Decode reads a (value, witness) pair.
func (MinPlusW) Decode(src []Word) ValW {
	return ValW{V: int64(src[0]), W: int64(src[1])}
}
