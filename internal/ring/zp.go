package ring

// Zp is the prime field Z/pZ. It is used by the test suite to exercise
// bilinear schemes and Strassen recursion over a ring where overflow is
// impossible, and for fingerprint-style equality checks.
//
// Elements are canonical residues in [0, p). The modulus must be a prime
// below 2^31 so that products fit in int64 before reduction.
type Zp struct {
	p int64
}

// NewZp returns the field Z/pZ. p must be in [2, 2^31); primality is the
// caller's responsibility (composite p yields a ring, not a field, which is
// still a valid Ring instance).
func NewZp(p int64) Zp {
	if p < 2 || p >= 1<<31 {
		panic("ring: Zp modulus out of range")
	}
	return Zp{p: p}
}

var _ Ring[int64] = Zp{}
var _ Codec[int64] = Zp{}

// Modulus returns p.
func (z Zp) Modulus() int64 { return z.p }

// Norm maps any int64 to its canonical residue in [0, p).
func (z Zp) Norm(a int64) int64 {
	a %= z.p
	if a < 0 {
		a += z.p
	}
	return a
}

// Zero returns 0.
func (z Zp) Zero() int64 { return 0 }

// One returns 1 (mod p).
func (z Zp) One() int64 { return 1 % z.p }

// Add returns a + b (mod p).
func (z Zp) Add(a, b int64) int64 { return (a + b) % z.p }

// Mul returns a * b (mod p).
func (z Zp) Mul(a, b int64) int64 { return a * b % z.p }

// Neg returns -a (mod p).
func (z Zp) Neg(a int64) int64 {
	if a == 0 {
		return 0
	}
	return z.p - a
}

// Sub returns a - b (mod p).
func (z Zp) Sub(a, b int64) int64 { return z.Norm(a - b) }

// Scale returns c * a (mod p).
func (z Zp) Scale(c int64, a int64) int64 { return z.Mul(z.Norm(c), a) }

// Equal reports a == b as residues.
func (z Zp) Equal(a, b int64) bool { return a == b }

// Width returns the one-word transport width.
func (Zp) Width() int { return 1 }

// Encode stores the residue as a single word.
func (Zp) Encode(v int64, dst []Word) { dst[0] = Word(v) }

// Decode reads a single-word residue.
func (Zp) Decode(src []Word) int64 { return int64(src[0]) }
