package ring

// PackedBool is the bit-packed Boolean transport codec: a slice of k
// booleans ships as ⌈k/64⌉ words, element i in bit i%64 of word i/64
// (little-endian bit order), instead of one full word per entry.
//
// Packing is faithful to the simulator's cost model. The model's message is
// one O(log n)-bit word, and the simulator equates that message with one
// 64-bit machine word for every algebra — an int64 entry, a Z_p residue,
// and a boolean all cost one word. Under that convention a message has 64
// usable bits, so carrying 64 boolean entries in one message is exactly the
// classic "pack a row of bits into a machine word" trick, not a violation
// of the bandwidth bound: Boolean-product bandwidth, and with it the
// simulated round count, drops by the word width. The layout is fixed by
// the element count alone, so routing stays oblivious.
//
// PackedBool is a pure transport: the algebra is still ring.Bool. Its
// single-element encoding (Width 1, bit 0 of one word) coincides with
// Bool's 0/1 word, but slice encodings are NOT concatenations of element
// encodings — decode a chunk only from its first word, as the BulkCodec
// contract requires.
type PackedBool struct{}

var _ BulkCodec[bool] = PackedBool{}

// Width returns 1: a lone boolean still occupies a full word.
func (PackedBool) Width() int { return 1 }

// Encode stores a single bool in bit 0 (identical to Bool's encoding).
func (PackedBool) Encode(v bool, dst []Word) {
	if v {
		dst[0] = 1
	} else {
		dst[0] = 0
	}
}

// Decode reads a single bool from bit 0.
func (PackedBool) Decode(src []Word) bool { return src[0]&1 != 0 }

// EncodedLen returns ⌈count/64⌉.
func (PackedBool) EncodedLen(count int) int { return (count + 63) / 64 }

// EncodeSlice appends vals packed 64 entries per word.
//
//cc:hotpath
func (PackedBool) EncodeSlice(dst []Word, vals []bool) []Word {
	dst, w := grow(dst, (len(vals)+63)/64)
	PackBits(w, vals)
	return dst
}

// DecodeSlice unpacks len(out) entries from the chunk at src[0].
//
//cc:hotpath
func (PackedBool) DecodeSlice(out []bool, src []Word) {
	UnpackBits(out, src)
}

// PackBits packs vals into dst, 64 entries per word, element i in bit i%64
// of word i/64 — the one bit layout shared by the PackedBool transport,
// graphs.Bitset, and the matrix.BitDense local kernels, so packed rows move
// between the three without any re-shuffling. dst must hold at least
// ⌈len(vals)/64⌉ words; the words covered by vals are fully overwritten
// (trailing pad bits are cleared), words beyond them are untouched.
//
//cc:hotpath
func PackBits(dst []Word, vals []bool) {
	n := (len(vals) + 63) / 64
	w := dst[:n]
	for i := range w {
		w[i] = 0
	}
	for i, v := range vals {
		if v {
			w[i>>6] |= 1 << (uint(i) & 63)
		}
	}
}

// UnpackBits is the inverse of PackBits: it unpacks len(out) entries from
// src's leading words.
//
//cc:hotpath
func UnpackBits(out []bool, src []Word) {
	for i := range out {
		out[i] = src[i>>6]&(1<<(uint(i)&63)) != 0
	}
}
