// Package ring provides the algebraic structures used throughout the
// library: semirings, rings, and transport codecs that serialise ring
// elements into 64-bit words for the congested-clique network.
//
// The matrix-multiplication algorithms of Censor-Hillel et al. (PODC 2015)
// are parameterised by the algebra: the 3D algorithm (Theorem 1, part 1)
// works over any semiring, while the fast bilinear algorithm (Theorem 1,
// part 2) requires a ring, because bilinear schemes such as Strassen's use
// subtraction.
package ring

// Semiring describes a commutative-addition semiring over element type T.
//
// Implementations must satisfy the usual laws: (Add, Zero) is a commutative
// monoid, (Mul, One) is a monoid, Mul distributes over Add, and Zero
// annihilates under Mul. The laws are checked by property tests in this
// package for every shipped instance.
type Semiring[T any] interface {
	// Zero returns the additive identity.
	Zero() T
	// One returns the multiplicative identity.
	One() T
	// Add returns a + b.
	Add(a, b T) T
	// Mul returns a * b.
	Mul(a, b T) T
	// Equal reports whether two elements are equal.
	Equal(a, b T) bool
}

// Ring extends Semiring with additive inverses, as required by bilinear
// (Strassen-like) matrix-multiplication schemes.
type Ring[T any] interface {
	Semiring[T]
	// Neg returns -a.
	Neg(a T) T
	// Sub returns a - b.
	Sub(a, b T) T
	// Scale returns c*a for a small integer c. Bilinear schemes store their
	// coefficients as machine integers; Scale lets them act on any ring.
	Scale(c int64, a T) T
}

// Word is the transport unit of the congested-clique model: one O(log n)-bit
// message. It mirrors clique.Word; the duplication avoids a dependency cycle.
type Word = uint64

// Codec serialises ring elements into fixed-width word vectors for network
// transport. Elements that need b bits cost ceil(b/64) words per message,
// which realises the paper's "factor b / log n" bandwidth overhead (e.g. the
// polynomial-ring embedding of Lemma 18). The hot paths ship whole slices
// through the BulkCodec extension; per-element Encode/Decode remains the
// portable fallback (AsBulk adapts any Codec).
type Codec[T any] interface {
	// Width returns the number of words used to encode one element.
	Width() int
	// Encode writes the encoding of v into dst, which has length Width().
	Encode(v T, dst []Word)
	// Decode reads an element from src, which has length Width().
	Decode(src []Word) T
}
