package ring

// Bool is the Boolean (OR, AND) semiring. It is the natural algebra for
// reachability and adjacency products: (A·B)[u][v] = OR_w A[u][w] AND B[w][v].
//
// Bool is a semiring, not a ring: OR has no inverse. Fast (Strassen-like)
// multiplication of Boolean matrices therefore goes through the integer
// ring — see ccmm.BoolProductFast — exactly as in the paper (§3.1, the
// colour-coding products are "computed over the ring Z").
type Bool struct{}

var _ Semiring[bool] = Bool{}
var _ Codec[bool] = Bool{}

// Zero returns false.
func (Bool) Zero() bool { return false }

// One returns true.
func (Bool) One() bool { return true }

// Add returns a OR b.
func (Bool) Add(a, b bool) bool { return a || b }

// Mul returns a AND b.
func (Bool) Mul(a, b bool) bool { return a && b }

// Equal reports a == b.
func (Bool) Equal(a, b bool) bool { return a == b }

// Width returns the one-word transport width of a bool.
//
// A single bit is sent as a full O(log n)-bit message: one entry, one word.
// The engines ship Boolean products through the bit-packed PackedBool
// transport instead (64 entries per word); Bool's own codec remains the
// unpacked reference layout.
func (Bool) Width() int { return 1 }

// Encode stores the bool as word 0 or 1.
func (Bool) Encode(v bool, dst []Word) {
	if v {
		dst[0] = 1
	} else {
		dst[0] = 0
	}
}

// Decode reads a bool encoded as a word.
func (Bool) Decode(src []Word) bool { return src[0] != 0 }
