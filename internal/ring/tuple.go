package ring

// Tuple is one sparse-matrix entry in transit: a row or column index paired
// with its algebra value. The sparse multiplication engine (ccmm's
// EngineSparse) moves its operands and partial products as streams of
// tuples instead of dense rows, so a product's word cost scales with the
// operands' nonzero counts rather than with n².
type Tuple[T any] struct {
	// Idx is the global row/column index the value belongs to.
	Idx int32
	// Val is the algebra value.
	Val T
}

// AppendTuples appends one CSR row window (parallel column-index and value
// slices) onto dst as tuples. A nil vals slice means the row stores no
// explicit values — every entry is the algebra's one element, the
// convention adjacency matrices use — so the caller passes that element.
// It is the bridge from CSR-native operands into the tuple streams the
// sparse engine ships: no dense row ever materialises.
//
//cc:hotpath
func AppendTuples[T any](dst []Tuple[T], cols []int32, vals []T, one T) []Tuple[T] {
	if vals == nil {
		for _, c := range cols {
			dst = append(dst, Tuple[T]{Idx: c, Val: one})
		}
		return dst
	}
	for i, c := range cols {
		dst = append(dst, Tuple[T]{Idx: c, Val: vals[i]})
	}
	return dst
}

// TupleCodec bulk-encodes tuple streams for the wire transport. A k-tuple
// chunk is laid out as k index words followed by the value codec's
// k-element chunk:
//
//	[idx₀ … idx_{k-1}] [Val.EncodeSlice(val₀ … val_{k-1})]
//
// so EncodedLen(k) = k + Val.EncodedLen(k). Keeping the values in one
// inner bulk chunk preserves a packing value codec's compression —
// Boolean tuples ship their k values in ⌈k/64⌉ words through PackedBool —
// and keeps the chunk contract of BulkCodec: a chunk is atomic, decodable
// only from its first word, and not necessarily the concatenation of
// per-element encodings.
//
// The index words make the stream self-delimiting given its word length:
// EncodedLen is strictly increasing in the tuple count, so CountFor
// recovers the count of a lone chunk from the number of words it occupies.
// That is what lets the sparse engine's dynamic gather traffic (whose
// per-pair counts are data-dependent) travel header-free, the same
// out-of-band addressing convention the routing layer documents.
type TupleCodec[T any] struct {
	// Val encodes the value halves of the stream.
	Val BulkCodec[T]
}

// NewTupleCodec wraps a value codec (lifted to its bulk form) for tuple
// transport.
func NewTupleCodec[T any](c Codec[T]) TupleCodec[T] {
	return TupleCodec[T]{Val: AsBulk[T](c)}
}

// EncodedLen returns the number of words a count-tuple chunk occupies:
// count index words plus the value codec's chunk length.
func (tc TupleCodec[T]) EncodedLen(count int) int {
	return count + tc.Val.EncodedLen(count)
}

// EncodeSlice appends the chunk encoding of tups onto dst and returns the
// extended slice (exactly EncodedLen(len(tups)) words are appended). The
// value halves are gathered into vbuf — grown as needed and returned so
// hot paths can pool it; a nil vbuf allocates.
//
//cc:hotpath
func (tc TupleCodec[T]) EncodeSlice(dst []Word, tups []Tuple[T], vbuf []T) ([]Word, []T) {
	k := len(tups)
	dst, w := grow(dst, k)
	if cap(vbuf) < k {
		vbuf = make([]T, k) //cc:hotalloc-ok(capacity growth; callers pool vbuf)
	}
	vbuf = vbuf[:k]
	for i, t := range tups {
		w[i] = Word(uint32(t.Idx))
		vbuf[i] = t.Val
	}
	return tc.Val.EncodeSlice(dst, vbuf), vbuf
}

// DecodeSlice decodes len(out) tuples from the chunk starting at src[0];
// src must hold at least EncodedLen(len(out)) words. The value halves are
// staged through vbuf (grown as needed and returned for pooling); a nil
// vbuf allocates.
//
//cc:hotpath
func (tc TupleCodec[T]) DecodeSlice(out []Tuple[T], src []Word, vbuf []T) []T {
	k := len(out)
	if cap(vbuf) < k {
		vbuf = make([]T, k) //cc:hotalloc-ok(capacity growth; callers pool vbuf)
	}
	vbuf = vbuf[:k]
	tc.Val.DecodeSlice(vbuf, src[k:])
	for i := range out {
		out[i] = Tuple[T]{Idx: int32(uint32(src[i])), Val: vbuf[i]}
	}
	return vbuf
}

// CountFor inverts EncodedLen: it returns the tuple count whose chunk
// occupies exactly words words, or -1 if no count does (a malformed
// chunk). EncodedLen is strictly increasing — every tuple adds at least
// its index word — so the inverse is found by binary search.
func (tc TupleCodec[T]) CountFor(words int) int {
	if words == 0 {
		return 0
	}
	lo, hi := 0, words // EncodedLen(words) ≥ words, so the count is ≤ words
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if tc.EncodedLen(mid) <= words {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	if tc.EncodedLen(lo) != words {
		return -1
	}
	return lo
}
