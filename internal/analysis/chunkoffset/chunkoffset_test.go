package chunkoffset_test

import (
	"testing"

	"github.com/algebraic-clique/algclique/internal/analysis/chunkoffset"
	"github.com/algebraic-clique/algclique/internal/analysis/framework/analysistest"
)

func TestChunkoffset(t *testing.T) {
	analysistest.Run(t, "testdata", chunkoffset.Analyzer, "a")
}
