// Package chunkoffset defines the cliquevet analyzer enforcing the bulk-
// codec chunk contract (DESIGN.md "Wire format"): multi-chunk messages
// are concatenations of EncodeSlice chunks, and a receiver may only find
// chunk k's start by summing the EncodedLen of chunks 0..k-1 — offsets
// hand-computed from element counts silently corrupt packed codecs, where
// EncodedLen(k) ≠ k (PackedBool packs 64 entries per word).
//
// The check is at call sites of EncodeSlice/DecodeSlice (outside
// internal/ring, which defines the formats): when the word-slice argument
// is a slice expression buf[off:...], off must derive from an
// EncodedLen/CountFor/Width call — through locals, arithmetic, and
// += accumulation — or be the constant 0. A raw element count, len(),
// or literal offset is flagged.
package chunkoffset

import (
	"go/ast"
	"go/constant"

	"github.com/algebraic-clique/algclique/internal/analysis/flow"
	"github.com/algebraic-clique/algclique/internal/analysis/framework"
)

// Analyzer is the chunkoffset check.
var Analyzer = &framework.Analyzer{
	Name: "chunkoffset",
	Doc:  "flag EncodeSlice/DecodeSlice word offsets not derived from codec EncodedLen (the chunk contract)",
	Run:  run,
}

// approvedSources are the codec methods whose results legitimately
// measure wire words.
var approvedSources = map[string]bool{"EncodedLen": true, "CountFor": true, "Width": true}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	isSource := func(e ast.Expr) bool {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		name, _, _ := flow.CalleeOf(pass.TypesInfo, call)
		return approvedSources[name]
	}
	taint := flow.Compute(pass.TypesInfo, fd.Body, isSource, flow.Options{
		ThroughIndex:   true,
		ThroughBinary:  true,
		ThroughConvert: true,
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, _, _ := flow.CalleeOf(pass.TypesInfo, call)
		var wordArg ast.Expr
		switch name {
		case "EncodeSlice":
			if len(call.Args) >= 1 {
				wordArg = call.Args[0]
			}
		case "DecodeSlice":
			if len(call.Args) >= 2 {
				wordArg = call.Args[1]
			}
		}
		if wordArg == nil {
			return true
		}
		sl, ok := wordArg.(*ast.SliceExpr)
		if !ok || sl.Low == nil {
			return true
		}
		if isZeroConst(pass, sl.Low) {
			return true
		}
		if taint.Tainted(sl.Low) {
			return true
		}
		pass.Reportf(sl.Low.Pos(),
			"%s word offset does not derive from EncodedLen: the chunk contract requires offsets summed from codec EncodedLen, not element counts (packed codecs have EncodedLen(k) ≠ k)", name)
		return true
	})
}

func isZeroConst(pass *framework.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v, ok := constant.Int64Val(constant.ToInt(tv.Value))
	return ok && v == 0
}
