// Fixture for the chunkoffset analyzer: EncodeSlice/DecodeSlice word
// offsets must derive from codec EncodedLen sums (the chunk contract).
package a

type Word = uint64

type codec struct{}

func (codec) EncodedLen(count int) int { return (count + 63) / 64 }

func (codec) EncodeSlice(dst []Word, vals []bool) []Word { return dst }

func (codec) DecodeSlice(out []bool, src []Word) {}

func goodSecondChunk(c codec, buf []Word, a, b []bool) {
	c.DecodeSlice(a, buf[0:])
	off := c.EncodedLen(len(a))
	c.DecodeSlice(b, buf[off:])
}

func goodAccumulated(c codec, buf []Word, rows [][]bool) {
	off := 0
	for _, r := range rows {
		c.DecodeSlice(r, buf[off:])
		off += c.EncodedLen(len(r))
	}
}

func badElementCount(c codec, buf []Word, a, b []bool) {
	off := len(a)               // a raw element count, not a wire length
	c.DecodeSlice(b, buf[off:]) // want "word offset does not derive from EncodedLen"
}

func badLiteral(c codec, buf []Word, a []bool) {
	c.DecodeSlice(a, buf[8:]) // want "word offset does not derive from EncodedLen"
}

func badEncodeOffset(c codec, buf []Word, a []bool, k int) {
	c.EncodeSlice(buf[k:], a) // want "word offset does not derive from EncodedLen"
}
