// Package flow implements the small intra-function taint analysis shared
// by cliquevet's dataflow-flavoured analyzers: given a structural
// predicate marking source expressions (a Mail accessor call, an
// EncodedLen call, …), it computes the local variables reached by those
// sources through assignments and reports whether an arbitrary expression
// is derived from one.
//
// The analysis is a conservative syntactic fixpoint, deliberately simple:
// it tracks named locals only (no field- or element-sensitive aliasing),
// which is exactly the granularity the enforced contracts are written at —
// "a value derived from Mail", "a cost that comes from EncodedLen".
package flow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Options select how taint propagates through composite expressions.
type Options struct {
	// ThroughIndex propagates x[i] ← x and ranges` values ← ranged
	// expression. RefOnly limits that to results of reference-like type
	// (slice, pointer, map, interface), the aliasing-preserving subset.
	ThroughIndex bool
	RefOnly      bool
	// ThroughBinary propagates a OP b ← a|b (cost arithmetic).
	ThroughBinary bool
	// ThroughConvert propagates T(x) ← x for type conversions.
	ThroughConvert bool
}

// Set is the result of a taint computation over one function body.
type Set struct {
	info     *types.Info
	isSource func(ast.Expr) bool
	opt      Options
	vars     map[types.Object]bool
}

// Compute runs the fixpoint over body.
func Compute(info *types.Info, body ast.Node, isSource func(ast.Expr) bool, opt Options) *Set {
	s := &Set{info: info, isSource: isSource, opt: opt, vars: make(map[types.Object]bool)}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				changed = s.assign(st) || changed
			case *ast.ValueSpec:
				for i, name := range st.Names {
					if i < len(st.Values) && s.Tainted(st.Values[i]) {
						changed = s.taintIdent(name) || changed
					}
				}
			case *ast.RangeStmt:
				if s.opt.ThroughIndex && st.X != nil && s.Tainted(st.X) {
					if v, ok := st.Value.(*ast.Ident); ok && s.refOK(v) {
						changed = s.taintIdent(v) || changed
					}
				}
			}
			return true
		})
	}
	return s
}

// assign applies one assignment statement, returning whether new taint
// appeared.
func (s *Set) assign(st *ast.AssignStmt) bool {
	changed := false
	if len(st.Lhs) == len(st.Rhs) {
		for i, lhs := range st.Lhs {
			rhs := st.Rhs[i]
			tainted := s.Tainted(rhs)
			if !tainted && st.Tok != token.ASSIGN && st.Tok != token.DEFINE && s.opt.ThroughBinary {
				// op-assign: x op= rhs keeps x's own taint; nothing new.
				continue
			}
			if tainted {
				if id := baseIdent(lhs); id != nil {
					changed = s.taintIdent(id) || changed
				}
			}
		}
		return changed
	}
	// Tuple assignment a, b := f(): taint every LHS if the call is tainted.
	if len(st.Rhs) == 1 && s.Tainted(st.Rhs[0]) {
		for _, lhs := range st.Lhs {
			if id := baseIdent(lhs); id != nil {
				changed = s.taintIdent(id) || changed
			}
		}
	}
	return changed
}

// baseIdent unwraps an assignment target to its base identifier: writes
// through an index or dereference (buf[i] = src, *p = src) taint the
// container at the granularity this analysis tracks. Field selectors stay
// opaque — x.f = src does not taint x.
func baseIdent(lhs ast.Expr) *ast.Ident {
	for {
		switch e := unparen(lhs).(type) {
		case *ast.Ident:
			return e
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		default:
			return nil
		}
	}
}

func (s *Set) taintIdent(id *ast.Ident) bool {
	obj := s.info.Defs[id]
	if obj == nil {
		obj = s.info.Uses[id]
	}
	if obj == nil || s.vars[obj] {
		return false
	}
	s.vars[obj] = true
	return true
}

// refOK reports whether the identifier's type passes the RefOnly filter.
func (s *Set) refOK(e ast.Expr) bool {
	if !s.opt.RefOnly {
		return true
	}
	tv, ok := s.info.Types[e]
	if !ok {
		if id, isID := e.(*ast.Ident); isID {
			if obj := s.info.Defs[id]; obj != nil {
				return isRefType(obj.Type())
			}
		}
		return false
	}
	return isRefType(tv.Type)
}

func isRefType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map, *types.Interface, *types.Chan:
		return true
	}
	return false
}

// Tainted reports whether e derives from a source under the configured
// propagation rules.
func (s *Set) Tainted(e ast.Expr) bool {
	if e == nil {
		return false
	}
	if s.isSource(e) {
		return true
	}
	switch x := e.(type) {
	case *ast.Ident:
		obj := s.info.Uses[x]
		if obj == nil {
			obj = s.info.Defs[x]
		}
		return obj != nil && s.vars[obj]
	case *ast.ParenExpr:
		return s.Tainted(x.X)
	case *ast.SliceExpr:
		return s.Tainted(x.X)
	case *ast.IndexExpr:
		if s.opt.ThroughIndex && s.refOK(x) {
			return s.Tainted(x.X)
		}
		return false
	case *ast.StarExpr:
		if s.opt.ThroughIndex && s.refOK(x) {
			return s.Tainted(x.X)
		}
		return false
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return s.Tainted(x.X)
		}
		return false
	case *ast.TypeAssertExpr:
		return s.Tainted(x.X)
	case *ast.BinaryExpr:
		if s.opt.ThroughBinary {
			return s.Tainted(x.X) || s.Tainted(x.Y)
		}
		return false
	case *ast.CallExpr:
		if s.opt.ThroughConvert && s.isConversion(x) && len(x.Args) == 1 {
			return s.Tainted(x.Args[0])
		}
		return false
	}
	return false
}

// isConversion reports whether the call expression is a type conversion.
func (s *Set) isConversion(call *ast.CallExpr) bool {
	tv, ok := s.info.Types[call.Fun]
	return ok && tv.IsType()
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// CalleeOf resolves a call's target: the method or function name and, when
// resolvable, the package path of the receiver type or function. Calls to
// function-typed values (closures, parameters) report the value's name
// with funcValue=true.
func CalleeOf(info *types.Info, call *ast.CallExpr) (name, pkgPath string, funcValue bool) {
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				name = f.Name()
				if recv := sel.Recv(); recv != nil {
					pkgPath = pathOfType(recv)
				}
				if pkgPath == "" && f.Pkg() != nil {
					pkgPath = f.Pkg().Path()
				}
				return name, pkgPath, false
			}
			// Method-valued field or func-typed struct field.
			return sel.Obj().Name(), "", true
		}
		// Package-qualified call p.F(...).
		if obj := info.Uses[fun.Sel]; obj != nil {
			if f, ok := obj.(*types.Func); ok {
				pp := ""
				if f.Pkg() != nil {
					pp = f.Pkg().Path()
				}
				return f.Name(), pp, false
			}
			if _, ok := obj.Type().Underlying().(*types.Signature); ok {
				return obj.Name(), "", true
			}
		}
	case *ast.Ident:
		if obj := info.Uses[fun]; obj != nil {
			switch o := obj.(type) {
			case *types.Func:
				pp := ""
				if o.Pkg() != nil {
					pp = o.Pkg().Path()
				}
				return o.Name(), pp, false
			case *types.Var:
				if _, ok := o.Type().Underlying().(*types.Signature); ok {
					return o.Name(), "", true
				}
			}
		}
	}
	return "", "", false
}

// pathOfType digs the package path out of a (possibly pointered/named)
// receiver type.
func pathOfType(t types.Type) string {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			if tt.Obj().Pkg() != nil {
				return tt.Obj().Pkg().Path()
			}
			return ""
		default:
			return ""
		}
	}
}
