package hotalloc_test

import (
	"testing"

	"github.com/algebraic-clique/algclique/internal/analysis/framework/analysistest"
	"github.com/algebraic-clique/algclique/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotalloc.Analyzer, "a")
}
