// Fixture for the hotalloc analyzer: allocation discipline in //cc:hotpath
// functions and pooled-shape allocation in *Scratch-threading functions.
package a

import "fmt"

type pair struct{ a, b int }

func sink(v any) { _ = v }

//cc:hotpath
func hot(n int, buf []uint64) []uint64 {
	scratch := make([]uint64, n) // want "allocates in a"
	_ = fmt.Sprintf("%d", n)     // want "fmt.Sprintf formats"
	xs := []int{1, 2}            // want "composite literal allocates"
	p := &pair{a: 1}             // want "composite literal allocates"
	sink(n)                      // want "boxing int into interface argument"
	_, _, _ = scratch, xs, p
	if cap(buf) < n {
		buf = make([]uint64, n) //cc:hotalloc-ok(capacity growth)
	}
	if n < 0 {
		panic(fmt.Sprintf("bad n %d", n)) // panic construction is the cold path
	}
	return buf[:n]
}

func cold(n int) []uint64 {
	return make([]uint64, n) // unmarked functions may allocate
}

type Scratch struct{ pool [][][]uint64 }

func fills(sc *Scratch, n int) [][][]uint64 {
	return make([][][]uint64, n) // want "make of message-matrix shape"
}

func flat(sc *Scratch, n int) []uint64 {
	return make([]uint64, n) // flatter shapes are not what the pools provide
}

func (sc *Scratch) get(n int) [][][]uint64 {
	return make([][][]uint64, n) // the pool implementation itself is exempt
}
