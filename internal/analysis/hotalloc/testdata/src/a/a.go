// Fixture for the hotalloc analyzer: allocation discipline in //cc:hotpath
// functions and pooled-shape allocation in *Scratch-threading functions.
package a

import "fmt"

type pair struct{ a, b int }

func sink(v any) { _ = v }

//cc:hotpath
func hot(n int, buf []uint64) []uint64 {
	scratch := make([]uint64, n) // want "allocates in a"
	_ = fmt.Sprintf("%d", n)     // want "fmt.Sprintf formats"
	xs := []int{1, 2}            // want "composite literal allocates"
	p := &pair{a: 1}             // want "composite literal allocates"
	sink(n)                      // want "boxing int into interface argument"
	_, _, _ = scratch, xs, p
	if cap(buf) < n {
		buf = make([]uint64, n) //cc:hotalloc-ok(capacity growth)
	}
	if n < 0 {
		panic(fmt.Sprintf("bad n %d", n)) // panic construction is the cold path
	}
	return buf[:n]
}

func cold(n int) []uint64 {
	return make([]uint64, n) // unmarked functions may allocate
}

// bitMat mirrors the packed-kernel shapes: hotpath methods with pooled
// backing storage that may only grow on the capacity-miss cold path.
type bitMat struct {
	w      []uint64
	rowAny []uint64
}

//cc:hotpath
func (m *bitMat) reset(n int) {
	if cap(m.w) < n {
		m.w = make([]uint64, n) //cc:hotalloc-ok(capacity growth)
	}
	m.w = m.w[:n]
}

//cc:hotpath
func (m *bitMat) nonzero(n int) []uint64 {
	m.rowAny = make([]uint64, n) // want "allocates in a"
	return m.rowAny
}

// orRow is the shape of the word-parallel kernels: pure sub-slicing and
// word ops, no allocation — the analyzer must stay silent.
//
//cc:hotpath
func orRow(dst, src []uint64) {
	src = src[:len(dst)]
	for j := range dst {
		dst[j] |= src[j]
	}
}

type Scratch struct{ pool [][][]uint64 }

func fills(sc *Scratch, n int) [][][]uint64 {
	return make([][][]uint64, n) // want "make of message-matrix shape"
}

func flat(sc *Scratch, n int) []uint64 {
	return make([]uint64, n) // flatter shapes are not what the pools provide
}

func (sc *Scratch) get(n int) [][][]uint64 {
	return make([][][]uint64, n) // the pool implementation itself is exempt
}
