// Package hotalloc defines the cliquevet analyzer enforcing the scratch-
// pool allocation discipline on the simulator's hot paths.
//
// Two rules:
//
//  1. Functions whose doc comment carries the //cc:hotpath marker (see
//     DESIGN.md "Enforced invariants") must be allocation-free in steady
//     state: make/new, slice/map composite literals, &T{…} literals,
//     fmt.Sprint*-family formatting, and implicit boxing of non-pointer
//     values into interfaces are flagged. Cold sub-paths — capacity
//     growth, panics — are exempt: anything inside a panic(...) argument
//     is ignored, and a deliberate slow-path allocation is annotated
//     //cc:hotalloc-ok(reason) on its line.
//
//  2. Functions threading a ccmm/routing *Scratch parameter must draw
//     message matrices from the pool rather than allocating them: a
//     make() of a three-level slice shape (the [][][]T message/view
//     matrices the pools exist for) is flagged unless the function is a
//     method of the scratch types themselves. The nil-scratch transient
//     fallbacks annotate the make with //cc:hotalloc-ok.
package hotalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/algebraic-clique/algclique/internal/analysis/framework"
)

// Analyzer is the hotalloc check.
var Analyzer = &framework.Analyzer{
	Name: "hotalloc",
	Doc:  "flag allocations, fmt formatting, and interface boxing in //cc:hotpath functions, and pooled-shape make() in *Scratch-threading functions",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if framework.HasMarker(fd.Doc, "cc:hotpath") {
				checkHotpath(pass, fd)
			}
			if threadsScratch(pass, fd) && !isScratchMethod(pass, fd) {
				checkPooledShapes(pass, fd)
			}
		}
	}
	return nil
}

// checkHotpath walks a marked function's body, skipping panic arguments.
func checkHotpath(pass *framework.Pass, fd *ast.FuncDecl) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if ok && isPanic(pass, call) {
			return false // panic construction is the cold path
		}
		switch node := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, node)
		case *ast.CompositeLit:
			switch pass.TypesInfo.Types[node].Type.Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(node.Pos(), "composite literal allocates in //cc:hotpath function %s", fd.Name.Name)
			}
		case *ast.UnaryExpr:
			if node.Op.String() == "&" {
				if _, isLit := node.X.(*ast.CompositeLit); isLit {
					pass.Reportf(node.Pos(), "&composite literal allocates in //cc:hotpath function %s", fd.Name.Name)
				}
			}
		}
		return true
	}
	for _, stmt := range fd.Body.List {
		ast.Inspect(stmt, walk)
	}
}

// checkHotCall flags make/new, fmt formatting, and boxing arguments.
func checkHotCall(pass *framework.Pass, call *ast.CallExpr) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		switch id.Name {
		case "make", "new":
			if obj := pass.TypesInfo.Uses[id]; obj == nil || obj.Parent() == types.Universe {
				pass.Reportf(call.Pos(), "%s() allocates in a //cc:hotpath function: draw from the scratch pool (//cc:hotalloc-ok for deliberate slow-path growth)", id.Name)
			}
			return
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			if strings.HasPrefix(fn.Name(), "Sprint") || fn.Name() == "Errorf" || strings.HasPrefix(fn.Name(), "Fprint") || strings.HasPrefix(fn.Name(), "Print") {
				pass.Reportf(call.Pos(), "fmt.%s formats (and allocates) in a //cc:hotpath function", fn.Name())
				return
			}
		}
	}
	checkBoxing(pass, call)
}

// checkBoxing flags arguments whose concrete non-pointer value is
// implicitly converted to an interface parameter — the conversion heap-
// allocates. Pointer and interface arguments ride in the interface word
// for free and pass.
func checkBoxing(pass *framework.Pass, call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.IsType() {
		return // conversion, not a call
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		if call.Ellipsis.IsValid() && i == len(call.Args)-1 {
			continue // a spread arg passes the slice itself; nothing boxes
		}
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if sl, ok := last.(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		if _, isTP := pt.(*types.TypeParam); isTP {
			continue
		}
		at, ok := pass.TypesInfo.Types[arg]
		if !ok || at.Type == nil {
			continue
		}
		switch at.Type.Underlying().(type) {
		case *types.Interface, *types.Pointer, *types.TypeParam:
			continue
		}
		if at.Value != nil && at.Type.Underlying() == types.Typ[types.UntypedNil] {
			continue
		}
		pass.Reportf(arg.Pos(), "boxing %s into interface argument allocates in a //cc:hotpath function",
			types.TypeString(at.Type, types.RelativeTo(pass.Pkg)))
	}
}

func isPanic(pass *framework.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	return obj == nil || obj.Parent() == types.Universe
}

// threadsScratch reports whether the function takes a ccmm or routing
// Scratch pointer parameter (including generic typedScratch pointers).
func threadsScratch(pass *framework.Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok {
			continue
		}
		if isScratchType(tv.Type) {
			return true
		}
	}
	return false
}

// isScratchType matches *P where P's name contains "Scratch" (Scratch,
// typedScratch[T], routing.Scratch).
func isScratchType(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	return strings.Contains(named.Obj().Name(), "Scratch")
}

// isScratchMethod exempts the pool implementation itself.
func isScratchMethod(pass *framework.Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[fd.Recv.List[0].Type]
	if !ok {
		return false
	}
	return isScratchType(tv.Type)
}

// checkPooledShapes flags make() of three-level slice shapes in scratch-
// threading functions: those are the message/view matrices the pools
// provide via getPayload/getView/getPay/getViews.
func checkPooledShapes(pass *framework.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "make" || len(call.Args) == 0 {
			return true
		}
		if obj := pass.TypesInfo.Uses[id]; obj != nil && obj.Parent() != types.Universe {
			return true
		}
		tv, ok := pass.TypesInfo.Types[call.Args[0]]
		if !ok {
			return true
		}
		if sliceDepth(tv.Type) >= 3 {
			pass.Reportf(call.Pos(), "make of message-matrix shape %s in a *Scratch-threading function: draw it from the pool (getPayload/getView) instead",
				types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
		}
		return true
	})
}

// sliceDepth counts structural (unnamed) slice nesting. Named element
// types stop the count: a [][]PolyElem operand row matrix is a fresh
// engine input, not a pooled [][][]Word message matrix, even when the
// named type is itself a slice.
func sliceDepth(t types.Type) int {
	depth := 0
	for {
		sl, ok := t.(*types.Slice)
		if !ok {
			return depth
		}
		depth++
		t = sl.Elem()
	}
}
