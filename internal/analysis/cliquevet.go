// Package analysis assembles cliquevet: the multichecker of custom
// analyzers that mechanise the simulator's documented contracts — Mail
// lifetime, payload ownership, charge parity, chunk offsets, determinism,
// and hot-path allocation discipline. DESIGN.md "Enforced invariants"
// maps each contract to its analyzer; cmd/cliquevet is the standalone
// and go vet -vettool driver, and TestRepoIsClean keeps `go test ./...`
// failing on any regression CI would catch.
package analysis

import (
	"strings"

	"github.com/algebraic-clique/algclique/internal/analysis/chargeparity"
	"github.com/algebraic-clique/algclique/internal/analysis/chunkoffset"
	"github.com/algebraic-clique/algclique/internal/analysis/detorder"
	"github.com/algebraic-clique/algclique/internal/analysis/framework"
	"github.com/algebraic-clique/algclique/internal/analysis/hotalloc"
	"github.com/algebraic-clique/algclique/internal/analysis/mailretain"
	"github.com/algebraic-clique/algclique/internal/analysis/payloadown"
)

// ModulePath is the repository's module path.
const ModulePath = "github.com/algebraic-clique/algclique"

// Check pairs an analyzer with its package scope. Scoping lives here, in
// the multichecker, so the analyzers themselves stay testable on fixture
// packages with arbitrary import paths.
type Check struct {
	Analyzer *framework.Analyzer
	// Applies reports whether the analyzer runs on the package with the
	// given import path.
	Applies func(pkgPath string) bool
}

// deterministicPkgs are the packages whose schedules and outputs the
// oblivious/determinism tests pin: map order, wall clock, and global rand
// must not reach them.
var deterministicPkgs = []string{
	"internal/ccmm", "internal/clique", "internal/routing",
	"internal/subgraph", "internal/distance", "internal/girth",
}

func suffixIn(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// Checks returns the full cliquevet suite with its package scoping.
func Checks() []Check {
	everywhere := func(string) bool { return true }
	notClique := func(p string) bool { return !suffixIn(p, []string{"internal/clique"}) }
	return []Check{
		// The simulator package owns the Mail/payload machinery it hands
		// out, so the lifetime analyzers start one layer above it.
		{mailretain.Analyzer, notClique},
		{payloadown.Analyzer, notClique},
		// Charge parity is a contract on engine code driving the direct
		// plane; the clique package defines the charging primitives.
		{chargeparity.Analyzer, notClique},
		// The ring package defines the wire formats the chunk contract
		// protects; every consumer of a codec is in scope.
		{chunkoffset.Analyzer, func(p string) bool {
			return !suffixIn(p, []string{"internal/ring"})
		}},
		{detorder.Analyzer, func(p string) bool {
			return suffixIn(p, deterministicPkgs)
		}},
		{hotalloc.Analyzer, everywhere},
	}
}

// skipPkg excludes the analysis tooling itself: it is host-side
// infrastructure, not simulator code bound by the simulator's contracts.
func skipPkg(path string) bool {
	return strings.HasPrefix(path, ModulePath+"/internal/analysis") ||
		path == ModulePath+"/cmd/cliquevet"
}

// RunRepo loads every package of the module rooted at root and applies
// the scoped suite, returning all diagnostics in deterministic order.
func RunRepo(root string) ([]framework.Diagnostic, error) {
	loader := framework.NewLoader(map[string]string{ModulePath: root})
	pkgs, err := loader.LoadModule(ModulePath, root)
	if err != nil {
		return nil, err
	}
	return RunPackages(pkgs)
}

// RunPackages applies the scoped suite to the given packages.
func RunPackages(pkgs []*framework.Package) ([]framework.Diagnostic, error) {
	checks := Checks()
	var diags []framework.Diagnostic
	for _, pkg := range pkgs {
		if skipPkg(pkg.Path) {
			continue
		}
		for _, c := range checks {
			if !c.Applies(pkg.Path) {
				continue
			}
			if err := framework.RunAnalyzer(c.Analyzer, pkg, &diags); err != nil {
				return diags, err
			}
		}
	}
	return diags, nil
}
