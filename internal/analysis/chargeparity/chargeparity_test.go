package chargeparity_test

import (
	"testing"

	"github.com/algebraic-clique/algclique/internal/analysis/chargeparity"
	"github.com/algebraic-clique/algclique/internal/analysis/framework/analysistest"
)

func TestChargeparity(t *testing.T) {
	analysistest.Run(t, "testdata", chargeparity.Analyzer, "a")
}
