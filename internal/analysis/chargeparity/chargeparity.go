// Package chargeparity defines the cliquevet analyzer enforcing the
// accounting-plane/data-plane parity contract (DESIGN.md "Accounting
// plane vs data plane"): the direct transport moves payloads by
// reference, so the *only* thing keeping the ledger honest is that every
// SendPayload charges exactly the wire words the encoded path would have
// sent. A payload whose cost is a guessed literal, a raw element count,
// or nothing at all silently breaks the bit-identical-ledger guarantee
// that the differential tests and the paper's round bounds rest on.
//
// Checked at every SendPayload(src, dst, words, p) and
// ChargeLink(src, dst, words) call site in engine code:
//
//   - a non-zero words expression must derive from a codec measurement —
//     an EncodedLen/CountFor call, or a call through a cost closure (a
//     function-typed value returning int64, the idiom ExchangePayload and
//     exchangeVirtualPayload use to fold chunk structure) — through
//     locals, slice fills, arithmetic, and conversions;
//   - a constant-zero words (payloads riding a schedule charged
//     elsewhere) is legal only when the same function also charges
//     analytically via ChargeLink/ChargeBroadcast/FlushAnalytic.
package chargeparity

import (
	"go/ast"
	"go/constant"
	"go/types"

	"github.com/algebraic-clique/algclique/internal/analysis/flow"
	"github.com/algebraic-clique/algclique/internal/analysis/framework"
)

// Analyzer is the chargeparity check.
var Analyzer = &framework.Analyzer{
	Name: "chargeparity",
	Doc:  "flag payload sends whose analytic word cost is not derived from a codec EncodedLen/CountFor source or charged via an analytic flush",
	Run:  run,
}

var codecSources = map[string]bool{"EncodedLen": true, "CountFor": true}

var chargeCalls = map[string]bool{"ChargeLink": true, "ChargeBroadcast": true, "FlushAnalytic": true}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// isCostSource marks codec measurements and cost-closure calls.
func isCostSource(info *types.Info, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	name, _, funcValue := flow.CalleeOf(info, call)
	if codecSources[name] {
		return true
	}
	if !funcValue {
		return false
	}
	// A call through a function-typed value (parameter, local closure,
	// field): trust it as a cost source when it returns a single int64 —
	// the cost-closure signature the routing layer documents.
	tv, ok := info.Types[call.Fun]
	if !ok {
		return false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return false
	}
	basic, ok := sig.Results().At(0).Type().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Int64
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	taint := flow.Compute(pass.TypesInfo, fd.Body,
		func(e ast.Expr) bool { return isCostSource(pass.TypesInfo, e) },
		flow.Options{ThroughIndex: true, ThroughBinary: true, ThroughConvert: true})

	hasAnalyticCharge := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if name, _, _ := flow.CalleeOf(pass.TypesInfo, call); chargeCalls[name] {
				hasAnalyticCharge = true
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, _, _ := flow.CalleeOf(pass.TypesInfo, call)
		var cost ast.Expr
		switch name {
		case "SendPayload":
			if len(call.Args) == 4 {
				cost = call.Args[2]
			}
		case "ChargeLink":
			if len(call.Args) == 3 {
				cost = call.Args[2]
			}
		}
		if cost == nil {
			return true
		}
		if isZeroConst(pass, cost) {
			if name == "SendPayload" && !hasAnalyticCharge {
				pass.Reportf(call.Pos(),
					"zero-cost SendPayload in a function with no analytic charge (ChargeLink/ChargeBroadcast/FlushAnalytic): the payload's wire words are never charged, breaking ledger parity with the encoded plane")
			}
			return true
		}
		if taint.Tainted(cost) {
			return true
		}
		pass.Reportf(cost.Pos(),
			"%s cost does not derive from a codec EncodedLen/CountFor source: the direct plane must charge exactly the wire words the codec reports (a raw count or literal breaks packed codecs and ledger parity)", name)
		return true
	})
}

func isZeroConst(pass *framework.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v, ok := constant.Int64Val(constant.ToInt(tv.Value))
	return ok && v == 0
}
