// Fixture for the chargeparity analyzer: every SendPayload/ChargeLink cost
// must derive from a codec measurement or ride a schedule charged via an
// analytic flush. The fixture drives the real simulator types.
package a

import "github.com/algebraic-clique/algclique/internal/clique"

type codec struct{}

func (codec) EncodedLen(count int) int { return 2 * count }

func goodCodecCost(net *clique.Network, c codec, row [][]int64) {
	for dst := range row {
		if len(row[dst]) > 0 {
			w := int64(c.EncodedLen(len(row[dst])))
			net.SendPayload(0, dst, w, &row[dst])
		}
	}
	net.Flush()
}

func goodCostClosure(net *clique.Network, words func(elems int) int64, row [][]int64) {
	for dst := range row {
		if len(row[dst]) > 0 {
			net.SendPayload(0, dst, words(len(row[dst])), &row[dst])
		}
	}
	net.Flush()
}

func goodChargedElsewhere(net *clique.Network, row [][]int64, maxA, totalA int64) {
	net.FlushAnalytic(maxA, totalA)
	for dst := range row {
		if len(row[dst]) > 0 {
			net.SendPayload(0, dst, 0, &row[dst])
		}
	}
}

func badElementCount(net *clique.Network, row [][]int64) {
	for dst := range row {
		if len(row[dst]) > 0 {
			net.SendPayload(0, dst, int64(len(row[dst])), &row[dst]) // want "cost does not derive from a codec"
		}
	}
	net.Flush()
}

func badUnchargedZero(net *clique.Network, row [][]int64) {
	for dst := range row {
		if len(row[dst]) > 0 {
			net.SendPayload(0, dst, 0, &row[dst]) // want "zero-cost SendPayload"
		}
	}
	net.Flush()
}

func badChargeLink(net *clique.Network, k int) {
	net.ChargeLink(0, 1, int64(k)) // want "cost does not derive from a codec"
}
