package detorder_test

import (
	"testing"

	"github.com/algebraic-clique/algclique/internal/analysis/detorder"
	"github.com/algebraic-clique/algclique/internal/analysis/framework/analysistest"
)

func TestDetorder(t *testing.T) {
	analysistest.Run(t, "testdata", detorder.Analyzer, "a")
}
