// Package detorder defines the cliquevet analyzer enforcing the
// simulator's determinism contract: the Censor-Hillel et al. round bounds
// (and the oblivious-schedule tests that pin them) only hold when every
// run of an algorithm produces the identical message schedule, so the
// deterministic packages must not let Go's randomised map iteration
// order, wall-clock time, or the global math/rand source reach message
// construction or round structure.
//
// Flagged:
//   - range over a map-typed expression (iteration order is randomised
//     per run; sort the keys, use the clear() builtin for wholesale
//     deletion, or annotate //cc:detorder-ok(reason) when order provably
//     cannot reach messages or accounting)
//   - time.Now / time.Since / time.After calls
//   - package-level math/rand and math/rand/v2 draws (rand.Int, IntN,
//     Shuffle, Perm, …), which read the shared global source; explicitly
//     seeded rand.New(rand.NewPCG(seed, …)) generators remain legal and
//     are how colour-coding and witness sampling stay reproducible
//   - FaultPlan composite literals without an explicit Seed field: the
//     fault plane's injected schedule is a pure function of the seed, so
//     an implicit zero seed hides the choice that makes a chaos run
//     replayable (Seed: 0 spelled out is legal — the choice is visible)
package detorder

import (
	"go/ast"
	"go/types"

	"github.com/algebraic-clique/algclique/internal/analysis/framework"
)

// Analyzer is the detorder check.
var Analyzer = &framework.Analyzer{
	Name: "detorder",
	Doc:  "flag nondeterminism sources (map iteration order, wall clock, global rand) in deterministic simulator packages",
	Run:  run,
}

// randConstructors are the explicitly-seeded entry points that remain
// legal: they return a caller-owned deterministic generator.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true,
}

func run(pass *framework.Pass) error {
	pass.Preorder(func(n ast.Node) {
		switch node := n.(type) {
		case *ast.RangeStmt:
			tv, ok := pass.TypesInfo.Types[node.X]
			if !ok {
				return
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				pass.Reportf(node.Pos(),
					"unsorted range over map %s: iteration order is nondeterministic and must not reach messages or round structure (sort the keys, or use clear())",
					types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
			}
		case *ast.CallExpr:
			checkCall(pass, node)
		case *ast.CompositeLit:
			checkFaultPlan(pass, node)
		}
	})
	return nil
}

// checkFaultPlan flags FaultPlan composite literals that do not set Seed
// explicitly. The rule is structural (any struct named FaultPlan with a
// Seed field), so it covers both clique.FaultPlan and the root package's
// alias without importing either — and stays testable on fixtures.
func checkFaultPlan(pass *framework.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	named, ok := types.Unalias(tv.Type).(*types.Named)
	if !ok || named.Obj().Name() != "FaultPlan" {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok || !hasField(st, "Seed") {
		return
	}
	if len(lit.Elts) > 0 {
		if _, keyed := lit.Elts[0].(*ast.KeyValueExpr); !keyed {
			return // positional literal: every field, Seed included, is spelled out
		}
		for _, el := range lit.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Seed" {
				return
			}
		}
	}
	pass.Reportf(lit.Pos(),
		"FaultPlan literal without an explicit Seed: fault schedules are deterministic in their seed, so spell it out (Seed: 0 included) to keep the injected run replayable")
}

// hasField reports whether the struct declares a field with the given
// name.
func hasField(st *types.Struct, name string) bool {
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return true
		}
	}
	return false
}

// checkCall flags package-level calls into time's clock and math/rand's
// global source. Methods on a caller-seeded *rand.Rand have a receiver
// and fall through.
func checkCall(pass *framework.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // method call (e.g. on a seeded *rand.Rand)
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until", "After", "Tick":
			pass.Reportf(call.Pos(),
				"time.%s in a deterministic package: wall-clock values must not influence schedules or results", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			pass.Reportf(call.Pos(),
				"%s.%s draws from the global random source: use an explicitly seeded rand.New(rand.NewPCG(seed, …)) so runs are reproducible",
				fn.Pkg().Name(), fn.Name())
		}
	}
}
