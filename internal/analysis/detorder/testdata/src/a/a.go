// Fixture for the detorder analyzer: nondeterminism sources that must not
// reach the simulator's deterministic packages.
package a

import (
	"math/rand"
	"time"
)

func mapRange(m map[int]int) int {
	s := 0
	for k := range m { // want "unsorted range over map"
		s += k
	}
	return s
}

func mapRangeSuppressed(m map[int]int) int {
	s := 0
	//cc:detorder-ok(order folds into a commutative sum)
	for k := range m {
		s += k
	}
	return s
}

func sliceRange(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

func wholesaleDelete(m map[int]int) {
	clear(m)
}

func wallClock() int64 {
	return time.Now().UnixNano() // want "wall-clock values must not influence"
}

func globalRand(n int) int {
	return rand.Intn(n) // want "draws from the global random source"
}

func seededRand(n int) int {
	r := rand.New(rand.NewSource(7))
	return r.Intn(n)
}

// FaultPlan mirrors the simulator's fault schedule: plan literals must
// spell out their Seed.
type FaultPlan struct {
	Seed        uint64
	CorruptProb float64
	DropProb    float64
}

// otherPlan has no Seed field, so the rule does not apply to it.
type otherPlan struct {
	CorruptProb float64
}

func plans() []FaultPlan {
	return []FaultPlan{
		{Seed: 1, CorruptProb: 0.5},
		{Seed: 0, DropProb: 0.5}, // an explicit zero seed is a visible choice
		{CorruptProb: 0.5},       // want "FaultPlan literal without an explicit Seed"
		{},                       // want "FaultPlan literal without an explicit Seed"
		FaultPlan{7, 0.5, 0},     // positional: every field is spelled out
		*&FaultPlan{DropProb: 1}, // want "FaultPlan literal without an explicit Seed"
	}
}

func unrelated() otherPlan {
	return otherPlan{CorruptProb: 1}
}
