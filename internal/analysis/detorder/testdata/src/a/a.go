// Fixture for the detorder analyzer: nondeterminism sources that must not
// reach the simulator's deterministic packages.
package a

import (
	"math/rand"
	"time"
)

func mapRange(m map[int]int) int {
	s := 0
	for k := range m { // want "unsorted range over map"
		s += k
	}
	return s
}

func mapRangeSuppressed(m map[int]int) int {
	s := 0
	//cc:detorder-ok(order folds into a commutative sum)
	for k := range m {
		s += k
	}
	return s
}

func sliceRange(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

func wholesaleDelete(m map[int]int) {
	clear(m)
}

func wallClock() int64 {
	return time.Now().UnixNano() // want "wall-clock values must not influence"
}

func globalRand(n int) int {
	return rand.Intn(n) // want "draws from the global random source"
}

func seededRand(n int) int {
	r := rand.New(rand.NewSource(7))
	return r.Intn(n)
}
