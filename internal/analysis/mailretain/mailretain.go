// Package mailretain defines the cliquevet analyzer enforcing the Mail
// lifetime contract (clique.Mail: "valid until the second-next Flush").
// The simulator double-buffers delivery state, so a Mail, the word
// windows Mail.From/Each hand out, and the payload slices PayloadsFrom
// returns are all recycled two flushes later. Code that stashes such a
// value anywhere that outlives the flush cycle — a struct field, a
// package variable, a goroutine, a channel — will observe it being
// overwritten by unrelated traffic, the exact aliasing bug class the
// zero-copy refactors of PRs 3–5 traded for their speedups.
//
// Tracked sources: Network.Flush/FlushAnalytic results, Mail.From /
// Mail.PayloadsFrom results, and the word-slice parameter of a Mail.Each
// callback. Taint propagates through aliasing derivations (slicing,
// indexing into reference-typed state, type assertions, locals).
// Flagged sinks, per the contract's allowance for phase-local use:
//
//   - assignment into a struct field (x.f = derived)
//   - assignment into package-level state
//   - capture by a go statement's function literal
//   - send on a channel
//
// Index-assignments into local matrices (in[dst][src] = mail.From(...))
// stay legal: that is the scratch-view idiom, whose recycling is governed
// by the pools' own putView discipline.
package mailretain

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/algebraic-clique/algclique/internal/analysis/flow"
	"github.com/algebraic-clique/algclique/internal/analysis/framework"
)

// Analyzer is the mailretain check.
var Analyzer = &framework.Analyzer{
	Name: "mailretain",
	Doc:  "flag Mail-/PayloadsFrom-derived values stored where they outlive the two-flush delivery lifetime",
	Run:  run,
}

// mailSources are the accessor methods whose results carry the two-flush
// lifetime, keyed by method name; the receiver must live in
// internal/clique.
var mailSources = map[string]bool{
	"From": true, "PayloadsFrom": true, "Flush": true, "FlushAnalytic": true,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// isCliquePath matches the simulator package (and its fixture stand-ins,
// which end in the same path element).
func isCliquePath(path string) bool {
	return path == "internal/clique" || strings.HasSuffix(path, "/internal/clique")
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	// The word-slice parameters of Mail.Each callbacks are sources too:
	// collect their objects up front so the taint predicate can see them.
	eachParams := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, pkgPath, _ := flow.CalleeOf(pass.TypesInfo, call)
		if name != "Each" || !isCliquePath(pkgPath) || len(call.Args) != 2 {
			return true
		}
		lit, ok := call.Args[1].(*ast.FuncLit)
		if !ok || lit.Type.Params == nil {
			return true
		}
		for _, field := range lit.Type.Params.List {
			for _, nameID := range field.Names {
				if obj := pass.TypesInfo.Defs[nameID]; obj != nil {
					if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
						eachParams[obj] = true
					}
				}
			}
		}
		return true
	})

	isSource := func(e ast.Expr) bool {
		switch x := e.(type) {
		case *ast.CallExpr:
			name, pkgPath, _ := flow.CalleeOf(pass.TypesInfo, x)
			return mailSources[name] && isCliquePath(pkgPath)
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[x]
			if obj == nil {
				obj = pass.TypesInfo.Defs[x]
			}
			return obj != nil && eachParams[obj]
		}
		return false
	}
	taint := flow.Compute(pass.TypesInfo, fd.Body, isSource, flow.Options{
		ThroughIndex: true,
		RefOnly:      true,
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, taint, node)
		case *ast.GoStmt:
			checkGo(pass, taint, node)
		case *ast.SendStmt:
			if taint.Tainted(node.Value) {
				pass.Reportf(node.Value.Pos(),
					"Mail-derived value sent on a channel: the delivery buffers are recycled at the second-next Flush, so the receiver may observe unrelated traffic")
			}
		}
		return true
	})
}

func checkAssign(pass *framework.Pass, taint *flow.Set, as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		var rhs ast.Expr
		switch {
		case len(as.Lhs) == len(as.Rhs):
			rhs = as.Rhs[i]
		case len(as.Rhs) == 1:
			rhs = as.Rhs[0]
		}
		if rhs == nil || !taint.Tainted(rhs) {
			continue
		}
		if sel, ok := lhs.(*ast.SelectorExpr); ok {
			if v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
				pass.Reportf(as.Pos(),
					"Mail-derived value stored into struct field %s: Mail and its slices are valid only until the second-next Flush; copy the words out instead", sel.Sel.Name)
				continue
			}
		}
		if obj := rootObject(pass, lhs); obj != nil && isPackageLevel(pass, obj) {
			pass.Reportf(as.Pos(),
				"Mail-derived value stored into package-level state %s: it outlives the two-flush delivery lifetime", obj.Name())
		}
	}
}

// checkGo flags tainted locals captured by a goroutine body — the
// goroutine's lifetime is not bounded by the flush cycle.
func checkGo(pass *framework.Pass, taint *flow.Set, g *ast.GoStmt) {
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if taint.Tainted(id) {
			pass.Reportf(id.Pos(),
				"Mail-derived value %s captured by a goroutine: its delivery buffer is recycled at the second-next Flush regardless of the goroutine's progress", id.Name)
			return false
		}
		return true
	})
}

// rootObject unwraps selector/index/star chains to the base identifier's
// object.
func rootObject(pass *framework.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[x]
			if obj == nil {
				obj = pass.TypesInfo.Defs[x]
			}
			return obj
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func isPackageLevel(pass *framework.Pass, obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	return obj.Parent() == pass.Pkg.Scope()
}
