package mailretain_test

import (
	"testing"

	"github.com/algebraic-clique/algclique/internal/analysis/framework/analysistest"
	"github.com/algebraic-clique/algclique/internal/analysis/mailretain"
)

func TestMailretain(t *testing.T) {
	analysistest.Run(t, "testdata", mailretain.Analyzer, "a")
}
