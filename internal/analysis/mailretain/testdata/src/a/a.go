// Fixture for the mailretain analyzer: Mail-derived values must not be
// stored anywhere that outlives the two-flush delivery lifetime. The
// fixture drives the real simulator types.
package a

import "github.com/algebraic-clique/algclique/internal/clique"

type holder struct {
	words []clique.Word
	mail  *clique.Mail
}

var stash []clique.Word

func badField(h *holder, mail *clique.Mail) {
	h.words = mail.From(0, 1) // want "stored into struct field"
}

func badMailField(net *clique.Network, h *holder) {
	h.mail = net.Flush() // want "stored into struct field"
}

func badGlobal(mail *clique.Mail) {
	stash = mail.From(0, 1) // want "package-level state"
}

func badDerived(mail *clique.Mail, h *holder) {
	w := mail.From(0, 1)
	h.words = w[2:4] // want "stored into struct field"
}

func badGoroutine(mail *clique.Mail) {
	w := mail.From(0, 1)
	go func() {
		_ = w[0] // want "captured by a goroutine"
	}()
}

func badChannel(mail *clique.Mail, ch chan []clique.Word) {
	ch <- mail.From(0, 1) // want "sent on a channel"
}

func badEachCallback(mail *clique.Mail, h *holder) {
	mail.Each(0, func(src int, words []clique.Word) {
		h.words = words // want "stored into struct field"
	})
}

func goodCopiedOut(mail *clique.Mail, h *holder) {
	w := mail.From(0, 1)
	h.words = append([]clique.Word(nil), w...) // a copy owns its words
}

func goodScratchView(mail *clique.Mail, in [][][]clique.Word, n int) {
	for src := 0; src < n; src++ {
		// The scratch-view idiom: index-assignment into a local matrix,
		// recycled under the pools' own putView discipline.
		in[0][src] = mail.From(0, src)
	}
}

func goodPhaseLocal(mail *clique.Mail, out []int64) {
	mail.Each(0, func(src int, words []clique.Word) {
		for i, w := range words {
			out[i] += int64(w)
		}
	})
}
