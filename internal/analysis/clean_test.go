package analysis_test

import (
	"os"
	"testing"

	"github.com/algebraic-clique/algclique/internal/analysis"
	"github.com/algebraic-clique/algclique/internal/analysis/framework"
)

// TestRepoIsClean runs the full cliquevet suite over the repository and
// fails on any diagnostic, so a contract regression anywhere in the tree
// fails `go test ./...` exactly as it would fail the CI gating step.
func TestRepoIsClean(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := framework.FindModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunRepo(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("cliquevet: %s", d)
	}
}
