// Package payloadown defines the cliquevet analyzer enforcing the
// ownership half of the data-plane contract: SendPayload relinquishes the
// payload (the receiver reads it by reference until the second-next
// Flush) and SendOwnedVec adopts the word vector as queue storage — in
// both cases the sender must not touch the value again. A post-send write
// races the logical delivery (the receiver observes the mutation, which
// the wire plane's copy semantics would have hidden); a post-send read is
// almost always a stale-aliasing bug about to become one.
//
// The check is intraprocedural and identifier-based: for each
// SendPayload(…, p) / SendOwnedVec(…, ws) whose payload argument is a
// plain local identifier x (or &x), any use of x after the call and
// before x is re-initialised by an assignment that does not read x is
// flagged. Payloads passed as &row[dst] (per-link slots rebuilt each
// phase) are outside the granularity this analysis tracks, matching the
// documented per-buffer ownership idiom.
package payloadown

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/algebraic-clique/algclique/internal/analysis/flow"
	"github.com/algebraic-clique/algclique/internal/analysis/framework"
)

// Analyzer is the payloadown check.
var Analyzer = &framework.Analyzer{
	Name: "payloadown",
	Doc:  "flag reads or writes of a value after its ownership passed to SendPayload/SendOwnedVec",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

type send struct {
	call *ast.CallExpr
	name string // SendPayload or SendOwnedVec
	obj  types.Object
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	var sends []send
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, _, _ := flow.CalleeOf(pass.TypesInfo, call)
		var payload ast.Expr
		switch name {
		case "SendPayload":
			if len(call.Args) == 4 {
				payload = call.Args[3]
			}
		case "SendOwnedVec":
			if len(call.Args) == 3 {
				payload = call.Args[2]
			}
		default:
			return true
		}
		if obj := payloadIdent(pass, payload); obj != nil {
			sends = append(sends, send{call: call, name: name, obj: obj})
		}
		return true
	})
	for _, s := range sends {
		checkSend(pass, fd, s)
	}
}

// payloadIdent unwraps x or &x to the local variable it names.
func payloadIdent(pass *framework.Pass, e ast.Expr) types.Object {
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = u.X
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	if v, ok := obj.(*types.Var); ok && !v.IsField() {
		return obj
	}
	return nil
}

// checkSend flags uses of the sent variable between the send and its next
// ownership-restoring re-initialisation.
func checkSend(pass *framework.Pass, fd *ast.FuncDecl, s send) {
	// The window closes at the first assignment after the send that
	// overwrites the variable without reading it (x = fresh).
	windowEnd := fd.Body.End()
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Pos() <= s.call.End() || as.Pos() >= windowEnd {
			return true
		}
		if reinitialises(pass, as, s.obj) {
			windowEnd = as.Pos()
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != s.obj {
			return true
		}
		if id.Pos() <= s.call.End() || id.Pos() >= windowEnd {
			return true
		}
		pass.Reportf(id.Pos(),
			"use of %s after its ownership passed to %s: the receiver aliases it until the second-next Flush, so the sender must not read or write it (re-initialise it first)",
			id.Name, s.name)
		return true
	})
}

// reinitialises reports whether the assignment gives obj a fresh value
// without reading its old one.
func reinitialises(pass *framework.Pass, as *ast.AssignStmt, obj types.Object) bool {
	if as.Tok != token.ASSIGN {
		return false
	}
	target := -1
	for i, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			target = i
			break
		}
	}
	if target < 0 {
		return false
	}
	reads := false
	for _, rhs := range as.Rhs {
		ast.Inspect(rhs, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				reads = true
			}
			return true
		})
	}
	return !reads
}
