// Fixture for the payloadown analyzer: no reads or writes of a value after
// its ownership passed to SendPayload/SendOwnedVec.
package a

import "github.com/algebraic-clique/algclique/internal/clique"

func badWriteAfterOwned(net *clique.Network, vec []clique.Word) {
	net.SendOwnedVec(0, 1, vec)
	vec[0] = 7 // want "use of vec after its ownership passed to SendOwnedVec"
}

func badReadAfterPayload(net *clique.Network, row *[]int64) int {
	net.SendPayload(0, 1, 0, row)
	net.FlushAnalytic(1, 1)
	return len(*row) // want "use of row after its ownership passed to SendPayload"
}

func goodReinitialised(net *clique.Network, vec []clique.Word, n int) {
	net.SendOwnedVec(0, 1, vec)
	vec = nil
	for i := 0; i < n; i++ {
		vec = append(vec, clique.Word(i))
	}
	net.SendOwnedVec(0, 2, vec)
}

func goodSlotSend(net *clique.Network, row [][]int64, maxA, totalA int64) {
	net.FlushAnalytic(maxA, totalA)
	for dst := range row {
		if len(row[dst]) > 0 {
			// Per-link slots rebuilt each phase are the documented
			// per-buffer ownership idiom, outside identifier granularity.
			net.SendPayload(0, dst, 0, &row[dst])
		}
	}
}
