package payloadown_test

import (
	"testing"

	"github.com/algebraic-clique/algclique/internal/analysis/framework/analysistest"
	"github.com/algebraic-clique/algclique/internal/analysis/payloadown"
)

func TestPayloadown(t *testing.T) {
	analysistest.Run(t, "testdata", payloadown.Analyzer, "a")
}
