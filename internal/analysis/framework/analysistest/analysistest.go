// Package analysistest runs a framework.Analyzer over fixture packages
// and checks its diagnostics against // want "regexp" comments, mirroring
// golang.org/x/tools/go/analysis/analysistest: every want must be matched
// by a diagnostic on its line, and every diagnostic must match a want.
//
// Fixtures live under <testdata>/src/<pkg>/ and are addressed by the
// import path <pkg>, GOPATH-style. Fixture files may import the real
// repository packages (the loader maps the module path onto the repo
// checkout), so analyzers are tested against the genuine clique/ccmm/
// routing types rather than look-alike stubs.
package analysistest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/algebraic-clique/algclique/internal/analysis/framework"
)

// ModulePath is the import path the loader maps onto the repository root,
// letting fixtures import the real packages under test.
const ModulePath = "github.com/algebraic-clique/algclique"

// wantRe extracts the quoted regexps of a // want "..." comment.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)`)

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads each fixture package from <testdata>/src/<pkg>, applies the
// analyzer, and reports any mismatch between diagnostics and want
// comments as test errors.
func Run(t *testing.T, testdata string, a *framework.Analyzer, pkgs ...string) {
	t.Helper()
	testdata, err := filepath.Abs(testdata)
	if err != nil {
		t.Fatal(err)
	}
	repoRoot, err := framework.FindModuleRoot(testdata)
	if err != nil {
		t.Fatal(err)
	}
	loader := framework.NewLoader(map[string]string{
		ModulePath: repoRoot,
		"":         filepath.Join(testdata, "src"),
	})
	for _, pkgPath := range pkgs {
		pkg, err := loader.LoadDir(filepath.Join(testdata, "src", filepath.FromSlash(pkgPath)), pkgPath)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", pkgPath, err)
		}
		var diags []framework.Diagnostic
		if err := framework.RunAnalyzer(a, pkg, &diags); err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkgPath, err)
		}
		expects := collectWants(t, pkg)
		checkDiagnostics(t, pkgPath, diags, expects)
	}
}

// collectWants parses the fixture's // want comments into expectations.
func collectWants(t *testing.T, pkg *framework.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, raw := range splitQuoted(m[1]) {
					pattern, err := strconv.Unquote(raw)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, raw, err)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pattern, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: pattern})
				}
			}
		}
	}
	return out
}

// splitQuoted returns the "..." tokens of a want payload, ignoring
// anything after the quoted run (trailing prose is legal).
func splitQuoted(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for strings.HasPrefix(s, `"`) {
		end := 1
		for end < len(s) {
			if s[end] == '\\' {
				end += 2
				continue
			}
			if s[end] == '"' {
				break
			}
			end++
		}
		if end >= len(s) {
			break
		}
		out = append(out, s[:end+1])
		s = strings.TrimSpace(s[end+1:])
	}
	return out
}

func checkDiagnostics(t *testing.T, pkgPath string, diags []framework.Diagnostic, expects []*expectation) {
	t.Helper()
	for _, d := range diags {
		if e := matchExpectation(expects, d.Pos, d.Message); e != nil {
			e.matched = true
		} else {
			t.Errorf("%s: unexpected diagnostic in %s: %s", d.Pos, pkgPath, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.raw)
		}
	}
}

func matchExpectation(expects []*expectation, pos token.Position, msg string) *expectation {
	for _, e := range expects {
		if !e.matched && e.file == pos.Filename && e.line == pos.Line && e.re.MatchString(msg) {
			return e
		}
	}
	return nil
}
