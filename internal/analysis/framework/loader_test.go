package framework

import (
	"os"
	"testing"
)

// TestLoadModule type-checks the entire repository from source through the
// offline loader — the same path cliquevet's standalone driver uses — and
// is the canary for loader/toolchain drift: if a new language construct or
// import stops type-checking here, every analyzer is blind to it.
func TestLoadModule(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := FindModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	const mod = "github.com/algebraic-clique/algclique"
	l := NewLoader(map[string]string{mod: root})
	pkgs, err := l.LoadModule(mod, root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages, expected the full module", len(pkgs))
	}
	seen := make(map[string]bool)
	for _, p := range pkgs {
		if p.Types == nil || p.Info == nil || len(p.Files) == 0 {
			t.Errorf("package %s loaded without types or files", p.Path)
		}
		seen[p.Path] = true
	}
	for _, want := range []string{mod, mod + "/internal/clique", mod + "/internal/ccmm", mod + "/internal/routing"} {
		if !seen[want] {
			t.Errorf("package %s not loaded", want)
		}
	}
}
