// Package framework is a self-contained, offline mirror of the
// golang.org/x/tools/go/analysis API surface that cliquevet's analyzers
// are written against: an Analyzer runs once per package over a Pass
// carrying the parsed files and full type information, and reports
// position-anchored Diagnostics.
//
// The build environment for this repository is hermetic (no module proxy),
// so x/tools cannot be a dependency; this package reproduces the exact
// subset the analyzers need — Analyzer/Pass/Diagnostic, a Preorder
// inspector, and comment-based suppressions — on the standard library
// alone. The shapes match x/tools deliberately: if the dependency ever
// becomes available, each analyzer ports by swapping the import and
// registering with multichecker.Main.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check. It mirrors analysis.Analyzer:
// a unique name, user-facing documentation, and a Run function invoked
// once per loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one package's worth of input to an Analyzer.Run, mirroring
// analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
	supp  map[string]map[int]bool // file → lines carrying a //cc:*-ok marker
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Category string // analyzer name
	Message  string
}

// String formats the diagnostic the way go vet does.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Category, d.Message)
}

// Reportf records a diagnostic at pos unless a suppression marker for this
// analyzer sits on the same line (or the line above, for markers written
// as their own comment line). Suppressions are spelled
// //cc:<analyzer>-ok(reason) and are themselves part of the enforced
// contract surface: they make every accepted violation grep-able.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if lines := p.supp[position.Filename]; lines != nil {
		if lines[position.Line] || lines[position.Line-1] {
			return
		}
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Category: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// buildSuppressions indexes, per file, the lines carrying a
// "//cc:<name>-ok" marker for the given analyzer name.
func buildSuppressions(fset *token.FileSet, files []*ast.File, name string) map[string]map[int]bool {
	marker := "cc:" + name + "-ok"
	out := make(map[string]map[int]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.Contains(c.Text, marker) {
					continue
				}
				pos := fset.Position(c.Pos())
				m := out[pos.Filename]
				if m == nil {
					m = make(map[int]bool)
					out[pos.Filename] = m
				}
				m[pos.Line] = true
			}
		}
	}
	return out
}

// RunAnalyzer applies one analyzer to one loaded package and appends its
// findings to diags.
func RunAnalyzer(a *Analyzer, pkg *Package, diags *[]Diagnostic) error {
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		diags:     diags,
		supp:      buildSuppressions(pkg.Fset, pkg.Files, a.Name),
	}
	return a.Run(pass)
}

// Preorder walks every file in the pass in depth-first preorder, calling f
// for each node (the x/tools inspector idiom without the fact machinery).
func (p *Pass) Preorder(f func(ast.Node)) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if n != nil {
				f(n)
			}
			return true
		})
	}
}

// FuncDoc returns the doc comment group of the innermost function
// declaration enclosing pos, or nil. Used for //cc:hotpath markers.
func FuncDoc(file *ast.File, pos token.Pos) *ast.CommentGroup {
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd.Doc
		}
	}
	return nil
}

// HasMarker reports whether the comment group contains the given //cc:
// marker (e.g. "cc:hotpath").
func HasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.Contains(c.Text, marker) {
			return true
		}
	}
	return false
}
