package framework

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages from source, resolving imports
// offline: import paths under a registered root (a module path or a
// fixture pseudo-root) load recursively from the mapped directory, and
// everything else falls back to the standard library's source importer
// (which reads GOROOT/src). No export data, network, or go command is
// needed, so the same loader serves the repo-wide checks, the fixture
// tests, and the go vet -vettool driver.
type Loader struct {
	Fset    *token.FileSet
	roots   []rootMapping
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

type rootMapping struct {
	prefix string // import path prefix, e.g. the module path
	dir    string // directory holding that prefix's source tree
}

// NewLoader builds a loader over the given import-prefix → directory
// roots. Longer prefixes win, so a fixture root can nest inside a module.
func NewLoader(roots map[string]string) *Loader {
	fset := token.NewFileSet()
	l := &Loader{
		Fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	for prefix, dir := range roots {
		l.roots = append(l.roots, rootMapping{prefix: prefix, dir: dir})
	}
	sort.Slice(l.roots, func(i, j int) bool { return len(l.roots[i].prefix) > len(l.roots[j].prefix) })
	return l
}

// resolve maps an import path to a source directory under a registered
// root, or ok=false for standard-library (and other external) paths. The
// fixture pseudo-root ("" prefix) matches every path, so a match there
// only counts when the directory actually exists — stdlib imports inside
// fixture packages fall through to the GOROOT source importer.
func (l *Loader) resolve(path string) (dir string, ok bool) {
	for _, r := range l.roots {
		if path == r.prefix {
			return r.dir, true
		}
		if r.prefix == "" || strings.HasPrefix(path, r.prefix+"/") {
			rel := strings.TrimPrefix(path, r.prefix)
			rel = strings.TrimPrefix(rel, "/")
			dir = filepath.Join(r.dir, filepath.FromSlash(rel))
			if r.prefix == "" {
				if st, err := os.Stat(dir); err != nil || !st.IsDir() {
					continue
				}
			}
			return dir, true
		}
	}
	return "", false
}

// Import implements types.Importer: module-root packages load from source
// recursively; the rest delegates to the GOROOT source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir, ok := l.resolve(path); ok {
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// LoadDir parses and type-checks the (non-test) package in dir under the
// given import path, memoised per path.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// goFilesIn lists the buildable non-test Go files of dir, honouring build
// constraints for the default context, in sorted order.
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		match, err := ctx.MatchFile(dir, name)
		if err != nil {
			return nil, err
		}
		if match {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// LoadModule walks the module rooted at dir (import path modPath) and
// loads every package in it, skipping testdata, hidden directories, and
// directories without buildable Go files. Results come back in
// deterministic import-path order.
func (l *Loader) LoadModule(modPath, dir string) ([]*Package, error) {
	var pkgDirs []string
	err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		base := filepath.Base(p)
		if p != dir && (base == "testdata" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
			return filepath.SkipDir
		}
		names, err := goFilesIn(p)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			pkgDirs = append(pkgDirs, p)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(pkgDirs)
	var pkgs []*Package
	for _, pd := range pkgDirs {
		rel, err := filepath.Rel(dir, pd)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(pd, path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
