package matrix

import (
	"github.com/algebraic-clique/algclique/internal/ring"
)

// Workers abstracts a parallel task runner over which the local kernels fan
// out. *clique.Network satisfies it (RunLocal reuses the session's
// persistent worker pool, so WithWorkers governs local-kernel parallelism
// too), as does *clique.LocalPool for contexts without a unicast network.
//
// Determinism contract: implementations run f(0), …, f(tasks-1) exactly
// once each, in any order and on any goroutine, and return after all calls
// complete. The parallel kernels only ever split work into disjoint output
// regions, each computed by the same sequential code regardless of
// scheduling, so results are bit-identical to the sequential kernels for
// every worker count.
//
// A nil Workers (or one worker) degrades every parallel kernel to its
// sequential form.
type Workers interface {
	RunLocal(tasks int, f func(task int))
}

// parGrain is the minimum per-task row count of ParMulInto: below it,
// task-dispatch overhead beats the parallelism.
const parGrain = 16

// parTasks is the fan-out width of the parallel kernels. It intentionally
// over-partitions (any pool has ≤ GOMAXPROCS useful workers) so uneven
// task costs balance; the split depends only on the problem shape, never
// on the worker count, keeping the task boundaries — and with them the
// work each task does — deterministic.
const parTasks = 32

// ParMulInto is MulInto with the output rows fanned out over w: the rows of
// out are split into contiguous bands and each band is one MulInto call on
// a row-window view, so every band runs the same specialised kernel as the
// sequential path and the result is bit-identical for every worker count.
// A nil w, or a product too small to split, falls through to MulInto.
//
// Must not be called from inside a ForEach or RunLocal task — the pool's
// workers are already busy and the nested wait could deadlock; parallel
// kernels belong to single-threaded (per-session, not per-node) contexts.
func ParMulInto[T any](w Workers, r ring.Semiring[T], out, a, b *Dense[T]) {
	tasks := a.rows / parGrain
	if tasks > parTasks {
		tasks = parTasks
	}
	if w == nil || tasks < 2 {
		MulInto(r, out, a, b)
		return
	}
	w.RunLocal(tasks, func(t int) {
		lo := t * a.rows / tasks
		hi := (t + 1) * a.rows / tasks
		MulInto(r, rowWindow(out, lo, hi), rowWindow(a, lo, hi), b)
	})
}

// ParMul is the allocating form of ParMulInto.
func ParMul[T any](w Workers, r ring.Semiring[T], a, b *Dense[T]) *Dense[T] {
	out := New[T](a.rows, b.cols)
	ParMulInto(w, r, out, a, b)
	return out
}

// rowWindow views rows [lo, hi) of m as a matrix sharing m's backing store.
func rowWindow[T any](m *Dense[T], lo, hi int) *Dense[T] {
	return &Dense[T]{rows: hi - lo, cols: m.cols, e: m.e[lo*m.cols : hi*m.cols]}
}

// ParStrassen is Strassen with the top of the recursion fanned out over w:
// the recursion tree is expanded breadth-first into independent sub-products
// (7, then 49 when the operands are large enough to keep every worker busy),
// each computed by the sequential strassenRec, and the combination steps run
// on the calling goroutine in a fixed order. The expansion depth depends
// only on the problem size, so the arithmetic — and with it the result — is
// bit-identical to Strassen for every worker count. A nil w runs the
// sequential algorithm. The ForEach/RunLocal nesting rule of ParMulInto
// applies.
func ParStrassen[T any](w Workers, r ring.Ring[T], a, b *Dense[T], cutoff int) *Dense[T] {
	if cutoff <= 0 {
		cutoff = DefaultStrassenCutoff
	}
	if w == nil {
		return Strassen(r, a, b, cutoff)
	}
	if a.rows != a.cols || b.rows != b.cols || a.rows != b.rows {
		panic("matrix: ParStrassen needs equal square operands")
	}
	n := a.rows
	if n == 0 {
		return New[T](0, 0)
	}
	p := 1
	for p < n {
		p *= 2
	}
	if p != n {
		a = padTo(r, a, p)
		b = padTo(r, b, p)
	}
	prod := strassenPar(w, r, a, b, cutoff)
	if p != n {
		prod = prod.Sub(0, n, 0, n)
	}
	return prod
}

// strassenPar expands up to two levels of the recursion into a flat task
// list, runs the leaves over the pool, and recombines sequentially.
func strassenPar[T any](w Workers, r ring.Ring[T], a, b *Dense[T], cutoff int) *Dense[T] {
	n := a.rows
	if n <= cutoff || n%2 != 0 {
		return Mul[T](r, a, b)
	}
	pairs := strassenSplit(r, a, b)
	h := n / 2
	var m [7]*Dense[T]
	if h <= cutoff || h%2 != 0 || h/2 <= cutoff {
		// One level: 7 leaf products.
		w.RunLocal(7, func(t int) {
			m[t] = strassenRec(r, pairs[t][0], pairs[t][1], cutoff)
		})
		return strassenCombine(r, m, n)
	}
	// Two levels: 49 leaf products, each group of 7 recombined into one m.
	var sub [7][7][2]*Dense[T]
	for i := range pairs {
		sub[i] = strassenSplit(r, pairs[i][0], pairs[i][1])
	}
	var leaves [7][7]*Dense[T]
	w.RunLocal(49, func(t int) {
		i, j := t/7, t%7
		leaves[i][j] = strassenRec(r, sub[i][j][0], sub[i][j][1], cutoff)
	})
	for i := range m {
		m[i] = strassenCombine(r, leaves[i], h)
	}
	return strassenCombine(r, m, n)
}
