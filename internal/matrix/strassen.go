package matrix

import (
	"fmt"

	"github.com/algebraic-clique/algclique/internal/ring"
)

// DefaultStrassenCutoff is the block size below which Strassen recursion
// falls back to the school-book product.
const DefaultStrassenCutoff = 64

// Strassen returns a·b over the ring using Strassen's O(n^2.807) algorithm
// (Strassen 1969), the canonical bilinear scheme behind Theorem 1 part 2 of
// the paper. Inputs must be square and of equal size; they are padded to the
// next power of two internally. cutoff ≤ 0 selects DefaultStrassenCutoff.
func Strassen[T any](r ring.Ring[T], a, b *Dense[T], cutoff int) *Dense[T] {
	if a.rows != a.cols || b.rows != b.cols || a.rows != b.rows {
		panic(fmt.Sprintf("matrix: Strassen needs equal square operands, got %d×%d and %d×%d",
			a.rows, a.cols, b.rows, b.cols))
	}
	if cutoff <= 0 {
		cutoff = DefaultStrassenCutoff
	}
	n := a.rows
	if n == 0 {
		return New[T](0, 0)
	}
	p := 1
	for p < n {
		p *= 2
	}
	if p != n {
		a = padTo(r, a, p)
		b = padTo(r, b, p)
	}
	prod := strassenRec(r, a, b, cutoff)
	if p != n {
		prod = prod.Sub(0, n, 0, n)
	}
	return prod
}

func padTo[T any](r ring.Ring[T], m *Dense[T], p int) *Dense[T] {
	out := Zeros[T](r, p, p)
	out.SetSub(0, 0, m)
	return out
}

func strassenRec[T any](r ring.Ring[T], a, b *Dense[T], cutoff int) *Dense[T] {
	n := a.rows
	if n <= cutoff || n%2 != 0 {
		return Mul[T](r, a, b)
	}
	h := n / 2
	a11, a12 := a.Sub(0, h, 0, h), a.Sub(0, h, h, n)
	a21, a22 := a.Sub(h, n, 0, h), a.Sub(h, n, h, n)
	b11, b12 := b.Sub(0, h, 0, h), b.Sub(0, h, h, n)
	b21, b22 := b.Sub(h, n, 0, h), b.Sub(h, n, h, n)

	m1 := strassenRec(r, Add[T](r, a11, a22), Add[T](r, b11, b22), cutoff)
	m2 := strassenRec(r, Add[T](r, a21, a22), b11, cutoff)
	m3 := strassenRec(r, a11, Sub[T](r, b12, b22), cutoff)
	m4 := strassenRec(r, a22, Sub[T](r, b21, b11), cutoff)
	m5 := strassenRec(r, Add[T](r, a11, a12), b22, cutoff)
	m6 := strassenRec(r, Sub[T](r, a21, a11), Add[T](r, b11, b12), cutoff)
	m7 := strassenRec(r, Sub[T](r, a12, a22), Add[T](r, b21, b22), cutoff)

	c11 := Add[T](r, Sub[T](r, Add[T](r, m1, m4), m5), m7)
	c12 := Add[T](r, m3, m5)
	c21 := Add[T](r, m2, m4)
	c22 := Add[T](r, Add[T](r, Sub[T](r, m1, m2), m3), m6)

	out := New[T](n, n)
	out.SetSub(0, 0, c11)
	out.SetSub(0, h, c12)
	out.SetSub(h, 0, c21)
	out.SetSub(h, h, c22)
	return out
}
