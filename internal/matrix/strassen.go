package matrix

import (
	"fmt"

	"github.com/algebraic-clique/algclique/internal/ring"
)

// DefaultStrassenCutoff is the block size below which Strassen recursion
// falls back to the school-book product.
const DefaultStrassenCutoff = 64

// Strassen returns a·b over the ring using Strassen's O(n^2.807) algorithm
// (Strassen 1969), the canonical bilinear scheme behind Theorem 1 part 2 of
// the paper. Inputs must be square and of equal size; they are padded to the
// next power of two internally. cutoff ≤ 0 selects DefaultStrassenCutoff.
func Strassen[T any](r ring.Ring[T], a, b *Dense[T], cutoff int) *Dense[T] {
	if a.rows != a.cols || b.rows != b.cols || a.rows != b.rows {
		panic(fmt.Sprintf("matrix: Strassen needs equal square operands, got %d×%d and %d×%d",
			a.rows, a.cols, b.rows, b.cols))
	}
	if cutoff <= 0 {
		cutoff = DefaultStrassenCutoff
	}
	n := a.rows
	if n == 0 {
		return New[T](0, 0)
	}
	p := 1
	for p < n {
		p *= 2
	}
	if p != n {
		a = padTo(r, a, p)
		b = padTo(r, b, p)
	}
	prod := strassenRec(r, a, b, cutoff)
	if p != n {
		prod = prod.Sub(0, n, 0, n)
	}
	return prod
}

func padTo[T any](r ring.Ring[T], m *Dense[T], p int) *Dense[T] {
	out := Zeros[T](r, p, p)
	out.SetSub(0, 0, m)
	return out
}

func strassenRec[T any](r ring.Ring[T], a, b *Dense[T], cutoff int) *Dense[T] {
	n := a.rows
	if n <= cutoff || n%2 != 0 {
		return Mul[T](r, a, b)
	}
	pairs := strassenSplit(r, a, b)
	var m [7]*Dense[T]
	for i, p := range pairs {
		m[i] = strassenRec(r, p[0], p[1], cutoff)
	}
	return strassenCombine(r, m, n)
}

// strassenSplit forms the seven operand pairs of one Strassen step: the
// quadrant sums and differences whose products m1..m7 recombine into a·b.
// Factored out of strassenRec so ParStrassen can expand the recursion
// breadth-first into an independent task list.
func strassenSplit[T any](r ring.Ring[T], a, b *Dense[T]) [7][2]*Dense[T] {
	n := a.rows
	h := n / 2
	a11, a12 := a.Sub(0, h, 0, h), a.Sub(0, h, h, n)
	a21, a22 := a.Sub(h, n, 0, h), a.Sub(h, n, h, n)
	b11, b12 := b.Sub(0, h, 0, h), b.Sub(0, h, h, n)
	b21, b22 := b.Sub(h, n, 0, h), b.Sub(h, n, h, n)
	return [7][2]*Dense[T]{
		{Add[T](r, a11, a22), Add[T](r, b11, b22)},
		{Add[T](r, a21, a22), b11},
		{a11, Sub[T](r, b12, b22)},
		{a22, Sub[T](r, b21, b11)},
		{Add[T](r, a11, a12), b22},
		{Sub[T](r, a21, a11), Add[T](r, b11, b12)},
		{Sub[T](r, a12, a22), Add[T](r, b21, b22)},
	}
}

// strassenCombine recombines the seven sub-products of one Strassen step
// into the n×n result, in the fixed order strassenRec has always used.
func strassenCombine[T any](r ring.Ring[T], m [7]*Dense[T], n int) *Dense[T] {
	h := n / 2
	c11 := Add[T](r, Sub[T](r, Add[T](r, m[0], m[3]), m[4]), m[6])
	c12 := Add[T](r, m[2], m[4])
	c21 := Add[T](r, m[1], m[3])
	c22 := Add[T](r, Add[T](r, Sub[T](r, m[0], m[1]), m[2]), m[5])

	out := New[T](n, n)
	out.SetSub(0, 0, c11)
	out.SetSub(0, h, c12)
	out.SetSub(h, 0, c21)
	out.SetSub(h, h, c22)
	return out
}
