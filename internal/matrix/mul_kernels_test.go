package matrix

import (
	"math/rand/v2"
	"testing"

	"github.com/algebraic-clique/algclique/internal/ring"
)

// genericOnly hides the concrete algebra type so MulInto's switch misses
// and the generic interface-dispatch path runs — the reference the
// specialised kernels are tested against.
type genericOnly[T any] struct {
	ring.Semiring[T]
}

func randBoolDense(rng *rand.Rand, rows, cols int, p float64) *Dense[bool] {
	m := New[bool](rows, cols)
	for i := range m.e {
		m.e[i] = rng.Float64() < p
	}
	return m
}

func randMinPlusWDense(rng *rand.Rand, rows, cols int) *Dense[ring.ValW] {
	m := New[ring.ValW](rows, cols)
	for i := range m.e {
		switch rng.IntN(5) {
		case 0:
			m.e[i] = ring.ValW{V: ring.Inf, W: ring.NoWitness}
		case 1:
			// Untagged finite entries exercise the left-witness fallback.
			m.e[i] = ring.ValW{V: rng.Int64N(40), W: ring.NoWitness}
		default:
			// Small value range forces ties, exercising Less's tie-break.
			m.e[i] = ring.ValW{V: rng.Int64N(8), W: rng.Int64N(6)}
		}
	}
	return m
}

// TestMulBoolMatchesGeneric pins the early-exit Boolean kernel (skip
// all-false b-rows, stop on saturated output rows) against the generic
// path on random matrices across densities, including the all-false and
// near-all-true extremes the short-circuits target.
func TestMulBoolMatchesGeneric(t *testing.T) {
	br := ring.Bool{}
	rng := rand.New(rand.NewPCG(21, 1))
	for _, p := range []float64{0, 0.02, 0.3, 0.9, 1} {
		for _, n := range []int{1, 7, 16, 33} {
			a := randBoolDense(rng, n, n, p)
			b := randBoolDense(rng, n, n, p)
			got := Mul[bool](br, a, b)
			want := Mul[bool](genericOnly[bool]{br}, a, b)
			if !Equal[bool](br, got, want) {
				t.Fatalf("p=%v n=%d: boolean kernel differs from generic path", p, n)
			}
		}
	}
}

// TestMulMinPlusWMatchesGeneric pins the witness-carrying min-plus kernel
// — value, witness propagation, and tie-breaking — against the generic
// path on random matrices dense with ties and untagged entries.
func TestMulMinPlusWMatchesGeneric(t *testing.T) {
	mw := ring.MinPlusW{}
	rng := rand.New(rand.NewPCG(22, 2))
	for _, n := range []int{1, 5, 16, 40} {
		a := randMinPlusWDense(rng, n, n)
		b := randMinPlusWDense(rng, n, n)
		got := Mul[ring.ValW](mw, a, b)
		want := Mul[ring.ValW](genericOnly[ring.ValW]{mw}, a, b)
		for i := range got.e {
			if got.e[i] != want.e[i] {
				t.Fatalf("n=%d entry %d: kernel %v, generic %v", n, i, got.e[i], want.e[i])
			}
		}
	}
}

// TestMulIntoOverwritesStaleDestination checks the pooled-buffer contract:
// MulInto must produce the same result into a garbage-filled destination.
func TestMulIntoOverwritesStaleDestination(t *testing.T) {
	r := ring.Int64{}
	rng := rand.New(rand.NewPCG(23, 3))
	n := 19
	a, b := New[int64](n, n), New[int64](n, n)
	for i := range a.e {
		a.e[i] = rng.Int64N(100) - 50
		b.e[i] = rng.Int64N(100) - 50
	}
	want := Mul[int64](r, a, b)
	dst := NewFilled[int64](n, n, -987654321)
	MulInto[int64](r, dst, a, b)
	if !Equal[int64](r, dst, want) {
		t.Fatal("MulInto into a stale destination differs from Mul")
	}
	mp := ring.MinPlus{}
	wantMP := Mul[int64](mp, a, b)
	MulInto[int64](mp, dst, a, b)
	if !Equal[int64](mp, dst, wantMP) {
		t.Fatal("min-plus MulInto into a stale destination differs from Mul")
	}
}

// TestMulTilingBitIdentical runs the tiled kernels past the tile boundary
// (cols > mulTileJ) and checks against the generic path: tiling must not
// change any entry.
func TestMulTilingBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("wide-matrix product")
	}
	rng := rand.New(rand.NewPCG(24, 4))
	rows, cols := 9, mulTileJ+37
	ai := New[int64](rows, rows)
	bi := New[int64](rows, cols)
	for i := range ai.e {
		ai.e[i] = rng.Int64N(1000) - 500
	}
	for i := range bi.e {
		bi.e[i] = rng.Int64N(1000) - 500
	}
	r := ring.Int64{}
	if !Equal[int64](r, Mul[int64](r, ai, bi), Mul[int64](genericOnly[int64]{r}, ai, bi)) {
		t.Fatal("tiled int64 kernel differs from generic path")
	}
	mp := ring.MinPlus{}
	for i := range ai.e {
		if rng.IntN(4) == 0 {
			ai.e[i] = ring.Inf
		} else {
			ai.e[i] = rng.Int64N(50)
		}
	}
	for i := range bi.e {
		if rng.IntN(4) == 0 {
			bi.e[i] = ring.Inf
		} else {
			bi.e[i] = rng.Int64N(50)
		}
	}
	if !Equal[int64](mp, Mul[int64](mp, ai, bi), Mul[int64](genericOnly[int64]{mp}, ai, bi)) {
		t.Fatal("tiled min-plus kernel differs from generic path")
	}
}

// genericMulMinPlus is the unspecialised reference product over the
// min-plus semiring (MulInto would dispatch to the kernel under test).
func genericMulMinPlus(a, b *Dense[int64]) *Dense[int64] {
	mp := ring.MinPlus{}
	out := New[int64](a.Rows(), b.Cols())
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < b.Cols(); j++ {
			acc := mp.Zero()
			for k := 0; k < a.Cols(); k++ {
				acc = mp.Add(acc, mp.Mul(a.At(i, k), b.At(k, j)))
			}
			out.Set(i, j, acc)
		}
	}
	return out
}

// TestMulMinPlusMatchesGeneric drives the min-plus kernel against the
// generic semiring path on random matrices mixing negative weights and
// infinite entries — the combination where a clamp-only inner loop would
// fabricate finite distances (negative aik + Inf reads below Inf).
func TestMulMinPlusMatchesGeneric(t *testing.T) {
	mp := ring.MinPlus{}
	rng := rand.New(rand.NewPCG(23, 3))
	randDense := func(n int) *Dense[int64] {
		m := New[int64](n, n)
		for i := range m.e {
			switch rng.IntN(4) {
			case 0:
				m.e[i] = ring.Inf
			case 1:
				m.e[i] = -rng.Int64N(50)
			default:
				m.e[i] = rng.Int64N(100)
			}
		}
		return m
	}
	for _, n := range []int{1, 2, 5, 17, 40} {
		a, b := randDense(n), randDense(n)
		got := New[int64](n, n)
		MulInto(mp, got, a, b)
		want := genericMulMinPlus(a, b)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if got.At(i, j) != want.At(i, j) {
					t.Fatalf("n=%d: kernel[%d][%d] = %d, generic %d", n, i, j, got.At(i, j), want.At(i, j))
				}
			}
		}
	}
	// The reported failure case, verbatim: a negative weight against an
	// unreachable entry must stay unreachable.
	a := New[int64](2, 2)
	b := New[int64](2, 2)
	a.Fill(ring.Inf)
	b.Fill(ring.Inf)
	a.Set(0, 0, -5)
	out := New[int64](2, 2)
	MulInto(mp, out, a, b)
	if !ring.IsInf(out.At(0, 1)) {
		t.Fatalf("negative weight × Inf produced finite distance %d", out.At(0, 1))
	}
}

// diffSizes is the size sweep of the kernel differential tests: a sample
// of 1..100 catching word-boundary and unroll-remainder shapes, plus
// 511/512/513 straddling the mulTileJ tile boundary (trimmed to the small
// sample under -short).
func diffSizes() []int {
	sizes := []int{1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33, 63, 64, 65, 97, 100}
	if !testing.Short() {
		sizes = append(sizes, 511, 512, 513)
	}
	return sizes
}

// TestMulBoolPackedMatchesScalarSweep drives MulBoolInto (the packed
// word-parallel kernel behind MulInto) against the scalar reference across
// the full size sweep and several densities.
func TestMulBoolPackedMatchesScalarSweep(t *testing.T) {
	rng := rand.New(rand.NewPCG(25, 5))
	for _, n := range diffSizes() {
		p := 0.3
		if n > 100 {
			p = 0.02 // keep the scalar reference fast at the big sizes
		}
		a := randBoolDense(rng, n, n, p)
		b := randBoolDense(rng, n, n, p)
		got := New[bool](n, n)
		MulBoolInto(got, a, b)
		want := New[bool](n, n)
		MulBoolScalarInto(want, a, b)
		if !Equal[bool](ring.Bool{}, got, want) {
			t.Fatalf("n=%d p=%v: packed Boolean kernel differs from scalar", n, p)
		}
	}
}

// TestMulMinPlusUnrolledMatchesRefSweep drives the branch-free unrolled
// min-plus kernel against the original scalar kernel across the full size
// sweep, mixing negative weights and infinite entries — the combination
// where the clamp-vs-skip distinction matters.
func TestMulMinPlusUnrolledMatchesRefSweep(t *testing.T) {
	rng := rand.New(rand.NewPCG(26, 6))
	fill := func(n int) *Dense[int64] {
		m := New[int64](n, n)
		for i := range m.e {
			switch rng.IntN(5) {
			case 0:
				m.e[i] = ring.Inf
			case 1:
				m.e[i] = -rng.Int64N(50)
			default:
				m.e[i] = rng.Int64N(100)
			}
		}
		return m
	}
	for _, n := range diffSizes() {
		a, b := fill(n), fill(n)
		got := New[int64](n, n)
		MulMinPlusInto(got, a, b)
		want := New[int64](n, n)
		MulMinPlusRefInto(want, a, b)
		for i := range got.e {
			if got.e[i] != want.e[i] {
				t.Fatalf("n=%d entry %d: unrolled %d, reference %d", n, i, got.e[i], want.e[i])
			}
		}
	}
}

// TestMulMinPlusWInlinedMatchesRefSweep drives the witness-carrying kernel
// against the original across the full size sweep, with ties and untagged
// entries dense enough to exercise every tie-break branch.
func TestMulMinPlusWInlinedMatchesRefSweep(t *testing.T) {
	rng := rand.New(rand.NewPCG(27, 7))
	for _, n := range diffSizes() {
		a := randMinPlusWDense(rng, n, n)
		b := randMinPlusWDense(rng, n, n)
		got := New[ring.ValW](n, n)
		MulMinPlusWInto(got, a, b)
		want := New[ring.ValW](n, n)
		MulMinPlusWRefInto(want, a, b)
		for i := range got.e {
			if got.e[i] != want.e[i] {
				t.Fatalf("n=%d entry %d: kernel %v, reference %v", n, i, got.e[i], want.e[i])
			}
		}
	}
}
