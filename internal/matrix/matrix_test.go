package matrix_test

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"github.com/algebraic-clique/algclique/internal/matrix"
	"github.com/algebraic-clique/algclique/internal/ring"
)

func randInt64Mat(rng *rand.Rand, rows, cols int, lim int64) *matrix.Dense[int64] {
	m := matrix.New[int64](rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, rng.Int64N(2*lim+1)-lim)
		}
	}
	return m
}

func randBoolMat(rng *rand.Rand, rows, cols int) *matrix.Dense[bool] {
	m := matrix.New[bool](rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, rng.IntN(2) == 0)
		}
	}
	return m
}

func randMinPlusMat(rng *rand.Rand, rows, cols int) *matrix.Dense[int64] {
	m := matrix.New[int64](rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.IntN(4) == 0 {
				m.Set(i, j, ring.Inf)
			} else {
				m.Set(i, j, rng.Int64N(100))
			}
		}
	}
	return m
}

// genericMul is a deliberately simple reference product (i-j-k order, no
// fast paths) that the optimised kernels are compared against.
func genericMul[T any](r ring.Semiring[T], a, b *matrix.Dense[T]) *matrix.Dense[T] {
	out := matrix.Zeros[T](r, a.Rows(), b.Cols())
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < b.Cols(); j++ {
			acc := r.Zero()
			for k := 0; k < a.Cols(); k++ {
				acc = r.Add(acc, r.Mul(a.At(i, k), b.At(k, j)))
			}
			out.Set(i, j, acc)
		}
	}
	return out
}

func TestMulMatchesReferenceInt64(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	r := ring.Int64{}
	for trial := 0; trial < 20; trial++ {
		n, k, m := 1+rng.IntN(12), 1+rng.IntN(12), 1+rng.IntN(12)
		a, b := randInt64Mat(rng, n, k, 50), randInt64Mat(rng, k, m, 50)
		if !matrix.Equal[int64](r, matrix.Mul[int64](r, a, b), genericMul[int64](r, a, b)) {
			t.Fatalf("int64 fast path disagrees with reference (n=%d k=%d m=%d)", n, k, m)
		}
	}
}

func TestMulMatchesReferenceBool(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 1))
	r := ring.Bool{}
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.IntN(10)
		a, b := randBoolMat(rng, n, n), randBoolMat(rng, n, n)
		if !matrix.Equal[bool](r, matrix.Mul[bool](r, a, b), genericMul[bool](r, a, b)) {
			t.Fatal("bool fast path disagrees with reference")
		}
	}
}

func TestMulMatchesReferenceMinPlus(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 1))
	r := ring.MinPlus{}
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.IntN(10)
		a, b := randMinPlusMat(rng, n, n), randMinPlusMat(rng, n, n)
		if !matrix.Equal[int64](r, matrix.Mul[int64](r, a, b), genericMul[int64](r, a, b)) {
			t.Fatal("min-plus fast path disagrees with reference")
		}
	}
}

func TestMulGenericPathZp(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 1))
	z := ring.NewZp(97)
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.IntN(10)
		a, b := matrix.New[int64](n, n), matrix.New[int64](n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.Int64N(97))
				b.Set(i, j, rng.Int64N(97))
			}
		}
		if !matrix.Equal[int64](z, matrix.Mul[int64](z, a, b), genericMul[int64](z, a, b)) {
			t.Fatal("generic Mul path disagrees with reference over Zp")
		}
	}
}

func TestStrassenMatchesSchoolbook(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 1))
	r := ring.Int64{}
	for _, n := range []int{1, 2, 3, 7, 8, 16, 33, 64, 100} {
		a, b := randInt64Mat(rng, n, n, 20), randInt64Mat(rng, n, n, 20)
		got := matrix.Strassen[int64](r, a, b, 8)
		want := matrix.Mul[int64](r, a, b)
		if !matrix.Equal[int64](r, got, want) {
			t.Fatalf("Strassen disagrees with school-book at n=%d", n)
		}
	}
}

func TestStrassenOverZp(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 1))
	z := ring.NewZp(101)
	n := 40
	a, b := matrix.New[int64](n, n), matrix.New[int64](n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.Int64N(101))
			b.Set(i, j, rng.Int64N(101))
		}
	}
	got := matrix.Strassen[int64](z, a, b, 4)
	want := matrix.Mul[int64](z, a, b)
	if !matrix.Equal[int64](z, got, want) {
		t.Fatal("Strassen over Zp disagrees with school-book")
	}
}

func TestStrassenQuick(t *testing.T) {
	r := ring.Int64{}
	cfg := &quick.Config{MaxCount: 25}
	f := func(seed uint64, sz uint8) bool {
		n := 1 + int(sz%40)
		rng := rand.New(rand.NewPCG(seed, 99))
		a, b := randInt64Mat(rng, n, n, 10), randInt64Mat(rng, n, n, 10)
		return matrix.Equal[int64](r, matrix.Strassen[int64](r, a, b, 4), matrix.Mul[int64](r, a, b))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPow(t *testing.T) {
	r := ring.Int64{}
	rng := rand.New(rand.NewPCG(7, 1))
	m := randInt64Mat(rng, 5, 5, 3)
	want := m.Clone()
	for k := 1; k <= 6; k++ {
		got := matrix.Pow[int64](r, m, k)
		if !matrix.Equal[int64](r, got, want) {
			t.Fatalf("Pow(m, %d) disagrees with iterated product", k)
		}
		want = matrix.Mul[int64](r, want, m)
	}
}

func TestPowMinPlusIsShortestPath(t *testing.T) {
	// Classic sanity check: over min-plus, powering a weight matrix computes
	// shortest-path distances on a small path graph 0-1-2-3.
	mp := ring.MinPlus{}
	n := 4
	w := matrix.NewFilled[int64](n, n, ring.Inf)
	for i := 0; i < n; i++ {
		w.Set(i, i, 0)
	}
	w.Set(0, 1, 2)
	w.Set(1, 0, 2)
	w.Set(1, 2, 3)
	w.Set(2, 1, 3)
	w.Set(2, 3, 4)
	w.Set(3, 2, 4)
	d := matrix.Pow[int64](mp, w, n)
	if d.At(0, 3) != 9 || d.At(3, 0) != 9 || d.At(0, 2) != 5 {
		t.Fatalf("min-plus power distances wrong: d(0,3)=%d d(0,2)=%d", d.At(0, 3), d.At(0, 2))
	}
}

func TestTraceTransposeIdentity(t *testing.T) {
	r := ring.Int64{}
	rng := rand.New(rand.NewPCG(8, 1))
	m := randInt64Mat(rng, 6, 6, 10)
	if got := matrix.Trace[int64](r, matrix.Transpose[int64](m)); got != matrix.Trace[int64](r, m) {
		t.Error("trace not invariant under transpose")
	}
	id := matrix.Identity[int64](r, 6)
	if !matrix.Equal[int64](r, matrix.Mul[int64](r, m, id), m) {
		t.Error("m·I != m")
	}
	if !matrix.Equal[int64](r, matrix.Mul[int64](r, id, m), m) {
		t.Error("I·m != m")
	}
	tt := matrix.Transpose[int64](matrix.Transpose[int64](m))
	if !matrix.Equal[int64](r, tt, m) {
		t.Error("double transpose is not identity")
	}
}

func TestBlocksTakeScatterRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 1))
	m := randInt64Mat(rng, 8, 8, 100)
	ridx := []int{1, 3, 5}
	cidx := []int{0, 2, 7}
	blk := m.Take(ridx, cidx)
	if blk.Rows() != 3 || blk.Cols() != 3 {
		t.Fatalf("Take shape %d×%d", blk.Rows(), blk.Cols())
	}
	for i, r := range ridx {
		for j, c := range cidx {
			if blk.At(i, j) != m.At(r, c) {
				t.Fatalf("Take mismatch at (%d,%d)", i, j)
			}
		}
	}
	out := matrix.New[int64](8, 8)
	out.ScatterInto(ridx, cidx, blk)
	for _, r := range ridx {
		for _, c := range cidx {
			if out.At(r, c) != m.At(r, c) {
				t.Fatal("ScatterInto did not invert Take")
			}
		}
	}
	sub := m.Sub(2, 6, 1, 4)
	back := matrix.New[int64](8, 8)
	back.SetSub(2, 1, sub)
	for i := 2; i < 6; i++ {
		for j := 1; j < 4; j++ {
			if back.At(i, j) != m.At(i, j) {
				t.Fatal("SetSub did not invert Sub")
			}
		}
	}
}

func TestTakeRowsCols(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 1))
	m := randInt64Mat(rng, 6, 6, 10)
	rsel := m.TakeRows([]int{4, 0})
	if rsel.At(0, 3) != m.At(4, 3) || rsel.At(1, 5) != m.At(0, 5) {
		t.Error("TakeRows wrong")
	}
	csel := m.TakeCols([]int{5, 1, 1})
	if csel.Cols() != 3 || csel.At(2, 0) != m.At(2, 5) || csel.At(3, 2) != m.At(3, 1) {
		t.Error("TakeCols wrong")
	}
}

func TestDistanceProductWitness(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 1))
	mp := ring.MinPlus{}
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.IntN(8)
		a, b := randMinPlusMat(rng, n, n), randMinPlusMat(rng, n, n)
		prod, wit := matrix.DistanceProductWitness(a, b)
		want := matrix.Mul[int64](mp, a, b)
		if !matrix.Equal[int64](mp, prod, want) {
			t.Fatal("witness product value disagrees with min-plus Mul")
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				w := wit.At(i, j)
				if ring.IsInf(prod.At(i, j)) {
					if w != ring.NoWitness {
						t.Fatalf("infinite entry (%d,%d) has witness %d", i, j, w)
					}
					continue
				}
				if w < 0 || w >= int64(n) {
					t.Fatalf("witness out of range at (%d,%d): %d", i, j, w)
				}
				if a.At(i, int(w))+b.At(int(w), j) != prod.At(i, j) {
					t.Fatalf("witness does not certify entry (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestRowSetRowAlias(t *testing.T) {
	m := matrix.New[int64](2, 3)
	m.SetRow(1, []int64{7, 8, 9})
	row := m.Row(1)
	row[0] = 42 // Row is documented as a live view.
	if m.At(1, 0) != 42 {
		t.Error("Row should alias backing store")
	}
	if m.At(1, 2) != 9 {
		t.Error("SetRow did not copy values")
	}
}

func TestFromRowsAndClone(t *testing.T) {
	src := [][]int64{{1, 2}, {3, 4}, {5, 6}}
	m := matrix.FromRows(src)
	src[0][0] = 99 // FromRows must copy.
	if m.At(0, 0) != 1 {
		t.Error("FromRows did not copy input")
	}
	c := m.Clone()
	c.Set(2, 1, -1)
	if m.At(2, 1) != 6 {
		t.Error("Clone shares storage with original")
	}
}

func TestPanicsOnMisuse(t *testing.T) {
	r := ring.Int64{}
	cases := []struct {
		name string
		f    func()
	}{
		{"mul shape", func() { matrix.Mul[int64](r, matrix.New[int64](2, 3), matrix.New[int64](2, 3)) }},
		{"add shape", func() { matrix.Add[int64](r, matrix.New[int64](2, 3), matrix.New[int64](3, 2)) }},
		{"trace nonsquare", func() { matrix.Trace[int64](r, matrix.New[int64](2, 3)) }},
		{"at range", func() { matrix.New[int64](2, 2).At(2, 0) }},
		{"sub range", func() { matrix.New[int64](2, 2).Sub(0, 3, 0, 1) }},
		{"ragged rows", func() { matrix.FromRows([][]int64{{1}, {1, 2}}) }},
		{"strassen nonsquare", func() { matrix.Strassen[int64](r, matrix.New[int64](2, 3), matrix.New[int64](3, 2), 0) }},
		{"pow zero", func() { matrix.Pow[int64](r, matrix.New[int64](2, 2), 0) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			tc.f()
		})
	}
}
