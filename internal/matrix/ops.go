package matrix

import (
	"fmt"
	"sync"

	"github.com/algebraic-clique/algclique/internal/ring"
)

// Add returns a + b entry-wise over the semiring.
func Add[T any](r ring.Semiring[T], a, b *Dense[T]) *Dense[T] {
	shapeCheck("Add", a, b)
	out := New[T](a.rows, a.cols)
	for i := range a.e {
		out.e[i] = r.Add(a.e[i], b.e[i])
	}
	return out
}

// AddInto accumulates b into a entry-wise: a[i] = a[i] + b[i].
func AddInto[T any](r ring.Semiring[T], a, b *Dense[T]) {
	shapeCheck("AddInto", a, b)
	for i := range a.e {
		a.e[i] = r.Add(a.e[i], b.e[i])
	}
}

// Sub returns a - b entry-wise over the ring.
func Sub[T any](r ring.Ring[T], a, b *Dense[T]) *Dense[T] {
	shapeCheck("Sub", a, b)
	out := New[T](a.rows, a.cols)
	for i := range a.e {
		out.e[i] = r.Sub(a.e[i], b.e[i])
	}
	return out
}

// Scale returns c*a entry-wise for a small integer coefficient c.
func Scale[T any](r ring.Ring[T], c int64, a *Dense[T]) *Dense[T] {
	out := New[T](a.rows, a.cols)
	for i := range a.e {
		out.e[i] = r.Scale(c, a.e[i])
	}
	return out
}

// ScaleAddInto accumulates c*b into a: a[i] = a[i] + c*b[i].
func ScaleAddInto[T any](r ring.Ring[T], a *Dense[T], c int64, b *Dense[T]) {
	shapeCheck("ScaleAddInto", a, b)
	if c == 0 {
		return
	}
	if c == 1 {
		for i := range a.e {
			a.e[i] = r.Add(a.e[i], b.e[i])
		}
		return
	}
	if c == -1 {
		for i := range a.e {
			a.e[i] = r.Sub(a.e[i], b.e[i])
		}
		return
	}
	for i := range a.e {
		a.e[i] = r.Add(a.e[i], r.Scale(c, b.e[i]))
	}
}

// ScaleAddFromBlock accumulates c times the block of src with top-left
// corner (r0, c0) into dst: dst[i][j] += c·src[r0+i][c0+j]. It is
// ScaleAddInto reading through a block window, with no copy of the block —
// the bilinear engine's linear-combination step runs entirely on views.
func ScaleAddFromBlock[T any](r ring.Ring[T], dst *Dense[T], c int64, src *Dense[T], r0, c0 int) {
	if r0 < 0 || c0 < 0 || r0+dst.rows > src.rows || c0+dst.cols > src.cols {
		panic(fmt.Sprintf("matrix: ScaleAddFromBlock %d×%d at (%d, %d) exceeds %d×%d",
			dst.rows, dst.cols, r0, c0, src.rows, src.cols))
	}
	// The bilinear-scheme combination steps call this on blocks as small as
	// (q/d)², so the integer ring gets a flat monomorphic loop with no
	// per-row dispatch (the blocks are far smaller than the call count).
	if _, ok := any(r).(ring.Int64); ok {
		d, s := any(dst).(*Dense[int64]), any(src).(*Dense[int64])
		for i := 0; i < d.rows; i++ {
			scaleAddRowInt64(d.e[i*d.cols:(i+1)*d.cols], c, s.e[(r0+i)*s.cols+c0:(r0+i)*s.cols+c0+d.cols])
		}
		return
	}
	for i := 0; i < dst.rows; i++ {
		drow := dst.Row(i)
		srow := src.e[(r0+i)*src.cols+c0 : (r0+i)*src.cols+c0+dst.cols]
		scaleAddRow(r, drow, c, srow)
	}
}

// ScaleAddToBlock accumulates c·src into the block of dst with top-left
// corner (r0, c0): dst[r0+i][c0+j] += c·src[i][j]. The writing twin of
// ScaleAddFromBlock.
func ScaleAddToBlock[T any](r ring.Ring[T], dst *Dense[T], r0, c0 int, c int64, src *Dense[T]) {
	if r0 < 0 || c0 < 0 || r0+src.rows > dst.rows || c0+src.cols > dst.cols {
		panic(fmt.Sprintf("matrix: ScaleAddToBlock %d×%d at (%d, %d) exceeds %d×%d",
			src.rows, src.cols, r0, c0, dst.rows, dst.cols))
	}
	if _, ok := any(r).(ring.Int64); ok {
		d, s := any(dst).(*Dense[int64]), any(src).(*Dense[int64])
		for i := 0; i < s.rows; i++ {
			scaleAddRowInt64(d.e[(r0+i)*d.cols+c0:(r0+i)*d.cols+c0+s.cols], c, s.e[i*s.cols:(i+1)*s.cols])
		}
		return
	}
	for i := 0; i < src.rows; i++ {
		drow := dst.e[(r0+i)*dst.cols+c0 : (r0+i)*dst.cols+c0+src.cols]
		scaleAddRow(r, drow, c, src.Row(i))
	}
}

// scaleAddRow accumulates c·src into dst element-wise with the small-
// coefficient fast paths shared by all ScaleAdd variants. The integer
// ring — every bilinear-scheme combination step — runs monomorphic, with
// no interface dispatch in the element loop.
func scaleAddRow[T any](r ring.Ring[T], dst []T, c int64, src []T) {
	if _, ok := any(r).(ring.Int64); ok {
		scaleAddRowInt64(any(dst).([]int64), c, any(src).([]int64))
		return
	}
	switch c {
	case 0:
	case 1:
		for j := range dst {
			dst[j] = r.Add(dst[j], src[j])
		}
	case -1:
		for j := range dst {
			dst[j] = r.Sub(dst[j], src[j])
		}
	default:
		for j := range dst {
			dst[j] = r.Add(dst[j], r.Scale(c, src[j]))
		}
	}
}

func scaleAddRowInt64(dst []int64, c int64, src []int64) {
	switch c {
	case 0:
	case 1:
		for j, v := range src {
			dst[j] += v
		}
	case -1:
		for j, v := range src {
			dst[j] -= v
		}
	default:
		for j, v := range src {
			dst[j] += c * v
		}
	}
}

// Fill sets every entry of m to v (pooled-buffer reset helper).
func (m *Dense[T]) Fill(v T) {
	for i := range m.e {
		m.e[i] = v
	}
}

// Transpose returns the transpose of m.
func Transpose[T any](m *Dense[T]) *Dense[T] {
	out := New[T](m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		src := m.Row(i)
		for j := 0; j < m.cols; j++ {
			out.e[j*out.cols+i] = src[j]
		}
	}
	return out
}

// Trace returns the sum (semiring Add) of the diagonal entries.
func Trace[T any](r ring.Semiring[T], m *Dense[T]) T {
	if m.rows != m.cols {
		panic(fmt.Sprintf("matrix: Trace of non-square %d×%d", m.rows, m.cols))
	}
	acc := r.Zero()
	for i := 0; i < m.rows; i++ {
		acc = r.Add(acc, m.e[i*m.cols+i])
	}
	return acc
}

// Mul returns the school-book product a·b over the semiring, in i-k-j loop
// order. Specialised inner loops handle the frequent algebras (integers,
// Booleans, min-plus with and without witnesses) without per-entry
// interface dispatch; see MulInto for the allocation-free form.
func Mul[T any](r ring.Semiring[T], a, b *Dense[T]) *Dense[T] {
	out := New[T](a.rows, b.cols)
	MulInto(r, out, a, b)
	return out
}

// MulInto computes a·b into out, which must be a.rows×b.cols; every entry
// of out is overwritten, so stale (pooled) destinations are safe. It is the
// zero-allocation core of Mul: the distributed engines call it with
// scratch-pooled blocks on every local multiplication.
//
// All kernels accumulate each out[i][j] in ascending-k order, so results
// are bit-identical to the generic path for every algebra (including the
// witness tie-breaking of MinPlusW).
func MulInto[T any](r ring.Semiring[T], out, a, b *Dense[T]) {
	if a.cols != b.rows {
		panic(fmt.Sprintf("matrix: Mul %d×%d by %d×%d", a.rows, a.cols, b.rows, b.cols))
	}
	if out.rows != a.rows || out.cols != b.cols {
		panic(fmt.Sprintf("matrix: MulInto destination %d×%d for a %d×%d product",
			out.rows, out.cols, a.rows, b.cols))
	}
	switch any(r).(type) {
	case ring.Int64:
		mulInt64Into(any(out).(*Dense[int64]), any(a).(*Dense[int64]), any(b).(*Dense[int64]))
		return
	case ring.Bool:
		MulBoolInto(any(out).(*Dense[bool]), any(a).(*Dense[bool]), any(b).(*Dense[bool]))
		return
	case ring.MinPlus:
		MulMinPlusInto(any(out).(*Dense[int64]), any(a).(*Dense[int64]), any(b).(*Dense[int64]))
		return
	case ring.MinPlusW:
		MulMinPlusWInto(any(out).(*Dense[ring.ValW]), any(a).(*Dense[ring.ValW]), any(b).(*Dense[ring.ValW]))
		return
	}
	zero := r.Zero()
	for i := range out.e {
		out.e[i] = zero
	}
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k := 0; k < a.cols; k++ {
			aik := arow[k]
			if r.Equal(aik, zero) {
				continue
			}
			brow := b.Row(k)
			for j := range orow {
				orow[j] = r.Add(orow[j], r.Mul(aik, brow[j]))
			}
		}
	}
}

// mulTileJ is the column-tile width of the cache-blocked kernels. Tiling
// splits the j loop so one out-row segment and one b-row segment stay
// resident while k streams; per-(i,j) accumulation order is untouched, so
// tiled and untiled runs are bit-identical. Matrices narrower than one tile
// (every distributed block product) take the straight-line path.
const mulTileJ = 512

func mulInt64Into(out, a, b *Dense[int64]) {
	for i := range out.e {
		out.e[i] = 0
	}
	for jb := 0; jb < b.cols; jb += mulTileJ {
		je := jb + mulTileJ
		if je > b.cols {
			je = b.cols
		}
		for i := 0; i < a.rows; i++ {
			arow := a.e[i*a.cols : (i+1)*a.cols]
			orow := out.e[i*out.cols+jb : i*out.cols+je]
			for k, aik := range arow {
				if aik == 0 {
					continue
				}
				brow := b.e[k*b.cols+jb : k*b.cols+je]
				for j, bv := range brow {
					orow[j] += aik * bv
				}
			}
		}
	}
}

// MulBoolInto is the packed Boolean kernel behind MulInto: both operands
// are packed into pooled BitDense scratch (64 entries per word, the
// PackedBool layout), multiplied word-parallel by MulBitInto, and the
// product unpacked into out. The b-row occupancy vector the scalar kernel
// rebuilt with an O(n²) branchy scan per call is now the BitDense
// nonzero-row cache, computed word-parallel. Results are bit-identical to
// MulBoolScalarInto and the generic path (OR is idempotent and monotone).
//
//cc:hotpath
func MulBoolInto(out, a, b *Dense[bool]) {
	sc := bitMulPool.Get().(*bitMulScratch)
	PackDense(&sc.a, a)
	PackDense(&sc.b, b)
	sc.out.Reset(a.rows, b.cols)
	MulBitInto(&sc.out, &sc.a, &sc.b)
	UnpackDense(out, &sc.out)
	bitMulPool.Put(sc)
}

// MulBoolScalarInto is the pre-packing scalar Boolean kernel, kept as the
// differential-test reference and the denominator of the packed/scalar
// speedup ratio gated in BENCH_matmul.json. It ORs a·b with two
// short-circuits the Boolean algebra allows: b-rows with no true entry are
// skipped outright, and the k loop stops as soon as an output row is
// saturated (all true) — both invisible in the result, since OR is
// monotone.
func MulBoolScalarInto(out, a, b *Dense[bool]) {
	for i := range out.e {
		out.e[i] = false
	}
	scratch := boolRowScratch.Get().(*[]bool)
	defer boolRowScratch.Put(scratch)
	if cap(*scratch) < b.rows {
		*scratch = make([]bool, b.rows)
	}
	bAny := (*scratch)[:b.rows]
	for k := range bAny {
		bAny[k] = false
		for _, bv := range b.Row(k) {
			if bv {
				bAny[k] = true
				break
			}
		}
	}
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		unset := len(orow)
		for k := 0; k < a.cols && unset > 0; k++ {
			if !arow[k] || !bAny[k] {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				if bv && !orow[j] {
					orow[j] = true
					unset--
				}
			}
		}
	}
}

// boolRowScratch pools the per-call b-row occupancy vector of
// MulBoolScalarInto.
var boolRowScratch = sync.Pool{New: func() any { return new([]bool) }}

// DistanceProductWitness computes the min-plus product a⋆b together with a
// witness matrix: w[i][j] is a k achieving out[i][j] = a[i][k] + b[k][j]
// (the smallest such k), or ring.NoWitness where out[i][j] is infinite.
// It is the centralised reference for the distributed witness machinery.
func DistanceProductWitness(a, b *Dense[int64]) (prod *Dense[int64], wit *Dense[int64]) {
	if a.cols != b.rows {
		panic(fmt.Sprintf("matrix: DistanceProductWitness %d×%d by %d×%d", a.rows, a.cols, b.rows, b.cols))
	}
	prod = NewFilled[int64](a.rows, b.cols, ring.Inf)
	wit = NewFilled[int64](a.rows, b.cols, ring.NoWitness)
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		prow := prod.Row(i)
		wrow := wit.Row(i)
		for k := 0; k < a.cols; k++ {
			aik := arow[k]
			if ring.IsInf(aik) {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				if ring.IsInf(bv) {
					continue
				}
				if s := aik + bv; s < prow[j] {
					prow[j] = s
					wrow[j] = int64(k)
				}
			}
		}
	}
	return prod, wit
}

// Pow returns m^k over the semiring via repeated squaring. k must be ≥ 1.
func Pow[T any](r ring.Semiring[T], m *Dense[T], k int) *Dense[T] {
	if m.rows != m.cols {
		panic(fmt.Sprintf("matrix: Pow of non-square %d×%d", m.rows, m.cols))
	}
	if k < 1 {
		panic("matrix: Pow exponent must be ≥ 1")
	}
	result := m.Clone()
	k--
	base := m
	for k > 0 {
		if k&1 == 1 {
			result = Mul(r, result, base)
		}
		k >>= 1
		if k > 0 {
			base = Mul(r, base, base)
		}
	}
	return result
}

func shapeCheck[T any](op string, a, b *Dense[T]) {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("matrix: %s shape mismatch %d×%d vs %d×%d", op, a.rows, a.cols, b.rows, b.cols))
	}
}
