package matrix

import (
	"fmt"

	"github.com/algebraic-clique/algclique/internal/ring"
)

// Add returns a + b entry-wise over the semiring.
func Add[T any](r ring.Semiring[T], a, b *Dense[T]) *Dense[T] {
	shapeCheck("Add", a, b)
	out := New[T](a.rows, a.cols)
	for i := range a.e {
		out.e[i] = r.Add(a.e[i], b.e[i])
	}
	return out
}

// AddInto accumulates b into a entry-wise: a[i] = a[i] + b[i].
func AddInto[T any](r ring.Semiring[T], a, b *Dense[T]) {
	shapeCheck("AddInto", a, b)
	for i := range a.e {
		a.e[i] = r.Add(a.e[i], b.e[i])
	}
}

// Sub returns a - b entry-wise over the ring.
func Sub[T any](r ring.Ring[T], a, b *Dense[T]) *Dense[T] {
	shapeCheck("Sub", a, b)
	out := New[T](a.rows, a.cols)
	for i := range a.e {
		out.e[i] = r.Sub(a.e[i], b.e[i])
	}
	return out
}

// Scale returns c*a entry-wise for a small integer coefficient c.
func Scale[T any](r ring.Ring[T], c int64, a *Dense[T]) *Dense[T] {
	out := New[T](a.rows, a.cols)
	for i := range a.e {
		out.e[i] = r.Scale(c, a.e[i])
	}
	return out
}

// ScaleAddInto accumulates c*b into a: a[i] = a[i] + c*b[i].
func ScaleAddInto[T any](r ring.Ring[T], a *Dense[T], c int64, b *Dense[T]) {
	shapeCheck("ScaleAddInto", a, b)
	if c == 0 {
		return
	}
	if c == 1 {
		for i := range a.e {
			a.e[i] = r.Add(a.e[i], b.e[i])
		}
		return
	}
	if c == -1 {
		for i := range a.e {
			a.e[i] = r.Sub(a.e[i], b.e[i])
		}
		return
	}
	for i := range a.e {
		a.e[i] = r.Add(a.e[i], r.Scale(c, b.e[i]))
	}
}

// Transpose returns the transpose of m.
func Transpose[T any](m *Dense[T]) *Dense[T] {
	out := New[T](m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		src := m.Row(i)
		for j := 0; j < m.cols; j++ {
			out.e[j*out.cols+i] = src[j]
		}
	}
	return out
}

// Trace returns the sum (semiring Add) of the diagonal entries.
func Trace[T any](r ring.Semiring[T], m *Dense[T]) T {
	if m.rows != m.cols {
		panic(fmt.Sprintf("matrix: Trace of non-square %d×%d", m.rows, m.cols))
	}
	acc := r.Zero()
	for i := 0; i < m.rows; i++ {
		acc = r.Add(acc, m.e[i*m.cols+i])
	}
	return acc
}

// Mul returns the school-book product a·b over the semiring, in i-k-j loop
// order. Specialised inner loops handle the frequent algebras (integers,
// Booleans, min-plus) without per-entry interface dispatch.
func Mul[T any](r ring.Semiring[T], a, b *Dense[T]) *Dense[T] {
	if a.cols != b.rows {
		panic(fmt.Sprintf("matrix: Mul %d×%d by %d×%d", a.rows, a.cols, b.rows, b.cols))
	}
	switch any(r).(type) {
	case ring.Int64:
		return any(mulInt64(any(a).(*Dense[int64]), any(b).(*Dense[int64]))).(*Dense[T])
	case ring.Bool:
		return any(mulBool(any(a).(*Dense[bool]), any(b).(*Dense[bool]))).(*Dense[T])
	case ring.MinPlus:
		return any(mulMinPlus(any(a).(*Dense[int64]), any(b).(*Dense[int64]))).(*Dense[T])
	}
	out := Zeros[T](r, a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k := 0; k < a.cols; k++ {
			aik := arow[k]
			if r.Equal(aik, r.Zero()) {
				continue
			}
			brow := b.Row(k)
			for j := range orow {
				orow[j] = r.Add(orow[j], r.Mul(aik, brow[j]))
			}
		}
	}
	return out
}

func mulInt64(a, b *Dense[int64]) *Dense[int64] {
	out := New[int64](a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k := 0; k < a.cols; k++ {
			aik := arow[k]
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += aik * bv
			}
		}
	}
	return out
}

func mulBool(a, b *Dense[bool]) *Dense[bool] {
	out := New[bool](a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k := 0; k < a.cols; k++ {
			if !arow[k] {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				if bv {
					orow[j] = true
				}
			}
		}
	}
	return out
}

func mulMinPlus(a, b *Dense[int64]) *Dense[int64] {
	out := NewFilled[int64](a.rows, b.cols, ring.Inf)
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k := 0; k < a.cols; k++ {
			aik := arow[k]
			if ring.IsInf(aik) {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				if ring.IsInf(bv) {
					continue
				}
				if s := aik + bv; s < orow[j] {
					orow[j] = s
				}
			}
		}
	}
	return out
}

// DistanceProductWitness computes the min-plus product a⋆b together with a
// witness matrix: w[i][j] is a k achieving out[i][j] = a[i][k] + b[k][j]
// (the smallest such k), or ring.NoWitness where out[i][j] is infinite.
// It is the centralised reference for the distributed witness machinery.
func DistanceProductWitness(a, b *Dense[int64]) (prod *Dense[int64], wit *Dense[int64]) {
	if a.cols != b.rows {
		panic(fmt.Sprintf("matrix: DistanceProductWitness %d×%d by %d×%d", a.rows, a.cols, b.rows, b.cols))
	}
	prod = NewFilled[int64](a.rows, b.cols, ring.Inf)
	wit = NewFilled[int64](a.rows, b.cols, ring.NoWitness)
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		prow := prod.Row(i)
		wrow := wit.Row(i)
		for k := 0; k < a.cols; k++ {
			aik := arow[k]
			if ring.IsInf(aik) {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				if ring.IsInf(bv) {
					continue
				}
				if s := aik + bv; s < prow[j] {
					prow[j] = s
					wrow[j] = int64(k)
				}
			}
		}
	}
	return prod, wit
}

// Pow returns m^k over the semiring via repeated squaring. k must be ≥ 1.
func Pow[T any](r ring.Semiring[T], m *Dense[T], k int) *Dense[T] {
	if m.rows != m.cols {
		panic(fmt.Sprintf("matrix: Pow of non-square %d×%d", m.rows, m.cols))
	}
	if k < 1 {
		panic("matrix: Pow exponent must be ≥ 1")
	}
	result := m.Clone()
	k--
	base := m
	for k > 0 {
		if k&1 == 1 {
			result = Mul(r, result, base)
		}
		k >>= 1
		if k > 0 {
			base = Mul(r, base, base)
		}
	}
	return result
}

func shapeCheck[T any](op string, a, b *Dense[T]) {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("matrix: %s shape mismatch %d×%d vs %d×%d", op, a.rows, a.cols, b.rows, b.cols))
	}
}
