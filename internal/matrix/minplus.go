package matrix

import (
	"github.com/algebraic-clique/algclique/internal/ring"
)

// This file holds the min-plus kernels behind every distance product. The
// fast kernels (MulMinPlusInto, MulMinPlusWInto) are what MulInto
// dispatches to: branch-free inner loops — the min builtin compiles to
// conditional moves, and under GOAMD64=v3 the clamped add + min chain gets
// the v3 instruction selection — unrolled 4× so the loop overhead amortises
// over independent accumulator chains. The Ref twins are the original
// scalar kernels, kept as the differential-test references and as the
// denominators of the unrolled/reference speedup ratio gated in
// BENCH_matmul.json.
//
// (min, +) over values has no tie-break state — min is commutative and
// associative — so any evaluation order is bit-identical; the witness
// algebra is order-sensitive, and MulMinPlusWInto keeps the reference's
// ascending-k, ascending-j order and exact MinPlusW.Less tie-breaks.

// MulMinPlusInto computes the distance product a⋆b into out, overwriting
// every entry.
//
//cc:hotpath
func MulMinPlusInto(out, a, b *Dense[int64]) {
	for i := range out.e {
		out.e[i] = ring.Inf
	}
	for jb := 0; jb < b.cols; jb += mulTileJ {
		je := jb + mulTileJ
		if je > b.cols {
			je = b.cols
		}
		for i := 0; i < a.rows; i++ {
			arow := a.e[i*a.cols : (i+1)*a.cols]
			orow := out.e[i*out.cols+jb : i*out.cols+je]
			for k, aik := range arow {
				if ring.IsInf(aik) {
					continue
				}
				brow := b.e[k*b.cols+jb : k*b.cols+je]
				if aik >= 0 {
					minPlusRowNonneg(orow, aik, brow)
				} else {
					minPlusRowNeg(orow, aik, brow)
				}
			}
		}
	}
}

// minPlusRowNonneg relaxes orow[j] = min(orow[j], aik + brow[j]) for a
// non-negative aik. Clamping bv at Inf keeps the loop branch-free and is
// bit-identical to skipping infinite entries when aik ≥ 0: aik < Inf so
// s ≤ 2·Inf never overflows, and s ≥ Inf never beats orow[j] ≤ Inf. The
// unconditional min-store replaces the reference kernel's conditional
// store, trading an unpredictable branch for a conditional move.
//
//cc:hotpath
func minPlusRowNonneg(orow []int64, aik int64, brow []int64) {
	n := len(orow)
	brow = brow[:n]
	j := 0
	for ; j+4 <= n; j += 4 {
		s0 := aik + min(brow[j], ring.Inf)
		s1 := aik + min(brow[j+1], ring.Inf)
		s2 := aik + min(brow[j+2], ring.Inf)
		s3 := aik + min(brow[j+3], ring.Inf)
		orow[j] = min(orow[j], s0)
		orow[j+1] = min(orow[j+1], s1)
		orow[j+2] = min(orow[j+2], s2)
		orow[j+3] = min(orow[j+3], s3)
	}
	for ; j < n; j++ {
		orow[j] = min(orow[j], aik+min(brow[j], ring.Inf))
	}
}

// minPlusRowNeg is the negative-aik relaxation: aik + Inf is still
// "infinite" but numerically below Inf, so infinite b entries must not
// compete. Substituting Inf for the sum when bv is infinite is equivalent
// to the reference's skip — min(orow[j], Inf) = orow[j] since every entry
// is ≤ Inf — and the if-assign compiles to a conditional move, keeping the
// loop free of unpredictable branches.
//
//cc:hotpath
func minPlusRowNeg(orow []int64, aik int64, brow []int64) {
	n := len(orow)
	brow = brow[:n]
	j := 0
	for ; j+4 <= n; j += 4 {
		b0, b1, b2, b3 := brow[j], brow[j+1], brow[j+2], brow[j+3]
		s0, s1, s2, s3 := aik+b0, aik+b1, aik+b2, aik+b3
		if b0 >= ring.Inf {
			s0 = ring.Inf
		}
		if b1 >= ring.Inf {
			s1 = ring.Inf
		}
		if b2 >= ring.Inf {
			s2 = ring.Inf
		}
		if b3 >= ring.Inf {
			s3 = ring.Inf
		}
		orow[j] = min(orow[j], s0)
		orow[j+1] = min(orow[j+1], s1)
		orow[j+2] = min(orow[j+2], s2)
		orow[j+3] = min(orow[j+3], s3)
	}
	for ; j < n; j++ {
		bv := brow[j]
		s := aik + bv
		if bv >= ring.Inf {
			s = ring.Inf
		}
		orow[j] = min(orow[j], s)
	}
}

// MulMinPlusRefInto is the original scalar min-plus kernel (reference).
func MulMinPlusRefInto(out, a, b *Dense[int64]) {
	for i := range out.e {
		out.e[i] = ring.Inf
	}
	for jb := 0; jb < b.cols; jb += mulTileJ {
		je := jb + mulTileJ
		if je > b.cols {
			je = b.cols
		}
		for i := 0; i < a.rows; i++ {
			arow := a.e[i*a.cols : (i+1)*a.cols]
			orow := out.e[i*out.cols+jb : i*out.cols+je]
			for k, aik := range arow {
				if ring.IsInf(aik) {
					continue
				}
				brow := b.e[k*b.cols+jb : k*b.cols+je]
				if aik >= 0 {
					for j, bv := range brow {
						if s := aik + min(bv, ring.Inf); s < orow[j] {
							orow[j] = s
						}
					}
					continue
				}
				for j, bv := range brow {
					if ring.IsInf(bv) {
						continue
					}
					if s := aik + bv; s < orow[j] {
						orow[j] = s
					}
				}
			}
		}
	}
}

// MulMinPlusWInto is the witness-carrying min-plus kernel: the algebra
// behind every APSP squaring. It reproduces MinPlusW exactly: products take
// the right operand's witness (falling back to the left), and minima break
// value ties by MinPlusW.Less in ascending-k, ascending-j order, so the
// result matches the generic path bit for bit. The inner loop hoists the
// operand fields, inlines the Less comparison, and orders the value test
// first so the hot no-improvement path touches no witness state; the
// infinity skips stay (the witness algebra is order- and state-sensitive,
// so the value kernel's clamping trick does not apply to ties).
//
//cc:hotpath
func MulMinPlusWInto(out, a, b *Dense[ring.ValW]) {
	zero := ring.ValW{V: ring.Inf, W: ring.NoWitness}
	for i := range out.e {
		out.e[i] = zero
	}
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k := 0; k < a.cols; k++ {
			aik := arow[k]
			if ring.IsInf(aik.V) {
				continue
			}
			brow := b.Row(k)
			av, aw := aik.V, aik.W
			n := len(orow)
			brow = brow[:n]
			for j := 0; j < n; j++ {
				bv := brow[j]
				if bv.V >= ring.Inf {
					continue
				}
				v := av + bv.V
				o := orow[j]
				// MinPlusW.Less inlined: strictly smaller value, or an
				// equal value with a lesser witness (NoWitness last). The
				// value test runs before the witness is even computed —
				// on the hot no-improvement path nothing else executes.
				if v > o.V {
					continue
				}
				// MinPlusW.Mul: the right operand's witness, falling back
				// to the left when untagged.
				w := bv.W
				if w == ring.NoWitness {
					w = aw
				}
				if v == o.V && (w == ring.NoWitness ||
					(o.W != ring.NoWitness && w >= o.W)) {
					continue
				}
				orow[j] = ring.ValW{V: v, W: w}
			}
		}
	}
}

// MulMinPlusWRefInto is the original witness-carrying kernel (reference).
func MulMinPlusWRefInto(out, a, b *Dense[ring.ValW]) {
	zero := ring.ValW{V: ring.Inf, W: ring.NoWitness}
	mw := ring.MinPlusW{}
	for i := range out.e {
		out.e[i] = zero
	}
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k := 0; k < a.cols; k++ {
			aik := arow[k]
			if ring.IsInf(aik.V) {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				if ring.IsInf(bv.V) {
					continue
				}
				w := bv.W
				if w == ring.NoWitness {
					w = aik.W
				}
				cand := ring.ValW{V: aik.V + bv.V, W: w}
				if mw.Less(cand, orow[j]) {
					orow[j] = cand
				}
			}
		}
	}
}
