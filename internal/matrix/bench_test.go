package matrix_test

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"github.com/algebraic-clique/algclique/internal/matrix"
	"github.com/algebraic-clique/algclique/internal/ring"
)

func benchMats(n int) (*matrix.Dense[int64], *matrix.Dense[int64]) {
	rng := rand.New(rand.NewPCG(1, uint64(n)))
	return randInt64Mat(rng, n, n, 100), randInt64Mat(rng, n, n, 100)
}

func BenchmarkMulSchoolbook(b *testing.B) {
	r := ring.Int64{}
	for _, n := range []int{64, 256} {
		a, c := benchMats(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				matrix.Mul[int64](r, a, c)
			}
		})
	}
}

func BenchmarkMulStrassen(b *testing.B) {
	r := ring.Int64{}
	for _, n := range []int{64, 256} {
		a, c := benchMats(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				matrix.Strassen[int64](r, a, c, 32)
			}
		})
	}
}

func BenchmarkMulMinPlus(b *testing.B) {
	mp := ring.MinPlus{}
	rng := rand.New(rand.NewPCG(2, 2))
	a, c := randMinPlusMat(rng, 128, 128), randMinPlusMat(rng, 128, 128)
	for i := 0; i < b.N; i++ {
		matrix.Mul[int64](mp, a, c)
	}
}
