// Package matrix provides dense matrices over generic semirings, the
// school-book product (with fast paths for the common algebras), block
// manipulation helpers used by the distributed algorithms, and a sequential
// Strassen implementation over arbitrary rings.
package matrix

import (
	"fmt"

	"github.com/algebraic-clique/algclique/internal/ring"
)

// Dense is a row-major dense matrix over an arbitrary element type.
// The zero value is an empty 0×0 matrix.
type Dense[T any] struct {
	rows, cols int
	e          []T
}

// New returns a rows×cols matrix whose entries are the zero value of T.
// The caller is responsible for filling semiring zeroes if they differ from
// Go's zero value (use NewFilled for that).
func New[T any](rows, cols int) *Dense[T] {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %d×%d", rows, cols))
	}
	return &Dense[T]{rows: rows, cols: cols, e: make([]T, rows*cols)}
}

// NewFilled returns a rows×cols matrix with every entry set to fill.
func NewFilled[T any](rows, cols int, fill T) *Dense[T] {
	m := New[T](rows, cols)
	for i := range m.e {
		m.e[i] = fill
	}
	return m
}

// Zeros returns a rows×cols matrix filled with the semiring zero.
func Zeros[T any](r ring.Semiring[T], rows, cols int) *Dense[T] {
	return NewFilled[T](rows, cols, r.Zero())
}

// Identity returns the n×n identity matrix of the semiring.
func Identity[T any](r ring.Semiring[T], n int) *Dense[T] {
	m := Zeros[T](r, n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, r.One())
	}
	return m
}

// FromRows builds a matrix from a slice of equal-length rows. The rows are
// copied.
func FromRows[T any](rows [][]T) *Dense[T] {
	if len(rows) == 0 {
		return New[T](0, 0)
	}
	c := len(rows[0])
	m := New[T](len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			panic(fmt.Sprintf("matrix: ragged rows: row 0 has %d cols, row %d has %d", c, i, len(r)))
		}
		copy(m.e[i*c:(i+1)*c], r)
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense[T]) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense[T]) Cols() int { return m.cols }

// At returns the entry at (i, j).
func (m *Dense[T]) At(i, j int) T {
	m.check(i, j)
	return m.e[i*m.cols+j]
}

// Set assigns the entry at (i, j).
func (m *Dense[T]) Set(i, j int, v T) {
	m.check(i, j)
	m.e[i*m.cols+j] = v
}

func (m *Dense[T]) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d, %d) out of %d×%d", i, j, m.rows, m.cols))
	}
}

// Row returns row i as a live slice into the matrix backing store. Callers
// that retain the slice must not resize the matrix (matrices never resize).
func (m *Dense[T]) Row(i int) []T {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of %d", i, m.rows))
	}
	return m.e[i*m.cols : (i+1)*m.cols]
}

// SetRow copies v into row i.
func (m *Dense[T]) SetRow(i int, v []T) {
	if len(v) != m.cols {
		panic(fmt.Sprintf("matrix: SetRow length %d != cols %d", len(v), m.cols))
	}
	copy(m.Row(i), v)
}

// Clone returns a deep copy.
func (m *Dense[T]) Clone() *Dense[T] {
	out := New[T](m.rows, m.cols)
	copy(out.e, m.e)
	return out
}

// Sub returns a copy of the block with rows [r0, r1) and columns [c0, c1).
func (m *Dense[T]) Sub(r0, r1, c0, c1 int) *Dense[T] {
	if r0 < 0 || r1 > m.rows || c0 < 0 || c1 > m.cols || r0 > r1 || c0 > c1 {
		panic(fmt.Sprintf("matrix: bad block [%d:%d, %d:%d) of %d×%d", r0, r1, c0, c1, m.rows, m.cols))
	}
	out := New[T](r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(out.Row(i-r0), m.e[i*m.cols+c0:i*m.cols+c1])
	}
	return out
}

// SetSub copies block into m with its top-left corner at (r0, c0).
func (m *Dense[T]) SetSub(r0, c0 int, block *Dense[T]) {
	if r0 < 0 || c0 < 0 || r0+block.rows > m.rows || c0+block.cols > m.cols {
		panic(fmt.Sprintf("matrix: block %d×%d at (%d, %d) exceeds %d×%d",
			block.rows, block.cols, r0, c0, m.rows, m.cols))
	}
	for i := 0; i < block.rows; i++ {
		copy(m.e[(r0+i)*m.cols+c0:(r0+i)*m.cols+c0+block.cols], block.Row(i))
	}
}

// TakeRows returns the matrix whose i-th row is row idx[i] of m.
func (m *Dense[T]) TakeRows(idx []int) *Dense[T] {
	out := New[T](len(idx), m.cols)
	for i, r := range idx {
		copy(out.Row(i), m.Row(r))
	}
	return out
}

// TakeCols returns the matrix whose j-th column is column idx[j] of m.
func (m *Dense[T]) TakeCols(idx []int) *Dense[T] {
	out := New[T](m.rows, len(idx))
	for i := 0; i < m.rows; i++ {
		src := m.Row(i)
		dst := out.Row(i)
		for j, c := range idx {
			dst[j] = src[c]
		}
	}
	return out
}

// Take returns the submatrix with the given row and column index sets, in
// the order given: out[i][j] = m[ridx[i]][cidx[j]].
func (m *Dense[T]) Take(ridx, cidx []int) *Dense[T] {
	out := New[T](len(ridx), len(cidx))
	for i, r := range ridx {
		src := m.Row(r)
		dst := out.Row(i)
		for j, c := range cidx {
			dst[j] = src[c]
		}
	}
	return out
}

// ScatterInto writes block into m at the given row and column index sets:
// m[ridx[i]][cidx[j]] = block[i][j]. It is the inverse of Take.
func (m *Dense[T]) ScatterInto(ridx, cidx []int, block *Dense[T]) {
	if block.rows != len(ridx) || block.cols != len(cidx) {
		panic(fmt.Sprintf("matrix: scatter %d×%d into %d×%d index sets",
			block.rows, block.cols, len(ridx), len(cidx)))
	}
	for i, r := range ridx {
		dst := m.Row(r)
		src := block.Row(i)
		for j, c := range cidx {
			dst[c] = src[j]
		}
	}
}

// Equal reports whether a and b have the same shape and equal entries under
// the semiring's equality.
func Equal[T any](r ring.Semiring[T], a, b *Dense[T]) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i := range a.e {
		if !r.Equal(a.e[i], b.e[i]) {
			return false
		}
	}
	return true
}

// Map applies f to every entry in place.
func (m *Dense[T]) Map(f func(T) T) {
	for i := range m.e {
		m.e[i] = f(m.e[i])
	}
}

// MapInto returns a new matrix of a possibly different element type whose
// entries are f applied to m's entries.
func MapInto[T, U any](m *Dense[T], f func(T) U) *Dense[U] {
	out := New[U](m.rows, m.cols)
	for i := range m.e {
		out.e[i] = f(m.e[i])
	}
	return out
}
