package matrix

import (
	"math/rand/v2"
	"testing"

	"github.com/algebraic-clique/algclique/internal/ring"
)

// TestBitDenseRoundTrip checks Set/Get, SetRowBits/UnpackRow, and
// PackDense/UnpackDense against each other across widths that straddle
// word boundaries.
func TestBitDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 1))
	for _, cols := range []int{1, 7, 63, 64, 65, 128, 130} {
		rows := 9
		src := randBoolDense(rng, rows, cols, 0.4)
		m := NewBitDense(rows, cols)
		for i := 0; i < rows; i++ {
			m.SetRowBits(i, src.Row(i))
		}
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if m.Get(i, j) != src.At(i, j) {
					t.Fatalf("cols=%d: Get(%d,%d) = %v after SetRowBits", cols, i, j, m.Get(i, j))
				}
			}
		}
		out := make([]bool, cols)
		m.UnpackRow(rows/2, out)
		for j, v := range out {
			if v != src.At(rows/2, j) {
				t.Fatalf("cols=%d: UnpackRow[%d] = %v", cols, j, v)
			}
		}
		var packed BitDense
		PackDense(&packed, src)
		back := New[bool](rows, cols)
		UnpackDense(back, &packed)
		if !Equal[bool](ring.Bool{}, src, back) {
			t.Fatalf("cols=%d: PackDense/UnpackDense round trip differs", cols)
		}
		// Point mutation through Set.
		m.Set(0, cols-1, !m.Get(0, cols-1))
		if m.Get(0, cols-1) == src.At(0, cols-1) {
			t.Fatalf("cols=%d: Set did not flip the entry", cols)
		}
	}
}

// TestBitDenseTransportLayout pins the shared bit layout: a row packed with
// SetRowBits must be word-for-word identical to the ring.PackedBool
// encoding of the same values, and SetRowWords must accept that encoding
// unchanged.
func TestBitDenseTransportLayout(t *testing.T) {
	rng := rand.New(rand.NewPCG(32, 2))
	for _, cols := range []int{1, 64, 65, 200} {
		vals := make([]bool, cols)
		for j := range vals {
			vals[j] = rng.IntN(2) == 1
		}
		enc := ring.PackedBool{}.EncodeSlice(nil, vals)
		m := NewBitDense(2, cols)
		m.SetRowBits(0, vals)
		row := m.RowWords(0)
		if len(enc) != len(row) {
			t.Fatalf("cols=%d: EncodeSlice %d words, stride %d", cols, len(enc), len(row))
		}
		for w := range row {
			if uint64(enc[w]) != row[w] {
				t.Fatalf("cols=%d word %d: transport %#x, BitDense %#x", cols, w, enc[w], row[w])
			}
		}
		words := make([]uint64, len(enc))
		for w := range enc {
			words[w] = uint64(enc[w])
		}
		m.SetRowWords(1, words)
		for j := 0; j < cols; j++ {
			if m.Get(1, j) != vals[j] {
				t.Fatalf("cols=%d: SetRowWords entry %d differs", cols, j)
			}
		}
	}
}

// TestBitDenseSetRowWordsMasksPad feeds SetRowWords words with garbage in
// the pad bits and checks the zero-pad invariant the kernels rely on.
func TestBitDenseSetRowWordsMasksPad(t *testing.T) {
	cols := 70 // stride 2, 58 pad bits
	m := NewBitDense(1, cols)
	words := []uint64{^uint64(0), ^uint64(0)}
	m.SetRowWords(0, words)
	row := m.RowWords(0)
	if want := uint64(1)<<(cols-64) - 1; row[1] != want {
		t.Fatalf("pad bits survived SetRowWords: word 1 = %#x, want %#x", row[1], want)
	}
	if got, want := m.Count(), cols; got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
}

// TestBitDenseNonzeroRows checks the cached occupancy bitset and its
// invalidation on every mutator.
func TestBitDenseNonzeroRows(t *testing.T) {
	rows, cols := 130, 67
	m := NewBitDense(rows, cols)
	m.Set(0, 3, true)
	m.Set(64, 66, true)
	m.Set(129, 0, true)
	any := m.NonzeroRows()
	for i := 0; i < rows; i++ {
		want := i == 0 || i == 64 || i == 129
		if got := any[i>>6]&(1<<(uint(i)&63)) != 0; got != want {
			t.Fatalf("NonzeroRows bit %d = %v, want %v", i, got, want)
		}
	}
	// Mutation invalidates the cache.
	m.Set(64, 66, false)
	any = m.NonzeroRows()
	if any[1]&1 != 0 {
		t.Fatal("NonzeroRows stale after Set(false)")
	}
	// Writing through RowWords needs an explicit Invalidate.
	m.RowWords(64)[0] = 1
	m.Invalidate()
	if any = m.NonzeroRows(); any[1]&1 == 0 {
		t.Fatal("NonzeroRows stale after RowWords write + Invalidate")
	}
}

// TestMulBitIntoMatchesScalar drives the packed kernel against the scalar
// reference across shapes and densities, including non-square products.
func TestMulBitIntoMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewPCG(33, 3))
	shapes := [][3]int{{1, 1, 1}, {5, 9, 3}, {64, 64, 64}, {65, 63, 66}, {130, 70, 129}}
	for _, p := range []float64{0, 0.05, 0.5, 1} {
		for _, sh := range shapes {
			r, k, c := sh[0], sh[1], sh[2]
			a := randBoolDense(rng, r, k, p)
			b := randBoolDense(rng, k, c, p)
			want := New[bool](r, c)
			MulBoolScalarInto(want, a, b)
			pa, pb, pout := NewBitDense(r, k), NewBitDense(k, c), NewBitDense(r, c)
			PackDense(pa, a)
			PackDense(pb, b)
			MulBitInto(pout, pa, pb)
			got := New[bool](r, c)
			UnpackDense(got, pout)
			if !Equal[bool](ring.Bool{}, want, got) {
				t.Fatalf("p=%v %dx%dx%d: packed product differs from scalar", p, r, k, c)
			}
		}
	}
}

// TestBitDensePoolReuse checks that a pooled BitDense reshapes cleanly:
// a stale larger buffer must not leak bits into a smaller product.
func TestBitDensePoolReuse(t *testing.T) {
	m := GetBitDense(100, 100)
	for i := range m.w {
		m.w[i] = ^uint64(0) // simulate stale pool contents
	}
	PutBitDense(m)
	m = GetBitDense(3, 3)
	m.SetRowBits(0, []bool{true, false, false})
	m.SetRowBits(1, []bool{false, true, false})
	m.SetRowBits(2, []bool{false, false, true})
	out := GetBitDense(3, 3)
	MulBitInto(out, m, m)
	if got := out.Count(); got != 3 {
		t.Fatalf("identity squared has %d bits, want 3", got)
	}
	PutBitDense(m)
	PutBitDense(out)
}
