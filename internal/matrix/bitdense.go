package matrix

import (
	"fmt"
	"math/bits"
	"sync"

	"github.com/algebraic-clique/algclique/internal/ring"
)

// BitDense is a packed Boolean matrix: each row is ⌈cols/64⌉ words with
// element j in bit j%64 of word j/64 — exactly the layout of the
// ring.PackedBool transport and graphs.Bitset, so rows move between the
// wire, the graph representation, and the local kernels without any bit
// shuffling (SetRowWords accepts transport words as-is).
//
// The pad bits past cols in each row's last word are always zero; every
// mutator maintains the invariant and the kernels rely on it.
//
// BitDense carries a lazily-computed cache of which rows are nonzero (the
// bAny occupancy vector the scalar Boolean kernel used to rebuild with an
// O(n²) scan on every call). The cache is computed word-parallel on first
// use and survives until a mutator invalidates it, so iterated products
// against the same operand pay for the scan once. NonzeroRows is not safe
// for concurrent first use — parallel callers must compute it before
// fanning out.
type BitDense struct {
	rows, cols int
	stride     int      // words per row: ⌈cols/64⌉
	w          []uint64 // rows*stride words, row i at w[i*stride:(i+1)*stride]
	rowAny     []uint64 // bitset over rows: bit i set iff row i has a set bit
	anyValid   bool
}

// NewBitDense returns an all-false rows×cols packed Boolean matrix.
func NewBitDense(rows, cols int) *BitDense {
	m := &BitDense{}
	m.Reset(rows, cols)
	m.Zero()
	return m
}

// Reset reshapes m to rows×cols reusing the backing storage when it is
// large enough. The contents are undefined until every row is written
// (SetRowBits, SetRowWords, or a kernel that overwrites its destination);
// use Zero to clear explicitly.
//
//cc:hotpath
func (m *BitDense) Reset(rows, cols int) {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative BitDense dimension %d×%d", rows, cols))
	}
	stride := (cols + 63) / 64
	need := rows * stride
	if cap(m.w) < need {
		m.w = make([]uint64, need) //cc:hotalloc-ok(capacity growth)
	}
	m.w = m.w[:need]
	m.rows, m.cols, m.stride = rows, cols, stride
	m.anyValid = false
}

// Zero clears every entry.
func (m *BitDense) Zero() {
	for i := range m.w {
		m.w[i] = 0
	}
	m.anyValid = false
}

// Rows returns the number of rows.
func (m *BitDense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *BitDense) Cols() int { return m.cols }

// Stride returns the number of words per row, ⌈cols/64⌉ — the length of
// every RowWords slice and of a PackedBool encoding of one row.
func (m *BitDense) Stride() int { return m.stride }

// RowWords returns row i's packed words as a live slice into the backing
// store. Callers that write through it must call Invalidate afterwards and
// keep the pad bits zero.
//
//cc:hotpath
func (m *BitDense) RowWords(i int) []uint64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: BitDense row %d out of %d", i, m.rows))
	}
	return m.w[i*m.stride : (i+1)*m.stride]
}

// Invalidate drops the nonzero-row cache; callers that mutate rows through
// RowWords call it once after writing.
func (m *BitDense) Invalidate() { m.anyValid = false }

// Get returns the entry at (i, j).
func (m *BitDense) Get(i, j int) bool {
	m.check(i, j)
	return m.w[i*m.stride+j>>6]&(1<<(uint(j)&63)) != 0
}

// Set assigns the entry at (i, j).
func (m *BitDense) Set(i, j int, v bool) {
	m.check(i, j)
	if v {
		m.w[i*m.stride+j>>6] |= 1 << (uint(j) & 63)
	} else {
		m.w[i*m.stride+j>>6] &^= 1 << (uint(j) & 63)
	}
	m.anyValid = false
}

func (m *BitDense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: BitDense index (%d, %d) out of %d×%d", i, j, m.rows, m.cols))
	}
}

// SetRowBits packs vals (length cols) into row i.
//
//cc:hotpath
func (m *BitDense) SetRowBits(i int, vals []bool) {
	if len(vals) != m.cols {
		panic(fmt.Sprintf("matrix: BitDense SetRowBits length %d != cols %d", len(vals), m.cols))
	}
	ring.PackBits(m.RowWords(i), vals)
	m.anyValid = false
}

// SetRowWords copies an already-packed row — e.g. a PackedBool transport
// chunk — straight into row i. words must hold at least Stride words; pad
// bits past cols are cleared defensively.
//
//cc:hotpath
func (m *BitDense) SetRowWords(i int, words []uint64) {
	row := m.RowWords(i)
	copy(row, words[:m.stride])
	if extra := uint(m.stride*64 - m.cols); extra > 0 {
		row[m.stride-1] &= ^uint64(0) >> extra
	}
	m.anyValid = false
}

// UnpackRow writes row i into out (length cols).
//
//cc:hotpath
func (m *BitDense) UnpackRow(i int, out []bool) {
	if len(out) != m.cols {
		panic(fmt.Sprintf("matrix: BitDense UnpackRow length %d != cols %d", len(out), m.cols))
	}
	ring.UnpackBits(out, m.RowWords(i))
}

// PackDense packs src into dst (reshaping dst as needed).
func PackDense(dst *BitDense, src *Dense[bool]) {
	dst.Reset(src.rows, src.cols)
	for i := 0; i < src.rows; i++ {
		ring.PackBits(dst.RowWords(i), src.Row(i))
	}
}

// UnpackDense unpacks src into dst, which must already have src's shape.
func UnpackDense(dst *Dense[bool], src *BitDense) {
	if dst.rows != src.rows || dst.cols != src.cols {
		panic(fmt.Sprintf("matrix: UnpackDense %d×%d into %d×%d", src.rows, src.cols, dst.rows, dst.cols))
	}
	for i := 0; i < src.rows; i++ {
		ring.UnpackBits(dst.Row(i), src.RowWords(i))
	}
}

// NonzeroRows returns the cached bitset over row indices with bit i set
// exactly when row i has at least one true entry, computing it word-parallel
// on first use after a mutation. The returned slice is owned by m and valid
// until the next mutation.
//
//cc:hotpath
func (m *BitDense) NonzeroRows() []uint64 {
	nw := (m.rows + 63) / 64
	if m.anyValid {
		return m.rowAny[:nw]
	}
	if cap(m.rowAny) < nw {
		m.rowAny = make([]uint64, nw) //cc:hotalloc-ok(capacity growth)
	}
	ra := m.rowAny[:nw]
	for i := range ra {
		ra[i] = 0
	}
	for i := 0; i < m.rows; i++ {
		row := m.w[i*m.stride : (i+1)*m.stride]
		var acc uint64
		for _, wd := range row {
			acc |= wd
		}
		if acc != 0 {
			ra[i>>6] |= 1 << (uint(i) & 63)
		}
	}
	m.rowAny = ra
	m.anyValid = true
	return ra
}

// Count returns the number of true entries (AND–popcount accounting; pad
// bits are zero by invariant).
func (m *BitDense) Count() int {
	c := 0
	for _, wd := range m.w {
		c += bits.OnesCount64(wd)
	}
	return c
}

// MulBitInto computes the Boolean product a·b into out, overwriting every
// entry. It is the word-parallel form of the Boolean kernel (Four-Russians
// style: the row of a is AND-masked against b's nonzero-row bitset, and the
// selected rows of b are OR-merged 64 columns per word operation), turning
// the scalar kernel's O(n³) element steps into ~n³/64 word steps. out must
// not alias a or b. Boolean OR is idempotent and commutative, so the result
// is bit-identical to the scalar and generic kernels by construction.
//
//cc:hotpath
func MulBitInto(out, a, b *BitDense) {
	if a.cols != b.rows {
		panic(fmt.Sprintf("matrix: MulBitInto %d×%d by %d×%d", a.rows, a.cols, b.rows, b.cols))
	}
	if out.rows != a.rows || out.cols != b.cols {
		panic(fmt.Sprintf("matrix: MulBitInto destination %d×%d for a %d×%d product",
			out.rows, out.cols, a.rows, b.cols))
	}
	bAny := b.NonzeroRows()
	for i := 0; i < a.rows; i++ {
		MulBitRowInto(out.RowWords(i), a.RowWords(i), bAny, b)
	}
	out.anyValid = false
}

// MulBitRowInto computes one output row of a Boolean product: dst (length
// b.Stride, fully overwritten) receives the OR of b's rows selected by the
// set bits of the packed row arow, pre-masked by bAny = b.NonzeroRows().
// It is the row form the naive engine uses to multiply a node's own packed
// row against the gathered operand.
//
//cc:hotpath
func MulBitRowInto(dst []uint64, arow []uint64, bAny []uint64, b *BitDense) {
	for i := range dst {
		dst[i] = 0
	}
	for kw, aw := range arow {
		aw &= bAny[kw]
		base := kw << 6
		for aw != 0 {
			k := base + bits.TrailingZeros64(aw)
			aw &= aw - 1
			orWords(dst, b.w[k*b.stride:(k+1)*b.stride])
		}
	}
}

// orWords ORs src into dst word-wise, 4×-unrolled. len(src) must be at
// least len(dst).
//
//cc:hotpath
func orWords(dst, src []uint64) {
	n := len(dst)
	src = src[:n]
	j := 0
	for ; j+4 <= n; j += 4 {
		dst[j] |= src[j]
		dst[j+1] |= src[j+1]
		dst[j+2] |= src[j+2]
		dst[j+3] |= src[j+3]
	}
	for ; j < n; j++ {
		dst[j] |= src[j]
	}
}

// bitMulScratch is the pooled working set of the packed Boolean kernel
// behind MulInto: both operands and the product stay packed for the
// duration of one call.
type bitMulScratch struct {
	a, b, out BitDense
}

var bitMulPool = sync.Pool{New: func() any { return new(bitMulScratch) }}

// GetBitDense returns a pooled rows×cols BitDense with undefined contents
// (every row must be written before reading; see Reset). PutBitDense
// returns it to the pool.
func GetBitDense(rows, cols int) *BitDense {
	m := bitDensePool.Get().(*BitDense)
	m.Reset(rows, cols)
	return m
}

// PutBitDense returns a BitDense obtained from GetBitDense to the pool.
func PutBitDense(m *BitDense) { bitDensePool.Put(m) }

var bitDensePool = sync.Pool{New: func() any { return new(BitDense) }}
