package matrix

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"github.com/algebraic-clique/algclique/internal/ring"
)

// Local-kernel microbenchmarks: the packed/scalar Boolean and
// unrolled/reference min-plus ratios these measure are gated
// same-process-relative by `ccbench matmul` (BENCH_matmul.json).

func benchBoolDense(n int, p float64, seed uint64) *Dense[bool] {
	rng := rand.New(rand.NewPCG(seed, uint64(n)))
	m := New[bool](n, n)
	for i := range m.e {
		m.e[i] = rng.Float64() < p
	}
	return m
}

func randMinPlusDense(n int, seed uint64) *Dense[int64] {
	rng := rand.New(rand.NewPCG(seed, uint64(n)))
	m := New[int64](n, n)
	for i := range m.e {
		if rng.IntN(8) == 0 {
			m.e[i] = ring.Inf
		} else {
			m.e[i] = rng.Int64N(1000)
		}
	}
	return m
}

func BenchmarkMulBool(b *testing.B) {
	for _, n := range []int{256, 512} {
		a, c := benchBoolDense(n, 0.05, 81), benchBoolDense(n, 0.05, 82)
		out := New[bool](n, n)
		b.Run(fmt.Sprintf("packed/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MulBoolInto(out, a, c)
			}
		})
		b.Run(fmt.Sprintf("scalar/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MulBoolScalarInto(out, a, c)
			}
		})
	}
}

func BenchmarkMulMinPlus(b *testing.B) {
	for _, n := range []int{256, 512} {
		a, c := randMinPlusDense(n, 83), randMinPlusDense(n, 84)
		out := New[int64](n, n)
		b.Run(fmt.Sprintf("unrolled/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MulMinPlusInto(out, a, c)
			}
		})
		b.Run(fmt.Sprintf("reference/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MulMinPlusRefInto(out, a, c)
			}
		})
	}
}

func BenchmarkMulMinPlusW(b *testing.B) {
	for _, n := range []int{256} {
		rng := rand.New(rand.NewPCG(85, uint64(n)))
		mk := func() *Dense[ring.ValW] {
			m := New[ring.ValW](n, n)
			for i := range m.e {
				if rng.IntN(8) == 0 {
					m.e[i] = ring.ValW{V: ring.Inf, W: ring.NoWitness}
				} else {
					m.e[i] = ring.ValW{V: rng.Int64N(1000), W: rng.Int64N(int64(n))}
				}
			}
			return m
		}
		a, c := mk(), mk()
		out := New[ring.ValW](n, n)
		b.Run(fmt.Sprintf("unrolled/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MulMinPlusWInto(out, a, c)
			}
		})
		b.Run(fmt.Sprintf("reference/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MulMinPlusWRefInto(out, a, c)
			}
		})
	}
}

func BenchmarkParStrassen(b *testing.B) {
	n := 512
	rng := rand.New(rand.NewPCG(86, uint64(n)))
	mk := func() *Dense[int64] {
		m := New[int64](n, n)
		for i := range m.e {
			m.e[i] = rng.Int64N(64)
		}
		return m
	}
	a, c := mk(), mk()
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Strassen[int64](ring.Int64{}, a, c, 0)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		w := newTestWorkers()
		defer w.close()
		for i := 0; i < b.N; i++ {
			ParStrassen[int64](w, ring.Int64{}, a, c, 0)
		}
	})
}
