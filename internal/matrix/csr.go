package matrix

import "fmt"

// CSR is a square sparse matrix in compressed-sparse-row form: row v's
// entries are Col[RowPtr[v]:RowPtr[v+1]] (strictly increasing column
// indices) paired with Val[RowPtr[v]:RowPtr[v+1]]. Entries not stored are
// the algebra's zero — the caller's semiring decides what that means, so
// the same representation serves the integer ring (zero = 0), the Boolean
// semiring (zero = false), and min-plus (zero = +∞).
//
// The three backing arrays are flat and contiguous, so a CSR of ρ nonzeros
// on n rows occupies Θ(n + ρ) memory however large n² is — the property
// the CSR operand plane exists for. Col is int32 (indices below 2³¹, the
// same width ring.Tuple ships on the wire); RowPtr is int64 so ρ itself is
// unbounded.
type CSR[T any] struct {
	N      int
	RowPtr []int64
	Col    []int32
	Val    []T
}

// NewCSR returns an empty n×n CSR matrix (no entries, RowPtr all zero).
func NewCSR[T any](n int) *CSR[T] {
	return &CSR[T]{N: n, RowPtr: make([]int64, n+1)}
}

// NNZ returns the stored-entry count.
func (m *CSR[T]) NNZ() int64 {
	if len(m.RowPtr) == 0 {
		return 0
	}
	return m.RowPtr[m.N]
}

// RowNNZ returns the stored-entry count of row v — a pointer difference,
// which is why a density census over CSR operands costs no scan at all.
func (m *CSR[T]) RowNNZ(v int) int { return int(m.RowPtr[v+1] - m.RowPtr[v]) }

// Row returns row v's column indices and values as windows into the
// backing arrays (read-only for callers that do not own the matrix).
func (m *CSR[T]) Row(v int) ([]int32, []T) {
	lo, hi := m.RowPtr[v], m.RowPtr[v+1]
	if m.Val == nil {
		return m.Col[lo:hi], nil
	}
	return m.Col[lo:hi], m.Val[lo:hi]
}

// Validate checks the structural invariants: monotone row pointers,
// in-range strictly increasing columns per row, and value length matching
// the entry count (a nil Val is legal and means "all entries are the
// caller's one element" — adjacency matrices ship without values).
func (m *CSR[T]) Validate() error {
	n := m.N
	if n < 0 || len(m.RowPtr) != n+1 {
		return fmt.Errorf("matrix: CSR with %d rows has %d row pointers, want %d", n, len(m.RowPtr), n+1)
	}
	if m.RowPtr[0] != 0 {
		return fmt.Errorf("matrix: CSR row pointers start at %d, want 0", m.RowPtr[0])
	}
	for v := 0; v < n; v++ {
		lo, hi := m.RowPtr[v], m.RowPtr[v+1]
		if hi < lo {
			return fmt.Errorf("matrix: CSR row %d has negative extent [%d, %d)", v, lo, hi)
		}
		prev := int32(-1)
		for _, c := range m.Col[lo:hi] {
			if c < 0 || int(c) >= n {
				return fmt.Errorf("matrix: CSR row %d has column %d out of range [0, %d)", v, c, n)
			}
			if c <= prev {
				return fmt.Errorf("matrix: CSR row %d columns not strictly increasing at %d", v, c)
			}
			prev = c
		}
	}
	if int64(len(m.Col)) != m.RowPtr[n] {
		return fmt.Errorf("matrix: CSR has %d columns stored, row pointers claim %d", len(m.Col), m.RowPtr[n])
	}
	if m.Val != nil && len(m.Val) != len(m.Col) {
		return fmt.Errorf("matrix: CSR has %d values for %d columns", len(m.Val), len(m.Col))
	}
	return nil
}

// CSRFromDense compresses a dense matrix, keeping entries for which keep
// returns true (typically "not the semiring zero").
func CSRFromDense[T any](m *Dense[T], keep func(T) bool) *CSR[T] {
	if m.Rows() != m.Cols() {
		panic(fmt.Sprintf("matrix: CSRFromDense wants a square matrix, got %d×%d", m.Rows(), m.Cols()))
	}
	n := m.Rows()
	out := NewCSR[T](n)
	for v := 0; v < n; v++ {
		for j, x := range m.Row(v) {
			if keep(x) {
				out.Col = append(out.Col, int32(j))
				out.Val = append(out.Val, x)
			}
		}
		out.RowPtr[v+1] = int64(len(out.Col))
	}
	return out
}

// Dense expands the CSR matrix, filling unset entries with zero and unset
// values (nil Val) with one.
func (m *CSR[T]) Dense(zero, one T) *Dense[T] {
	d := NewFilled[T](m.N, m.N, zero)
	for v := 0; v < m.N; v++ {
		cols, vals := m.Row(v)
		row := d.Row(v)
		for i, c := range cols {
			if vals == nil {
				row[c] = one
			} else {
				row[c] = vals[i]
			}
		}
	}
	return d
}
