package matrix

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"testing"

	"github.com/algebraic-clique/algclique/internal/ring"
)

// testWorkers is a plain goroutine-pool Workers implementation for tests
// and benchmarks (the production implementations live in internal/clique:
// Network.RunLocal and LocalPool).
type testWorkers struct {
	k int
}

func newTestWorkers() *testWorkers { return &testWorkers{k: runtime.GOMAXPROCS(0)} }

func (w *testWorkers) close() {}

func (w *testWorkers) RunLocal(tasks int, f func(int)) {
	if w.k <= 1 || tasks <= 1 {
		for t := 0; t < tasks; t++ {
			f(t)
		}
		return
	}
	sem := make(chan struct{}, w.k)
	var wg sync.WaitGroup
	wg.Add(tasks)
	for t := 0; t < tasks; t++ {
		sem <- struct{}{}
		go func(t int) {
			defer wg.Done()
			f(t)
			<-sem
		}(t)
	}
	wg.Wait()
}

func withWorkerCounts(t *testing.T, f func(t *testing.T, w *testWorkers)) {
	t.Helper()
	for _, k := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		t.Run(fmt.Sprintf("workers=%d", k), func(t *testing.T) {
			f(t, &testWorkers{k: k})
		})
	}
}

func TestParMulIntoMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(91, 92))
	for _, n := range []int{1, 5, 16, 33, 100, 129} {
		a, b := New[int64](n, n), New[int64](n, n)
		for i := range a.e {
			a.e[i] = rng.Int64N(50) - 25
			b.e[i] = rng.Int64N(50) - 25
		}
		want := Mul[int64](ring.Int64{}, a, b)
		withWorkerCounts(t, func(t *testing.T, w *testWorkers) {
			got := ParMul[int64](w, ring.Int64{}, a, b)
			if !Equal[int64](ring.Int64{}, want, got) {
				t.Fatalf("n=%d: ParMul differs from Mul", n)
			}
		})
		// nil Workers degrades to the sequential kernel.
		got := ParMul[int64](nil, ring.Int64{}, a, b)
		if !Equal[int64](ring.Int64{}, want, got) {
			t.Fatalf("n=%d: ParMul(nil) differs from Mul", n)
		}
	}
}

func TestParMulIntoBoolAndMinPlus(t *testing.T) {
	rng := rand.New(rand.NewPCG(93, 94))
	n := 130
	ab, bb := New[bool](n, n), New[bool](n, n)
	for i := range ab.e {
		ab.e[i] = rng.IntN(3) == 0
		bb.e[i] = rng.IntN(3) == 0
	}
	wantB := Mul[bool](ring.Bool{}, ab, bb)
	am, bm := New[int64](n, n), New[int64](n, n)
	for i := range am.e {
		if rng.IntN(5) == 0 {
			am.e[i] = ring.Inf
		} else {
			am.e[i] = rng.Int64N(100)
		}
		if rng.IntN(5) == 0 {
			bm.e[i] = ring.Inf
		} else {
			bm.e[i] = rng.Int64N(100)
		}
	}
	wantM := Mul[int64](ring.MinPlus{}, am, bm)
	withWorkerCounts(t, func(t *testing.T, w *testWorkers) {
		if got := ParMul[bool](w, ring.Bool{}, ab, bb); !Equal[bool](ring.Bool{}, wantB, got) {
			t.Fatalf("Boolean ParMul differs from Mul")
		}
		if got := ParMul[int64](w, ring.MinPlus{}, am, bm); !Equal[int64](ring.MinPlus{}, wantM, got) {
			t.Fatalf("min-plus ParMul differs from Mul")
		}
	})
}

// TestParStrassenDeterministic proves the parallel Strassen recursion is
// bit-identical to the sequential one for every worker count — including
// sizes that trigger the one-level (7-task) and two-level (49-task)
// expansions, padding, and the odd-size school-book fallback.
func TestParStrassenDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(95, 96))
	for _, n := range []int{0, 1, 7, 64, 65, 96, 128, 200, 256, 300} {
		a, b := New[int64](n, n), New[int64](n, n)
		for i := range a.e {
			a.e[i] = rng.Int64N(100) - 50
			b.e[i] = rng.Int64N(100) - 50
		}
		want := Strassen[int64](ring.Int64{}, a, b, 16)
		withWorkerCounts(t, func(t *testing.T, w *testWorkers) {
			got := ParStrassen[int64](w, ring.Int64{}, a, b, 16)
			if !Equal[int64](ring.Int64{}, want, got) {
				t.Fatalf("n=%d: ParStrassen differs from Strassen", n)
			}
		})
		if got := ParStrassen[int64](nil, ring.Int64{}, a, b, 16); !Equal[int64](ring.Int64{}, want, got) {
			t.Fatalf("n=%d: ParStrassen(nil) differs from Strassen", n)
		}
	}
}

// TestParStrassenMatchesSchoolbook anchors the parallel recursion to the
// plain product, not just to the sequential Strassen.
func TestParStrassenMatchesSchoolbook(t *testing.T) {
	rng := rand.New(rand.NewPCG(97, 98))
	n := 96
	a, b := New[int64](n, n), New[int64](n, n)
	for i := range a.e {
		a.e[i] = rng.Int64N(20) - 10
		b.e[i] = rng.Int64N(20) - 10
	}
	want := Mul[int64](ring.Int64{}, a, b)
	w := newTestWorkers()
	if got := ParStrassen[int64](w, ring.Int64{}, a, b, 16); !Equal[int64](ring.Int64{}, want, got) {
		t.Fatalf("ParStrassen differs from the school-book product")
	}
}
