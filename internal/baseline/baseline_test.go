package baseline_test

import (
	"math/rand/v2"
	"testing"

	"github.com/algebraic-clique/algclique/internal/baseline"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/graphs"
	"github.com/algebraic-clique/algclique/internal/matrix"
	"github.com/algebraic-clique/algclique/internal/ring"
)

func TestDolevTrianglesMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	// Include non-cube clique sizes: the baseline handles any n.
	for _, n := range []int{8, 15, 27, 40, 64} {
		for trial := 0; trial < 3; trial++ {
			g := graphs.GNP(n, rng.Float64()*0.5, false, rng.Uint64())
			net := clique.New(n)
			got, err := baseline.DolevTriangles(net, g)
			if err != nil {
				t.Fatal(err)
			}
			if want := graphs.CountTrianglesRef(g); got != want {
				t.Fatalf("n=%d: Dolev count = %d, want %d", n, got, want)
			}
		}
	}
}

func TestDolevTrianglesKnownCounts(t *testing.T) {
	cases := []struct {
		name string
		g    *graphs.Graph
		want int64
	}{
		{"K4", graphs.Complete(4, false), 4},
		{"K6", graphs.Complete(6, false), 20},
		{"C5", graphs.Cycle(5, false), 0},
		{"petersen", graphs.Petersen(), 0},
	}
	for _, tc := range cases {
		net := clique.New(tc.g.N())
		got, err := baseline.DolevTriangles(net, tc.g)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("%s: %d triangles, want %d", tc.name, got, tc.want)
		}
	}
}

func TestDolevTrianglesRejectsDirected(t *testing.T) {
	net := clique.New(8)
	if _, err := baseline.DolevTriangles(net, graphs.Cycle(8, true)); err == nil {
		t.Error("directed graph accepted")
	}
}

func TestDolevRoundsScaleSubLinearly(t *testing.T) {
	rounds := map[int]int64{}
	for _, n := range []int{27, 216} {
		g := graphs.GNP(n, 0.3, false, 5)
		net := clique.New(n)
		if _, err := baseline.DolevTriangles(net, g); err != nil {
			t.Fatal(err)
		}
		rounds[n] = net.Rounds()
	}
	// n grew 8×; O(n^{1/3}) predicts ~2× rounds. Allow generous slack but
	// reject linear growth (8×).
	if rounds[216] > 5*rounds[27] {
		t.Errorf("Dolev rounds grew too fast: %v", rounds)
	}
}

func TestNaiveAPSPMatchesFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	for _, n := range []int{10, 20, 33} {
		g := graphs.RandomWeighted(n, 0.25, 20, rng.IntN(2) == 0, rng.Uint64())
		net := clique.New(n)
		d, err := baseline.NaiveAPSP(net, g)
		if err != nil {
			t.Fatal(err)
		}
		want, err := graphs.FloydWarshall(g)
		if err != nil {
			t.Fatal(err)
		}
		if !matrix.Equal[int64](ring.MinPlus{}, d.Collect(), want) {
			t.Fatalf("n=%d: naive APSP disagrees with Floyd–Warshall", n)
		}
		// Gathering n² words costs ≈ 2n rounds.
		if net.Rounds() > int64(3*n+5) {
			t.Errorf("n=%d: naive APSP used %d rounds", n, net.Rounds())
		}
	}
}

func TestNaiveAPSPRejectsNegative(t *testing.T) {
	g := graphs.NewWeighted(8, true)
	g.SetEdge(0, 1, -1)
	net := clique.New(8)
	if _, err := baseline.NaiveAPSP(net, g); err == nil {
		t.Error("negative weight accepted by Dijkstra baseline")
	}
}
