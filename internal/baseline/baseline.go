// Package baseline implements the combinatorial prior-work algorithms that
// Table 1 of the paper compares against:
//
//   - DolevTriangles: the deterministic O(n^{1/3})-round triangle counting
//     of Dolev, Lenzen and Peled ("Tri, tri again", DISC 2012): the vertex
//     set is split into c = ⌈n^{1/3}⌉ parts and each node examines the
//     edges between one triple of parts.
//   - NaiveAPSP: the learn-everything APSP baseline (Θ(n) rounds): every
//     node gathers the full weight matrix and runs Dijkstra locally. The
//     paper's Table 1 cites Nanongkai's Õ(√n)-round (2+o(1))-approximation
//     as combinatorial prior work; that algorithm is its own paper, so this
//     repository uses the naive exact baseline (plus the semiring 3D APSP)
//     as the combinatorial comparison points — see DESIGN.md.
package baseline

import (
	"container/heap"
	"fmt"

	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/graphs"
	"github.com/algebraic-clique/algclique/internal/ring"
	"github.com/algebraic-clique/algclique/internal/routing"
)

// DolevTriangles counts triangles deterministically in O(n^{1/3}) rounds.
// Undirected graphs only (as in the original paper).
//
// Parts are the contiguous ranges S_i of size ⌈n/c⌉; the ordered triples
// (i ≤ j ≤ k) are assigned round-robin to nodes, each handler receives the
// three bipartite edge sets it needs (O(n^{4/3}) words per node, routed),
// and counts the triangles a < b < c with a ∈ S_i, b ∈ S_j, c ∈ S_k.
func DolevTriangles(net *clique.Network, g *graphs.Graph) (int64, error) {
	if g.Directed() {
		return 0, fmt.Errorf("baseline: DolevTriangles needs an undirected graph: %w", ccmm.ErrSize)
	}
	n := net.N()
	if g.N() != n {
		return 0, fmt.Errorf("baseline: graph has %d nodes on an %d-node clique: %w", g.N(), n, ccmm.ErrSize)
	}
	if n == 1 {
		return 0, nil
	}
	c := ccmm.CbrtCeil(n)
	per := (n + c - 1) / c
	part := func(v int) int { return v / per }
	partRange := func(i int) (int, int) {
		lo := i * per
		hi := lo + per
		if hi > n {
			hi = n
		}
		return lo, hi
	}

	// Enumerate sorted triples and their handlers.
	type triple struct{ i, j, k int }
	var triples []triple
	for i := 0; i < c; i++ {
		for j := i; j < c; j++ {
			for k := j; k < c; k++ {
				triples = append(triples, triple{i, j, k})
			}
		}
	}
	handler := func(idx int) int { return idx % n }

	// Each node u in part p sends, for every triple containing p, its
	// adjacency row restricted to the other parts of the triple. The
	// handler reconstructs the three bipartite edge sets from sender ids.
	net.Phase("dolev/distribute")
	msgs := make([][][]clique.Word, n)
	for v := range msgs {
		msgs[v] = make([][]clique.Word, n)
	}
	net.ForEach(func(u int) {
		p := part(u)
		row := g.Row(u)
		for idx, t := range triples {
			if t.i != p && t.j != p && t.k != p {
				continue
			}
			h := handler(idx)
			// Send the row restricted to all parts of the triple (the
			// handler needs edges within and across the triple's parts to
			// enumerate a < b < c with edges among S_i, S_j, S_k).
			for _, pp := range []int{t.i, t.j, t.k} {
				lo, hi := partRange(pp)
				for x := lo; x < hi; x++ {
					if row.Get(x) {
						msgs[u][h] = append(msgs[u][h], clique.Word(x))
					} else {
						msgs[u][h] = append(msgs[u][h], clique.Word(0xffffffff))
					}
				}
			}
		}
	})
	in := routing.Exchange(net, routing.Auto, msgs)

	// Handlers reconstruct adjacency among their triple's parts and count.
	net.Phase("dolev/count")
	partial := make([]int64, n)
	net.ForEach(func(h int) {
		// A given (u, h) link carries u's slices for all triples u sent to
		// h, concatenated in triple-index order; decode with per-sender
		// cursors advancing in the same order.
		cursors := make(map[int]int)
		adj := make(map[int]map[int]bool)
		for idx, t := range triples {
			if handler(idx) != h {
				continue
			}
			parts := []int{t.i, t.j, t.k}
			var members []int
			for _, pp := range parts {
				lo, hi := partRange(pp)
				for u := lo; u < hi; u++ {
					members = append(members, u)
				}
			}
			for _, u := range dedupe(members) {
				words := in[h][u]
				cur := cursors[u]
				if adj[u] == nil {
					adj[u] = make(map[int]bool)
				}
				for _, pp := range parts {
					lo, hi := partRange(pp)
					for x := lo; x < hi; x++ {
						if words[cur] != 0xffffffff {
							adj[u][int(words[cur])] = true
						}
						cur++
					}
				}
				cursors[u] = cur
			}
			// Count a < b < c spanning the triple's parts.
			iLo, iHi := partRange(t.i)
			jLo, jHi := partRange(t.j)
			kLo, kHi := partRange(t.k)
			for a := iLo; a < iHi; a++ {
				for b := max(jLo, a+1); b < jHi; b++ {
					if !adj[a][b] {
						continue
					}
					for cc := max(kLo, b+1); cc < kHi; cc++ {
						if adj[a][cc] && adj[b][cc] {
							partial[h]++
						}
					}
				}
			}
		}
	})
	vals := make([]clique.Word, n)
	for v := 0; v < n; v++ {
		vals[v] = clique.Word(partial[v])
	}
	var total int64
	for _, w := range net.BroadcastWord(vals) {
		total += int64(w)
	}
	return total, nil
}

func dedupe(xs []int) []int {
	seen := make(map[int]bool, len(xs))
	out := xs[:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// NaiveAPSP gathers the whole weight matrix at every node (Θ(n) rounds)
// and solves single-source shortest paths locally with Dijkstra. Weights
// must be non-negative.
func NaiveAPSP(net *clique.Network, g *graphs.Weighted) (*ccmm.RowMat[int64], error) {
	n := net.N()
	if g.N() != n {
		return nil, fmt.Errorf("baseline: graph has %d nodes on an %d-node clique: %w", g.N(), n, ccmm.ErrSize)
	}
	w := g.Matrix()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && !ring.IsInf(w.At(u, v)) && w.At(u, v) < 0 {
				return nil, fmt.Errorf("baseline: negative weight (%d,%d); NaiveAPSP uses Dijkstra: %w", u, v, ccmm.ErrSize)
			}
		}
	}
	net.Phase("naive-apsp/gather")
	vecs := make([][]clique.Word, n)
	for v := 0; v < n; v++ {
		row := w.Row(v)
		vec := make([]clique.Word, n)
		for j := 0; j < n; j++ {
			vec[j] = clique.Word(row[j])
		}
		vecs[v] = vec
	}
	all := routing.AllGather(net, vecs)

	net.Phase("naive-apsp/dijkstra")
	full := make([][]int64, n)
	for v := 0; v < n; v++ {
		row := make([]int64, n)
		for j := 0; j < n; j++ {
			row[j] = int64(all[v][j])
		}
		full[v] = row
	}
	out := ccmm.NewRowMat[int64](n)
	net.ForEach(func(src int) {
		out.Rows[src] = dijkstra(full, src)
	})
	return out, nil
}

type pqItem struct {
	v int
	d int64
}

type pq []pqItem

func (p pq) Len() int           { return len(p) }
func (p pq) Less(i, j int) bool { return p[i].d < p[j].d }
func (p pq) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x any)        { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() any          { old := *p; x := old[len(old)-1]; *p = old[:len(old)-1]; return x }

func dijkstra(w [][]int64, src int) []int64 {
	n := len(w)
	dist := make([]int64, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = ring.Inf
	}
	dist[src] = 0
	h := &pq{{v: src, d: 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(pqItem)
		if done[it.v] {
			continue
		}
		done[it.v] = true
		for u := 0; u < n; u++ {
			if u == it.v || done[u] || ring.IsInf(w[it.v][u]) {
				continue
			}
			if nd := it.d + w[it.v][u]; nd < dist[u] {
				dist[u] = nd
				heap.Push(h, pqItem{v: u, d: nd})
			}
		}
	}
	return dist
}
