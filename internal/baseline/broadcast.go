package baseline

import (
	"fmt"

	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/matrix"
	"github.com/algebraic-clique/algclique/internal/ring"
)

// BroadcastMatMul multiplies integer matrices on the *broadcast* congested
// clique: every node publishes its rows of both operands (2n rounds) and
// multiplies locally. By Corollary 24 of the paper (via Holzer–Pinsker),
// Ω̃(n) rounds are necessary in this model, so the trivial algorithm is
// optimal up to logarithmic factors — measured against the O(n^{1/3}) and
// O(n^ρ) unicast algorithms it quantifies the models' separation.
//
// The local n×n product — by far the dominant cost, since every node holds
// the full operands — fans out over w (the session's worker pool); a nil w
// multiplies sequentially. Either way the result is bit-identical: the
// parallel kernel only splits output rows.
func BroadcastMatMul(bnet *clique.BroadcastNetwork, w matrix.Workers, s, t *ccmm.RowMat[int64]) (*ccmm.RowMat[int64], error) {
	n := bnet.N()
	if s.N() != n || t.N() != n {
		return nil, fmt.Errorf("baseline: matrices %d×· on %d-node broadcast clique: %w", s.N(), n, ccmm.ErrSize)
	}
	bnet.Phase("bcastmm/publish")
	vecs := make([][]clique.Word, n)
	for v := 0; v < n; v++ {
		vec := make([]clique.Word, 0, 2*n)
		for _, x := range s.Rows[v] {
			vec = append(vec, clique.Word(x))
		}
		for _, x := range t.Rows[v] {
			vec = append(vec, clique.Word(x))
		}
		vecs[v] = vec
	}
	all := bnet.Publish(vecs)

	bnet.Phase("bcastmm/multiply")
	a := matrix.New[int64](n, n)
	b := matrix.New[int64](n, n)
	for v := 0; v < n; v++ {
		arow, brow := a.Row(v), b.Row(v)
		vec := all[v]
		for j := 0; j < n; j++ {
			arow[j] = int64(vec[j])
			brow[j] = int64(vec[n+j])
		}
	}
	prod := matrix.ParMul[int64](w, ring.Int64{}, a, b)
	out := ccmm.NewRowMat[int64](n)
	for v := 0; v < n; v++ {
		copy(out.Rows[v], prod.Row(v))
	}
	return out, nil
}
