package bilinear_test

import (
	"math/rand/v2"
	"testing"

	"github.com/algebraic-clique/algclique/internal/bilinear"
	"github.com/algebraic-clique/algclique/internal/matrix"
	"github.com/algebraic-clique/algclique/internal/ring"
)

func intGen(rng *rand.Rand) func() int64 {
	return func() int64 { return rng.Int64N(41) - 20 }
}

func TestStrassenSchemeCorrect(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	s := bilinear.Strassen()
	if s.D != 2 || s.M != 7 {
		t.Fatalf("strassen scheme is ⟨%d;%d⟩, want ⟨2;7⟩", s.D, s.M)
	}
	if err := bilinear.VerifyOver[int64](s, ring.Int64{}, 100, intGen(rng)); err != nil {
		t.Fatal(err)
	}
}

func TestClassicalSchemeCorrect(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 1))
	for d := 1; d <= 4; d++ {
		s := bilinear.Classical(d)
		if s.M != d*d*d {
			t.Fatalf("classical(%d) has m=%d", d, s.M)
		}
		if err := bilinear.VerifyOver[int64](s, ring.Int64{}, 25, intGen(rng)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTensorSchemesCorrect(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 1))
	z := ring.NewZp(10007)
	zgen := func() int64 { return rng.Int64N(10007) }
	cases := []*bilinear.Scheme{
		bilinear.StrassenPower(2),
		bilinear.Tensor(bilinear.Strassen(), bilinear.Classical(3)),
		bilinear.Tensor(bilinear.Classical(2), bilinear.Strassen()),
		bilinear.Tensor(bilinear.StrassenPower(2), bilinear.Classical(2)),
	}
	for _, s := range cases {
		if err := bilinear.VerifyOver[int64](s, z, 10, zgen); err != nil {
			t.Errorf("%v: %v", s, err)
		}
	}
}

func TestStrassenPowerCounts(t *testing.T) {
	for k := 0; k <= 3; k++ {
		s := bilinear.StrassenPower(k)
		wantD, wantM := 1, 1
		for i := 0; i < k; i++ {
			wantD *= 2
			wantM *= 7
		}
		if s.D != wantD || s.M != wantM {
			t.Errorf("strassen^%d is ⟨%d;%d⟩, want ⟨%d;%d⟩", k, s.D, s.M, wantD, wantM)
		}
		if err := s.Validate(); err != nil {
			t.Error(err)
		}
	}
}

func TestMulBlocksWithLargerBlocks(t *testing.T) {
	// The distributed algorithm applies the scheme to blocks that are
	// matrices, not scalars; check block semantics directly.
	rng := rand.New(rand.NewPCG(4, 1))
	r := ring.Int64{}
	s := bilinear.StrassenPower(2) // d = 4
	bs := 3
	n := s.D * bs
	a, b := matrix.New[int64](n, n), matrix.New[int64](n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.Int64N(19)-9)
			b.Set(i, j, rng.Int64N(19)-9)
		}
	}
	got := bilinear.MulBlocks[int64](s, r, a, b, bs)
	want := matrix.Mul[int64](r, a, b)
	if !matrix.Equal[int64](r, got, want) {
		t.Fatal("MulBlocks disagrees with school-book on block operands")
	}
}

func TestMulBlocksPolyRing(t *testing.T) {
	// The Lemma 18 embedding runs bilinear schemes over the polynomial
	// ring; make sure nothing assumes scalar entries.
	p := ring.NewPoly(6)
	rng := rand.New(rand.NewPCG(5, 1))
	gen := func() ring.PolyElem {
		if rng.IntN(3) == 0 {
			return nil
		}
		return p.Monomial(rng.Int64N(6))
	}
	if err := bilinear.VerifyOver[ring.PolyElem](bilinear.Strassen(), p, 50, gen); err != nil {
		t.Fatal(err)
	}
}

func TestPickSchemes(t *testing.T) {
	cases := []struct {
		n        int
		wantD    int
		maxMults int
	}{
		{16, 2, 16},   // q=4: d=2 (strassen, m=7)
		{64, 4, 64},   // q=8: d=4 (strassen^2, m=49)
		{256, 4, 256}, // q=16: d=4 (7^3=343 > 256)
		{1024, 8, 1024},
		{4096, 16, 4096},
	}
	for _, tc := range cases {
		s, err := bilinear.Pick(tc.n)
		if err != nil {
			t.Errorf("Pick(%d): %v", tc.n, err)
			continue
		}
		if s.D != tc.wantD {
			t.Errorf("Pick(%d) chose d=%d (%v), want d=%d", tc.n, s.D, s, tc.wantD)
		}
		if s.M > tc.maxMults {
			t.Errorf("Pick(%d) chose m=%d > n", tc.n, s.M)
		}
		q, _ := bilinear.Sqrt(tc.n)
		if q%s.D != 0 {
			t.Errorf("Pick(%d): d=%d does not divide q=%d", tc.n, s.D, q)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("Pick(%d): %v", tc.n, err)
		}
	}
}

func TestPickRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 5, 15, 99, 4} {
		if _, err := bilinear.Pick(n); err == nil {
			t.Errorf("Pick(%d) should fail", n)
		}
	}
}

func TestPickedSchemesMultiplyCorrectly(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 1))
	for _, n := range []int{16, 64, 256} {
		s, err := bilinear.Pick(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := bilinear.VerifyOver[int64](s, ring.Int64{}, 5, intGen(rng)); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestValidCliqueSizes(t *testing.T) {
	sizes := bilinear.ValidCliqueSizes(300)
	want := map[int]bool{16: true, 64: true, 256: true}
	for _, n := range sizes {
		if q, ok := bilinear.Sqrt(n); !ok || q < 2 {
			t.Errorf("invalid size %d listed", n)
		}
	}
	found := map[int]bool{}
	for _, n := range sizes {
		found[n] = true
	}
	for n := range want {
		if !found[n] {
			t.Errorf("expected size %d in ValidCliqueSizes", n)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	s := bilinear.Strassen()
	s.Alpha[0] = append(s.Alpha[0], bilinear.Term{I: 5, J: 0, C: 1})
	if err := s.Validate(); err == nil {
		t.Error("Validate accepted out-of-range index")
	}
	s = bilinear.Strassen()
	s.Lambda[3] = append(s.Lambda[3], bilinear.Term{I: 0, J: 0, C: 0})
	if err := s.Validate(); err == nil {
		t.Error("Validate accepted zero coefficient")
	}
	s = bilinear.Strassen()
	s.Beta = s.Beta[:5]
	if err := s.Validate(); err == nil {
		t.Error("Validate accepted truncated tables")
	}
}

func TestSqrt(t *testing.T) {
	for _, tc := range []struct {
		n, q int
		ok   bool
	}{
		{0, 0, true}, {1, 1, true}, {2, 1, false}, {4, 2, true},
		{15, 3, false}, {16, 4, true}, {1 << 20, 1 << 10, true}, {-4, 0, false},
	} {
		q, ok := bilinear.Sqrt(tc.n)
		if ok != tc.ok || (ok && q != tc.q) {
			t.Errorf("Sqrt(%d) = (%d, %v), want (%d, %v)", tc.n, q, ok, tc.q, tc.ok)
		}
	}
}
