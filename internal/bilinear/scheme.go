// Package bilinear represents bilinear matrix-multiplication schemes — the
// ⟨d, d, d; m⟩ algorithms that compute a d×d matrix product with m scalar
// multiplications — and their Kronecker (tensor) composition.
//
// A scheme is the data (α, β, λ) of §2.2 of the paper:
//
//	Ŝ(w) = Σ_{i,j} α_ijw · S_ij,   T̂(w) = Σ_{i,j} β_ijw · T_ij,
//	P̂(w) = Ŝ(w) · T̂(w),           P_ij = Σ_w λ_ijw · P̂(w).
//
// The congested-clique fast multiplication (Lemma 10) runs one P̂(w) product
// per node; the scheme's multiplication count m must therefore not exceed
// the clique size n, and the block dimension d must divide √n.
package bilinear

import (
	"fmt"

	"github.com/algebraic-clique/algclique/internal/matrix"
	"github.com/algebraic-clique/algclique/internal/ring"
)

// Term is one coefficient of a linear form over d×d block indices: the
// block at (I, J) enters with integer coefficient C.
type Term struct {
	I, J int
	C    int64
}

// Scheme is a bilinear matrix-multiplication algorithm for d×d block
// matrices using M block multiplications. Alpha[w] and Beta[w] list the
// non-zero terms of the w-th linear forms over S and T; Lambda[w] lists the
// output blocks (I, J) to which P̂(w) contributes with coefficient C.
type Scheme struct {
	D      int
	M      int
	Alpha  [][]Term
	Beta   [][]Term
	Lambda [][]Term
	name   string
}

// Name returns a human-readable description, e.g. "strassen^2⊗classical(3)".
func (s *Scheme) Name() string { return s.name }

// String implements fmt.Stringer.
func (s *Scheme) String() string {
	return fmt.Sprintf("%s ⟨d=%d, m=%d⟩", s.name, s.D, s.M)
}

// Classical returns the school-book ⟨d,d,d; d³⟩ scheme.
func Classical(d int) *Scheme {
	if d < 1 {
		panic("bilinear: Classical dimension must be ≥ 1")
	}
	m := d * d * d
	s := &Scheme{
		D: d, M: m,
		Alpha:  make([][]Term, m),
		Beta:   make([][]Term, m),
		Lambda: make([][]Term, m),
		name:   fmt.Sprintf("classical(%d)", d),
	}
	w := 0
	for i := 0; i < d; i++ {
		for k := 0; k < d; k++ {
			for j := 0; j < d; j++ {
				s.Alpha[w] = []Term{{I: i, J: k, C: 1}}
				s.Beta[w] = []Term{{I: k, J: j, C: 1}}
				s.Lambda[w] = []Term{{I: i, J: j, C: 1}}
				w++
			}
		}
	}
	return s
}

// Strassen returns Strassen's ⟨2,2,2;7⟩ scheme (Strassen 1969).
func Strassen() *Scheme {
	return &Scheme{
		D: 2, M: 7,
		// M1..M7 in the classical formulation.
		Alpha: [][]Term{
			{{0, 0, 1}, {1, 1, 1}},  // M1: (A11 + A22)
			{{1, 0, 1}, {1, 1, 1}},  // M2: (A21 + A22)
			{{0, 0, 1}},             // M3: A11
			{{1, 1, 1}},             // M4: A22
			{{0, 0, 1}, {0, 1, 1}},  // M5: (A11 + A12)
			{{1, 0, 1}, {0, 0, -1}}, // M6: (A21 − A11)
			{{0, 1, 1}, {1, 1, -1}}, // M7: (A12 − A22)
		},
		Beta: [][]Term{
			{{0, 0, 1}, {1, 1, 1}},  // M1: (B11 + B22)
			{{0, 0, 1}},             // M2: B11
			{{0, 1, 1}, {1, 1, -1}}, // M3: (B12 − B22)
			{{1, 0, 1}, {0, 0, -1}}, // M4: (B21 − B11)
			{{1, 1, 1}},             // M5: B22
			{{0, 0, 1}, {0, 1, 1}},  // M6: (B11 + B12)
			{{1, 0, 1}, {1, 1, 1}},  // M7: (B21 + B22)
		},
		// C11 = M1 + M4 − M5 + M7; C12 = M3 + M5;
		// C21 = M2 + M4;           C22 = M1 − M2 + M3 + M6.
		Lambda: [][]Term{
			{{0, 0, 1}, {1, 1, 1}},  // M1 → C11, C22
			{{1, 0, 1}, {1, 1, -1}}, // M2 → C21, −C22
			{{0, 1, 1}, {1, 1, 1}},  // M3 → C12, C22
			{{0, 0, 1}, {1, 0, 1}},  // M4 → C11, C21
			{{0, 0, -1}, {0, 1, 1}}, // M5 → −C11, C12
			{{1, 1, 1}},             // M6 → C22
			{{0, 0, 1}},             // M7 → C11
		},
		name: "strassen",
	}
}

// Tensor returns the Kronecker product a⊗b: a ⟨Da·Db; Ma·Mb⟩ scheme that
// runs a on Da×Da blocks whose entries are themselves Db×Db block matrices
// multiplied by b. Block (i, j) of the tensor scheme is (ia·Db+ib, ja·Db+jb).
func Tensor(a, b *Scheme) *Scheme {
	d := a.D * b.D
	m := a.M * b.M
	s := &Scheme{
		D: d, M: m,
		Alpha:  make([][]Term, m),
		Beta:   make([][]Term, m),
		Lambda: make([][]Term, m),
		name:   fmt.Sprintf("%s⊗%s", a.name, b.name),
	}
	cross := func(ta, tb []Term) []Term {
		out := make([]Term, 0, len(ta)*len(tb))
		for _, x := range ta {
			for _, y := range tb {
				out = append(out, Term{
					I: x.I*b.D + y.I,
					J: x.J*b.D + y.J,
					C: x.C * y.C,
				})
			}
		}
		return out
	}
	for wa := 0; wa < a.M; wa++ {
		for wb := 0; wb < b.M; wb++ {
			w := wa*b.M + wb
			s.Alpha[w] = cross(a.Alpha[wa], b.Alpha[wb])
			s.Beta[w] = cross(a.Beta[wa], b.Beta[wb])
			s.Lambda[w] = cross(a.Lambda[wa], b.Lambda[wb])
		}
	}
	return s
}

// StrassenPower returns strassen^⊗k, the ⟨2^k; 7^k⟩ scheme. k = 0 yields
// the trivial ⟨1;1⟩ scheme.
func StrassenPower(k int) *Scheme {
	if k < 0 {
		panic("bilinear: negative Strassen power")
	}
	s := Classical(1)
	base := Strassen()
	for i := 0; i < k; i++ {
		s = Tensor(s, base)
	}
	if k > 0 {
		s.name = fmt.Sprintf("strassen^%d", k)
	}
	return s
}

// Validate checks structural well-formedness: indices in range, at least one
// multiplication, and no empty linear forms.
func (s *Scheme) Validate() error {
	if s.D < 1 || s.M < 1 {
		return fmt.Errorf("bilinear: degenerate scheme d=%d m=%d", s.D, s.M)
	}
	if len(s.Alpha) != s.M || len(s.Beta) != s.M || len(s.Lambda) != s.M {
		return fmt.Errorf("bilinear: scheme %q has inconsistent term-table lengths", s.name)
	}
	for w := 0; w < s.M; w++ {
		for _, tbl := range [][]Term{s.Alpha[w], s.Beta[w], s.Lambda[w]} {
			for _, t := range tbl {
				if t.I < 0 || t.I >= s.D || t.J < 0 || t.J >= s.D {
					return fmt.Errorf("bilinear: scheme %q term (%d,%d) out of range at w=%d", s.name, t.I, t.J, w)
				}
				if t.C == 0 {
					return fmt.Errorf("bilinear: scheme %q has zero coefficient at w=%d", s.name, w)
				}
			}
		}
	}
	return nil
}

// MulBlocks multiplies two matrices of size (D·bs)×(D·bs) through the
// scheme, treating them as D×D grids of bs×bs blocks over the ring. This is
// the sequential reference for the distributed algorithm and the basis of
// scheme verification.
func MulBlocks[T any](s *Scheme, r ring.Ring[T], a, b *matrix.Dense[T], bs int) *matrix.Dense[T] {
	n := s.D * bs
	if a.Rows() != n || a.Cols() != n || b.Rows() != n || b.Cols() != n {
		panic(fmt.Sprintf("bilinear: MulBlocks wants %d×%d operands, got %d×%d and %d×%d",
			n, n, a.Rows(), a.Cols(), b.Rows(), b.Cols()))
	}
	block := func(m *matrix.Dense[T], i, j int) *matrix.Dense[T] {
		return m.Sub(i*bs, (i+1)*bs, j*bs, (j+1)*bs)
	}
	out := matrix.Zeros[T](r, n, n)
	for w := 0; w < s.M; w++ {
		sh := matrix.Zeros[T](r, bs, bs)
		for _, t := range s.Alpha[w] {
			matrix.ScaleAddInto(r, sh, t.C, block(a, t.I, t.J))
		}
		th := matrix.Zeros[T](r, bs, bs)
		for _, t := range s.Beta[w] {
			matrix.ScaleAddInto(r, th, t.C, block(b, t.I, t.J))
		}
		ph := matrix.Mul[T](r, sh, th)
		for _, t := range s.Lambda[w] {
			dst := out.Sub(t.I*bs, (t.I+1)*bs, t.J*bs, (t.J+1)*bs)
			matrix.ScaleAddInto(r, dst, t.C, ph)
			out.SetSub(t.I*bs, t.J*bs, dst)
		}
	}
	return out
}

// VerifyOver checks that the scheme computes correct products of random
// scalar matrices over the given ring. gen supplies random elements.
func VerifyOver[T any](s *Scheme, r ring.Ring[T], trials int, gen func() T) error {
	if err := s.Validate(); err != nil {
		return err
	}
	for trial := 0; trial < trials; trial++ {
		a := matrix.New[T](s.D, s.D)
		b := matrix.New[T](s.D, s.D)
		for i := 0; i < s.D; i++ {
			for j := 0; j < s.D; j++ {
				a.Set(i, j, gen())
				b.Set(i, j, gen())
			}
		}
		got := MulBlocks(s, r, a, b, 1)
		want := matrix.Mul[T](r, a, b)
		if !matrix.Equal[T](r, got, want) {
			return fmt.Errorf("bilinear: scheme %q computed a wrong product (trial %d)", s.name, trial)
		}
	}
	return nil
}
