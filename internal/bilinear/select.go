package bilinear

import (
	"fmt"
	"math"
	"sync"
)

// Sqrt returns the integer square root of n and whether n is a perfect
// square.
func Sqrt(n int) (int, bool) {
	if n < 0 {
		return 0, false
	}
	q := int(math.Sqrt(float64(n)))
	for q*q > n {
		q--
	}
	for (q+1)*(q+1) <= n {
		q++
	}
	return q, q*q == n
}

// Pick selects the best scheme for a congested clique of n nodes
// multiplying n×n matrices: the Strassen-power⊗classical scheme with the
// largest block dimension d such that
//
//	d divides q = √n  (the two-level grid of §2.2 must tile the index space),
//	m(d) ≤ n          (one block product per node).
//
// Larger d means fewer words per node in the product-distribution steps
// (O(n²/d²)), so maximising d minimises measured rounds. Among equal d the
// scheme with fewer multiplications wins (idle nodes are free). Returns an
// error when n is not a perfect square of an even number ≥ 4.
func Pick(n int) (*Scheme, error) {
	if v, ok := pickCache.Load(n); ok {
		c := v.(pickResult)
		return c.s, c.err
	}
	s, err := pick(n)
	pickCache.Store(n, pickResult{s, err})
	return s, err
}

// pickResult memoises Pick: schemes are immutable after construction, so the
// session layer (and every engine resolution) can share one instance per
// clique size instead of re-deriving it on each product.
type pickResult struct {
	s   *Scheme
	err error
}

var pickCache sync.Map // int → pickResult

func pick(n int) (*Scheme, error) {
	q, ok := Sqrt(n)
	if !ok || q < 2 {
		return nil, fmt.Errorf("bilinear: clique size %d is not a perfect square ≥ 4", n)
	}
	bestD, bestM, bestK, bestC := 0, math.MaxInt, 0, 0
	for k := 0; pow(7, k) <= n; k++ {
		p2 := pow(2, k)
		for c := 1; p2*c <= q; c++ {
			d := p2 * c
			if q%d != 0 {
				continue
			}
			m := pow(7, k) * c * c * c
			if m > n {
				continue
			}
			if d > bestD || (d == bestD && m < bestM) {
				bestD, bestM, bestK, bestC = d, m, k, c
			}
		}
	}
	if bestD < 2 {
		// d = 1 would make the "fast" algorithm degenerate (every node
		// multiplies full matrices). q ≥ 2 always admits k=1,c=1 (d=2, m=7)
		// when n ≥ 7, or classical(2) (m=8) when n ≥ 8; n = 4 admits neither.
		return nil, fmt.Errorf("bilinear: no non-trivial scheme fits clique size %d", n)
	}
	s := StrassenPower(bestK)
	if bestC > 1 {
		s = Tensor(s, Classical(bestC))
	}
	return s, nil
}

// ValidCliqueSizes lists the perfect-square clique sizes up to max that Pick
// accepts, in increasing order. Useful for sweeps and error messages.
func ValidCliqueSizes(max int) []int {
	var out []int
	for q := 2; q*q <= max; q++ {
		if _, err := Pick(q * q); err == nil {
			out = append(out, q*q)
		}
	}
	return out
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		if out > (math.MaxInt / b) {
			return math.MaxInt
		}
		out *= b
	}
	return out
}
