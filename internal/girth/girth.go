// Package girth implements the paper's girth algorithms (§3.2):
//
//   - Undirected (Theorem 15): either the graph is sparse enough — by the
//     Bondy–Simonovits-style bound of Lemma 14 — to ship entirely to every
//     node, or its girth is at most ℓ and colour-coding finds it by trying
//     k = 3, …, ℓ.
//   - Directed (Corollary 16): doubling + binary search over Boolean matrix
//     powers B(i) (reachability by paths of length ≤ i), à la Itai–Rodeh.
package girth

import (
	"fmt"
	"math"

	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/graphs"
	"github.com/algebraic-clique/algclique/internal/routing"
	"github.com/algebraic-clique/algclique/internal/subgraph"
)

// DefaultMaxCycleLen is the default ℓ in Theorem 15. The paper picks
// ℓ = ⌈2 + 2/ρ⌉ (≈ 9 for our Strassen-backed ρ ≈ 0.2875), which balances
// the two branches asymptotically but makes the colour-coding constants
// (2^{O(ℓ)} · e^ℓ colourings) astronomical; ℓ = 5 keeps the dense branch
// practical while preserving the algorithm's structure. Configurable via
// Opts.
const DefaultMaxCycleLen = 5

// Opts configures the undirected girth computation.
type Opts struct {
	// MaxCycleLen is ℓ: the dense branch tries cycle lengths 3..ℓ; the
	// sparse branch triggers when m ≤ n^{1+1/⌊ℓ/2⌋} + n. 0 selects
	// DefaultMaxCycleLen.
	MaxCycleLen int
	// KCycle configures each colour-coding detection.
	KCycle subgraph.KCycleOpts
}

// Undirected computes the girth of an undirected graph (Theorem 15).
// ok = false reports an acyclic graph. The result is exact whenever the
// sparse branch runs; the dense branch is randomised (no false cycles, and
// a missed detection falls through to the gather fallback, so the returned
// value is always correct — only the round count is randomised).
func Undirected(net *clique.Network, engine ccmm.Engine, g *graphs.Graph, opts Opts) (girth int, ok bool, err error) {
	if g.Directed() {
		return 0, false, fmt.Errorf("girth: Undirected needs an undirected graph: %w", ccmm.ErrSize)
	}
	if g.N() != net.N() {
		return 0, false, fmt.Errorf("girth: graph has %d nodes on an %d-node clique: %w", g.N(), net.N(), ccmm.ErrSize)
	}
	l := opts.MaxCycleLen
	if l <= 0 {
		l = DefaultMaxCycleLen
	}
	if l < 3 {
		return 0, false, fmt.Errorf("girth: MaxCycleLen %d below 3: %w", l, ccmm.ErrSize)
	}
	n := net.N()

	// Edge census: one broadcast round.
	net.Phase("girth/census")
	degs := make([]clique.Word, n)
	for v := 0; v < n; v++ {
		degs[v] = clique.Word(g.OutDegree(v))
	}
	var m int64
	for _, d := range net.BroadcastWord(degs) {
		m += int64(d)
	}
	m /= 2

	threshold := int64(math.Pow(float64(n), 1+1/float64(l/2))) + int64(n)
	if m > threshold {
		// Dense: girth ≤ ℓ by Lemma 14; scan k upward.
		for k := 3; k <= l; k++ {
			found, _, err := subgraph.DetectKCycle(net, engine, g, k, opts.KCycle)
			if err != nil {
				return 0, false, err
			}
			if found {
				return k, true, nil
			}
		}
		// All randomised detections missed (probability n^{-Ω(1)} with
		// default colourings): fall back to the exact gather.
	}
	return gatherGirth(net, g)
}

// gatherGirth ships the whole graph to every node (Dolev et al. style) and
// computes the girth locally; used by the sparse branch of Theorem 15. On
// the direct transport the gather is charged analytically — one word per
// v < u edge, exactly what the encoded path ships — and the girth is
// computed on the shared graph in place.
func gatherGirth(net *clique.Network, g *graphs.Graph) (int, bool, error) {
	net.Phase("girth/gather")
	n := net.N()
	if net.Transport() != clique.TransportWire {
		lens := make([]int64, n)
		for v := 0; v < n; v++ {
			for _, u := range g.Neighbors(v) {
				if u > v {
					lens[v]++
				}
			}
		}
		routing.ChargeAllGather(net, lens)
		girth, ok := graphs.GirthRef(g)
		return girth, ok, nil
	}
	vecs := make([][]clique.Word, n)
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(v) {
			if u > v {
				vecs[v] = append(vecs[v], clique.Word(u))
			}
		}
	}
	all := routing.AllGather(net, vecs)
	rebuilt := graphs.NewGraph(n, false)
	for v := 0; v < n; v++ {
		for _, w := range all[v] {
			rebuilt.AddEdge(v, int(w))
		}
	}
	girth, ok := graphs.GirthRef(rebuilt)
	return girth, ok, nil
}

// Directed computes the girth of a directed graph (Corollary 16): Boolean
// matrices B(i) with B(i)[u][v] = 1 iff a directed path of length 1..i
// runs from u to v satisfy B(i+j) = B(i)·B(j) ∨ A; doubling finds the
// first power with a non-empty diagonal and binary search pins the girth,
// using O(log n) Boolean products in total. ok = false reports an acyclic
// graph. (Self-loops — girth 1 — cannot occur: the graph type is simple.)
func Directed(net *clique.Network, engine ccmm.Engine, g *graphs.Graph) (girth int, ok bool, err error) {
	if !g.Directed() {
		return 0, false, fmt.Errorf("girth: Directed needs a directed graph: %w", ccmm.ErrSize)
	}
	if g.N() != net.N() {
		return 0, false, fmt.Errorf("girth: graph has %d nodes on an %d-node clique: %w", g.N(), net.N(), ccmm.ErrSize)
	}
	n := net.N()
	a := &ccmm.RowMat[int64]{Rows: make([][]int64, n)}
	net.ForEach(func(v int) {
		row := make([]int64, n)
		g.Row(v).ForEach(func(u int) { row[u] = 1 })
		a.Rows[v] = row
	})

	diagSet := func(b *ccmm.RowMat[int64]) bool {
		flags := make([]clique.Word, n)
		for v := 0; v < n; v++ {
			if b.Rows[v][v] != 0 {
				flags[v] = 1
			}
		}
		for _, f := range net.BroadcastWord(flags) {
			if f != 0 {
				return true
			}
		}
		return false
	}
	orA := func(b *ccmm.RowMat[int64]) {
		net.ForEach(func(v int) {
			row, arow := b.Rows[v], a.Rows[v]
			for j := 0; j < n; j++ {
				if arow[j] != 0 {
					row[j] = 1
				}
			}
		})
	}

	// Doubling: powers[t] = B(2^t). The graph type forbids self-loops, so
	// B(1) = A always has an empty diagonal and any cycle has length ≥ 2;
	// once 2^t ≥ n an empty diagonal certifies acyclicity.
	net.Phase("girth-dir/doubling")
	sc := ccmm.NewScratch() // shared by the doubling and binary-search products
	powers := []*ccmm.RowMat[int64]{a}
	t := 0
	for !diagSet(powers[t]) {
		if 1<<t >= n {
			return 0, false, nil // no cycle of length ≤ n ⇒ acyclic
		}
		b, err := ccmm.MulBoolWith(net, engine, sc, powers[t], powers[t])
		if err != nil {
			return 0, false, err
		}
		orA(b)
		powers = append(powers, b)
		t++
	}
	if t == 0 {
		return 0, false, fmt.Errorf("girth: adjacency diagonal set (self-loops unsupported)")
	}

	// Binary search in (2^{t-1}, 2^t]: girth = 1 + the largest L with an
	// empty B(L) diagonal. Start from L = 2^{t-1} and add decreasing
	// powers of two, each step one product B(L)·B(2^s) ∨ A.
	net.Phase("girth-dir/binary-search")
	lo := 1 << (t - 1)
	cur := powers[t-1]
	for s := t - 2; s >= 0; s-- {
		cand, err := ccmm.MulBoolWith(net, engine, sc, cur, powers[s])
		if err != nil {
			return 0, false, err
		}
		orA(cand)
		if !diagSet(cand) {
			lo += 1 << s
			cur = cand
		}
	}
	return lo + 1, true, nil
}
