package girth_test

import (
	"math/rand/v2"
	"testing"

	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/girth"
	"github.com/algebraic-clique/algclique/internal/graphs"
	"github.com/algebraic-clique/algclique/internal/subgraph"
)

func padTo(g *graphs.Graph, n int) *graphs.Graph {
	out := graphs.NewGraph(n, g.Directed())
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if g.Directed() || u < v {
				out.AddEdge(u, v)
			}
		}
	}
	return out
}

func TestUndirectedGirthKnownGraphs(t *testing.T) {
	cases := []struct {
		name  string
		g     *graphs.Graph
		girth int
		ok    bool
	}{
		{"triangle", padTo(graphs.Cycle(3, false), 16), 3, true},
		{"C4", padTo(graphs.Cycle(4, false), 16), 4, true},
		{"C5", padTo(graphs.Cycle(5, false), 16), 5, true},
		{"petersen", padTo(graphs.Petersen(), 16), 5, true},
		{"heawood", padTo(graphs.Heawood(), 16), 6, true},
		{"torus44", graphs.Torus(4, 4), 4, true},
		{"K5", padTo(graphs.Complete(5, false), 16), 3, true},
		{"tree", graphs.Tree(16, 1), 0, false},
		{"path", graphs.Path(16, false), 0, false},
		{"C9 sparse branch", padTo(graphs.Cycle(9, false), 16), 9, true},
		{"two cycles", twoCycles(16), 4, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			net := clique.New(tc.g.N())
			got, ok, err := girth.Undirected(net, ccmm.EngineAuto, tc.g, girth.Opts{
				KCycle: subgraph.KCycleOpts{Colourings: 150, Seed: 7},
			})
			if err != nil {
				t.Fatal(err)
			}
			if ok != tc.ok || (ok && got != tc.girth) {
				t.Errorf("girth = (%d, %v), want (%d, %v)", got, ok, tc.girth, tc.ok)
			}
		})
	}
}

// twoCycles builds a C7 and a C4 on disjoint node sets: girth 4.
func twoCycles(n int) *graphs.Graph {
	g := graphs.NewGraph(n, false)
	for i := 0; i < 7; i++ {
		g.AddEdge(i, (i+1)%7)
	}
	for i := 7; i < 11; i++ {
		g.AddEdge(i, 7+(i-7+1)%4)
	}
	return g
}

func TestUndirectedGirthDenseTriggersColourCoding(t *testing.T) {
	// A dense graph exceeds the Lemma 14 threshold, forcing the detection
	// branch; dense G(n, 1/2) graphs have triangles whp.
	g := graphs.GNP(16, 0.6, false, 3)
	if graphs.CountTrianglesRef(g) == 0 {
		t.Skip("unlucky dense graph without triangles")
	}
	net := clique.New(16)
	got, ok, err := girth.Undirected(net, ccmm.EngineFast, g, girth.Opts{
		KCycle: subgraph.KCycleOpts{Colourings: 100, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok || got != 3 {
		t.Errorf("dense girth = (%d, %v), want (3, true)", got, ok)
	}
}

func TestUndirectedGirthRandomAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 31))
	for trial := 0; trial < 10; trial++ {
		n := []int{16, 25, 36}[rng.IntN(3)]
		g := graphs.GNP(n, rng.Float64()*0.3, false, rng.Uint64())
		net := clique.New(n)
		got, ok, err := girth.Undirected(net, ccmm.EngineAuto, g, girth.Opts{
			KCycle: subgraph.KCycleOpts{Colourings: 150, Seed: uint64(trial)},
		})
		if err != nil {
			t.Fatal(err)
		}
		want, wantOK := graphs.GirthRef(g)
		if ok != wantOK || (ok && got != want) {
			t.Fatalf("n=%d trial=%d: girth = (%d,%v), want (%d,%v)", n, trial, got, ok, want, wantOK)
		}
	}
}

func TestUndirectedGirthRejectsDirected(t *testing.T) {
	net := clique.New(16)
	if _, _, err := girth.Undirected(net, ccmm.EngineAuto, graphs.Cycle(16, true), girth.Opts{}); err == nil {
		t.Error("directed graph accepted")
	}
}

func TestDirectedGirthKnownGraphs(t *testing.T) {
	two := graphs.NewGraph(16, true)
	two.AddEdge(2, 9)
	two.AddEdge(9, 2)

	ham := graphs.Cycle(16, true) // girth exactly n

	dag := graphs.NewGraph(16, true)
	for u := 0; u < 16; u++ {
		for v := u + 1; v < 16; v++ {
			dag.AddEdge(u, v)
		}
	}

	cases := []struct {
		name  string
		g     *graphs.Graph
		girth int
		ok    bool
	}{
		{"2-cycle", two, 2, true},
		{"C3", padTo(graphs.Cycle(3, true), 16), 3, true},
		{"C5", padTo(graphs.Cycle(5, true), 16), 5, true},
		{"C7", padTo(graphs.Cycle(7, true), 16), 7, true},
		{"hamiltonian", ham, 16, true},
		{"dag", dag, 0, false},
		{"empty", graphs.NewGraph(16, true), 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			net := clique.New(tc.g.N())
			got, ok, err := girth.Directed(net, ccmm.EngineFast, tc.g)
			if err != nil {
				t.Fatal(err)
			}
			if ok != tc.ok || (ok && got != tc.girth) {
				t.Errorf("girth = (%d, %v), want (%d, %v)", got, ok, tc.girth, tc.ok)
			}
		})
	}
}

func TestDirectedGirthRandomAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 3))
	for trial := 0; trial < 12; trial++ {
		n := 16
		g := graphs.GNP(n, rng.Float64()*0.15, true, rng.Uint64())
		net := clique.New(n)
		got, ok, err := girth.Directed(net, ccmm.EngineFast, g)
		if err != nil {
			t.Fatal(err)
		}
		want, wantOK := graphs.GirthRef(g)
		if ok != wantOK || (ok && got != want) {
			t.Fatalf("trial %d: girth = (%d,%v), want (%d,%v)", trial, got, ok, want, wantOK)
		}
	}
}

func TestDirectedGirthRejectsUndirected(t *testing.T) {
	net := clique.New(16)
	if _, _, err := girth.Directed(net, ccmm.EngineFast, graphs.Cycle(16, false)); err == nil {
		t.Error("undirected graph accepted")
	}
}
