package clique

// This file is the simulator's sparse-link mode: the same synchronous
// clique, with per-link state materialised only for links actually used.
//
// The dense-link representation is Θ(n²) at construction — queue rows,
// touch stamps, and flat mailbox arrays all scale with the link count, not
// the traffic. That is invisible at the sizes the dense engines run
// (n ≤ a few thousand) and fatal at the sizes the CSR operand plane
// targets: a GNP(10⁵, c/n) adjacency square moves Θ(n) traffic over a
// network whose dense bookkeeping alone would need tens of gigabytes.
// Above sparseLinkFloor nodes (or under WithSparseLinks, which tests use
// to force the mode at small n), a network therefore keeps
//
//   - per-source maps of *slink (queue, payload queue, analytic load,
//     touch generation) materialised on first send, and
//   - per-destination mailbox entry lists, appended in ascending source
//     order by the flush walk, so Mail.From resolves by binary search and
//     Mail.Each walks exactly the delivering sources.
//
// Charging is unchanged: flushSparse computes the identical per-link load
// maximum and word total the dense walk computes, so the ledger — rounds,
// words, flushes, phase attribution — is bit-identical between the two
// representations (TestSparseLinksLedgerParity pins this differentially).
// The only unsupported feature is link-plane fault injection, which
// mutates mailbox state by flat [dst·n+src] index; flushSparse rejects an
// armed link-fault plan with a panic rather than silently not injecting.

// sparseLinkFloor is the node count at which New switches to sparse links
// automatically: below it the dense arrays are at most a few MB and the
// flat-index paths are faster; above it Θ(n²) construction dominates any
// plausible traffic.
const sparseLinkFloor = 4096

// WithSparseLinks forces sparse-link mode regardless of size, so tests
// can differentially compare the two representations at small n.
func WithSparseLinks() Option {
	return func(c *Network) { c.sparseLinks = true }
}

// SparseLinks reports whether the network uses sparse-link state.
func (c *Network) SparseLinks() bool { return c.sparseLinks }

// slink is the per-used-link state: the dense mode's queues[src][dst],
// pqueues/ploads entries, and touch stamp, materialised on first use.
type slink struct {
	q     []Word
	pq    []Payload
	pload int64
	seq   uint64 // touch generation (the dense mode's tstamp entry)
}

// slinkFor returns (creating if needed) the link src→dst and registers it
// with the upcoming flush. Per-source maps and touch lists keep concurrent
// ForEach senders — each restricted to its own source — on disjoint state,
// exactly like the dense mode's per-source rows.
//
//cc:hotpath
func (c *Network) slinkFor(src, dst int) *slink {
	m := c.slinks[src]
	if m == nil {
		m = make(map[int]*slink) //cc:hotalloc-ok(first send from this source)
		c.slinks[src] = m
	}
	sl := m[dst]
	if sl == nil {
		sl = &slink{} //cc:hotalloc-ok(first use of this link; reused afterwards)
		m[dst] = sl
	}
	if sl.seq != c.flushSeq+1 {
		sl.seq = c.flushSeq + 1
		c.stouched[src] = append(c.stouched[src], dst)
	}
	return sl
}

// mailEntry is one delivery (src, words, payloads) in a destination's
// sparse mailbox. Entries are revived in place across flushes so their
// word and payload buffers recycle like the dense mode's flat arrays.
type mailEntry struct {
	src int
	ws  []Word
	ps  []Payload
}

func newMailSparse(n int) *Mail {
	return &Mail{n: n, sbox: make([][]mailEntry, n), sstamp: make([]uint64, n)}
}

// releaseSparse drops the payload references (and spiked word buffers)
// the sparse mailboxes hold, walking only the destinations the last fill
// touched. The entries themselves stay, capacity warm, gated stale by the
// per-destination stamp until the next fill revives them.
func (m *Mail) releaseSparse() {
	for _, dst := range m.sdirty {
		box := m.sbox[dst]
		for i := range box {
			box[i].ps = trimPayloads(box[i].ps)
			if cap(box[i].ws) > linkRetainCap {
				box[i].ws = nil
			}
		}
	}
	m.sdirty = m.sdirty[:0]
}

// sparseEntry resolves dst's delivery from src by binary search over the
// mailbox (entries are in ascending source order by construction — the
// flush walk visits sources in ascending order).
//
//cc:hotpath
func (m *Mail) sparseEntry(dst, src int) *mailEntry {
	if m.sstamp[dst] != m.id {
		return nil
	}
	box := m.sbox[dst]
	lo, hi := 0, len(box)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if box[mid].src < src {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(box) && box[lo].src == src {
		return &box[lo]
	}
	return nil
}

// flushSparse is FlushAnalytic on sparse-link state: identical delivery
// semantics and — critically — identical charging. The walk is over the
// touched links only; each destination's mailbox receives its entries in
// ascending source order because the outer loop ascends sources.
//
//cc:hotpath
func (c *Network) flushSparse(maxLoad, totalWords int64) *Mail {
	n := c.n
	if c.fault != nil {
		c.fault.checkFlush(c.flushes + 1)
		if c.fault.linkActive() {
			panic("clique: link-plane fault injection is not supported in sparse-link mode (see WithSparseLinks)")
		}
	}
	mail := c.mails[c.flushSeq&1]
	if mail == nil {
		mail = newMailSparse(n) //cc:hotalloc-ok(lazy one-time mailbox init)
		c.mails[c.flushSeq&1] = mail
	}
	// This mail's previous deliveries reach the end of their two-flush
	// lifetime here; drop the references they pinned.
	mail.releaseSparse()
	seq := c.flushSeq + 1
	mail.id = seq
	total := totalWords
	for src := 0; src < n; src++ {
		list := c.stouched[src]
		if len(list) == 0 {
			continue
		}
		srcLinks := c.slinks[src]
		for _, dst := range list {
			sl := srcLinks[dst]
			load := int64(len(sl.q)) + sl.pload
			sl.pload = 0
			if len(sl.q) > 0 || len(sl.pq) > 0 {
				box := mail.sbox[dst]
				if mail.sstamp[dst] != seq {
					box = box[:0]
					mail.sstamp[dst] = seq
					mail.sdirty = append(mail.sdirty, dst) //cc:hotalloc-ok(dirty-list growth; steady state reuses the array)
				}
				var e *mailEntry
				if len(box) < cap(box) {
					box = box[:len(box)+1]
					e = &box[len(box)-1] // revive: keep the buffers it held
					e.src = src
				} else {
					box = append(box, mailEntry{src: src}) //cc:hotalloc-ok(mailbox growth; steady state revives entries)
					e = &box[len(box)-1]
				}
				mail.sbox[dst] = box
				e.ws = append(e.ws[:0], sl.q...) //cc:hotalloc-ok(capacity growth; steady state reuses the buffer)
				if len(sl.q) > linkRetainCap {
					sl.q = nil // spiked queue released now; the mail copy at the next release
				} else {
					sl.q = sl.q[:0]
				}
				if len(sl.pq) > 0 {
					e.ps = append(e.ps[:0], sl.pq...) //cc:hotalloc-ok(capacity growth; steady state reuses the buffer)
					for k := range sl.pq {
						sl.pq[k] = nil // release the queued references
					}
					if cap(sl.pq) > payloadRetainCap {
						sl.pq = nil
					} else {
						sl.pq = sl.pq[:0]
					}
				} else {
					e.ps = trimPayloads(e.ps)
				}
			}
			if src != dst && load > 0 {
				if load > maxLoad {
					maxLoad = load
				}
				total += load
			}
		}
		c.stouched[src] = list[:0]
	}
	c.flushSeq = seq
	c.flushes++
	if c.fault != nil {
		maxLoad += c.fault.straggle(seq)
	}
	c.charge(maxLoad, total)
	return mail
}

// dropPendingSparse is DropPending's sparse-link walk.
func (c *Network) dropPendingSparse() {
	for src, list := range c.stouched {
		srcLinks := c.slinks[src]
		for _, dst := range list {
			sl := srcLinks[dst]
			sl.q = trimWords(sl.q)
			sl.pq = trimPayloads(sl.pq)
			sl.pload = 0
		}
		c.stouched[src] = list[:0]
	}
}
