package clique_test

import (
	"testing"

	"github.com/algebraic-clique/algclique/internal/clique"
)

func TestBroadcastNetworkRound(t *testing.T) {
	b := clique.NewBroadcast(4)
	got := b.Round([]clique.Word{1, 2, 3, 4})
	if b.Rounds() != 1 {
		t.Errorf("Rounds = %d, want 1", b.Rounds())
	}
	if b.Words() != 4*3 {
		t.Errorf("Words = %d, want 12", b.Words())
	}
	for i, w := range got {
		if w != clique.Word(i+1) {
			t.Errorf("value %d corrupted", i)
		}
	}
}

func TestBroadcastNetworkPublish(t *testing.T) {
	b := clique.NewBroadcast(3)
	vecs := [][]clique.Word{{1, 2, 3}, {4}, nil}
	all := b.Publish(vecs)
	if b.Rounds() != 3 {
		t.Errorf("Publish cost %d rounds, want max length 3", b.Rounds())
	}
	if len(all[0]) != 3 || all[1][0] != 4 || len(all[2]) != 0 {
		t.Error("published vectors corrupted")
	}
}

func TestBroadcastNetworkPanics(t *testing.T) {
	cases := []func(){
		func() { clique.NewBroadcast(0) },
		func() { clique.NewBroadcast(2).Round([]clique.Word{1}) },
		func() { clique.NewBroadcast(2).Publish(make([][]clique.Word, 3)) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			f()
		}()
	}
}
