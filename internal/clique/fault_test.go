package clique

import (
	"errors"
	"testing"
)

// ringExchange runs one all-to-all exchange where node v sends v*100+dst to
// every dst, flushes, and returns what each node received (0 = nothing).
func ringExchange(c *Network) [][]int {
	n := c.N()
	for v := 0; v < n; v++ {
		for dst := 0; dst < n; dst++ {
			if dst != v {
				c.Send(v, dst, Word(v*100+dst))
			}
		}
	}
	mail := c.Flush()
	got := make([][]int, n)
	for dst := 0; dst < n; dst++ {
		got[dst] = make([]int, n)
		for src := 0; src < n; src++ {
			ws := mail.From(dst, src)
			for range ws {
				got[dst][src]++
			}
		}
	}
	return got
}

func TestFaultInjectorDeterministic(t *testing.T) {
	plan := FaultPlan{Seed: 7, DropProb: 0.2, DupProb: 0.2, CorruptProb: 0.2}
	run := func() ([][]int, FaultStats) {
		c := New(8)
		fi := NewFaultInjector(plan)
		c.SetFaultInjector(fi)
		got := ringExchange(c)
		return got, fi.Stats()
	}
	g1, s1 := run()
	g2, s2 := run()
	if s1 != s2 {
		t.Fatalf("fault ledger differs across identical runs: %+v vs %+v", s1, s2)
	}
	if s1.Fired() == 0 {
		t.Fatalf("plan %+v injected nothing", plan)
	}
	for dst := range g1 {
		for src := range g1[dst] {
			if g1[dst][src] != g2[dst][src] {
				t.Fatalf("delivery [%d][%d] differs across identical runs: %d vs %d",
					dst, src, g1[dst][src], g2[dst][src])
			}
		}
	}
}

func TestFaultInjectorAdvanceChangesDraws(t *testing.T) {
	c := New(8)
	fi := NewFaultInjector(FaultPlan{Seed: 11, DropProb: 0.3})
	c.SetFaultInjector(fi)
	first := ringExchange(c)
	before := fi.Stats()
	fi.Advance()
	c.Reset()
	c.SetFaultInjector(fi)
	second := ringExchange(c)
	if fi.Stats() == before {
		t.Fatalf("Advance changed nothing: %+v", before)
	}
	same := true
	for dst := range first {
		for src := range first[dst] {
			if first[dst][src] != second[dst][src] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("attempt 0 and attempt 1 dropped identical links; draws are not re-keyed")
	}
}

func TestFaultDropWithholdsDelivery(t *testing.T) {
	c := New(4)
	fi := NewFaultInjector(FaultPlan{Seed: 3, DropProb: 1})
	c.SetFaultInjector(fi)
	got := ringExchange(c)
	for dst := range got {
		for src := range got[dst] {
			if src != dst && got[dst][src] != 0 {
				t.Fatalf("delivery [%d][%d] survived DropProb=1", dst, src)
			}
		}
	}
	// The words were sent: the charge is unchanged by the drops.
	if c.Rounds() != 1 || c.Words() != 12 {
		t.Fatalf("drops perturbed the ledger: rounds=%d words=%d, want 1/12", c.Rounds(), c.Words())
	}
	if fi.Stats().Dropped != 12 {
		t.Fatalf("Dropped = %d, want 12", fi.Stats().Dropped)
	}
}

func TestFaultDuplicateDoublesDelivery(t *testing.T) {
	c := New(4)
	fi := NewFaultInjector(FaultPlan{Seed: 3, DupProb: 1})
	c.SetFaultInjector(fi)
	got := ringExchange(c)
	for dst := range got {
		for src := range got[dst] {
			if src != dst && got[dst][src] != 2 {
				t.Fatalf("delivery [%d][%d] = %d words, want 2 under DupProb=1", dst, src, got[dst][src])
			}
		}
	}
	if c.Rounds() != 1 {
		t.Fatalf("duplicates perturbed the round ledger: %d", c.Rounds())
	}
}

func TestFaultCorruptFlipsWord(t *testing.T) {
	c := New(4)
	fi := NewFaultInjector(FaultPlan{Seed: 9, CorruptProb: 1})
	c.SetFaultInjector(fi)
	for dst := 1; dst < 4; dst++ {
		c.Send(0, dst, 42)
	}
	mail := c.Flush()
	corrupted := 0
	for dst := 1; dst < 4; dst++ {
		ws := mail.From(dst, 0)
		if len(ws) != 1 {
			t.Fatalf("dst %d received %d words, want 1", dst, len(ws))
		}
		if ws[0] != 42 {
			corrupted++
		}
	}
	if corrupted != 3 {
		t.Fatalf("%d of 3 deliveries corrupted under CorruptProb=1", corrupted)
	}
	if fi.Stats().Corrupted != 3 {
		t.Fatalf("Corrupted = %d, want 3", fi.Stats().Corrupted)
	}
}

func TestFaultPayloadCorrupter(t *testing.T) {
	c := New(2)
	corrupt := func(p Payload, h uint64) bool {
		sp, ok := p.(*[]int64)
		if !ok {
			return false
		}
		(*sp)[h%uint64(len(*sp))] ^= 1 << ((h >> 32) & 62)
		return true
	}
	fi := NewFaultInjector(FaultPlan{Seed: 5, CorruptProb: 1}, corrupt)
	c.SetFaultInjector(fi)
	data := []int64{1, 2, 3}
	c.SendPayload(0, 1, 3, &data)
	mail := c.Flush()
	ps := mail.PayloadsFrom(1, 0)
	if len(ps) != 1 {
		t.Fatalf("got %d payloads, want 1", len(ps))
	}
	got := *(ps[0].(*[]int64))
	if got[0] == 1 && got[1] == 2 && got[2] == 3 {
		t.Fatal("payload survived CorruptProb=1 with a registered corrupter")
	}
	if fi.Stats().Corrupted != 1 {
		t.Fatalf("Corrupted = %d, want 1", fi.Stats().Corrupted)
	}
}

func TestFaultCrashStopsSends(t *testing.T) {
	c := New(4)
	fi := NewFaultInjector(FaultPlan{Seed: 1, CrashAtRound: 1, CrashNode: 2})
	c.SetFaultInjector(fi)
	ringExchange(c) // round 1: the crash arms during this flush's charge
	if !fi.Crashed() {
		t.Fatal("node 2 did not crash at round 1")
	}
	// Healthy nodes keep sending; the crashed node's send panics typed.
	c.Send(0, 1, 7)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("send from crashed node did not panic")
		}
		err, ok := AsAbort(r)
		if !ok {
			t.Fatalf("crash panic %v is not a controlled abort", r)
		}
		var fe *FaultError
		if !errors.As(err, &fe) || fe.Kind != FaultCrash || fe.Node != 2 {
			t.Fatalf("err = %v, want FaultCrash on node 2", err)
		}
	}()
	c.Send(2, 0, 7)
}

func TestFaultCrashWithholdsPendingDeliveries(t *testing.T) {
	c := New(3)
	fi := NewFaultInjector(FaultPlan{Seed: 1, CrashAtRound: 1, CrashNode: 0})
	c.SetFaultInjector(fi)
	ringExchange(c) // crashes node 0 at round 1
	// Traffic enqueued by node 0 before the crash check runs at the next
	// flush is withheld; the healthy link delivers.
	c.queues[0][1] = append(c.queues[0][1], 9) // bypass the send-side panic
	c.touch(0, 1)
	c.Send(2, 1, 8)
	mail := c.Flush()
	if ws := mail.From(1, 0); ws != nil {
		t.Fatalf("delivery from crashed node survived: %v", ws)
	}
	if ws := mail.From(1, 2); len(ws) != 1 || ws[0] != 8 {
		t.Fatalf("healthy delivery perturbed: %v", ws)
	}
}

func TestFaultStraggleStretchesRounds(t *testing.T) {
	c := New(4)
	fi := NewFaultInjector(FaultPlan{Seed: 2, StraggleProb: 1, StraggleSkew: 5})
	c.SetFaultInjector(fi)
	ringExchange(c)
	if c.Rounds() != 6 { // 1 for the exchange + 5 skew
		t.Fatalf("rounds = %d, want 6", c.Rounds())
	}
	st := fi.Stats()
	if st.Straggles != 1 || st.SkewRounds != 5 {
		t.Fatalf("straggle ledger %+v, want 1 event / 5 rounds", st)
	}
}

func TestFaultMaxFaultsCapsStorm(t *testing.T) {
	c := New(16)
	fi := NewFaultInjector(FaultPlan{Seed: 4, DropProb: 1, MaxFaults: 3})
	c.SetFaultInjector(fi)
	ringExchange(c)
	if got := fi.Stats().Dropped; got != 3 {
		t.Fatalf("Dropped = %d, want the MaxFaults cap of 3", got)
	}
}

func TestFaultPanicAtFlushIsUntyped(t *testing.T) {
	c := New(4)
	fi := NewFaultInjector(FaultPlan{Seed: 6, PanicAtFlush: 1})
	c.SetFaultInjector(fi)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("PanicAtFlush did not panic")
		}
		if _, ok := AsAbort(r); ok {
			t.Fatalf("injected panic %v must be untyped (it simulates a bug, not a modelled fault)", r)
		}
		if !fi.PanicInjected() {
			t.Fatal("PanicInjected not recorded")
		}
	}()
	c.Send(0, 1, 1)
	c.Flush()
}

func TestFaultStatsSurfaceInNetworkStats(t *testing.T) {
	c := New(4)
	c.SetFaultInjector(NewFaultInjector(FaultPlan{Seed: 8, DropProb: 1}))
	ringExchange(c)
	if st := c.Stats(); st.Faults.Dropped == 0 {
		t.Fatalf("Stats().Faults empty after injected drops: %+v", st.Faults)
	}
	c.SetFaultInjector(nil)
	if st := c.Stats(); st.Faults != (FaultStats{}) {
		t.Fatalf("disarmed network still reports faults: %+v", st.Faults)
	}
}

func TestFaultZeroPlanIsTransparent(t *testing.T) {
	clean := New(8)
	cleanGot := ringExchange(clean)
	armed := New(8)
	armed.SetFaultInjector(NewFaultInjector(FaultPlan{Seed: 123}))
	armedGot := ringExchange(armed)
	if clean.Rounds() != armed.Rounds() || clean.Words() != armed.Words() {
		t.Fatalf("zero plan perturbed the ledger: %d/%d vs %d/%d",
			clean.Rounds(), clean.Words(), armed.Rounds(), armed.Words())
	}
	for dst := range cleanGot {
		for src := range cleanGot[dst] {
			if cleanGot[dst][src] != armedGot[dst][src] {
				t.Fatalf("zero plan perturbed delivery [%d][%d]", dst, src)
			}
		}
	}
}

func TestForEachPropagatesWorkerPanic(t *testing.T) {
	c := New(8, WithWorkers(4))
	defer c.Close()
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("worker panic did not propagate to the ForEach caller")
		} else if s, ok := r.(string); !ok || s != "boom" {
			t.Fatalf("propagated panic = %v, want the original value", r)
		}
	}()
	c.ForEach(func(v int) {
		if v == 5 {
			panic("boom")
		}
	})
}

func TestRunLocalPropagatesWorkerPanic(t *testing.T) {
	p := NewLocalPool(4)
	defer p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("worker panic did not propagate to the RunLocal caller")
		}
	}()
	p.RunLocal(16, func(task int) {
		if task == 11 {
			panic("boom")
		}
	})
}

func TestForEachUsableAfterWorkerPanic(t *testing.T) {
	c := New(8, WithWorkers(4))
	defer c.Close()
	func() {
		defer func() { recover() }()
		c.ForEach(func(v int) { panic("first") })
	}()
	var mu [8]bool
	c.ForEach(func(v int) { mu[v] = true })
	for v, ran := range mu {
		if !ran {
			t.Fatalf("task %d did not run after a prior panicking fan-out", v)
		}
	}
}

func TestDropPendingClearsTrafficKeepsAccounting(t *testing.T) {
	c := New(4)
	ringExchange(c)
	rounds, words := c.Rounds(), c.Words()
	c.Send(0, 1, 1)
	c.Send(0, 2, 2)
	c.DropPending()
	if got := c.PendingWords(0); got != 0 {
		t.Fatalf("pending words after DropPending = %d", got)
	}
	if c.Rounds() != rounds || c.Words() != words {
		t.Fatalf("DropPending touched accounting: %d/%d vs %d/%d", c.Rounds(), c.Words(), rounds, words)
	}
	// The cleared traffic must not leak into the next exchange.
	c.Send(2, 1, 7)
	mail := c.Flush()
	if ws := mail.From(1, 0); ws != nil {
		t.Fatalf("dropped traffic leaked into the next flush: %v", ws)
	}
	if ws := mail.From(1, 2); len(ws) != 1 || ws[0] != 7 {
		t.Fatalf("post-DropPending delivery wrong: %v", ws)
	}
}
