package clique_test

import (
	"context"
	"errors"
	"testing"

	"github.com/algebraic-clique/algclique/internal/clique"
)

func TestReset(t *testing.T) {
	c := clique.New(4, clique.WithRoundLimit(100))
	c.Phase("one")
	c.Send(0, 1, 7)
	c.Send(2, 3, 8)
	c.Flush()
	if c.Rounds() == 0 {
		t.Fatal("no rounds charged before reset")
	}
	c.Send(1, 2, 9) // left pending across the reset
	c.Reset()
	st := c.Stats()
	if st.Rounds != 0 || st.Words != 0 || st.Flushes != 0 || len(st.Phases) != 0 {
		t.Fatalf("stats after Reset = %+v, want zeroes", st)
	}
	if got := c.PendingWords(1); got != 0 {
		t.Fatalf("pending words after Reset = %d, want 0", got)
	}
	// The network is fully usable after Reset.
	c.Send(0, 1, 1)
	mail := c.Flush()
	if got := mail.From(1, 0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("delivery after Reset = %v", got)
	}
	if c.Rounds() != 1 {
		t.Fatalf("rounds after Reset+Flush = %d, want 1", c.Rounds())
	}
}

func TestSetRoundLimitRearms(t *testing.T) {
	c := clique.New(2)
	c.SetRoundLimit(1)
	c.Send(0, 1, 1)
	c.Send(0, 1, 2)
	func() {
		defer func() {
			var lim *clique.RoundLimitError
			if r := recover(); r == nil {
				t.Error("no panic with 2 words over a 1-round limit")
			} else if err, ok := r.(error); !ok || !errors.As(err, &lim) {
				t.Errorf("panic = %v, want *RoundLimitError", r)
			}
		}()
		c.Flush()
	}()
	c.Reset()
	c.SetRoundLimit(0) // disarmed
	c.Send(0, 1, 1)
	c.Send(0, 1, 2)
	c.Flush()
}

func TestSetContextCancels(t *testing.T) {
	c := clique.New(2)
	ctx, cancel := context.WithCancel(context.Background())
	c.SetContext(ctx)
	c.Send(0, 1, 1)
	c.Flush() // not yet cancelled
	cancel()
	c.Send(0, 1, 2)
	defer func() {
		r := recover()
		canc, ok := r.(*clique.CanceledError)
		if !ok {
			t.Fatalf("panic = %v, want *CanceledError", r)
		}
		if !errors.Is(canc, context.Canceled) {
			t.Errorf("CanceledError does not unwrap to context.Canceled: %v", canc)
		}
	}()
	c.Flush()
}

func TestWorkerPoolReuseAndClose(t *testing.T) {
	c := clique.New(64, clique.WithWorkers(4))
	for round := 0; round < 3; round++ {
		visited := make([]int, 64)
		c.ForEach(func(v int) { visited[v]++ })
		for v, k := range visited {
			if k != 1 {
				t.Fatalf("round %d: node %d visited %d times", round, v, k)
			}
		}
	}
	c.Close()
	c.Close() // idempotent
	// ForEach after Close starts a fresh pool.
	visited := make([]int, 64)
	c.ForEach(func(v int) { visited[v]++ })
	for v, k := range visited {
		if k != 1 {
			t.Fatalf("after Close: node %d visited %d times", v, k)
		}
	}
	c.Close()
}

func TestBroadcastNetworkAccounting(t *testing.T) {
	b := clique.NewBroadcast(3)
	b.Phase("p1")
	b.Round([]clique.Word{1, 2, 3})
	st := b.Stats()
	if st.Rounds != 1 || len(st.Phases) != 1 || st.Phases[0].Rounds != 1 {
		t.Fatalf("broadcast stats = %+v", st)
	}
	b.SetRoundLimit(1)
	func() {
		defer func() {
			if _, ok := recover().(*clique.RoundLimitError); !ok {
				t.Error("broadcast round limit did not trip")
			}
		}()
		b.Round([]clique.Word{1, 2, 3})
	}()
	b.Reset()
	if st := b.Stats(); st.Rounds != 0 || len(st.Phases) != 0 {
		t.Fatalf("broadcast stats after Reset = %+v", st)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b.SetContext(ctx)
	func() {
		defer func() {
			if _, ok := recover().(*clique.CanceledError); !ok {
				t.Error("broadcast cancellation did not trip")
			}
		}()
		b.Round([]clique.Word{1, 2, 3})
	}()
}
