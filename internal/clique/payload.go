package clique

import "fmt"

// This file is the simulator's split into an accounting plane and a data
// plane.
//
// The congested-clique model only *counts* rounds and O(log n)-bit words;
// nothing requires the simulator to materialise those words when all n
// nodes share one address space. The payload path below therefore moves
// opaque typed values (slices of algebra elements, boxed pointers) by
// reference, while the cost of the wire words they *would* occupy is
// charged analytically: the sender declares the exact word count (computed
// from the codec's EncodedLen, so a bit-packed Boolean row still costs
// ⌈len/64⌉ words) and Flush folds it into the same per-link load maximum
// that real queued words produce. Rounds, words, flushes, and phase
// attribution are therefore bit-identical between the two planes — the
// encoded ("wire") path stays available for verification and for protocols
// whose payloads genuinely are word-structured.

// Transport selects how the simulator moves algorithm data.
type Transport int

const (
	// TransportDirect moves algebra-typed payloads by reference and
	// charges their wire cost analytically. It is the default: the ledger
	// is identical to the wire path, only the encode/copy/decode work is
	// skipped.
	TransportDirect Transport = iota
	// TransportWire materialises every message as encoded words moved
	// through link queues — the original simulator behaviour.
	TransportWire
	// TransportVerify runs every engine product on both planes (direct on
	// this network, wire on a shadow clique) and fails if the results or
	// the charged rounds/words/flushes/phases differ.
	TransportVerify
)

// String implements fmt.Stringer.
func (t Transport) String() string {
	switch t {
	case TransportDirect:
		return "direct"
	case TransportWire:
		return "wire"
	case TransportVerify:
		return "verify"
	default:
		return fmt.Sprintf("transport(%d)", int(t))
	}
}

// WithTransport selects the network's transport at construction.
func WithTransport(t Transport) Option {
	return func(c *Network) { c.transport = t }
}

// SetTransport selects the transport for subsequent runs; like
// SetRoundLimit it survives Reset, so sessions arm it per operation.
func (c *Network) SetTransport(t Transport) { c.transport = t }

// Transport returns the network's current transport.
func (c *Network) Transport() Transport { return c.transport }

// Payload is an opaque value riding the data plane. Senders relinquish the
// payload at SendPayload; receivers may read it until the second-next
// Flush — the same double-buffered lifetime Mail gives word vectors. To
// keep the path allocation-free, box a pointer (e.g. *[]T into a stable
// slot) rather than a slice header.
type Payload = any

// ensurePayloads lazily builds the payload-plane queues, so wire-only
// networks never pay for them. Payload senders are single-threaded (the
// engines' exchange loops run between ForEach phases), so no locking
// beyond the shared touch registration is needed.
func (c *Network) ensurePayloads() {
	if c.pqueues == nil {
		c.pqueues = make([][]Payload, c.n*c.n)
		c.ploads = make([]int64, c.n*c.n)
	}
}

// SendPayload enqueues an opaque payload from src to dst for the next
// Flush, charging `words` analytic wire words on the link (the number of
// words the payload would occupy encoded — callers compute it from
// ring.BulkCodec.EncodedLen, chunk by chunk). Sending to oneself is legal
// and free, like any self-send. The payload itself adds no further cost,
// so traffic whose words were already charged elsewhere (two-phase
// schedules) rides with words = 0.
//
//cc:hotpath
func (c *Network) SendPayload(src, dst int, words int64, p Payload) {
	c.checkNode(src)
	c.checkNode(dst)
	if c.fault != nil {
		c.fault.checkSend(src, c.rounds)
	}
	if c.sparseLinks {
		sl := c.slinkFor(src, dst)
		sl.pq = append(sl.pq, p)
		if words > 0 {
			sl.pload += words
		}
		return
	}
	c.ensurePayloads()
	i := src*c.n + dst
	if len(c.pqueues[i]) == 0 && c.ploads[i] == 0 {
		c.touch(src, dst)
	}
	c.pqueues[i] = append(c.pqueues[i], p)
	if words > 0 {
		c.ploads[i] += words
	}
}

// ChargeLink adds analytic word load to a directed link for the next
// Flush, delivering nothing: it is how the direct transport reproduces a
// wire schedule's per-link loads (e.g. the two phases of Lenzen routing)
// without materialising the words. Self-links are accounted exactly like
// real self-sends: free.
//
//cc:hotpath
func (c *Network) ChargeLink(src, dst int, words int64) {
	c.checkNode(src)
	c.checkNode(dst)
	if c.fault != nil {
		c.fault.checkSend(src, c.rounds)
	}
	if words <= 0 {
		return
	}
	if c.sparseLinks {
		c.slinkFor(src, dst).pload += words
		return
	}
	c.ensurePayloads()
	i := src*c.n + dst
	if c.ploads[i] == 0 && len(c.pqueues[i]) == 0 {
		c.touch(src, dst)
	}
	c.ploads[i] += words
}

// ChargeBroadcast charges exactly what Broadcast would for per-node vector
// lengths lens: max_v lens[v] rounds and Σ_v lens[v]·(n−1) words. The data
// plane hands receivers the senders' vectors directly (shared, read-only),
// so nothing travels.
func (c *Network) ChargeBroadcast(lens []int64) {
	if len(lens) != c.n {
		panic(fmt.Sprintf("clique: ChargeBroadcast wants %d lengths, got %d", c.n, len(lens)))
	}
	var maxLen, total int64
	for _, l := range lens {
		if l > maxLen {
			maxLen = l
		}
		total += l * int64(c.n-1)
	}
	c.charge(maxLen, total)
}

// EachPayload calls f for every (src, payloads) pair delivered to dst, in
// increasing source order — the payload-plane twin of Each. In sparse-link
// mode the walk visits only the sources that actually delivered, so a
// receiver's cost is proportional to its traffic, not to n; engines
// running at sparse-link scale must use it instead of probing all n
// sources with PayloadsFrom.
//
//cc:hotpath
func (m *Mail) EachPayload(dst int, f func(src int, ps []Payload)) {
	if m.sbox != nil {
		if m.sstamp[dst] != m.id {
			return
		}
		for i := range m.sbox[dst] {
			if e := &m.sbox[dst][i]; len(e.ps) > 0 {
				f(e.src, e.ps)
			}
		}
		return
	}
	if m.pstamp == nil {
		return
	}
	base := dst * m.n
	for src := 0; src < m.n; src++ {
		if m.pstamp[base+src] == m.id && len(m.pbufs[base+src]) > 0 {
			f(src, m.pbufs[base+src])
		}
	}
}

// PayloadsFrom returns the payloads dst received from src in the last
// Flush, in FIFO order (nil if none). Valid until the second-next Flush,
// like the word vectors.
//
//cc:hotpath
func (m *Mail) PayloadsFrom(dst, src int) []Payload {
	if m.sbox != nil {
		if e := m.sparseEntry(dst, src); e != nil && len(e.ps) > 0 {
			return e.ps
		}
		return nil
	}
	if m.pstamp == nil {
		return nil
	}
	i := dst*m.n + src
	if m.pstamp[i] != m.id {
		return nil
	}
	return m.pbufs[i]
}
