package clique_test

import (
	"sync/atomic"
	"testing"

	"github.com/algebraic-clique/algclique/internal/clique"
)

// TestRunLocalCoversEveryTask checks that Network.RunLocal runs every task
// exactly once for task counts above, equal to, and below the worker count,
// and that the single-worker path degrades to a plain loop.
func TestRunLocalCoversEveryTask(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		c := clique.New(4, clique.WithWorkers(workers))
		for _, tasks := range []int{0, 1, 3, 7, 100} {
			hits := make([]int32, tasks)
			c.RunLocal(tasks, func(task int) {
				atomic.AddInt32(&hits[task], 1)
			})
			for task, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d tasks=%d: task %d ran %d times", workers, tasks, task, h)
				}
			}
		}
		c.Close()
	}
}

// TestRunLocalSharesForEachPool interleaves ForEach and RunLocal on one
// network: both must keep working after the other, and after a Close the
// pool restarts lazily.
func TestRunLocalSharesForEachPool(t *testing.T) {
	c := clique.New(3, clique.WithWorkers(2))
	var total atomic.Int64
	c.ForEach(func(v int) { total.Add(1) })
	c.RunLocal(10, func(int) { total.Add(1) })
	c.Close()
	c.RunLocal(5, func(int) { total.Add(1) })
	if got := total.Load(); got != 18 {
		t.Fatalf("ran %d tasks, want 18", got)
	}
}

// TestLocalPool checks the standalone pool: full coverage, concurrency no
// wider than configured, reuse after Close, and the k<1 default.
func TestLocalPool(t *testing.T) {
	p := clique.NewLocalPool(2)
	defer p.Close()
	var running, peak atomic.Int32
	hits := make([]int32, 50)
	p.RunLocal(len(hits), func(task int) {
		r := running.Add(1)
		for {
			old := peak.Load()
			if r <= old || peak.CompareAndSwap(old, r) {
				break
			}
		}
		atomic.AddInt32(&hits[task], 1)
		running.Add(-1)
	})
	for task, h := range hits {
		if h != 1 {
			t.Fatalf("task %d ran %d times", task, h)
		}
	}
	if peak.Load() > 2 {
		t.Fatalf("observed %d concurrent tasks on a 2-worker pool", peak.Load())
	}
	p.Close()
	ran := false
	p.RunLocal(1, func(int) { ran = true })
	if !ran {
		t.Fatal("pool unusable after Close")
	}
	if clique.NewLocalPool(0) == nil {
		t.Fatal("NewLocalPool(0) returned nil")
	}
}
