package clique

import "testing"

// TestResetTrimsOversizedBuffers drives one traffic spike far above the
// high-water mark and checks the spiked link queue is released at
// delivery and the spiked mail buffer at the next Reset, while modest
// capacity stays warm.
func TestResetTrimsOversizedBuffers(t *testing.T) {
	c := New(3)
	defer c.Close()
	big := make([]Word, linkRetainCap+1)
	c.SendVec(0, 1, big)
	c.Send(0, 2, 7) // modest traffic: capacity should survive Reset
	c.Flush()
	if got := cap(c.queues[0][1]); got != 0 {
		t.Fatalf("Flush kept %d words of spiked queue capacity, want 0", got)
	}
	c.Reset()
	if got := cap(c.queues[0][2]); got == 0 {
		t.Fatalf("Reset dropped the modest queue's capacity, want it kept warm")
	}
	for _, mail := range c.mails {
		if mail == nil {
			continue
		}
		if got := cap(mail.bufs[1*c.n+0]); got != 0 {
			t.Fatalf("Reset kept %d words of spiked delivery capacity, want 0", got)
		}
	}
	// An aborted run (queued traffic never flushed) is trimmed by Reset.
	c.SendVec(0, 1, big)
	c.Reset()
	if got := cap(c.queues[0][1]); got != 0 {
		t.Fatalf("Reset kept %d words of unflushed spiked queue capacity, want 0", got)
	}
}

// TestResetClearsPayloadState checks payload queues, loads, and delivered
// references are dropped by Reset.
func TestResetClearsPayloadState(t *testing.T) {
	c := New(2)
	defer c.Close()
	vec := []int64{1, 2, 3}
	c.SendPayload(0, 1, 3, &vec)
	mail := c.Flush()
	if got := len(mail.PayloadsFrom(1, 0)); got != 1 {
		t.Fatalf("delivered %d payloads, want 1", got)
	}
	if c.Words() != 3 || c.Rounds() != 3 {
		t.Fatalf("payload flush charged %d words / %d rounds, want 3 / 3", c.Words(), c.Rounds())
	}
	c.Reset()
	if got := c.PendingWords(0); got != 0 {
		t.Fatalf("pending words after Reset = %d, want 0", got)
	}
	for _, mail := range c.mails {
		if mail == nil {
			continue
		}
		if mail.PayloadsFrom(1, 0) != nil {
			t.Fatalf("Reset left a delivered payload readable")
		}
		for _, pb := range mail.pbufs {
			for _, p := range pb {
				if p != nil {
					t.Fatalf("Reset left a delivered payload reference behind")
				}
			}
		}
	}
}

// TestTrimReleasesEverything checks the aggressive release used by
// session Trim, and that the network stays usable afterwards.
func TestTrimReleasesEverything(t *testing.T) {
	c := New(2)
	defer c.Close()
	c.SendVec(0, 1, make([]Word, 128))
	vec := []int64{1}
	c.SendPayload(1, 0, 1, &vec)
	c.Flush()
	c.Trim()
	if c.pqueues != nil || c.ploads != nil {
		t.Fatalf("Trim kept payload-plane state")
	}
	if got := cap(c.queues[0][1]); got != 0 {
		t.Fatalf("Trim kept %d words of queue capacity", got)
	}
	// Still usable: a fresh send/flush cycle works.
	c.Send(0, 1, 42)
	mail := c.Flush()
	if got := mail.From(1, 0); len(got) != 1 || got[0] != 42 {
		t.Fatalf("post-Trim delivery = %v, want [42]", got)
	}
}

// TestSendAfterResetWithPendingTraffic guards the touch-stamp generation:
// a Reset (or Trim) that discards unflushed traffic must not leave its
// links' dedup stamps armed, or the next run's sends on those links would
// be silently dropped and uncharged.
func TestSendAfterResetWithPendingTraffic(t *testing.T) {
	c := New(2)
	defer c.Close()
	c.Send(0, 1, 11) // registered for the upcoming flush...
	c.Reset()        // ...which never happens
	c.Send(0, 1, 42)
	vec := []int64{7}
	c.SendPayload(1, 0, 1, &vec)
	mail := c.Flush()
	if got := mail.From(1, 0); len(got) != 1 || got[0] != 42 {
		t.Fatalf("post-Reset send delivered %v, want [42]", got)
	}
	if got := mail.PayloadsFrom(0, 1); len(got) != 1 {
		t.Fatalf("post-Reset payload dropped")
	}
	if c.Rounds() != 1 || c.Words() != 2 {
		t.Fatalf("post-Reset flush charged %d rounds / %d words, want 1 / 2", c.Rounds(), c.Words())
	}

	c.Send(0, 1, 5)
	c.Trim() // same hazard through the aggressive release
	c.Send(0, 1, 6)
	mail = c.Flush()
	if got := mail.From(1, 0); len(got) != 1 || got[0] != 6 {
		t.Fatalf("post-Trim send delivered %v, want [6]", got)
	}
}

// TestPayloadChargingMatchesWords checks that analytic loads and real
// words on the same link add up in the flush accounting, and that
// ChargeLink on a self-link stays free.
func TestPayloadChargingMatchesWords(t *testing.T) {
	c := New(3)
	defer c.Close()
	c.Send(0, 1, 1)
	c.Send(0, 1, 2)
	c.ChargeLink(0, 1, 5) // mixed-plane link: 2 real + 5 analytic
	c.ChargeLink(2, 2, 99)
	c.Flush()
	if c.Rounds() != 7 {
		t.Fatalf("rounds = %d, want 7 (max link load 2+5; self-link free)", c.Rounds())
	}
	if c.Words() != 7 {
		t.Fatalf("words = %d, want 7", c.Words())
	}
}

// TestPayloadFIFOAndLifetime checks payload delivery order and the
// two-flush Mail lifetime.
func TestPayloadFIFOAndLifetime(t *testing.T) {
	c := New(2)
	defer c.Close()
	a, b := []int64{1}, []int64{2}
	c.SendPayload(0, 1, 1, &a)
	c.SendPayload(0, 1, 1, &b)
	mail := c.Flush()
	got := mail.PayloadsFrom(1, 0)
	if len(got) != 2 || (*(got[0].(*[]int64)))[0] != 1 || (*(got[1].(*[]int64)))[0] != 2 {
		t.Fatalf("payload FIFO broken: %v", got)
	}
	// The next flush must not disturb this mail (double buffering)...
	c.Flush()
	if again := mail.PayloadsFrom(1, 0); len(again) != 2 {
		t.Fatalf("payloads invalidated one flush early")
	}
	// ...but the second-next reuses its buffers.
	c.SendPayload(0, 1, 1, &a)
	c.Flush()
	if again := mail.PayloadsFrom(1, 0); len(again) != 1 {
		t.Fatalf("second-next flush did not recycle the payload buffer")
	}
}
