// Package clique simulates the congested clique model: n nodes on a
// complete graph, computing in synchronous rounds, where in each round every
// ordered pair of nodes may exchange one O(log n)-bit message (one 64-bit
// word here).
//
// The simulator is phase-structured and exact: algorithms enqueue words on
// directed links and call Flush, which charges exactly
// max_{(u,v)} |queue(u,v)| rounds — the number of synchronous rounds needed
// to drain all link queues at one word per link per round. Broadcast (the
// same word from one node to all others) is a single round per word, as in
// the model. Rounds, words, and per-phase breakdowns are recorded.
//
// The simulator is split into an accounting plane and a data plane (see
// payload.go): besides materialised words, links carry opaque typed
// payloads whose wire cost is declared analytically, and both planes share
// the same per-link load maximum at Flush, so the ledger is identical
// whichever plane a protocol uses.
//
// Node-local computation is free in the model; the ForEach helper runs
// per-node computation concurrently across a worker pool, but each node may
// touch only its own state and send only from its own identifier, keeping
// runs deterministic.
//
// Networks are reusable: Reset clears all queued traffic and zeroes the
// accounting so the same network (and its worker pool) can run another
// algorithm, which is how algclique sessions amortise construction across
// operations. SetRoundLimit and SetContext rearm the per-run abort
// conditions between runs.
package clique

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Word is one message payload: O(log n) bits in the model.
type Word = uint64

// RoundLimitError is raised (via panic) when a configured round budget is
// exceeded; it signals runaway algorithms in tests and failure-injection
// scenarios.
type RoundLimitError struct {
	Limit  int64
	Rounds int64
}

// Error implements error.
func (e *RoundLimitError) Error() string {
	return fmt.Sprintf("clique: round limit %d exceeded (at %d rounds)", e.Limit, e.Rounds)
}

// CanceledError is raised (via panic) when the context attached to the
// network via SetContext is cancelled mid-simulation. It unwraps to the
// context's error, so errors.Is(err, context.Canceled) (or
// context.DeadlineExceeded) works on the error surfaced by entry points.
type CanceledError struct {
	Cause  error
	Rounds int64
}

// Error implements error.
func (e *CanceledError) Error() string {
	return fmt.Sprintf("clique: simulation cancelled after %d rounds: %v", e.Rounds, e.Cause)
}

// Unwrap exposes the underlying context error.
func (e *CanceledError) Unwrap() error { return e.Cause }

// PhaseStat records the cost of one named algorithm phase.
type PhaseStat struct {
	Name   string
	Rounds int64
	Words  int64
}

// Stats is a snapshot of a network's accounting.
type Stats struct {
	N       int
	Rounds  int64
	Words   int64
	Flushes int64
	Phases  []PhaseStat
	// Faults ledgers every fault the armed injector fired (zero when no
	// injector is armed — see SetFaultInjector).
	Faults FaultStats
}

// Option configures a Network.
type Option func(*Network)

// WithWorkers sets the worker-pool size for ForEach. Values < 1 select
// GOMAXPROCS.
func WithWorkers(k int) Option {
	return func(c *Network) {
		if k >= 1 {
			c.workers = k
		}
	}
}

// WithRoundLimit makes the network panic with *RoundLimitError once more
// than limit rounds have been charged. Zero or negative means no limit.
func WithRoundLimit(limit int64) Option {
	return func(c *Network) { c.roundLimit = limit }
}

// Network is a simulated congested clique. It is not safe for concurrent
// use except as documented on ForEach and Send.
type Network struct {
	n           int
	queues      [][][]Word       // queues[src][dst], dst == src used for free local delivery
	pqueues     [][]Payload      // data-plane payload queues, flat [src*n+dst] (lazy)
	ploads      []int64          // analytic word load per link, flat [src*n+dst] (lazy)
	touched     [][]int          // per-source destinations with traffic or load since last Flush
	tstamp      []uint64         // per-link touch generation backing the touched lists
	sparseLinks bool             // sparse-link mode: per-link state on demand, no Θ(n²) arrays
	slinks      []map[int]*slink // sparse mode: per-source link state, materialised on first send
	stouched    [][]int          // sparse mode: per-source touched destinations (replaces touched)
	flushSeq    uint64           // monotone flush generation; never reset (stamps depend on it)
	spiked      bool             // a delivery exceeded linkRetainCap since the last sweep
	mails       [2]*Mail         // double-buffered delivery state, alternated by Flush
	rounds      int64
	words       int64
	flushes     int64
	phases      []PhaseStat
	workers     int
	roundLimit  int64
	fault       *FaultInjector
	transport   Transport
	sparseTh    float64 // planner sparse-threshold override (armed per op)
	sparseThOn  bool
	ctx         context.Context
	pool        *workerPool
}

// New returns a network of n ≥ 1 nodes.
func New(n int, opts ...Option) *Network {
	if n < 1 {
		panic(fmt.Sprintf("clique: network size %d < 1", n))
	}
	c := &Network{
		n:       n,
		workers: runtime.GOMAXPROCS(0),
	}
	for _, o := range opts {
		o(c)
	}
	if n >= sparseLinkFloor {
		c.sparseLinks = true
	}
	if c.sparseLinks {
		// Sparse-link mode: all per-link state materialises on demand, so
		// construction (and every later walk) is proportional to the nodes
		// and the traffic, never to the n² links. See sparselinks.go.
		c.slinks = make([]map[int]*slink, n)
		c.stouched = make([][]int, n)
	} else {
		c.queues = newQueues(n)
		c.touched = make([][]int, n)
		c.tstamp = make([]uint64, n*n)
	}
	return c
}

func newQueues(n int) [][][]Word {
	q := make([][][]Word, n)
	for i := range q {
		q[i] = make([][]Word, n)
	}
	return q
}

// N returns the number of nodes.
func (c *Network) N() int { return c.n }

// Rounds returns the total rounds charged so far.
func (c *Network) Rounds() int64 { return c.rounds }

// Words returns the total words transmitted on links so far (local
// self-delivery is free and uncounted).
func (c *Network) Words() int64 { return c.words }

// Stats returns a copy of the accounting snapshot.
func (c *Network) Stats() Stats {
	ph := make([]PhaseStat, len(c.phases))
	copy(ph, c.phases)
	st := Stats{N: c.n, Rounds: c.rounds, Words: c.words, Flushes: c.flushes, Phases: ph}
	if c.fault != nil {
		st.Faults = c.fault.Stats()
	}
	return st
}

// SetRoundLimit rearms (or, with limit ≤ 0, disarms) the round budget for
// the next run. Unlike the WithRoundLimit construction option it can be
// changed between runs on a reused network.
func (c *Network) SetRoundLimit(limit int64) { c.roundLimit = limit }

// SetFaultInjector arms (or, with nil, disarms) a fault injector for
// subsequent runs: like the round limit it survives Reset, so sessions arm
// it per operation. A disarmed network pays one nil check per Send/Flush
// and behaves — and accounts — exactly as before the fault plane existed.
func (c *Network) SetFaultInjector(fi *FaultInjector) { c.fault = fi }

// FaultInjector returns the armed injector, if any.
func (c *Network) FaultInjector() *FaultInjector { return c.fault }

// SetSparseThreshold arms a density-aware planning threshold for
// algorithms running on this network: like SetRoundLimit it survives
// Reset, and sessions arm it per operation so every matrix product an
// algorithm performs — however deep in the call tree it resolves its plan
// — honours the session's WithSparseThreshold setting. The planner (see
// ccmm's census) reads it through SparseThreshold; a network never armed
// reports ok = false and plans fall back to their own threshold.
func (c *Network) SetSparseThreshold(t float64) { c.sparseTh, c.sparseThOn = t, true }

// SparseThreshold returns the armed planning threshold, if any.
func (c *Network) SparseThreshold() (t float64, ok bool) { return c.sparseTh, c.sparseThOn }

// SetContext attaches a cancellation context to the network: once ctx is
// cancelled, the next charged cost panics with *CanceledError (recovered by
// the algclique entry points into an error). A nil ctx detaches. The check
// happens at synchronous-round boundaries (Flush/Broadcast), so cancellation
// latency is one communication phase.
func (c *Network) SetContext(ctx context.Context) { c.ctx = ctx }

// linkRetainCap is the high-water mark for per-link retained capacity:
// Reset releases any queue or delivery buffer whose capacity exceeds it
// (in words), so one traffic spike does not pin its peak footprint for the
// life of a long-running session. Steady-state traffic on this library's
// algorithms stays far below it, so warm capacity survives Reset.
const linkRetainCap = 1 << 14

// payloadRetainCap is the analogous bound for payload-reference buffers
// (entries, not words — each entry is one boxed reference).
const payloadRetainCap = 1 << 10

// trimWords truncates a word buffer, releasing it entirely above the
// high-water capacity.
func trimWords(b []Word) []Word {
	if cap(b) > linkRetainCap {
		return nil
	}
	return b[:0]
}

// trimPayloads truncates a payload buffer (dropping the references it
// held), releasing it entirely above the high-water capacity.
func trimPayloads(b []Payload) []Payload {
	if cap(b) > payloadRetainCap {
		return nil
	}
	for i := range b {
		b[i] = nil
	}
	return b[:0]
}

// Reset drops all queued traffic and zeroes rounds, words, flushes, and
// phases so the network can run a fresh algorithm. The clique size, worker
// pool, configured limits, transport, and the recycled queue/mailbox
// capacity are kept (sessions reuse networks precisely to keep that
// capacity warm) — except buffers above the linkRetainCap high-water mark,
// which are released (here and at delivery time) so spikes do not pin peak
// memory; the per-run context is detached. Mail values from before the
// Reset are invalidated, and the payload references they held are
// dropped. The walk is proportional to the traffic actually pending or
// spiked, not to the n² links.
func (c *Network) Reset() {
	c.DropPending()
	if c.spiked {
		// A past delivery exceeded the high-water mark; sweep the mail
		// buffers once to release it.
		for _, mail := range c.mails {
			if mail == nil {
				continue
			}
			for i := range mail.bufs {
				if cap(mail.bufs[i]) > linkRetainCap {
					mail.bufs[i] = nil
				}
			}
		}
		c.spiked = false
	}
	c.rounds, c.words, c.flushes = 0, 0, 0
	c.phases = c.phases[:0]
	c.ctx = nil
}

// DropPending discards all queued-but-undelivered traffic and invalidates
// outstanding Mail without touching the accounting. It is the recovery
// primitive for re-running an operation whose previous attempt aborted
// mid-schedule (an injected fault, a round limit): the stale half-exchange
// must not leak into the retry's first Flush, but the aborted attempt's
// cost legitimately stays on the ledger. Reset builds on it.
func (c *Network) DropPending() {
	if c.sparseLinks {
		c.dropPendingSparse()
		c.flushSeq++ // see the dense branch's comment below
		for _, mail := range c.mails {
			if mail == nil {
				continue
			}
			mail.releaseSparse()
			mail.id = 0 // no stamp matches: everything reads as undelivered
		}
		return
	}
	n := c.n
	for src, list := range c.touched {
		qrow := c.queues[src]
		for _, dst := range list {
			qrow[dst] = trimWords(qrow[dst])
			if c.pqueues != nil {
				i := src*n + dst
				c.pqueues[i] = trimPayloads(c.pqueues[i])
				c.ploads[i] = 0
			}
		}
		c.touched[src] = list[:0]
	}
	// Advance the flush generation: the cleared lists' touch stamps were
	// armed for seq+1, and without this bump a post-Reset send on such a
	// link would be deduplicated as already registered and silently
	// dropped by the next Flush.
	c.flushSeq++
	for _, mail := range c.mails {
		if mail == nil {
			continue
		}
		mail.releasePayloads()
		mail.id = 0 // no stamp matches: everything reads as undelivered
	}
}

// Trim releases all recycled queue, mailbox, and payload capacity
// regardless of size (the structures rebuild lazily on next use). It is
// the aggressive form of Reset's high-water trimming, for callers parking
// a network they may not use again soon; accounting is untouched.
func (c *Network) Trim() {
	if c.sparseLinks {
		c.slinks = make([]map[int]*slink, c.n)
		c.stouched = make([][]int, c.n)
		c.mails = [2]*Mail{}
		c.flushSeq++ // invalidate the discarded links' touch stamps (see Reset)
		return
	}
	c.queues = newQueues(c.n)
	c.mails = [2]*Mail{}
	c.pqueues = nil
	c.ploads = nil
	c.touched = make([][]int, c.n)
	c.flushSeq++ // invalidate the discarded lists' touch stamps (see Reset)
}

// Phase begins a named accounting phase; subsequent costs are attributed to
// it until the next call.
func (c *Network) Phase(name string) {
	c.phases = append(c.phases, PhaseStat{Name: name})
}

func (c *Network) charge(rounds, words int64) {
	if c.ctx != nil {
		if err := c.ctx.Err(); err != nil {
			panic(&CanceledError{Cause: err, Rounds: c.rounds})
		}
	}
	c.rounds += rounds
	c.words += words
	if len(c.phases) > 0 {
		p := &c.phases[len(c.phases)-1]
		p.Rounds += rounds
		p.Words += words
	}
	if c.fault != nil {
		c.fault.noteRounds(c.rounds)
	}
	if c.roundLimit > 0 && c.rounds > c.roundLimit {
		panic(&RoundLimitError{Limit: c.roundLimit, Rounds: c.rounds})
	}
}

func (c *Network) checkNode(v int) {
	if v < 0 || v >= c.n {
		panic(fmt.Sprintf("clique: node %d out of range [0, %d)", v, c.n))
	}
}

// touch registers the link src→dst as carrying traffic or load for the
// upcoming Flush; the stamp deduplicates so each link appears in its
// source's touched list once per flush cycle. The lists and stamps are
// partitioned by source, so concurrent ForEach senders — each restricted
// to its own source, per the Send contract — never share a slot and no
// locking is needed.
//
//cc:hotpath
func (c *Network) touch(src, dst int) {
	i := src*c.n + dst
	if c.tstamp[i] != c.flushSeq+1 {
		c.tstamp[i] = c.flushSeq + 1
		c.touched[src] = append(c.touched[src], dst)
	}
}

// Send enqueues one word from src to dst for the next Flush. Sending to
// oneself is legal and free. Send may be called concurrently from ForEach
// workers provided each worker sends only from its own node.
//
// Note: concurrent ForEach senders touch disjoint per-source state — the
// queue row, and distinct touched-list slots via the per-source stamp row —
// so the registration below is safe under the documented discipline.
//
//cc:hotpath
func (c *Network) Send(src, dst int, w Word) {
	c.checkNode(src)
	c.checkNode(dst)
	if c.fault != nil {
		c.fault.checkSend(src, c.rounds)
	}
	if c.sparseLinks {
		sl := c.slinkFor(src, dst)
		sl.q = append(sl.q, w)
		return
	}
	if len(c.queues[src][dst]) == 0 {
		c.touch(src, dst)
	}
	c.queues[src][dst] = append(c.queues[src][dst], w)
}

// SendVec enqueues a vector of words from src to dst (copied).
//
//cc:hotpath
func (c *Network) SendVec(src, dst int, ws []Word) {
	c.checkNode(src)
	c.checkNode(dst)
	if c.fault != nil {
		c.fault.checkSend(src, c.rounds)
	}
	if len(ws) == 0 {
		return
	}
	if c.sparseLinks {
		sl := c.slinkFor(src, dst)
		sl.q = append(sl.q, ws...)
		return
	}
	if len(c.queues[src][dst]) == 0 {
		c.touch(src, dst)
	}
	c.queues[src][dst] = append(c.queues[src][dst], ws...)
}

// SendOwnedVec enqueues a vector of words from src to dst, taking
// ownership of ws: when the link queue is empty the vector is adopted as
// the queue's backing array without copying (delivery then copies once at
// Flush, like all queued traffic), and the network retains and reuses the
// array afterwards. The caller must not read or write ws after the call.
// It is the zero-copy enqueue path for buffers the caller builds per send
// and then relinquishes (per-link concatenations).
//
//cc:hotpath
func (c *Network) SendOwnedVec(src, dst int, ws []Word) {
	c.checkNode(src)
	c.checkNode(dst)
	if c.fault != nil {
		c.fault.checkSend(src, c.rounds)
	}
	if len(ws) == 0 {
		return
	}
	if c.sparseLinks {
		sl := c.slinkFor(src, dst)
		if len(sl.q) > 0 {
			sl.q = append(sl.q, ws...)
		} else {
			sl.q = ws
		}
		return
	}
	if q := c.queues[src][dst]; len(q) > 0 {
		c.queues[src][dst] = append(q, ws...)
		return
	}
	c.touch(src, dst)
	c.queues[src][dst] = ws
}

// Mail is the result of a Flush: all words and payloads delivered in this
// exchange, indexed by destination and source, in FIFO order per link.
//
// Mail is double-buffered by the network: a Mail and its vectors are valid
// until the second-next Flush on the same network (and until Reset), which
// reuses the same per-link delivery buffers. Consume a flush's delivery
// before the one after next — every phase-structured algorithm does so
// naturally — or copy the words out. Deliveries are stamp-gated rather
// than cleared, so an idle link reads as empty without any per-flush
// sweep over the n² links.
type Mail struct {
	n      int
	id     uint64      // generation of the Flush that filled this mail
	bufs   [][]Word    // flat [dst*n+src] persistent delivery buffers
	wstamp []uint64    // generation each word entry was written
	pbufs  [][]Payload // flat [dst*n+src] persistent payload buffers (lazy)
	pstamp []uint64    // generation each payload entry was written (lazy)
	plinks []int       // entries of pbufs holding references from the last fill

	// Sparse-link mode (see sparselinks.go): per-destination entry lists in
	// ascending source order, stamp-gated per destination. A Mail has
	// either the flat arrays above or the lists below, never both.
	sbox   [][]mailEntry
	sstamp []uint64
	sdirty []int // destinations the last fill touched
}

func newMail(n int) *Mail {
	return &Mail{n: n, bufs: make([][]Word, n*n), wstamp: make([]uint64, n*n)}
}

// releasePayloads drops the payload references the mail holds — called
// when its two-flush lifetime ends (refill or Reset), so delivered data
// is pinned no longer than the contract promises.
func (m *Mail) releasePayloads() {
	if m.sbox != nil {
		m.releaseSparse()
		return
	}
	for _, ri := range m.plinks {
		m.pbufs[ri] = trimPayloads(m.pbufs[ri])
	}
	m.plinks = m.plinks[:0]
}

// From returns the words dst received from src (nil if none).
//
//cc:hotpath
func (m *Mail) From(dst, src int) []Word {
	if m.sbox != nil {
		if e := m.sparseEntry(dst, src); e != nil && len(e.ws) > 0 {
			return e.ws
		}
		return nil
	}
	i := dst*m.n + src
	if m.wstamp[i] != m.id {
		return nil
	}
	return m.bufs[i]
}

// Each calls f for every non-empty (src, words) pair delivered to dst, in
// increasing source order.
//
//cc:hotpath
func (m *Mail) Each(dst int, f func(src int, words []Word)) {
	if m.sbox != nil {
		if m.sstamp[dst] != m.id {
			return
		}
		for i := range m.sbox[dst] {
			if e := &m.sbox[dst][i]; len(e.ws) > 0 {
				f(e.src, e.ws)
			}
		}
		return
	}
	base := dst * m.n
	for src := 0; src < m.n; src++ {
		if m.wstamp[base+src] == m.id && len(m.bufs[base+src]) > 0 {
			f(src, m.bufs[base+src])
		}
	}
}

// Flush delivers every queued word and payload. The charged cost is the
// maximum link load — per link, the queued words plus the analytic word
// load declared by SendPayload/ChargeLink — delivered one word per link
// per round in parallel across links, exactly as the synchronous model
// allows. The two planes share one ledger, so a protocol charges the same
// rounds and words whichever plane carries it.
//
// Delivery is allocation-free in steady state and proportional to the
// links actually used: the network tracks touched links, so a flush walks
// its own traffic, not all n² pairs. The network owns two Mail buffers
// used alternately, each with persistent per-link delivery arrays; words
// move from the (equally persistent) link queues by copy, payloads move as
// references. See Mail for the resulting lifetime contract.
//
//cc:hotpath
func (c *Network) Flush() *Mail {
	return c.FlushAnalytic(0, 0)
}

// FlushAnalytic is Flush with an additional analytically-described load:
// the flush behaves as if links also carried traffic with maximum per-link
// load maxLoad and totalWords words in total (the caller computed both
// from a schedule's per-link loads without registering them link by link).
// The charged cost is max(maxLoad, observed per-link maximum) rounds and
// the sum of both totals — exactly what registering the same loads through
// ChargeLink and calling Flush would charge, at O(1) instead of O(links).
//
//cc:hotpath
func (c *Network) FlushAnalytic(maxLoad, totalWords int64) *Mail {
	if c.sparseLinks {
		return c.flushSparse(maxLoad, totalWords)
	}
	n := c.n
	if c.fault != nil {
		c.fault.checkFlush(c.flushes + 1)
	}
	mail := c.mails[c.flushSeq&1]
	if mail == nil {
		mail = newMail(n)
		c.mails[c.flushSeq&1] = mail
	}
	if c.pqueues != nil && mail.pbufs == nil {
		mail.pbufs = make([][]Payload, n*n) //cc:hotalloc-ok(lazy one-time payload-plane init)
		mail.pstamp = make([]uint64, n*n)   //cc:hotalloc-ok(lazy one-time payload-plane init)
	}
	// This mail's previous deliveries reach the end of their two-flush
	// lifetime here; drop the payload references they pinned.
	mail.releasePayloads()
	seq := c.flushSeq + 1
	mail.id = seq
	total := totalWords
	// Evaluated once per flush: an armed injector whose plan cannot touch
	// deliveries right now (inert probabilities, exhausted MaxFaults)
	// costs nothing on the per-link walk below.
	faultLinks := c.fault != nil && c.fault.linkActive()
	for src := 0; src < n; src++ {
		list := c.touched[src]
		if len(list) == 0 {
			continue
		}
		qrow := c.queues[src]
		base := src * n
		for _, dst := range list {
			i := base + dst
			ri := dst*n + src
			var load int64
			if q := qrow[dst]; len(q) > 0 {
				buf := mail.bufs[ri]
				if cap(buf) < len(q) {
					buf = make([]Word, len(q)) //cc:hotalloc-ok(capacity growth; steady state reuses the buffer)
				} else {
					buf = buf[:len(q)]
				}
				copy(buf, q)
				mail.bufs[ri] = buf
				mail.wstamp[ri] = seq
				if len(q) > linkRetainCap {
					// The spiked queue is released now; the spiked mail
					// buffer is swept at the next Reset.
					qrow[dst] = nil
					c.spiked = true
				} else {
					qrow[dst] = q[:0] // the queue keeps its own array
				}
				load += int64(len(q))
			}
			if c.ploads != nil {
				load += c.ploads[i]
				c.ploads[i] = 0
			}
			if c.pqueues != nil {
				if pq := c.pqueues[i]; len(pq) > 0 {
					pbuf := append(mail.pbufs[ri][:0], pq...)
					mail.pbufs[ri] = pbuf
					mail.pstamp[ri] = seq
					mail.plinks = append(mail.plinks, ri)
					for k := range pq {
						pq[k] = nil // release the queued references
					}
					if cap(pq) > payloadRetainCap {
						c.pqueues[i] = nil
					} else {
						c.pqueues[i] = pq[:0]
					}
				}
			}
			if src != dst && load > 0 {
				if load > maxLoad {
					maxLoad = load
				}
				total += load
			}
			// Fault application point: perturb what was just delivered on
			// this link. The charge above reflects what was *sent*, so the
			// ledger stays deterministic; only delivered data changes.
			if faultLinks && src != dst &&
				(mail.wstamp[ri] == seq || (mail.pstamp != nil && mail.pstamp[ri] == seq)) {
				c.fault.link(mail, src, dst, ri, seq)
			}
		}
		c.touched[src] = list[:0]
	}
	c.flushSeq = seq
	c.flushes++
	if c.fault != nil {
		maxLoad += c.fault.straggle(seq)
	}
	c.charge(maxLoad, total)
	return mail
}

// PendingWords reports the number of words currently queued from src —
// materialised words plus the analytic load of pending payloads
// (diagnostics and tests).
func (c *Network) PendingWords(src int) int {
	c.checkNode(src)
	total := 0
	if c.sparseLinks {
		// Anything pending was queued since the last flush, so the touched
		// list covers it (queues drain at flush); walking it — not the link
		// map — keeps the order deterministic.
		for _, dst := range c.stouched[src] {
			if dst == src {
				continue
			}
			sl := c.slinks[src][dst]
			total += len(sl.q) + int(sl.pload)
		}
		return total
	}
	for dst, q := range c.queues[src] {
		if dst != src {
			total += len(q)
			if c.ploads != nil {
				total += int(c.ploads[src*c.n+dst])
			}
		}
	}
	return total
}

// Broadcast performs one broadcast round per word: node v transmits
// vals[v] to every other node; all nodes receive all vectors. The cost is
// max_v len(vals[v]) rounds (each round every node broadcasts one word).
// The returned slice is indexed by the broadcasting node; receivers must
// treat the shared slices as read-only.
func (c *Network) Broadcast(vals [][]Word) [][]Word {
	if len(vals) != c.n {
		panic(fmt.Sprintf("clique: Broadcast wants %d vectors, got %d", c.n, len(vals)))
	}
	var maxLen, total int64
	for _, v := range vals {
		if l := int64(len(v)); l > maxLen {
			maxLen = l
		}
		total += int64(len(v)) * int64(c.n-1)
	}
	c.charge(maxLen, total)
	out := make([][]Word, c.n)
	copy(out, vals)
	return out
}

// BroadcastWord is Broadcast for a single word per node: one round.
func (c *Network) BroadcastWord(vals []Word) []Word {
	if len(vals) != c.n {
		panic(fmt.Sprintf("clique: BroadcastWord wants %d values, got %d", c.n, len(vals)))
	}
	c.charge(1, int64(c.n)*int64(c.n-1))
	out := make([]Word, c.n)
	copy(out, vals)
	return out
}

// poolTask is one unit of ForEach work handed to a persistent worker.
type poolTask struct {
	f   func(v int)
	v   int
	wg  *sync.WaitGroup
	pan *panicCell
}

// panicCell carries the first panic of a fan-out back to the goroutine
// that waits on it. Without it a panicking task — a decode tripping over
// fault-garbled words, an injected chaos panic — would kill the whole
// process from a pool goroutine instead of unwinding the caller, and no
// recovery layer above could ever see it.
type panicCell struct {
	mu  sync.Mutex
	val any
	set bool
}

func (p *panicCell) capture(v any) {
	p.mu.Lock()
	if !p.set {
		p.set, p.val = true, v
	}
	p.mu.Unlock()
}

// rethrow re-raises the captured panic, if any, on the calling goroutine.
func (p *panicCell) rethrow() {
	p.mu.Lock()
	v, set := p.val, p.set
	p.mu.Unlock()
	if set {
		panic(v)
	}
}

// workerPool is a set of persistent goroutines fed over a channel, so a
// reused network pays goroutine startup once rather than per ForEach.
type workerPool struct {
	tasks chan poolTask
	stop  sync.Once
}

// runTask executes one task, capturing a panic into the fan-out's cell so
// the waiter can re-raise it; wg.Done always runs, so a panicking task can
// never deadlock its fan-out.
func runTask(t poolTask) {
	defer func() {
		if r := recover(); r != nil {
			t.pan.capture(r)
		}
		t.wg.Done()
	}()
	t.f(t.v)
}

func newWorkerPool(workers int) *workerPool {
	p := &workerPool{tasks: make(chan poolTask, workers)}
	for w := 0; w < workers; w++ {
		go func() {
			for t := range p.tasks {
				runTask(t)
			}
		}()
	}
	return p
}

// shutdown stops the workers; safe to call more than once.
func (p *workerPool) shutdown() { p.stop.Do(func() { close(p.tasks) }) }

// ForEach runs f(v) for every node concurrently on the worker pool and
// waits for completion. f must restrict itself to node v's state and may
// send only from v. The pool is started lazily on first use and persists
// across runs until Close (a cleanup also stops it when the network is
// garbage collected, so unclosed networks do not leak goroutines forever).
func (c *Network) ForEach(f func(v int)) {
	workers := c.workers
	if workers > c.n {
		workers = c.n
	}
	if workers <= 1 {
		for v := 0; v < c.n; v++ {
			f(v)
		}
		return
	}
	if c.pool == nil {
		c.pool = newWorkerPool(workers)
		runtime.AddCleanup(c, func(p *workerPool) { p.shutdown() }, c.pool)
	}
	var wg sync.WaitGroup
	var pan panicCell
	wg.Add(c.n)
	for v := 0; v < c.n; v++ {
		c.pool.tasks <- poolTask{f: f, v: v, wg: &wg, pan: &pan}
	}
	wg.Wait()
	pan.rethrow()
}

// RunLocal runs f(0), …, f(tasks-1) concurrently on the same persistent
// worker pool ForEach uses and waits for completion. Unlike ForEach the
// task count is arbitrary — it is the fan-out primitive for *local*
// compute (parallel kernels, bulk packing), not per-node simulation work,
// so tasks carry no node identity and must not touch the network. The
// WithWorkers setting governs the concurrency exactly as for ForEach.
//
// RunLocal must not be called from inside a ForEach or RunLocal task: the
// pool's workers are already occupied and the nested wait can deadlock.
func (c *Network) RunLocal(tasks int, f func(task int)) {
	workers := c.workers
	if workers > c.n {
		workers = c.n
	}
	if workers <= 1 || tasks <= 1 {
		for t := 0; t < tasks; t++ {
			f(t)
		}
		return
	}
	if c.pool == nil {
		c.pool = newWorkerPool(workers)
		runtime.AddCleanup(c, func(p *workerPool) { p.shutdown() }, c.pool)
	}
	var wg sync.WaitGroup
	var pan panicCell
	wg.Add(tasks)
	for t := 0; t < tasks; t++ {
		c.pool.tasks <- poolTask{f: f, v: t, wg: &wg, pan: &pan}
	}
	wg.Wait()
	pan.rethrow()
}

// Close releases the persistent worker pool. The network remains usable —
// a later ForEach starts a fresh pool — but sessions call Close when done
// so idle workers do not outlive them.
func (c *Network) Close() {
	if c.pool != nil {
		c.pool.shutdown()
		c.pool = nil
	}
}

// LocalPool is a standalone worker pool with the RunLocal contract of
// Network, for contexts that have local compute to fan out but no unicast
// network — broadcast-model runs foremost. It shares the workerPool
// machinery: persistent goroutines started lazily on first use.
type LocalPool struct {
	workers int
	pool    *workerPool
}

// NewLocalPool returns a pool of k workers; k < 1 selects GOMAXPROCS.
func NewLocalPool(k int) *LocalPool {
	if k < 1 {
		k = runtime.GOMAXPROCS(0)
	}
	return &LocalPool{workers: k}
}

// RunLocal runs f(0), …, f(tasks-1) concurrently and waits for completion,
// with the same nesting rule as Network.RunLocal.
func (p *LocalPool) RunLocal(tasks int, f func(task int)) {
	if p.workers <= 1 || tasks <= 1 {
		for t := 0; t < tasks; t++ {
			f(t)
		}
		return
	}
	if p.pool == nil {
		p.pool = newWorkerPool(p.workers)
		runtime.AddCleanup(p, func(wp *workerPool) { wp.shutdown() }, p.pool)
	}
	var wg sync.WaitGroup
	var pan panicCell
	wg.Add(tasks)
	for t := 0; t < tasks; t++ {
		p.pool.tasks <- poolTask{f: f, v: t, wg: &wg, pan: &pan}
	}
	wg.Wait()
	pan.rethrow()
}

// Close releases the pool's workers; the pool remains usable (a later
// RunLocal starts fresh workers).
func (p *LocalPool) Close() {
	if p.pool != nil {
		p.pool.shutdown()
		p.pool = nil
	}
}
