// Package clique simulates the congested clique model: n nodes on a
// complete graph, computing in synchronous rounds, where in each round every
// ordered pair of nodes may exchange one O(log n)-bit message (one 64-bit
// word here).
//
// The simulator is phase-structured and exact: algorithms enqueue words on
// directed links and call Flush, which charges exactly
// max_{(u,v)} |queue(u,v)| rounds — the number of synchronous rounds needed
// to drain all link queues at one word per link per round. Broadcast (the
// same word from one node to all others) is a single round per word, as in
// the model. Rounds, words, and per-phase breakdowns are recorded.
//
// Node-local computation is free in the model; the ForEach helper runs
// per-node computation concurrently across a worker pool, but each node may
// touch only its own state and send only from its own identifier, keeping
// runs deterministic.
//
// Networks are reusable: Reset clears all queued traffic and zeroes the
// accounting so the same network (and its worker pool) can run another
// algorithm, which is how algclique sessions amortise construction across
// operations. SetRoundLimit and SetContext rearm the per-run abort
// conditions between runs.
package clique

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Word is one message payload: O(log n) bits in the model.
type Word = uint64

// RoundLimitError is raised (via panic) when a configured round budget is
// exceeded; it signals runaway algorithms in tests and failure-injection
// scenarios.
type RoundLimitError struct {
	Limit  int64
	Rounds int64
}

// Error implements error.
func (e *RoundLimitError) Error() string {
	return fmt.Sprintf("clique: round limit %d exceeded (at %d rounds)", e.Limit, e.Rounds)
}

// CanceledError is raised (via panic) when the context attached to the
// network via SetContext is cancelled mid-simulation. It unwraps to the
// context's error, so errors.Is(err, context.Canceled) (or
// context.DeadlineExceeded) works on the error surfaced by entry points.
type CanceledError struct {
	Cause  error
	Rounds int64
}

// Error implements error.
func (e *CanceledError) Error() string {
	return fmt.Sprintf("clique: simulation cancelled after %d rounds: %v", e.Rounds, e.Cause)
}

// Unwrap exposes the underlying context error.
func (e *CanceledError) Unwrap() error { return e.Cause }

// PhaseStat records the cost of one named algorithm phase.
type PhaseStat struct {
	Name   string
	Rounds int64
	Words  int64
}

// Stats is a snapshot of a network's accounting.
type Stats struct {
	N       int
	Rounds  int64
	Words   int64
	Flushes int64
	Phases  []PhaseStat
}

// Option configures a Network.
type Option func(*Network)

// WithWorkers sets the worker-pool size for ForEach. Values < 1 select
// GOMAXPROCS.
func WithWorkers(k int) Option {
	return func(c *Network) {
		if k >= 1 {
			c.workers = k
		}
	}
}

// WithRoundLimit makes the network panic with *RoundLimitError once more
// than limit rounds have been charged. Zero or negative means no limit.
func WithRoundLimit(limit int64) Option {
	return func(c *Network) { c.roundLimit = limit }
}

// Network is a simulated congested clique. It is not safe for concurrent
// use except as documented on ForEach and Send.
type Network struct {
	n          int
	queues     [][][]Word // queues[src][dst], dst == src used for free local delivery
	mails      [2]*Mail   // double-buffered delivery state, alternated by Flush
	rounds     int64
	words      int64
	flushes    int64
	phases     []PhaseStat
	workers    int
	roundLimit int64
	ctx        context.Context
	pool       *workerPool
}

// New returns a network of n ≥ 1 nodes.
func New(n int, opts ...Option) *Network {
	if n < 1 {
		panic(fmt.Sprintf("clique: network size %d < 1", n))
	}
	c := &Network{
		n:       n,
		queues:  newQueues(n),
		workers: runtime.GOMAXPROCS(0),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

func newQueues(n int) [][][]Word {
	q := make([][][]Word, n)
	for i := range q {
		q[i] = make([][]Word, n)
	}
	return q
}

// N returns the number of nodes.
func (c *Network) N() int { return c.n }

// Rounds returns the total rounds charged so far.
func (c *Network) Rounds() int64 { return c.rounds }

// Words returns the total words transmitted on links so far (local
// self-delivery is free and uncounted).
func (c *Network) Words() int64 { return c.words }

// Stats returns a copy of the accounting snapshot.
func (c *Network) Stats() Stats {
	ph := make([]PhaseStat, len(c.phases))
	copy(ph, c.phases)
	return Stats{N: c.n, Rounds: c.rounds, Words: c.words, Flushes: c.flushes, Phases: ph}
}

// SetRoundLimit rearms (or, with limit ≤ 0, disarms) the round budget for
// the next run. Unlike the WithRoundLimit construction option it can be
// changed between runs on a reused network.
func (c *Network) SetRoundLimit(limit int64) { c.roundLimit = limit }

// SetContext attaches a cancellation context to the network: once ctx is
// cancelled, the next charged cost panics with *CanceledError (recovered by
// the algclique entry points into an error). A nil ctx detaches. The check
// happens at synchronous-round boundaries (Flush/Broadcast), so cancellation
// latency is one communication phase.
func (c *Network) SetContext(ctx context.Context) { c.ctx = ctx }

// Reset drops all queued traffic and zeroes rounds, words, flushes, and
// phases so the network can run a fresh algorithm. The clique size, worker
// pool, configured limits, and the recycled queue/mailbox capacity are
// kept (sessions reuse networks precisely to keep that capacity warm); the
// per-run context is detached. Mail values from before the Reset are
// invalidated.
func (c *Network) Reset() {
	for _, row := range c.queues {
		for dst := range row {
			row[dst] = row[dst][:0]
		}
	}
	c.rounds, c.words, c.flushes = 0, 0, 0
	c.phases = c.phases[:0]
	c.ctx = nil
}

// Phase begins a named accounting phase; subsequent costs are attributed to
// it until the next call.
func (c *Network) Phase(name string) {
	c.phases = append(c.phases, PhaseStat{Name: name})
}

func (c *Network) charge(rounds, words int64) {
	if c.ctx != nil {
		if err := c.ctx.Err(); err != nil {
			panic(&CanceledError{Cause: err, Rounds: c.rounds})
		}
	}
	c.rounds += rounds
	c.words += words
	if len(c.phases) > 0 {
		p := &c.phases[len(c.phases)-1]
		p.Rounds += rounds
		p.Words += words
	}
	if c.roundLimit > 0 && c.rounds > c.roundLimit {
		panic(&RoundLimitError{Limit: c.roundLimit, Rounds: c.rounds})
	}
}

func (c *Network) checkNode(v int) {
	if v < 0 || v >= c.n {
		panic(fmt.Sprintf("clique: node %d out of range [0, %d)", v, c.n))
	}
}

// Send enqueues one word from src to dst for the next Flush. Sending to
// oneself is legal and free. Send may be called concurrently from ForEach
// workers provided each worker sends only from its own node.
func (c *Network) Send(src, dst int, w Word) {
	c.checkNode(src)
	c.checkNode(dst)
	c.queues[src][dst] = append(c.queues[src][dst], w)
}

// SendVec enqueues a vector of words from src to dst (copied).
func (c *Network) SendVec(src, dst int, ws []Word) {
	c.checkNode(src)
	c.checkNode(dst)
	c.queues[src][dst] = append(c.queues[src][dst], ws...)
}

// SendOwnedVec enqueues a vector of words from src to dst, taking
// ownership of ws: when the link queue is empty the vector is adopted as
// the queue's backing array without copying (delivery then copies once at
// Flush, like all queued traffic), and the network retains and reuses the
// array afterwards. The caller must not read or write ws after the call.
// It is the zero-copy enqueue path for buffers the caller builds per send
// and then relinquishes (per-link concatenations).
func (c *Network) SendOwnedVec(src, dst int, ws []Word) {
	c.checkNode(src)
	c.checkNode(dst)
	if q := c.queues[src][dst]; len(q) > 0 {
		c.queues[src][dst] = append(q, ws...)
		return
	}
	c.queues[src][dst] = ws
}

// Mail is the result of a Flush: all words delivered in this exchange,
// indexed by destination and source, in FIFO order per link.
//
// Mail is double-buffered by the network: a Mail and its word vectors are
// valid until the second-next Flush on the same network (and until Reset),
// which reuses the same per-link delivery buffers. Consume a flush's
// delivery before the one after next — every phase-structured algorithm
// does so naturally — or copy the words out.
type Mail struct {
	n     int
	byDst [][][]Word // delivered views: byDst[dst][src], nil when no words
	bufs  [][][]Word // persistent per-link buffers backing the views
}

// From returns the words dst received from src (nil if none).
func (m *Mail) From(dst, src int) []Word { return m.byDst[dst][src] }

// Each calls f for every non-empty (src, words) pair delivered to dst, in
// increasing source order.
func (m *Mail) Each(dst int, f func(src int, words []Word)) {
	for src, ws := range m.byDst[dst] {
		if len(ws) > 0 {
			f(src, ws)
		}
	}
}

// Flush delivers every queued word. The charged cost is the maximum link
// load: the words on each directed link are delivered one per round in
// parallel across links, exactly as the synchronous model allows.
//
// Delivery is allocation-free in steady state: the network owns two Mail
// buffers used alternately, each with persistent per-link delivery
// arrays, and the words move from the (equally persistent) link queues by
// copy. Buffer capacity therefore stays attached to the link and flush
// slot that needs it, so any periodic traffic pattern converges to zero
// allocations. See Mail for the resulting lifetime contract.
func (c *Network) Flush() *Mail {
	var maxLoad, total int64
	mail := c.mails[c.flushes&1]
	if mail == nil {
		mail = &Mail{n: c.n, byDst: make([][][]Word, c.n), bufs: make([][][]Word, c.n)}
		for dst := 0; dst < c.n; dst++ {
			mail.byDst[dst] = make([][]Word, c.n)
			mail.bufs[dst] = make([][]Word, c.n)
		}
		c.mails[c.flushes&1] = mail
	}
	for src := 0; src < c.n; src++ {
		row := c.queues[src]
		for dst, q := range row {
			if len(q) == 0 {
				mail.byDst[dst][src] = nil
				continue
			}
			buf := mail.bufs[dst][src]
			if cap(buf) < len(q) {
				buf = make([]Word, len(q))
				mail.bufs[dst][src] = buf
			} else {
				buf = buf[:len(q)]
			}
			copy(buf, q)
			mail.byDst[dst][src] = buf
			row[dst] = q[:0] // the queue keeps its own array
			if src != dst {
				if l := int64(len(q)); l > maxLoad {
					maxLoad = l
				}
				total += int64(len(q))
			}
		}
	}
	c.flushes++
	c.charge(maxLoad, total)
	return mail
}

// PendingWords reports the number of words currently queued from src
// (diagnostics and tests).
func (c *Network) PendingWords(src int) int {
	c.checkNode(src)
	total := 0
	for dst, q := range c.queues[src] {
		if dst != src {
			total += len(q)
		}
	}
	return total
}

// Broadcast performs one broadcast round per word: node v transmits
// vals[v] to every other node; all nodes receive all vectors. The cost is
// max_v len(vals[v]) rounds (each round every node broadcasts one word).
// The returned slice is indexed by the broadcasting node; receivers must
// treat the shared slices as read-only.
func (c *Network) Broadcast(vals [][]Word) [][]Word {
	if len(vals) != c.n {
		panic(fmt.Sprintf("clique: Broadcast wants %d vectors, got %d", c.n, len(vals)))
	}
	var maxLen, total int64
	for _, v := range vals {
		if l := int64(len(v)); l > maxLen {
			maxLen = l
		}
		total += int64(len(v)) * int64(c.n-1)
	}
	c.charge(maxLen, total)
	out := make([][]Word, c.n)
	copy(out, vals)
	return out
}

// BroadcastWord is Broadcast for a single word per node: one round.
func (c *Network) BroadcastWord(vals []Word) []Word {
	if len(vals) != c.n {
		panic(fmt.Sprintf("clique: BroadcastWord wants %d values, got %d", c.n, len(vals)))
	}
	c.charge(1, int64(c.n)*int64(c.n-1))
	out := make([]Word, c.n)
	copy(out, vals)
	return out
}

// poolTask is one unit of ForEach work handed to a persistent worker.
type poolTask struct {
	f  func(v int)
	v  int
	wg *sync.WaitGroup
}

// workerPool is a set of persistent goroutines fed over a channel, so a
// reused network pays goroutine startup once rather than per ForEach.
type workerPool struct {
	tasks chan poolTask
	stop  sync.Once
}

func newWorkerPool(workers int) *workerPool {
	p := &workerPool{tasks: make(chan poolTask, workers)}
	for w := 0; w < workers; w++ {
		go func() {
			for t := range p.tasks {
				t.f(t.v)
				t.wg.Done()
			}
		}()
	}
	return p
}

// shutdown stops the workers; safe to call more than once.
func (p *workerPool) shutdown() { p.stop.Do(func() { close(p.tasks) }) }

// ForEach runs f(v) for every node concurrently on the worker pool and
// waits for completion. f must restrict itself to node v's state and may
// send only from v. The pool is started lazily on first use and persists
// across runs until Close (a cleanup also stops it when the network is
// garbage collected, so unclosed networks do not leak goroutines forever).
func (c *Network) ForEach(f func(v int)) {
	workers := c.workers
	if workers > c.n {
		workers = c.n
	}
	if workers <= 1 {
		for v := 0; v < c.n; v++ {
			f(v)
		}
		return
	}
	if c.pool == nil {
		c.pool = newWorkerPool(workers)
		runtime.AddCleanup(c, func(p *workerPool) { p.shutdown() }, c.pool)
	}
	var wg sync.WaitGroup
	wg.Add(c.n)
	for v := 0; v < c.n; v++ {
		c.pool.tasks <- poolTask{f: f, v: v, wg: &wg}
	}
	wg.Wait()
}

// Close releases the persistent worker pool. The network remains usable —
// a later ForEach starts a fresh pool — but sessions call Close when done
// so idle workers do not outlive them.
func (c *Network) Close() {
	if c.pool != nil {
		c.pool.shutdown()
		c.pool = nil
	}
}
