package clique_test

import (
	"errors"
	"math/rand/v2"
	"sync/atomic"
	"testing"

	"github.com/algebraic-clique/algclique/internal/clique"
)

func TestFlushChargesMaxLinkLoad(t *testing.T) {
	c := clique.New(4)
	// Link (0,1) carries 3 words, (2,3) carries 1: cost is 3 rounds.
	c.Send(0, 1, 10)
	c.Send(0, 1, 11)
	c.Send(0, 1, 12)
	c.Send(2, 3, 99)
	mail := c.Flush()
	if got := c.Rounds(); got != 3 {
		t.Errorf("Rounds = %d, want 3", got)
	}
	if got := c.Words(); got != 4 {
		t.Errorf("Words = %d, want 4", got)
	}
	want := []clique.Word{10, 11, 12}
	got := mail.From(1, 0)
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("mail.From(1,0) = %v, want %v", got, want)
	}
	if mail.From(3, 2)[0] != 99 {
		t.Error("word on (2,3) lost")
	}
	if mail.From(1, 2) != nil {
		t.Error("phantom delivery")
	}
}

func TestFlushIsExactlyOnce(t *testing.T) {
	c := clique.New(3)
	c.Send(0, 2, 7)
	first := c.Flush()
	if len(first.From(2, 0)) != 1 {
		t.Fatal("first flush lost the word")
	}
	second := c.Flush()
	if second.From(2, 0) != nil {
		t.Error("second flush re-delivered")
	}
	if c.Rounds() != 1 {
		t.Errorf("empty flush charged rounds: %d", c.Rounds())
	}
}

func TestSelfDeliveryIsFree(t *testing.T) {
	c := clique.New(2)
	c.Send(0, 0, 42)
	mail := c.Flush()
	if c.Rounds() != 0 || c.Words() != 0 {
		t.Errorf("self delivery charged rounds=%d words=%d", c.Rounds(), c.Words())
	}
	if got := mail.From(0, 0); len(got) != 1 || got[0] != 42 {
		t.Errorf("self delivery lost word: %v", got)
	}
}

func TestSendVecCopies(t *testing.T) {
	c := clique.New(2)
	buf := []clique.Word{1, 2, 3}
	c.SendVec(0, 1, buf)
	buf[0] = 99
	mail := c.Flush()
	if got := mail.From(1, 0); got[0] != 1 {
		t.Errorf("SendVec aliased caller buffer: %v", got)
	}
}

func TestBroadcastCost(t *testing.T) {
	n := 5
	c := clique.New(n)
	vals := make([]clique.Word, n)
	for i := range vals {
		vals[i] = clique.Word(i * i)
	}
	got := c.BroadcastWord(vals)
	if c.Rounds() != 1 {
		t.Errorf("single-word broadcast cost %d rounds, want 1", c.Rounds())
	}
	for i, v := range got {
		if v != clique.Word(i*i) {
			t.Errorf("broadcast value %d corrupted", i)
		}
	}
	vecs := make([][]clique.Word, n)
	for i := range vecs {
		vecs[i] = make([]clique.Word, i) // node i broadcasts i words
	}
	c.Broadcast(vecs)
	if c.Rounds() != 1+int64(n-1) {
		t.Errorf("vector broadcast cost %d total rounds, want %d", c.Rounds(), 1+n-1)
	}
}

func TestPhaseAccounting(t *testing.T) {
	c := clique.New(3)
	c.Phase("first")
	c.Send(0, 1, 1)
	c.Send(0, 1, 2)
	c.Flush()
	c.Phase("second")
	c.BroadcastWord([]clique.Word{1, 2, 3})
	st := c.Stats()
	if len(st.Phases) != 2 {
		t.Fatalf("got %d phases", len(st.Phases))
	}
	if st.Phases[0].Name != "first" || st.Phases[0].Rounds != 2 {
		t.Errorf("phase 0 = %+v", st.Phases[0])
	}
	if st.Phases[1].Name != "second" || st.Phases[1].Rounds != 1 {
		t.Errorf("phase 1 = %+v", st.Phases[1])
	}
	if st.Rounds != 3 || st.Flushes != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMailEachOrdersBySource(t *testing.T) {
	c := clique.New(4)
	c.Send(3, 0, 30)
	c.Send(1, 0, 10)
	c.Send(2, 0, 20)
	mail := c.Flush()
	var srcs []int
	mail.Each(0, func(src int, words []clique.Word) {
		srcs = append(srcs, src)
	})
	if len(srcs) != 3 || srcs[0] != 1 || srcs[1] != 2 || srcs[2] != 3 {
		t.Errorf("Each order = %v, want [1 2 3]", srcs)
	}
}

func TestForEachVisitsAllOnce(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		c := clique.New(100, clique.WithWorkers(workers))
		var count atomic.Int64
		visited := make([]atomic.Bool, 100)
		c.ForEach(func(v int) {
			if visited[v].Swap(true) {
				t.Errorf("node %d visited twice", v)
			}
			count.Add(1)
		})
		if count.Load() != 100 {
			t.Errorf("workers=%d visited %d nodes", workers, count.Load())
		}
	}
}

func TestForEachConcurrentSends(t *testing.T) {
	// Each node sends from itself concurrently; flush must see all words.
	n := 64
	c := clique.New(n, clique.WithWorkers(8))
	c.ForEach(func(v int) {
		for dst := 0; dst < n; dst++ {
			c.Send(v, dst, clique.Word(v))
		}
	})
	mail := c.Flush()
	if c.Rounds() != 1 {
		t.Errorf("all-to-all single word cost %d rounds, want 1", c.Rounds())
	}
	for dst := 0; dst < n; dst++ {
		for src := 0; src < n; src++ {
			if got := mail.From(dst, src); len(got) != 1 || got[0] != clique.Word(src) {
				t.Fatalf("delivery (%d→%d) = %v", src, dst, got)
			}
		}
	}
}

func TestRoundLimitPanics(t *testing.T) {
	c := clique.New(2, clique.WithRoundLimit(2))
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected round-limit panic")
		}
		err, ok := r.(*clique.RoundLimitError)
		if !ok {
			t.Fatalf("panic value %T, want *RoundLimitError", r)
		}
		var target *clique.RoundLimitError
		if !errors.As(error(err), &target) || target.Limit != 2 {
			t.Errorf("unexpected error: %v", err)
		}
	}()
	for i := 0; i < 3; i++ {
		c.Send(0, 1, 1)
	}
	c.Flush()
}

func TestMisusePanics(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"bad size", func() { clique.New(0) }},
		{"send src", func() { clique.New(2).Send(-1, 0, 1) }},
		{"send dst", func() { clique.New(2).Send(0, 2, 1) }},
		{"broadcast len", func() { clique.New(2).BroadcastWord([]clique.Word{1}) }},
		{"broadcast vec len", func() { clique.New(2).Broadcast(make([][]clique.Word, 3)) }},
		{"pending range", func() { clique.New(2).PendingWords(5) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			tc.f()
		})
	}
}

func TestRandomTrafficConservation(t *testing.T) {
	// Property: every word sent is delivered exactly once, and the charged
	// rounds equal the maximum per-link count.
	rng := rand.New(rand.NewPCG(42, 7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.IntN(10)
		c := clique.New(n)
		sent := make(map[[2]int][]clique.Word)
		var wantMax int64
		for m := 0; m < 200; m++ {
			src, dst := rng.IntN(n), rng.IntN(n)
			w := clique.Word(rng.Uint64())
			c.Send(src, dst, w)
			sent[[2]int{src, dst}] = append(sent[[2]int{src, dst}], w)
		}
		for k, ws := range sent {
			if k[0] != k[1] && int64(len(ws)) > wantMax {
				wantMax = int64(len(ws))
			}
		}
		mail := c.Flush()
		if c.Rounds() != wantMax {
			t.Fatalf("rounds = %d, want %d", c.Rounds(), wantMax)
		}
		for k, ws := range sent {
			got := mail.From(k[1], k[0])
			if len(got) != len(ws) {
				t.Fatalf("link %v delivered %d of %d words", k, len(got), len(ws))
			}
			for i := range ws {
				if got[i] != ws[i] {
					t.Fatalf("link %v word %d corrupted", k, i)
				}
			}
		}
	}
}

func TestPendingWords(t *testing.T) {
	c := clique.New(3)
	c.Send(0, 1, 1)
	c.Send(0, 2, 2)
	c.Send(0, 0, 3) // self: not counted
	if got := c.PendingWords(0); got != 2 {
		t.Errorf("PendingWords = %d, want 2", got)
	}
	c.Flush()
	if got := c.PendingWords(0); got != 0 {
		t.Errorf("PendingWords after flush = %d", got)
	}
}
