package clique

import (
	"context"
	"fmt"
)

// BroadcastNetwork simulates the *broadcast* congested clique: in each
// round every node must send the same O(log n)-bit word to all other
// nodes. The paper's §4 (Corollary 24, after Holzer–Pinsker) shows matrix
// multiplication and APSP need Ω̃(n) rounds in this model — the simulator
// lets that separation be measured against the unicast clique.
//
// Like Network it records per-phase accounting, honours a round limit and a
// cancellation context, and is reusable via Reset, so broadcast-model
// algorithms go through the same stats/abort machinery as unicast ones.
type BroadcastNetwork struct {
	n          int
	rounds     int64
	words      int64
	phases     []PhaseStat
	roundLimit int64
	ctx        context.Context
}

// NewBroadcast returns a broadcast congested clique of n ≥ 1 nodes.
func NewBroadcast(n int) *BroadcastNetwork {
	if n < 1 {
		panic(fmt.Sprintf("clique: broadcast network size %d < 1", n))
	}
	return &BroadcastNetwork{n: n}
}

// N returns the number of nodes.
func (b *BroadcastNetwork) N() int { return b.n }

// Rounds returns the rounds charged so far.
func (b *BroadcastNetwork) Rounds() int64 { return b.rounds }

// Words returns the total words transmitted (n-1 receivers each).
func (b *BroadcastNetwork) Words() int64 { return b.words }

// Stats returns a copy of the accounting snapshot.
func (b *BroadcastNetwork) Stats() Stats {
	ph := make([]PhaseStat, len(b.phases))
	copy(ph, b.phases)
	return Stats{N: b.n, Rounds: b.rounds, Words: b.words, Phases: ph}
}

// Phase begins a named accounting phase; subsequent costs are attributed to
// it until the next call.
func (b *BroadcastNetwork) Phase(name string) {
	b.phases = append(b.phases, PhaseStat{Name: name})
}

// SetRoundLimit rearms (or, with limit ≤ 0, disarms) the round budget.
func (b *BroadcastNetwork) SetRoundLimit(limit int64) { b.roundLimit = limit }

// SetContext attaches a cancellation context checked at every charged cost;
// nil detaches.
func (b *BroadcastNetwork) SetContext(ctx context.Context) { b.ctx = ctx }

// SetTransport is accepted for interface symmetry with Network and
// ignored: the broadcast model's simulator carries whole words per round
// already and has no encoded data plane to bypass.
func (b *BroadcastNetwork) SetTransport(Transport) {}

// Reset zeroes the accounting for a fresh run and detaches the per-run
// context; the clique size and round limit are kept.
func (b *BroadcastNetwork) Reset() {
	b.rounds, b.words = 0, 0
	b.phases = b.phases[:0]
	b.ctx = nil
}

func (b *BroadcastNetwork) charge(rounds, words int64) {
	if b.ctx != nil {
		if err := b.ctx.Err(); err != nil {
			panic(&CanceledError{Cause: err, Rounds: b.rounds})
		}
	}
	b.rounds += rounds
	b.words += words
	if len(b.phases) > 0 {
		p := &b.phases[len(b.phases)-1]
		p.Rounds += rounds
		p.Words += words
	}
	if b.roundLimit > 0 && b.rounds > b.roundLimit {
		panic(&RoundLimitError{Limit: b.roundLimit, Rounds: b.rounds})
	}
}

// Round performs one broadcast round: node v contributes vals[v], and the
// returned slice (indexed by sender) is what every node now knows.
func (b *BroadcastNetwork) Round(vals []Word) []Word {
	if len(vals) != b.n {
		panic(fmt.Sprintf("clique: broadcast round wants %d values, got %d", b.n, len(vals)))
	}
	b.charge(1, int64(b.n)*int64(b.n-1))
	out := make([]Word, b.n)
	copy(out, vals)
	return out
}

// Publish broadcasts a word vector from every node, one word per round:
// max_v len(vecs[v]) rounds. The result is indexed by sender and shared by
// all receivers (read-only by convention).
func (b *BroadcastNetwork) Publish(vecs [][]Word) [][]Word {
	if len(vecs) != b.n {
		panic(fmt.Sprintf("clique: broadcast publish wants %d vectors, got %d", b.n, len(vecs)))
	}
	var maxLen, total int64
	for _, v := range vecs {
		if l := int64(len(v)); l > maxLen {
			maxLen = l
		}
		total += int64(len(v)) * int64(b.n-1)
	}
	b.charge(maxLen, total)
	out := make([][]Word, b.n)
	copy(out, vecs)
	return out
}
