package clique

import "fmt"

// BroadcastNetwork simulates the *broadcast* congested clique: in each
// round every node must send the same O(log n)-bit word to all other
// nodes. The paper's §4 (Corollary 24, after Holzer–Pinsker) shows matrix
// multiplication and APSP need Ω̃(n) rounds in this model — the simulator
// lets that separation be measured against the unicast clique.
type BroadcastNetwork struct {
	n      int
	rounds int64
	words  int64
}

// NewBroadcast returns a broadcast congested clique of n ≥ 1 nodes.
func NewBroadcast(n int) *BroadcastNetwork {
	if n < 1 {
		panic(fmt.Sprintf("clique: broadcast network size %d < 1", n))
	}
	return &BroadcastNetwork{n: n}
}

// N returns the number of nodes.
func (b *BroadcastNetwork) N() int { return b.n }

// Rounds returns the rounds charged so far.
func (b *BroadcastNetwork) Rounds() int64 { return b.rounds }

// Words returns the total words transmitted (n-1 receivers each).
func (b *BroadcastNetwork) Words() int64 { return b.words }

// Round performs one broadcast round: node v contributes vals[v], and the
// returned slice (indexed by sender) is what every node now knows.
func (b *BroadcastNetwork) Round(vals []Word) []Word {
	if len(vals) != b.n {
		panic(fmt.Sprintf("clique: broadcast round wants %d values, got %d", b.n, len(vals)))
	}
	b.rounds++
	b.words += int64(b.n) * int64(b.n-1)
	out := make([]Word, b.n)
	copy(out, vals)
	return out
}

// Publish broadcasts a word vector from every node, one word per round:
// max_v len(vecs[v]) rounds. The result is indexed by sender and shared by
// all receivers (read-only by convention).
func (b *BroadcastNetwork) Publish(vecs [][]Word) [][]Word {
	if len(vecs) != b.n {
		panic(fmt.Sprintf("clique: broadcast publish wants %d vectors, got %d", b.n, len(vecs)))
	}
	var maxLen int64
	for _, v := range vecs {
		if l := int64(len(v)); l > maxLen {
			maxLen = l
		}
		b.words += int64(len(v)) * int64(b.n-1)
	}
	b.rounds += maxLen
	out := make([][]Word, b.n)
	copy(out, vecs)
	return out
}
