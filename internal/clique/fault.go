package clique

import "fmt"

// This file is the simulator's fault plane: a deterministic adversary that
// perturbs link deliveries at Flush. Like the round limit, it is *armed* on
// a network per run (SetFaultInjector) and read at the synchronisation
// points the model already has — Send, Flush, charge — so a disarmed
// network pays one nil check per call and nothing else.
//
// Every decision the injector makes is a pure function of
// (plan seed, attempt, flush index, link): no global rand, no clock. The
// same plan on the same algorithm therefore injects the same faults on
// every run, which is what makes chaos campaigns replayable and lets a
// recovery layer re-run an operation under fresh draws by advancing the
// attempt counter instead of re-seeding.

// FaultKind classifies an injected fault.
type FaultKind int

const (
	// FaultCorrupt flips bits in one delivered word (wire plane) or one
	// delivered payload element (direct plane).
	FaultCorrupt FaultKind = iota
	// FaultDrop withholds one link's delivery at a Flush; the words were
	// sent (and charged), the receiver just never sees them.
	FaultDrop
	// FaultDuplicate delivers one link's traffic twice in the same Flush.
	FaultDuplicate
	// FaultCrash fail-stops a node once the network reaches the plan's
	// round: its subsequent sends panic with *FaultError and its pending
	// deliveries are withheld.
	FaultCrash
	// FaultStraggle stretches a Flush by extra rounds (a slow node holding
	// up the synchronous barrier); data is unaffected.
	FaultStraggle
	// FaultDisrupt is not injected directly: it is the kind recovery
	// layers report when injected faults broke a run in an unstructured
	// way (a decode panic on garbled words) or a completed run cannot be
	// trusted (faults fired and no certification vouched for the result).
	FaultDisrupt
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultCorrupt:
		return "corrupt"
	case FaultDrop:
		return "drop"
	case FaultDuplicate:
		return "duplicate"
	case FaultCrash:
		return "crash"
	case FaultStraggle:
		return "straggle"
	case FaultDisrupt:
		return "disrupt"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// FaultPlan is a seeded, schedule-keyed fault schedule. The zero value
// injects nothing; every probability is per link delivery per Flush. Plans
// must be explicitly seeded — determinism is the contract (cliquevet's
// detorder check enforces an explicit Seed on plan literals in the engine
// packages), and two runs of the same plan inject identical faults.
type FaultPlan struct {
	// Seed keys every draw the injector makes.
	Seed uint64
	// CorruptProb flips bits in one delivered word or payload element on
	// the link, per delivery.
	CorruptProb float64
	// DropProb withholds the link's entire delivery, per delivery.
	DropProb float64
	// DupProb delivers the link's traffic twice, per delivery.
	DupProb float64
	// StraggleProb stretches a Flush by StraggleSkew extra rounds, per
	// Flush.
	StraggleProb float64
	// StraggleSkew is the extra rounds per straggle event (default 1).
	StraggleSkew int64
	// CrashAtRound fail-stops CrashNode once the network's round count
	// reaches it (0 disables).
	CrashAtRound int64
	// CrashNode is the node CrashAtRound stops.
	CrashNode int
	// PanicAtFlush raises a plain, untyped panic at the given 1-based
	// flush index (0 disables). It simulates a buggy operation — not a
	// modelled fault — for exercising crash-safety in layers that must
	// survive a panicking run (the serve plane's poisoned sessions).
	PanicAtFlush int64
	// MaxFaults caps the number of data faults (corrupt + drop +
	// duplicate) injected per run, so low-probability storms stay bounded
	// (0 = unlimited). Crashes, straggles, and panics are not counted.
	MaxFaults int64
}

// active reports whether the plan can inject anything at all.
func (p *FaultPlan) active() bool {
	return p.CorruptProb > 0 || p.DropProb > 0 || p.DupProb > 0 ||
		p.StraggleProb > 0 || p.CrashAtRound > 0 || p.PanicAtFlush > 0
}

// FaultStats ledgers every fault an injector fired.
type FaultStats struct {
	// Corrupted, Dropped, Duplicated count perturbed link deliveries
	// (Dropped includes deliveries withheld because their source crashed).
	Corrupted, Dropped, Duplicated int64
	// Straggles counts stretched flushes; SkewRounds the total extra
	// rounds they charged.
	Straggles, SkewRounds int64
	// Crashes counts fail-stopped nodes (0 or 1 per plan).
	Crashes int64
	// Panics counts injected untyped panics (PanicAtFlush).
	Panics int64
}

// Fired is the total number of injected faults of every kind.
func (s FaultStats) Fired() int64 {
	return s.Corrupted + s.Dropped + s.Duplicated + s.Straggles + s.Crashes + s.Panics
}

// FaultError is the typed surface of an unrecovered injected fault: raised
// (via panic) when a crashed node tries to send, and returned by recovery
// layers when a faulted run cannot be retried or trusted. Entry points
// convert the panic form into an error like the other controlled aborts
// (see AsAbort).
type FaultError struct {
	// Kind is the fault that surfaced.
	Kind FaultKind
	// Node is the crashed node for FaultCrash, else -1.
	Node int
	// Round is the simulated round at which the fault surfaced.
	Round int64
	// Injected snapshots the injector's ledger at the point of failure.
	Injected FaultStats
}

// Error implements error.
func (e *FaultError) Error() string {
	if e.Kind == FaultCrash {
		return fmt.Sprintf("clique: node %d crashed at round %d (injected fault)", e.Node, e.Round)
	}
	return fmt.Sprintf("clique: injected %v fault unrecovered after %d rounds (%d faults fired)",
		e.Kind, e.Round, e.Injected.Fired())
}

// AsAbort reports whether a recovered panic value is one of the simulator's
// controlled aborts — round limit, cancellation, or injected fault — and
// returns it as an error. Engine entry points use it to convert the abort
// panic a charge raised mid-schedule into a typed error return; anything
// else (a genuine bug) should be re-panicked.
func AsAbort(r any) (error, bool) {
	switch e := r.(type) {
	case *RoundLimitError:
		return e, true
	case *CanceledError:
		return e, true
	case *FaultError:
		return e, true
	}
	return nil, false
}

// PayloadCorrupter mutates one element of a direct-plane payload in place,
// using h as the (already mixed) source of which element and which bits to
// perturb. It reports whether it recognised the payload's type; the
// injector tries its corrupters in order and counts the fault only when one
// applied. Corrupters live with the code that knows the payload types (the
// engine layer registers its slice types), keeping the simulator agnostic.
type PayloadCorrupter func(p Payload, h uint64) bool

// FaultInjector executes a FaultPlan against a network. Arm it with
// Network.SetFaultInjector; it stays armed across Reset (like the round
// limit) until disarmed with SetFaultInjector(nil). An injector is not safe
// for concurrent use beyond the network's own phase discipline: faults fire
// at Flush (single-threaded), and the crash check in Send reads state only
// written between send phases.
type FaultInjector struct {
	plan       FaultPlan
	corrupters []PayloadCorrupter
	attempt    uint64
	stats      FaultStats
	crashed    bool
	panicked   bool
}

// NewFaultInjector builds an injector for plan with the given payload
// corrupters (wire words need none).
func NewFaultInjector(plan FaultPlan, corrupters ...PayloadCorrupter) *FaultInjector {
	if plan.StraggleProb > 0 && plan.StraggleSkew <= 0 {
		plan.StraggleSkew = 1
	}
	return &FaultInjector{plan: plan, corrupters: corrupters}
}

// Plan returns the injector's plan.
func (fi *FaultInjector) Plan() FaultPlan { return fi.plan }

// Stats returns the ledger of every fault fired so far (cumulative across
// attempts).
func (fi *FaultInjector) Stats() FaultStats { return fi.stats }

// Advance moves the injector to its next attempt: all subsequent draws are
// re-keyed, so a retried operation sees independent faults from the same
// seed. The ledger is kept (it is cumulative); the crash and panic flags
// persist too — a fail-stopped node stays stopped across retries.
func (fi *FaultInjector) Advance() { fi.attempt++ }

// Attempt returns the current attempt number (0-based).
func (fi *FaultInjector) Attempt() uint64 { return fi.attempt }

// Crashed reports whether the plan's crash has fired; once it has, retrying
// on the same network cannot succeed (the node stays fail-stopped).
func (fi *FaultInjector) Crashed() bool { return fi.crashed }

// PanicInjected reports whether PanicAtFlush has fired. Recovery layers use
// it to tell a deliberately injected untyped panic (which must propagate,
// to exercise crash-safety above) from a panic that is collateral damage of
// data faults (which they convert to *FaultError).
func (fi *FaultInjector) PanicInjected() bool { return fi.panicked }

// splitmix64 is the finaliser of Vigna's SplitMix64 generator: a cheap,
// high-quality 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Draw salts, one per decision kind, so the decisions on one link in one
// flush are independent.
const (
	saltDrop = iota + 1
	saltDup
	saltCorrupt
	saltCorruptPick
	saltStraggle
)

// draw returns the mixed 64-bit hash keying one decision.
func (fi *FaultInjector) draw(flush uint64, src, dst int, salt uint64) uint64 {
	h := splitmix64(fi.plan.Seed ^ (fi.attempt * 0x9e3779b97f4a7c15))
	h = splitmix64(h ^ flush)
	return splitmix64(h ^ (uint64(src)<<20 | uint64(dst)<<2 | salt))
}

// roll returns true with probability p, deterministically in the draw key.
func (fi *FaultInjector) roll(flush uint64, src, dst int, salt uint64, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	h := fi.draw(flush, src, dst, salt)
	return float64(h>>11)*(1.0/(1<<53)) < p
}

// dataCapped reports whether the data-fault budget is exhausted.
func (fi *FaultInjector) dataCapped() bool {
	m := fi.plan.MaxFaults
	return m > 0 && fi.stats.Corrupted+fi.stats.Dropped+fi.stats.Duplicated >= m
}

// linkActive reports whether the per-link delivery sweep can have any
// effect right now: a crashed source must still have its in-flight traffic
// withheld, and data faults need both a nonzero probability and budget
// left. Flush evaluates this once per flush, so a plan that cannot touch
// deliveries (inert probabilities, or MaxFaults already spent) skips the
// O(links) sweep entirely — draws are keyed by (flush, link), not
// sequential, so skipping draws that cannot fire leaves every other draw
// unchanged.
func (fi *FaultInjector) linkActive() bool {
	if fi.crashed {
		return true
	}
	if fi.dataCapped() {
		return false
	}
	p := &fi.plan
	return p.CorruptProb > 0 || p.DropProb > 0 || p.DupProb > 0
}

// noteRounds arms the crash once the network's round count reaches the
// plan's trigger. Called from charge, after the round counter advanced.
func (fi *FaultInjector) noteRounds(rounds int64) {
	if !fi.crashed && fi.plan.CrashAtRound > 0 && rounds >= fi.plan.CrashAtRound {
		fi.crashed = true
		fi.stats.Crashes++
	}
}

// checkSend panics with *FaultError when the sending node has fail-stopped:
// a crashed node's sends error, exactly as a real RPC into a dead process
// would. rounds is the network's current round count.
func (fi *FaultInjector) checkSend(src int, rounds int64) {
	if fi.crashed && src == fi.plan.CrashNode {
		panic(&FaultError{Kind: FaultCrash, Node: src, Round: rounds, Injected: fi.stats})
	}
}

// checkFlush fires the plan's injected untyped panic (flush is the 1-based
// index of the flush about to run).
func (fi *FaultInjector) checkFlush(flush int64) {
	if fi.plan.PanicAtFlush > 0 && flush == fi.plan.PanicAtFlush && !fi.panicked {
		fi.panicked = true
		fi.stats.Panics++
		panic(fmt.Sprintf("clique: injected fault-plane panic at flush %d", flush))
	}
}

// straggle draws the per-flush straggler event, returning the extra rounds
// to stretch this flush by (0 if none).
func (fi *FaultInjector) straggle(flush uint64) int64 {
	if !fi.roll(flush, 0, 0, saltStraggle, fi.plan.StraggleProb) {
		return 0
	}
	fi.stats.Straggles++
	fi.stats.SkewRounds += fi.plan.StraggleSkew
	return fi.plan.StraggleSkew
}

// link perturbs one link's delivery sitting in the mail at slot ri
// (dst*n+src), already filled for generation seq. Faults mutate delivered
// data only — the charge for the link was computed from what was *sent*, so
// the ledger (and with it the determinism of round counts) is unchanged by
// corrupt/drop/duplicate; only straggle stretches rounds.
func (fi *FaultInjector) link(m *Mail, src, dst, ri int, seq uint64) {
	if fi.crashed && src == fi.plan.CrashNode {
		// Fail-stop: anything the node had in flight is withheld.
		if m.wstamp[ri] == seq || (m.pstamp != nil && m.pstamp[ri] == seq) {
			fi.withhold(m, ri)
			fi.stats.Dropped++
		}
		return
	}
	if fi.dataCapped() {
		return
	}
	p := &fi.plan
	if fi.roll(seq, src, dst, saltDrop, p.DropProb) {
		fi.withhold(m, ri)
		fi.stats.Dropped++
		return
	}
	if fi.roll(seq, src, dst, saltDup, p.DupProb) {
		if m.wstamp[ri] == seq {
			m.bufs[ri] = append(m.bufs[ri], m.bufs[ri]...)
		}
		if m.pstamp != nil && m.pstamp[ri] == seq {
			m.pbufs[ri] = append(m.pbufs[ri], m.pbufs[ri]...)
		}
		fi.stats.Duplicated++
		if fi.dataCapped() {
			return
		}
	}
	if fi.roll(seq, src, dst, saltCorrupt, p.CorruptProb) {
		h := fi.draw(seq, src, dst, saltCorruptPick)
		if m.wstamp[ri] == seq && len(m.bufs[ri]) > 0 {
			buf := m.bufs[ri]
			buf[h%uint64(len(buf))] ^= 1 << ((h >> 32) & 63)
			fi.stats.Corrupted++
		} else if m.pstamp != nil && m.pstamp[ri] == seq && len(m.pbufs[ri]) > 0 {
			pq := m.pbufs[ri]
			pick := pq[h%uint64(len(pq))]
			for _, co := range fi.corrupters {
				if co(pick, h) {
					fi.stats.Corrupted++
					break
				}
			}
		}
	}
}

// withhold erases a delivered link from the mail: stamp-gated reads (From,
// PayloadsFrom) see an idle link. The buffers stay allocated — only their
// generation stamp is cleared — so the next legitimate delivery reuses
// them; stamp 0 never matches (flush generations start at 1).
func (fi *FaultInjector) withhold(m *Mail, ri int) {
	m.wstamp[ri] = 0
	if m.pstamp != nil {
		m.pstamp[ri] = 0
	}
}
