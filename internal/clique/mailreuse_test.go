package clique_test

import (
	"testing"

	"github.com/algebraic-clique/algclique/internal/clique"
)

// TestFlushSteadyStateAllocFree pins the double-buffering win: once a
// network has flushed twice, further send→flush cycles on the same traffic
// pattern allocate nothing — queues and mailboxes ping-pong two arrays per
// link.
func TestFlushSteadyStateAllocFree(t *testing.T) {
	const n = 8
	c := clique.New(n)
	cycle := func() {
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				c.SendVec(src, dst, []clique.Word{1, 2, 3})
			}
		}
		mail := c.Flush()
		for dst := 0; dst < n; dst++ {
			for src := 0; src < n; src++ {
				if len(mail.From(dst, src)) != 3 {
					t.Fatal("delivery lost words")
				}
			}
		}
	}
	cycle()
	cycle()
	// The test loop itself allocates the 3-word send vectors; measure the
	// steady state via the harness's allocation counter with those factored
	// in as the only expected cost.
	vec := []clique.Word{1, 2, 3}
	allocs := testing.AllocsPerRun(20, func() {
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				c.SendVec(src, dst, vec)
			}
		}
		m := c.Flush()
		if len(m.From(0, n-1)) != 3 {
			t.Fatal("delivery lost words")
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state send+flush cycle allocates %.1f objects, want 0", allocs)
	}
}

// TestMailValidUntilSecondNextFlush pins the documented Mail lifetime: a
// flush's words survive the next flush untouched (algorithms read a phase's
// delivery while enqueueing the next), and are recycled only after that.
func TestMailValidUntilSecondNextFlush(t *testing.T) {
	c := clique.New(2)
	c.Send(0, 1, 11)
	first := c.Flush()
	c.Send(0, 1, 22)
	second := c.Flush()
	if got := first.From(1, 0); len(got) != 1 || got[0] != 11 {
		t.Fatalf("first mail corrupted by next flush: %v", got)
	}
	if got := second.From(1, 0); len(got) != 1 || got[0] != 22 {
		t.Fatalf("second mail wrong: %v", got)
	}
}

// TestSendOwnedVecAdoptsBuffer checks the zero-copy enqueue path: an owned
// vector sent on an idle link becomes the queue's backing array (no copy
// at enqueue; the network keeps reusing it afterwards), while a busy link
// falls back to appending in FIFO order.
func TestSendOwnedVecAdoptsBuffer(t *testing.T) {
	c := clique.New(2)
	owned := []clique.Word{7, 8, 9}
	c.SendOwnedVec(0, 1, owned)
	if c.PendingWords(0) != 3 {
		t.Fatal("owned vector not enqueued")
	}
	mail := c.Flush()
	got := mail.From(1, 0)
	if len(got) != 3 || got[0] != 7 || got[1] != 8 || got[2] != 9 {
		t.Errorf("owned vector delivered %v, want [7 8 9]", got)
	}
	// The adopted array is now network-owned queue capacity: the next
	// same-size send on the link must not allocate.
	allocs := testing.AllocsPerRun(5, func() {
		c.SendVec(0, 1, got)
		c.Flush()
	})
	if allocs > 0 {
		t.Errorf("post-adoption send+flush allocates %.1f objects, want 0", allocs)
	}

	c.Reset()
	c.Send(0, 1, 1)
	c.SendOwnedVec(0, 1, []clique.Word{2, 3})
	mail = c.Flush()
	got = mail.From(1, 0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("owned vector on a busy link delivered %v, want [1 2 3]", got)
	}
	if c.Rounds() != 3 {
		t.Errorf("rounds = %d, want 3", c.Rounds())
	}
}

// TestResetKeepsRecycledCapacity checks that Reset invalidates traffic and
// accounting but keeps the warmed buffers: the first cycle after a Reset is
// already allocation-free on a previously used pattern.
func TestResetKeepsRecycledCapacity(t *testing.T) {
	const n = 4
	c := clique.New(n)
	vec := []clique.Word{1, 2}
	warm := func() {
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				c.SendVec(src, dst, vec)
			}
		}
		c.Flush()
	}
	warm()
	warm()
	allocs := testing.AllocsPerRun(10, func() {
		c.Reset()
		warm()
	})
	if allocs > 0 {
		t.Errorf("post-Reset cycle allocates %.1f objects, want 0", allocs)
	}
	c.Reset()
	if c.Rounds() != 0 || c.Words() != 0 {
		t.Error("Reset did not zero accounting")
	}
	if c.PendingWords(0) != 0 {
		t.Error("Reset left queued words")
	}
}
