package clique_test

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"github.com/algebraic-clique/algclique/internal/clique"
)

// driveRandomTraffic runs a deterministic pseudo-random mixed-plane
// schedule on a network: scripted sends, payload sends, analytic loads,
// broadcasts, flushes, and a mid-run DropPending. It returns a digest of
// everything delivered, so two networks can be compared exchange by
// exchange.
func driveRandomTraffic(t *testing.T, c *clique.Network, seed uint64) (digest []uint64, stats clique.Stats) {
	t.Helper()
	n := c.N()
	rng := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	c.Phase("traffic")
	for step := 0; step < 8; step++ {
		sends := rng.IntN(4 * n)
		for k := 0; k < sends; k++ {
			src, dst := rng.IntN(n), rng.IntN(n)
			switch rng.IntN(4) {
			case 0:
				c.Send(src, dst, uint64(step)<<32|uint64(k))
			case 1:
				c.SendVec(src, dst, []clique.Word{uint64(src), uint64(dst), uint64(k)})
			case 2:
				v := []int64{int64(src) - int64(dst), int64(k)}
				c.SendPayload(src, dst, 2, &v)
			default:
				c.ChargeLink(src, dst, int64(rng.IntN(5)))
			}
		}
		if step == 5 {
			// A half-built exchange is abandoned: the retry path every
			// fault recovery takes. Nothing from it may leak below.
			c.DropPending()
			c.Send(1%n, 0, 0xabad1dea)
		}
		mail := c.FlushAnalytic(int64(rng.IntN(3)), int64(rng.IntN(7)))
		for dst := 0; dst < n; dst++ {
			mail.Each(dst, func(src int, ws []clique.Word) {
				digest = append(digest, uint64(dst)<<40|uint64(src)<<20|uint64(len(ws)))
				digest = append(digest, ws...)
			})
			for src := 0; src < n; src++ {
				for _, p := range mail.PayloadsFrom(dst, src) {
					v := *p.(*[]int64)
					digest = append(digest, uint64(dst), uint64(src), uint64(len(v)))
					for _, x := range v {
						digest = append(digest, uint64(x))
					}
				}
			}
		}
		if step == 2 {
			bv := make([]clique.Word, n)
			for v := range bv {
				bv[v] = uint64(v * v)
			}
			out := c.BroadcastWord(bv)
			digest = append(digest, out...)
		}
	}
	return digest, c.Stats()
}

// TestSparseLinksLedgerParity is the representation-equivalence test: the
// same scripted traffic on a dense-link and a forced-sparse-link network
// must deliver identical data and charge an identical ledger.
func TestSparseLinksLedgerParity(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16} {
		for seed := uint64(1); seed <= 3; seed++ {
			dense := clique.New(n)
			sparse := clique.New(n, clique.WithSparseLinks())
			if dense.SparseLinks() || !sparse.SparseLinks() {
				t.Fatal("sparse-link mode selection wrong")
			}
			dd, ds := driveRandomTraffic(t, dense, seed)
			sd, ss := driveRandomTraffic(t, sparse, seed)
			if !reflect.DeepEqual(dd, sd) {
				t.Fatalf("n=%d seed=%d: delivered data diverged (dense %d entries, sparse %d)", n, seed, len(dd), len(sd))
			}
			if !reflect.DeepEqual(ds, ss) {
				t.Fatalf("n=%d seed=%d: ledger diverged: dense %+v, sparse %+v", n, seed, ds, ss)
			}
		}
	}
}

// TestSparseLinksReuse pins Reset/reuse behaviour: a reused sparse-link
// network charges the same as a fresh one, and stale mail is invalidated.
func TestSparseLinksReuse(t *testing.T) {
	c := clique.New(6, clique.WithSparseLinks())
	run := func() (clique.Stats, []uint64) {
		d, s := driveRandomTraffic(t, c, 7)
		return s, d
	}
	s1, d1 := run()
	c.Reset()
	s2, d2 := run()
	if !reflect.DeepEqual(s1, s2) || !reflect.DeepEqual(d1, d2) {
		t.Fatal("reused sparse-link network diverged from its first run")
	}
	c.Trim()
	c.Reset()
	s3, d3 := run()
	if !reflect.DeepEqual(s1, s3) || !reflect.DeepEqual(d1, d3) {
		t.Fatal("trimmed sparse-link network diverged from its first run")
	}
}

// TestSparseLinksMailLifetime checks the double-buffered Mail contract in
// sparse mode: a delivery stays readable after the next flush and reads
// as empty (not stale) after DropPending.
func TestSparseLinksMailLifetime(t *testing.T) {
	c := clique.New(4, clique.WithSparseLinks())
	c.Send(0, 2, 42)
	m1 := c.Flush()
	c.Send(1, 2, 43)
	m2 := c.Flush()
	if got := m1.From(2, 0); len(got) != 1 || got[0] != 42 {
		t.Fatalf("first mail unreadable after second flush: %v", got)
	}
	if got := m2.From(2, 1); len(got) != 1 || got[0] != 43 {
		t.Fatalf("second mail wrong: %v", got)
	}
	if m2.From(2, 0) != nil {
		t.Fatal("second mail shows first flush's delivery")
	}
	c.DropPending()
	if m1.From(2, 0) != nil || m2.From(2, 1) != nil {
		t.Fatal("mail readable after DropPending")
	}
}

// TestSparseLinksPendingWords mirrors the dense PendingWords semantics.
func TestSparseLinksPendingWords(t *testing.T) {
	c := clique.New(5, clique.WithSparseLinks())
	c.Send(3, 0, 1)
	c.SendVec(3, 1, []clique.Word{2, 3})
	c.ChargeLink(3, 4, 7)
	c.Send(3, 3, 9) // self-delivery is free and uncounted
	if got := c.PendingWords(3); got != 10 {
		t.Fatalf("PendingWords = %d, want 10", got)
	}
	c.Flush()
	if got := c.PendingWords(3); got != 0 {
		t.Fatalf("PendingWords after flush = %d, want 0", got)
	}
}

// TestSparseLinksAutoFloor checks the automatic switchover: construction
// at the floor must not allocate Θ(n²) state (a 1M-node network's dense
// bookkeeping would be ≥ 24 GB — the construction itself is the test).
func TestSparseLinksAutoFloor(t *testing.T) {
	if clique.New(4095).SparseLinks() {
		t.Fatal("sparse links below the floor")
	}
	c := clique.New(1 << 20)
	if !c.SparseLinks() {
		t.Fatal("dense links at n = 1M")
	}
	c.Send(0, 999_999, 5)
	if got := c.Flush().From(999_999, 0); len(got) != 1 || got[0] != 5 {
		t.Fatalf("delivery at n = 1M: %v", got)
	}
	if c.Rounds() != 1 || c.Words() != 1 {
		t.Fatalf("ledger at n = 1M: %d rounds, %d words", c.Rounds(), c.Words())
	}
	c.Close()
}

// TestSparseLinksRejectLinkFaults pins the documented incompatibility:
// link-plane fault injection indexes mailboxes by flat [dst·n+src], so a
// sparse-link flush must refuse loudly rather than not inject.
func TestSparseLinksRejectLinkFaults(t *testing.T) {
	c := clique.New(4, clique.WithSparseLinks())
	fi := clique.NewFaultInjector(clique.FaultPlan{Seed: 1, CorruptProb: 1.0})
	c.SetFaultInjector(fi)
	c.Send(0, 1, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("flush with link faults on sparse links did not panic")
		}
	}()
	c.Flush()
}
