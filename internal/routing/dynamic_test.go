package routing_test

import (
	"math/rand/v2"
	"testing"

	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/routing"
)

// ExchangeDynamic's contract: every pair that carried no traffic reads as
// empty, even when a pooled receive matrix is reused across exchanges with
// different (data-dependent) patterns — the situation that leaves stale
// windows in ExchangeScratch's matrices.
func TestExchangeDynamicNoStaleEntries(t *testing.T) {
	const n = 12
	rng := rand.New(rand.NewPCG(17, 18))
	for _, strategy := range []routing.Strategy{routing.Auto, routing.Direct, routing.TwoPhase} {
		net := clique.New(n)
		sc := routing.NewScratch()
		// First exchange: dense-ish traffic fills the pooled matrices.
		first := randomMsgs(rng, n, 6)
		in := routing.ExchangeDynamic(net, strategy, sc, first)
		assertDelivered(t, first, in)

		// Followups on the same scratch with ever-sparser patterns: pairs
		// idle now but busy before must read as empty. Two rounds, so both
		// double-buffered matrices get revisited.
		for trial := 0; trial < 3; trial++ {
			msgs := emptyMsgs(n)
			src, dst := rng.IntN(n), rng.IntN(n)
			msgs[src][dst] = []clique.Word{clique.Word(trial + 1)}
			in = routing.ExchangeDynamic(net, strategy, sc, msgs)
			for d := 0; d < n; d++ {
				for s := 0; s < n; s++ {
					want := 0
					if s == src && d == dst {
						want = 1
					}
					if len(in[d][s]) != want {
						t.Fatalf("strategy %v trial %d: in[%d][%d] has %d words, want %d (stale pooled entry?)",
							strategy, trial, d, s, len(in[d][s]), want)
					}
				}
			}
			if in[dst][src][0] != clique.Word(trial+1) {
				t.Fatalf("strategy %v trial %d: delivered %d, want %d", strategy, trial, in[dst][src][0], trial+1)
			}
		}
		net.Close()
	}
}

// ExchangeDynamic must clean up after ExchangeScratch on the same scratch:
// the oblivious API legitimately leaves stale windows in the pooled
// matrices, and a dynamic caller inheriting that scratch scans every
// source — any pair the dynamic exchange did not address has to read
// empty regardless of what the scratch-path traffic left behind.
func TestExchangeDynamicAfterScratchExchange(t *testing.T) {
	const n = 11
	rng := rand.New(rand.NewPCG(23, 24))
	for _, strategy := range []routing.Strategy{routing.Auto, routing.Direct, routing.TwoPhase} {
		net := clique.New(n)
		sc := routing.NewScratch()
		// Two oblivious exchanges fill both double-buffered pooled
		// matrices with full-length windows.
		for i := 0; i < 2; i++ {
			routing.ExchangeScratch(net, strategy, sc, randomMsgs(rng, n, 5))
		}
		// The dynamic exchange addresses a single pair; everything else
		// must read as empty on the receive side.
		msgs := emptyMsgs(n)
		src, dst := rng.IntN(n), rng.IntN(n)
		msgs[src][dst] = []clique.Word{42}
		in := routing.ExchangeDynamic(net, strategy, sc, msgs)
		for d := 0; d < n; d++ {
			for s := 0; s < n; s++ {
				if s == src && d == dst {
					if len(in[d][s]) != 1 || in[d][s][0] != 42 {
						t.Fatalf("strategy %v: addressed pair delivered %v", strategy, in[d][s])
					}
					continue
				}
				if len(in[d][s]) != 0 {
					t.Fatalf("strategy %v: idle pair (%d→%d) reads %d words inherited from ExchangeScratch",
						strategy, s, d, len(in[d][s]))
				}
			}
		}
		net.Close()
	}
}

// Alternating schedules on one scratch: the direct schedule's mailbox
// reassignment and the two-phase schedule's truncation pass clean up
// different state, so flipping between them must not let one schedule's
// leftovers surface as the other's idle reads.
func TestExchangeDynamicStrategyFlip(t *testing.T) {
	const n = 10
	rng := rand.New(rand.NewPCG(29, 30))
	net := clique.New(n)
	defer net.Close()
	sc := routing.NewScratch()
	order := []routing.Strategy{
		routing.TwoPhase, routing.Direct, routing.TwoPhase,
		routing.Direct, routing.TwoPhase, routing.Direct,
	}
	for trial, strategy := range order {
		var msgs [][][]clique.Word
		if trial%2 == 0 {
			msgs = randomMsgs(rng, n, 4)
		} else {
			// Sparse rounds: one busy pair, all others idle — the reads
			// most likely to surface the previous schedule's state.
			msgs = emptyMsgs(n)
			msgs[rng.IntN(n)][rng.IntN(n)] = []clique.Word{clique.Word(trial)}
		}
		in := routing.ExchangeDynamic(net, strategy, sc, msgs)
		assertDelivered(t, msgs, in)
		for d := 0; d < n; d++ {
			for s := 0; s < n; s++ {
				if len(msgs[s][d]) == 0 && len(in[d][s]) != 0 {
					t.Fatalf("trial %d (%v): idle pair (%d→%d) reads %d words from the previous schedule",
						trial, strategy, s, d, len(in[d][s]))
				}
			}
		}
	}
}

// A nil scratch must behave identically (fresh nil-entry matrices).
func TestExchangeDynamicNilScratch(t *testing.T) {
	const n = 9
	rng := rand.New(rand.NewPCG(19, 20))
	net := clique.New(n)
	defer net.Close()
	msgs := randomMsgs(rng, n, 3)
	in := routing.ExchangeDynamic(net, routing.Auto, nil, msgs)
	assertDelivered(t, msgs, in)
	for d := 0; d < n; d++ {
		for s := 0; s < n; s++ {
			if len(msgs[s][d]) == 0 && len(in[d][s]) != 0 {
				t.Fatalf("idle pair (%d,%d) reads %d words", s, d, len(in[d][s]))
			}
		}
	}
}
