package routing_test

import (
	"math/rand/v2"
	"testing"

	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/routing"
)

// ExchangeDynamic's contract: every pair that carried no traffic reads as
// empty, even when a pooled receive matrix is reused across exchanges with
// different (data-dependent) patterns — the situation that leaves stale
// windows in ExchangeScratch's matrices.
func TestExchangeDynamicNoStaleEntries(t *testing.T) {
	const n = 12
	rng := rand.New(rand.NewPCG(17, 18))
	for _, strategy := range []routing.Strategy{routing.Auto, routing.Direct, routing.TwoPhase} {
		net := clique.New(n)
		sc := routing.NewScratch()
		// First exchange: dense-ish traffic fills the pooled matrices.
		first := randomMsgs(rng, n, 6)
		in := routing.ExchangeDynamic(net, strategy, sc, first)
		assertDelivered(t, first, in)

		// Followups on the same scratch with ever-sparser patterns: pairs
		// idle now but busy before must read as empty. Two rounds, so both
		// double-buffered matrices get revisited.
		for trial := 0; trial < 3; trial++ {
			msgs := emptyMsgs(n)
			src, dst := rng.IntN(n), rng.IntN(n)
			msgs[src][dst] = []clique.Word{clique.Word(trial + 1)}
			in = routing.ExchangeDynamic(net, strategy, sc, msgs)
			for d := 0; d < n; d++ {
				for s := 0; s < n; s++ {
					want := 0
					if s == src && d == dst {
						want = 1
					}
					if len(in[d][s]) != want {
						t.Fatalf("strategy %v trial %d: in[%d][%d] has %d words, want %d (stale pooled entry?)",
							strategy, trial, d, s, len(in[d][s]), want)
					}
				}
			}
			if in[dst][src][0] != clique.Word(trial+1) {
				t.Fatalf("strategy %v trial %d: delivered %d, want %d", strategy, trial, in[dst][src][0], trial+1)
			}
		}
		net.Close()
	}
}

// A nil scratch must behave identically (fresh nil-entry matrices).
func TestExchangeDynamicNilScratch(t *testing.T) {
	const n = 9
	rng := rand.New(rand.NewPCG(19, 20))
	net := clique.New(n)
	defer net.Close()
	msgs := randomMsgs(rng, n, 3)
	in := routing.ExchangeDynamic(net, routing.Auto, nil, msgs)
	assertDelivered(t, msgs, in)
	for d := 0; d < n; d++ {
		for s := 0; s < n; s++ {
			if len(msgs[s][d]) == 0 && len(in[d][s]) != 0 {
				t.Fatalf("idle pair (%d,%d) reads %d words", s, d, len(in[d][s]))
			}
		}
	}
}
