package routing

import "github.com/algebraic-clique/algclique/internal/clique"

// Scratch holds the routing layer's reusable delivery state. Exchange
// returns a receive matrix in[dst][src]; with a Scratch those matrices are
// double-buffered — the one handed out two Exchange calls ago is recycled,
// mirroring the simulator's Mail contract — so a pipeline of exchanges
// allocates nothing in steady state.
//
// Direct and two-phase deliveries recycle separately: direct receive
// entries are borrowed mailbox windows (reassigned, never written), while
// two-phase entries are scratch-owned arrays reassembled in place. Keeping
// the pools apart means an owned buffer can never alias a network mailbox.
//
// A Scratch belongs to one caller; the engines thread one through all
// their exchanges. Exchange with a nil Scratch allocates per call.
type Scratch struct {
	directIns [2][][][]clique.Word
	directIdx int
	ownedIns  [2][][][]clique.Word
	ownedIdx  int
	heldMeta  [][]routedMeta
	heldWord  [][]clique.Word
	loads     []int64
	lens      []int64
	plans     []exchangePlan
}

// exchangePlan memoises the charged aggregates of one traffic shape: the
// engines' exchange patterns are oblivious — fixed by (n, layout, chunk
// sizes) — so a session replays the same handful of lens arrays every
// product, and the two-phase striping arithmetic needs to run once per
// shape rather than once per exchange.
type exchangePlan struct {
	lens                               []int64
	maxA, totalA, maxB, totalB, direct int64
}

// maxExchangePlans bounds the memo (an engine uses ≤ 4 shapes; a few
// engines can share a scratch across padded sizes).
const maxExchangePlans = 16

// NewScratch returns an empty routing scratch.
func NewScratch() *Scratch { return &Scratch{} }

// heldRetainCap is the high-water capacity (entries) a per-intermediary
// forwarding buffer or reassembly vector may keep between exchanges; a
// one-off traffic spike above it is released rather than pinned.
const heldRetainCap = 1 << 14

// Trim releases all retained delivery state (the structures rebuild
// lazily), for callers parking a scratch they may not use again soon.
func (sc *Scratch) Trim() {
	sc.directIns = [2][][][]clique.Word{}
	sc.ownedIns = [2][][][]clique.Word{}
	sc.heldMeta, sc.heldWord = nil, nil
	sc.loads, sc.lens = nil, nil
	sc.plans = nil
}

// nextMatrix rotates a double-buffered n×n receive matrix.
func nextMatrix(bufs *[2][][][]clique.Word, idx *int, n int) [][][]clique.Word {
	m := bufs[*idx]
	if len(m) != n {
		m = make([][][]clique.Word, n)
		for i := range m {
			m[i] = make([][]clique.Word, n)
		}
		bufs[*idx] = m
	}
	*idx ^= 1
	return m
}

// directIn returns the next direct receive matrix; entries are stale
// borrowed windows about to be overwritten or nil-cleared by the caller.
func (sc *Scratch) directIn(n int) [][][]clique.Word {
	return nextMatrix(&sc.directIns, &sc.directIdx, n)
}

// ownedIn returns the next owned receive matrix; entries keep their
// capacity and are resized in place by the caller.
func (sc *Scratch) ownedIn(n int) [][][]clique.Word {
	return nextMatrix(&sc.ownedIns, &sc.ownedIdx, n)
}

// held returns the per-intermediary forwarding tables, truncated.
func (sc *Scratch) held(n int) ([][]routedMeta, [][]clique.Word) {
	for len(sc.heldMeta) < n {
		sc.heldMeta = append(sc.heldMeta, nil)
	}
	for len(sc.heldWord) < n {
		sc.heldWord = append(sc.heldWord, nil)
	}
	hm, hw := sc.heldMeta[:n], sc.heldWord[:n]
	for i := range hm {
		if cap(hm[i]) > heldRetainCap {
			hm[i] = nil
		} else {
			hm[i] = hm[i][:0]
		}
		if cap(hw[i]) > heldRetainCap {
			hw[i] = nil
		} else {
			hw[i] = hw[i][:0]
		}
	}
	return hm, hw
}

// linkLoads returns a zeroed length-k load tally.
func (sc *Scratch) linkLoads(k int) []int64 {
	sc.loads = zeroedLoads(sc.loads, k)
	return sc.loads[:k]
}

// payLens is a second, independent zeroed tally: the materialised analytic
// lens of a payload exchange, alive across the strategy and schedule
// passes that reuse linkLoads.
func (sc *Scratch) payLens(k int) []int64 {
	sc.lens = zeroedLoads(sc.lens, k)
	return sc.lens[:k]
}

func zeroedLoads(b []int64, k int) []int64 {
	if cap(b) < k {
		return make([]int64, k)
	}
	b = b[:k]
	for i := range b {
		b[i] = 0
	}
	return b
}

// resize returns b with length k, reusing capacity above the high-water
// mark only until the next Trim.
func resize(b []clique.Word, k int) []clique.Word {
	if cap(b) < k {
		return make([]clique.Word, k)
	}
	return b[:k]
}
