package routing_test

import (
	"fmt"
	"testing"

	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/routing"
)

// Ablation: the routing substrate is load-bearing for the paper's round
// bounds. These benchmarks compare Direct vs TwoPhase vs Auto on the three
// traffic shapes the algorithms generate; "rounds" is the metric.

func benchPattern(b *testing.B, n int, build func() [][][]clique.Word) {
	for _, strat := range []routing.Strategy{routing.Direct, routing.TwoPhase, routing.Auto} {
		b.Run(strat.String(), func(b *testing.B) {
			msgs := build()
			var rounds int64
			for i := 0; i < b.N; i++ {
				net := clique.New(n)
				routing.Exchange(net, strat, msgs)
				rounds = net.Rounds()
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkRoutingSkewed: one node ships n²/4 words to √n receivers — the
// shape of matmul step 1 (few heavy receivers per sender).
func BenchmarkRoutingSkewed(b *testing.B) {
	const n = 64
	benchPattern(b, n, func() [][][]clique.Word {
		msgs := make([][][]clique.Word, n)
		for s := range msgs {
			msgs[s] = make([][]clique.Word, n)
		}
		for s := 0; s < n; s++ {
			for d := 0; d < 8; d++ {
				vec := make([]clique.Word, n/2)
				for i := range vec {
					vec[i] = clique.Word(s*n + i)
				}
				msgs[s][(s+d*7)%n] = vec
			}
		}
		return msgs
	})
}

// BenchmarkRoutingUniform: balanced all-to-all — direct should win
// (two-phase pays a second hop for nothing).
func BenchmarkRoutingUniform(b *testing.B) {
	const n = 64
	benchPattern(b, n, func() [][][]clique.Word {
		msgs := make([][][]clique.Word, n)
		for s := range msgs {
			msgs[s] = make([][]clique.Word, n)
			for d := 0; d < n; d++ {
				if s != d {
					msgs[s][d] = []clique.Word{1, 2, 3}
				}
			}
		}
		return msgs
	})
}

// BenchmarkRoutingGatherHotspot: everyone sends to a few hot nodes — the
// fast-matmul step 3 shape when m < n (reception-bound; no router can beat
// the per-link floor, Auto must not do worse than direct).
func BenchmarkRoutingGatherHotspot(b *testing.B) {
	const n = 64
	benchPattern(b, n, func() [][][]clique.Word {
		msgs := make([][][]clique.Word, n)
		for s := range msgs {
			msgs[s] = make([][]clique.Word, n)
			for d := 0; d < 8; d++ {
				msgs[s][d] = make([]clique.Word, 16)
			}
		}
		return msgs
	})
}

func TestAutoNeverWorseThanEither(t *testing.T) {
	// Auto must match the better of the two strategies on every pattern
	// above (it computes both exact costs).
	patterns := map[string]func() [][][]clique.Word{}
	n := 64
	patterns["skewed"] = func() [][][]clique.Word {
		msgs := emptyMsgs(n)
		for s := 0; s < n; s++ {
			vec := make([]clique.Word, n)
			msgs[s][(s+1)%n] = vec
		}
		return msgs
	}
	patterns["uniform"] = func() [][][]clique.Word {
		msgs := emptyMsgs(n)
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s != d {
					msgs[s][d] = []clique.Word{7}
				}
			}
		}
		return msgs
	}
	for name, build := range patterns {
		rounds := map[routing.Strategy]int64{}
		for _, strat := range []routing.Strategy{routing.Direct, routing.TwoPhase, routing.Auto} {
			net := clique.New(n)
			routing.Exchange(net, strat, build())
			rounds[strat] = net.Rounds()
		}
		best := rounds[routing.Direct]
		if rounds[routing.TwoPhase] < best {
			best = rounds[routing.TwoPhase]
		}
		if rounds[routing.Auto] != best {
			t.Errorf("%s: auto = %d, best of direct/two-phase = %d (%v)",
				name, rounds[routing.Auto], best, rounds)
		}
	}
}

func ExampleExchange() {
	net := clique.New(4)
	msgs := emptyMsgs(4)
	msgs[0][3] = []clique.Word{10, 11}
	msgs[2][1] = []clique.Word{20}
	in := routing.Exchange(net, routing.Auto, msgs)
	fmt.Println(in[3][0], in[1][2], net.Rounds())
	// Output: [10 11] [20] 2
}
