// Package routing provides the communication primitives the paper's
// algorithms assume on top of raw links:
//
//   - Exchange: personalised all-to-all delivery of arbitrary per-pair word
//     vectors, with a deterministic two-phase balanced schedule in the style
//     of Lenzen's routing theorem [46] (any pattern in which every node
//     sends and receives at most h words is delivered in ceil(h/n) + O(1)
//     rounds), falling back to direct per-link delivery when that is cheaper.
//   - AllGather: the "learn everything" primitive of Dolev et al. [24]:
//     all nodes learn the union of all nodes' local words in
//     ~2*ceil(K/n) + 1 rounds for K total words.
//
// Addressing metadata travels out-of-band in the simulator: the algorithms
// in the paper use *oblivious* routing (the pattern is computable by every
// node from globally known parameters), so headers are not needed on the
// wire; for the dynamic patterns the per-node counts are explicitly
// broadcast first, which is the information needed to make the schedule
// globally computable. Payload words are what is charged.
package routing

import (
	"fmt"

	"github.com/algebraic-clique/algclique/internal/clique"
)

// Strategy selects how Exchange schedules traffic.
type Strategy int

const (
	// Auto picks the cheaper of Direct and TwoPhase for the given traffic.
	Auto Strategy = iota
	// Direct drains each (src, dst) queue on its own link.
	Direct
	// TwoPhase stripes each sender's traffic across all n nodes as
	// intermediaries, then forwards to final destinations.
	TwoPhase
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Auto:
		return "auto"
	case Direct:
		return "direct"
	case TwoPhase:
		return "two-phase"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Exchange delivers msgs[src][dst] (a vector of words for every ordered
// pair; empty entries mean no traffic) and returns in[dst][src] with FIFO
// order preserved per pair. msgs must be n×n.
func Exchange(net *clique.Network, strategy Strategy, msgs [][][]clique.Word) [][][]clique.Word {
	return ExchangeScratch(net, strategy, nil, msgs)
}

// ExchangeOwned is Exchange for callers that relinquish msgs: the network
// may adopt the payload vectors as queue storage (clique.SendOwnedVec), so
// the direct strategy enqueues without copying. Neither msgs' structure
// nor its vectors may be read or written after the call. Callers that pool
// their message buffers must use Exchange/ExchangeScratch instead.
func ExchangeOwned(net *clique.Network, strategy Strategy, msgs [][][]clique.Word) [][][]clique.Word {
	n := net.N()
	validateShape(n, msgs)
	strategy = ResolveStrategy(n, nil, strategy, lensOf(msgs))
	if strategy == TwoPhase {
		// Ownership is irrelevant two-phase: words travel individually.
		return exchangeTwoPhase(net, nil, msgs)
	}
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if len(msgs[src][dst]) > 0 {
				net.SendOwnedVec(src, dst, msgs[src][dst])
			}
		}
	}
	mail := net.Flush()
	in := make([][][]clique.Word, n)
	for dst := 0; dst < n; dst++ {
		in[dst] = make([][]clique.Word, n)
		for src := 0; src < n; src++ {
			in[dst][src] = mail.From(dst, src)
		}
	}
	return in
}

// ExchangeScratch is Exchange drawing its receive matrices, per-pair
// reassembly buffers, and forwarding tables from sc (see Scratch). The
// returned matrix is recycled two ExchangeScratch calls later, so callers
// must consume one exchange's delivery before requesting a third — the
// same lifetime the simulator's Mail gives. Entries for pairs that carried
// no traffic may be stale under a Scratch: scratch users are oblivious
// protocols that read exactly the pairs they addressed. A nil sc allocates
// per call, with nil entries for idle pairs.
//
//cc:hotpath
func ExchangeScratch(net *clique.Network, strategy Strategy, sc *Scratch, msgs [][][]clique.Word) [][][]clique.Word {
	n := net.N()
	validateShape(n, msgs)
	switch strategy {
	case Direct:
		return exchangeDirect(net, sc, msgs)
	case TwoPhase:
		return exchangeTwoPhase(net, sc, msgs)
	case Auto:
		if ResolveStrategy(n, sc, Auto, lensOf(msgs)) == TwoPhase {
			return exchangeTwoPhase(net, sc, msgs)
		}
		return exchangeDirect(net, sc, msgs)
	default:
		panic(fmt.Sprintf("routing: unknown strategy %d", int(strategy)))
	}
}

// ExchangeDynamic is Exchange for *dynamic* traffic patterns — ones whose
// receive side is data-dependent, so a receiver must be able to scan all n
// potential senders and trust that a pair which carried no traffic reads
// as empty. ExchangeScratch cannot promise that (stale windows survive in
// its pooled matrices, which is fine for oblivious protocols that read
// exactly the pairs they addressed); ExchangeDynamic does, while still
// pooling: the direct schedule reassigns every entry from the mailbox
// (idle links read empty there), and the two-phase schedule truncates the
// pooled entries of idle pairs after reassembly. The returned matrix
// follows the same two-call recycling lifetime as ExchangeScratch. A nil
// sc allocates a fresh (nil-entry) matrix per call.
//
// The sparse matmul engine's gather is the motivating caller: which nodes
// send partial products to which row owners depends on the operands'
// nonzero structure, so its receivers scan every source.
func ExchangeDynamic(net *clique.Network, strategy Strategy, sc *Scratch, msgs [][][]clique.Word) [][][]clique.Word {
	n := net.N()
	validateShape(n, msgs)
	if ResolveStrategy(n, sc, strategy, lensOf(msgs)) == TwoPhase {
		in := exchangeTwoPhase(net, sc, msgs)
		if sc != nil {
			// Idle pairs keep their pooled capacity but read as empty.
			for src := 0; src < n; src++ {
				for dst := 0; dst < n; dst++ {
					if len(msgs[src][dst]) == 0 && in[dst][src] != nil {
						in[dst][src] = in[dst][src][:0]
					}
				}
			}
		}
		return in
	}
	// The direct schedule reassigns every (dst, src) entry from the
	// mailbox, whose idle links read empty, so it is already clean.
	return exchangeDirect(net, sc, msgs)
}

// validateShape panics unless msgs is an n×n message matrix — the shared
// precondition of every exchange variant.
func validateShape(n int, msgs [][][]clique.Word) {
	if len(msgs) != n {
		panic(fmt.Sprintf("routing: Exchange wants %d source rows, got %d", n, len(msgs)))
	}
	for src := range msgs {
		if len(msgs[src]) != n {
			panic(fmt.Sprintf("routing: source %d has %d destination slots, want %d", src, len(msgs[src]), n))
		}
	}
}

// LinkLens reports the word length of the message from src to dst. It is
// the accounting-plane view of a traffic pattern: the encoded path derives
// it from materialised vectors (lensOf), the direct path computes it
// analytically from codec EncodedLen sums, and both feed the same
// scheduling and charging code — which is what keeps the two transports'
// ledgers bit-identical.
type LinkLens func(src, dst int) int64

// lensOf is the LinkLens of a materialised message matrix.
func lensOf(msgs [][][]clique.Word) LinkLens {
	return func(src, dst int) int64 { return int64(len(msgs[src][dst])) }
}

// ResolveStrategy resolves Auto to the cheaper of Direct and TwoPhase for
// the given traffic shape, using the exact deterministic round costs of
// both schedules; non-Auto strategies pass through unchanged.
func ResolveStrategy(n int, sc *Scratch, strategy Strategy, lens LinkLens) Strategy {
	if strategy != Auto {
		return strategy
	}
	direct, twoPhase := estimateCosts(n, sc, lens)
	if twoPhase < direct {
		return TwoPhase
	}
	return Direct
}

// estimateCosts returns the exact round cost of Direct and TwoPhase for
// the given traffic (both are deterministic schedules): the direct cost is
// the maximum non-self link lens, the two-phase cost the sum of the two
// schedule maxima from TwoPhaseCosts — the single implementation of the
// Lenzen striping arithmetic both transports share.
func estimateCosts(n int, sc *Scratch, lens LinkLens) (direct, twoPhase int64) {
	maxA, _, maxB, _ := TwoPhaseCosts(n, sc, lens)
	twoPhase = maxA + maxB
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			if l := lens(src, dst); l > direct {
				direct = l
			}
		}
	}
	return direct, twoPhase
}

//cc:hotpath
func exchangeDirect(net *clique.Network, sc *Scratch, msgs [][][]clique.Word) [][][]clique.Word {
	n := net.N()
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if len(msgs[src][dst]) > 0 {
				net.SendVec(src, dst, msgs[src][dst])
			}
		}
	}
	mail := net.Flush()
	var in [][][]clique.Word
	if sc != nil {
		in = sc.directIn(n)
	} else {
		in = make([][][]clique.Word, n) //cc:hotalloc-ok(nil-scratch transient fallback, documented on ExchangeScratch)
		for dst := 0; dst < n; dst++ {
			in[dst] = make([][]clique.Word, n) //cc:hotalloc-ok(nil-scratch transient fallback)
		}
	}
	for dst := 0; dst < n; dst++ {
		row := in[dst]
		for src := 0; src < n; src++ {
			row[src] = mail.From(dst, src)
		}
	}
	return in
}

// routedMeta packs (src, dst, idx) for a word in flight: 22 bits each for
// src and dst (cliques up to 4M nodes) and 20 bits for the position within
// its (src, dst) vector.
type routedMeta uint64

func packMeta(src, dst, idx int) routedMeta {
	return routedMeta(uint64(src)<<42 | uint64(dst)<<20 | uint64(idx))
}

func (m routedMeta) unpack() (src, dst, idx int) {
	return int(m >> 42), int(m >> 20 & 0x3fffff), int(m & 0xfffff)
}

// stripeOffset rotates each sender's intermediary cycle by a golden-ratio
// multiple of its id. A plain (src + i) mod n assignment aligns the stripes
// of consecutive senders, piling their phase-B forwards for a common
// destination onto the same intermediaries (the matmul assemble step is
// exactly that pattern); the rotation spreads consecutive senders ~0.618·n
// apart and keeps the schedule deterministic.
func stripeOffset(src, n int) int {
	if n <= 1 {
		return 0
	}
	p := int(float64(n)*0.6180339887) | 1
	return src * p % n
}

//cc:hotpath
func exchangeTwoPhase(net *clique.Network, sc *Scratch, msgs [][][]clique.Word) [][][]clique.Word {
	n := net.N()
	var heldMeta [][]routedMeta // heldMeta[intermediary]
	var heldWord [][]clique.Word
	var in [][][]clique.Word
	if sc != nil {
		heldMeta, heldWord = sc.held(n)
		in = sc.ownedIn(n)
	} else {
		heldMeta = make([][]routedMeta, n)  //cc:hotalloc-ok(nil-scratch transient fallback)
		heldWord = make([][]clique.Word, n) //cc:hotalloc-ok(nil-scratch transient fallback)
		in = make([][][]clique.Word, n)     //cc:hotalloc-ok(nil-scratch transient fallback, documented on ExchangeScratch)
		for dst := 0; dst < n; dst++ {
			in[dst] = make([][]clique.Word, n) //cc:hotalloc-ok(nil-scratch transient fallback)
		}
	}
	// Pre-size the per-pair reassembly buffers (reusing capacity under a
	// Scratch); every position is overwritten by the forwarding pass.
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if k := len(msgs[src][dst]); k > 0 {
				in[dst][src] = resize(in[dst][src], k)
			}
		}
	}
	for src := 0; src < n; src++ {
		off := stripeOffset(src, n)
		flat := 0
		for dst := 0; dst < n; dst++ {
			vec := msgs[src][dst]
			if len(vec) >= 1<<20 {
				// Split points beyond the packed-index range never occur in
				// this library (vectors are ≤ n words); guard regardless.
				panic("routing: per-pair vector exceeds packed index range")
			}
			for idx, w := range vec {
				inter := (off + flat) % n
				net.Send(src, inter, w)
				heldMeta[inter] = append(heldMeta[inter], packMeta(src, dst, idx))
				heldWord[inter] = append(heldWord[inter], w)
				flat++
			}
		}
	}
	net.Flush()

	for inter := 0; inter < n; inter++ {
		hw := heldWord[inter]
		for i, m := range heldMeta[inter] {
			src, dst, idx := m.unpack()
			w := hw[i]
			net.Send(inter, dst, w)
			in[dst][src][idx] = w
		}
	}
	net.Flush()
	return in
}

// AllGather makes every node learn every node's local word vector. The
// returned slice is indexed by origin node and must be treated as read-only
// (it is shared by all receivers, which is sound because all nodes hold
// identical copies after the gather).
//
// Cost: 1 round to broadcast counts, ~ceil(K/n) rounds to spread the K
// total words evenly, and ceil(K/n) broadcast rounds to publish them.
func AllGather(net *clique.Network, vecs [][]clique.Word) [][]clique.Word {
	n := net.N()
	if len(vecs) != n {
		panic(fmt.Sprintf("routing: AllGather wants %d vectors, got %d", n, len(vecs)))
	}
	counts := make([]clique.Word, n)
	var total int64
	for v, vec := range vecs {
		counts[v] = clique.Word(len(vec))
		total += int64(len(vec))
	}
	net.BroadcastWord(counts)
	if total == 0 {
		out := make([][]clique.Word, n)
		copy(out, vecs)
		return out
	}
	chunk := (total + int64(n) - 1) / int64(n)

	// Spread: word at global position p goes to holder p/chunk. Each node
	// computes the same assignment from the broadcast counts.
	holderOf := func(p int64) int { return int(p / chunk) }
	held := make([][]clique.Word, n)
	var pos int64
	for v, vec := range vecs {
		for _, w := range vec {
			h := holderOf(pos)
			net.Send(v, h, w)
			held[h] = append(held[h], w)
			pos++
		}
	}
	net.Flush()

	// Publish: each holder broadcasts its ≤ chunk words.
	net.Broadcast(held)

	out := make([][]clique.Word, n)
	copy(out, vecs)
	return out
}
