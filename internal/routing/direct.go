package routing

import (
	"fmt"
	"slices"

	"github.com/algebraic-clique/algclique/internal/clique"
)

// This file is the routing layer's direct (data-plane) side: the same
// deterministic schedules as Exchange and AllGather, with the words
// charged analytically from a LinkLens and the actual data moved as typed
// payloads by reference (or not at all, when the receiver can read the
// sender's structure directly). Every function here reproduces its encoded
// counterpart's ledger — rounds, words, flushes, strategy choice — exactly.

// TwoPhaseCosts reduces the two-phase schedule for the given traffic to
// its four charged aggregates: the non-self per-link load maximum and word
// total of each phase. The striping matches exchangeTwoPhase word for
// word — sender src's flat word stream rides links (off+p) mod n in
// order, so each phase-A link carries ⌊flat/n⌋ full laps plus one
// contiguous arc, reduced here to closed-form per-sender arithmetic —
// while phase B runs one O(n²) pass over a per-(intermediary,
// destination) tally. This is the single implementation of the Lenzen
// striping arithmetic: the encoded Auto resolution (estimateCosts), the
// direct transport's analytic charges, and the strategy decisions all
// read these aggregates, which is what keeps the two planes' ledgers and
// schedule choices bit-identical (the per-link reference implementation
// lives in the tests).
func TwoPhaseCosts(n int, sc *Scratch, lens LinkLens) (maxA, totalA, maxB, totalB int64) {
	var loadB []int64
	if sc != nil {
		loadB = sc.linkLoads(n * n)
	} else {
		loadB = make([]int64, n*n)
	}
	for src := 0; src < n; src++ {
		off := stripeOffset(src, n)
		var flat int64
		for dst := 0; dst < n; dst++ {
			l := lens(src, dst)
			if l == 0 {
				continue
			}
			laps := l / int64(n)
			rem := int(l % int64(n))
			if laps > 0 {
				for inter := 0; inter < n; inter++ {
					loadB[inter*n+dst] += laps
				}
			}
			start := (off + int(flat%int64(n))) % n
			for j := 0; j < rem; j++ {
				inter := start + j
				if inter >= n {
					inter -= n
				}
				loadB[inter*n+dst]++
			}
			flat += l
		}
		if flat > 0 && n > 1 {
			laps := flat / int64(n)
			rem := int(flat % int64(n))
			selfIdx := (src - off + n) % n
			selfLoad := laps
			if selfIdx < rem {
				selfLoad++
			}
			ma := laps
			if rem > 0 && (rem >= 2 || selfIdx != 0) {
				ma = laps + 1
			}
			if ma > maxA {
				maxA = ma
			}
			totalA += flat - selfLoad
		}
	}
	for inter := 0; inter < n; inter++ {
		row := loadB[inter*n : (inter+1)*n]
		for dst, w := range row {
			if inter == dst || w == 0 {
				continue
			}
			totalB += w
			if w > maxB {
				maxB = w
			}
		}
	}
	return maxA, totalA, maxB, totalB
}

// PlanCosts returns the charged aggregates of both schedules for a
// materialised lens array: the two-phase phase maxima and totals plus the
// direct schedule's non-self maximum. With a Scratch the result is
// memoised on the lens contents (see exchangePlan); the aggregates are a
// pure function of the lens array, so replayed oblivious patterns skip
// the striping arithmetic entirely.
func PlanCosts(n int, sc *Scratch, lensBuf []int64) (maxA, totalA, maxB, totalB, direct int64) {
	if sc != nil {
		for i := range sc.plans {
			p := &sc.plans[i]
			if slices.Equal(p.lens, lensBuf) {
				return p.maxA, p.totalA, p.maxB, p.totalB, p.direct
			}
		}
	}
	lens := func(src, dst int) int64 { return lensBuf[src*n+dst] }
	maxA, totalA, maxB, totalB = TwoPhaseCosts(n, sc, lens)
	for src := 0; src < n; src++ {
		base := src * n
		for dst := 0; dst < n; dst++ {
			if src != dst && lensBuf[base+dst] > direct {
				direct = lensBuf[base+dst]
			}
		}
	}
	if sc != nil {
		if len(sc.plans) >= maxExchangePlans {
			sc.plans = sc.plans[:0]
		}
		sc.plans = append(sc.plans, exchangePlan{
			lens: append([]int64(nil), lensBuf...),
			maxA: maxA, totalA: totalA, maxB: maxB, totalB: totalB, direct: direct,
		})
	}
	return maxA, totalA, maxB, totalB, direct
}

// ChargeAllGather charges the exact ledger of AllGather for per-node
// vector lengths lens: the counts broadcast (real — the counts are the
// words), the analytic spread flush, and the publish broadcast. The data
// plane is the callers' own vectors, which every receiver can read in
// place.
func ChargeAllGather(net *clique.Network, lens []int64) {
	n := net.N()
	if len(lens) != n {
		panic(fmt.Sprintf("routing: ChargeAllGather wants %d lengths, got %d", n, len(lens)))
	}
	counts := make([]clique.Word, n)
	var total int64
	for v, l := range lens {
		counts[v] = clique.Word(l)
		total += l
	}
	net.BroadcastWord(counts)
	if total == 0 {
		return
	}
	chunk := (total + int64(n) - 1) / int64(n)

	// Spread: sender v's words occupy global positions [pos, pos+l); the
	// words landing on holder h are the overlap with h's window
	// [h·chunk, (h+1)·chunk). Self-deliveries (h = v) are free, as in the
	// real flush.
	var pos, maxSpread, totalSpread int64
	for v, l := range lens {
		if l == 0 {
			continue
		}
		end := pos + l
		for h := int(pos / chunk); int64(h)*chunk < end && h < n; h++ {
			lo := int64(h) * chunk
			if pos > lo {
				lo = pos
			}
			hi := (int64(h) + 1) * chunk
			if end < hi {
				hi = end
			}
			if hi > lo && h != v {
				totalSpread += hi - lo
				if hi-lo > maxSpread {
					maxSpread = hi - lo
				}
			}
		}
		pos = end
	}
	net.FlushAnalytic(maxSpread, totalSpread)

	// Publish: each holder broadcasts its window.
	held := make([]int64, n)
	for h := 0; h < n; h++ {
		lo := int64(h) * chunk
		hi := lo + chunk
		if hi > total {
			hi = total
		}
		if hi > lo {
			held[h] = hi - lo
		}
	}
	net.ChargeBroadcast(held)
}

// ExchangePayload is Exchange on the data plane: pays[src][dst] is the
// typed per-pair message and words(k) the analytic wire length of a
// k-element message (the codec's EncodedLen summed over the message's
// chunks — callers with multi-chunk messages fold the chunk structure into
// the closure). The strategy choice, rounds, words, and flushes match
// Exchange on the encoded equivalent exactly; the payloads move by
// reference through the simulator's Mail, so the delivered slices alias
// the senders' buffers and are valid until the caller rebuilds them.
//
// in must be an n×n receive matrix; entries for addressed pairs are
// overwritten and all others left untouched (stale), the same contract
// ExchangeScratch gives oblivious protocols. It is returned for
// convenience.
//
//cc:hotpath
func ExchangePayload[T any](net *clique.Network, strategy Strategy, sc *Scratch, pays [][][]T, words func(elems int) int64, in [][][]T) [][][]T {
	n := net.N()
	if len(pays) != n || len(in) != n {
		panic(fmt.Sprintf("routing: ExchangePayload wants %d×%d matrices, got %d and %d rows", n, n, len(pays), len(in)))
	}
	// Materialise the analytic lens once; every subsequent pass — strategy
	// estimation, schedule loads, send charging — reads the flat array.
	var lensBuf []int64
	if sc != nil {
		lensBuf = sc.payLens(n * n)
	} else {
		lensBuf = make([]int64, n*n) //cc:hotalloc-ok(nil-scratch transient fallback)
	}
	for src := 0; src < n; src++ {
		row := pays[src]
		base := src * n
		for dst := range row {
			if l := len(row[dst]); l > 0 {
				lensBuf[base+dst] = words(l)
			}
		}
	}
	twoPhase := strategy == TwoPhase
	var maxA, totalA, maxB, totalB int64
	if strategy != Direct {
		// Resolve Auto with the same comparison the encoded Exchange uses —
		// the direct round cost is the maximum non-self lens, the two-phase
		// cost the sum of the two schedule maxima — reusing the (memoised)
		// schedule aggregates for the charge itself.
		var direct int64
		maxA, totalA, maxB, totalB, direct = PlanCosts(n, sc, lensBuf)
		if strategy == Auto {
			twoPhase = maxA+maxB < direct
		}
	}
	var mail *clique.Mail
	if twoPhase {
		net.FlushAnalytic(maxA, totalA)
		for src := 0; src < n; src++ {
			row := pays[src]
			for dst := range row {
				if len(row[dst]) > 0 {
					net.SendPayload(src, dst, 0, &row[dst])
				}
			}
		}
		mail = net.FlushAnalytic(maxB, totalB)
	} else {
		for src := 0; src < n; src++ {
			row := pays[src]
			base := src * n
			for dst := range row {
				if len(row[dst]) > 0 {
					net.SendPayload(src, dst, lensBuf[base+dst], &row[dst])
				}
			}
		}
		mail = net.Flush()
	}
	for src := 0; src < n; src++ {
		for dst := range pays[src] {
			if len(pays[src][dst]) > 0 {
				in[dst][src] = *(mail.PayloadsFrom(dst, src)[0].(*[]T))
			}
		}
	}
	return in
}
