package routing

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"github.com/algebraic-clique/algclique/internal/clique"
)

// randPattern builds a random traffic pattern: some pairs idle, some small,
// some long enough to push Auto into the two-phase schedule.
func randPattern(rng *rand.Rand, n int) [][][]int64 {
	msgs := make([][][]int64, n)
	for src := range msgs {
		msgs[src] = make([][]int64, n)
		for dst := range msgs[src] {
			var l int
			switch rng.IntN(3) {
			case 0:
				l = 0
			case 1:
				l = rng.IntN(4)
			default:
				l = n + rng.IntN(3*n)
			}
			vec := make([]int64, l)
			for i := range vec {
				vec[i] = int64(src*1000000 + dst*1000 + i)
			}
			msgs[src][dst] = vec
		}
	}
	return msgs
}

// TestExchangePayloadMatchesExchange runs the same random patterns through
// the encoded Exchange and the direct ExchangePayload and requires
// identical deliveries and identical ledgers — including the Auto strategy
// choice that decides between direct and two-phase schedules.
func TestExchangePayloadMatchesExchange(t *testing.T) {
	for _, n := range []int{2, 4, 7, 12, 25} {
		for trial := 0; trial < 4; trial++ {
			rng := rand.New(rand.NewPCG(uint64(n), uint64(trial)))
			pays := randPattern(rng, n)

			// Encoded reference: one word per element.
			wnet := clique.New(n)
			msgs := make([][][]clique.Word, n)
			for src := range pays {
				msgs[src] = make([][]clique.Word, n)
				for dst := range pays[src] {
					vec := make([]clique.Word, len(pays[src][dst]))
					for i, x := range pays[src][dst] {
						vec[i] = clique.Word(x)
					}
					msgs[src][dst] = vec
				}
			}
			win := Exchange(wnet, Auto, msgs)

			dnet := clique.New(n)
			in := make([][][]int64, n)
			for i := range in {
				in[i] = make([][]int64, n)
			}
			ExchangePayload(dnet, Auto, NewScratch(), pays, func(el int) int64 { return int64(el) }, in)

			ws, ds := wnet.Stats(), dnet.Stats()
			if !reflect.DeepEqual(ws, ds) {
				t.Fatalf("n=%d trial %d: ledger diverged: wire %+v, direct %+v", n, trial, ws, ds)
			}
			for src := 0; src < n; src++ {
				for dst := 0; dst < n; dst++ {
					if len(pays[src][dst]) == 0 {
						continue
					}
					got := in[dst][src]
					want := win[dst][src]
					if len(got) != len(want) {
						t.Fatalf("n=%d (%d→%d): got %d elements, want %d", n, src, dst, len(got), len(want))
					}
					for i := range got {
						if clique.Word(got[i]) != want[i] {
							t.Fatalf("n=%d (%d→%d)[%d]: got %d, want %d", n, src, dst, i, got[i], want[i])
						}
					}
				}
			}
			wnet.Close()
			dnet.Close()
		}
	}
}

// TestChargeAllGatherMatchesAllGather checks the analytic all-gather
// charge reproduces the real one's ledger for assorted length profiles.
func TestChargeAllGatherMatchesAllGather(t *testing.T) {
	profiles := [][]int64{
		{0, 0, 0, 0},
		{1, 0, 0, 0},
		{5, 0, 17, 3},
		{9, 9, 9, 9, 9},
		{100, 1, 0, 2, 50, 3, 3},
	}
	for _, lens := range profiles {
		n := len(lens)
		wnet := clique.New(n)
		vecs := make([][]clique.Word, n)
		for v, l := range lens {
			vecs[v] = make([]clique.Word, l)
			for i := range vecs[v] {
				vecs[v][i] = clique.Word(v*1000 + i)
			}
		}
		AllGather(wnet, vecs)

		dnet := clique.New(n)
		ChargeAllGather(dnet, lens)

		if ws, ds := wnet.Stats(), dnet.Stats(); !reflect.DeepEqual(ws, ds) {
			t.Fatalf("lens %v: ledger diverged: wire %+v, direct %+v", lens, ws, ds)
		}
		wnet.Close()
		dnet.Close()
	}
}

// refTwoPhaseLinkLoads is the per-link reference implementation of the
// two-phase schedule: loadA[src*n+inter] words ride the phase-A link
// src→inter and loadB[inter*n+dst] the phase-B link inter→dst, including
// the free self-links, striped exactly as exchangeTwoPhase sends them —
// word for word. TwoPhaseCosts must reduce to its maxima and non-self
// totals.
func refTwoPhaseLinkLoads(n int, lens LinkLens) (loadA, loadB []int64) {
	loadA, loadB = make([]int64, n*n), make([]int64, n*n)
	for src := 0; src < n; src++ {
		off := stripeOffset(src, n)
		var flat int64
		for dst := 0; dst < n; dst++ {
			l := lens(src, dst)
			if l == 0 {
				continue
			}
			laps := l / int64(n)
			rem := int(l % int64(n))
			if laps > 0 {
				for inter := 0; inter < n; inter++ {
					loadB[inter*n+dst] += laps
				}
			}
			start := (off + int(flat%int64(n))) % n
			for j := 0; j < rem; j++ {
				inter := start + j
				if inter >= n {
					inter -= n
				}
				loadB[inter*n+dst]++
			}
			flat += l
		}
		laps := flat / int64(n)
		rem := int(flat % int64(n))
		if laps > 0 {
			for inter := 0; inter < n; inter++ {
				loadA[src*n+inter] += laps
			}
		}
		for j := 0; j < rem; j++ {
			inter := off + j
			if inter >= n {
				inter -= n
			}
			loadA[src*n+inter]++
		}
	}
	return loadA, loadB
}

// TestTwoPhaseLinkLoadsMatchSchedule cross-checks the analytic per-link
// loads against the estimator's exact round costs.
func TestTwoPhaseLinkLoadsMatchSchedule(t *testing.T) {
	for _, n := range []int{3, 8, 15} {
		rng := rand.New(rand.NewPCG(99, uint64(n)))
		pays := randPattern(rng, n)
		lens := func(src, dst int) int64 { return int64(len(pays[src][dst])) }
		loadA, loadB := refTwoPhaseLinkLoads(n, lens)
		_, wantTwoPhase := estimateCosts(n, nil, lens)
		var maxA, maxB int64
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				if src == dst {
					continue
				}
				if loadA[src*n+dst] > maxA {
					maxA = loadA[src*n+dst]
				}
				if loadB[src*n+dst] > maxB {
					maxB = loadB[src*n+dst]
				}
			}
		}
		if maxA+maxB != wantTwoPhase {
			t.Fatalf("n=%d: analytic loads give %d+%d rounds, estimator says %d", n, maxA, maxB, wantTwoPhase)
		}
		// The fused aggregate form must agree with the per-link arrays on
		// maxima and on the non-self totals.
		fmA, ftA, fmB, ftB := TwoPhaseCosts(n, nil, lens)
		var totA, totB int64
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				if src != dst {
					totA += loadA[src*n+dst]
					totB += loadB[src*n+dst]
				}
			}
		}
		if fmA != maxA || fmB != maxB || ftA != totA || ftB != totB {
			t.Fatalf("n=%d: TwoPhaseCosts (%d,%d,%d,%d) disagrees with link loads (%d,%d,%d,%d)",
				n, fmA, ftA, fmB, ftB, maxA, totA, maxB, totB)
		}
	}
}
