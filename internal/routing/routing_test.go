package routing_test

import (
	"math/rand/v2"
	"testing"

	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/routing"
)

func emptyMsgs(n int) [][][]clique.Word {
	m := make([][][]clique.Word, n)
	for i := range m {
		m[i] = make([][]clique.Word, n)
	}
	return m
}

func randomMsgs(rng *rand.Rand, n, maxLen int) [][][]clique.Word {
	m := emptyMsgs(n)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			l := rng.IntN(maxLen + 1)
			if l == 0 {
				continue
			}
			vec := make([]clique.Word, l)
			for i := range vec {
				vec[i] = rng.Uint64()
			}
			m[s][d] = vec
		}
	}
	return m
}

func assertDelivered(t *testing.T, msgs, in [][][]clique.Word) {
	t.Helper()
	n := len(msgs)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			want := msgs[s][d]
			got := in[d][s]
			if len(want) != len(got) {
				t.Fatalf("(%d→%d): delivered %d of %d words", s, d, len(got), len(want))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("(%d→%d) word %d: got %d want %d (order not preserved?)", s, d, i, got[i], want[i])
				}
			}
		}
	}
}

func TestExchangeStrategiesDeliverExactly(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, strat := range []routing.Strategy{routing.Direct, routing.TwoPhase, routing.Auto} {
		for trial := 0; trial < 10; trial++ {
			n := 2 + rng.IntN(12)
			msgs := randomMsgs(rng, n, 6)
			net := clique.New(n)
			in := routing.Exchange(net, strat, msgs)
			assertDelivered(t, msgs, in)
		}
	}
}

func TestTwoPhaseBeatsDirectOnSkewedTraffic(t *testing.T) {
	// One node sends L words to a single destination: direct needs L
	// rounds, two-phase ~2*ceil(L/n)+O(1).
	n := 16
	L := 160
	msgs := emptyMsgs(n)
	vec := make([]clique.Word, L)
	for i := range vec {
		vec[i] = clique.Word(i)
	}
	msgs[3][11] = vec

	netD := clique.New(n)
	routing.Exchange(netD, routing.Direct, msgs)
	if netD.Rounds() != int64(L) {
		t.Errorf("direct rounds = %d, want %d", netD.Rounds(), L)
	}

	netT := clique.New(n)
	in := routing.Exchange(netT, routing.TwoPhase, msgs)
	assertDelivered(t, msgs, in)
	// Phase A: ceil(L/n) = 10, phase B similar; allow small slack.
	if netT.Rounds() > int64(3*L/n+4) {
		t.Errorf("two-phase rounds = %d, want ≈ %d", netT.Rounds(), 2*L/n)
	}

	netA := clique.New(n)
	routing.Exchange(netA, routing.Auto, msgs)
	if netA.Rounds() != netT.Rounds() {
		t.Errorf("auto picked %d rounds, two-phase achieves %d", netA.Rounds(), netT.Rounds())
	}
}

func TestDirectBeatsTwoPhaseOnBalancedTraffic(t *testing.T) {
	// Uniform single-word all-to-all: direct is 1 round; two-phase pays two hops.
	n := 8
	msgs := emptyMsgs(n)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				msgs[s][d] = []clique.Word{clique.Word(s*n + d)}
			}
		}
	}
	netA := clique.New(n)
	in := routing.Exchange(netA, routing.Auto, msgs)
	assertDelivered(t, msgs, in)
	if netA.Rounds() != 1 {
		t.Errorf("auto on balanced traffic = %d rounds, want 1 (direct)", netA.Rounds())
	}
}

func TestExchangeHRelationBound(t *testing.T) {
	// Property: for random traffic where every node sends and receives at
	// most h words, Auto completes within ceil(h/n)*2 + 3 rounds (the
	// Lenzen-style guarantee with our constants) — and never worse than
	// direct.
	rng := rand.New(rand.NewPCG(2, 2))
	for trial := 0; trial < 10; trial++ {
		n := 8 + rng.IntN(8)
		h := n * (1 + rng.IntN(4))
		// Build a random h-relation: repeatedly add unit messages keeping
		// per-node send/receive budgets.
		sent := make([]int, n)
		recv := make([]int, n)
		msgs := emptyMsgs(n)
		for tries := 0; tries < 50*n; tries++ {
			s, d := rng.IntN(n), rng.IntN(n)
			if s == d || sent[s] >= h || recv[d] >= h {
				continue
			}
			msgs[s][d] = append(msgs[s][d], rng.Uint64())
			sent[s]++
			recv[d]++
		}
		net := clique.New(n)
		in := routing.Exchange(net, routing.Auto, msgs)
		assertDelivered(t, msgs, in)
		bound := int64(2*((h+n-1)/n) + 3)
		if net.Rounds() > bound {
			t.Errorf("n=%d h=%d: %d rounds exceeds h-relation bound %d", n, h, net.Rounds(), bound)
		}
	}
}

func TestExchangeEmptyTraffic(t *testing.T) {
	net := clique.New(5)
	in := routing.Exchange(net, routing.Auto, emptyMsgs(5))
	if net.Rounds() != 0 {
		t.Errorf("empty exchange charged %d rounds", net.Rounds())
	}
	for d := range in {
		for s := range in[d] {
			if len(in[d][s]) != 0 {
				t.Error("phantom words delivered")
			}
		}
	}
}

func TestExchangeSelfMessagesFree(t *testing.T) {
	n := 4
	msgs := emptyMsgs(n)
	msgs[2][2] = []clique.Word{1, 2, 3, 4, 5}
	for _, strat := range []routing.Strategy{routing.Direct, routing.TwoPhase} {
		net := clique.New(n)
		in := routing.Exchange(net, strat, msgs)
		assertDelivered(t, msgs, in)
		// Direct: self messages are free. Two-phase may route them through
		// intermediaries (cost ≤ 2) because striping is oblivious to content.
		if strat == routing.Direct && net.Rounds() != 0 {
			t.Errorf("%v: self traffic charged %d rounds", strat, net.Rounds())
		}
	}
}

func TestExchangePanicsOnBadShape(t *testing.T) {
	net := clique.New(3)
	defer func() {
		if recover() == nil {
			t.Error("no panic on wrong shape")
		}
	}()
	routing.Exchange(net, routing.Auto, emptyMsgs(2))
}

func TestAllGatherEveryoneLearnsEverything(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.IntN(10)
		vecs := make([][]clique.Word, n)
		var total int
		for v := range vecs {
			l := rng.IntN(2 * n)
			vecs[v] = make([]clique.Word, l)
			for i := range vecs[v] {
				vecs[v][i] = rng.Uint64()
			}
			total += l
		}
		net := clique.New(n)
		all := routing.AllGather(net, vecs)
		for v := range vecs {
			if len(all[v]) != len(vecs[v]) {
				t.Fatalf("node %d vector truncated", v)
			}
			for i := range vecs[v] {
				if all[v][i] != vecs[v][i] {
					t.Fatalf("node %d word %d corrupted", v, i)
				}
			}
		}
		chunk := (total + n - 1) / n
		bound := int64(2*chunk + 2)
		if net.Rounds() > bound {
			t.Errorf("n=%d K=%d: AllGather took %d rounds, bound %d", n, total, net.Rounds(), bound)
		}
		if net.Rounds() < 1 {
			t.Error("AllGather must at least broadcast counts")
		}
	}
}

func TestAllGatherEmpty(t *testing.T) {
	net := clique.New(4)
	all := routing.AllGather(net, make([][]clique.Word, 4))
	if net.Rounds() != 1 {
		t.Errorf("empty AllGather = %d rounds, want 1 (count broadcast)", net.Rounds())
	}
	for _, v := range all {
		if len(v) != 0 {
			t.Error("phantom words")
		}
	}
}

func TestStrategyString(t *testing.T) {
	if routing.Auto.String() != "auto" || routing.Direct.String() != "direct" ||
		routing.TwoPhase.String() != "two-phase" {
		t.Error("Strategy.String broken")
	}
	if routing.Strategy(99).String() == "" {
		t.Error("unknown strategy should still format")
	}
}
