package graphs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList serialises a graph in a plain text format:
//
//	# comment lines are allowed
//	n <nodes> <directed|undirected>
//	<u> <v>            (unweighted)
//
// Undirected edges appear once (u < v).
func WriteEdgeList(w io.Writer, g *Graph) error {
	kind := "undirected"
	if g.Directed() {
		kind = "directed"
	}
	if _, err := fmt.Fprintf(w, "n %d %s\n", g.N(), kind); err != nil {
		return err
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if g.Directed() || u < v {
				if _, err := fmt.Fprintf(w, "%d %d\n", u, v); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// ReadEdgeList parses the WriteEdgeList format.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var g *Graph
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		if fields[0] == "n" {
			if g != nil {
				return nil, fmt.Errorf("graphs: line %d: duplicate header", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("graphs: line %d: header wants 'n <count> <kind>'", line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graphs: line %d: bad node count %q", line, fields[1])
			}
			switch fields[2] {
			case "directed":
				g = NewGraph(n, true)
			case "undirected":
				g = NewGraph(n, false)
			default:
				return nil, fmt.Errorf("graphs: line %d: kind %q not directed/undirected", line, fields[2])
			}
			continue
		}
		if g == nil {
			return nil, fmt.Errorf("graphs: line %d: edge before header", line)
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("graphs: line %d: edge wants '<u> <v>'", line)
		}
		u, err1 := strconv.Atoi(fields[0])
		v, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil || u < 0 || v < 0 || u >= g.N() || v >= g.N() || u == v {
			return nil, fmt.Errorf("graphs: line %d: bad edge %q", line, sc.Text())
		}
		if !g.HasEdge(u, v) {
			g.AddEdge(u, v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graphs: reading edge list: %w", err)
	}
	if g == nil {
		return nil, fmt.Errorf("graphs: missing 'n <count> <kind>' header")
	}
	return g, nil
}

// WriteWeightedEdgeList serialises a weighted graph:
//
//	n <nodes> <directed|undirected> weighted
//	<u> <v> <weight>
func WriteWeightedEdgeList(w io.Writer, g *Weighted) error {
	kind := "undirected"
	if g.Directed() {
		kind = "directed"
	}
	if _, err := fmt.Fprintf(w, "n %d %s weighted\n", g.N(), kind); err != nil {
		return err
	}
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if u == v || !g.HasEdge(u, v) {
				continue
			}
			if !g.Directed() && u > v {
				continue
			}
			if _, err := fmt.Fprintf(w, "%d %d %d\n", u, v, g.Weight(u, v)); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadWeightedEdgeList parses the WriteWeightedEdgeList format.
func ReadWeightedEdgeList(r io.Reader) (*Weighted, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var g *Weighted
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		if fields[0] == "n" {
			if g != nil {
				return nil, fmt.Errorf("graphs: line %d: duplicate header", line)
			}
			if len(fields) != 4 || fields[3] != "weighted" {
				return nil, fmt.Errorf("graphs: line %d: header wants 'n <count> <kind> weighted'", line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graphs: line %d: bad node count %q", line, fields[1])
			}
			switch fields[2] {
			case "directed":
				g = NewWeighted(n, true)
			case "undirected":
				g = NewWeighted(n, false)
			default:
				return nil, fmt.Errorf("graphs: line %d: kind %q not directed/undirected", line, fields[2])
			}
			continue
		}
		if g == nil {
			return nil, fmt.Errorf("graphs: line %d: edge before header", line)
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("graphs: line %d: edge wants '<u> <v> <weight>'", line)
		}
		u, err1 := strconv.Atoi(fields[0])
		v, err2 := strconv.Atoi(fields[1])
		wt, err3 := strconv.ParseInt(fields[2], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil || u < 0 || v < 0 || u >= g.N() || v >= g.N() || u == v {
			return nil, fmt.Errorf("graphs: line %d: bad weighted edge %q", line, sc.Text())
		}
		g.SetEdge(u, v, wt)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graphs: reading edge list: %w", err)
	}
	if g == nil {
		return nil, fmt.Errorf("graphs: missing header")
	}
	return g, nil
}
