// Package graphs provides the graph model shared by all algorithms:
// bitset-adjacency graphs (directed and undirected), weighted graphs,
// seeded random and structured generators, and centralised reference
// implementations (brute-force subgraph counts, BFS girth, Floyd–Warshall)
// against which the distributed algorithms are validated.
package graphs

import "math/bits"

// Bitset is a fixed-capacity bit vector.
type Bitset []uint64

// NewBitset returns a bitset able to hold n bits.
func NewBitset(n int) Bitset {
	return make(Bitset, (n+63)/64)
}

// Get reports bit i.
func (b Bitset) Get(i int) bool {
	return b[i/64]&(1<<(i%64)) != 0
}

// Set sets bit i.
func (b Bitset) Set(i int) {
	b[i/64] |= 1 << (i % 64)
}

// Clear clears bit i.
func (b Bitset) Clear(i int) {
	b[i/64] &^= 1 << (i % 64)
}

// Count returns the number of set bits.
func (b Bitset) Count() int {
	total := 0
	for _, w := range b {
		total += bits.OnesCount64(w)
	}
	return total
}

// IntersectCount returns |b ∩ o| for equal-capacity bitsets.
func (b Bitset) IntersectCount(o Bitset) int {
	total := 0
	for i, w := range b {
		total += bits.OnesCount64(w & o[i])
	}
	return total
}

// ForEach calls f with each set bit index in increasing order.
func (b Bitset) ForEach(f func(i int)) {
	for wi, w := range b {
		for w != 0 {
			f(wi*64 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// Clone returns a copy.
func (b Bitset) Clone() Bitset {
	out := make(Bitset, len(b))
	copy(out, b)
	return out
}
