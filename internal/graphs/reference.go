package graphs

import (
	"fmt"

	"github.com/algebraic-clique/algclique/internal/matrix"
	"github.com/algebraic-clique/algclique/internal/ring"
)

// CountTrianglesRef counts triangles centrally. For undirected graphs a
// triangle is an unordered node triple inducing three edges; for directed
// graphs it is a directed 3-cycle u→v→w→u (each cycle counted once, not per
// rotation). This is the ground truth for Corollary 2.
func CountTrianglesRef(g *Graph) int64 {
	var total int64
	if !g.directed {
		for u := 0; u < g.n; u++ {
			g.adj[u].ForEach(func(v int) {
				if v > u {
					// Count common neighbours w > v to fix u < v < w once.
					g.adj[u].ForEach(func(w int) {
						if w > v && g.adj[v].Get(w) {
							total++
						}
					})
				}
			})
		}
		return total
	}
	for u := 0; u < g.n; u++ {
		g.adj[u].ForEach(func(v int) {
			g.adj[v].ForEach(func(w int) {
				if w != u && g.adj[w].Get(u) {
					total++
				}
			})
		})
	}
	return total / 3 // each directed 3-cycle found at each of its 3 rotations
}

// CountC4Ref counts 4-cycles centrally. Undirected: the number of C4
// subgraphs; directed: the number of directed 4-cycles u→x→w→y→u on four
// distinct nodes, counted once each. Implemented by brute force over node
// tuples — slow but obviously correct.
func CountC4Ref(g *Graph) int64 {
	var total int64
	if !g.directed {
		// A C4 is determined by its two diagonal pairs; each cycle has two.
		for u := 0; u < g.n; u++ {
			for w := u + 1; w < g.n; w++ {
				c := int64(g.adj[u].IntersectCount(g.adj[w]))
				total += c * (c - 1) / 2
			}
		}
		return total / 2
	}
	// Directed: ordered 4-tuples of distinct nodes forming u→x→w→y→u,
	// divided by 4 rotations of the same cycle.
	for u := 0; u < g.n; u++ {
		g.adj[u].ForEach(func(x int) {
			g.adj[x].ForEach(func(w int) {
				if w == u {
					return
				}
				g.adj[w].ForEach(func(y int) {
					if y != u && y != x && g.adj[y].Get(u) {
						total++
					}
				})
			})
		})
	}
	return total / 4
}

// CountC5Ref counts 5-cycles in an undirected graph by brute force over
// ordered node tuples (each cycle counted once after dividing by the 10
// traversals: 5 rotations × 2 directions). Ground truth for the k = 5
// trace formula; O(n⁵), test-sized inputs only.
func CountC5Ref(g *Graph) int64 {
	var total int64
	for a := 0; a < g.n; a++ {
		g.adj[a].ForEach(func(b int) {
			g.adj[b].ForEach(func(c int) {
				if c == a {
					return
				}
				g.adj[c].ForEach(func(d int) {
					if d == a || d == b {
						return
					}
					g.adj[d].ForEach(func(e int) {
						if e != a && e != b && e != c && g.adj[e].Get(a) {
							total++
						}
					})
				})
			})
		})
	}
	return total / 10
}

// CountC6Ref counts 6-cycles in an undirected graph by brute force over
// ordered walks with distinct nodes (each cycle counted 12 times: 6
// rotations × 2 directions). Ground truth for the k = 6 trace census;
// test-sized inputs only.
func CountC6Ref(g *Graph) int64 {
	var total int64
	for a := 0; a < g.n; a++ {
		g.adj[a].ForEach(func(b int) {
			g.adj[b].ForEach(func(c int) {
				if c == a {
					return
				}
				g.adj[c].ForEach(func(d int) {
					if d == a || d == b {
						return
					}
					g.adj[d].ForEach(func(e int) {
						if e == a || e == b || e == c {
							return
						}
						g.adj[e].ForEach(func(f int) {
							if f != a && f != b && f != c && f != d && g.adj[f].Get(a) {
								total++
							}
						})
					})
				})
			})
		})
	}
	return total / 12
}

// HasC4Ref reports whether the graph (undirected) contains a 4-cycle:
// equivalent to some node pair having ≥ 2 common neighbours.
func HasC4Ref(g *Graph) bool {
	for u := 0; u < g.n; u++ {
		for w := u + 1; w < g.n; w++ {
			if g.adj[u].IntersectCount(g.adj[w]) >= 2 {
				return true
			}
		}
	}
	return false
}

// HasKCycleRef reports whether the graph contains a simple cycle of length
// exactly k, by backtracking search. Works for directed and undirected
// graphs; exponential in the worst case, intended for test-sized inputs.
func HasKCycleRef(g *Graph, k int) bool {
	if k < 3 || k > g.n {
		return false
	}
	onPath := make([]bool, g.n)
	var dfs func(start, cur, depth int) bool
	dfs = func(start, cur, depth int) bool {
		if depth == k {
			return g.adj[cur].Get(start)
		}
		found := false
		g.adj[cur].ForEach(func(next int) {
			if found || onPath[next] || next < start {
				// next < start keeps the smallest cycle node first, so each
				// cycle is explored from a canonical starting point.
				return
			}
			onPath[next] = true
			if dfs(start, next, depth+1) {
				found = true
			}
			onPath[next] = false
		})
		return found
	}
	for start := 0; start < g.n; start++ {
		onPath[start] = true
		if dfs(start, start, 1) {
			return true
		}
		onPath[start] = false
	}
	return false
}

// GirthRef returns the girth of the graph and true, or (0, false) for an
// acyclic graph. Undirected girth uses the standard per-root BFS bound;
// directed girth searches the shortest directed cycle through each node.
func GirthRef(g *Graph) (int, bool) {
	best := -1
	if !g.directed {
		for root := 0; root < g.n; root++ {
			dist := make([]int, g.n)
			parent := make([]int, g.n)
			for i := range dist {
				dist[i] = -1
				parent[i] = -1
			}
			dist[root] = 0
			queue := []int{root}
			for len(queue) > 0 {
				u := queue[0]
				queue = queue[1:]
				g.adj[u].ForEach(func(v int) {
					if dist[v] == -1 {
						dist[v] = dist[u] + 1
						parent[v] = u
						queue = append(queue, v)
					} else if v != parent[u] {
						// Non-tree edge: the closed walk through the two tree
						// paths has length dist[u]+dist[v]+1 ≥ girth, and for
						// a root on a shortest cycle the bound is attained,
						// so the minimum over all roots is exact.
						c := dist[u] + dist[v] + 1
						if best == -1 || c < best {
							best = c
						}
					}
				})
			}
		}
	} else {
		for root := 0; root < g.n; root++ {
			// Shortest directed path root → u, then edge u → root.
			dist := bfsDirected(g, root)
			for u := 0; u < g.n; u++ {
				if u != root && dist[u] >= 0 && g.adj[u].Get(root) {
					c := dist[u] + 1
					if best == -1 || c < best {
						best = c
					}
				}
			}
		}
	}
	if best == -1 {
		return 0, false
	}
	return best, true
}

func bfsDirected(g *Graph, root int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[root] = 0
	queue := []int{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		g.adj[u].ForEach(func(v int) {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		})
	}
	return dist
}

// BFSAllPairs returns the unweighted distance matrix (ring.Inf where
// unreachable), the reference for Corollary 7.
func BFSAllPairs(g *Graph) *matrix.Dense[int64] {
	d := matrix.NewFilled[int64](g.n, g.n, ring.Inf)
	for root := 0; root < g.n; root++ {
		dist := bfsDirected(g, root)
		row := d.Row(root)
		for v, dv := range dist {
			if dv >= 0 {
				row[v] = int64(dv)
			}
		}
	}
	return d
}

// FloydWarshall returns exact all-pairs distances of a weighted graph, the
// reference for Corollaries 6 and 8 and Theorem 9. Negative-weight cycles
// are rejected with an error (the paper's APSP algorithms assume their
// absence; Corollary 6 allows negative weights but not negative cycles).
func FloydWarshall(g *Weighted) (*matrix.Dense[int64], error) {
	n := g.n
	d := g.w.Clone()
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := d.At(i, k)
			if ring.IsInf(dik) {
				continue
			}
			for j := 0; j < n; j++ {
				if dkj := d.At(k, j); !ring.IsInf(dkj) && dik+dkj < d.At(i, j) {
					d.Set(i, j, dik+dkj)
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		if d.At(i, i) < 0 {
			return nil, fmt.Errorf("graphs: negative cycle through node %d", i)
		}
	}
	return d, nil
}

// DiameterOf returns the weighted diameter (max finite distance) of a
// distance matrix, ignoring unreachable pairs; the second value reports
// whether all pairs are reachable.
func DiameterOf(d *matrix.Dense[int64]) (int64, bool) {
	var diam int64
	all := true
	for i := 0; i < d.Rows(); i++ {
		for j := 0; j < d.Cols(); j++ {
			v := d.At(i, j)
			if ring.IsInf(v) {
				all = false
				continue
			}
			if v > diam {
				diam = v
			}
		}
	}
	return diam, all
}
