package graphs

import (
	"fmt"
	"math/rand/v2"
)

// GNP returns an Erdős–Rényi G(n, p) graph drawn with the given seed.
func GNP(n int, p float64, directed bool, seed uint64) *Graph {
	rng := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	g := NewGraph(n, directed)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			if !directed && u > v {
				continue
			}
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// Cycle returns the n-cycle 0-1-…-(n-1)-0 (directed: oriented forward).
// n must be ≥ 3.
func Cycle(n int, directed bool) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graphs: cycle needs ≥ 3 nodes, got %d", n))
	}
	g := NewGraph(n, directed)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

// Path returns the path 0-1-…-(n-1).
func Path(n int, directed bool) *Graph {
	g := NewGraph(n, directed)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Complete returns K_n (all ordered pairs when directed).
func Complete(n int, directed bool) *Graph {
	g := NewGraph(n, directed)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && (directed || u < v) {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// CompleteBipartite returns K_{a,b} on nodes 0..a-1 and a..a+b-1.
// It contains 4-cycles whenever a, b ≥ 2 and no triangles or odd cycles.
func CompleteBipartite(a, b int) *Graph {
	g := NewGraph(a+b, false)
	for u := 0; u < a; u++ {
		for v := a; v < a+b; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

// Torus returns the rows×cols toroidal grid. Both dimensions must be ≥ 3;
// the girth is then 4.
func Torus(rows, cols int) *Graph {
	if rows < 3 || cols < 3 {
		panic(fmt.Sprintf("graphs: torus needs dimensions ≥ 3, got %d×%d", rows, cols))
	}
	g := NewGraph(rows*cols, false)
	id := func(r, c int) int { return ((r+rows)%rows)*cols + (c+cols)%cols }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.AddEdge(id(r, c), id(r+1, c))
			g.AddEdge(id(r, c), id(r, c+1))
		}
	}
	return g
}

// Petersen returns the Petersen graph: 10 nodes, 15 edges, girth 5 — a
// handy C4-free, triangle-free test instance.
func Petersen() *Graph {
	g := NewGraph(10, false)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, (i+1)%5)     // outer pentagon
		g.AddEdge(5+i, 5+(i+2)%5) // inner pentagram
		g.AddEdge(i, 5+i)         // spokes
	}
	return g
}

// Heawood returns the Heawood graph: the point–line incidence graph of the
// Fano plane. 14 nodes, 3-regular, girth 6 — the smallest (3,6)-cage and an
// extremal C4-free graph, the family behind the Lemma 14 edge bound.
// Construction: a 14-cycle plus the chords {i, i+5 mod 14} for even i.
func Heawood() *Graph {
	g := NewGraph(14, false)
	for i := 0; i < 14; i++ {
		g.AddEdge(i, (i+1)%14)
	}
	for i := 0; i < 14; i += 2 {
		if !g.HasEdge(i, (i+5)%14) {
			g.AddEdge(i, (i+5)%14)
		}
	}
	return g
}

// Tree returns a random tree on n nodes (uniform attachment), a C4- and
// cycle-free instance.
func Tree(n int, seed uint64) *Graph {
	rng := rand.New(rand.NewPCG(seed, 0xda3e39cb94b95bdb))
	g := NewGraph(n, false)
	for v := 1; v < n; v++ {
		g.AddEdge(v, rng.IntN(v))
	}
	return g
}

// PlantedCycle returns a sparse G(n, p) graph with a k-cycle planted on a
// random node subset, plus the planted cycle's nodes in order.
func PlantedCycle(n, k int, p float64, directed bool, seed uint64) (*Graph, []int) {
	if k < 3 || k > n {
		panic(fmt.Sprintf("graphs: cannot plant %d-cycle in %d nodes", k, n))
	}
	g := GNP(n, p, directed, seed)
	rng := rand.New(rand.NewPCG(seed, 0xc2b2ae3d27d4eb4f))
	perm := rng.Perm(n)[:k]
	for i := 0; i < k; i++ {
		u, v := perm[i], perm[(i+1)%k]
		if !g.HasEdge(u, v) {
			g.AddEdge(u, v)
		}
	}
	return g, perm
}

// PreferentialAttachment returns a skew-degree undirected graph: each new
// node attaches m edges to earlier nodes chosen proportionally to degree+1.
func PreferentialAttachment(n, m int, seed uint64) *Graph {
	if m < 1 {
		panic("graphs: preferential attachment needs m ≥ 1")
	}
	rng := rand.New(rand.NewPCG(seed, 0x165667b19e3779f9))
	g := NewGraph(n, false)
	deg := make([]int, n)
	var totalDeg int
	for v := 1; v < n; v++ {
		edges := m
		if edges > v {
			edges = v
		}
		for e := 0; e < edges; e++ {
			// Sample target ∝ degree+1 among nodes [0, v).
			t := rng.IntN(totalDeg + v)
			target := -1
			acc := 0
			for u := 0; u < v; u++ {
				acc += deg[u] + 1
				if t < acc {
					target = u
					break
				}
			}
			if target >= 0 && !g.HasEdge(v, target) {
				g.AddEdge(v, target)
				deg[v]++
				deg[target]++
				totalDeg += 2
			}
		}
	}
	return g
}

// RandomWeighted returns a weighted G(n, p) graph with integer weights
// drawn uniformly from [1, maxW].
func RandomWeighted(n int, p float64, maxW int64, directed bool, seed uint64) *Weighted {
	if maxW < 1 {
		panic("graphs: maxW must be ≥ 1")
	}
	rng := rand.New(rand.NewPCG(seed, 0x27d4eb2f165667c5))
	g := NewWeighted(n, directed)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v || (!directed && u > v) {
				continue
			}
			if rng.Float64() < p {
				g.SetEdge(u, v, 1+rng.Int64N(maxW))
			}
		}
	}
	return g
}

// RandomConnectedWeighted returns a weighted graph guaranteed connected
// (strongly connected when directed) by overlaying a random Hamiltonian
// cycle on RandomWeighted.
func RandomConnectedWeighted(n int, p float64, maxW int64, directed bool, seed uint64) *Weighted {
	g := RandomWeighted(n, p, maxW, directed, seed)
	rng := rand.New(rand.NewPCG(seed, 0x85ebca77c2b2ae63))
	perm := rng.Perm(n)
	for i := 0; i < n; i++ {
		u, v := perm[i], perm[(i+1)%n]
		if !g.HasEdge(u, v) {
			g.SetEdge(u, v, 1+rng.Int64N(maxW))
		}
	}
	return g
}
