package graphs_test

import (
	"bytes"
	"math/rand/v2"
	"strings"
	"testing"

	"github.com/algebraic-clique/algclique/internal/graphs"
)

func TestEdgeListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for trial := 0; trial < 10; trial++ {
		g := graphs.GNP(20, 0.2, rng.IntN(2) == 0, rng.Uint64())
		var buf bytes.Buffer
		if err := graphs.WriteEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		back, err := graphs.ReadEdgeList(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if back.N() != g.N() || back.Directed() != g.Directed() {
			t.Fatal("header mismatch")
		}
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				if g.HasEdge(u, v) != back.HasEdge(u, v) {
					t.Fatalf("edge (%d,%d) mismatch", u, v)
				}
			}
		}
	}
}

func TestWeightedEdgeListRoundTrip(t *testing.T) {
	g := graphs.RandomWeighted(15, 0.3, 99, true, 7)
	var buf bytes.Buffer
	if err := graphs.WriteWeightedEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := graphs.ReadWeightedEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if g.Weight(u, v) != back.Weight(u, v) {
				t.Fatalf("weight (%d,%d) mismatch", u, v)
			}
		}
	}
}

func TestReadEdgeListCommentsAndErrors(t *testing.T) {
	good := "# a comment\nn 4 undirected\n0 1\n\n2 3\n"
	g, err := graphs.ReadEdgeList(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if g.EdgeCount() != 2 || !g.HasEdge(1, 0) {
		t.Error("parsed graph wrong")
	}
	bad := []string{
		"",                             // no header
		"0 1\n",                        // edge before header
		"n 4\n",                        // short header
		"n -1 undirected\n",            // bad count
		"n 4 sideways\n",               // bad kind
		"n 4 undirected\n0\n",          // short edge
		"n 4 undirected\n0 9\n",        // out of range
		"n 4 undirected\n1 1\n",        // self loop
		"n 2 directed\nn 2 directed\n", // duplicate header
	}
	for _, s := range bad {
		if _, err := graphs.ReadEdgeList(strings.NewReader(s)); err == nil {
			t.Errorf("accepted malformed input %q", s)
		}
	}
	badW := []string{
		"n 4 undirected\n0 1 5\n",          // missing 'weighted'
		"n 4 undirected weighted\n0 1\n",   // missing weight
		"n 4 undirected weighted\n0 1 x\n", // bad weight
	}
	for _, s := range badW {
		if _, err := graphs.ReadWeightedEdgeList(strings.NewReader(s)); err == nil {
			t.Errorf("accepted malformed weighted input %q", s)
		}
	}
}

func TestReadEdgeListDeduplicates(t *testing.T) {
	g, err := graphs.ReadEdgeList(strings.NewReader("n 3 undirected\n0 1\n1 0\n0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.EdgeCount() != 1 {
		t.Errorf("EdgeCount = %d, want 1", g.EdgeCount())
	}
}
