package graphs

import (
	"fmt"

	"github.com/algebraic-clique/algclique/internal/matrix"
	"github.com/algebraic-clique/algclique/internal/ring"
)

// Graph is an unweighted simple graph on nodes 0..n-1 with bitset adjacency
// rows. Undirected graphs store each edge in both rows. Self-loops are not
// allowed (the paper's cycle and distance problems assume loopless graphs;
// directed girth handles loops separately at the API level).
type Graph struct {
	n        int
	directed bool
	adj      []Bitset
}

// NewGraph returns an empty graph.
func NewGraph(n int, directed bool) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graphs: negative size %d", n))
	}
	g := &Graph{n: n, directed: directed, adj: make([]Bitset, n)}
	for i := range g.adj {
		g.adj[i] = NewBitset(n)
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// AddEdge inserts edge (u, v); for undirected graphs both directions are
// stored. Self-loops panic.
func (g *Graph) AddEdge(u, v int) {
	g.check(u)
	g.check(v)
	if u == v {
		panic(fmt.Sprintf("graphs: self-loop at %d", u))
	}
	g.adj[u].Set(v)
	if !g.directed {
		g.adj[v].Set(u)
	}
}

// HasEdge reports whether edge (u, v) exists.
func (g *Graph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	return g.adj[u].Get(v)
}

// Row returns node v's adjacency bitset (live; treat as read-only).
func (g *Graph) Row(v int) Bitset {
	g.check(v)
	return g.adj[v]
}

// OutDegree returns the out-degree (degree, when undirected) of v.
func (g *Graph) OutDegree(v int) int {
	g.check(v)
	return g.adj[v].Count()
}

// Neighbors returns the out-neighbours of v in increasing order.
func (g *Graph) Neighbors(v int) []int {
	g.check(v)
	out := make([]int, 0, g.adj[v].Count())
	g.adj[v].ForEach(func(i int) { out = append(out, i) })
	return out
}

// EdgeCount returns the number of edges (each undirected edge counted once).
func (g *Graph) EdgeCount() int {
	total := 0
	for v := 0; v < g.n; v++ {
		total += g.adj[v].Count()
	}
	if !g.directed {
		total /= 2
	}
	return total
}

// MutualCount returns δ(v): the number of u with both (u,v) and (v,u)
// present. For undirected graphs this is simply the degree. Used by the
// directed 4-cycle counting formula (§3.1).
func (g *Graph) MutualCount(v int) int {
	g.check(v)
	count := 0
	g.adj[v].ForEach(func(u int) {
		if g.adj[u].Get(v) {
			count++
		}
	})
	return count
}

// AdjacencyInt returns the adjacency matrix over the integers (0/1
// entries), with both orientations set for undirected graphs, as the paper
// defines in §3.1.
func (g *Graph) AdjacencyInt() *matrix.Dense[int64] {
	a := matrix.New[int64](g.n, g.n)
	for v := 0; v < g.n; v++ {
		row := a.Row(v)
		g.adj[v].ForEach(func(u int) { row[u] = 1 })
	}
	return a
}

// AdjacencyBool returns the Boolean adjacency matrix.
func (g *Graph) AdjacencyBool() *matrix.Dense[bool] {
	a := matrix.New[bool](g.n, g.n)
	for v := 0; v < g.n; v++ {
		row := a.Row(v)
		g.adj[v].ForEach(func(u int) { row[u] = true })
	}
	return a
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	out := &Graph{n: g.n, directed: g.directed, adj: make([]Bitset, g.n)}
	for i := range g.adj {
		out.adj[i] = g.adj[i].Clone()
	}
	return out
}

func (g *Graph) check(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("graphs: node %d out of range [0, %d)", v, g.n))
	}
}

// Weighted is a weighted graph represented by its weight matrix over the
// min-plus convention: W[u][u] = 0, W[u][v] = edge weight, ring.Inf where
// no edge exists (§3.3 of the paper).
type Weighted struct {
	n        int
	directed bool
	w        *matrix.Dense[int64]
}

// NewWeighted returns a weighted graph with no edges.
func NewWeighted(n int, directed bool) *Weighted {
	if n < 0 {
		panic(fmt.Sprintf("graphs: negative size %d", n))
	}
	w := matrix.NewFilled[int64](n, n, ring.Inf)
	for i := 0; i < n; i++ {
		w.Set(i, i, 0)
	}
	return &Weighted{n: n, directed: directed, w: w}
}

// N returns the number of nodes.
func (g *Weighted) N() int { return g.n }

// Directed reports whether the graph is directed.
func (g *Weighted) Directed() bool { return g.directed }

// SetEdge sets the weight of edge (u, v); undirected graphs set both
// directions. Self-loops panic, as do negative "infinite" weights.
func (g *Weighted) SetEdge(u, v int, weight int64) {
	if u == v {
		panic(fmt.Sprintf("graphs: self-loop at %d", u))
	}
	g.w.Set(u, v, weight)
	if !g.directed {
		g.w.Set(v, u, weight)
	}
}

// Weight returns W(u, v) (ring.Inf when absent, 0 on the diagonal).
func (g *Weighted) Weight(u, v int) int64 { return g.w.At(u, v) }

// HasEdge reports whether a (finite-weight) edge (u, v) exists.
func (g *Weighted) HasEdge(u, v int) bool {
	return u != v && !ring.IsInf(g.w.At(u, v))
}

// Matrix returns the weight matrix (live; treat as read-only).
func (g *Weighted) Matrix() *matrix.Dense[int64] { return g.w }

// MaxWeight returns the largest finite edge weight (0 for edgeless graphs).
func (g *Weighted) MaxWeight() int64 {
	var max int64
	for u := 0; u < g.n; u++ {
		for v := 0; v < g.n; v++ {
			if u != v && g.HasEdge(u, v) && g.w.At(u, v) > max {
				max = g.w.At(u, v)
			}
		}
	}
	return max
}

// Unweighted returns the underlying unweighted graph (edges with any finite
// weight).
func (g *Weighted) Unweighted() *Graph {
	out := NewGraph(g.n, g.directed)
	for u := 0; u < g.n; u++ {
		for v := 0; v < g.n; v++ {
			if u != v && g.HasEdge(u, v) {
				if g.directed || u < v {
					out.AddEdge(u, v)
				}
			}
		}
	}
	return out
}

// UnitWeights lifts an unweighted graph to a weighted one with all edge
// weights 1.
func UnitWeights(g *Graph) *Weighted {
	out := NewWeighted(g.n, g.directed)
	for u := 0; u < g.n; u++ {
		g.adj[u].ForEach(func(v int) {
			out.w.Set(u, v, 1)
		})
	}
	return out
}
