package graphs_test

import (
	"math/rand/v2"
	"testing"

	"github.com/algebraic-clique/algclique/internal/graphs"
	"github.com/algebraic-clique/algclique/internal/matrix"
	"github.com/algebraic-clique/algclique/internal/ring"
)

func TestBitsetBasics(t *testing.T) {
	b := graphs.NewBitset(130)
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if !b.Get(0) || !b.Get(64) || !b.Get(129) || b.Get(1) {
		t.Error("Get/Set broken across word boundaries")
	}
	if b.Count() != 3 {
		t.Errorf("Count = %d, want 3", b.Count())
	}
	b.Clear(64)
	if b.Get(64) || b.Count() != 2 {
		t.Error("Clear broken")
	}
	var seen []int
	b.ForEach(func(i int) { seen = append(seen, i) })
	if len(seen) != 2 || seen[0] != 0 || seen[1] != 129 {
		t.Errorf("ForEach order = %v", seen)
	}
	c := b.Clone()
	c.Set(7)
	if b.Get(7) {
		t.Error("Clone shares storage")
	}
	o := graphs.NewBitset(130)
	o.Set(129)
	o.Set(3)
	if b.IntersectCount(o) != 1 {
		t.Error("IntersectCount wrong")
	}
}

func TestGraphBasicsUndirected(t *testing.T) {
	g := graphs.NewGraph(5, false)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if !g.HasEdge(1, 0) || !g.HasEdge(0, 1) {
		t.Error("undirected edge not symmetric")
	}
	if g.EdgeCount() != 2 {
		t.Errorf("EdgeCount = %d, want 2", g.EdgeCount())
	}
	if g.OutDegree(1) != 2 || g.OutDegree(4) != 0 {
		t.Error("degrees wrong")
	}
	if n := g.Neighbors(1); len(n) != 2 || n[0] != 0 || n[1] != 2 {
		t.Errorf("Neighbors(1) = %v", n)
	}
	if g.MutualCount(1) != 2 {
		t.Error("undirected MutualCount should equal degree")
	}
}

func TestGraphBasicsDirected(t *testing.T) {
	g := graphs.NewGraph(4, true)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(2, 3)
	if g.HasEdge(3, 2) {
		t.Error("directed edge should not be symmetric")
	}
	if g.EdgeCount() != 3 {
		t.Errorf("EdgeCount = %d, want 3", g.EdgeCount())
	}
	if g.MutualCount(0) != 1 || g.MutualCount(2) != 0 {
		t.Error("MutualCount wrong")
	}
}

func TestAdjacencyMatrices(t *testing.T) {
	g := graphs.Cycle(4, false)
	a := g.AdjacencyInt()
	b := g.AdjacencyBool()
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if (a.At(i, j) == 1) != g.HasEdge(i, j) || b.At(i, j) != g.HasEdge(i, j) {
				t.Fatalf("adjacency mismatch at (%d,%d)", i, j)
			}
		}
	}
	// tr(A^3)/6 = triangle count = 0 for C4; tr(A^2) = 2m.
	r := ring.Int64{}
	a2 := matrix.Mul[int64](r, a, a)
	if matrix.Trace[int64](r, a2) != int64(2*g.EdgeCount()) {
		t.Error("tr(A²) != 2m")
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("self-loop accepted")
		}
	}()
	graphs.NewGraph(3, true).AddEdge(1, 1)
}

func TestGNPDeterministicAndSane(t *testing.T) {
	g1 := graphs.GNP(40, 0.3, false, 7)
	g2 := graphs.GNP(40, 0.3, false, 7)
	g3 := graphs.GNP(40, 0.3, false, 8)
	if g1.EdgeCount() != g2.EdgeCount() {
		t.Error("same seed produced different graphs")
	}
	same := true
	for u := 0; u < 40 && same; u++ {
		for v := 0; v < 40; v++ {
			if g1.HasEdge(u, v) != g2.HasEdge(u, v) {
				same = false
				break
			}
		}
	}
	if !same {
		t.Error("same seed produced different edges")
	}
	if g1.EdgeCount() == g3.EdgeCount() && g1.EdgeCount() > 0 {
		// Different seeds *can* coincide in count; check edges differ.
		diff := false
		for u := 0; u < 40 && !diff; u++ {
			for v := 0; v < 40; v++ {
				if g1.HasEdge(u, v) != g3.HasEdge(u, v) {
					diff = true
					break
				}
			}
		}
		if !diff {
			t.Error("different seeds produced identical graphs")
		}
	}
	m := g1.EdgeCount()
	max := 40 * 39 / 2
	if m < max/6 || m > max/2 {
		t.Errorf("G(40, .3) has %d edges out of %d, implausible", m, max)
	}
}

func TestStructuredGenerators(t *testing.T) {
	if g := graphs.Cycle(5, false); g.EdgeCount() != 5 || g.OutDegree(0) != 2 {
		t.Error("cycle malformed")
	}
	if g := graphs.Path(5, false); g.EdgeCount() != 4 {
		t.Error("path malformed")
	}
	if g := graphs.Complete(6, false); g.EdgeCount() != 15 {
		t.Error("K6 malformed")
	}
	if g := graphs.Complete(4, true); g.EdgeCount() != 12 {
		t.Error("directed K4 malformed")
	}
	if g := graphs.CompleteBipartite(3, 4); g.EdgeCount() != 12 || graphs.CountTrianglesRef(g) != 0 {
		t.Error("K_{3,4} malformed")
	}
	tor := graphs.Torus(3, 4)
	if tor.EdgeCount() != 2*12 {
		t.Errorf("torus edges = %d, want 24", tor.EdgeCount())
	}
	for v := 0; v < tor.N(); v++ {
		if tor.OutDegree(v) != 4 {
			t.Fatalf("torus node %d degree %d", v, tor.OutDegree(v))
		}
	}
	pet := graphs.Petersen()
	if pet.EdgeCount() != 15 || pet.N() != 10 {
		t.Error("Petersen malformed")
	}
	for v := 0; v < 10; v++ {
		if pet.OutDegree(v) != 3 {
			t.Error("Petersen is 3-regular")
		}
	}
	tree := graphs.Tree(30, 5)
	if tree.EdgeCount() != 29 {
		t.Error("tree edge count")
	}
	if _, ok := graphs.GirthRef(tree); ok {
		t.Error("tree has no cycle")
	}
}

func TestKnownCountsAndGirths(t *testing.T) {
	cases := []struct {
		name      string
		g         *graphs.Graph
		triangles int64
		c4        int64
		girth     int
		hasGirth  bool
	}{
		{"K4", graphs.Complete(4, false), 4, 3, 3, true},
		{"K5", graphs.Complete(5, false), 10, 15, 3, true},
		{"C4", graphs.Cycle(4, false), 0, 1, 4, true},
		{"C5", graphs.Cycle(5, false), 0, 0, 5, true},
		{"C7", graphs.Cycle(7, false), 0, 0, 7, true},
		{"K23", graphs.CompleteBipartite(2, 3), 0, 3, 4, true},
		{"K33", graphs.CompleteBipartite(3, 3), 0, 9, 4, true},
		{"Petersen", graphs.Petersen(), 0, 0, 5, true},
		{"Torus34", graphs.Torus(3, 4), 0, 0, 3, true}, // 3-dim wraps create C3? no: see below
		{"Path", graphs.Path(6, false), 0, 0, 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.name == "Torus34" {
				// A 3-row torus has a wrap-around 3-cycle in each column
				// direction: girth 3, no triangles? Wrap of length 3 IS a
				// triangle (v, v+cols, v+2cols). Skip the fixed expectation
				// and just cross-check the two references.
				g, ok := graphs.GirthRef(tc.g)
				if !ok || g != 3 {
					t.Fatalf("torus(3,4) girth = %d, %v; want 3 (column wrap)", g, ok)
				}
				if graphs.CountTrianglesRef(tc.g) != 4 {
					t.Fatalf("torus(3,4) should have one triangle per column, got %d",
						graphs.CountTrianglesRef(tc.g))
				}
				return
			}
			if got := graphs.CountTrianglesRef(tc.g); got != tc.triangles {
				t.Errorf("triangles = %d, want %d", got, tc.triangles)
			}
			if got := graphs.CountC4Ref(tc.g); got != tc.c4 {
				t.Errorf("C4s = %d, want %d", got, tc.c4)
			}
			g, ok := graphs.GirthRef(tc.g)
			if ok != tc.hasGirth || (ok && g != tc.girth) {
				t.Errorf("girth = (%d, %v), want (%d, %v)", g, ok, tc.girth, tc.hasGirth)
			}
			if graphs.HasC4Ref(tc.g) != (tc.c4 > 0) {
				t.Error("HasC4Ref inconsistent with CountC4Ref")
			}
		})
	}
}

func TestDirectedTriangleAndC4Counts(t *testing.T) {
	// Directed 3-cycle.
	g := graphs.Cycle(3, true)
	if graphs.CountTrianglesRef(g) != 1 {
		t.Error("directed C3 should count 1 triangle")
	}
	// Orientation without a directed cycle.
	dag := graphs.NewGraph(3, true)
	dag.AddEdge(0, 1)
	dag.AddEdge(1, 2)
	dag.AddEdge(0, 2)
	if graphs.CountTrianglesRef(dag) != 0 {
		t.Error("transitive triangle is not a directed 3-cycle")
	}
	// Directed 4-cycle.
	c4 := graphs.Cycle(4, true)
	if graphs.CountC4Ref(c4) != 1 {
		t.Error("directed C4 should count 1")
	}
	if g, ok := graphs.GirthRef(c4); !ok || g != 4 {
		t.Errorf("directed C4 girth = %d", g)
	}
	// Two antiparallel edges form a directed 2-cycle.
	two := graphs.NewGraph(2, true)
	two.AddEdge(0, 1)
	two.AddEdge(1, 0)
	if g, ok := graphs.GirthRef(two); !ok || g != 2 {
		t.Errorf("antiparallel pair girth = %d, want 2", g)
	}
}

func TestHasKCycleRef(t *testing.T) {
	pet := graphs.Petersen()
	for k, want := range map[int]bool{3: false, 4: false, 5: true, 6: true, 8: true, 9: true} {
		if got := graphs.HasKCycleRef(pet, k); got != want {
			t.Errorf("Petersen has %d-cycle = %v, want %v", k, got, want)
		}
	}
	c6 := graphs.Cycle(6, false)
	for k, want := range map[int]bool{3: false, 4: false, 5: false, 6: true} {
		if got := graphs.HasKCycleRef(c6, k); got != want {
			t.Errorf("C6 has %d-cycle = %v, want %v", k, got, want)
		}
	}
	dir := graphs.Cycle(5, true)
	if !graphs.HasKCycleRef(dir, 5) || graphs.HasKCycleRef(dir, 3) {
		t.Error("directed 5-cycle detection wrong")
	}
}

func TestPlantedCycle(t *testing.T) {
	g, nodes := graphs.PlantedCycle(30, 6, 0.02, false, 11)
	if len(nodes) != 6 {
		t.Fatal("planted cycle node list wrong")
	}
	for i := range nodes {
		if !g.HasEdge(nodes[i], nodes[(i+1)%6]) {
			t.Fatal("planted edge missing")
		}
	}
	if !graphs.HasKCycleRef(g, 6) {
		t.Error("planted 6-cycle not found by reference")
	}
}

func TestWeightedBasics(t *testing.T) {
	g := graphs.NewWeighted(4, false)
	g.SetEdge(0, 1, 5)
	g.SetEdge(1, 2, 7)
	if g.Weight(1, 0) != 5 {
		t.Error("undirected weight not symmetric")
	}
	if !g.HasEdge(0, 1) || g.HasEdge(0, 2) {
		t.Error("HasEdge wrong")
	}
	if g.Weight(3, 3) != 0 {
		t.Error("diagonal must be 0")
	}
	if !ring.IsInf(g.Weight(0, 3)) {
		t.Error("missing edge must be Inf")
	}
	if g.MaxWeight() != 7 {
		t.Errorf("MaxWeight = %d", g.MaxWeight())
	}
	u := g.Unweighted()
	if u.EdgeCount() != 2 || !u.HasEdge(2, 1) {
		t.Error("Unweighted conversion wrong")
	}
	w2 := graphs.UnitWeights(graphs.Cycle(5, false))
	if w2.Weight(0, 1) != 1 || w2.MaxWeight() != 1 {
		t.Error("UnitWeights wrong")
	}
}

func TestFloydWarshallOnKnownGraph(t *testing.T) {
	g := graphs.NewWeighted(4, true)
	g.SetEdge(0, 1, 1)
	g.SetEdge(1, 2, 2)
	g.SetEdge(2, 3, 3)
	g.SetEdge(0, 3, 10)
	d, err := graphs.FloydWarshall(g)
	if err != nil {
		t.Fatal(err)
	}
	if d.At(0, 3) != 6 || d.At(0, 2) != 3 || !ring.IsInf(d.At(3, 0)) {
		t.Errorf("distances wrong: d(0,3)=%d d(0,2)=%d", d.At(0, 3), d.At(0, 2))
	}
	diam, all := graphs.DiameterOf(d)
	if all {
		t.Error("graph is not strongly connected")
	}
	if diam != 6 {
		t.Errorf("diameter = %d, want 6", diam)
	}
}

func TestFloydWarshallNegativeCycle(t *testing.T) {
	g := graphs.NewWeighted(3, true)
	g.SetEdge(0, 1, 1)
	g.SetEdge(1, 0, -2)
	if _, err := graphs.FloydWarshall(g); err == nil {
		t.Error("negative cycle not detected")
	}
}

func TestBFSAllPairsMatchesFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 13))
	for trial := 0; trial < 5; trial++ {
		g := graphs.GNP(20, 0.15, rng.IntN(2) == 0, rng.Uint64())
		bfs := graphs.BFSAllPairs(g)
		fw, err := graphs.FloydWarshall(graphs.UnitWeights(g))
		if err != nil {
			t.Fatal(err)
		}
		if !matrix.Equal[int64](ring.MinPlus{}, bfs, fw) {
			t.Fatal("BFS and Floyd–Warshall disagree on unit weights")
		}
	}
}

func TestRandomWeightedGenerators(t *testing.T) {
	g := graphs.RandomWeighted(30, 0.2, 50, true, 3)
	if g.MaxWeight() > 50 || g.MaxWeight() < 1 {
		t.Errorf("weights out of range: max %d", g.MaxWeight())
	}
	c := graphs.RandomConnectedWeighted(25, 0.05, 10, true, 4)
	d, err := graphs.FloydWarshall(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, all := graphs.DiameterOf(d); !all {
		t.Error("RandomConnectedWeighted not strongly connected")
	}
}

func TestPreferentialAttachmentSkew(t *testing.T) {
	g := graphs.PreferentialAttachment(200, 2, 9)
	if g.EdgeCount() < 150 {
		t.Errorf("PA graph too sparse: %d edges", g.EdgeCount())
	}
	maxDeg := 0
	for v := 0; v < g.N(); v++ {
		if d := g.OutDegree(v); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 8 {
		t.Errorf("PA graph max degree %d; expected a skewed hub", maxDeg)
	}
}

func TestCountC4RefAgainstBruteForce(t *testing.T) {
	// Cross-validate the pair-counting formula against literal 4-tuple
	// enumeration on small random graphs.
	rng := rand.New(rand.NewPCG(17, 17))
	for trial := 0; trial < 10; trial++ {
		g := graphs.GNP(10, 0.4, false, rng.Uint64())
		var brute int64
		n := g.N()
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				for c := 0; c < n; c++ {
					for d := 0; d < n; d++ {
						if a == b || a == c || a == d || b == c || b == d || c == d {
							continue
						}
						if g.HasEdge(a, b) && g.HasEdge(b, c) && g.HasEdge(c, d) && g.HasEdge(d, a) {
							brute++
						}
					}
				}
			}
		}
		brute /= 8 // 4 rotations × 2 reflections
		if got := graphs.CountC4Ref(g); got != brute {
			t.Fatalf("CountC4Ref = %d, brute force = %d", got, brute)
		}
	}
}

func TestGirthRefOnRandomGraphsAgainstKCycle(t *testing.T) {
	rng := rand.New(rand.NewPCG(19, 19))
	for trial := 0; trial < 10; trial++ {
		g := graphs.GNP(12, 0.2, false, rng.Uint64())
		girth, ok := graphs.GirthRef(g)
		if !ok {
			for k := 3; k <= 12; k++ {
				if graphs.HasKCycleRef(g, k) {
					t.Fatal("GirthRef says acyclic but a cycle exists")
				}
			}
			continue
		}
		if graphs.HasKCycleRef(g, girth) == false {
			t.Fatalf("girth %d cycle not found by HasKCycleRef", girth)
		}
		for k := 3; k < girth; k++ {
			if graphs.HasKCycleRef(g, k) {
				t.Fatalf("cycle of length %d < girth %d exists", k, girth)
			}
		}
	}
}
