// Package subgraph implements the paper's subgraph detection and counting
// algorithms (§3.1):
//
//   - CountTriangles, CountC4: trace-formula counting via one distributed
//     matrix product plus O(1) rounds of local exchanges (Corollary 2).
//   - DetectKCycleColourful / DetectKCycle: colour-coding detection of
//     k-cycles (Lemma 11, Theorem 3).
//   - DetectC4: the novel constant-round 4-cycle detection (Theorem 4),
//     including the Lemma 12 tile allocation.
package subgraph

import (
	"fmt"

	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/graphs"
)

// adjacencyRows distributes the adjacency matrix one row per node: node v's
// local input, as the model prescribes.
func adjacencyRows(g *graphs.Graph) *ccmm.RowMat[int64] {
	n := g.N()
	out := &ccmm.RowMat[int64]{Rows: make([][]int64, n)}
	for v := 0; v < n; v++ {
		row := make([]int64, n)
		g.Row(v).ForEach(func(u int) { row[u] = 1 })
		out.Rows[v] = row
	}
	return out
}

// columnExchange gives every node v the v-th column of a distributed
// matrix: each node w sends rows[w][v] to v. One word per ordered pair —
// exactly one round. On the direct transport the round is charged
// analytically and each node reads its column in place.
func columnExchange(net *clique.Network, rows [][]int64) [][]int64 {
	n := net.N()
	col := make([][]int64, n)
	if net.Transport() != clique.TransportWire {
		// One word per ordered pair: max non-self link load 1.
		if n > 1 {
			net.FlushAnalytic(1, int64(n)*int64(n-1))
		} else {
			net.Flush()
		}
		net.ForEach(func(v int) {
			col[v] = make([]int64, n)
			for w := 0; w < n; w++ {
				col[v][w] = rows[w][v]
			}
		})
		return col
	}
	for w := 0; w < n; w++ {
		for v := 0; v < n; v++ {
			net.Send(w, v, clique.Word(rows[w][v]))
		}
	}
	mail := net.Flush()
	for v := 0; v < n; v++ {
		col[v] = make([]int64, n)
		for w := 0; w < n; w++ {
			col[v][w] = int64(mail.From(v, w)[0])
		}
	}
	return col
}

// sumBroadcast sums per-node partial values via a single broadcast round.
func sumBroadcast(net *clique.Network, partial []int64) int64 {
	n := net.N()
	vals := make([]clique.Word, n)
	for v := 0; v < n; v++ {
		vals[v] = clique.Word(partial[v])
	}
	got := net.BroadcastWord(vals)
	var total int64
	for _, w := range got {
		total += int64(w)
	}
	return total
}

// orBroadcast ORs per-node flags via a single broadcast round.
func orBroadcast(net *clique.Network, flags []bool) bool {
	n := net.N()
	vals := make([]clique.Word, n)
	for v := 0; v < n; v++ {
		if flags[v] {
			vals[v] = 1
		}
	}
	got := net.BroadcastWord(vals)
	for _, w := range got {
		if w != 0 {
			return true
		}
	}
	return false
}

func checkGraphSize(net *clique.Network, g *graphs.Graph) error {
	if g.N() != net.N() {
		return fmt.Errorf("subgraph: graph has %d nodes on an %d-node clique: %w",
			g.N(), net.N(), ccmm.ErrSize)
	}
	return nil
}
