package subgraph

import (
	"fmt"

	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/graphs"
	"github.com/algebraic-clique/algclique/internal/routing"
)

// Tile is the square A(y)×B(y) allocated to node y by Lemma 12. The
// allocator itself lives in ccmm (tiles.go), where the sparse matmul
// engine generalises it to arbitrary workload weights; this package keeps
// the degree-driven entry point below.
type Tile = ccmm.Tile

// AllocateTiles implements Lemma 12: given all degrees (globally known
// after a one-round broadcast), every node deterministically computes
// disjoint tiles A(y)×B(y) ⊆ [k]×[k] with side f(y) = max(1, 2^⌊log₂
// (deg(y)/4)⌋) for every y with deg(y) ≥ 1, where k is n rounded down to a
// power of two. Placement is a buddy-style quadtree fill in decreasing size
// order, which succeeds whenever Σ f(y)² ≤ k² — guaranteed by the phase-1
// degree bound Σ deg(y)² < 2n² for n ≥ 8 (see package doc for the deg ≤ 3
// adjustment versus the paper). It delegates to ccmm.AllocateTiles with
// weights w(y) = deg(y)², which reproduces these sides bit for bit
// (√(deg²) = deg exactly).
func AllocateTiles(degs []int, n int) ([]Tile, error) {
	fs := make([]int, len(degs))
	for y, d := range degs {
		fs[y] = ccmm.TileSideFor(int64(d) * int64(d))
	}
	return ccmm.AllocateTiles(fs, n)
}

// chunk returns the i-th of f near-equal contiguous pieces of xs, each of
// size ≤ ⌈len(xs)/f⌉ ≤ 8 for Lemma 12 tiles.
func chunk(xs []int, f, i int) []int {
	per := (len(xs) + f - 1) / f
	lo := i * per
	if lo >= len(xs) {
		return nil
	}
	hi := lo + per
	if hi > len(xs) {
		hi = len(xs)
	}
	return xs[lo:hi]
}

// DetectC4 reports whether an undirected graph contains a 4-cycle in O(1)
// rounds (Theorem 4). Phase 1 broadcasts degrees; a node x with
// |P(x,∗,∗)| = Σ_{y∈N(x)} deg(y) ≥ 2n−1 certifies a 4-cycle by pigeonhole.
// Otherwise Σ_y deg(y)² < 2n², the Lemma 12 tiles exist, and the 2-walk set
// P(∗,∗,∗) is repartitioned via the tiles so every node b holds W(b) with
// |W(b)| ≤ 64n (Lemma 13); a final routed gather hands every x its own
// 2-walks P(x,∗,∗) (≤ 2n−2 of them), where a repeated endpoint z ≠ x
// reveals the cycle.
func DetectC4(net *clique.Network, g *graphs.Graph) (bool, error) {
	if err := checkGraphSize(net, g); err != nil {
		return false, err
	}
	if g.Directed() {
		return false, fmt.Errorf("subgraph: DetectC4 requires an undirected graph: %w", ccmm.ErrSize)
	}
	n := net.N()
	if n < 8 {
		return detectC4Small(net, g)
	}

	// Phase 1: degree broadcast and the pigeonhole shortcut.
	net.Phase("c4detect/degrees")
	degWords := make([]clique.Word, n)
	for v := 0; v < n; v++ {
		degWords[v] = clique.Word(g.OutDegree(v))
	}
	bc := net.BroadcastWord(degWords)
	degs := make([]int, n)
	for v := 0; v < n; v++ {
		degs[v] = int(bc[v])
	}
	flags := make([]bool, n)
	net.ForEach(func(x int) {
		var walks int64
		g.Row(x).ForEach(func(y int) { walks += int64(degs[y]) })
		flags[x] = walks >= int64(2*n-1)
	})
	if orBroadcast(net, flags) {
		return true, nil
	}

	// Phase 2: every node computes the same tile allocation locally.
	tiles, err := AllocateTiles(degs, n)
	if err != nil {
		return false, err
	}
	// Reverse indices: which tiles have node a in A(y) / node b in B(y).
	inA := make([][]int, n)
	inB := make([][]int, n)
	for _, t := range tiles {
		if !t.Allocated {
			continue
		}
		for _, a := range t.A() {
			inA[a] = append(inA[a], t.Y)
		}
		for _, b := range t.B() {
			inB[b] = append(inB[b], t.Y)
		}
	}

	// Step 1: y sends NA(y,a) to each a ∈ A(y); ≤ 8 words per link.
	net.Phase("c4detect/spread")
	for _, t := range tiles {
		if !t.Allocated {
			continue
		}
		nbrs := g.Neighbors(t.Y)
		for i, a := range t.A() {
			for _, x := range chunk(nbrs, t.F, i) {
				net.Send(t.Y, a, clique.Word(x))
			}
		}
	}
	mailA := net.Flush()

	// Step 2: a forwards NA(y,a) to every b ∈ B(y); the tile (a,b) belongs
	// to is unique by disjointness, so ≤ 8 words per link again.
	for a := 0; a < n; a++ {
		for _, y := range inA[a] {
			part := mailA.From(a, y)
			for _, b := range tiles[y].B() {
				net.SendVec(a, b, part)
			}
		}
	}
	mailB := net.Flush()

	// Local: b reassembles N(y) for each tile with b ∈ B(y), forms
	// W(y,b) = N(y) × {y} × NB(y,b), and addresses each walk (x,y,z) to x.
	net.Phase("c4detect/gather")
	msgs := make([][][]clique.Word, n)
	for i := range msgs {
		msgs[i] = make([][]clique.Word, n)
	}
	net.ForEach(func(b int) {
		for _, y := range inB[b] {
			t := tiles[y]
			nbrs := make([]int, 0, degs[y])
			for _, a := range t.A() {
				for _, w := range mailB.From(b, a) {
					nbrs = append(nbrs, int(w))
				}
			}
			zs := chunk(nbrs, t.F, b-t.Col)
			for _, x := range nbrs {
				for _, z := range zs {
					msgs[b][x] = append(msgs[b][x], clique.Word(z))
				}
			}
		}
	})
	// The walk buffers are relinquished to the network: zero-copy enqueue.
	in := routing.ExchangeOwned(net, routing.Auto, msgs)

	// Check: x received all of P(x,∗,∗); a duplicate endpoint z ≠ x means
	// two distinct middle nodes, i.e. a 4-cycle.
	net.Phase("c4detect/check")
	found := make([]bool, n)
	net.ForEach(func(x int) {
		seen := make(map[int]bool, 2*n)
		for src := 0; src < n; src++ {
			for _, w := range in[x][src] {
				z := int(w)
				if z == x {
					continue
				}
				if seen[z] {
					found[x] = true
					return
				}
				seen[z] = true
			}
		}
	})
	return orBroadcast(net, found), nil
}

// detectC4Small handles cliques below the Lemma 12 packing threshold by
// learning the whole (constant-size) graph: still O(1) rounds. On the
// direct transport the gather is charged analytically and the reference
// check runs on the shared graph in place.
func detectC4Small(net *clique.Network, g *graphs.Graph) (bool, error) {
	net.Phase("c4detect/small")
	n := net.N()
	if net.Transport() != clique.TransportWire {
		lens := make([]int64, n)
		for v := 0; v < n; v++ {
			lens[v] = int64(len(g.Neighbors(v)))
		}
		routing.ChargeAllGather(net, lens)
		return graphs.HasC4Ref(g), nil
	}
	vecs := make([][]clique.Word, n)
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(v) {
			vecs[v] = append(vecs[v], clique.Word(u))
		}
	}
	all := routing.AllGather(net, vecs)
	rebuilt := graphs.NewGraph(n, false)
	for v := 0; v < n; v++ {
		for _, w := range all[v] {
			if int(w) != v && !rebuilt.HasEdge(v, int(w)) {
				rebuilt.AddEdge(v, int(w))
			}
		}
	}
	return graphs.HasC4Ref(rebuilt), nil
}
