package subgraph

import (
	"fmt"

	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/graphs"
)

// CountC5 counts 5-cycles in an undirected graph — the k = 5 case of the
// trace formulas the paper notes in §3.1 ("similar trace formulas exist
// for counting k-cycles for k ∈ {5,6,7}", citing Alon–Yuster–Zwick).
// A closed 5-walk either traverses a 5-cycle or wanders around a triangle
// with one pendant excursion, which yields
//
//	tr(A⁵) = 10·#C5 + 5·tr(A³) + 5·Σ_v (deg(v) − 2)·(A³)[v][v] ,
//
// so two distributed products (A², A³ = A²·A) and two one-round column
// exchanges suffice: O(n^ρ) rounds like Corollary 2.
func CountC5(net *clique.Network, engine ccmm.Engine, g *graphs.Graph) (int64, error) {
	if err := checkGraphSize(net, g); err != nil {
		return 0, err
	}
	if g.Directed() {
		return 0, fmt.Errorf("subgraph: CountC5 supports undirected graphs only: %w", ccmm.ErrSize)
	}
	n := net.N()
	a := adjacencyRows(g)
	sc := ccmm.NewScratch()
	a2, err := ccmm.MulIntWith(net, engine, sc, a, a)
	if err != nil {
		return 0, err
	}
	a3, err := ccmm.MulIntWith(net, engine, sc, a2, a)
	if err != nil {
		return 0, err
	}

	net.Phase("c5count/trace")
	colA3 := columnExchange(net, a3.Rows)
	partial := make([]int64, n)
	net.ForEach(func(v int) {
		// tr(A⁵) contribution: Σ_w A²[v][w]·A³[w][v].
		var walk5 int64
		row := a2.Rows[v]
		col := colA3[v]
		for w := 0; w < n; w++ {
			walk5 += row[w] * col[w]
		}
		// Local corrections: (A³)[v][v] is the v-th entry of column v of
		// A³ (already exchanged), deg(v) is local.
		deg := int64(g.OutDegree(v))
		tri := a3.Rows[v][v]
		partial[v] = walk5 - 5*tri - 5*(deg-2)*tri
	})
	numer := sumBroadcast(net, partial)
	if numer%10 != 0 || numer < 0 {
		return 0, fmt.Errorf("subgraph: 5-cycle numerator %d not divisible by 10; inconsistent adjacency", numer)
	}
	return numer / 10, nil
}
