package subgraph

import (
	"fmt"

	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/graphs"
)

// CountC6 counts 6-cycles in an undirected graph — the k = 6 case of the
// §3.1 trace-formula remark. A closed 6-walk's image is one of nine shapes
// (every other subgraph either needs more than six edge traversals or has
// an odd-degree vertex in the traversal multigraph); enumerating walks per
// shape gives the census
//
//	tr(A⁶) = 2·m + 12·P₃ + 6·P₄ + 12·S₃ + 24·t + 48·q
//	       + 36·dia + 12·tad + 24·bow + 12·#C6 ,
//
// where m = edges, P₃/P₄ = paths on 3/4 vertices, S₃ = claws K_{1,3},
// t = triangles, q = 4-cycles, dia = diamonds (two triangles sharing an
// edge), tad = tadpoles (C4 plus a pendant edge), bow = bowties (two
// triangles sharing one vertex). The shape constants are
// machine-enumerated and pinned by TestClosedWalkShapeConstants.
//
// Everything reduces to two distributed products (A², A³ = A²·A), two
// one-round column exchanges, and local degree arithmetic: O(n^ρ) rounds,
// like Corollary 2.
func CountC6(net *clique.Network, engine ccmm.Engine, g *graphs.Graph) (int64, error) {
	if err := checkGraphSize(net, g); err != nil {
		return 0, err
	}
	if g.Directed() {
		return 0, fmt.Errorf("subgraph: CountC6 supports undirected graphs only: %w", ccmm.ErrSize)
	}
	n := net.N()
	a := adjacencyRows(g)
	sc := ccmm.NewScratch()
	a2, err := ccmm.MulIntWith(net, engine, sc, a, a)
	if err != nil {
		return 0, err
	}
	a3, err := ccmm.MulIntWith(net, engine, sc, a2, a)
	if err != nil {
		return 0, err
	}

	net.Phase("c6count/census")
	// All degrees, for the path/claw terms.
	degWords := make([]clique.Word, n)
	for v := 0; v < n; v++ {
		degWords[v] = clique.Word(g.OutDegree(v))
	}
	bc := net.BroadcastWord(degWords)
	degs := make([]int64, n)
	for v := 0; v < n; v++ {
		degs[v] = int64(bc[v])
	}
	colA2 := columnExchange(net, a2.Rows)
	colA3 := columnExchange(net, a3.Rows)

	// Per-node partial sums of the census quantities; one broadcast round
	// per quantity merges them.
	const (
		pWalk6  = iota // Σ_w A³[v][w]·A³[w][v]            → tr(A⁶)
		pWalk4         // Σ_w A²[v][w]·A²[w][v]            → tr(A⁴)
		pTri           // A³[v][v]                          → tr(A³) = 6t
		pDeg2          // d_v²                              (C4 correction)
		pP3x2          // d_v(d_v−1)                        = 2·P₃ partial
		pS3x6          // d_v(d_v−1)(d_v−2)                 = 6·S₃ partial
		pP4x2          // Σ_{u∈N(v)} (d_v−1)(d_u−1)         = 2·(P₄+3t) partial
		pDiaX2         // Σ_{u∈N(v)} C(A²[v][u], 2)         = 2·dia partial
		pTadRaw        // (d_v−2)·Σ_{u≠v} C(A²[v][u], 2)    = tad + 2·dia partial
		pBowRaw        // C(t_v, 2), t_v = A³[v][v]/2        = bow + 2·dia partial
		nPartials
	)
	partials := make([][]int64, n)
	net.ForEach(func(v int) {
		p := make([]int64, nPartials)
		a2row, a3row := a2.Rows[v], a3.Rows[v]
		c2, c3 := colA2[v], colA3[v]
		d := degs[v]
		for w := 0; w < n; w++ {
			p[pWalk6] += a3row[w] * c3[w]
			p[pWalk4] += a2row[w] * c2[w]
		}
		p[pTri] = a3row[v]
		p[pDeg2] = d * d
		p[pP3x2] = d * (d - 1)
		p[pS3x6] = d * (d - 1) * (d - 2)
		var c4v int64
		for u := 0; u < n; u++ {
			if u == v {
				continue
			}
			k := a2row[u]
			c4v += k * (k - 1) / 2
			if g.HasEdge(v, u) {
				p[pP4x2] += (d - 1) * (degs[u] - 1)
				p[pDiaX2] += k * (k - 1) / 2
			}
		}
		p[pTadRaw] = (d - 2) * c4v
		tv := a3row[v] / 2 // triangles through v
		p[pBowRaw] = tv * (tv - 1) / 2
		partials[v] = p
	})
	totals := make([]int64, nPartials)
	vecs := make([][]clique.Word, n)
	for v := 0; v < n; v++ {
		vec := make([]clique.Word, nPartials)
		for i, x := range partials[v] {
			vec[i] = clique.Word(x)
		}
		vecs[v] = vec
	}
	for _, vec := range net.Broadcast(vecs) {
		for i := range totals {
			totals[i] += int64(vec[i])
		}
	}

	var m int64 // edges: Σ d_v / 2
	for _, d := range degs {
		m += d
	}
	m /= 2
	tr3 := totals[pTri]
	if tr3%6 != 0 {
		return 0, fmt.Errorf("subgraph: tr(A³) = %d not divisible by 6", tr3)
	}
	t := tr3 / 6
	c4Numer := totals[pWalk4] - (2*totals[pDeg2] - 2*m) // tr(A⁴) − Σ(2d²−d)
	if c4Numer%8 != 0 || c4Numer < 0 {
		return 0, fmt.Errorf("subgraph: 4-cycle numerator %d invalid", c4Numer)
	}
	q := c4Numer / 8
	p3 := totals[pP3x2] / 2
	s3 := totals[pS3x6] / 6
	if totals[pP4x2]%2 != 0 {
		return 0, fmt.Errorf("subgraph: P4 partial %d odd", totals[pP4x2])
	}
	p4 := totals[pP4x2]/2 - 3*t
	if totals[pDiaX2]%2 != 0 {
		return 0, fmt.Errorf("subgraph: diamond partial %d odd", totals[pDiaX2])
	}
	dia := totals[pDiaX2] / 2
	tad := totals[pTadRaw] - 2*dia
	bow := totals[pBowRaw] - 2*dia

	numer := totals[pWalk6] -
		2*m - 12*p3 - 6*p4 - 12*s3 - 24*t - 48*q - 36*dia - 12*tad - 24*bow
	if numer%12 != 0 || numer < 0 {
		return 0, fmt.Errorf("subgraph: 6-cycle numerator %d not divisible by 12 (census: m=%d p3=%d p4=%d s3=%d t=%d q=%d dia=%d tad=%d bow=%d)",
			numer, m, p3, p4, s3, t, q, dia, tad, bow)
	}
	return numer / 12, nil
}
