package subgraph_test

import (
	"math/rand/v2"
	"testing"

	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/graphs"
	"github.com/algebraic-clique/algclique/internal/subgraph"
)

// TestClosedWalkShapeConstants pins the machine-enumerated census behind
// CountC6: the number of closed 6-walks on each shape that traverse every
// edge, and the impossibility of the remaining candidate shapes.
func TestClosedWalkShapeConstants(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges [][2]int
		want  int
	}{
		{"K2", 2, [][2]int{{0, 1}}, 2},
		{"P3", 3, [][2]int{{0, 1}, {1, 2}}, 12},
		{"P4", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}}, 6},
		{"K13", 4, [][2]int{{0, 1}, {0, 2}, {0, 3}}, 12},
		{"C3", 3, [][2]int{{0, 1}, {1, 2}, {2, 0}}, 24},
		{"C4", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}, 48},
		{"diamond", 4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}}, 36},
		{"tadpole", 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 4}}, 12},
		{"C6", 6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}}, 12},
		{"bowtie", 5, [][2]int{{0, 1}, {1, 2}, {2, 0}, {0, 3}, {3, 4}, {4, 0}}, 24},
		{"paw (impossible)", 4, [][2]int{{0, 1}, {1, 2}, {2, 0}, {0, 3}}, 0},
		{"P5 (impossible)", 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}}, 0},
		{"theta222 (impossible)", 5, [][2]int{{0, 2}, {2, 1}, {0, 3}, {3, 1}, {0, 4}, {4, 1}}, 0},
		{"K4 (impossible)", 4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}, 0},
	}
	for _, tc := range cases {
		if got := coveringWalks6(tc.n, tc.edges); got != tc.want {
			t.Errorf("%s: %d covering 6-walks, want %d", tc.name, got, tc.want)
		}
	}
}

// coveringWalks6 counts closed 6-walks using every edge of the shape.
func coveringWalks6(n int, edges [][2]int) int {
	adj := make([][]int, n) // adj[u][v] = 1+edge index, 0 = absent
	for i := range adj {
		adj[i] = make([]int, n)
	}
	for i, e := range edges {
		adj[e[0]][e[1]] = i + 1
		adj[e[1]][e[0]] = i + 1
	}
	count := 0
	var rec func(start, cur, depth, used int)
	rec = func(start, cur, depth, used int) {
		if depth == 6 {
			if cur == start && used == 1<<len(edges)-1 {
				count++
			}
			return
		}
		for next := 0; next < n; next++ {
			if e := adj[cur][next]; e != 0 {
				rec(start, next, depth+1, used|1<<(e-1))
			}
		}
	}
	for s := 0; s < n; s++ {
		rec(s, s, 0, 0)
	}
	return count
}

func TestCountC6KnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graphs.Graph
		want int64
	}{
		{"C6", padTo(graphs.Cycle(6, false), 16), 1},
		{"C7", padTo(graphs.Cycle(7, false), 16), 0},
		{"C5", padTo(graphs.Cycle(5, false), 16), 0},
		{"K4", padTo(graphs.Complete(4, false), 16), 0},
		{"K5", padTo(graphs.Complete(5, false), 16), 0},
		{"K6", padTo(graphs.Complete(6, false), 16), 60},
		{"petersen", padTo(graphs.Petersen(), 16), 10},
		{"heawood", padTo(graphs.Heawood(), 16), 28},
		{"K33", padTo(graphs.CompleteBipartite(3, 3), 16), 6},
		{"torus44", graphs.Torus(4, 4), 128},
		{"tree", graphs.Tree(16, 5), 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref := graphs.CountC6Ref(tc.g)
			net := clique.New(tc.g.N())
			got, err := subgraph.CountC6(net, ccmm.EngineFast, tc.g)
			if err != nil {
				t.Fatal(err)
			}
			if got != ref {
				t.Errorf("CountC6 = %d, brute force = %d", got, ref)
			}
			if tc.want >= 0 && ref != tc.want {
				t.Errorf("reference = %d, expected %d — expectation wrong?", ref, tc.want)
			}
		})
	}
}

func TestCountC6RandomAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(71, 71))
	engines := []ccmm.Engine{ccmm.EngineFast, ccmm.Engine3D, ccmm.EngineNaive}
	sizes := []int{16, 27, 14}
	for i, engine := range engines {
		n := sizes[i]
		for trial := 0; trial < 5; trial++ {
			g := graphs.GNP(n, 0.2+rng.Float64()*0.2, false, rng.Uint64())
			net := clique.New(n)
			got, err := subgraph.CountC6(net, engine, g)
			if err != nil {
				t.Fatal(err)
			}
			if want := graphs.CountC6Ref(g); got != want {
				t.Fatalf("engine %v n=%d trial=%d: CountC6 = %d, want %d", engine, n, trial, got, want)
			}
		}
	}
}

func TestCountC6RejectsDirected(t *testing.T) {
	net := clique.New(16)
	if _, err := subgraph.CountC6(net, ccmm.EngineFast, graphs.Cycle(16, true)); err == nil {
		t.Error("directed graph accepted")
	}
}
