package subgraph

import (
	"fmt"

	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/graphs"
)

// CountTriangles counts triangles (directed: directed 3-cycles) with the
// trace formula of Itai–Rodeh (Corollary 2): the count is tr(A³)/6 for
// undirected graphs and tr(A³)/3 for directed ones. One distributed product
// computes A²; the diagonal of A³ is then Σ_w A²[v][w]·A[w][v], obtained
// with a one-round column exchange and a one-round sum broadcast.
func CountTriangles(net *clique.Network, engine ccmm.Engine, g *graphs.Graph) (int64, error) {
	if err := checkGraphSize(net, g); err != nil {
		return 0, err
	}
	a := adjacencyRows(g)
	sc := ccmm.NewScratch()
	a2, err := ccmm.MulIntWith(net, engine, sc, a, a)
	if err != nil {
		return 0, err
	}
	net.Phase("tri/trace")
	colA := columnExchange(net, a.Rows)
	n := net.N()
	partial := make([]int64, n)
	net.ForEach(func(v int) {
		var t int64
		row := a2.Rows[v]
		col := colA[v]
		for w := 0; w < n; w++ {
			t += row[w] * col[w]
		}
		partial[v] = t
	})
	trace := sumBroadcast(net, partial)
	div := int64(6)
	if g.Directed() {
		div = 3
	}
	if trace%div != 0 {
		return 0, fmt.Errorf("subgraph: tr(A³) = %d not divisible by %d; inconsistent adjacency", trace, div)
	}
	return trace / div, nil
}

// CountC4 counts 4-cycles with the formula of Alon–Yuster–Zwick
// (Corollary 2). Undirected:
//
//	#C4 = (tr(A⁴) − Σ_v (2·deg(v)² − deg(v))) / 8 ,
//
// and for loopless directed graphs, with δ(v) the number of u adjacent to v
// in both directions:
//
//	#C4 = (tr(A⁴) − Σ_v (2·δ(v)² − δ(v))) / 4 .
//
// One distributed product computes A²; tr(A⁴) = Σ_{v,w} A²[v][w]·A²[w][v]
// comes from a column exchange on A², and δ(v) from a column exchange on A.
func CountC4(net *clique.Network, engine ccmm.Engine, g *graphs.Graph) (int64, error) {
	if err := checkGraphSize(net, g); err != nil {
		return 0, err
	}
	a := adjacencyRows(g)
	sc := ccmm.NewScratch()
	a2, err := ccmm.MulIntWith(net, engine, sc, a, a)
	if err != nil {
		return 0, err
	}
	net.Phase("c4count/trace")
	n := net.N()
	colA2 := columnExchange(net, a2.Rows)
	var colA [][]int64
	if g.Directed() {
		colA = columnExchange(net, a.Rows)
	}
	partial := make([]int64, n)
	net.ForEach(func(v int) {
		var t int64
		row := a2.Rows[v]
		col := colA2[v]
		for w := 0; w < n; w++ {
			t += row[w] * col[w]
		}
		var mutual int64
		if g.Directed() {
			arow := a.Rows[v]
			acol := colA[v]
			for w := 0; w < n; w++ {
				mutual += arow[w] * acol[w]
			}
		} else {
			mutual = int64(g.OutDegree(v))
		}
		partial[v] = t - (2*mutual*mutual - mutual)
	})
	numer := sumBroadcast(net, partial)
	div := int64(8)
	if g.Directed() {
		div = 4
	}
	if numer%div != 0 || numer < 0 {
		return 0, fmt.Errorf("subgraph: 4-cycle numerator %d not divisible by %d; inconsistent adjacency", numer, div)
	}
	return numer / div, nil
}
