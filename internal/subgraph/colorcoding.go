package subgraph

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand/v2"

	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/graphs"
)

// DetectKCycleColourful reports whether the graph contains a colourful
// k-cycle under the given colouring c: V → [k] — a k-cycle on which every
// colour appears exactly once (Lemma 11). It evaluates the recursion
//
//	C(X) = ∨_{Y ⊆ X, |Y| = ⌈|X|/2⌉} C(Y) · A · C(X\Y)
//
// over the integers with entrywise clamping to {0,1}, using at most O(3^k)
// distributed products, and finally closes the cycle through an edge check.
func DetectKCycleColourful(net *clique.Network, engine ccmm.Engine, g *graphs.Graph, k int, colours []int) (bool, error) {
	if err := checkGraphSize(net, g); err != nil {
		return false, err
	}
	if err := validateK(g, k); err != nil {
		return false, err
	}
	if len(colours) != g.N() {
		return false, fmt.Errorf("subgraph: %d colours for %d nodes: %w", len(colours), g.N(), ccmm.ErrSize)
	}
	for v, c := range colours {
		if c < 0 || c >= k {
			return false, fmt.Errorf("subgraph: colour %d of node %d out of [0,%d): %w", c, v, k, ccmm.ErrSize)
		}
	}
	n := net.N()
	a := adjacencyRows(g)

	// C(X) for all needed colour subsets, bottom-up by size.
	cMat := make(map[uint32]*ccmm.RowMat[int64])
	for i := 0; i < k; i++ {
		m := ccmm.NewRowMat[int64](n)
		for v := 0; v < n; v++ {
			if colours[v] == i {
				m.Rows[v][v] = 1
			}
		}
		cMat[1<<i] = m
	}
	sizes := neededSizes(k)
	dCache := make(map[uint32]*ccmm.RowMat[int64]) // C(Y)·A, keyed by Y
	sc := ccmm.NewScratch()                        // shared by the O(3^k) products

	full := uint32(1)<<k - 1
	for s := 2; s <= k; s++ {
		if !sizes[s] {
			continue
		}
		for x := uint32(1); x <= full; x++ {
			if bits.OnesCount32(x) != s || (s < k && !subsetNeeded(x, full, sizes, k)) {
				continue
			}
			h := (s + 1) / 2
			acc := ccmm.NewRowMat[int64](n)
			for y := x & (x - 1); ; y = (y - 1) & x {
				// Iterate all non-empty proper submasks of x; keep |Y| = h.
				if bits.OnesCount32(y) == h {
					d, ok := dCache[y]
					if !ok {
						var err error
						d, err = ccmm.MulBoolWith(net, engine, sc, cMat[y], a)
						if err != nil {
							return false, err
						}
						dCache[y] = d
					}
					r, err := ccmm.MulBoolWith(net, engine, sc, d, cMat[x&^y])
					if err != nil {
						return false, err
					}
					net.ForEach(func(v int) {
						av, rv := acc.Rows[v], r.Rows[v]
						for j := 0; j < n; j++ {
							if rv[j] != 0 {
								av[j] = 1
							}
						}
					})
				}
				if y == 0 {
					break
				}
			}
			cMat[x] = acc
		}
	}

	// Close the cycle: a colourful k-cycle exists iff C([k])[u][v] = 1 and
	// (v, u) ∈ E for some u, v. Node u needs its in-edges: one exchange round.
	net.Phase("kcycle/close")
	colA := columnExchange(net, a.Rows)
	cFull := cMat[full]
	flags := make([]bool, n)
	net.ForEach(func(u int) {
		row := cFull.Rows[u]
		inEdges := colA[u]
		for v := 0; v < n; v++ {
			if row[v] != 0 && inEdges[v] != 0 {
				flags[u] = true
				return
			}
		}
	})
	return orBroadcast(net, flags), nil
}

// KCycleOpts configures the randomised colour-coding search of Theorem 3.
type KCycleOpts struct {
	// Colourings caps the number of random colourings tried; 0 selects the
	// paper's ⌈e^k · ln n⌉ (success probability 1 − n^{−Ω(1)}).
	Colourings int
	// Seed makes the colour choices reproducible.
	Seed uint64
}

// DetectKCycle reports whether the graph contains a (simple) cycle of
// length exactly k (Theorem 3). Each trial colours the nodes independently
// and uniformly at random — a purely local choice, costing no rounds — and
// runs the Lemma 11 colourful detection; a k-cycle is colourful with
// probability ≥ k!/k^k > e^{-k} per trial. No false positives are possible;
// the returned trial count tells how many colourings were evaluated.
func DetectKCycle(net *clique.Network, engine ccmm.Engine, g *graphs.Graph, k int, opts KCycleOpts) (found bool, trials int, err error) {
	if err := checkGraphSize(net, g); err != nil {
		return false, 0, err
	}
	if err := validateK(g, k); err != nil {
		return false, 0, err
	}
	max := opts.Colourings
	if max <= 0 {
		max = int(math.Ceil(math.Exp(float64(k)) * math.Log(float64(g.N())+2)))
	}
	colours := make([]int, g.N())
	for t := 0; t < max; t++ {
		rng := rand.New(rand.NewPCG(opts.Seed, uint64(t)))
		for v := range colours {
			colours[v] = rng.IntN(k)
		}
		ok, err := DetectKCycleColourful(net, engine, g, k, colours)
		if err != nil {
			return false, t, err
		}
		if ok {
			return true, t + 1, nil
		}
	}
	return false, max, nil
}

func validateK(g *graphs.Graph, k int) error {
	min := 3
	if g.Directed() {
		min = 2 // antiparallel edge pairs are directed 2-cycles
	}
	if k < min {
		return fmt.Errorf("subgraph: cycle length %d below minimum %d: %w", k, min, ccmm.ErrSize)
	}
	if k > 31 {
		return fmt.Errorf("subgraph: cycle length %d unsupported (subset masks are 32-bit): %w", k, ccmm.ErrSize)
	}
	return nil
}

// neededSizes returns the set of subset sizes the recursion touches when
// started from k: k splits into ⌈k/2⌉ and ⌊k/2⌋, recursively down to 1.
func neededSizes(k int) map[int]bool {
	sizes := make(map[int]bool)
	var rec func(s int)
	rec = func(s int) {
		if s < 1 || sizes[s] {
			return
		}
		sizes[s] = true
		if s > 1 {
			rec((s + 1) / 2)
			rec(s / 2)
		}
	}
	rec(k)
	return sizes
}

// subsetNeeded reports whether C(x) can appear in the recursion from the
// full colour set. A subset of size s is needed exactly when s is a needed
// size; since every subset of each needed size may arise as some Y or X\Y,
// size membership is the right filter.
func subsetNeeded(x, full uint32, sizes map[int]bool, k int) bool {
	return sizes[bits.OnesCount32(x)]
}
