package subgraph

import (
	"fmt"

	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/graphs"
	"github.com/algebraic-clique/algclique/internal/routing"
)

// ErrTooDense reports that the Σ deg(y)² < 2n² sparseness condition of the
// constant-round square routine does not hold.
var ErrTooDense = fmt.Errorf("subgraph: graph too dense for the constant-round sparse square")

// SparseSquare computes row v of A² (the number of 2-walks v→·) at every
// node v in O(1) rounds, for undirected graphs with Σ_y deg(y)² < 2n² —
// the paper's remark that the Theorem 4 machinery "can be interpreted as
// an efficient routine for sparse matrix multiplication, under a specific
// definition of sparseness" (§1.2), made concrete: the Lemma 12 tiles
// repartition the 2-walk multiset P(∗,∗,∗) so each node forwards O(n)
// walks and each row owner receives its |P(x,∗,∗)| < 2n entries.
//
// Returns ErrTooDense when the degree condition fails (the caller can fall
// back to a matmul engine); requires n ≥ 8 for the packing bound.
func SparseSquare(net *clique.Network, g *graphs.Graph) (*ccmm.RowMat[int64], error) {
	if err := checkGraphSize(net, g); err != nil {
		return nil, err
	}
	if g.Directed() {
		return nil, fmt.Errorf("subgraph: SparseSquare requires an undirected graph: %w", ccmm.ErrSize)
	}
	n := net.N()
	if n < 8 {
		return nil, fmt.Errorf("subgraph: SparseSquare needs n ≥ 8, got %d: %w", n, ccmm.ErrSize)
	}

	net.Phase("sparsesq/degrees")
	degWords := make([]clique.Word, n)
	for v := 0; v < n; v++ {
		degWords[v] = clique.Word(g.OutDegree(v))
	}
	bc := net.BroadcastWord(degWords)
	degs := make([]int, n)
	var sq int64
	for v := 0; v < n; v++ {
		degs[v] = int(bc[v])
		sq += int64(degs[v]) * int64(degs[v])
	}
	if sq >= int64(2*n*n) {
		return nil, fmt.Errorf("%w: Σdeg² = %d ≥ 2n² = %d", ErrTooDense, sq, 2*n*n)
	}

	tiles, err := AllocateTiles(degs, n)
	if err != nil {
		return nil, err
	}
	inA := make([][]int, n)
	inB := make([][]int, n)
	for _, t := range tiles {
		if !t.allocated {
			continue
		}
		for _, a := range t.A() {
			inA[a] = append(inA[a], t.Y)
		}
		for _, b := range t.B() {
			inB[b] = append(inB[b], t.Y)
		}
	}

	net.Phase("sparsesq/spread")
	for _, t := range tiles {
		if !t.allocated {
			continue
		}
		nbrs := g.Neighbors(t.Y)
		for i, a := range t.A() {
			for _, x := range chunk(nbrs, t.F, i) {
				net.Send(t.Y, a, clique.Word(x))
			}
		}
	}
	mailA := net.Flush()
	for a := 0; a < n; a++ {
		for _, y := range inA[a] {
			part := mailA.From(a, y)
			for _, b := range tiles[y].B() {
				net.SendVec(a, b, part)
			}
		}
	}
	mailB := net.Flush()

	net.Phase("sparsesq/gather")
	msgs := make([][][]clique.Word, n)
	for i := range msgs {
		msgs[i] = make([][]clique.Word, n)
	}
	net.ForEach(func(b int) {
		for _, y := range inB[b] {
			t := tiles[y]
			nbrs := make([]int, 0, degs[y])
			for _, a := range t.A() {
				for _, w := range mailB.From(b, a) {
					nbrs = append(nbrs, int(w))
				}
			}
			zs := chunk(nbrs, t.F, b-t.Col)
			for _, x := range nbrs {
				for _, z := range zs {
					msgs[b][x] = append(msgs[b][x], clique.Word(z))
				}
			}
		}
	})
	in := routing.ExchangeOwned(net, routing.Auto, msgs)

	out := ccmm.NewRowMat[int64](n)
	net.ForEach(func(x int) {
		row := out.Rows[x]
		for src := 0; src < n; src++ {
			for _, w := range in[x][src] {
				row[w]++
			}
		}
	})
	return out, nil
}
