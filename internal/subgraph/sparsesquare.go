package subgraph

import (
	"errors"
	"fmt"

	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/graphs"
	"github.com/algebraic-clique/algclique/internal/ring"
)

// Sentinel errors of the sparse adjacency square. Each wraps the
// corresponding engine-level sentinel, so callers can test either layer
// with errors.Is.
var (
	// ErrTooDense reports that the Σ deg(y)² < 2n² sparseness condition of
	// the constant-round square routine does not hold (wraps
	// ccmm.ErrTooDense).
	ErrTooDense = fmt.Errorf("subgraph: graph too dense for the constant-round sparse square: %w", ccmm.ErrTooDense)
	// ErrTooSmall reports a clique below the n ≥ 8 Lemma 12 packing bound
	// (wraps ccmm.ErrSize).
	ErrTooSmall = fmt.Errorf("subgraph: sparse square needs n ≥ 8 for the Lemma 12 packing: %w", ccmm.ErrSize)
	// ErrDirected reports a directed input; the sparse square's degree
	// census is defined for undirected graphs (wraps ccmm.ErrSize).
	ErrDirected = fmt.Errorf("subgraph: sparse square requires an undirected graph: %w", ccmm.ErrSize)
)

// SparseSquare computes row v of A² (the number of 2-walks v→·) at every
// node v in O(1) rounds, for undirected graphs with Σ_y deg(y)² < 2n² —
// the paper's remark that the Theorem 4 machinery "can be interpreted as
// an efficient routine for sparse matrix multiplication, under a specific
// definition of sparseness" (§1.2). It is a thin wrapper over the general
// sparse tile engine (ccmm.SparseMul with the integer ring): for an
// undirected adjacency matrix the engine's column and row nonzero counts
// both equal the degrees, so its Σ ca(y)·rb(y) < 2n² census is exactly the
// degree condition above and its tiles are exactly the Lemma 12 ones.
//
// Returns ErrTooDense (wrapped) when the degree condition fails — the
// caller can fall back to a matmul engine — ErrTooSmall for n < 8, and
// ErrDirected for directed inputs; all three satisfy errors.Is.
func SparseSquare(net *clique.Network, g *graphs.Graph) (*ccmm.RowMat[int64], error) {
	return SparseSquareScratch(net, nil, g)
}

// SparseSquareScratch is SparseSquare with caller-owned engine scratch
// pools.
func SparseSquareScratch(net *clique.Network, sc *ccmm.Scratch, g *graphs.Graph) (*ccmm.RowMat[int64], error) {
	if err := checkGraphSize(net, g); err != nil {
		return nil, err
	}
	if g.Directed() {
		return nil, ErrDirected
	}
	if net.N() < 8 {
		return nil, fmt.Errorf("%w (got n = %d)", ErrTooSmall, net.N())
	}
	r := ring.Int64{}
	a := adjacencyRows(g)
	sq, err := ccmm.SparseMulScratch[int64](net, sc, r, r, a, a)
	if err != nil {
		if errors.Is(err, ccmm.ErrTooDense) {
			return nil, fmt.Errorf("%w (%v)", ErrTooDense, err)
		}
		return nil, err
	}
	return sq, nil
}
