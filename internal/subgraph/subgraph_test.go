package subgraph_test

import (
	"math/rand/v2"
	"testing"

	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/graphs"
	"github.com/algebraic-clique/algclique/internal/subgraph"
)

func TestCountTrianglesMatchesReference(t *testing.T) {
	cases := []struct {
		name   string
		g      *graphs.Graph
		engine ccmm.Engine
	}{
		{"K4 fast", graphs.Complete(16, false), ccmm.EngineFast},
		{"gnp16 fast", graphs.GNP(16, 0.4, false, 1), ccmm.EngineFast},
		{"gnp27 3d", graphs.GNP(27, 0.3, false, 2), ccmm.Engine3D},
		{"gnp20 naive", graphs.GNP(20, 0.3, false, 3), ccmm.EngineNaive},
		{"gnp64 auto", graphs.GNP(64, 0.1, false, 4), ccmm.EngineAuto},
		{"digraph16", graphs.GNP(16, 0.3, true, 5), ccmm.EngineFast},
		{"digraph27", graphs.GNP(27, 0.25, true, 6), ccmm.Engine3D},
		{"directed C3", graphs.Cycle(16, true), ccmm.EngineFast},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			net := clique.New(tc.g.N())
			got, err := subgraph.CountTriangles(net, tc.engine, tc.g)
			if err != nil {
				t.Fatal(err)
			}
			if want := graphs.CountTrianglesRef(tc.g); got != want {
				t.Errorf("triangles = %d, want %d", got, want)
			}
		})
	}
}

func TestCountC4MatchesReference(t *testing.T) {
	cases := []struct {
		name   string
		g      *graphs.Graph
		engine ccmm.Engine
	}{
		{"C4 in 16", withCycle(16, 4), ccmm.EngineFast},
		{"K23 padded", padTo(graphs.CompleteBipartite(2, 3), 16), ccmm.EngineFast},
		{"gnp16", graphs.GNP(16, 0.35, false, 7), ccmm.EngineFast},
		{"gnp27 3d", graphs.GNP(27, 0.3, false, 8), ccmm.Engine3D},
		{"gnp18 naive", graphs.GNP(18, 0.3, false, 9), ccmm.EngineNaive},
		{"digraph16", graphs.GNP(16, 0.3, true, 10), ccmm.EngineFast},
		{"directed C4", graphs.Cycle(16, true), ccmm.EngineFast},
		{"digraph antiparallel", antiparallel(16, 11), ccmm.EngineFast},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			net := clique.New(tc.g.N())
			got, err := subgraph.CountC4(net, tc.engine, tc.g)
			if err != nil {
				t.Fatal(err)
			}
			if want := graphs.CountC4Ref(tc.g); got != want {
				t.Errorf("4-cycles = %d, want %d", got, want)
			}
		})
	}
}

// withCycle returns an n-node graph that is a single k-cycle.
func withCycle(n, k int) *graphs.Graph {
	g := graphs.NewGraph(n, false)
	for i := 0; i < k; i++ {
		g.AddEdge(i, (i+1)%k)
	}
	return g
}

// padTo embeds g into a larger vertex set with isolated extra nodes.
func padTo(g *graphs.Graph, n int) *graphs.Graph {
	out := graphs.NewGraph(n, g.Directed())
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if g.Directed() || u < v {
				out.AddEdge(u, v)
			}
		}
	}
	return out
}

// antiparallel returns a random digraph rich in 2-cycles.
func antiparallel(n int, seed uint64) *graphs.Graph {
	g := graphs.GNP(n, 0.2, true, seed)
	rng := rand.New(rand.NewPCG(seed, 99))
	for i := 0; i < n; i++ {
		u, v := rng.IntN(n), rng.IntN(n)
		if u != v {
			if !g.HasEdge(u, v) {
				g.AddEdge(u, v)
			}
			if !g.HasEdge(v, u) {
				g.AddEdge(v, u)
			}
		}
	}
	return g
}

func TestCountRejectsSizeMismatch(t *testing.T) {
	net := clique.New(8)
	g := graphs.Complete(9, false)
	if _, err := subgraph.CountTriangles(net, ccmm.EngineAuto, g); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestDetectC4Positives(t *testing.T) {
	cases := []struct {
		name string
		g    *graphs.Graph
	}{
		{"pure C4", withCycle(16, 4)},
		{"K23", padTo(graphs.CompleteBipartite(2, 3), 12)},
		{"torus 4x4", graphs.Torus(4, 4)},
		{"dense gnp", graphs.GNP(32, 0.5, false, 21)},
		{"complete", graphs.Complete(24, false)},
		{"K33 padded", padTo(graphs.CompleteBipartite(3, 3), 20)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if !graphs.HasC4Ref(tc.g) {
				t.Fatal("test graph lacks a C4")
			}
			net := clique.New(tc.g.N())
			got, err := subgraph.DetectC4(net, tc.g)
			if err != nil {
				t.Fatal(err)
			}
			if !got {
				t.Error("C4 not detected")
			}
		})
	}
}

func TestDetectC4Negatives(t *testing.T) {
	cases := []struct {
		name string
		g    *graphs.Graph
	}{
		{"petersen", padTo(graphs.Petersen(), 12)},
		{"heawood (extremal C4-free)", padTo(graphs.Heawood(), 16)},
		{"tree", graphs.Tree(32, 3)},
		{"C5", withCycle(16, 5)},
		{"C7", withCycle(20, 7)},
		{"triangle only", withCycle(16, 3)},
		{"empty", graphs.NewGraph(16, false)},
		{"star", starGraph(24)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if graphs.HasC4Ref(tc.g) {
				t.Fatal("test graph has a C4")
			}
			net := clique.New(tc.g.N())
			got, err := subgraph.DetectC4(net, tc.g)
			if err != nil {
				t.Fatal(err)
			}
			if got {
				t.Error("false positive C4")
			}
		})
	}
}

func starGraph(n int) *graphs.Graph {
	g := graphs.NewGraph(n, false)
	for v := 1; v < n; v++ {
		g.AddEdge(0, v)
	}
	return g
}

func TestDetectC4SmallFallback(t *testing.T) {
	g := withCycle(4, 4)
	net := clique.New(4)
	got, err := subgraph.DetectC4(net, g)
	if err != nil || !got {
		t.Errorf("small C4: got (%v, %v)", got, err)
	}
	g2 := graphs.Path(6, false)
	net2 := clique.New(6)
	got, err = subgraph.DetectC4(net2, g2)
	if err != nil || got {
		t.Errorf("small path: got (%v, %v)", got, err)
	}
}

func TestDetectC4RandomAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 7))
	for trial := 0; trial < 25; trial++ {
		n := 8 + rng.IntN(40)
		p := rng.Float64() * 0.25
		g := graphs.GNP(n, p, false, rng.Uint64())
		net := clique.New(n)
		got, err := subgraph.DetectC4(net, g)
		if err != nil {
			t.Fatal(err)
		}
		if want := graphs.HasC4Ref(g); got != want {
			t.Fatalf("n=%d p=%.2f: DetectC4 = %v, reference = %v", n, p, got, want)
		}
	}
}

func TestDetectC4ConstantRounds(t *testing.T) {
	// The headline property of Theorem 4: rounds do not grow with n.
	// Sparse random graphs with constant expected degree.
	var maxRounds int64
	for _, n := range []int{16, 64, 256} {
		g := graphs.GNP(n, 3.0/float64(n), false, 77)
		net := clique.New(n)
		if _, err := subgraph.DetectC4(net, g); err != nil {
			t.Fatal(err)
		}
		if net.Rounds() > maxRounds {
			maxRounds = net.Rounds()
		}
	}
	if maxRounds > 250 {
		t.Errorf("DetectC4 used %d rounds; expected an n-independent constant", maxRounds)
	}
}

func TestAllocateTilesInvariants(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 41))
	for trial := 0; trial < 30; trial++ {
		n := 8 + rng.IntN(120)
		degs := make([]int, n)
		// Random degree sequence respecting Σ deg² < 2n² (phase-1 bound).
		var sq int64
		for v := range degs {
			d := rng.IntN(n)
			if sq+int64(d)*int64(d) >= int64(2*n*n) {
				break
			}
			degs[v] = d
			sq += int64(d) * int64(d)
		}
		tiles, err := subgraph.AllocateTiles(degs, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		k := 1
		for k*2 <= n {
			k *= 2
		}
		occupied := make(map[[2]int]int)
		for _, tile := range tiles {
			if degs[tile.Y] < 1 {
				if tile.F != 0 {
					t.Fatal("isolated node received a tile")
				}
				continue
			}
			if tile.F < 1 || tile.F*8 < degs[tile.Y] {
				t.Fatalf("node %d deg %d: tile side %d violates f ≥ deg/8", tile.Y, degs[tile.Y], tile.F)
			}
			if tile.Row < 0 || tile.Col < 0 || tile.Row+tile.F > k || tile.Col+tile.F > k {
				t.Fatalf("tile %+v outside [0,%d)²", tile, k)
			}
			for _, a := range tile.A() {
				for _, b := range tile.B() {
					if prev, ok := occupied[[2]int{a, b}]; ok {
						t.Fatalf("tiles of %d and %d overlap at (%d,%d)", prev, tile.Y, a, b)
					}
					occupied[[2]int{a, b}] = tile.Y
				}
			}
			if len(tile.A()) != tile.F || len(tile.B()) != tile.F {
				t.Fatal("|A| or |B| differs from tile side")
			}
		}
	}
}

func TestColourfulKCycle(t *testing.T) {
	// A rainbow-coloured C5 must be detected; a colouring that repeats a
	// colour on the cycle must not.
	g := withCycle(16, 5)
	rainbow := make([]int, 16)
	for v := 0; v < 16; v++ {
		rainbow[v] = v % 5
	}
	net := clique.New(16)
	got, err := subgraph.DetectKCycleColourful(net, ccmm.EngineFast, g, 5, rainbow)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("rainbow C5 not detected")
	}
	bad := make([]int, 16)
	for v := range bad {
		bad[v] = v % 2 // cycle nodes 0..4 coloured 0,1,0,1,0 — not colourful
	}
	// Use 5 colours still; nodes only use colours {0,1}.
	net2 := clique.New(16)
	got, err = subgraph.DetectKCycleColourful(net2, ccmm.EngineFast, g, 5, bad)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("non-colourful colouring produced a detection")
	}
}

func TestDetectKCyclePlanted(t *testing.T) {
	cases := []struct {
		n, k     int
		directed bool
		engine   ccmm.Engine
	}{
		{16, 3, false, ccmm.EngineFast},
		{16, 4, false, ccmm.EngineFast},
		{27, 3, false, ccmm.Engine3D},
		{16, 3, true, ccmm.EngineFast},
		{16, 5, false, ccmm.EngineFast},
	}
	for _, tc := range cases {
		g, _ := graphs.PlantedCycle(tc.n, tc.k, 0.02, tc.directed, uint64(tc.n*tc.k))
		if !graphs.HasKCycleRef(g, tc.k) {
			t.Fatal("planted cycle missing")
		}
		net := clique.New(tc.n)
		found, trials, err := subgraph.DetectKCycle(net, tc.engine, g, tc.k,
			subgraph.KCycleOpts{Colourings: 120, Seed: 5})
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
		if !found {
			t.Errorf("n=%d k=%d: planted cycle not found in %d colourings", tc.n, tc.k, trials)
		}
	}
}

func TestDetectKCycleNoFalsePositives(t *testing.T) {
	// Petersen has no 3- or 4-cycles; colour-coding must never claim one.
	g := padTo(graphs.Petersen(), 16)
	for _, k := range []int{3, 4} {
		net := clique.New(16)
		found, _, err := subgraph.DetectKCycle(net, ccmm.EngineFast, g, k,
			subgraph.KCycleOpts{Colourings: 30, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		if found {
			t.Errorf("false positive %d-cycle in Petersen", k)
		}
	}
}

func TestDetectKCycleDirectedTwoCycle(t *testing.T) {
	g := graphs.NewGraph(16, true)
	g.AddEdge(3, 7)
	g.AddEdge(7, 3)
	net := clique.New(16)
	found, _, err := subgraph.DetectKCycle(net, ccmm.EngineFast, g, 2,
		subgraph.KCycleOpts{Colourings: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Error("directed 2-cycle not detected")
	}
	// And k = 2 undirected must be rejected.
	if _, _, err := subgraph.DetectKCycle(clique.New(16), ccmm.EngineFast,
		graphs.Cycle(16, false), 2, subgraph.KCycleOpts{Colourings: 1}); err == nil {
		t.Error("undirected k=2 accepted")
	}
}

func TestDetectKCycleValidation(t *testing.T) {
	g := graphs.Cycle(16, false)
	net := clique.New(16)
	if _, err := subgraph.DetectKCycleColourful(net, ccmm.EngineFast, g, 3, make([]int, 5)); err == nil {
		t.Error("wrong colour vector length accepted")
	}
	bad := make([]int, 16)
	bad[3] = 7
	if _, err := subgraph.DetectKCycleColourful(net, ccmm.EngineFast, g, 3, bad); err == nil {
		t.Error("out-of-range colour accepted")
	}
}
