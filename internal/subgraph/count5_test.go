package subgraph_test

import (
	"math/rand/v2"
	"testing"

	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/graphs"
	"github.com/algebraic-clique/algclique/internal/subgraph"
)

func TestCountC5KnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graphs.Graph
		want int64
	}{
		{"C5", padTo(graphs.Cycle(5, false), 16), 1},
		{"C6", padTo(graphs.Cycle(6, false), 16), 0},
		{"K4", padTo(graphs.Complete(4, false), 16), 0},
		{"K5", padTo(graphs.Complete(5, false), 16), 12},
		{"K6", padTo(graphs.Complete(6, false), 16), 72},
		{"petersen", padTo(graphs.Petersen(), 16), 12},
		{"tree", graphs.Tree(16, 3), 0},
		{"K23", padTo(graphs.CompleteBipartite(2, 3), 16), 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if ref := graphs.CountC5Ref(tc.g); ref != tc.want {
				t.Fatalf("reference says %d, expected %d — test expectation wrong", ref, tc.want)
			}
			net := clique.New(tc.g.N())
			got, err := subgraph.CountC5(net, ccmm.EngineFast, tc.g)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("CountC5 = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestCountC5RandomAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(51, 51))
	engines := []ccmm.Engine{ccmm.EngineFast, ccmm.Engine3D, ccmm.EngineNaive}
	sizes := []int{16, 27, 20}
	for i, engine := range engines {
		n := sizes[i]
		for trial := 0; trial < 5; trial++ {
			g := graphs.GNP(n, 0.25+rng.Float64()*0.2, false, rng.Uint64())
			net := clique.New(n)
			got, err := subgraph.CountC5(net, engine, g)
			if err != nil {
				t.Fatal(err)
			}
			if want := graphs.CountC5Ref(g); got != want {
				t.Fatalf("engine %v n=%d: CountC5 = %d, want %d", engine, n, got, want)
			}
		}
	}
}

func TestCountC5RejectsDirected(t *testing.T) {
	net := clique.New(16)
	if _, err := subgraph.CountC5(net, ccmm.EngineFast, graphs.Cycle(16, true)); err == nil {
		t.Error("directed graph accepted")
	}
}
