package subgraph_test

import (
	"errors"
	"math/rand/v2"
	"testing"

	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/graphs"
	"github.com/algebraic-clique/algclique/internal/matrix"
	"github.com/algebraic-clique/algclique/internal/ring"
	"github.com/algebraic-clique/algclique/internal/subgraph"
)

func TestSparseSquareMatchesMatMul(t *testing.T) {
	rng := rand.New(rand.NewPCG(61, 61))
	r := ring.Int64{}
	for trial := 0; trial < 15; trial++ {
		n := 8 + rng.IntN(48)
		g := graphs.GNP(n, 2.5/float64(n), false, rng.Uint64())
		net := clique.New(n)
		sq, err := subgraph.SparseSquare(net, g)
		if errors.Is(err, subgraph.ErrTooDense) {
			continue // unlucky draw; covered by the dedicated test below
		}
		if err != nil {
			t.Fatal(err)
		}
		a := g.AdjacencyInt()
		want := matrix.Mul[int64](r, a, a)
		if !matrix.Equal[int64](r, sq.Collect(), want) {
			t.Fatalf("n=%d: sparse square disagrees with A²", n)
		}
	}
}

func TestSparseSquareConstantRounds(t *testing.T) {
	var maxRounds int64
	for _, n := range []int{16, 64, 256} {
		g := graphs.GNP(n, 2.0/float64(n), false, 3)
		net := clique.New(n)
		if _, err := subgraph.SparseSquare(net, g); err != nil {
			t.Fatal(err)
		}
		if net.Rounds() > maxRounds {
			maxRounds = net.Rounds()
		}
	}
	if maxRounds > 250 {
		t.Errorf("sparse square used %d rounds; expected n-independent constant", maxRounds)
	}
}

func TestSparseSquareRejectsDense(t *testing.T) {
	g := graphs.Complete(16, false)
	net := clique.New(16)
	_, err := subgraph.SparseSquare(net, g)
	if !errors.Is(err, subgraph.ErrTooDense) {
		t.Fatalf("err = %v, want ErrTooDense", err)
	}
}

func TestSparseSquareRejectsMisuse(t *testing.T) {
	if _, err := subgraph.SparseSquare(clique.New(16), graphs.Cycle(16, true)); err == nil {
		t.Error("directed graph accepted")
	}
	if _, err := subgraph.SparseSquare(clique.New(4), graphs.Cycle(4, false)); !errors.Is(err, ccmm.ErrSize) {
		t.Error("tiny clique accepted")
	}
}
