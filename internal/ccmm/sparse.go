package ccmm

import (
	"errors"
	"fmt"

	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/ring"
	"github.com/algebraic-clique/algclique/internal/routing"
)

// This file is EngineSparse: a density-aware sparse semiring matrix
// multiplication engine, the general form of the paper's §1.2 remark that
// the Theorem 4 tile machinery "can be interpreted as an efficient routine
// for sparse matrix multiplication, under a specific definition of
// sparseness". Le Gall's follow-up (Further Algebraic Algorithms in the
// Congested Clique, arXiv:1608.02674) shows general sparse products run in
// O((ρ_A·ρ_B)^{1/3}/n^{2/3} + 1) rounds; this engine realises the tile
// half of that programme on the simulator.
//
// Every contribution to P = S·T is a triple (x, y, z) with S[x][y] and
// T[y][z] both nonzero — the generalisation of the 2-walk x–y–z. Writing
// ca(y) for the nonzero count of S's column y and rb(y) for that of T's
// row y, the triples through middle index y number w(y) = ca(y)·rb(y),
// and the engine routes them with the Lemma 12 tiles:
//
//  1. transpose   — each nonzero S[x][y] ships to column owner y
//                   (≤ one value per ordered pair: one flush);
//  2. census      — every y broadcasts (ca(y), rb(y)) in one word; all
//                   nodes reject with ErrTooDense unless Σ w(y) < 2n² —
//                   the exact condition that specialises to the paper's
//                   Σ deg(y)² < 2n² when S = T = an undirected adjacency
//                   matrix — and compute the same tile allocation with
//                   sides f(y) = max(1, 2^⌊log₂(√w(y)/4)⌋);
//  3. spread      — y splits its column list a(y) into f chunks over the
//                   tile's row nodes A(y) and its row list b(y) over the
//                   column nodes B(y), as (index, value) tuple streams;
//  4. forward     — each a ∈ A(y) forwards its a(y)-chunk to every
//                   b ∈ B(y); tiles are disjoint, so each ordered pair
//                   carries at most one chunk;
//  5. gather      — b now holds all of a(y) and its own b(y)-chunk, forms
//                   the partial products (z, S[x][y]⊗T[y][z]) and routes
//                   each to output row owner x;
//  6. accumulate  — x folds the received tuples into its output row with
//                   the semiring addition (commutative and, for every
//                   shipped algebra, order-independent, so the result is
//                   bit-identical to the dense engines').
//
// All traffic after the census is oblivious — chunk sizes and tile
// placements are computable by every node from the broadcast counts — and
// rides the routing layer's Auto strategy, so skewed loads fall back to
// Lenzen-style two-phase delivery. The tuple streams travel through both
// transport planes: the wire plane encodes them with ring.TupleCodec (one
// chunk per ordered pair per phase), the direct plane hands typed
// []ring.Tuple[T] slices end-to-end with the identical word cost charged
// analytically from the same TupleCodec EncodedLen sums.

// ErrTooDense reports that the operands fail the Σ ca(y)·rb(y) < 2n²
// density bound of the sparse tile engine, so the Lemma 12 packing is not
// guaranteed to exist. The density-aware planner falls back to the
// resolved dense engine when it sees this error mid-call; callers forcing
// EngineSparse receive it directly (test with errors.Is).
var ErrTooDense = errors.New("ccmm: operands too dense for the sparse tile engine")

// minSparseN is the smallest clique the Lemma 12 packing argument covers:
// Σ f(y)² ≤ n + Σ w(y)/16 < n + n²/8 ≤ k² needs n ≥ 8.
const minSparseN = 8

// SparseMul computes P = S·T over an arbitrary semiring with the sparse
// tile engine — O((ρ_A·ρ_B)^{1/3}/n^{2/3} + 1) rounds on operands sparse
// enough for the Lemma 12 packing (Σ ca(y)·rb(y) < 2n²), ErrTooDense
// otherwise. Requires n ≥ 8; see the file comment for the phase structure.
func SparseMul[T any](net *clique.Network, sr ring.Semiring[T], codec ring.Codec[T], s, t *RowMat[T]) (*RowMat[T], error) {
	return SparseMulScratch[T](net, nil, sr, codec, s, t)
}

// SparseMulScratch is SparseMul with caller-owned scratch pools,
// dispatched on the network's transport like every other engine.
func SparseMulScratch[T any](net *clique.Network, sc *Scratch, sr ring.Semiring[T], codec ring.Codec[T], s, t *RowMat[T]) (p *RowMat[T], err error) {
	defer catchAbort(&err)
	n := net.N()
	if err := s.validate(n); err != nil {
		return nil, err
	}
	if err := t.validate(n); err != nil {
		return nil, err
	}
	if n < minSparseN {
		return nil, fmt.Errorf("ccmm: sparse engine needs n ≥ %d for the Lemma 12 packing, got %d: %w", minSparseN, n, ErrSize)
	}
	switch net.Transport() {
	case clique.TransportWire:
		return sparseWire[T](net, sc, sr, codec, s, t)
	case clique.TransportVerify:
		return runVerified(net, func(net2 *clique.Network, wire bool) (*RowMat[T], error) {
			if wire {
				return sparseWire[T](net2, nil, sr, codec, s, t)
			}
			return sparseDirect[T](net2, sc, sr, codec, s, t)
		})
	default:
		return sparseDirect[T](net, sc, sr, codec, s, t)
	}
}

// sparse returns the scratch's pooled sparse-engine tables.
func (sc *Scratch) sparse() *sparseState {
	if sc.sp == nil {
		sc.sp = &sparseState{}
	}
	return sc.sp
}

// growInts returns s resized to length k (contents stale).
func growInts[V int | int32 | clique.Word](s []V, k int) []V {
	if cap(s) < k {
		return make([]V, k)
	}
	return s[:k]
}

// sparseCensus runs the engine's census round: every node y broadcasts
// (ca(y), rb(y)) packed into one word, and all nodes check the density
// bound and compute the identical tile tables. sp.ca and sp.rb hold each
// node's own counts on entry and everyone's counts on return.
//
// The reverse indices are CSR-shaped: sp.rowYs[sp.rowOff[p]:sp.rowOff[p+1]]
// lists the tiles whose row range contains node p (ascending y), and
// colOff/colYs do the same for column ranges.
func sparseCensus(net *clique.Network, sp *sparseState, n int) error {
	net.Phase("mmsparse/census")
	sp.nnz = growInts(sp.nnz, n)
	for y := 0; y < n; y++ {
		sp.nnz[y] = clique.Word(sp.ca[y])<<32 | clique.Word(sp.rb[y])
	}
	got := net.BroadcastWord(sp.nnz)
	sp.fs = growInts(sp.fs, n)
	var total int64
	for y := 0; y < n; y++ {
		ca, rb := int(got[y]>>32), int(got[y]&0xffffffff)
		sp.ca[y], sp.rb[y] = ca, rb
		w := int64(ca) * int64(rb)
		total += w
		sp.fs[y] = TileSideFor(w)
	}
	if bound := int64(2) * int64(n) * int64(n); total >= bound {
		return fmt.Errorf("%w: Σ ca·rb = %d ≥ 2n² = %d", ErrTooDense, total, bound)
	}
	tiles, err := AllocateTiles(sp.fs, n)
	if err != nil {
		return err // unreachable under the density bound for n ≥ 8
	}
	sp.tiles = tiles

	// Build both reverse indices with one counting pass each; filling in
	// ascending y keeps every per-node list y-sorted, so all iteration
	// orders downstream are deterministic.
	sp.rowOff = growInts(sp.rowOff, n+1)
	sp.colOff = growInts(sp.colOff, n+1)
	for p := 0; p <= n; p++ {
		sp.rowOff[p], sp.colOff[p] = 0, 0
	}
	for _, t := range tiles {
		if !t.Allocated {
			continue
		}
		for i := 0; i < t.F; i++ {
			sp.rowOff[t.Row+i+1]++
			sp.colOff[t.Col+i+1]++
		}
	}
	for p := 0; p < n; p++ {
		sp.rowOff[p+1] += sp.rowOff[p]
		sp.colOff[p+1] += sp.colOff[p]
	}
	sp.rowYs = growInts(sp.rowYs, int(sp.rowOff[n]))
	sp.colYs = growInts(sp.colYs, int(sp.colOff[n]))
	cur := growInts(sp.nnz, n) // the census words are spent; reuse as cursors
	for p := 0; p < n; p++ {
		cur[p] = clique.Word(sp.rowOff[p])
	}
	for _, t := range tiles {
		if !t.Allocated {
			continue
		}
		for i := 0; i < t.F; i++ {
			p := t.Row + i
			sp.rowYs[cur[p]] = int32(t.Y)
			cur[p]++
		}
	}
	for p := 0; p < n; p++ {
		cur[p] = clique.Word(sp.colOff[p])
	}
	for _, t := range tiles {
		if !t.Allocated {
			continue
		}
		for i := 0; i < t.F; i++ {
			p := t.Col + i
			sp.colYs[cur[p]] = int32(t.Y)
			cur[p]++
		}
	}
	return nil
}

// spreadCounts returns the A-part and B-part tuple counts of the spread
// message from tile t to grid node dst — zero when dst is outside the
// respective range. Every node computes the same counts from the census,
// which keeps the spread and forward traffic oblivious.
func spreadCounts(t Tile, ca, rb, dst int) (ka, kb int) {
	if i := dst - t.Row; i >= 0 && i < t.F {
		lo, hi := chunkBounds(ca, t.F, i)
		ka = hi - lo
	}
	if j := dst - t.Col; j >= 0 && j < t.F {
		lo, hi := chunkBounds(rb, t.F, j)
		kb = hi - lo
	}
	return ka, kb
}

// countRowNNZ fills counts[v] with the number of entries of m.Rows[v] not
// equal to the semiring zero, parallelised over the worker pool.
func countRowNNZ[T any](net *clique.Network, sr ring.Semiring[T], zero T, m *RowMat[T], counts []int) {
	net.ForEach(func(v int) {
		var k int
		for _, x := range m.Rows[v] {
			if !sr.Equal(x, zero) {
				k++
			}
		}
		counts[v] = k
	})
}

// sparseWire is the encoded plane: tuple streams travel as TupleCodec
// chunks, one chunk per ordered pair per phase.
func sparseWire[T any](net *clique.Network, sc *Scratch, sr ring.Semiring[T], codec ring.Codec[T], s, t *RowMat[T]) (*RowMat[T], error) {
	n := net.N()
	if sc == nil {
		sc = NewScratch()
	}
	bc := ring.AsBulk[T](codec)
	tc := ring.TupleCodec[T]{Val: bc}
	ts := typedFrom[T](sc)
	tts := typedFrom[ring.Tuple[T]](sc)
	sp := sc.sparse()
	zero := sr.Zero()
	growBufs(&ts.bufs, n)
	growBufs(&tts.bufs, n)
	growBufs(&tts.bufs2, n)
	growBufs(&tts.bufs3, n)
	sp.ca = growInts(sp.ca, n)
	sp.rb = growInts(sp.rb, n)

	// Phase 1: transpose — ship each nonzero S[x][y] to column owner y.
	// At most one value per ordered pair, so per-link loads never exceed
	// the value width and direct per-link delivery is already optimal.
	net.Phase("mmsparse/transpose")
	countRowNNZ(net, sr, zero, t, sp.rb)
	msgs := sc.getPayload(n)
	net.ForEach(func(x int) {
		vb := nodeBuf(ts.bufs, x, 1)
		out := msgs[x]
		for y, v := range s.Rows[x] {
			if !sr.Equal(v, zero) {
				vb[0] = v
				out[y] = bc.EncodeSlice(out[y][:0], vb)
			}
		}
	})
	for x := 0; x < n; x++ {
		for y, ws := range msgs[x] {
			if len(ws) > 0 {
				net.SendVec(x, y, ws)
			}
		}
	}
	mail := net.Flush()
	net.ForEach(func(y int) {
		var ca int
		for x := 0; x < n; x++ {
			if len(mail.From(y, x)) > 0 {
				ca++
			}
		}
		aL := nodeBuf(tts.bufs, y, ca)[:0]
		var one [1]T
		for x := 0; x < n; x++ {
			if ws := mail.From(y, x); len(ws) > 0 {
				bc.DecodeSlice(one[:], ws)
				aL = append(aL, ring.Tuple[T]{Idx: int32(x), Val: one[0]})
			}
		}
		tts.bufs[y] = aL
		sp.ca[y] = ca
	})
	sc.putPayload(msgs)

	// Phase 2: census + tile tables; the density bound is enforced here.
	if err := sparseCensus(net, sp, n); err != nil {
		return nil, err
	}

	// Phase 3: spread — y ships its a(y)-chunks over A(y) and b(y)-chunks
	// over B(y). A destination in both ranges receives one combined chunk,
	// A-part first.
	net.Phase("mmsparse/spread")
	msgs = sc.getPayload(n)
	net.ForEach(func(y int) {
		tl := sp.tiles[y]
		if !tl.Allocated {
			return
		}
		aL := tts.bufs[y][:sp.ca[y]]
		bL := nodeBuf(tts.bufs2, y, sp.rb[y])[:0]
		for z, v := range t.Rows[y] {
			if !sr.Equal(v, zero) {
				bL = append(bL, ring.Tuple[T]{Idx: int32(z), Val: v})
			}
		}
		tts.bufs2[y] = bL
		vb := ts.bufs[y]
		for i := 0; i < tl.F; i++ {
			dst := tl.Row + i
			lo, hi := chunkBounds(sp.ca[y], tl.F, i)
			comp := tts.bufs3[y][:0]
			comp = append(comp, aL[lo:hi]...)
			if j := dst - tl.Col; j >= 0 && j < tl.F {
				blo, bhi := chunkBounds(sp.rb[y], tl.F, j)
				comp = append(comp, bL[blo:bhi]...)
			}
			tts.bufs3[y] = comp
			if len(comp) > 0 {
				msgs[y][dst], vb = tc.EncodeSlice(msgs[y][dst][:0], comp, vb)
			}
		}
		for j := 0; j < tl.F; j++ {
			dst := tl.Col + j
			if i := dst - tl.Row; i >= 0 && i < tl.F {
				continue // combined with the A-part above
			}
			blo, bhi := chunkBounds(sp.rb[y], tl.F, j)
			if bhi > blo {
				msgs[y][dst], vb = tc.EncodeSlice(msgs[y][dst][:0], bL[blo:bhi], vb)
			}
		}
		ts.bufs[y] = vb
	})
	in := routing.ExchangeScratch(net, routing.Auto, sc.rt, msgs)

	// Decode the received chunks: node p keeps its A-chunks (to forward)
	// and B-chunks (for the gather) in one flat per-node buffer, windowed
	// per tile through pooled view matrices.
	viewsA := tts.getViews(n)
	viewsB := tts.getViews(n)
	net.ForEach(func(p int) {
		total := 0
		for _, y := range sp.rowYs[sp.rowOff[p]:sp.rowOff[p+1]] {
			ka, kb := spreadCounts(sp.tiles[y], sp.ca[y], sp.rb[y], p)
			total += ka + kb
		}
		for _, y := range sp.colYs[sp.colOff[p]:sp.colOff[p+1]] {
			tl := sp.tiles[y]
			if i := p - tl.Row; i >= 0 && i < tl.F {
				continue // counted with the combined chunk above
			}
			_, kb := spreadCounts(tl, sp.ca[y], sp.rb[y], p)
			total += kb
		}
		flat := nodeBuf(tts.bufs, p, total)
		vb := ts.bufs[p]
		off := 0
		decode := func(y int32, ka, kb int) {
			k := ka + kb
			if k == 0 {
				return
			}
			out := flat[off : off+k]
			vb = tc.DecodeSlice(out, in[p][y], vb)
			if ka > 0 {
				viewsA[p][y] = out[:ka]
			}
			if kb > 0 {
				viewsB[p][y] = out[ka:]
			}
			off += k
		}
		for _, y := range sp.rowYs[sp.rowOff[p]:sp.rowOff[p+1]] {
			ka, kb := spreadCounts(sp.tiles[y], sp.ca[y], sp.rb[y], p)
			decode(y, ka, kb)
		}
		for _, y := range sp.colYs[sp.colOff[p]:sp.colOff[p+1]] {
			tl := sp.tiles[y]
			if i := p - tl.Row; i >= 0 && i < tl.F {
				continue
			}
			_, kb := spreadCounts(tl, sp.ca[y], sp.rb[y], p)
			decode(y, 0, kb)
		}
		ts.bufs[p] = vb
	})
	sc.putPayload(msgs)

	// Phase 4: forward — a ships each tile's a(y)-chunk to the tile's
	// column nodes. Tiles are disjoint, so each ordered pair carries at
	// most one chunk.
	net.Phase("mmsparse/forward")
	fmsgs := sc.getPayload(n)
	net.ForEach(func(a int) {
		vb := ts.bufs[a]
		for _, y := range sp.rowYs[sp.rowOff[a]:sp.rowOff[a+1]] {
			chunk := viewsA[a][y]
			if len(chunk) == 0 {
				continue
			}
			tl := sp.tiles[y]
			for j := 0; j < tl.F; j++ {
				b := tl.Col + j
				fmsgs[a][b], vb = tc.EncodeSlice(fmsgs[a][b][:0], chunk, vb)
			}
		}
		ts.bufs[a] = vb
	})
	fin := routing.ExchangeScratch(net, routing.Auto, sc.rt, fmsgs)

	// Phase 5: gather — b reassembles a(y), forms the partial products
	// against its b(y)-chunk, and routes each (z, value) to row owner x.
	net.Phase("mmsparse/gather")
	gpays := tts.getPay(n)
	net.ForEach(func(b int) {
		vb := ts.bufs[b]
		out := gpays[b]
		for _, y := range sp.colYs[sp.colOff[b]:sp.colOff[b+1]] {
			bchunk := viewsB[b][y]
			if len(bchunk) == 0 {
				continue
			}
			tl := sp.tiles[y]
			for a := tl.Row; a < tl.Row+tl.F; a++ {
				lo, hi := chunkBounds(sp.ca[y], tl.F, a-tl.Row)
				if hi == lo {
					continue
				}
				ach := nodeBuf(tts.bufs2, b, hi-lo)
				vb = tc.DecodeSlice(ach, fin[b][a], vb)
				for _, at := range ach {
					dst := out[at.Idx]
					for _, bt := range bchunk {
						dst = append(dst, ring.Tuple[T]{Idx: bt.Idx, Val: sr.Mul(at.Val, bt.Val)})
					}
					out[at.Idx] = dst
				}
			}
		}
		ts.bufs[b] = vb
	})
	tts.putViews(viewsA)
	tts.putViews(viewsB)
	sc.putPayload(fmsgs)
	gmsgs := sc.getPayload(n)
	net.ForEach(func(b int) {
		vb := ts.bufs[b]
		for x, tups := range gpays[b] {
			if len(tups) > 0 {
				gmsgs[b][x], vb = tc.EncodeSlice(gmsgs[b][x][:0], tups, vb)
			}
		}
		ts.bufs[b] = vb
	})
	// The gather's receive pattern is data-dependent (which pairs carry
	// products depends on the inputs), so this exchange goes through the
	// dynamic variant: idle pairs must read as empty, never as a stale
	// scratch window.
	gin := routing.ExchangeDynamic(net, routing.Auto, sc.rt, gmsgs)
	tts.putPay(gpays)
	sc.putPayload(gmsgs)

	// Phase 6: accumulate.
	net.Phase("mmsparse/accumulate")
	p := NewRowMat[T](n)
	errs := make([]error, n)
	net.ForEach(func(x int) {
		row := p.Rows[x]
		for j := range row {
			row[j] = zero
		}
		vb := ts.bufs[x]
		for b := 0; b < n; b++ {
			ws := gin[x][b]
			if len(ws) == 0 {
				continue
			}
			k := tc.CountFor(len(ws))
			if k < 0 {
				errs[x] = fmt.Errorf("ccmm: malformed %d-word tuple chunk in sparse gather: %w", len(ws), ErrSize)
				return
			}
			tups := nodeBuf(tts.bufs2, x, k)
			vb = tc.DecodeSlice(tups, ws, vb)
			for _, tp := range tups {
				row[tp.Idx] = sr.Add(row[tp.Idx], tp.Val)
			}
		}
		ts.bufs[x] = vb
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return p, nil
}

// sparseDirect is the data plane: the same phases with identical charging,
// but the tuple streams travel as typed []ring.Tuple[T] payload slices by
// reference, their wire cost charged analytically from TupleCodec
// EncodedLen sums.
func sparseDirect[T any](net *clique.Network, sc *Scratch, sr ring.Semiring[T], codec ring.Codec[T], s, t *RowMat[T]) (*RowMat[T], error) {
	n := net.N()
	if sc == nil {
		sc = NewScratch()
	}
	bc := ring.AsBulk[T](codec)
	tc := ring.TupleCodec[T]{Val: bc}
	ts := typedFrom[T](sc)
	tts := typedFrom[ring.Tuple[T]](sc)
	sp := sc.sparse()
	zero := sr.Zero()
	growBufs(&tts.bufs, n)
	growBufs(&tts.bufs2, n)
	sp.ca = growInts(sp.ca, n)
	sp.rb = growInts(sp.rb, n)
	tupleWords := func(elems int) int64 { return int64(tc.EncodedLen(elems)) }

	// Phase 1: transpose — each nonzero S[x][y] rides as a one-element
	// payload window, charged EncodedLen(1) analytic words.
	net.Phase("mmsparse/transpose")
	countRowNNZ(net, sr, zero, t, sp.rb)
	tpay := ts.getPay(n)
	oneWords := int64(bc.EncodedLen(1))
	net.ForEach(func(x int) {
		row := tpay[x]
		for y, v := range s.Rows[x] {
			if !sr.Equal(v, zero) {
				row[y] = append(row[y][:0], v)
			}
		}
	})
	// Payload enqueue is single-threaded, like the engines' exchange loops.
	for x := 0; x < n; x++ {
		row := tpay[x]
		for y := range row {
			if len(row[y]) > 0 {
				net.SendPayload(x, y, oneWords, &row[y])
			}
		}
	}
	mail := net.Flush()
	net.ForEach(func(y int) {
		var ca int
		for x := 0; x < n; x++ {
			if len(mail.PayloadsFrom(y, x)) > 0 {
				ca++
			}
		}
		aL := nodeBuf(tts.bufs, y, ca)[:0]
		for x := 0; x < n; x++ {
			if ps := mail.PayloadsFrom(y, x); len(ps) > 0 {
				aL = append(aL, ring.Tuple[T]{Idx: int32(x), Val: (*ps[0].(*[]T))[0]})
			}
		}
		tts.bufs[y] = aL
		sp.ca[y] = ca
	})
	ts.putPay(tpay)

	// Phase 2: census + tile tables.
	if err := sparseCensus(net, sp, n); err != nil {
		return nil, err
	}

	// Phase 3: spread.
	net.Phase("mmsparse/spread")
	pays := tts.getPay(n)
	net.ForEach(func(y int) {
		tl := sp.tiles[y]
		if !tl.Allocated {
			return
		}
		aL := tts.bufs[y][:sp.ca[y]]
		bL := nodeBuf(tts.bufs2, y, sp.rb[y])[:0]
		for z, v := range t.Rows[y] {
			if !sr.Equal(v, zero) {
				bL = append(bL, ring.Tuple[T]{Idx: int32(z), Val: v})
			}
		}
		tts.bufs2[y] = bL
		for i := 0; i < tl.F; i++ {
			dst := tl.Row + i
			lo, hi := chunkBounds(sp.ca[y], tl.F, i)
			msg := append(pays[y][dst][:0], aL[lo:hi]...)
			if j := dst - tl.Col; j >= 0 && j < tl.F {
				blo, bhi := chunkBounds(sp.rb[y], tl.F, j)
				msg = append(msg, bL[blo:bhi]...)
			}
			pays[y][dst] = msg
		}
		for j := 0; j < tl.F; j++ {
			dst := tl.Col + j
			if i := dst - tl.Row; i >= 0 && i < tl.F {
				continue
			}
			blo, bhi := chunkBounds(sp.rb[y], tl.F, j)
			if bhi > blo {
				pays[y][dst] = append(pays[y][dst][:0], bL[blo:bhi]...)
			}
		}
	})
	in := routing.ExchangePayload(net, routing.Auto, sc.rt, pays, tupleWords, tts.getViews(n))

	// Window the received combined chunks per tile (no copy: the views
	// alias the senders' payload buffers, which stay alive until the pay
	// matrices return to the pool at the end of the product).
	viewsA := tts.getViews(n)
	viewsB := tts.getViews(n)
	net.ForEach(func(p int) {
		for _, y := range sp.rowYs[sp.rowOff[p]:sp.rowOff[p+1]] {
			ka, kb := spreadCounts(sp.tiles[y], sp.ca[y], sp.rb[y], p)
			if ka+kb == 0 {
				continue
			}
			chunk := in[p][y][:ka+kb]
			if ka > 0 {
				viewsA[p][y] = chunk[:ka]
			}
			if kb > 0 {
				viewsB[p][y] = chunk[ka:]
			}
		}
		for _, y := range sp.colYs[sp.colOff[p]:sp.colOff[p+1]] {
			tl := sp.tiles[y]
			if i := p - tl.Row; i >= 0 && i < tl.F {
				continue
			}
			_, kb := spreadCounts(tl, sp.ca[y], sp.rb[y], p)
			if kb > 0 {
				viewsB[p][y] = in[p][y][:kb]
			}
		}
	})

	// Phase 4: forward — copy each tile chunk into a fresh payload buffer
	// per destination (the spread views stay untouched and alive).
	net.Phase("mmsparse/forward")
	fpays := tts.getPay(n)
	net.ForEach(func(a int) {
		for _, y := range sp.rowYs[sp.rowOff[a]:sp.rowOff[a+1]] {
			chunk := viewsA[a][y]
			if len(chunk) == 0 {
				continue
			}
			tl := sp.tiles[y]
			for j := 0; j < tl.F; j++ {
				b := tl.Col + j
				fpays[a][b] = append(fpays[a][b][:0], chunk...)
			}
		}
	})
	fin := routing.ExchangePayload(net, routing.Auto, sc.rt, fpays, tupleWords, tts.getViews(n))

	// Phase 5: gather.
	net.Phase("mmsparse/gather")
	gpays := tts.getPay(n)
	net.ForEach(func(b int) {
		out := gpays[b]
		for _, y := range sp.colYs[sp.colOff[b]:sp.colOff[b+1]] {
			bchunk := viewsB[b][y]
			if len(bchunk) == 0 {
				continue
			}
			tl := sp.tiles[y]
			for a := tl.Row; a < tl.Row+tl.F; a++ {
				lo, hi := chunkBounds(sp.ca[y], tl.F, a-tl.Row)
				if hi == lo {
					continue
				}
				for _, at := range fin[b][a][:hi-lo] {
					dst := out[at.Idx]
					for _, bt := range bchunk {
						dst = append(dst, ring.Tuple[T]{Idx: bt.Idx, Val: sr.Mul(at.Val, bt.Val)})
					}
					out[at.Idx] = dst
				}
			}
		}
	})
	gin := routing.ExchangePayload(net, routing.Auto, sc.rt, gpays, tupleWords, tts.getViews(n))

	// Phase 6: accumulate. The gather receive pattern is data-dependent,
	// but view-matrix entries are nil-cleared between uses, so idle pairs
	// read as empty.
	net.Phase("mmsparse/accumulate")
	p := NewRowMat[T](n)
	net.ForEach(func(x int) {
		row := p.Rows[x]
		for j := range row {
			row[j] = zero
		}
		for b := 0; b < n; b++ {
			for _, tp := range gin[x][b] {
				row[tp.Idx] = sr.Add(row[tp.Idx], tp.Val)
			}
		}
	})
	tts.putViews(viewsA)
	tts.putViews(viewsB)
	tts.putViews(in)
	tts.putViews(fin)
	tts.putViews(gin)
	tts.putPay(pays)
	tts.putPay(fpays)
	tts.putPay(gpays)
	return p, nil
}
