package ccmm

import (
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/matrix"
	"github.com/algebraic-clique/algclique/internal/routing"
)

// Scratch holds the reusable working state of the distributed
// multiplication engines: message matrices, encoded-word payload buffers,
// local block operands and products, and decode buffers. A session owns
// one Scratch per clique size and passes it to every product, so repeated
// multiplications — iterated squaring, Seidel's recursion, colour-coding's
// 3^k products — run allocation-free in steady state. Engines accept a nil
// Scratch and build a transient one, which still pools across the steps of
// that single product.
//
// Ownership rules (see DESIGN.md "Scratch pools"):
//
//   - A Scratch belongs to at most one in-flight product; sessions
//     guarantee this by serialising operations. Within a product, per-node
//     entries are touched only by that node's ForEach worker.
//   - Payload matrices hold message buffers owned by the scratch; entries
//     are truncated (capacity kept) between uses and only ever appended
//     into. View matrices hold borrowed slices — mailbox windows, local
//     loopback payloads — and are nil-cleared between uses, never appended
//     into.
//   - Engine inputs and outputs are never pooled: results returned to
//     callers are freshly allocated, so nothing a caller retains aliases
//     scratch state.
type Scratch struct {
	payload map[int][][][][]clique.Word // free payload matrices, by dimension
	views   map[int][][][][]clique.Word // free view matrices, by dimension
	offs    []int                       // per-link offsets for exchangeVirtual
	wloads  []int64                     // per-link analytic word loads (direct transport)
	rt      *routing.Scratch            // delivery-layer pools
	typed   []any                       // one *typedScratch[T] per element type
	sp      *sparseState                // sparse-engine census/tile tables
}

// sparseState pools the element-type-independent working set of the sparse
// engine: census words, per-node nonzero counts, tile sides and placements,
// and the CSR-shaped reverse indices mapping grid nodes to the tiles whose
// row (A) or column (B) range contains them. One product fully overwrites
// every field it reads.
type sparseState struct {
	nnz    []clique.Word // census broadcast buffer
	ca, rb []int         // per-middle-index nonzero counts (S columns, T rows)
	fs     []int         // tile sides
	tiles  []Tile
	rowOff []int32 // CSR offsets: tiles with node p in their row range
	rowYs  []int32
	colOff []int32 // CSR offsets: tiles with node p in their column range
	colYs  []int32
}

// NewScratch returns an empty scratch pool.
func NewScratch() *Scratch {
	return &Scratch{
		payload: make(map[int][][][][]clique.Word),
		views:   make(map[int][][][][]clique.Word),
		rt:      routing.NewScratch(),
	}
}

// Trim releases every pooled buffer, matrix, and typed arm the scratch has
// accumulated (they rebuild lazily on the next product). Long-lived
// sessions call it — via Clique.Trim — to drop the working set of past
// peak sizes instead of pinning it forever.
func (sc *Scratch) Trim() {
	clear(sc.payload)
	clear(sc.views)
	sc.offs = nil
	sc.wloads = nil
	sc.typed = nil
	sc.sp = nil
	sc.rt.Trim()
}

// getPayload returns a d×d message matrix whose entries are truncated to
// length zero but keep their accumulated capacity. Callers build messages
// with vmsgs[v][u] = append/EncodeSlice(vmsgs[v][u][:0], ...) and return
// the matrix with putPayload once the traffic has been handed to the
// network (which copies payloads into its queues).
func (sc *Scratch) getPayload(d int) [][][]clique.Word {
	free := sc.payload[d]
	if k := len(free); k > 0 {
		m := free[k-1]
		sc.payload[d] = free[:k-1]
		return m
	}
	m := make([][][]clique.Word, d)
	for i := range m {
		m[i] = make([][]clique.Word, d)
	}
	return m
}

// putPayload truncates every entry and returns the matrix to the pool.
func (sc *Scratch) putPayload(m [][][]clique.Word) {
	for _, row := range m {
		for i := range row {
			row[i] = row[i][:0]
		}
	}
	d := len(m)
	sc.payload[d] = append(sc.payload[d], m)
}

// getView returns a d×d matrix of nil slices for holding borrowed word
// windows (mailbox slices, loopback payloads). View entries are assigned,
// never appended into; putView drops the references.
func (sc *Scratch) getView(d int) [][][]clique.Word {
	free := sc.views[d]
	if k := len(free); k > 0 {
		m := free[k-1]
		sc.views[d] = free[:k-1]
		return m
	}
	m := make([][][]clique.Word, d)
	for i := range m {
		m[i] = make([][]clique.Word, d)
	}
	return m
}

// putView nil-clears every entry (releasing the borrowed slices) and
// returns the matrix to the pool.
func (sc *Scratch) putView(m [][][]clique.Word) {
	for _, row := range m {
		for i := range row {
			row[i] = nil
		}
	}
	d := len(m)
	sc.views[d] = append(sc.views[d], m)
}

// linkOffs returns a zeroed length-k offset array.
func (sc *Scratch) linkOffs(k int) []int {
	if cap(sc.offs) < k {
		sc.offs = make([]int, k)
	}
	o := sc.offs[:k]
	for i := range o {
		o[i] = 0
	}
	return o
}

// linkWords returns a zeroed length-k analytic word-load tally (the direct
// transport's per-real-link accounting in the virtual exchange).
func (sc *Scratch) linkWords(k int) []int64 {
	if cap(sc.wloads) < k {
		sc.wloads = make([]int64, k)
	}
	w := sc.wloads[:k]
	for i := range w {
		w[i] = 0
	}
	return w
}

// typedScratch is the element-typed arm of a Scratch: per-node buffers and
// block matrices for one T. Slices indexed by node are pre-sized on the
// engine's single-threaded path (growSlots/growBufs) so that ForEach
// workers only ever touch their own entries.
//
// A typedScratch carries no algebra state — int64 serves both the integer
// ring and the min-plus semiring — so everything in it is either fully
// overwritten per use or explicitly refilled (zero rows).
type typedScratch[T any] struct {
	bufs    []([]T) // per-node gather/scatter buffers
	bufs2   []([]T) // second per-node buffer (sparse engine B-side lists)
	bufs3   []([]T) // third per-node buffer (sparse engine compose lists)
	zeroRow []T     // one semiring-zero row, refilled per product

	// 3D engine state.
	cubeS, cubeT []*matrix.Dense[T] // per real node: received c²×c² operand blocks
	cubeProd     []*matrix.Dense[T] // per virtual node: product subcube

	// Fast bilinear engine state.
	gridS, gridT []*matrix.Dense[T]   // per node: assembled q×q operand grids
	hatS, hatT   [][]*matrix.Dense[T] // per node, per multiplication: (q/d)² pieces
	fullA, fullB []*matrix.Dense[T]   // per node w: assembled (n/d)×(n/d) operands
	fullP        []*matrix.Dense[T]   // per node w: block product
	acc, piece   []*matrix.Dense[T]   // per node: output accumulator and decode piece

	// Naive engine state.
	rows []([]T) // per-node decoded right-operand rows

	// CSR engine state: per-node tables of borrowed windows into the
	// arena buffers above (bufs/bufs2/bufs3). Window entries are
	// reassigned every product, never appended into; the tables
	// themselves keep their capacity.
	slots  []([][]T) // per-node received combined-chunk windows
	slots2 []([][]T) // per-node forwarded A-part windows
	slots3 []([][]T) // per-node outgoing gather-chunk windows

	// Free row matrices for algebra conversions (witness tagging, Boolean
	// packing).
	mats []*RowMat[T]

	// Direct-transport message state: typed payload matrices (entries are
	// scratch-owned append buffers holding algebra values, the data-plane
	// twin of Scratch.payload) and typed view matrices (entries borrow
	// rows of other scratch state or delivered payloads, nil-cleared on
	// return — the twin of Scratch.views).
	payFree  map[int][][][][]T
	viewFree map[int][][][][]T
}

// typedFrom returns the scratch's typedScratch for T, creating it on first
// use. A scratch sees a handful of element types over its life, so a
// linear scan beats a map.
func typedFrom[T any](sc *Scratch) *typedScratch[T] {
	for _, e := range sc.typed {
		if ts, ok := e.(*typedScratch[T]); ok {
			return ts
		}
	}
	ts := &typedScratch[T]{}
	sc.typed = append(sc.typed, ts)
	return ts
}

// growBufs pre-sizes a per-node buffer slice to k nodes (single-threaded).
func growBufs[T any](s *[]([]T), k int) {
	for len(*s) < k {
		*s = append(*s, nil)
	}
}

// nodeBuf returns node v's buffer with length ≥ k, growing it in place.
// Safe from v's ForEach worker once the slice is pre-sized.
func nodeBuf[T any](s []([]T), v, k int) []T {
	b := s[v]
	if cap(b) < k {
		b = make([]T, k)
		s[v] = b
	}
	return b[:k]
}

// growSlotRows pre-sizes a per-node window-table slice to k nodes
// (single-threaded).
func growSlotRows[T any](s *[]([][]T), k int) {
	for len(*s) < k {
		*s = append(*s, nil)
	}
}

// nodeSlots returns node v's window table with exactly k nil entries,
// growing it in place; the table is stored back at length k so later
// single-threaded walks over s[v] see exactly the entries of this use.
// Safe from v's ForEach worker once the outer slice is pre-sized.
func nodeSlots[T any](s []([][]T), v, k int) [][]T {
	t := s[v]
	if cap(t) < k {
		t = make([][]T, k)
	}
	t = t[:k]
	for i := range t {
		t[i] = nil
	}
	s[v] = t
	return t
}

// growSlots pre-sizes a matrix-slot slice to k entries (single-threaded).
func growSlots[T any](s *[]*matrix.Dense[T], k int) {
	for len(*s) < k {
		*s = append(*s, nil)
	}
}

// slotAt returns the rows×cols matrix in slot idx, (re)allocating when the
// slot is empty or the wrong shape. Contents are stale; callers overwrite.
// Safe from the owning ForEach worker once the slice is pre-sized.
func slotAt[T any](s []*matrix.Dense[T], idx, rows, cols int) *matrix.Dense[T] {
	d := s[idx]
	if d == nil || d.Rows() != rows || d.Cols() != cols {
		d = matrix.New[T](rows, cols)
		s[idx] = d
	}
	return d
}

// growHat pre-sizes the per-node × per-multiplication slot table.
func growHat[T any](s *[][]*matrix.Dense[T], nodes, m int) {
	for len(*s) < nodes {
		*s = append(*s, nil)
	}
	for v := range *s {
		for len((*s)[v]) < m {
			(*s)[v] = append((*s)[v], nil)
		}
	}
}

// zeroRowFor refills and returns the shared semiring-zero row of length k
// (single-threaded; ForEach workers treat it as read-only).
func (ts *typedScratch[T]) zeroRowFor(zero T, k int) []T {
	if cap(ts.zeroRow) < k {
		ts.zeroRow = make([]T, k)
	}
	ts.zeroRow = ts.zeroRow[:k]
	for i := range ts.zeroRow {
		ts.zeroRow[i] = zero
	}
	return ts.zeroRow
}

// entryRetainCap is the high-water capacity (elements) a pooled typed
// message buffer may keep; spikes above it are released on return.
const entryRetainCap = 1 << 14

// getPay borrows a d×d typed payload matrix whose entries are truncated
// but keep their capacity; callers build messages with
// pay[v][u] = append(pay[v][u][:0], ...).
func (ts *typedScratch[T]) getPay(d int) [][][]T {
	if free := ts.payFree[d]; len(free) > 0 {
		m := free[len(free)-1]
		ts.payFree[d] = free[:len(free)-1]
		return m
	}
	m := make([][][]T, d)
	for i := range m {
		m[i] = make([][]T, d)
	}
	return m
}

// putPay truncates every entry (releasing any above the high-water
// capacity) and returns the matrix to the pool.
func (ts *typedScratch[T]) putPay(m [][][]T) {
	for _, row := range m {
		for i := range row {
			if cap(row[i]) > entryRetainCap {
				row[i] = nil
			} else {
				row[i] = row[i][:0]
			}
		}
	}
	if ts.payFree == nil {
		ts.payFree = make(map[int][][][][]T)
	}
	ts.payFree[len(m)] = append(ts.payFree[len(m)], m)
}

// getViews borrows a d×d typed view matrix of nil slices for borrowed
// element windows (delivered payloads, product rows). Entries are
// assigned, never appended into.
func (ts *typedScratch[T]) getViews(d int) [][][]T {
	if free := ts.viewFree[d]; len(free) > 0 {
		m := free[len(free)-1]
		ts.viewFree[d] = free[:len(free)-1]
		return m
	}
	m := make([][][]T, d)
	for i := range m {
		m[i] = make([][]T, d)
	}
	return m
}

// putViews nil-clears every entry (releasing the borrowed slices) and
// returns the matrix to the pool.
func (ts *typedScratch[T]) putViews(m [][][]T) {
	for _, row := range m {
		for i := range row {
			row[i] = nil
		}
	}
	if ts.viewFree == nil {
		ts.viewFree = make(map[int][][][][]T)
	}
	ts.viewFree[len(m)] = append(ts.viewFree[len(m)], m)
}

// getMat borrows an n×n row matrix from the pool; contents are stale.
func (ts *typedScratch[T]) getMat(n int) *RowMat[T] {
	for k := len(ts.mats) - 1; k >= 0; k-- {
		m := ts.mats[k]
		if m.N() == n {
			ts.mats = append(ts.mats[:k], ts.mats[k+1:]...)
			return m
		}
	}
	return NewRowMat[T](n)
}

// putMat returns a borrowed row matrix to the pool.
func (ts *typedScratch[T]) putMat(m *RowMat[T]) {
	const maxPooled = 8
	if len(ts.mats) < maxPooled {
		ts.mats = append(ts.mats, m)
	}
}
