package ccmm_test

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"github.com/algebraic-clique/algclique/internal/bilinear"
	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/ring"
)

// Ablation: DESIGN.md's scheme-selection rule (maximise block dimension d,
// tie-break on fewer multiplications) against the alternatives that also
// fit a 64-node clique. Rounds scale ~3n/d² + O(1): d = 4 schemes should
// beat d = 2 regardless of m.
func BenchmarkSchemeAblation(b *testing.B) {
	r := ring.Int64{}
	rng := rand.New(rand.NewPCG(1, 1))
	const n = 64
	a, c := randIntMat(rng, n, 50), randIntMat(rng, n, 50)
	schemes := []*bilinear.Scheme{
		bilinear.Strassen(),       // d=2, m=7
		bilinear.Classical(2),     // d=2, m=8
		bilinear.StrassenPower(2), // d=4, m=49 (Pick's choice)
		bilinear.Tensor(bilinear.Strassen(), bilinear.Classical(2)), // d=4, m=56
		bilinear.Classical(4), // d=4, m=64
	}
	for _, s := range schemes {
		b.Run(fmt.Sprintf("%s-d%d-m%d", s.Name(), s.D, s.M), func(b *testing.B) {
			var rounds int64
			for i := 0; i < b.N; i++ {
				net := clique.New(n)
				if _, err := ccmm.FastBilinear[int64](net, r, r, s, ccmm.Distribute(a), ccmm.Distribute(c)); err != nil {
					b.Fatal(err)
				}
				rounds = net.Rounds()
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// Ablation: in-band witnesses double the element width of the semiring
// product (value + witness) — the price of routing tables.
func BenchmarkWitnessOverhead(b *testing.B) {
	rng := rand.New(rand.NewPCG(2, 2))
	const n = 64
	a, c := randMinPlusMat(rng, n), randMinPlusMat(rng, n)
	mp := ring.MinPlus{}
	b.Run("plain", func(b *testing.B) {
		var rounds int64
		for i := 0; i < b.N; i++ {
			net := clique.New(n)
			if _, err := ccmm.Semiring3D[int64](net, mp, mp, ccmm.Distribute(a), ccmm.Distribute(c)); err != nil {
				b.Fatal(err)
			}
			rounds = net.Rounds()
		}
		b.ReportMetric(float64(rounds), "rounds")
	})
	b.Run("witnesses", func(b *testing.B) {
		var rounds int64
		for i := 0; i < b.N; i++ {
			net := clique.New(n)
			if _, _, err := ccmm.DistanceProduct3D(net, ccmm.Distribute(a), ccmm.Distribute(c)); err != nil {
				b.Fatal(err)
			}
			rounds = net.Rounds()
		}
		b.ReportMetric(float64(rounds), "rounds")
	})
}

// Ablation: engines on the same product (n = 64 supports all three).
func BenchmarkEngineAblation(b *testing.B) {
	r := ring.Int64{}
	rng := rand.New(rand.NewPCG(3, 3))
	const n = 64
	a, c := randIntMat(rng, n, 50), randIntMat(rng, n, 50)
	for _, e := range []ccmm.Engine{ccmm.EngineFast, ccmm.Engine3D, ccmm.EngineNaive} {
		b.Run(e.String(), func(b *testing.B) {
			var rounds int64
			for i := 0; i < b.N; i++ {
				net := clique.New(n)
				if _, err := ccmm.MulRing[int64](net, e, r, r, ccmm.Distribute(a), ccmm.Distribute(c)); err != nil {
					b.Fatal(err)
				}
				rounds = net.Rounds()
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}
