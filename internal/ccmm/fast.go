package ccmm

import (
	"fmt"

	"github.com/algebraic-clique/algclique/internal/bilinear"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/matrix"
	"github.com/algebraic-clique/algclique/internal/ring"
	"github.com/algebraic-clique/algclique/internal/routing"
)

// FastBilinear computes P = S·T over a ring on an n-node clique with
// n = q², using the bilinear-scheme simulation of §2.2 (Lemma 10): the n×n
// matrices are viewed as d×d block matrices over the ring of (n/d)×(n/d)
// matrices, the scheme's m ≤ n block products run one per node, and the
// linear-combination steps are spread over the label grid [q]². Each node
// sends and receives O(m·(n/(d·√n))²) = O(n^{2-2/σ}) words, delivered in
// O(n^{1-2/σ}) rounds.
//
// A nil scheme selects bilinear.Pick(n). The scheme must satisfy m ≤ n and
// d | q.
func FastBilinear[T any](net *clique.Network, rg ring.Ring[T], codec ring.Codec[T], scheme *bilinear.Scheme, s, t *RowMat[T]) (*RowMat[T], error) {
	n := net.N()
	if err := s.validate(n); err != nil {
		return nil, err
	}
	if err := t.validate(n); err != nil {
		return nil, err
	}
	if scheme == nil {
		var err error
		scheme, err = bilinear.Pick(n)
		if err != nil {
			return nil, fmt.Errorf("ccmm: no bilinear scheme fits clique size %d (%v): %w", n, err, ErrSize)
		}
	}
	if err := scheme.Validate(); err != nil {
		return nil, err
	}
	if scheme.M > n {
		return nil, fmt.Errorf("ccmm: scheme %v needs %d multiplication sites on %d nodes: %w",
			scheme, scheme.M, n, ErrSize)
	}
	lay, err := newGridLayout(n, scheme.D)
	if err != nil {
		return nil, err
	}
	q, d, qd := lay.q, lay.d, lay.qd
	m := scheme.M
	width := codec.Width()

	groups := make([][]int, q) // ∗x∗ ordered by (v1, v3)
	for x := 0; x < q; x++ {
		groups[x] = lay.groupSet(x)
	}

	// Step 1: node v sends S[v, ∗x2∗] and T[v, ∗x2∗] to the node labelled
	// (v2, x2), for every x2 ∈ [q].
	net.Phase("mmfast/distribute")
	msgs := emptyMsgs(n)
	net.ForEach(func(v int) {
		_, v2, _ := lay.split(v)
		srow, trow := s.Rows[v], t.Rows[v]
		buf := make([]T, q)
		for x2 := 0; x2 < q; x2++ {
			u := lay.nodeAt(v2, x2)
			for i, col := range groups[x2] {
				buf[i] = srow[col]
			}
			msgs[v][u] = appendEncoded(codec, msgs[v][u], buf)
			for i, col := range groups[x2] {
				buf[i] = trow[col]
			}
			msgs[v][u] = appendEncoded(codec, msgs[v][u], buf)
		}
	})
	in := routing.Exchange(net, routing.Auto, msgs)

	// Step 2: node (x1, x2) assembles S[∗x1∗, ∗x2∗] and T[∗x1∗, ∗x2∗]
	// (q×q, block-row order) and computes the scheme's linear combinations
	// Ŝ(w)[x1∗, x2∗], T̂(w)[x1∗, x2∗] — one (q/d)×(q/d) piece per w.
	net.Phase("mmfast/encode")
	shat := make([][]*matrix.Dense[T], n) // shat[v][w]
	that := make([][]*matrix.Dense[T], n)
	net.ForEach(func(v int) {
		x1, _ := lay.label(v)
		sg := matrix.New[T](q, q)
		tg := matrix.New[T](q, q)
		for pos, sender := range groups[x1] {
			ws := in[v][sender]
			sg.SetRow(pos, decodeVec(codec, ws[:q*width], q))
			tg.SetRow(pos, decodeVec(codec, ws[q*width:2*q*width], q))
		}
		block := func(g *matrix.Dense[T], i, j int) *matrix.Dense[T] {
			return g.Sub(i*qd, (i+1)*qd, j*qd, (j+1)*qd)
		}
		shat[v] = make([]*matrix.Dense[T], m)
		that[v] = make([]*matrix.Dense[T], m)
		for w := 0; w < m; w++ {
			sp := matrix.Zeros[T](rg, qd, qd)
			for _, term := range scheme.Alpha[w] {
				matrix.ScaleAddInto(rg, sp, term.C, block(sg, term.I, term.J))
			}
			tp := matrix.Zeros[T](rg, qd, qd)
			for _, term := range scheme.Beta[w] {
				matrix.ScaleAddInto(rg, tp, term.C, block(tg, term.I, term.J))
			}
			shat[v][w] = sp
			that[v][w] = tp
		}
	})

	// Step 3: every node sends its (q/d)² pieces of Ŝ(w), T̂(w) to node w.
	net.Phase("mmfast/combine")
	msgs = clearMsgs(msgs)
	net.ForEach(func(v int) {
		for w := 0; w < m; w++ {
			payload := make([]T, 0, 2*qd*qd)
			for i := 0; i < qd; i++ {
				payload = append(payload, shat[v][w].Row(i)...)
			}
			for i := 0; i < qd; i++ {
				payload = append(payload, that[v][w].Row(i)...)
			}
			msgs[v][w] = encodeVec(codec, payload)
		}
	})
	in = routing.Exchange(net, routing.Auto, msgs)

	// Step 4: node w < m assembles Ŝ(w), T̂(w) ((n/d)×(n/d)) and multiplies.
	net.Phase("mmfast/multiply")
	nd := n / d
	phat := make([]*matrix.Dense[T], n)
	net.ForEach(func(w int) {
		if w >= m {
			return
		}
		sfull := matrix.New[T](nd, nd)
		tfull := matrix.New[T](nd, nd)
		for x1 := 0; x1 < q; x1++ {
			for x2 := 0; x2 < q; x2++ {
				sender := lay.nodeAt(x1, x2)
				vals := decodeVec(codec, in[w][sender], 2*qd*qd)
				for i := 0; i < qd; i++ {
					for j := 0; j < qd; j++ {
						sfull.Set(x1*qd+i, x2*qd+j, vals[i*qd+j])
						tfull.Set(x1*qd+i, x2*qd+j, vals[qd*qd+i*qd+j])
					}
				}
			}
		}
		phat[w] = matrix.Mul(rg, sfull, tfull)
	})

	// Step 5: node w returns P̂(w)[x1∗, x2∗] to the node labelled (x1, x2).
	net.Phase("mmfast/products")
	msgs = clearMsgs(msgs)
	net.ForEach(func(w int) {
		if w >= m {
			return
		}
		for x1 := 0; x1 < q; x1++ {
			for x2 := 0; x2 < q; x2++ {
				payload := make([]T, 0, qd*qd)
				for i := 0; i < qd; i++ {
					payload = append(payload, phat[w].Row(x1*qd + i)[x2*qd:(x2+1)*qd]...)
				}
				msgs[w][lay.nodeAt(x1, x2)] = encodeVec(codec, payload)
			}
		}
	})
	in = routing.Exchange(net, routing.Auto, msgs)

	// Step 6: node (x1, x2) decodes the m pieces and accumulates
	// P[i·x1∗, j·x2∗] = Σ_w λ_ijw P̂(w)[x1∗, x2∗], yielding P[∗x1∗, ∗x2∗].
	net.Phase("mmfast/decode")
	pg := make([]*matrix.Dense[T], n)
	net.ForEach(func(v int) {
		out := matrix.Zeros[T](rg, q, q)
		for w := 0; w < m; w++ {
			piece := matrix.New[T](qd, qd)
			vals := decodeVec(codec, in[v][w], qd*qd)
			for i := 0; i < qd; i++ {
				copy(piece.Row(i), vals[i*qd:(i+1)*qd])
			}
			for _, term := range scheme.Lambda[w] {
				dst := out.Sub(term.I*qd, (term.I+1)*qd, term.J*qd, (term.J+1)*qd)
				matrix.ScaleAddInto(rg, dst, term.C, piece)
				out.SetSub(term.I*qd, term.J*qd, dst)
			}
		}
		pg[v] = out
	})

	// Step 7: node (x1, x2) sends P[u, ∗x2∗] to each row owner u ∈ ∗x1∗.
	net.Phase("mmfast/assemble")
	msgs = clearMsgs(msgs)
	net.ForEach(func(v int) {
		x1, _ := lay.label(v)
		for pos, u := range groups[x1] {
			msgs[v][u] = encodeVec(codec, pg[v].Row(pos))
		}
	})
	in = routing.Exchange(net, routing.Auto, msgs)

	p := NewRowMat[T](n)
	net.ForEach(func(u int) {
		_, u2, _ := lay.split(u)
		row := p.Rows[u]
		for x2 := 0; x2 < q; x2++ {
			sender := lay.nodeAt(u2, x2)
			piece := decodeVec(codec, in[u][sender], q)
			for i, col := range groups[x2] {
				row[col] = piece[i]
			}
		}
	})
	return p, nil
}
