package ccmm

import (
	"fmt"

	"github.com/algebraic-clique/algclique/internal/bilinear"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/matrix"
	"github.com/algebraic-clique/algclique/internal/ring"
	"github.com/algebraic-clique/algclique/internal/routing"
)

// FastBilinear computes P = S·T over a ring on an n-node clique with
// n = q², using the bilinear-scheme simulation of §2.2 (Lemma 10): the n×n
// matrices are viewed as d×d block matrices over the ring of (n/d)×(n/d)
// matrices, the scheme's m ≤ n block products run one per node, and the
// linear-combination steps are spread over the label grid [q]². Each node
// sends and receives O(m·(n/(d·√n))²) = O(n^{2-2/σ}) words, delivered in
// O(n^{1-2/σ}) rounds.
//
// A nil scheme selects bilinear.Pick(n). The scheme must satisfy m ≤ n and
// d | q.
func FastBilinear[T any](net *clique.Network, rg ring.Ring[T], codec ring.Codec[T], scheme *bilinear.Scheme, s, t *RowMat[T]) (*RowMat[T], error) {
	return FastBilinearScratch[T](net, nil, rg, codec, scheme, s, t)
}

// FastBilinearScratch is FastBilinear with caller-owned scratch pools (see
// Scratch): message payloads, the assembled grids, the per-multiplication
// combination pieces, and the block products all persist in sc across
// products. It dispatches on the network's transport: the direct plane
// moves typed row chunks end-to-end (the step-5 partial products and
// step-7 output rows as zero-copy views) with the wire words charged
// analytically from EncodedLen; the wire plane sends every row through one
// bulk EncodeSlice/DecodeSlice; TransportVerify runs both and diffs them.
// A nil sc uses a transient scratch.
func FastBilinearScratch[T any](net *clique.Network, sc *Scratch, rg ring.Ring[T], codec ring.Codec[T], scheme *bilinear.Scheme, s, t *RowMat[T]) (p *RowMat[T], err error) {
	defer catchAbort(&err)
	switch net.Transport() {
	case clique.TransportWire:
		return fastBilinearWire[T](net, sc, rg, codec, scheme, s, t)
	case clique.TransportVerify:
		return runVerified(net, func(net2 *clique.Network, wire bool) (*RowMat[T], error) {
			if wire {
				return fastBilinearWire[T](net2, nil, rg, codec, scheme, s, t)
			}
			return fastBilinearDirect[T](net2, sc, rg, codec, scheme, s, t)
		})
	default:
		return fastBilinearDirect[T](net, sc, rg, codec, scheme, s, t)
	}
}

// fastBilinearWire is the encoded bilinear-scheme algorithm (the original
// path, kept for verification and WithWireTransport).
func fastBilinearWire[T any](net *clique.Network, sc *Scratch, rg ring.Ring[T], codec ring.Codec[T], scheme *bilinear.Scheme, s, t *RowMat[T]) (*RowMat[T], error) {
	n := net.N()
	if err := s.validate(n); err != nil {
		return nil, err
	}
	if err := t.validate(n); err != nil {
		return nil, err
	}
	if scheme == nil {
		var err error
		scheme, err = bilinear.Pick(n)
		if err != nil {
			return nil, fmt.Errorf("ccmm: no bilinear scheme fits clique size %d (%v): %w", n, err, ErrSize)
		}
	}
	if err := scheme.Validate(); err != nil {
		return nil, err
	}
	if scheme.M > n {
		return nil, fmt.Errorf("ccmm: scheme %v needs %d multiplication sites on %d nodes: %w",
			scheme, scheme.M, n, ErrSize)
	}
	lay, err := newGridLayout(n, scheme.D)
	if err != nil {
		return nil, err
	}
	if sc == nil {
		sc = NewScratch()
	}
	bc := ring.AsBulk[T](codec)
	ts := typedFrom[T](sc)
	q, d, qd := lay.q, lay.d, lay.qd
	m := scheme.M
	qLen := bc.EncodedLen(q)  // words per length-q row chunk
	pLen := bc.EncodedLen(qd) // words per length-q/d piece chunk
	zero := rg.Zero()

	groups := make([][]int, q) // ∗x∗ ordered by (v1, v3)
	for x := 0; x < q; x++ {
		groups[x] = lay.groupSet(x)
	}
	growBufs(&ts.bufs, n)
	growSlots(&ts.gridS, n)
	growSlots(&ts.gridT, n)
	growHat(&ts.hatS, n, m)
	growHat(&ts.hatT, n, m)
	growSlots(&ts.fullA, n)
	growSlots(&ts.fullB, n)
	growSlots(&ts.fullP, n)
	growSlots(&ts.acc, n)
	growSlots(&ts.piece, n)

	// Step 1: node v sends S[v, ∗x2∗] and T[v, ∗x2∗] to the node labelled
	// (v2, x2), for every x2 ∈ [q] — one message of two row chunks.
	net.Phase("mmfast/distribute")
	msgs := sc.getPayload(n)
	net.ForEach(func(v int) {
		_, v2, _ := lay.split(v)
		srow, trow := s.Rows[v], t.Rows[v]
		buf := nodeBuf(ts.bufs, v, q)
		for x2 := 0; x2 < q; x2++ {
			u := lay.nodeAt(v2, x2)
			msg := msgs[v][u][:0]
			gatherCols(buf, srow, groups[x2], n, zero)
			msg = bc.EncodeSlice(msg, buf)
			gatherCols(buf, trow, groups[x2], n, zero)
			msgs[v][u] = bc.EncodeSlice(msg, buf)
		}
	})
	in := routing.ExchangeScratch(net, routing.Auto, sc.rt, msgs)
	sc.putPayload(msgs)

	// Step 2: node (x1, x2) assembles S[∗x1∗, ∗x2∗] and T[∗x1∗, ∗x2∗]
	// (q×q, block-row order) and computes the scheme's linear combinations
	// Ŝ(w)[x1∗, x2∗], T̂(w)[x1∗, x2∗] — one (q/d)×(q/d) piece per w,
	// accumulated through block views with no copies.
	net.Phase("mmfast/encode")
	net.ForEach(func(v int) {
		x1, _ := lay.label(v)
		sg := slotAt(ts.gridS, v, q, q)
		tg := slotAt(ts.gridT, v, q, q)
		for pos, sender := range groups[x1] {
			ws := in[v][sender]
			bc.DecodeSlice(sg.Row(pos), ws)
			bc.DecodeSlice(tg.Row(pos), ws[qLen:])
		}
		for w := 0; w < m; w++ {
			sp := slotAt(ts.hatS[v], w, qd, qd)
			sp.Fill(zero)
			for _, term := range scheme.Alpha[w] {
				matrix.ScaleAddFromBlock(rg, sp, term.C, sg, term.I*qd, term.J*qd)
			}
			tp := slotAt(ts.hatT[v], w, qd, qd)
			tp.Fill(zero)
			for _, term := range scheme.Beta[w] {
				matrix.ScaleAddFromBlock(rg, tp, term.C, tg, term.I*qd, term.J*qd)
			}
		}
	})

	// Step 3: every node sends its (q/d)² pieces of Ŝ(w), T̂(w) to node w,
	// one row chunk at a time.
	net.Phase("mmfast/combine")
	msgs = sc.getPayload(n)
	net.ForEach(func(v int) {
		for w := 0; w < m; w++ {
			msg := msgs[v][w][:0]
			sp, tp := ts.hatS[v][w], ts.hatT[v][w]
			for i := 0; i < qd; i++ {
				msg = bc.EncodeSlice(msg, sp.Row(i))
			}
			for i := 0; i < qd; i++ {
				msg = bc.EncodeSlice(msg, tp.Row(i))
			}
			msgs[v][w] = msg
		}
	})
	in = routing.ExchangeScratch(net, routing.Auto, sc.rt, msgs)
	sc.putPayload(msgs)

	// Step 4: node w < m assembles Ŝ(w), T̂(w) ((n/d)×(n/d)), decoding each
	// chunk straight into its row window, and multiplies.
	net.Phase("mmfast/multiply")
	nd := n / d
	net.ForEach(func(w int) {
		if w >= m {
			return
		}
		sfull := slotAt(ts.fullA, w, nd, nd)
		tfull := slotAt(ts.fullB, w, nd, nd)
		for x1 := 0; x1 < q; x1++ {
			for x2 := 0; x2 < q; x2++ {
				ws := in[w][lay.nodeAt(x1, x2)]
				for i := 0; i < qd; i++ {
					bc.DecodeSlice(sfull.Row(x1*qd + i)[x2*qd:(x2+1)*qd], ws[i*pLen:])
					bc.DecodeSlice(tfull.Row(x1*qd + i)[x2*qd:(x2+1)*qd], ws[(qd+i)*pLen:])
				}
			}
		}
		matrix.MulInto(rg, slotAt(ts.fullP, w, nd, nd), sfull, tfull)
	})

	// Step 5: node w returns P̂(w)[x1∗, x2∗] to the node labelled (x1, x2).
	net.Phase("mmfast/products")
	msgs = sc.getPayload(n)
	net.ForEach(func(w int) {
		if w >= m {
			return
		}
		phat := ts.fullP[w]
		for x1 := 0; x1 < q; x1++ {
			for x2 := 0; x2 < q; x2++ {
				u := lay.nodeAt(x1, x2)
				msg := msgs[w][u][:0]
				for i := 0; i < qd; i++ {
					msg = bc.EncodeSlice(msg, phat.Row(x1*qd + i)[x2*qd:(x2+1)*qd])
				}
				msgs[w][u] = msg
			}
		}
	})
	in = routing.ExchangeScratch(net, routing.Auto, sc.rt, msgs)
	sc.putPayload(msgs)

	// Step 6: node (x1, x2) decodes the m pieces and accumulates
	// P[i·x1∗, j·x2∗] = Σ_w λ_ijw P̂(w)[x1∗, x2∗], yielding P[∗x1∗, ∗x2∗].
	net.Phase("mmfast/decode")
	net.ForEach(func(v int) {
		out := slotAt(ts.acc, v, q, q)
		out.Fill(zero)
		piece := slotAt(ts.piece, v, qd, qd)
		for w := 0; w < m; w++ {
			ws := in[v][w]
			for i := 0; i < qd; i++ {
				bc.DecodeSlice(piece.Row(i), ws[i*pLen:])
			}
			for _, term := range scheme.Lambda[w] {
				matrix.ScaleAddToBlock(rg, out, term.I*qd, term.J*qd, term.C, piece)
			}
		}
	})

	// Step 7: node (x1, x2) sends P[u, ∗x2∗] to each row owner u ∈ ∗x1∗.
	net.Phase("mmfast/assemble")
	msgs = sc.getPayload(n)
	net.ForEach(func(v int) {
		x1, _ := lay.label(v)
		out := ts.acc[v]
		for pos, u := range groups[x1] {
			msgs[v][u] = bc.EncodeSlice(msgs[v][u][:0], out.Row(pos))
		}
	})
	in = routing.ExchangeScratch(net, routing.Auto, sc.rt, msgs)
	sc.putPayload(msgs)

	p := NewRowMat[T](n)
	net.ForEach(func(u int) {
		_, u2, _ := lay.split(u)
		row := p.Rows[u]
		piece := nodeBuf(ts.bufs, u, q)
		for x2 := 0; x2 < q; x2++ {
			bc.DecodeSlice(piece, in[u][lay.nodeAt(u2, x2)])
			for i, col := range groups[x2] {
				row[col] = piece[i]
			}
		}
	})
	return p, nil
}

// fastBilinearDirect is the bilinear-scheme algorithm on the data plane:
// the same seven steps and charging as fastBilinearWire, but every chunk
// is a typed element slice — gathered rows append straight into payload
// buffers, received chunks copy (or alias) straight into the grids, full
// operands, and output rows, with no codec transform anywhere.
func fastBilinearDirect[T any](net *clique.Network, sc *Scratch, rg ring.Ring[T], codec ring.Codec[T], scheme *bilinear.Scheme, s, t *RowMat[T]) (*RowMat[T], error) {
	n := net.N()
	if err := s.validate(n); err != nil {
		return nil, err
	}
	if err := t.validate(n); err != nil {
		return nil, err
	}
	if scheme == nil {
		var err error
		scheme, err = bilinear.Pick(n)
		if err != nil {
			return nil, fmt.Errorf("ccmm: no bilinear scheme fits clique size %d (%v): %w", n, err, ErrSize)
		}
	}
	if err := scheme.Validate(); err != nil {
		return nil, err
	}
	if scheme.M > n {
		return nil, fmt.Errorf("ccmm: scheme %v needs %d multiplication sites on %d nodes: %w",
			scheme, scheme.M, n, ErrSize)
	}
	lay, err := newGridLayout(n, scheme.D)
	if err != nil {
		return nil, err
	}
	if sc == nil {
		sc = NewScratch()
	}
	bc := ring.AsBulk[T](codec)
	ts := typedFrom[T](sc)
	q, d, qd := lay.q, lay.d, lay.qd
	m := scheme.M
	qLen := int64(bc.EncodedLen(q))  // analytic words per length-q row chunk
	pLen := int64(bc.EncodedLen(qd)) // analytic words per length-q/d piece chunk
	rowWords := func(elems int) int64 { return int64(elems/q) * qLen }
	pieceWords := func(elems int) int64 { return int64(elems/qd) * pLen }
	zero := rg.Zero()

	groups := make([][]int, q) // ∗x∗ ordered by (v1, v3)
	for x := 0; x < q; x++ {
		groups[x] = lay.groupSet(x)
	}
	growSlots(&ts.gridS, n)
	growSlots(&ts.gridT, n)
	growHat(&ts.hatS, n, m)
	growHat(&ts.hatT, n, m)
	growSlots(&ts.fullA, n)
	growSlots(&ts.fullB, n)
	growSlots(&ts.fullP, n)
	growSlots(&ts.acc, n)
	growSlots(&ts.piece, n)

	// Step 1: node v sends S[v, ∗x2∗] and T[v, ∗x2∗] to node (v2, x2) —
	// one typed message of two row chunks.
	net.Phase("mmfast/distribute")
	pays := ts.getPay(n)
	net.ForEach(func(v int) {
		_, v2, _ := lay.split(v)
		srow, trow := s.Rows[v], t.Rows[v]
		for x2 := 0; x2 < q; x2++ {
			u := lay.nodeAt(v2, x2)
			msg := appendCols(pays[v][u][:0], srow, groups[x2], n, zero)
			pays[v][u] = appendCols(msg, trow, groups[x2], n, zero)
		}
	})
	in := routing.ExchangePayload(net, routing.Auto, sc.rt, pays, rowWords, ts.getViews(n))

	// Step 2: assemble the q×q grids straight from the received chunks and
	// compute the scheme's linear combinations.
	net.Phase("mmfast/encode")
	net.ForEach(func(v int) {
		x1, _ := lay.label(v)
		sg := slotAt(ts.gridS, v, q, q)
		tg := slotAt(ts.gridT, v, q, q)
		for pos, sender := range groups[x1] {
			ws := in[v][sender]
			sg.SetRow(pos, ws[:q])
			tg.SetRow(pos, ws[q:])
		}
		for w := 0; w < m; w++ {
			sp := slotAt(ts.hatS[v], w, qd, qd)
			sp.Fill(zero)
			for _, term := range scheme.Alpha[w] {
				matrix.ScaleAddFromBlock(rg, sp, term.C, sg, term.I*qd, term.J*qd)
			}
			tp := slotAt(ts.hatT[v], w, qd, qd)
			tp.Fill(zero)
			for _, term := range scheme.Beta[w] {
				matrix.ScaleAddFromBlock(rg, tp, term.C, tg, term.I*qd, term.J*qd)
			}
		}
	})
	ts.putViews(in)
	ts.putPay(pays)

	// Step 3: every node sends its (q/d)² pieces of Ŝ(w), T̂(w) to node w.
	net.Phase("mmfast/combine")
	pays = ts.getPay(n)
	net.ForEach(func(v int) {
		for w := 0; w < m; w++ {
			msg := pays[v][w][:0]
			sp, tp := ts.hatS[v][w], ts.hatT[v][w]
			for i := 0; i < qd; i++ {
				msg = append(msg, sp.Row(i)...)
			}
			for i := 0; i < qd; i++ {
				msg = append(msg, tp.Row(i)...)
			}
			pays[v][w] = msg
		}
	})
	in = routing.ExchangePayload(net, routing.Auto, sc.rt, pays, pieceWords, ts.getViews(n))

	// Step 4: node w < m assembles Ŝ(w), T̂(w), copying each chunk straight
	// into its row window, and multiplies.
	net.Phase("mmfast/multiply")
	nd := n / d
	net.ForEach(func(w int) {
		if w >= m {
			return
		}
		sfull := slotAt(ts.fullA, w, nd, nd)
		tfull := slotAt(ts.fullB, w, nd, nd)
		for x1 := 0; x1 < q; x1++ {
			for x2 := 0; x2 < q; x2++ {
				ws := in[w][lay.nodeAt(x1, x2)]
				for i := 0; i < qd; i++ {
					copy(sfull.Row(x1*qd + i)[x2*qd:(x2+1)*qd], ws[i*qd:(i+1)*qd])
					copy(tfull.Row(x1*qd + i)[x2*qd:(x2+1)*qd], ws[(qd+i)*qd:(qd+i+1)*qd])
				}
			}
		}
		matrix.MulInto(rg, slotAt(ts.fullP, w, nd, nd), sfull, tfull)
	})
	ts.putViews(in)
	ts.putPay(pays)

	// Step 5: node w returns P̂(w)[x1∗, x2∗] to node (x1, x2) — zero-copy
	// views of the block product's row windows.
	net.Phase("mmfast/products")
	pays = ts.getPay(n)
	net.ForEach(func(w int) {
		if w >= m {
			return
		}
		phat := ts.fullP[w]
		for x1 := 0; x1 < q; x1++ {
			for x2 := 0; x2 < q; x2++ {
				u := lay.nodeAt(x1, x2)
				msg := pays[w][u][:0]
				for i := 0; i < qd; i++ {
					msg = append(msg, phat.Row(x1*qd + i)[x2*qd:(x2+1)*qd]...)
				}
				pays[w][u] = msg
			}
		}
	})
	in = routing.ExchangePayload(net, routing.Auto, sc.rt, pays, pieceWords, ts.getViews(n))

	// Step 6: node (x1, x2) accumulates the m pieces into its output grid,
	// reading the received chunks in place.
	net.Phase("mmfast/decode")
	net.ForEach(func(v int) {
		out := slotAt(ts.acc, v, q, q)
		out.Fill(zero)
		piece := slotAt(ts.piece, v, qd, qd)
		for w := 0; w < m; w++ {
			ws := in[v][w]
			for i := 0; i < qd; i++ {
				piece.SetRow(i, ws[i*qd:(i+1)*qd])
			}
			for _, term := range scheme.Lambda[w] {
				matrix.ScaleAddToBlock(rg, out, term.I*qd, term.J*qd, term.C, piece)
			}
		}
	})
	ts.putViews(in)
	ts.putPay(pays)

	// Step 7: node (x1, x2) sends P[u, ∗x2∗] to each row owner u ∈ ∗x1∗ as
	// views of its accumulator rows.
	net.Phase("mmfast/assemble")
	vout := ts.getViews(n)
	net.ForEach(func(v int) {
		x1, _ := lay.label(v)
		out := ts.acc[v]
		for pos, u := range groups[x1] {
			vout[v][u] = out.Row(pos)
		}
	})
	in = routing.ExchangePayload(net, routing.Auto, sc.rt, vout, rowWords, ts.getViews(n))

	p := NewRowMat[T](n)
	net.ForEach(func(u int) {
		_, u2, _ := lay.split(u)
		row := p.Rows[u]
		for x2 := 0; x2 < q; x2++ {
			ws := in[u][lay.nodeAt(u2, x2)]
			for i, col := range groups[x2] {
				row[col] = ws[i]
			}
		}
	})
	ts.putViews(in)
	ts.putViews(vout)
	return p, nil
}
