package ccmm

import (
	"fmt"
	"sort"
)

// This file is the Lemma 12 tile machinery, generalised from the 4-cycle
// detector's degree-driven form to arbitrary per-node workloads: node y's
// tile side is derived from the weight w(y) = ca(y)·rb(y), the number of
// middle-index products routed through y. For the undirected adjacency
// square ca = rb = deg and everything reduces exactly to the paper's
// f(y) = max(1, 2^⌊log₂(deg(y)/4)⌋); the packing argument is unchanged
// because it only ever used Σ f(y)² ≤ Σ w(y)/16 + n.

// Tile is the square block A(y)×B(y) of the k×k index grid allocated to
// node y by Lemma 12: rows [Row, Row+F) index the nodes of A(y) and
// columns [Col, Col+F) the nodes of B(y).
type Tile struct {
	Y         int // owning node
	F         int // side length (power of two)
	Row, Col  int
	Allocated bool
}

// A returns the node set A(y) = {Row, …, Row+F-1}.
func (t Tile) A() []int { return seqInts(t.Row, t.F) }

// B returns the node set B(y) = {Col, …, Col+F-1}.
func (t Tile) B() []int { return seqInts(t.Col, t.F) }

func seqInts(start, count int) []int {
	out := make([]int, count)
	for i := range out {
		out[i] = start + i
	}
	return out
}

// TileSideFor maps a node's workload weight w = ca·rb to its tile side
// f = max(1, 2^⌊log₂(√w/4)⌋), so f² ≤ w/16 whenever w ≥ 16. For the
// adjacency square (w = deg²) this is the paper's max(1, 2^⌊log₂(deg/4)⌋)
// bit for bit, since √(deg²) = deg exactly. Weights below 1 carry no
// products and get no tile (side 0).
func TileSideFor(w int64) int {
	if w < 1 {
		return 0
	}
	r := isqrt64(w)
	if r < 8 {
		return 1
	}
	return Pow2Floor(int(r / 4))
}

// isqrt64 returns ⌊√x⌋ for x ≥ 0 using integer Newton iteration (exact, so
// the tile allocation is deterministic across platforms).
func isqrt64(x int64) int64 {
	if x < 2 {
		return x
	}
	r := x
	y := (r + 1) / 2
	for y < r {
		r = y
		y = (r + x/r) / 2
	}
	return r
}

// Pow2Floor returns the largest power of two ≤ x (1 for x ≤ 1).
func Pow2Floor(x int) int {
	p := 1
	for p*2 <= x {
		p *= 2
	}
	return p
}

// AllocateTiles packs one side-fs[y] tile per node with fs[y] ≥ 1 into the
// k×k grid, k = n rounded down to a power of two, and returns the
// placements (fs[y] = 0 means node y needs no tile). Sides must be powers
// of two. Placement is a deterministic buddy-style quadtree fill in
// decreasing size order, which succeeds whenever Σ fs[y]² ≤ k² — the
// caller's density bound (Σ w(y) < 2n² with sides from TileSideFor, for
// n ≥ 8) guarantees it.
func AllocateTiles(fs []int, n int) ([]Tile, error) {
	k := Pow2Floor(n)
	tiles := make([]Tile, len(fs))
	order := make([]int, 0, len(fs))
	var area int
	for y, f := range fs {
		tiles[y] = Tile{Y: y}
		if f < 1 {
			continue
		}
		tiles[y].F = f
		order = append(order, y)
		area += f * f
	}
	if area > k*k {
		return nil, fmt.Errorf("ccmm: tile area %d exceeds %d² (density bound violated)", area, k)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if tiles[a].F != tiles[b].F {
			return tiles[a].F > tiles[b].F
		}
		return a < b
	})

	// Buddy allocator over the k×k square: free lists of empty s×s blocks.
	free := make(map[int][][2]int)
	free[k] = [][2]int{{0, 0}}
	place := func(s int) ([2]int, bool) {
		sz := s
		for sz <= k && len(free[sz]) == 0 {
			sz *= 2
		}
		if sz > k {
			return [2]int{}, false
		}
		blk := free[sz][len(free[sz])-1]
		free[sz] = free[sz][:len(free[sz])-1]
		for sz > s {
			sz /= 2
			r, c := blk[0], blk[1]
			free[sz] = append(free[sz], [2]int{r + sz, c}, [2]int{r, c + sz}, [2]int{r + sz, c + sz})
		}
		return blk, true
	}
	for _, y := range order {
		blk, ok := place(tiles[y].F)
		if !ok {
			return nil, fmt.Errorf("ccmm: tile packing failed for node %d (internal invariant)", y)
		}
		tiles[y].Row, tiles[y].Col = blk[0], blk[1]
		tiles[y].Allocated = true
	}
	return tiles, nil
}

// chunkBounds splits a total-element list into f near-equal contiguous
// pieces of size ≤ ⌈total/f⌉ and returns the half-open bounds of piece i.
// Every node computes the same bounds from the globally known census, which
// is what keeps the tile routing oblivious after the census round.
func chunkBounds(total, f, i int) (lo, hi int) {
	per := (total + f - 1) / f
	lo = i * per
	if lo >= total {
		return total, total
	}
	hi = lo + per
	if hi > total {
		hi = total
	}
	return lo, hi
}
