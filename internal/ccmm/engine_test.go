package ccmm_test

import (
	"math/rand/v2"
	"testing"

	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/matrix"
	"github.com/algebraic-clique/algclique/internal/ring"
)

// TestResolveNeverNaiveForLargeCliques is the regression test for the
// silent perf cliff the padded cube layout removes: before it, EngineAuto
// resolved every product on a non-cube clique with no bilinear scheme to
// the O(n)-round NaiveGather. Now Semiring3D covers every size, so Auto
// falls back to Naive only below n = 8.
func TestResolveNeverNaiveForLargeCliques(t *testing.T) {
	// Min-plus products: Engine3D for every n ≥ 8, cube or not.
	for n := 8; n <= 130; n++ {
		if got := ccmm.EngineAuto.Resolve(n, false); got != ccmm.Engine3D {
			t.Fatalf("Resolve(%d, false) = %v, want Engine3D", n, got)
		}
	}
	// Ring products on sizes with no bilinear scheme (non-square or
	// odd-root square): must resolve to Engine3D, never EngineNaive.
	for _, n := range []int{8, 10, 20, 25, 27, 60, 125, 200} {
		if got := ccmm.EngineAuto.Resolve(n, true); got != ccmm.Engine3D {
			t.Fatalf("Resolve(%d, true) = %v, want Engine3D (no scheme fits)", n, got)
		}
	}
	// Scheme-compatible sizes still prefer the bilinear engine.
	for _, n := range []int{16, 64, 100, 256} {
		if got := ccmm.EngineAuto.Resolve(n, true); got != ccmm.EngineFast {
			t.Fatalf("Resolve(%d, true) = %v, want EngineFast", n, got)
		}
	}
	// Tiny cliques keep the gather baseline (except the trivial cube).
	if got := ccmm.EngineAuto.Resolve(1, false); got != ccmm.Engine3D {
		t.Errorf("Resolve(1, false) = %v, want Engine3D", got)
	}
	for n := 2; n < 8; n++ {
		if got := ccmm.EngineAuto.Resolve(n, false); got != ccmm.EngineNaive {
			t.Errorf("Resolve(%d, false) = %v, want EngineNaive", n, got)
		}
	}
	// Forced engines resolve to themselves.
	for _, e := range []ccmm.Engine{ccmm.EngineFast, ccmm.Engine3D, ccmm.EngineNaive} {
		if got := e.Resolve(60, false); got != e {
			t.Errorf("%v.Resolve = %v, want identity", e, got)
		}
	}
}

// TestMulMinPlusAutoBeatsNaiveOnNonCubes is the acceptance criterion of the
// generalised layout: on non-cube cliques EngineAuto now runs the 3D
// algorithm, producing results identical to NaiveGather while charging
// strictly fewer rounds.
func TestMulMinPlusAutoBeatsNaiveOnNonCubes(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 1))
	mp := ring.MinPlus{}
	for _, n := range []int{60, 100} {
		a, b := randMinPlusMat(rng, n), randMinPlusMat(rng, n)
		auto := clique.New(n)
		pAuto, err := ccmm.MulMinPlus(auto, ccmm.EngineAuto, ccmm.Distribute(a), ccmm.Distribute(b))
		if err != nil {
			t.Fatalf("n=%d auto: %v", n, err)
		}
		naive := clique.New(n)
		pNaive, err := ccmm.MulMinPlus(naive, ccmm.EngineNaive, ccmm.Distribute(a), ccmm.Distribute(b))
		if err != nil {
			t.Fatalf("n=%d naive: %v", n, err)
		}
		if !matrix.Equal[int64](mp, pAuto.Collect(), pNaive.Collect()) {
			t.Fatalf("n=%d: auto and naive products disagree", n)
		}
		if auto.Rounds() >= naive.Rounds() {
			t.Errorf("n=%d: auto (%d rounds) not cheaper than naive (%d rounds)",
				n, auto.Rounds(), naive.Rounds())
		}
	}
}

// TestMulRingAutoOnSchemelessSizes pins the same cliff removal for ring
// products: a non-cube size with no bilinear scheme must run the 3D
// algorithm (and agree with the naive baseline).
func TestMulRingAutoOnSchemelessSizes(t *testing.T) {
	rng := rand.New(rand.NewPCG(32, 1))
	r := ring.Int64{}
	for _, n := range []int{20, 60} {
		a, b := randIntMat(rng, n, 20), randIntMat(rng, n, 20)
		net := clique.New(n)
		p, err := ccmm.MulInt(net, ccmm.EngineAuto, ccmm.Distribute(a), ccmm.Distribute(b))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !matrix.Equal[int64](r, p.Collect(), matrix.Mul[int64](r, a, b)) {
			t.Fatalf("n=%d: auto ring product wrong", n)
		}
		if n >= 60 {
			naive := clique.New(n)
			if _, err := ccmm.MulInt(naive, ccmm.EngineNaive, ccmm.Distribute(a), ccmm.Distribute(b)); err != nil {
				t.Fatal(err)
			}
			if net.Rounds() >= naive.Rounds() {
				t.Errorf("n=%d: auto (%d rounds) not cheaper than naive (%d rounds)",
					n, net.Rounds(), naive.Rounds())
			}
		}
	}
}
