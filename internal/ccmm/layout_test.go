package ccmm

import (
	"testing"
	"testing/quick"
)

// TestCubeLayoutBijection reproduces the Figure 1 index structure on the
// padded cube: the virtual node ↔ (v1, v2, v3) mapping is a bijection over
// the c³ virtual nodes and the digit groups x∗∗ partition them. Non-cube
// sizes exercise the padding.
func TestCubeLayoutBijection(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8, 26, 27, 28, 64, 100, 125} {
		lay := newCubeLayout(n)
		if lay.vn != lay.c*lay.c*lay.c || lay.vn < n || (lay.c-1)*(lay.c-1)*(lay.c-1) >= n {
			t.Fatalf("n=%d: bad padded cube c=%d vn=%d", n, lay.c, lay.vn)
		}
		seen := make([]bool, lay.vn)
		for v := 0; v < lay.vn; v++ {
			v1, v2, v3 := lay.split(v)
			if v1 < 0 || v1 >= lay.c || v2 < 0 || v2 >= lay.c || v3 < 0 || v3 >= lay.c {
				t.Fatalf("n=%d: split(%d) digits out of range", n, v)
			}
			if lay.join(v1, v2, v3) != v {
				t.Fatalf("n=%d: join(split(%d)) != %d", n, v, v)
			}
			seen[v] = true
		}
		for v, s := range seen {
			if !s {
				t.Fatalf("virtual node %d unmapped", v)
			}
		}
		// Digit groups partition the virtual cube.
		covered := make([]bool, lay.vn)
		for x := 0; x < lay.c; x++ {
			set := lay.firstDigitSet(x)
			if len(set) != lay.c*lay.c {
				t.Fatalf("|%d∗∗| = %d, want c²", x, len(set))
			}
			for _, v := range set {
				if covered[v] {
					t.Fatalf("node %d in two digit groups", v)
				}
				covered[v] = true
				if v1, _, _ := lay.split(v); v1 != x {
					t.Fatalf("node %d in wrong group %d", v, x)
				}
			}
		}
		for v, c := range covered {
			if !c {
				t.Fatalf("node %d uncovered by digit groups", v)
			}
		}
	}
}

// TestCubeLayoutHostAssignment pins the virtual → real simulation map:
// virtual nodes below n host themselves (input rows never move), every real
// node simulates at most ⌈c³/n⌉ virtual nodes, and every virtual node has a
// valid host.
func TestCubeLayoutHostAssignment(t *testing.T) {
	for _, n := range []int{1, 2, 5, 7, 26, 28, 60, 100} {
		lay := newCubeLayout(n)
		load := make([]int, n)
		for v := 0; v < lay.vn; v++ {
			r := lay.real(v)
			if r < 0 || r >= n {
				t.Fatalf("n=%d: virtual %d hosted by out-of-range %d", n, v, r)
			}
			if v < n && r != v {
				t.Fatalf("n=%d: virtual %d < n hosted by %d, want itself", n, v, r)
			}
			load[r]++
		}
		maxLoad := (lay.vn + n - 1) / n
		for r, l := range load {
			if l > maxLoad {
				t.Fatalf("n=%d: real node %d simulates %d virtual nodes, max ⌈c³/n⌉ = %d", n, r, l, maxLoad)
			}
		}
	}
}

// TestGridLayoutBijection reproduces the Figure 2 index structure: the
// mixed-radix node mapping, the label bijection, and the block-row order
// of the groups ∗x∗.
func TestGridLayoutBijection(t *testing.T) {
	cases := []struct{ n, d int }{{16, 2}, {16, 4}, {64, 4}, {64, 8}, {256, 4}, {144, 6}}
	for _, tc := range cases {
		lay, err := newGridLayout(tc.n, tc.d)
		if err != nil {
			t.Fatal(err)
		}
		q := lay.q
		seen := make([]bool, tc.n)
		for v := 0; v < tc.n; v++ {
			v1, v2, v3 := lay.split(v)
			if v1 < 0 || v1 >= lay.d || v2 < 0 || v2 >= q || v3 < 0 || v3 >= lay.qd {
				t.Fatalf("split(%d) out of range", v)
			}
			if lay.join(v1, v2, v3) != v {
				t.Fatalf("join(split(%d)) != %d", v, v)
			}
			x1, x2 := lay.label(v)
			if lay.nodeAt(x1, x2) != v {
				t.Fatalf("label bijection broken at %d", v)
			}
			seen[v] = true
		}
		for v, s := range seen {
			if !s {
				t.Fatalf("node %d unmapped", v)
			}
		}
		covered := make([]bool, tc.n)
		for x := 0; x < q; x++ {
			group := lay.groupSet(x)
			if len(group) != q {
				t.Fatalf("|∗%d∗| = %d, want q = %d", x, len(group), q)
			}
			for pos, v := range group {
				if covered[v] {
					t.Fatalf("node %d in two groups", v)
				}
				covered[v] = true
				if _, v2, _ := lay.split(v); v2 != x {
					t.Fatalf("node %d in wrong group", v)
				}
				if lay.posInGroup(v) != pos {
					t.Fatalf("posInGroup(%d) = %d, want %d", v, lay.posInGroup(v), pos)
				}
				// Block-row order: position i·(q/d)+u3 is block i, row u3.
				v1, _, v3 := lay.split(v)
				if pos != v1*lay.qd+v3 {
					t.Fatalf("group order violates block-row convention at %d", v)
				}
			}
		}
	}
}

func TestGridLayoutRejectsBadShapes(t *testing.T) {
	if _, err := newGridLayout(15, 2); err == nil {
		t.Error("non-square accepted")
	}
	if _, err := newGridLayout(16, 3); err == nil {
		t.Error("non-divisor block dim accepted")
	}
	if _, err := newGridLayout(16, 0); err == nil {
		t.Error("zero block dim accepted")
	}
}

func TestGridLayoutQuick(t *testing.T) {
	lay, err := newGridLayout(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	roundTrip := func(raw uint16) bool {
		v := int(raw) % 64
		v1, v2, v3 := lay.split(v)
		return lay.join(v1, v2, v3) == v
	}
	if err := quick.Check(roundTrip, nil); err != nil {
		t.Error(err)
	}
}
