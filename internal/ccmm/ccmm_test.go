package ccmm_test

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"github.com/algebraic-clique/algclique/internal/bilinear"
	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/matrix"
	"github.com/algebraic-clique/algclique/internal/ring"
)

func randIntMat(rng *rand.Rand, n int, lim int64) *matrix.Dense[int64] {
	m := matrix.New[int64](n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, rng.Int64N(2*lim+1)-lim)
		}
	}
	return m
}

func randMinPlusMat(rng *rand.Rand, n int) *matrix.Dense[int64] {
	m := matrix.New[int64](n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.IntN(4) == 0 {
				m.Set(i, j, ring.Inf)
			} else {
				m.Set(i, j, rng.Int64N(100))
			}
		}
	}
	return m
}

func TestSemiring3DInt64(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	r := ring.Int64{}
	for _, n := range []int{1, 8, 27, 64} {
		a, b := randIntMat(rng, n, 30), randIntMat(rng, n, 30)
		net := clique.New(n)
		p, err := ccmm.Semiring3D[int64](net, r, r, ccmm.Distribute(a), ccmm.Distribute(b))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !matrix.Equal[int64](r, p.Collect(), matrix.Mul[int64](r, a, b)) {
			t.Fatalf("n=%d: 3D product wrong", n)
		}
	}
}

func TestSemiring3DMinPlus(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 1))
	mp := ring.MinPlus{}
	for _, n := range []int{8, 27} {
		a, b := randMinPlusMat(rng, n), randMinPlusMat(rng, n)
		net := clique.New(n)
		p, err := ccmm.Semiring3D[int64](net, mp, mp, ccmm.Distribute(a), ccmm.Distribute(b))
		if err != nil {
			t.Fatal(err)
		}
		if !matrix.Equal[int64](mp, p.Collect(), matrix.Mul[int64](mp, a, b)) {
			t.Fatalf("n=%d: min-plus 3D product wrong", n)
		}
	}
}

func TestSemiring3DBool(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 1))
	br := ring.Bool{}
	n := 27
	a, b := matrix.New[bool](n, n), matrix.New[bool](n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.IntN(3) == 0)
			b.Set(i, j, rng.IntN(3) == 0)
		}
	}
	net := clique.New(n)
	p, err := ccmm.Semiring3D[bool](net, br, br, ccmm.Distribute(a), ccmm.Distribute(b))
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal[bool](br, p.Collect(), matrix.Mul[bool](br, a, b)) {
		t.Fatal("boolean 3D product wrong")
	}
}

func TestSemiring3DRoundScaling(t *testing.T) {
	// Rounds should scale like ~n^{1/3}: per-node volume is 3n^{4/3}+o(·)
	// words and the router delivers h words per node in ~2h/n rounds.
	r := ring.Int64{}
	rng := rand.New(rand.NewPCG(4, 1))
	for _, n := range []int{27, 64, 125} {
		a, b := randIntMat(rng, n, 5), randIntMat(rng, n, 5)
		net := clique.New(n)
		if _, err := ccmm.Semiring3D[int64](net, r, r, ccmm.Distribute(a), ccmm.Distribute(b)); err != nil {
			t.Fatal(err)
		}
		cbrt := math.Cbrt(float64(n))
		bound := int64(11*cbrt + 15)
		if net.Rounds() > bound {
			t.Errorf("n=%d: %d rounds exceeds O(n^{1/3}) budget %d", n, net.Rounds(), bound)
		}
	}
	// Non-cube sizes pay a constant multiplexing factor (≤ ⌈c³/n⌉ virtual
	// nodes per real node) but must keep the O(n^{1/3}) shape.
	for _, n := range []int{28, 60, 100, 150, 200} {
		a, b := randIntMat(rng, n, 5), randIntMat(rng, n, 5)
		net := clique.New(n)
		if _, err := ccmm.Semiring3D[int64](net, r, r, ccmm.Distribute(a), ccmm.Distribute(b)); err != nil {
			t.Fatal(err)
		}
		cbrt := math.Cbrt(float64(n))
		bound := int64(24*cbrt + 15)
		if net.Rounds() > bound {
			t.Errorf("n=%d: %d rounds exceeds padded O(n^{1/3}) budget %d", n, net.Rounds(), bound)
		}
	}
}

// awkwardSizes are the clique sizes the padded cube layout must handle:
// tiny, just-below/at/above a cube, and the acceptance sizes 60 and 100.
var awkwardSizes = []int{2, 5, 7, 26, 27, 28, 60, 100}

// TestSemiring3DArbitrarySizesInt64 pins the tentpole contract: the 3D
// algorithm accepts every clique size, not just perfect cubes, and agrees
// with the local reference product.
func TestSemiring3DArbitrarySizesInt64(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 1))
	r := ring.Int64{}
	for _, n := range awkwardSizes {
		a, b := randIntMat(rng, n, 30), randIntMat(rng, n, 30)
		net := clique.New(n)
		p, err := ccmm.Semiring3D[int64](net, r, r, ccmm.Distribute(a), ccmm.Distribute(b))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !matrix.Equal[int64](r, p.Collect(), matrix.Mul[int64](r, a, b)) {
			t.Fatalf("n=%d: padded 3D product wrong", n)
		}
	}
}

func TestSemiring3DArbitrarySizesMinPlus(t *testing.T) {
	rng := rand.New(rand.NewPCG(22, 1))
	mp := ring.MinPlus{}
	for _, n := range awkwardSizes {
		a, b := randMinPlusMat(rng, n), randMinPlusMat(rng, n)
		net := clique.New(n)
		p, err := ccmm.Semiring3D[int64](net, mp, mp, ccmm.Distribute(a), ccmm.Distribute(b))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !matrix.Equal[int64](mp, p.Collect(), matrix.Mul[int64](mp, a, b)) {
			t.Fatalf("n=%d: padded min-plus 3D product wrong", n)
		}
	}
}

func TestSemiring3DArbitrarySizesBool(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 1))
	br := ring.Bool{}
	for _, n := range awkwardSizes {
		a, b := matrix.New[bool](n, n), matrix.New[bool](n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.IntN(3) == 0)
				b.Set(i, j, rng.IntN(3) == 0)
			}
		}
		net := clique.New(n)
		p, err := ccmm.Semiring3D[bool](net, br, br, ccmm.Distribute(a), ccmm.Distribute(b))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !matrix.Equal[bool](br, p.Collect(), matrix.Mul[bool](br, a, b)) {
			t.Fatalf("n=%d: padded boolean 3D product wrong", n)
		}
	}
}

// TestDistanceProduct3DArbitrarySizes runs the witness-producing variant on
// non-cube sizes: values must match the reference and every finite entry
// must carry a certifying witness.
func TestDistanceProduct3DArbitrarySizes(t *testing.T) {
	rng := rand.New(rand.NewPCG(24, 1))
	mp := ring.MinPlus{}
	for _, n := range []int{5, 26, 28, 60} {
		a, b := randMinPlusMat(rng, n), randMinPlusMat(rng, n)
		net := clique.New(n)
		p, q, err := ccmm.DistanceProduct3D(net, ccmm.Distribute(a), ccmm.Distribute(b))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !matrix.Equal[int64](mp, p.Collect(), matrix.Mul[int64](mp, a, b)) {
			t.Fatalf("n=%d: distance product values wrong", n)
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if ring.IsInf(p.Rows[u][v]) {
					continue
				}
				w := q.Rows[u][v]
				if w < 0 || w >= int64(n) {
					t.Fatalf("n=%d: witness out of range at (%d,%d): %d", n, u, v, w)
				}
				if a.At(u, int(w))+b.At(int(w), v) != p.Rows[u][v] {
					t.Fatalf("n=%d: witness %d does not certify (%d,%d)", n, w, u, v)
				}
			}
		}
	}
}

func TestSemiring3DRejectsRowMismatch(t *testing.T) {
	r := ring.Int64{}
	net := clique.New(8)
	_, err := ccmm.Semiring3D[int64](net, r, r, ccmm.NewRowMat[int64](7), ccmm.NewRowMat[int64](8))
	if !errors.Is(err, ccmm.ErrSize) {
		t.Errorf("row mismatch: err = %v", err)
	}
}

// TestMulBoolRejectsMalformedOperands pins that the semiring Boolean path
// validates shapes before its pooled operand conversion: malformed inputs
// must come back as ErrSize, not a panic out of a pooled buffer.
func TestMulBoolRejectsMalformedOperands(t *testing.T) {
	net := clique.New(8)
	ragged := ccmm.NewRowMat[int64](8)
	ragged.Rows[3] = make([]int64, 12) // longer than the clique size
	if _, err := ccmm.MulBool(net, ccmm.Engine3D, ragged, ccmm.NewRowMat[int64](8)); !errors.Is(err, ccmm.ErrSize) {
		t.Errorf("ragged left operand: err = %v, want ErrSize", err)
	}
	if _, err := ccmm.MulBool(net, ccmm.Engine3D, ccmm.NewRowMat[int64](8), ccmm.NewRowMat[int64](9)); !errors.Is(err, ccmm.ErrSize) {
		t.Errorf("oversized right operand: err = %v, want ErrSize", err)
	}
}

func TestDistanceProduct3DWitnesses(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 1))
	mp := ring.MinPlus{}
	for _, n := range []int{8, 27} {
		a, b := randMinPlusMat(rng, n), randMinPlusMat(rng, n)
		net := clique.New(n)
		p, q, err := ccmm.DistanceProduct3D(net, ccmm.Distribute(a), ccmm.Distribute(b))
		if err != nil {
			t.Fatal(err)
		}
		want := matrix.Mul[int64](mp, a, b)
		if !matrix.Equal[int64](mp, p.Collect(), want) {
			t.Fatal("distance product values wrong")
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				w := q.Rows[u][v]
				pv := p.Rows[u][v]
				if ring.IsInf(pv) {
					if w != ring.NoWitness {
						t.Fatalf("infinite entry (%d,%d) has witness %d", u, v, w)
					}
					continue
				}
				if w < 0 || w >= int64(n) {
					t.Fatalf("witness out of range at (%d,%d): %d", u, v, w)
				}
				if a.At(u, int(w))+b.At(int(w), v) != pv {
					t.Fatalf("witness %d does not certify (%d,%d)", w, u, v)
				}
			}
		}
	}
}

func TestFastBilinearInt64(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 1))
	r := ring.Int64{}
	for _, n := range []int{16, 64} {
		a, b := randIntMat(rng, n, 20), randIntMat(rng, n, 20)
		net := clique.New(n)
		p, err := ccmm.FastBilinear[int64](net, r, r, nil, ccmm.Distribute(a), ccmm.Distribute(b))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !matrix.Equal[int64](r, p.Collect(), matrix.Mul[int64](r, a, b)) {
			t.Fatalf("n=%d: fast product wrong", n)
		}
	}
}

func TestFastBilinearExplicitSchemes(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 1))
	r := ring.Int64{}
	n := 16
	schemes := []*bilinear.Scheme{
		bilinear.Strassen(),
		bilinear.Classical(2),
		bilinear.StrassenPower(2), // d=4 | q=4, m=49 > 16 → must error
	}
	for i, s := range schemes {
		a, b := randIntMat(rng, n, 10), randIntMat(rng, n, 10)
		net := clique.New(n)
		p, err := ccmm.FastBilinear[int64](net, r, r, s, ccmm.Distribute(a), ccmm.Distribute(b))
		if i == 2 {
			if !errors.Is(err, ccmm.ErrSize) {
				t.Errorf("oversized scheme accepted: %v", err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("scheme %v: %v", s, err)
		}
		if !matrix.Equal[int64](r, p.Collect(), matrix.Mul[int64](r, a, b)) {
			t.Fatalf("scheme %v: wrong product", s)
		}
	}
}

func TestFastBilinearZp(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 1))
	z := ring.NewZp(1009)
	n := 64
	a, b := matrix.New[int64](n, n), matrix.New[int64](n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.Int64N(1009))
			b.Set(i, j, rng.Int64N(1009))
		}
	}
	net := clique.New(n)
	p, err := ccmm.FastBilinear[int64](net, z, z, nil, ccmm.Distribute(a), ccmm.Distribute(b))
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal[int64](z, p.Collect(), matrix.Mul[int64](z, a, b)) {
		t.Fatal("fast product over Zp wrong")
	}
}

func TestFastBilinearPolyRing(t *testing.T) {
	// The Lemma 18 embedding: multiply matrices of monomials and check that
	// min-degrees give the distance product. Width > 1 codecs exercise the
	// bandwidth accounting too.
	pr := ring.NewPoly(9)
	mp := ring.MinPlus{}
	rng := rand.New(rand.NewPCG(9, 1))
	n := 16
	av := matrix.New[int64](n, n)
	bv := matrix.New[int64](n, n)
	ap := matrix.New[ring.PolyElem](n, n)
	bp := matrix.New[ring.PolyElem](n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x, y := rng.Int64N(5), rng.Int64N(5)
			if rng.IntN(5) == 0 {
				x = ring.Inf
			}
			av.Set(i, j, x)
			bv.Set(i, j, y)
			ap.Set(i, j, pr.Monomial(x))
			bp.Set(i, j, pr.Monomial(y))
		}
	}
	net := clique.New(n)
	p, err := ccmm.FastBilinear[ring.PolyElem](net, pr, pr, nil, ccmm.Distribute(ap), ccmm.Distribute(bp))
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.Mul[int64](mp, av, bv)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			deg, ok := pr.MinDegree(p.Rows[u][v])
			wantV := want.At(u, v)
			if !ok {
				if !ring.IsInf(wantV) && wantV < 9 {
					t.Fatalf("(%d,%d): embedding lost finite distance %d", u, v, wantV)
				}
				continue
			}
			if deg != wantV {
				t.Fatalf("(%d,%d): min-degree %d, want %d", u, v, deg, wantV)
			}
		}
	}
	// Polynomial entries are 9 words wide; words sent must reflect that.
	if net.Words() < int64(9*n*n) {
		t.Errorf("suspiciously few words (%d) for width-9 codec", net.Words())
	}
}

func TestFastBilinearRejectsBadSizes(t *testing.T) {
	r := ring.Int64{}
	for _, n := range []int{8, 15} {
		net := clique.New(n)
		a := ccmm.NewRowMat[int64](n)
		if _, err := ccmm.FastBilinear[int64](net, r, r, nil, a, a); !errors.Is(err, ccmm.ErrSize) {
			t.Errorf("n=%d: err = %v, want ErrSize", n, err)
		}
	}
}

func TestFastBilinearRoundsBeatNaiveAndScale(t *testing.T) {
	r := ring.Int64{}
	rng := rand.New(rand.NewPCG(10, 1))
	rounds := map[int]int64{}
	for _, n := range []int{64, 256} {
		a, b := randIntMat(rng, n, 5), randIntMat(rng, n, 5)
		net := clique.New(n)
		if _, err := ccmm.FastBilinear[int64](net, r, r, nil, ccmm.Distribute(a), ccmm.Distribute(b)); err != nil {
			t.Fatal(err)
		}
		rounds[n] = net.Rounds()

		naive := clique.New(n)
		if _, err := ccmm.NaiveGather[int64](naive, r, r, ccmm.Distribute(a), ccmm.Distribute(b)); err != nil {
			t.Fatal(err)
		}
		if n >= 64 && net.Rounds() >= naive.Rounds() {
			t.Errorf("n=%d: fast (%d rounds) not better than naive gather (%d rounds)",
				n, net.Rounds(), naive.Rounds())
		}
	}
	// Sub-linear growth: quadrupling n should far less than quadruple rounds.
	if rounds[256] >= 4*rounds[64] {
		t.Errorf("fast matmul rounds grew linearly: %v", rounds)
	}
}

func TestNaiveGatherMatches(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 1))
	r := ring.Int64{}
	for _, n := range []int{5, 12, 30} {
		a, b := randIntMat(rng, n, 20), randIntMat(rng, n, 20)
		net := clique.New(n)
		p, err := ccmm.NaiveGather[int64](net, r, r, ccmm.Distribute(a), ccmm.Distribute(b))
		if err != nil {
			t.Fatal(err)
		}
		if !matrix.Equal[int64](r, p.Collect(), matrix.Mul[int64](r, a, b)) {
			t.Fatalf("n=%d: naive product wrong", n)
		}
		// Gathering n² words costs ≈ 2n rounds.
		if net.Rounds() > int64(3*n+4) {
			t.Errorf("n=%d: naive gather took %d rounds", n, net.Rounds())
		}
	}
}

func TestDistributeCollectRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(12, 1))
	m := randIntMat(rng, 9, 50)
	rm := ccmm.Distribute(m)
	back := rm.Collect()
	if !matrix.Equal[int64](ring.Int64{}, m, back) {
		t.Fatal("Distribute/Collect round trip broken")
	}
	rm.Rows[0][0] = 999
	if m.At(0, 0) == 999 {
		t.Fatal("Distribute aliases the source matrix")
	}
}

func TestPhaseBreakdownRecorded(t *testing.T) {
	r := ring.Int64{}
	rng := rand.New(rand.NewPCG(13, 1))
	n := 27
	a, b := randIntMat(rng, n, 5), randIntMat(rng, n, 5)
	net := clique.New(n)
	if _, err := ccmm.Semiring3D[int64](net, r, r, ccmm.Distribute(a), ccmm.Distribute(b)); err != nil {
		t.Fatal(err)
	}
	st := net.Stats()
	names := map[string]bool{}
	var sum int64
	for _, p := range st.Phases {
		names[p.Name] = true
		sum += p.Rounds
	}
	for _, want := range []string{"mm3d/distribute", "mm3d/multiply", "mm3d/products", "mm3d/assemble"} {
		if !names[want] {
			t.Errorf("phase %q missing from stats", want)
		}
	}
	if sum != st.Rounds {
		t.Errorf("phase rounds sum %d != total %d", sum, st.Rounds)
	}
}
