package ccmm

import (
	"errors"
	"math"

	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/ring"
)

// This file is the density-aware half of the planner: a one-round census
// of the operands' per-row nonzero counts, a pair of round predictors (the
// paper's ρ-bound for the sparse engine against calibrated estimates for
// the resolved dense engine), and the adaptive dispatch that routes a
// product through EngineSparse exactly when the prediction says it wins —
// with a transparent fallback to the dense plan when the engine's own
// Σ ca·rb census rejects the operands mid-call.

// DefaultSparseThreshold is the default scale factor of the sparse/dense
// round comparison: Auto routes a product through the sparse engine when
// predictedSparseRounds ≤ threshold · predictedDenseRounds. 1 compares the
// predictions as-is; values below 1 demand a larger predicted win before
// going sparse; 0 disables the census (and the sparse engine) entirely.
const DefaultSparseThreshold = 1.0

// Route reports how the density-aware planner executed one product.
type Route struct {
	// Engine is the engine that produced the product.
	Engine Engine
	// Census reports whether the one-round density census ran.
	Census bool
	// RhoA and RhoB are the operands' total nonzero counts from the
	// census (meaningful only when Census is true).
	RhoA, RhoB int64
	// Fallback reports that the planner chose the sparse engine but its
	// Σ ca·rb bound failed mid-call, so the dense engine ran instead.
	Fallback bool
}

// Decision renders the route as the session ledger's sparse/dense tag:
// "sparse", "dense", or "dense-fallback"; empty when no census ran.
func (r Route) Decision() string {
	switch {
	case !r.Census:
		return ""
	case r.Engine == EngineSparse:
		return "sparse"
	case r.Fallback:
		return "dense-fallback"
	default:
		return "dense"
	}
}

// thresholdOn resolves the effective sparse threshold for a product on
// net: a session arms its WithSparseThreshold setting on the network per
// operation (so even products resolved deep inside graph algorithms —
// which plan via PlanFor, not PlanSparse — honour it); a bare network
// falls back to the plan's own threshold.
func (p *Plan) thresholdOn(net *clique.Network) float64 {
	if t, ok := net.SparseThreshold(); ok {
		return t
	}
	return p.SparseThreshold
}

// censusApplies reports whether the plan runs the density census on its
// products on net: only Auto plans (a forced engine is a forced engine),
// only on cliques the sparse engine covers, and only with a positive
// effective threshold.
func (p *Plan) censusApplies(net *clique.Network) bool {
	return p.Requested == EngineAuto && p.N >= minSparseN && p.thresholdOn(net) > 0
}

// nnzCensus is the planner's census round: every node broadcasts its two
// per-row nonzero counts packed into one word, and every node returns the
// same operand totals (ρ_A, ρ_B). This mirrors the degree broadcast that
// opens the Theorem 4 machinery (the sparsesq/degrees phase), lifted to
// arbitrary operands.
//
// A sparse-routed product censuses twice by design: this round sees only
// row counts (all that exists before any communication — it is what the
// routing decision is made from), while the engine's own census
// (mmsparse/census) broadcasts the column×row weights ca·rb, and ca(y)
// only exists at y after the engine's transpose. The two cannot merge —
// the decision must precede the transpose, and a broadcast costs one
// round whether it carries one packed word or two — so the sparse path's
// fixed overhead includes both, which the ρ-bound predictor's constant
// accounts for.
func nnzCensus[T any](net *clique.Network, sc *Scratch, sr ring.Semiring[T], s, t *RowMat[T]) (rhoA, rhoB int64) {
	n := net.N()
	net.Phase("mmplan/census")
	zero := sr.Zero()
	sp := sc.sparse()
	sp.ca = growInts(sp.ca, n)
	sp.rb = growInts(sp.rb, n)
	countRowNNZ(net, sr, zero, s, sp.ca)
	countRowNNZ(net, sr, zero, t, sp.rb)
	sp.nnz = growInts(sp.nnz, n)
	for v := 0; v < n; v++ {
		sp.nnz[v] = clique.Word(sp.ca[v])<<32 | clique.Word(sp.rb[v])
	}
	got := net.BroadcastWord(sp.nnz)
	for v := 0; v < n; v++ {
		rhoA += int64(got[v] >> 32)
		rhoB += int64(got[v] & 0xffffffff)
	}
	return rhoA, rhoB
}

// sparseOverheadRounds is the fixed-phase cost the ρ-bound estimate adds:
// transpose, census, and the minimum flush cost of the spread, forward,
// and gather exchanges.
const sparseOverheadRounds = 10

// sparseLoadFactor scales the ρ-bound's per-word load term to the
// simulator's measured schedules: the tile exchanges pay the load roughly
// once each in the spread, forward, and gather, so the effective
// coefficient sits near 3 (calibrated on GNP inputs at n ∈ {64, 100,
// 256}; deliberately on the high side, so borderline products stay on the
// dense engine).
const sparseLoadFactor = 3

// predictSparseRounds is the paper's ρ-bound as a planning estimate:
// tupleWords · (ρ_A·ρ_B)^{1/3} / n^{2/3}, scaled to the simulator's
// schedules, plus the fixed phases. It is a heuristic for the routing
// decision, never the ledger — the simulator still charges whatever the
// schedules actually cost.
func predictSparseRounds(n int, rhoA, rhoB int64, tupleWords int) float64 {
	load := math.Cbrt(float64(rhoA)*float64(rhoB)) / math.Pow(float64(n), 2.0/3.0)
	return sparseLoadFactor*float64(tupleWords)*load + sparseOverheadRounds
}

// predictDenseRounds estimates the resolved dense engine's round count for
// an n-clique product whose elements occupy wd words each (fractional for
// packing transports: wd = EncodedLen(n)/n). The constants are calibrated
// against the simulator's measured schedules — the 3D engine moves
// Θ(c⁴/n) words per link, the bilinear engine Θ(n/d²), the naive gather
// Θ(n) — and deliberately stay on the low side for small wd so the
// planner never abandons a cheap packed dense product.
func (p *Plan) predictDenseRounds(e Engine, wd float64) float64 {
	n := float64(p.N)
	switch e {
	case EngineFast:
		d := 2.0
		if p.Scheme != nil {
			d = float64(p.Scheme.D)
		}
		return 4*wd*n/(d*d) + 4
	case Engine3D:
		c := float64(CbrtCeil(p.N))
		return math.Max(3, 7*wd*c*c*c*c/n)
	default: // EngineNaive
		return wd*n + 2
	}
}

// chooseSparse is the planner's routing decision. Beyond the round
// comparison it pre-filters operands whose estimated tile weight
// Σ ca·rb ≈ ρ_A·ρ_B/n (exact for uniform columns) has no realistic chance
// of passing the engine's 2n² bound, so obviously-dense products do not
// pay the doomed transpose; skewed operands that sneak past the estimate
// still fall back transparently when the engine's exact census rejects
// them.
func chooseSparse(n int, rhoA, rhoB int64, tupleWords int, densePred, threshold float64) bool {
	if rhoA == 0 || rhoB == 0 {
		return true // an all-zero operand: the sparse engine ships nothing
	}
	// Prefilter with slack 4: the uniform-column estimate can undershoot
	// the exact Σ ca·rb on skewed inputs, and a wasted sparse attempt
	// costs only the transpose and census before falling back.
	if float64(rhoA)*float64(rhoB)/float64(n) >= 4*2*float64(n)*float64(n) {
		return false
	}
	return predictSparseRounds(n, rhoA, rhoB, tupleWords) <= threshold*densePred
}

// routeProduct is the adaptive dispatcher shared by the typed entry
// points: it runs the census on the operands the sparse engine would see,
// decides sparse-vs-dense with the predictors, runs runSparse with
// transparent fallback on ErrTooDense, and otherwise defers to runDense
// (which executes the plan's resolved dense engine on the original
// operands). tupleWords is the wire width of one sparse tuple for the
// product's transport codec.
func routeProduct[T any](net *clique.Network, p *Plan, sc *Scratch, sr ring.Semiring[T], s, t *RowMat[T], denseEngine Engine, densePred float64, tupleWords int, runSparse func(sc *Scratch) (*RowMat[T], error), runDense func() (*RowMat[T], error)) (*RowMat[T], Route, error) {
	if sc == nil {
		sc = NewScratch()
	}
	rhoA, rhoB := nnzCensus[T](net, sc, sr, s, t)
	rt := Route{Census: true, RhoA: rhoA, RhoB: rhoB, Engine: denseEngine}
	if chooseSparse(net.N(), rhoA, rhoB, tupleWords, densePred, p.thresholdOn(net)) {
		m, err := runSparse(sc)
		if err == nil {
			rt.Engine = EngineSparse
			return m, rt, nil
		}
		if !errors.Is(err, ErrTooDense) {
			return nil, rt, err
		}
		rt.Fallback = true // the exact Σ ca·rb census rejected the operands
	}
	m, err := runDense()
	return m, rt, err
}
