package ccmm_test

import (
	"errors"
	"math/rand/v2"
	"reflect"
	"testing"

	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/ring"
)

// sparseIntMat draws an n×n int64 matrix with roughly perRow nonzeros per
// row (deterministic for a seed).
func sparseIntMat(rng *rand.Rand, n, perRow int, maxVal int64) *ccmm.RowMat[int64] {
	m := ccmm.NewRowMat[int64](n)
	for v := 0; v < n; v++ {
		for k := 0; k < perRow; k++ {
			m.Rows[v][rng.IntN(n)] = 1 + rng.Int64N(maxVal)
		}
	}
	return m
}

// mapMat converts an int64 matrix entrywise.
func mapMat[T any](m *ccmm.RowMat[int64], f func(int64) T) *ccmm.RowMat[T] {
	n := m.N()
	out := ccmm.NewRowMat[T](n)
	for v := 0; v < n; v++ {
		for j := 0; j < n; j++ {
			out.Rows[v][j] = f(m.Rows[v][j])
		}
	}
	return out
}

// diffSparse runs the forced sparse engine on all three transports against
// the dense 3D reference and asserts bit-identical products plus
// bit-identical direct/wire ledgers.
func diffSparse[T any](t *testing.T, name string, n int, sr ring.Semiring[T], codec ring.Codec[T], s, tm *ccmm.RowMat[T]) {
	t.Helper()
	refNet := clique.New(n)
	defer refNet.Close()
	want, err := ccmm.Semiring3D[T](refNet, sr, codec, s, tm)
	if err != nil {
		t.Fatalf("%s n=%d: dense reference: %v", name, n, err)
	}

	direct := clique.New(n)
	defer direct.Close()
	gotD, err := ccmm.SparseMul[T](direct, sr, codec, s, tm)
	if err != nil {
		t.Fatalf("%s n=%d: sparse direct: %v", name, n, err)
	}
	wire := clique.New(n, clique.WithTransport(clique.TransportWire))
	defer wire.Close()
	gotW, err := ccmm.SparseMul[T](wire, sr, codec, s, tm)
	if err != nil {
		t.Fatalf("%s n=%d: sparse wire: %v", name, n, err)
	}
	if !reflect.DeepEqual(gotD.Rows, want.Rows) {
		t.Fatalf("%s n=%d: sparse direct product differs from dense 3D", name, n)
	}
	if !reflect.DeepEqual(gotW.Rows, want.Rows) {
		t.Fatalf("%s n=%d: sparse wire product differs from dense 3D", name, n)
	}
	ds, ws := direct.Stats(), wire.Stats()
	if ds.Rounds != ws.Rounds || ds.Words != ws.Words || ds.Flushes != ws.Flushes {
		t.Fatalf("%s n=%d: ledgers diverge: direct %d rounds / %d words / %d flushes, wire %d / %d / %d",
			name, n, ds.Rounds, ds.Words, ds.Flushes, ws.Rounds, ws.Words, ws.Flushes)
	}
	if !reflect.DeepEqual(ds.Phases, ws.Phases) {
		t.Fatalf("%s n=%d: phase ledgers diverge:\ndirect %+v\nwire   %+v", name, n, ds.Phases, ws.Phases)
	}

	verify := clique.New(n, clique.WithTransport(clique.TransportVerify))
	defer verify.Close()
	gotV, err := ccmm.SparseMul[T](verify, sr, codec, s, tm)
	if err != nil {
		t.Fatalf("%s n=%d: transport verification failed: %v", name, n, err)
	}
	if !reflect.DeepEqual(gotV.Rows, want.Rows) {
		t.Fatalf("%s n=%d: verified product differs from dense 3D", name, n)
	}
}

// TestSparseMatchesDenseAllAlgebras is the differential suite of the
// sparse engine: for every shipped algebra and a sample of clique sizes,
// the forced sparse product must be bit-identical to the dense 3D engine
// on both transport planes, with bit-identical direct/wire ledgers.
func TestSparseMatchesDenseAllAlgebras(t *testing.T) {
	for _, n := range []int{8, 9, 13, 16, 27, 33, 64, 100} {
		rng := rand.New(rand.NewPCG(uint64(n), 99))
		base := sparseIntMat(rng, n, 2, 50)
		base2 := sparseIntMat(rng, n, 2, 50)

		diffSparse[int64](t, "int64", n, ring.Int64{}, ring.Int64{}, base, base2)

		zp := ring.NewZp(97)
		toZp := func(x int64) int64 { return zp.Norm(x) }
		diffSparse[int64](t, "zp", n, zp, zp, mapMat(base, toZp), mapMat(base2, toZp))

		mp := ring.MinPlus{}
		toMP := func(x int64) int64 {
			if x == 0 {
				return ring.Inf
			}
			return x
		}
		diffSparse[int64](t, "min-plus", n, mp, mp, mapMat(base, toMP), mapMat(base2, toMP))

		mpw := ring.MinPlusW{}
		row := 0
		toMPW := func(x int64) ring.ValW {
			if x == 0 {
				return ring.ValW{V: ring.Inf, W: ring.NoWitness}
			}
			return ring.ValW{V: x, W: int64(row % n)}
		}
		diffSparse[ring.ValW](t, "min-plus-w", n, mpw, mpw, mapMat(base, toMPW), mapMat(base2, toMPW))

		toBool := func(x int64) bool { return x != 0 }
		diffSparse[bool](t, "bool", n, ring.Bool{}, ring.Bool{}, mapMat(base, toBool), mapMat(base2, toBool))
		diffSparse[bool](t, "packed-bool", n, ring.Bool{}, ring.PackedBool{}, mapMat(base, toBool), mapMat(base2, toBool))
	}
}

// TestSparseScratchReuse runs several distinct products through one shared
// scratch and asserts each matches a fresh-scratch run — pooled state must
// never leak between products.
func TestSparseScratchReuse(t *testing.T) {
	const n = 33
	r := ring.Int64{}
	sc := ccmm.NewScratch()
	for trial := 0; trial < 4; trial++ {
		rng := rand.New(rand.NewPCG(5, uint64(trial)))
		a := sparseIntMat(rng, n, 1+trial, 20)
		b := sparseIntMat(rng, n, 2, 20)
		shared := clique.New(n)
		got, err := ccmm.SparseMulScratch[int64](shared, sc, r, r, a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		fresh := clique.New(n)
		want, err := ccmm.SparseMul[int64](fresh, r, r, a, b)
		if err != nil {
			t.Fatalf("trial %d fresh: %v", trial, err)
		}
		if !reflect.DeepEqual(got.Rows, want.Rows) {
			t.Fatalf("trial %d: shared-scratch product differs from fresh-scratch product", trial)
		}
		if shared.Rounds() != fresh.Rounds() || shared.Words() != fresh.Words() {
			t.Fatalf("trial %d: shared-scratch ledger %d/%d differs from fresh %d/%d",
				trial, shared.Rounds(), shared.Words(), fresh.Rounds(), fresh.Words())
		}
		shared.Close()
		fresh.Close()
	}
}

// TestSparseDeterministic: same inputs, same products and ledgers.
func TestSparseDeterministic(t *testing.T) {
	const n = 27
	r := ring.Int64{}
	rng := rand.New(rand.NewPCG(11, 12))
	a := sparseIntMat(rng, n, 3, 9)
	b := sparseIntMat(rng, n, 3, 9)
	run := func() (*ccmm.RowMat[int64], clique.Stats) {
		net := clique.New(n)
		defer net.Close()
		p, err := ccmm.SparseMul[int64](net, r, r, a, b)
		if err != nil {
			t.Fatal(err)
		}
		return p, net.Stats()
	}
	p1, s1 := run()
	p2, s2 := run()
	if !reflect.DeepEqual(p1.Rows, p2.Rows) {
		t.Fatal("sparse product is not deterministic")
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("sparse ledger is not deterministic: %+v vs %+v", s1, s2)
	}
}

// withColRowCounts builds operands whose S column counts and T row counts
// hit the requested values exactly, for boundary tests of the
// Σ ca(y)·rb(y) < 2n² census.
func withColRowCounts(n int, cas, rbs []int) (s, tm *ccmm.RowMat[int64]) {
	s, tm = ccmm.NewRowMat[int64](n), ccmm.NewRowMat[int64](n)
	for y, ca := range cas {
		for x := 0; x < ca; x++ {
			s.Rows[x][y] = 1
		}
	}
	for y, rb := range rbs {
		for z := 0; z < rb; z++ {
			tm.Rows[y][z] = 1
		}
	}
	return s, tm
}

// TestSparseDensityBoundary pins the census threshold exactly:
// Σ ca·rb = 2n²−1 is accepted, 2n² is rejected with ErrTooDense.
func TestSparseDensityBoundary(t *testing.T) {
	const n = 8 // 2n² = 128
	r := ring.Int64{}

	// 8·8 + 8·7 + 7·1 = 127 = 2n²−1: accepted, and correct.
	s, tm := withColRowCounts(n, []int{8, 8, 7}, []int{8, 7, 1})
	net := clique.New(n)
	defer net.Close()
	got, err := ccmm.SparseMul[int64](net, r, r, s, tm)
	if err != nil {
		t.Fatalf("Σ = 2n²−1 rejected: %v", err)
	}
	ref := clique.New(n)
	defer ref.Close()
	want, err := ccmm.Semiring3D[int64](ref, r, r, s, tm)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Fatal("boundary product differs from dense 3D")
	}

	// 8·8 + 8·7 + 8·1 = 128 = 2n²: rejected.
	s, tm = withColRowCounts(n, []int{8, 8, 8}, []int{8, 7, 1})
	net2 := clique.New(n)
	defer net2.Close()
	if _, err := ccmm.SparseMul[int64](net2, r, r, s, tm); !errors.Is(err, ccmm.ErrTooDense) {
		t.Fatalf("Σ = 2n² err = %v, want ErrTooDense", err)
	}
}

// TestSparseTooSmall: the packing bound needs n ≥ 8.
func TestSparseTooSmall(t *testing.T) {
	r := ring.Int64{}
	net := clique.New(4)
	defer net.Close()
	a := ccmm.NewRowMat[int64](4)
	if _, err := ccmm.SparseMul[int64](net, r, r, a, a); !errors.Is(err, ccmm.ErrSize) {
		t.Fatalf("n=4 err = %v, want ErrSize", err)
	}
}

// TestSparseForcedEngineViaPlan: a plan forcing EngineSparse routes ring,
// Boolean, and min-plus products through the sparse engine, and surfaces
// ErrTooDense unwrapped on dense operands.
func TestSparseForcedEngineViaPlan(t *testing.T) {
	const n = 16
	p := ccmm.PlanFor(n, ccmm.EngineSparse)
	rng := rand.New(rand.NewPCG(3, 4))
	a := sparseIntMat(rng, n, 2, 1) // 0/1 matrix
	b := sparseIntMat(rng, n, 2, 1)

	net := clique.New(n)
	defer net.Close()
	got, route, err := p.MulIntRouted(net, nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if route.Engine != ccmm.EngineSparse || route.Census {
		t.Fatalf("forced sparse route = %+v", route)
	}
	want, err := ccmm.Semiring3D[int64](clique.New(n), ring.Int64{}, ring.Int64{}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Fatal("forced sparse product differs from dense 3D")
	}

	if _, err := p.MulBoolScratch(clique.New(n), nil, a, b); err != nil {
		t.Fatalf("forced sparse bool: %v", err)
	}
	if _, err := p.MulMinPlusScratch(clique.New(n), nil, mapMat(a, func(x int64) int64 {
		if x == 0 {
			return ring.Inf
		}
		return x
	}), mapMat(b, func(x int64) int64 {
		if x == 0 {
			return ring.Inf
		}
		return x
	})); err != nil {
		t.Fatalf("forced sparse min-plus: %v", err)
	}

	dense := ccmm.NewRowMat[int64](n)
	for v := range dense.Rows {
		for j := range dense.Rows[v] {
			dense.Rows[v][j] = 1
		}
	}
	if _, _, err := p.MulIntRouted(clique.New(n), nil, dense, dense); !errors.Is(err, ccmm.ErrTooDense) {
		t.Fatalf("forced sparse on dense operands err = %v, want ErrTooDense", err)
	}
}

// TestSparseAutoRouting: under EngineAuto the census routes sparse inputs
// through the sparse engine with strictly fewer rounds than the dense
// plan, routes dense inputs to the dense engine, and falls back
// transparently when the prediction is wrong.
func TestSparseAutoRouting(t *testing.T) {
	const n = 100
	p := ccmm.PlanFor(n, ccmm.EngineAuto)
	rng := rand.New(rand.NewPCG(21, 22))
	a := sparseIntMat(rng, n, 4, 50)
	b := sparseIntMat(rng, n, 4, 50)

	net := clique.New(n)
	defer net.Close()
	got, route, err := p.MulIntRouted(net, nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if route.Engine != ccmm.EngineSparse || !route.Census || route.Fallback {
		t.Fatalf("sparse input route = %+v, want sparse via census", route)
	}
	if route.RhoA == 0 || route.RhoB == 0 {
		t.Fatalf("census counts missing: %+v", route)
	}

	// The dense plan for comparison: same product, census disabled.
	pd := ccmm.PlanSparse(n, ccmm.EngineAuto, 0)
	dnet := clique.New(n)
	defer dnet.Close()
	want, droute, err := pd.MulIntRouted(dnet, nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if droute.Census || droute.Engine != ccmm.EngineFast {
		t.Fatalf("threshold-0 route = %+v, want static dense", droute)
	}
	if !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Fatal("sparse-routed product differs from dense plan")
	}
	if net.Rounds() >= dnet.Rounds() {
		t.Fatalf("sparse route used %d rounds, dense plan %d — sparse must win on sparse inputs",
			net.Rounds(), dnet.Rounds())
	}

	// A dense input routes dense (with only the census round added).
	dense := ccmm.NewRowMat[int64](n)
	for v := range dense.Rows {
		for j := range dense.Rows[v] {
			dense.Rows[v][j] = 1 + int64((v+j)%7)
		}
	}
	net2 := clique.New(n)
	defer net2.Close()
	_, route2, err := p.MulIntRouted(net2, nil, dense, dense)
	if err != nil {
		t.Fatal(err)
	}
	if route2.Engine != ccmm.EngineFast || !route2.Census || route2.Fallback {
		t.Fatalf("dense input route = %+v, want dense via census", route2)
	}

	// Skewed operands: sparse by row counts, too dense by column weights.
	// The planner predicts sparse, the engine's exact census rejects, and
	// the product still completes on the dense engine.
	skewS := ccmm.NewRowMat[int64](n)
	skewT := ccmm.NewRowMat[int64](n)
	for v := 0; v < n; v++ {
		skewS.Rows[v][0] = 1
		skewS.Rows[v][1] = 1
	}
	for z := 0; z < n; z++ {
		skewT.Rows[0][z] = 1
		skewT.Rows[1][z] = 1
	}
	net3 := clique.New(n)
	defer net3.Close()
	got3, route3, err := p.MulIntRouted(net3, nil, skewS, skewT)
	if err != nil {
		t.Fatal(err)
	}
	if !route3.Fallback || route3.Engine != ccmm.EngineFast {
		t.Fatalf("skewed input route = %+v, want dense-fallback", route3)
	}
	want3, err := ccmm.Semiring3D[int64](clique.New(n), ring.Int64{}, ring.Int64{}, skewS, skewT)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got3.Rows, want3.Rows) {
		t.Fatal("fallback product differs from dense 3D")
	}
}

// TestSparseZeroOperand: an all-zero operand routes sparse trivially and
// produces the all-zero product.
func TestSparseZeroOperand(t *testing.T) {
	const n = 16
	r := ring.Int64{}
	zero := ccmm.NewRowMat[int64](n)
	rng := rand.New(rand.NewPCG(9, 9))
	b := sparseIntMat(rng, n, 3, 5)
	net := clique.New(n)
	defer net.Close()
	got, err := ccmm.SparseMul[int64](net, r, r, zero, b)
	if err != nil {
		t.Fatal(err)
	}
	for v := range got.Rows {
		for j := range got.Rows[v] {
			if got.Rows[v][j] != 0 {
				t.Fatalf("zero-operand product has nonzero at (%d,%d)", v, j)
			}
		}
	}
}

// TestAllocateTilesWeighted: the generalised allocator packs disjoint
// in-bounds tiles for weighted workloads under the Σ w < 2n² bound.
func TestAllocateTilesWeighted(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	for trial := 0; trial < 30; trial++ {
		n := 8 + rng.IntN(120)
		fs := make([]int, n)
		var total int64
		for y := range fs {
			ca, rb := rng.IntN(n), rng.IntN(n)
			w := int64(ca) * int64(rb)
			if total+w >= int64(2*n*n) {
				break
			}
			total += w
			fs[y] = ccmm.TileSideFor(w)
		}
		tiles, err := ccmm.AllocateTiles(fs, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		k := ccmm.Pow2Floor(n)
		occupied := map[[2]int]bool{}
		for _, tile := range tiles {
			if fs[tile.Y] == 0 {
				if tile.Allocated {
					t.Fatal("weightless node received a tile")
				}
				continue
			}
			if !tile.Allocated || tile.F != fs[tile.Y] {
				t.Fatalf("tile %+v does not match requested side %d", tile, fs[tile.Y])
			}
			if tile.Row < 0 || tile.Col < 0 || tile.Row+tile.F > k || tile.Col+tile.F > k {
				t.Fatalf("tile %+v outside [0,%d)²", tile, k)
			}
			for i := 0; i < tile.F; i++ {
				for j := 0; j < tile.F; j++ {
					cell := [2]int{tile.Row + i, tile.Col + j}
					if occupied[cell] {
						t.Fatalf("tiles overlap at %v", cell)
					}
					occupied[cell] = true
				}
			}
		}
	}
}
