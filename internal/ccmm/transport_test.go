package ccmm

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/ring"
)

// The differential tests are the tentpole's contract: for every shipped
// algebra and engine, the direct (typed, zero-copy) transport must produce
// bit-identical products AND a bit-identical ledger — rounds, words,
// flushes, per-phase breakdown — to the encoded wire transport.

// mulOn runs one product on a fresh network with the given transport and
// returns the product plus the full accounting snapshot.
func mulOn[T any](t *testing.T, n int, tr clique.Transport,
	mul func(net *clique.Network, sc *Scratch) (*RowMat[T], error)) (*RowMat[T], clique.Stats) {
	t.Helper()
	net := clique.New(n, clique.WithTransport(tr))
	defer net.Close()
	p, err := mul(net, NewScratch())
	if err != nil {
		t.Fatalf("transport %v on n=%d: %v", tr, n, err)
	}
	return p, net.Stats()
}

// diffTransports runs mul on both transports and requires identical
// products and ledgers.
func diffTransports[T any](t *testing.T, n int,
	mul func(net *clique.Network, sc *Scratch) (*RowMat[T], error)) {
	t.Helper()
	direct, dstats := mulOn[T](t, n, clique.TransportDirect, mul)
	wire, wstats := mulOn[T](t, n, clique.TransportWire, mul)
	if !reflect.DeepEqual(direct.Rows, wire.Rows) {
		t.Fatalf("n=%d: direct product differs from wire product", n)
	}
	if dstats.Rounds != wstats.Rounds || dstats.Words != wstats.Words || dstats.Flushes != wstats.Flushes {
		t.Fatalf("n=%d: ledger diverged: direct rounds/words/flushes %d/%d/%d, wire %d/%d/%d",
			n, dstats.Rounds, dstats.Words, dstats.Flushes, wstats.Rounds, wstats.Words, wstats.Flushes)
	}
	if !reflect.DeepEqual(dstats.Phases, wstats.Phases) {
		t.Fatalf("n=%d: per-phase ledgers diverged:\ndirect: %+v\nwire:   %+v", n, dstats.Phases, wstats.Phases)
	}
}

func randIntMat(rng *rand.Rand, n int, span int64) *RowMat[int64] {
	m := NewRowMat[int64](n)
	for v := range m.Rows {
		for j := range m.Rows[v] {
			m.Rows[v][j] = rng.Int64N(2*span) - span
		}
	}
	return m
}

func randMinPlusMat(rng *rand.Rand, n int) *RowMat[int64] {
	m := NewRowMat[int64](n)
	for v := range m.Rows {
		for j := range m.Rows[v] {
			switch rng.IntN(5) {
			case 0:
				m.Rows[v][j] = ring.Inf
			case 1:
				m.Rows[v][j] = -rng.Int64N(50) // negative weights are supported
			default:
				m.Rows[v][j] = rng.Int64N(100)
			}
		}
	}
	return m
}

func randValWMat(rng *rand.Rand, n int) *RowMat[ring.ValW] {
	m := NewRowMat[ring.ValW](n)
	for v := range m.Rows {
		for j := range m.Rows[v] {
			if rng.IntN(4) == 0 {
				m.Rows[v][j] = ring.ValW{V: ring.Inf, W: ring.NoWitness}
			} else {
				m.Rows[v][j] = ring.ValW{V: rng.Int64N(100), W: int64(rng.IntN(n))}
			}
		}
	}
	return m
}

func randBoolMat(rng *rand.Rand, n int) *RowMat[bool] {
	m := NewRowMat[bool](n)
	for v := range m.Rows {
		for j := range m.Rows[v] {
			m.Rows[v][j] = rng.IntN(3) == 0
		}
	}
	return m
}

// diffSizes samples the awkward range 2..100: primes, powers, perfect
// cubes and squares, and both neighbours of cube boundaries.
var diffSizes = []int{2, 3, 5, 7, 8, 9, 13, 26, 27, 28, 36, 50, 64, 81, 100}

// semiringEngines are the two engines every semiring algebra runs on.
func semiringEngines[T any](sr ring.Semiring[T], codec ring.Codec[T], s, t *RowMat[T]) map[string]func(net *clique.Network, sc *Scratch) (*RowMat[T], error) {
	return map[string]func(net *clique.Network, sc *Scratch) (*RowMat[T], error){
		"naive": func(net *clique.Network, sc *Scratch) (*RowMat[T], error) {
			return NaiveGatherScratch[T](net, sc, sr, codec, s, t)
		},
		"3d": func(net *clique.Network, sc *Scratch) (*RowMat[T], error) {
			return Semiring3DScratch[T](net, sc, sr, codec, s, t)
		},
	}
}

func TestTransportDifferentialInt64(t *testing.T) {
	for _, n := range diffSizes {
		rng := rand.New(rand.NewPCG(41, uint64(n)))
		s, u := randIntMat(rng, n, 50), randIntMat(rng, n, 50)
		r := ring.Int64{}
		for name, mul := range semiringEngines[int64](r, r, s, u) {
			t.Run(name, func(t *testing.T) { diffTransports[int64](t, n, mul) })
		}
	}
}

func TestTransportDifferentialMinPlus(t *testing.T) {
	for _, n := range diffSizes {
		rng := rand.New(rand.NewPCG(42, uint64(n)))
		s, u := randMinPlusMat(rng, n), randMinPlusMat(rng, n)
		mp := ring.MinPlus{}
		for name, mul := range semiringEngines[int64](mp, mp, s, u) {
			t.Run(name, func(t *testing.T) { diffTransports[int64](t, n, mul) })
		}
	}
}

func TestTransportDifferentialMinPlusW(t *testing.T) {
	for _, n := range diffSizes {
		rng := rand.New(rand.NewPCG(43, uint64(n)))
		s, u := randValWMat(rng, n), randValWMat(rng, n)
		mw := ring.MinPlusW{}
		for name, mul := range semiringEngines[ring.ValW](mw, mw, s, u) {
			t.Run(name, func(t *testing.T) { diffTransports[ring.ValW](t, n, mul) })
		}
	}
}

func TestTransportDifferentialZp(t *testing.T) {
	z := ring.NewZp(1009)
	for _, n := range diffSizes {
		rng := rand.New(rand.NewPCG(44, uint64(n)))
		s, u := NewRowMat[int64](n), NewRowMat[int64](n)
		for v := 0; v < n; v++ {
			for j := 0; j < n; j++ {
				s.Rows[v][j] = rng.Int64N(z.Modulus())
				u.Rows[v][j] = rng.Int64N(z.Modulus())
			}
		}
		for name, mul := range semiringEngines[int64](z, z, s, u) {
			t.Run(name, func(t *testing.T) { diffTransports[int64](t, n, mul) })
		}
	}
}

func TestTransportDifferentialBool(t *testing.T) {
	br := ring.Bool{}
	for _, n := range diffSizes {
		rng := rand.New(rand.NewPCG(45, uint64(n)))
		s, u := randBoolMat(rng, n), randBoolMat(rng, n)
		for _, codec := range []struct {
			name string
			c    ring.BulkCodec[bool]
		}{{"unpacked", ring.AsBulk[bool](br)}, {"packed", ring.PackedBool{}}} {
			for name, mul := range semiringEngines[bool](br, codec.c, s, u) {
				t.Run(codec.name+"/"+name, func(t *testing.T) { diffTransports[bool](t, n, mul) })
			}
		}
	}
}

func TestTransportDifferentialFastBilinear(t *testing.T) {
	r := ring.Int64{}
	z := ring.NewZp(1009)
	for _, n := range []int{16, 36, 64, 100} {
		rng := rand.New(rand.NewPCG(46, uint64(n)))
		s, u := randIntMat(rng, n, 20), randIntMat(rng, n, 20)
		t.Run("int64", func(t *testing.T) {
			diffTransports[int64](t, n, func(net *clique.Network, sc *Scratch) (*RowMat[int64], error) {
				return FastBilinearScratch[int64](net, sc, r, r, nil, s, u)
			})
		})
		sz, uz := NewRowMat[int64](n), NewRowMat[int64](n)
		for v := 0; v < n; v++ {
			for j := 0; j < n; j++ {
				sz.Rows[v][j] = rng.Int64N(z.Modulus())
				uz.Rows[v][j] = rng.Int64N(z.Modulus())
			}
		}
		t.Run("zp", func(t *testing.T) {
			diffTransports[int64](t, n, func(net *clique.Network, sc *Scratch) (*RowMat[int64], error) {
				return FastBilinearScratch[int64](net, sc, z, z, nil, sz, uz)
			})
		})
	}
}

func TestTransportDifferentialWitnessProduct(t *testing.T) {
	for _, n := range []int{5, 27, 50} {
		rng := rand.New(rand.NewPCG(47, uint64(n)))
		s, u := randMinPlusMat(rng, n), randMinPlusMat(rng, n)
		run := func(tr clique.Transport) (p, q *RowMat[int64], st clique.Stats) {
			net := clique.New(n, clique.WithTransport(tr))
			defer net.Close()
			p, q, err := DistanceProduct3DScratch(net, NewScratch(), s, u)
			if err != nil {
				t.Fatalf("transport %v: %v", tr, err)
			}
			return p, q, net.Stats()
		}
		dp, dq, dst := run(clique.TransportDirect)
		wp, wq, wst := run(clique.TransportWire)
		if !reflect.DeepEqual(dp.Rows, wp.Rows) || !reflect.DeepEqual(dq.Rows, wq.Rows) {
			t.Fatalf("n=%d: witness distance product diverged between transports", n)
		}
		if !reflect.DeepEqual(dst, wst) {
			t.Fatalf("n=%d: witness product ledger diverged:\ndirect: %+v\nwire:   %+v", n, dst, wst)
		}
	}
}

// TestTransportDifferentialLarge pushes the differential to n = 512, where
// the 3D engine multiplexes a padded 8³ cube and the packed Boolean
// transport compresses 64×.
func TestTransportDifferentialLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("n=512 differential skipped in -short")
	}
	const n = 512
	rng := rand.New(rand.NewPCG(48, n))
	s, u := randIntMat(rng, n, 50), randIntMat(rng, n, 50)
	r := ring.Int64{}
	t.Run("3d/int64", func(t *testing.T) {
		diffTransports[int64](t, n, func(net *clique.Network, sc *Scratch) (*RowMat[int64], error) {
			return Semiring3DScratch[int64](net, sc, r, r, s, u)
		})
	})
	sb, ub := randBoolMat(rng, n), randBoolMat(rng, n)
	t.Run("3d/packedbool", func(t *testing.T) {
		diffTransports[bool](t, n, func(net *clique.Network, sc *Scratch) (*RowMat[bool], error) {
			return Semiring3DScratch[bool](net, sc, ring.Bool{}, ring.PackedBool{}, sb, ub)
		})
	})
}

// TestTransportVerifyMode exercises TransportVerify end to end: the
// dual-run must succeed on a healthy engine and charge only the direct
// run's cost on the caller's network.
func TestTransportVerifyMode(t *testing.T) {
	for _, n := range []int{9, 16, 27} {
		rng := rand.New(rand.NewPCG(49, uint64(n)))
		s, u := randIntMat(rng, n, 50), randIntMat(rng, n, 50)
		r := ring.Int64{}

		direct, dstats := mulOn[int64](t, n, clique.TransportDirect, func(net *clique.Network, sc *Scratch) (*RowMat[int64], error) {
			return Semiring3DScratch[int64](net, sc, r, r, s, u)
		})
		verified, vstats := mulOn[int64](t, n, clique.TransportVerify, func(net *clique.Network, sc *Scratch) (*RowMat[int64], error) {
			return Semiring3DScratch[int64](net, sc, r, r, s, u)
		})
		if !reflect.DeepEqual(direct.Rows, verified.Rows) {
			t.Fatalf("n=%d: verify-mode product differs from direct product", n)
		}
		if !reflect.DeepEqual(dstats, vstats) {
			t.Fatalf("n=%d: verify mode charged %+v, direct charged %+v", n, vstats, dstats)
		}
	}
}
