package ccmm

import (
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/matrix"
	"github.com/algebraic-clique/algclique/internal/ring"
	"github.com/algebraic-clique/algclique/internal/routing"
)

// NaiveGather computes P = S·T by having every node learn the entire right
// operand (Θ(n) rounds) and multiply its own row locally. It is the trivial
// baseline against which the 3D and bilinear algorithms are measured, and
// works on any clique size and semiring.
func NaiveGather[T any](net *clique.Network, sr ring.Semiring[T], codec ring.Codec[T], s, t *RowMat[T]) (*RowMat[T], error) {
	return NaiveGatherScratch[T](net, nil, sr, codec, s, t)
}

// NaiveGatherScratch is NaiveGather with caller-owned scratch pools,
// dispatched on the network's transport: the direct plane charges the
// gather analytically from the codec's EncodedLen — so a packing codec
// still compresses it 64× on the ledger — and every node reads the right
// operand's rows in place; the wire plane ships each row through one bulk
// EncodeSlice (encode and decode parallelised over the worker pool) into
// pooled per-node buffers. A nil sc uses a transient scratch.
func NaiveGatherScratch[T any](net *clique.Network, sc *Scratch, sr ring.Semiring[T], codec ring.Codec[T], s, t *RowMat[T]) (p *RowMat[T], err error) {
	defer catchAbort(&err)
	switch net.Transport() {
	case clique.TransportWire:
		return naiveGatherWire[T](net, sc, sr, codec, s, t)
	case clique.TransportVerify:
		return runVerified(net, func(net2 *clique.Network, wire bool) (*RowMat[T], error) {
			if wire {
				return naiveGatherWire[T](net2, nil, sr, codec, s, t)
			}
			return naiveGatherDirect[T](net2, sc, sr, codec, s, t)
		})
	default:
		return naiveGatherDirect[T](net, sc, sr, codec, s, t)
	}
}

// naiveGatherDirect is the data-plane gather: the ledger of the encoded
// all-gather is charged analytically and every node multiplies against
// t's rows directly — decode-free, and with no materialised copy of the
// operand at all.
func naiveGatherDirect[T any](net *clique.Network, _ *Scratch, sr ring.Semiring[T], codec ring.Codec[T], s, t *RowMat[T]) (*RowMat[T], error) {
	n := net.N()
	if err := s.validate(n); err != nil {
		return nil, err
	}
	if err := t.validate(n); err != nil {
		return nil, err
	}
	bc := ring.AsBulk[T](codec)
	net.Phase("mmnaive/gather")
	lens := make([]int64, n)
	for v := 0; v < n; v++ {
		lens[v] = int64(bc.EncodedLen(len(t.Rows[v])))
	}
	routing.ChargeAllGather(net, lens)

	net.Phase("mmnaive/multiply")
	return naiveMultiply(net, sr, s, t.Rows), nil
}

// naiveGatherWire is the encoded gather (the original path, kept for
// verification and WithWireTransport).
func naiveGatherWire[T any](net *clique.Network, sc *Scratch, sr ring.Semiring[T], codec ring.Codec[T], s, t *RowMat[T]) (*RowMat[T], error) {
	n := net.N()
	if err := s.validate(n); err != nil {
		return nil, err
	}
	if err := t.validate(n); err != nil {
		return nil, err
	}
	if sc == nil {
		sc = NewScratch()
	}
	bc := ring.AsBulk[T](codec)
	ts := typedFrom[T](sc)
	net.Phase("mmnaive/gather")
	vecs := make([][]clique.Word, n)
	net.ForEach(func(v int) {
		vecs[v] = bc.EncodeSlice(nil, t.Rows[v])
	})
	all := routing.AllGather(net, vecs)

	net.Phase("mmnaive/multiply")
	// Packed Boolean gathers skip the decode entirely: the transport words
	// share BitDense's bit layout, so the gathered rows feed the
	// word-parallel kernel as-is and the []bool form is never materialised.
	if _, packed := any(codec).(ring.PackedBool); packed {
		if sb, ok := any(s).(*RowMat[bool]); ok {
			return any(naiveMultiplyBoolWords(net, sb, all)).(*RowMat[T]), nil
		}
	}
	growBufs(&ts.rows, n)
	trows := make([][]T, n)
	net.ForEach(func(v int) {
		trows[v] = nodeBuf(ts.rows, v, n)
		bc.DecodeSlice(trows[v], all[v])
	})
	return naiveMultiply(net, sr, s, trows), nil
}

// naiveMultiply is the local multiplication both transports share: node v
// multiplies its own row of s against the (gathered or in-place) right
// operand. The Boolean semiring gets the word-parallel path: the right
// operand is packed once into a pooled BitDense and every node multiplies
// its packed row against it, ~64 columns per word operation.
func naiveMultiply[T any](net *clique.Network, sr ring.Semiring[T], s *RowMat[T], trows [][]T) *RowMat[T] {
	if _, ok := any(sr).(ring.Bool); ok {
		sb := any(s).(*RowMat[bool])
		tb := any(trows).([][]bool)
		return any(naiveMultiplyBool(net, sb, tb)).(*RowMat[T])
	}
	n := net.N()
	zero := sr.Zero()
	p := NewRowMat[T](n)
	net.ForEach(func(v int) {
		srow := s.Rows[v]
		out := p.Rows[v]
		for j := 0; j < n; j++ {
			out[j] = zero
		}
		for k := 0; k < n; k++ {
			sk := srow[k]
			if sr.Equal(sk, zero) {
				continue
			}
			trow := trows[k]
			for j := 0; j < n; j++ {
				out[j] = sr.Add(out[j], sr.Mul(sk, trow[j]))
			}
		}
	})
	return p
}

// naiveMultiplyBool multiplies Boolean rows word-parallel: the right
// operand packs once into a pooled BitDense (in parallel, one row per
// node), its nonzero-row bitset is computed once up front — single-threaded
// on purpose, the cache is not safe for concurrent first use — and every
// node runs the packed row kernel on its own slice of the word buffers.
func naiveMultiplyBool(net *clique.Network, s *RowMat[bool], trows [][]bool) *RowMat[bool] {
	n := net.N()
	p := NewRowMat[bool](n)
	bd := matrix.GetBitDense(n, n)
	defer matrix.PutBitDense(bd)
	net.ForEach(func(v int) {
		ring.PackBits(bd.RowWords(v), trows[v])
	})
	bd.Invalidate()
	bAny := bd.NonzeroRows()
	stride := bd.Stride()
	rowW := make([]uint64, n*stride)
	outW := make([]uint64, n*stride)
	net.ForEach(func(v int) {
		aw := rowW[v*stride : (v+1)*stride]
		ring.PackBits(aw, s.Rows[v])
		dst := outW[v*stride : (v+1)*stride]
		matrix.MulBitRowInto(dst, aw, bAny, bd)
		ring.UnpackBits(p.Rows[v], dst)
	})
	return p
}

// naiveMultiplyBoolWords is naiveMultiplyBool fed straight from the
// gathered transport words: all[v] is node v's PackedBool-encoded row of
// the right operand, which shares BitDense's layout and is copied in
// without decoding.
func naiveMultiplyBoolWords(net *clique.Network, s *RowMat[bool], all [][]clique.Word) *RowMat[bool] {
	n := net.N()
	p := NewRowMat[bool](n)
	bd := matrix.GetBitDense(n, n)
	defer matrix.PutBitDense(bd)
	stride := bd.Stride()
	net.ForEach(func(v int) {
		row := bd.RowWords(v)
		copy(row, all[v][:stride])
		// Defensive: the kernel relies on zero pad bits past column n.
		if extra := uint(stride*64 - n); extra > 0 {
			row[stride-1] &= ^uint64(0) >> extra
		}
	})
	bd.Invalidate()
	bAny := bd.NonzeroRows()
	rowW := make([]uint64, n*stride)
	outW := make([]uint64, n*stride)
	net.ForEach(func(v int) {
		aw := rowW[v*stride : (v+1)*stride]
		ring.PackBits(aw, s.Rows[v])
		dst := outW[v*stride : (v+1)*stride]
		matrix.MulBitRowInto(dst, aw, bAny, bd)
		ring.UnpackBits(p.Rows[v], dst)
	})
	return p
}
