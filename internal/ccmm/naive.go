package ccmm

import (
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/ring"
	"github.com/algebraic-clique/algclique/internal/routing"
)

// NaiveGather computes P = S·T by having every node learn the entire right
// operand (Θ(n) rounds) and multiply its own row locally. It is the trivial
// baseline against which the 3D and bilinear algorithms are measured, and
// works on any clique size and semiring.
func NaiveGather[T any](net *clique.Network, sr ring.Semiring[T], codec ring.Codec[T], s, t *RowMat[T]) (*RowMat[T], error) {
	return NaiveGatherScratch[T](net, nil, sr, codec, s, t)
}

// NaiveGatherScratch is NaiveGather with caller-owned scratch pools and
// bulk-codec transport: rows ship through one EncodeSlice each (so a
// packing codec compresses the gather 64×), and the decoded right operand
// lives in pooled per-node buffers. A nil sc uses a transient scratch.
func NaiveGatherScratch[T any](net *clique.Network, sc *Scratch, sr ring.Semiring[T], codec ring.Codec[T], s, t *RowMat[T]) (*RowMat[T], error) {
	n := net.N()
	if err := s.validate(n); err != nil {
		return nil, err
	}
	if err := t.validate(n); err != nil {
		return nil, err
	}
	if sc == nil {
		sc = NewScratch()
	}
	bc := ring.AsBulk[T](codec)
	ts := typedFrom[T](sc)
	net.Phase("mmnaive/gather")
	vecs := make([][]clique.Word, n)
	for v := 0; v < n; v++ {
		vecs[v] = bc.EncodeSlice(nil, t.Rows[v])
	}
	all := routing.AllGather(net, vecs)

	net.Phase("mmnaive/multiply")
	growBufs(&ts.rows, n)
	trows := make([][]T, n)
	for v := 0; v < n; v++ {
		trows[v] = nodeBuf(ts.rows, v, n)
		bc.DecodeSlice(trows[v], all[v])
	}
	zero := sr.Zero()
	p := NewRowMat[T](n)
	net.ForEach(func(v int) {
		srow := s.Rows[v]
		out := p.Rows[v]
		for j := 0; j < n; j++ {
			out[j] = zero
		}
		for k := 0; k < n; k++ {
			sk := srow[k]
			if sr.Equal(sk, zero) {
				continue
			}
			trow := trows[k]
			for j := 0; j < n; j++ {
				out[j] = sr.Add(out[j], sr.Mul(sk, trow[j]))
			}
		}
	})
	return p, nil
}
