package ccmm

import (
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/ring"
	"github.com/algebraic-clique/algclique/internal/routing"
)

// NaiveGather computes P = S·T by having every node learn the entire right
// operand (Θ(n) rounds) and multiply its own row locally. It is the trivial
// baseline against which the 3D and bilinear algorithms are measured, and
// works on any clique size and semiring.
func NaiveGather[T any](net *clique.Network, sr ring.Semiring[T], codec ring.Codec[T], s, t *RowMat[T]) (*RowMat[T], error) {
	n := net.N()
	if err := s.validate(n); err != nil {
		return nil, err
	}
	if err := t.validate(n); err != nil {
		return nil, err
	}
	net.Phase("mmnaive/gather")
	vecs := make([][]clique.Word, n)
	for v := 0; v < n; v++ {
		vecs[v] = encodeVec(codec, t.Rows[v])
	}
	all := routing.AllGather(net, vecs)

	net.Phase("mmnaive/multiply")
	trows := make([][]T, n)
	for v := 0; v < n; v++ {
		trows[v] = decodeVec(codec, all[v], n)
	}
	p := NewRowMat[T](n)
	net.ForEach(func(v int) {
		srow := s.Rows[v]
		out := p.Rows[v]
		for j := 0; j < n; j++ {
			out[j] = sr.Zero()
		}
		for k := 0; k < n; k++ {
			sk := srow[k]
			if sr.Equal(sk, sr.Zero()) {
				continue
			}
			trow := trows[k]
			for j := 0; j < n; j++ {
				out[j] = sr.Add(out[j], sr.Mul(sk, trow[j]))
			}
		}
	})
	return p, nil
}
