package ccmm

import (
	"errors"
	"fmt"
	"reflect"
	"sort"

	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/matrix"
	"github.com/algebraic-clique/algclique/internal/ring"
)

// This file is the CSR operand plane: the sparse tile engine of sparse.go
// re-expressed over matrix.CSR operands, so a product on a ρ-nonzero input
// costs Θ(n + traffic) memory instead of the Θ(n²) a RowMat forces. Node v
// logically owns row v of each operand, exactly the RowMat convention, but
// rows are CSR windows (column indices + values) rather than dense slices.
//
// The phase structure is sparse.go's — transpose, census, spread, forward,
// gather, accumulate — with three scale-driven changes:
//
//   - The census is free. A CSR row's nonzero count is a RowPtr difference,
//     so the per-row counts feeding the census broadcast cost no scan; the
//     broadcast round itself (sparseCensus, shared verbatim) is unchanged.
//   - No n×n anything. The dense engine stages messages in d×d payload and
//     view matrices and receives through all-sources probes; here every
//     node packs its outgoing chunks contiguously into one per-node arena,
//     per-message windows live in per-node slot tables sized to the node's
//     own traffic, and receivers walk Mail.Each/EachPayload, whose cost is
//     proportional to the traffic actually delivered (the sparse-link
//     network makes the same guarantee underneath).
//   - Exchanges bypass the routing layer (whose Exchange* entries take n×n
//     message matrices) and send directly: per-link loads are already
//     balanced by the tile allocation itself — a side-f tile splits its
//     weight-w workload into ≤ 2f chunks of ~√w·4 elements each — so the
//     two-phase Lenzen rebalancing has nothing to win here.
//
// The result comes back as a fresh CSR (canonical: strictly increasing
// columns, no stored semiring zeros), bit-identical to compressing the
// dense engines' product, because the accumulation order per output cell is
// a permutation of the dense engine's and every shipped algebra's ⊕ is
// order-independent. Both transports run, sharing one ledger:
// TransportVerify executes the product on each and diffs results and
// accounting, exactly like the dense engines.

// csrDensifyCap is the largest clique on which the density-aware CSR
// planner may fall back to a dense engine (which materialises Θ(n²)
// operands and product). Beyond it a too-dense product fails with
// ErrTooDense instead of silently allocating what the CSR plane exists to
// avoid; callers at that scale asked for sparse-or-nothing.
const csrDensifyCap = 8192

// CSRProduct is the result union of the density-aware CSR entry points:
// exactly one field is set. Sparse products stay CSR; products the planner
// routed (or fell back) to a dense engine come back as the dense row
// matrix that engine produced.
type CSRProduct[T any] struct {
	Sparse *matrix.CSR[T]
	Dense  *RowMat[T]
}

// IsSparse reports whether the product stayed on the CSR path.
func (p CSRProduct[T]) IsSparse() bool { return p.Sparse != nil }

// csrCheck validates a CSR operand against the clique size.
func csrCheck[T any](m *matrix.CSR[T], n int) error {
	if m.N != n {
		return fmt.Errorf("ccmm: %d×%d CSR operand on an %d-node clique: %w", m.N, m.N, n, ErrSize)
	}
	return m.Validate()
}

// SparseMulCSR computes P = S·T over an arbitrary semiring with the sparse
// tile engine, end-to-end on CSR operands: the same round structure and
// density bound as SparseMul (Σ ca(y)·rb(y) < 2n², ErrTooDense otherwise),
// but Θ(n + ρ) memory — no dense n×n buffer is ever allocated, which the
// DenseAllocs counter asserts. Requires n ≥ 8. A nil Val on an operand
// means every stored entry is the semiring one (the adjacency convention).
func SparseMulCSR[T any](net *clique.Network, sc *Scratch, sr ring.Semiring[T], codec ring.Codec[T], s, t *matrix.CSR[T]) (p *matrix.CSR[T], err error) {
	defer catchAbort(&err)
	n := net.N()
	if err := csrCheck(s, n); err != nil {
		return nil, err
	}
	if err := csrCheck(t, n); err != nil {
		return nil, err
	}
	if n < minSparseN {
		return nil, fmt.Errorf("ccmm: sparse engine needs n ≥ %d for the Lemma 12 packing, got %d: %w", minSparseN, n, ErrSize)
	}
	switch net.Transport() {
	case clique.TransportWire:
		return csrWire[T](net, sc, sr, codec, s, t)
	case clique.TransportVerify:
		return runVerifiedCSR(net, func(net2 *clique.Network, wire bool) (*matrix.CSR[T], error) {
			if wire {
				return csrWire[T](net2, nil, sr, codec, s, t)
			}
			return csrDirect[T](net2, sc, sr, codec, s, t)
		})
	default:
		return csrDirect[T](net, sc, sr, codec, s, t)
	}
}

// runVerifiedCSR is runVerified for CSR products: direct on the caller's
// network, wire on a shadow clique (which inherits sparse-link mode by
// size), comparing the structural arrays entry for entry plus the ledger.
func runVerifiedCSR[T any](net *clique.Network, run func(net *clique.Network, wire bool) (*matrix.CSR[T], error)) (*matrix.CSR[T], error) {
	before := net.Stats()
	p, err := run(net, false)
	if err != nil {
		return nil, err
	}
	shadow := clique.New(net.N(), clique.WithTransport(clique.TransportWire))
	defer shadow.Close()
	q, err := run(shadow, true)
	if err != nil {
		return nil, fmt.Errorf("ccmm: wire shadow run failed: %w", err)
	}
	if err := diffLedger(before, net.Stats(), shadow.Stats()); err != nil {
		return nil, err
	}
	if !reflect.DeepEqual(p, q) {
		return nil, fmt.Errorf("%w: products differ", ErrTransportDiverged)
	}
	return p, nil
}

// sortedIndex returns the position of y in an ascending list that contains
// it (the per-node tile lists rowYs/colYs are built ascending).
func sortedIndex(list []int32, y int32) int {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := (lo + hi) / 2
		if list[mid] < y {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// csrSpreadChunks builds every tile owner's spread traffic: node y packs
// its a(y)-chunks (and, for destinations in both tile ranges, the combined
// A-then-B chunk) contiguously into the per-node arena tts.bufs3[y], with
// one window per destination in the slot table tts.slots3[y] — row-range
// destinations at [0, F), column-only destinations at [F, 2F). The arena is
// immutable until the product ends: in the direct plane, receivers (and
// their forwardees) hold windows into it through the gather.
func csrSpreadChunks[T any](net *clique.Network, sp *sparseState, tts *typedScratch[ring.Tuple[T]], t *matrix.CSR[T], one T) {
	net.ForEach(func(y int) {
		tl := sp.tiles[y]
		if !tl.Allocated {
			nodeSlots(tts.slots3, y, 0)
			return
		}
		aL := tts.bufs[y][:sp.ca[y]]
		cols, vals := t.Row(y)
		bL := ring.AppendTuples(nodeBuf(tts.bufs2, y, sp.rb[y])[:0], cols, vals, one)
		tts.bufs2[y] = bL
		arena := nodeBuf(tts.bufs3, y, sp.ca[y]+sp.rb[y])
		ws := nodeSlots(tts.slots3, y, 2*tl.F)
		off := 0
		for i := 0; i < tl.F; i++ {
			dst := tl.Row + i
			lo, hi := chunkBounds(sp.ca[y], tl.F, i)
			start := off
			off += copy(arena[off:], aL[lo:hi])
			if j := dst - tl.Col; j >= 0 && j < tl.F {
				blo, bhi := chunkBounds(sp.rb[y], tl.F, j)
				off += copy(arena[off:], bL[blo:bhi])
			}
			if off > start {
				ws[i] = arena[start:off]
			}
		}
		for j := 0; j < tl.F; j++ {
			dst := tl.Col + j
			if i := dst - tl.Row; i >= 0 && i < tl.F {
				continue // combined with the A-part above
			}
			blo, bhi := chunkBounds(sp.rb[y], tl.F, j)
			if bhi > blo {
				start := off
				off += copy(arena[off:], bL[blo:bhi])
				ws[tl.F+j] = arena[start:off]
			}
		}
	})
}

// csrGatherRuns sorts node b's emitted (x, (z, v)) pairs by output row
// (stable, so the deterministic emit order survives within a row), projects
// the (z, v) halves into arena — which must have length len(pairs) — and
// records one window per distinct output row in tts.slots3[b] with the row
// indices in xts.bufs[b]. The spread slots the table previously held are
// dead by gather time (receivers copied their windows out at spread
// receive), so the table is reused.
func csrGatherRuns[T any](tts *typedScratch[ring.Tuple[T]], xts *typedScratch[int32], b int, pairs []ring.Tuple[ring.Tuple[T]], arena []ring.Tuple[T]) {
	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].Idx < pairs[j].Idx })
	runs := 0
	for i := 0; i < len(pairs); {
		j := i + 1
		for j < len(pairs) && pairs[j].Idx == pairs[i].Idx {
			j++
		}
		runs++
		i = j
	}
	gs := nodeSlots(tts.slots3, b, runs)
	xs := nodeBuf(xts.bufs, b, runs)
	r := 0
	for i := 0; i < len(pairs); {
		j := i + 1
		for j < len(pairs) && pairs[j].Idx == pairs[i].Idx {
			j++
		}
		for k := i; k < j; k++ {
			arena[k] = pairs[k].Val
		}
		gs[r] = arena[i:j]
		xs[r] = pairs[i].Idx
		r++
		i = j
	}
	xts.bufs[b] = xs
}

// csrFold sorts node x's received (z, v) tuples by column (stable), folds
// equal-column runs with the semiring addition, and drops sums equal to the
// semiring zero — keeping the output canonical, so it is bit-identical to
// compressing a dense engine's product row. Returns the folded prefix of
// acc.
func csrFold[T any](sr ring.Semiring[T], zero T, acc []ring.Tuple[T]) []ring.Tuple[T] {
	sort.SliceStable(acc, func(i, j int) bool { return acc[i].Idx < acc[j].Idx })
	out := acc[:0]
	for i := 0; i < len(acc); {
		v := acc[i].Val
		j := i + 1
		for ; j < len(acc) && acc[j].Idx == acc[i].Idx; j++ {
			v = sr.Add(v, acc[j].Val)
		}
		if !sr.Equal(v, zero) {
			out = append(out, ring.Tuple[T]{Idx: acc[i].Idx, Val: v})
		}
		i = j
	}
	return out
}

// csrAssemble builds the fresh output CSR from the per-node folded rows
// left in tts.bufs2 (lengths in sp.ca): a single-threaded RowPtr prefix sum
// and a parallel flat copy. Outputs are never pooled.
func csrAssemble[T any](net *clique.Network, sp *sparseState, tts *typedScratch[ring.Tuple[T]], n int) *matrix.CSR[T] {
	out := matrix.NewCSR[T](n)
	var nnz int64
	for x := 0; x < n; x++ {
		nnz += int64(sp.ca[x])
		out.RowPtr[x+1] = nnz
	}
	out.Col = make([]int32, nnz)
	out.Val = make([]T, nnz)
	net.ForEach(func(x int) {
		lo := out.RowPtr[x]
		for i, tp := range tts.bufs2[x][:sp.ca[x]] {
			out.Col[lo+int64(i)] = tp.Idx
			out.Val[lo+int64(i)] = tp.Val
		}
	})
	return out
}

// csrDirect is the data plane: tuple windows into per-node arenas travel by
// reference as payloads, their wire cost charged analytically from the same
// TupleCodec EncodedLen sums the wire plane pays for real.
func csrDirect[T any](net *clique.Network, sc *Scratch, sr ring.Semiring[T], codec ring.Codec[T], s, t *matrix.CSR[T]) (*matrix.CSR[T], error) {
	n := net.N()
	if sc == nil {
		sc = NewScratch()
	}
	bc := ring.AsBulk[T](codec)
	tc := ring.TupleCodec[T]{Val: bc}
	tts := typedFrom[ring.Tuple[T]](sc)
	pts := typedFrom[ring.Tuple[ring.Tuple[T]]](sc)
	xts := typedFrom[int32](sc)
	sp := sc.sparse()
	zero, one := sr.Zero(), sr.One()
	growBufs(&tts.bufs, n)
	growBufs(&tts.bufs2, n)
	growBufs(&tts.bufs3, n)
	growBufs(&pts.bufs, n)
	growBufs(&xts.bufs, n)
	growSlotRows(&tts.slots, n)
	growSlotRows(&tts.slots2, n)
	growSlotRows(&tts.slots3, n)
	sp.ca = growInts(sp.ca, n)
	sp.rb = growInts(sp.rb, n)

	// Phase 1: transpose — each stored S[x][y] rides to column owner y as a
	// pointer into the operand's value array (a shared one-cell for nil-Val
	// operands), charged EncodedLen(1) analytic words. rb is free on CSR.
	net.Phase("mmcsr/transpose")
	net.ForEach(func(v int) { sp.rb[v] = t.RowNNZ(v) })
	oneWords := int64(bc.EncodedLen(1))
	ones := []T{one}
	for x := 0; x < n; x++ {
		lo, hi := s.RowPtr[x], s.RowPtr[x+1]
		for i := lo; i < hi; i++ {
			if s.Val != nil {
				net.SendPayload(x, int(s.Col[i]), oneWords, &s.Val[i])
			} else {
				net.SendPayload(x, int(s.Col[i]), oneWords, &ones[0])
			}
		}
	}
	mailT := net.Flush()
	net.ForEach(func(y int) {
		aL := tts.bufs[y][:0]
		mailT.EachPayload(y, func(src int, ps []clique.Payload) {
			aL = append(aL, ring.Tuple[T]{Idx: int32(src), Val: *(ps[0].(*T))})
		})
		tts.bufs[y] = aL
		sp.ca[y] = len(aL)
	})

	// Phase 2: census + tile tables (shared with the dense sparse engine;
	// the density bound is enforced here).
	if err := sparseCensus(net, sp, n); err != nil {
		return nil, err
	}

	// Phase 3: spread — arenas and windows, then one payload per window.
	net.Phase("mmcsr/spread")
	csrSpreadChunks[T](net, sp, tts, t, one)
	for y := 0; y < n; y++ {
		tl := sp.tiles[y]
		if !tl.Allocated {
			continue
		}
		ws := tts.slots3[y]
		for i := 0; i < tl.F; i++ {
			if len(ws[i]) > 0 {
				net.SendPayload(y, tl.Row+i, int64(tc.EncodedLen(len(ws[i]))), &ws[i])
			}
		}
		for j := 0; j < tl.F; j++ {
			if w := ws[tl.F+j]; len(w) > 0 {
				net.SendPayload(y, tl.Col+j, int64(tc.EncodedLen(len(w))), &ws[tl.F+j])
			}
		}
	}
	mailS := net.Flush()
	net.ForEach(func(p int) {
		rl := sp.rowYs[sp.rowOff[p]:sp.rowOff[p+1]]
		cl := sp.colYs[sp.colOff[p]:sp.colOff[p+1]]
		wa := nodeSlots(tts.slots, p, len(rl))
		wb := nodeSlots(tts.slots2, p, len(cl))
		mailS.EachPayload(p, func(src int, ps []clique.Payload) {
			win := *(ps[0].(*[]ring.Tuple[T]))
			ka, kb := spreadCounts(sp.tiles[src], sp.ca[src], sp.rb[src], p)
			if ka > 0 {
				wa[sortedIndex(rl, int32(src))] = win[:ka]
			}
			if kb > 0 {
				wb[sortedIndex(cl, int32(src))] = win[ka : ka+kb]
			}
		})
	})

	// Phase 4: forward — a re-sends each tile's A-window (a slice into the
	// tile owner's arena, so no copy) to the tile's column nodes.
	net.Phase("mmcsr/forward")
	for a := 0; a < n; a++ {
		rl := sp.rowYs[sp.rowOff[a]:sp.rowOff[a+1]]
		wa := tts.slots[a]
		for i, y := range rl {
			chunk := wa[i]
			if len(chunk) == 0 {
				continue
			}
			tl := sp.tiles[y]
			words := int64(tc.EncodedLen(len(chunk)))
			for j := 0; j < tl.F; j++ {
				net.SendPayload(a, tl.Col+j, words, &wa[i])
			}
		}
	}
	mailF := net.Flush()

	// Phase 5: gather — b forms the partial products and routes each run of
	// (z, value) tuples to its output row owner. Tiles are disjoint, so the
	// forward chunk from a is the one for the unique tile containing (a, b).
	net.Phase("mmcsr/gather")
	net.ForEach(func(b int) {
		cl := sp.colYs[sp.colOff[b]:sp.colOff[b+1]]
		wb := tts.slots2[b]
		pairs := pts.bufs[b][:0]
		for j, y := range cl {
			bchunk := wb[j]
			if len(bchunk) == 0 {
				continue
			}
			tl := sp.tiles[y]
			for a := tl.Row; a < tl.Row+tl.F; a++ {
				ps := mailF.PayloadsFrom(b, a)
				if len(ps) == 0 {
					continue
				}
				for _, at := range *(ps[0].(*[]ring.Tuple[T])) {
					for _, bt := range bchunk {
						pairs = append(pairs, ring.Tuple[ring.Tuple[T]]{Idx: at.Idx, Val: ring.Tuple[T]{Idx: bt.Idx, Val: sr.Mul(at.Val, bt.Val)}})
					}
				}
			}
		}
		pts.bufs[b] = pairs
		csrGatherRuns[T](tts, xts, b, pairs, nodeBuf(tts.bufs, b, len(pairs)))
	})
	for b := 0; b < n; b++ {
		gs := tts.slots3[b]
		xs := xts.bufs[b]
		for r := range gs {
			net.SendPayload(b, int(xs[r]), int64(tc.EncodedLen(len(gs[r]))), &gs[r])
		}
	}
	mailG := net.Flush()

	// Phase 6: accumulate — x concatenates its received runs (copies; the
	// senders' arenas are read-only), folds, and the rows assemble locally.
	net.Phase("mmcsr/accumulate")
	net.ForEach(func(x int) {
		acc := tts.bufs2[x][:0]
		mailG.EachPayload(x, func(src int, ps []clique.Payload) {
			acc = append(acc, *(ps[0].(*[]ring.Tuple[T]))...)
		})
		out := csrFold(sr, zero, acc)
		tts.bufs2[x] = out
		sp.ca[x] = len(out)
	})
	return csrAssemble[T](net, sp, tts, n), nil
}

// csrWire is the encoded plane: the same schedule with every chunk encoded
// through ring.TupleCodec and moved as words, decoded into per-node receive
// arenas on arrival.
func csrWire[T any](net *clique.Network, sc *Scratch, sr ring.Semiring[T], codec ring.Codec[T], s, t *matrix.CSR[T]) (*matrix.CSR[T], error) {
	n := net.N()
	if sc == nil {
		sc = NewScratch()
	}
	bc := ring.AsBulk[T](codec)
	tc := ring.TupleCodec[T]{Val: bc}
	ts := typedFrom[T](sc)
	tts := typedFrom[ring.Tuple[T]](sc)
	pts := typedFrom[ring.Tuple[ring.Tuple[T]]](sc)
	xts := typedFrom[int32](sc)
	sp := sc.sparse()
	zero, one := sr.Zero(), sr.One()
	growBufs(&ts.bufs, n)
	growBufs(&tts.bufs, n)
	growBufs(&tts.bufs2, n)
	growBufs(&tts.bufs3, n)
	growBufs(&pts.bufs, n)
	growBufs(&xts.bufs, n)
	growSlotRows(&tts.slots, n)
	growSlotRows(&tts.slots2, n)
	growSlotRows(&tts.slots3, n)
	sp.ca = growInts(sp.ca, n)
	sp.rb = growInts(sp.rb, n)
	var wbuf []clique.Word // shared by the single-threaded send loops
	var vbuf []T

	// Phase 1: transpose.
	net.Phase("mmcsr/transpose")
	net.ForEach(func(v int) { sp.rb[v] = t.RowNNZ(v) })
	var cell [1]T
	for x := 0; x < n; x++ {
		lo, hi := s.RowPtr[x], s.RowPtr[x+1]
		for i := lo; i < hi; i++ {
			if s.Val != nil {
				cell[0] = s.Val[i]
			} else {
				cell[0] = one
			}
			wbuf = bc.EncodeSlice(wbuf[:0], cell[:])
			net.SendVec(x, int(s.Col[i]), wbuf)
		}
	}
	mailT := net.Flush()
	net.ForEach(func(y int) {
		aL := tts.bufs[y][:0]
		var got [1]T
		mailT.Each(y, func(src int, ws []clique.Word) {
			bc.DecodeSlice(got[:], ws)
			aL = append(aL, ring.Tuple[T]{Idx: int32(src), Val: got[0]})
		})
		tts.bufs[y] = aL
		sp.ca[y] = len(aL)
	})

	// Phase 2: census + tile tables.
	if err := sparseCensus(net, sp, n); err != nil {
		return nil, err
	}

	// Phase 3: spread.
	net.Phase("mmcsr/spread")
	csrSpreadChunks[T](net, sp, tts, t, one)
	for y := 0; y < n; y++ {
		tl := sp.tiles[y]
		if !tl.Allocated {
			continue
		}
		ws := tts.slots3[y]
		for i := 0; i < tl.F; i++ {
			if w := ws[i]; len(w) > 0 {
				wbuf, vbuf = tc.EncodeSlice(wbuf[:0], w, vbuf)
				net.SendVec(y, tl.Row+i, wbuf)
			}
		}
		for j := 0; j < tl.F; j++ {
			if w := ws[tl.F+j]; len(w) > 0 {
				wbuf, vbuf = tc.EncodeSlice(wbuf[:0], w, vbuf)
				net.SendVec(y, tl.Col+j, wbuf)
			}
		}
	}
	mailS := net.Flush()
	// Decode into per-node receive arenas (the transpose lists in tts.bufs
	// are dead — csrSpreadChunks copied them into the send arenas).
	net.ForEach(func(p int) {
		rl := sp.rowYs[sp.rowOff[p]:sp.rowOff[p+1]]
		cl := sp.colYs[sp.colOff[p]:sp.colOff[p+1]]
		wa := nodeSlots(tts.slots, p, len(rl))
		wb := nodeSlots(tts.slots2, p, len(cl))
		total := 0
		for _, y := range rl {
			ka, kb := spreadCounts(sp.tiles[y], sp.ca[y], sp.rb[y], p)
			total += ka + kb
		}
		for _, y := range cl {
			tl := sp.tiles[y]
			if i := p - tl.Row; i >= 0 && i < tl.F {
				continue
			}
			_, kb := spreadCounts(tl, sp.ca[y], sp.rb[y], p)
			total += kb
		}
		flat := nodeBuf(tts.bufs, p, total)
		vb := ts.bufs[p]
		off := 0
		for i, y := range rl {
			ka, kb := spreadCounts(sp.tiles[y], sp.ca[y], sp.rb[y], p)
			k := ka + kb
			if k == 0 {
				continue
			}
			chunk := flat[off : off+k]
			vb = tc.DecodeSlice(chunk, mailS.From(p, int(y)), vb)
			if ka > 0 {
				wa[i] = chunk[:ka]
			}
			if kb > 0 {
				wb[sortedIndex(cl, y)] = chunk[ka:]
			}
			off += k
		}
		for j, y := range cl {
			tl := sp.tiles[y]
			if i := p - tl.Row; i >= 0 && i < tl.F {
				continue
			}
			_, kb := spreadCounts(tl, sp.ca[y], sp.rb[y], p)
			if kb == 0 {
				continue
			}
			chunk := flat[off : off+kb]
			vb = tc.DecodeSlice(chunk, mailS.From(p, int(y)), vb)
			wb[j] = chunk
			off += kb
		}
		ts.bufs[p] = vb
	})

	// Phase 4: forward.
	net.Phase("mmcsr/forward")
	for a := 0; a < n; a++ {
		rl := sp.rowYs[sp.rowOff[a]:sp.rowOff[a+1]]
		wa := tts.slots[a]
		for i, y := range rl {
			chunk := wa[i]
			if len(chunk) == 0 {
				continue
			}
			tl := sp.tiles[y]
			wbuf, vbuf = tc.EncodeSlice(wbuf[:0], chunk, vbuf)
			for j := 0; j < tl.F; j++ {
				net.SendVec(a, tl.Col+j, wbuf)
			}
		}
	}
	mailF := net.Flush()

	// Phase 5: gather.
	net.Phase("mmcsr/gather")
	net.ForEach(func(b int) {
		cl := sp.colYs[sp.colOff[b]:sp.colOff[b+1]]
		wb := tts.slots2[b]
		pairs := pts.bufs[b][:0]
		vb := ts.bufs[b]
		for j, y := range cl {
			bchunk := wb[j]
			if len(bchunk) == 0 {
				continue
			}
			tl := sp.tiles[y]
			for a := tl.Row; a < tl.Row+tl.F; a++ {
				lo, hi := chunkBounds(sp.ca[y], tl.F, a-tl.Row)
				if hi == lo {
					continue
				}
				ach := nodeBuf(tts.bufs2, b, hi-lo)
				vb = tc.DecodeSlice(ach, mailF.From(b, a), vb)
				for _, at := range ach {
					for _, bt := range bchunk {
						pairs = append(pairs, ring.Tuple[ring.Tuple[T]]{Idx: at.Idx, Val: ring.Tuple[T]{Idx: bt.Idx, Val: sr.Mul(at.Val, bt.Val)}})
					}
				}
			}
		}
		pts.bufs[b] = pairs
		ts.bufs[b] = vb
		// The spread send arena in bufs3 is dead on the wire plane (its
		// chunks were encoded and copied into the link queues), so it hosts
		// the outgoing run tuples.
		csrGatherRuns[T](tts, xts, b, pairs, nodeBuf(tts.bufs3, b, len(pairs)))
	})
	for b := 0; b < n; b++ {
		gs := tts.slots3[b]
		for r := range gs {
			wbuf, vbuf = tc.EncodeSlice(wbuf[:0], gs[r], vbuf)
			net.SendVec(b, int(xts.bufs[b][r]), wbuf)
		}
	}
	mailG := net.Flush()

	// Phase 6: accumulate. The receive pattern is data-dependent, so counts
	// come from the self-delimiting chunks (CountFor), not the census.
	net.Phase("mmcsr/accumulate")
	errs := make([]error, n)
	net.ForEach(func(x int) {
		total := 0
		mailG.Each(x, func(src int, ws []clique.Word) {
			k := tc.CountFor(len(ws))
			if k < 0 {
				errs[x] = fmt.Errorf("ccmm: malformed %d-word tuple chunk in CSR gather: %w", len(ws), ErrSize)
				return
			}
			total += k
		})
		if errs[x] != nil {
			return
		}
		acc := nodeBuf(tts.bufs2, x, total)
		vb := ts.bufs[x]
		off := 0
		mailG.Each(x, func(src int, ws []clique.Word) {
			k := tc.CountFor(len(ws))
			vb = tc.DecodeSlice(acc[off:off+k], ws, vb)
			off += k
		})
		ts.bufs[x] = vb
		out := csrFold(sr, zero, acc)
		tts.bufs2[x] = out
		sp.ca[x] = len(out)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return csrAssemble[T](net, sp, tts, n), nil
}

// csrCensus is the planner's census over CSR operands. Unlike nnzCensus it
// scans nothing: a CSR row's nonzero count is a RowPtr difference, so the
// round costs exactly its broadcast — the "census is free" property the
// CSR plane is built around.
func csrCensus[T any](net *clique.Network, sc *Scratch, s, t *matrix.CSR[T]) (rhoA, rhoB int64) {
	n := net.N()
	net.Phase("mmplan/census")
	sp := sc.sparse()
	sp.ca = growInts(sp.ca, n)
	sp.rb = growInts(sp.rb, n)
	net.ForEach(func(v int) {
		sp.ca[v] = s.RowNNZ(v)
		sp.rb[v] = t.RowNNZ(v)
	})
	sp.nnz = growInts(sp.nnz, n)
	for v := 0; v < n; v++ {
		sp.nnz[v] = clique.Word(sp.ca[v])<<32 | clique.Word(sp.rb[v])
	}
	got := net.BroadcastWord(sp.nnz)
	for v := 0; v < n; v++ {
		rhoA += int64(got[v] >> 32)
		rhoB += int64(got[v] & 0xffffffff)
	}
	return rhoA, rhoB
}

// csrExpand densifies a CSR operand into a pooled row matrix (fallback
// paths only — NewRowMat underneath is exactly what the dense-allocation
// gate watches, so a product that claims to have stayed CSR and didn't is
// caught even here).
func csrExpand[T any](net *clique.Network, ts *typedScratch[T], zero, one T, m *matrix.CSR[T]) *RowMat[T] {
	out := ts.getMat(m.N)
	net.ForEach(func(v int) {
		row := out.Rows[v]
		for j := range row {
			row[j] = zero
		}
		cols, vals := m.Row(v)
		for i, c := range cols {
			if vals == nil {
				row[c] = one
			} else {
				row[c] = vals[i]
			}
		}
	})
	return out
}

// densifyPair expands both operands for a dense-engine fallback; release
// returns the pooled matrices (engine results are fresh, never aliased).
func densifyPair[T any](net *clique.Network, sc *Scratch, zero, one T, s, t *matrix.CSR[T]) (sd, td *RowMat[T], release func()) {
	ts := typedFrom[T](sc)
	sd = csrExpand(net, ts, zero, one, s)
	td = csrExpand(net, ts, zero, one, t)
	return sd, td, func() { ts.putMat(sd); ts.putMat(td) }
}

// csrRoute is the density-aware dispatcher for CSR operands, the CSR twin
// of routeProduct: census (free on CSR), predictor comparison, sparse run
// with transparent ErrTooDense fallback, dense fallback gated by
// csrDensifyCap — beyond it a too-dense product errors rather than
// allocating Θ(n²).
func csrRoute[T any](net *clique.Network, p *Plan, sc *Scratch, s, t *matrix.CSR[T], denseEngine Engine, densePred float64, tupleWords int,
	runSparse func(sc *Scratch) (*matrix.CSR[T], error),
	runDense func(sc *Scratch) (*RowMat[T], error)) (CSRProduct[T], Route, error) {
	n := net.N()
	if sc == nil {
		sc = NewScratch()
	}
	if err := csrCheck(s, n); err != nil {
		return CSRProduct[T]{}, Route{}, err
	}
	if err := csrCheck(t, n); err != nil {
		return CSRProduct[T]{}, Route{}, err
	}
	dense := func(rt Route) (CSRProduct[T], Route, error) {
		if n > csrDensifyCap {
			return CSRProduct[T]{}, rt, fmt.Errorf("ccmm: dense fallback at n = %d would allocate n² state (densify cap %d): %w", n, csrDensifyCap, ErrTooDense)
		}
		m, err := runDense(sc)
		if err != nil {
			return CSRProduct[T]{}, rt, err
		}
		return CSRProduct[T]{Dense: m}, rt, nil
	}
	if p.Requested == EngineSparse {
		m, err := runSparse(sc)
		if err != nil {
			return CSRProduct[T]{}, Route{Engine: EngineSparse}, err
		}
		return CSRProduct[T]{Sparse: m}, Route{Engine: EngineSparse}, nil
	}
	if n < minSparseN || !p.censusApplies(net) {
		return dense(Route{Engine: denseEngine})
	}
	rhoA, rhoB := csrCensus[T](net, sc, s, t)
	rt := Route{Census: true, RhoA: rhoA, RhoB: rhoB, Engine: denseEngine}
	if chooseSparse(n, rhoA, rhoB, tupleWords, densePred, p.thresholdOn(net)) {
		m, err := runSparse(sc)
		if err == nil {
			rt.Engine = EngineSparse
			return CSRProduct[T]{Sparse: m}, rt, nil
		}
		if !errors.Is(err, ErrTooDense) {
			return CSRProduct[T]{}, rt, err
		}
		rt.Fallback = true // the exact Σ ca·rb census rejected the operands
	}
	return dense(rt)
}

// MulIntCSRRouted multiplies CSR operands over the integer ring with the
// density-aware planner, reporting the route taken.
func (p *Plan) MulIntCSRRouted(net *clique.Network, sc *Scratch, s, t *matrix.CSR[int64]) (m CSRProduct[int64], rt Route, err error) {
	defer catchAbort(&err)
	if err := p.check(net); err != nil {
		return CSRProduct[int64]{}, Route{}, err
	}
	r := ring.Int64{}
	bc := ring.AsBulk[int64](r)
	wd := float64(bc.EncodedLen(p.N)) / float64(p.N)
	return csrRoute[int64](net, p, sc, s, t, p.RingEngine,
		p.predictDenseRounds(p.RingEngine, wd), ring.TupleCodec[int64]{Val: bc}.EncodedLen(1),
		func(sc *Scratch) (*matrix.CSR[int64], error) {
			return SparseMulCSR[int64](net, sc, r, r, s, t)
		},
		func(sc *Scratch) (*RowMat[int64], error) {
			sd, td, release := densifyPair(net, sc, r.Zero(), r.One(), s, t)
			defer release()
			return mulRingConcrete[int64](net, p, sc, r, r, sd, td)
		})
}

// MulIntCSR is MulIntCSRRouted without the route report.
func (p *Plan) MulIntCSR(net *clique.Network, sc *Scratch, s, t *matrix.CSR[int64]) (CSRProduct[int64], error) {
	m, _, err := p.MulIntCSRRouted(net, sc, s, t)
	return m, err
}

// MulBoolCSRRouted computes the Boolean product of CSR operands. Stored
// entries are treated as true regardless of value — Boolean CSR operands
// must store only true entries (the canonical form; a nil Val is the usual
// adjacency encoding) — so the Boolean view shares the structure arrays
// with no conversion pass, and the sparse tuple streams carry bit-packed
// values. Sparse results come back value-free (nil Val: every stored entry
// is 1).
func (p *Plan) MulBoolCSRRouted(net *clique.Network, sc *Scratch, s, t *matrix.CSR[int64]) (m CSRProduct[int64], rt Route, err error) {
	defer catchAbort(&err)
	if err := p.check(net); err != nil {
		return CSRProduct[int64]{}, Route{}, err
	}
	sb := &matrix.CSR[bool]{N: s.N, RowPtr: s.RowPtr, Col: s.Col}
	tb := &matrix.CSR[bool]{N: t.N, RowPtr: t.RowPtr, Col: t.Col}
	wdPacked := float64(ring.PackedBool{}.EncodedLen(p.N)) / float64(p.N)
	var densePred float64
	switch p.RingEngine {
	case EngineFast:
		densePred = p.predictDenseRounds(EngineFast, 1)
	case Engine3D:
		densePred = p.predictDenseRounds(Engine3D, wdPacked)
	default:
		densePred = p.predictDenseRounds(EngineNaive, wdPacked)
	}
	return csrRoute[int64](net, p, sc, s, t, p.RingEngine, densePred,
		ring.TupleCodec[bool]{Val: ring.PackedBool{}}.EncodedLen(1),
		func(sc *Scratch) (*matrix.CSR[int64], error) {
			pb, err := SparseMulCSR[bool](net, sc, ring.Bool{}, ring.PackedBool{}, sb, tb)
			if err != nil {
				return nil, err
			}
			return &matrix.CSR[int64]{N: pb.N, RowPtr: pb.RowPtr, Col: pb.Col}, nil
		},
		func(sc *Scratch) (*RowMat[int64], error) {
			sd, td, release := densifyPair(net, sc, int64(0), int64(1), s, t)
			defer release()
			return p.mulBoolDense(net, sc, sd, td)
		})
}

// MulBoolCSR is MulBoolCSRRouted without the route report.
func (p *Plan) MulBoolCSR(net *clique.Network, sc *Scratch, s, t *matrix.CSR[int64]) (CSRProduct[int64], error) {
	m, _, err := p.MulBoolCSRRouted(net, sc, s, t)
	return m, err
}

// MulMinPlusCSRRouted computes the distance product of CSR operands:
// unstored entries are the min-plus zero (+∞), so a CSR distance matrix
// stores exactly the finite entries, and a nil Val means every stored edge
// has weight 0 (the min-plus one).
func (p *Plan) MulMinPlusCSRRouted(net *clique.Network, sc *Scratch, s, t *matrix.CSR[int64]) (m CSRProduct[int64], rt Route, err error) {
	defer catchAbort(&err)
	if err := p.check(net); err != nil {
		return CSRProduct[int64]{}, Route{}, err
	}
	mp := ring.MinPlus{}
	bc := ring.AsBulk[int64](mp)
	wd := float64(bc.EncodedLen(p.N)) / float64(p.N)
	return csrRoute[int64](net, p, sc, s, t, p.SemiringEngine,
		p.predictDenseRounds(p.SemiringEngine, wd), ring.TupleCodec[int64]{Val: bc}.EncodedLen(1),
		func(sc *Scratch) (*matrix.CSR[int64], error) {
			return SparseMulCSR[int64](net, sc, mp, mp, s, t)
		},
		func(sc *Scratch) (*RowMat[int64], error) {
			sd, td, release := densifyPair(net, sc, mp.Zero(), mp.One(), s, t)
			defer release()
			return p.mulMinPlusDense(net, sc, sd, td)
		})
}

// MulMinPlusCSR is MulMinPlusCSRRouted without the route report.
func (p *Plan) MulMinPlusCSR(net *clique.Network, sc *Scratch, s, t *matrix.CSR[int64]) (CSRProduct[int64], error) {
	m, _, err := p.MulMinPlusCSRRouted(net, sc, s, t)
	return m, err
}
