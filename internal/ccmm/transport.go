package ccmm

import (
	"errors"
	"fmt"
	"reflect"

	"github.com/algebraic-clique/algclique/internal/clique"
)

// The engines run on two transports sharing one ledger (see
// internal/clique/payload.go): the wire plane encodes every message into
// words and moves them through link queues; the direct plane hands
// algebra-typed slices end-to-end and charges the words analytically from
// the codec's EncodedLen. Each exported engine entry point dispatches on
// the network's Transport; TransportVerify runs both and diffs results and
// accounting, which is the executable proof that the planes agree.

// ErrTransportDiverged reports that the direct and wire transports
// disagreed on a product's result or accounting under TransportVerify —
// a simulator bug, never an input error.
var ErrTransportDiverged = errors.New("ccmm: direct and wire transports diverged")

// runVerified runs a product on both transports — direct on the caller's
// network, wire on a fresh shadow clique of the same size — and returns
// the direct result only if both the values and the charged
// rounds/words/flushes/phases agree.
func runVerified[T any](net *clique.Network, run func(net *clique.Network, wire bool) (*RowMat[T], error)) (*RowMat[T], error) {
	before := net.Stats()
	p, err := run(net, false)
	if err != nil {
		return nil, err
	}
	shadow := clique.New(net.N(), clique.WithTransport(clique.TransportWire))
	defer shadow.Close()
	q, err := run(shadow, true)
	if err != nil {
		return nil, fmt.Errorf("ccmm: wire shadow run failed: %w", err)
	}
	if err := diffLedger(before, net.Stats(), shadow.Stats()); err != nil {
		return nil, err
	}
	if !reflect.DeepEqual(p.Rows, q.Rows) {
		return nil, fmt.Errorf("%w: products differ", ErrTransportDiverged)
	}
	return p, nil
}

// diffLedger compares the direct run's accounting delta (after − before on
// the main network) against the wire shadow's full ledger.
func diffLedger(before, after, wire clique.Stats) error {
	if d, w := after.Rounds-before.Rounds, wire.Rounds; d != w {
		return fmt.Errorf("%w: rounds %d (direct) != %d (wire)", ErrTransportDiverged, d, w)
	}
	if d, w := after.Words-before.Words, wire.Words; d != w {
		return fmt.Errorf("%w: words %d (direct) != %d (wire)", ErrTransportDiverged, d, w)
	}
	if d, w := after.Flushes-before.Flushes, wire.Flushes; d != w {
		return fmt.Errorf("%w: flushes %d (direct) != %d (wire)", ErrTransportDiverged, d, w)
	}
	dp := after.Phases[len(before.Phases):]
	if len(dp) != len(wire.Phases) {
		return fmt.Errorf("%w: %d phases (direct) != %d (wire)", ErrTransportDiverged, len(dp), len(wire.Phases))
	}
	for i := range dp {
		if dp[i] != wire.Phases[i] {
			return fmt.Errorf("%w: phase %q %+v (direct) != %+v (wire)", ErrTransportDiverged, dp[i].Name, dp[i], wire.Phases[i])
		}
	}
	return nil
}
