package ccmm_test

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/matrix"
	"github.com/algebraic-clique/algclique/internal/ring"
)

// TestWorkerCountDoesNotAffectResults pins the parallel-execution
// contract: node-local computation runs on a worker pool, but results and
// accounting are identical for any pool size.
func TestWorkerCountDoesNotAffectResults(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 7))
	r := ring.Int64{}
	n := 64
	a, b := randIntMat(rng, n, 50), randIntMat(rng, n, 50)

	type outcome struct {
		product *matrix.Dense[int64]
		stats   clique.Stats
	}
	run := func(workers int, fast bool) outcome {
		net := clique.New(n, clique.WithWorkers(workers))
		var p *ccmm.RowMat[int64]
		var err error
		if fast {
			p, err = ccmm.FastBilinear[int64](net, r, r, nil, ccmm.Distribute(a), ccmm.Distribute(b))
		} else {
			p, err = ccmm.Semiring3D[int64](net, r, r, ccmm.Distribute(a), ccmm.Distribute(b))
		}
		if err != nil {
			t.Fatal(err)
		}
		return outcome{product: p.Collect(), stats: net.Stats()}
	}
	for _, fast := range []bool{false, true} {
		base := run(1, fast)
		for _, workers := range []int{2, 8, 32} {
			got := run(workers, fast)
			if !matrix.Equal[int64](r, base.product, got.product) {
				t.Fatalf("fast=%v workers=%d: product differs from sequential run", fast, workers)
			}
			if !reflect.DeepEqual(base.stats, got.stats) {
				t.Fatalf("fast=%v workers=%d: accounting differs: %+v vs %+v",
					fast, workers, base.stats, got.stats)
			}
		}
	}
}

// TestSemiring3DPaddedDeterminism pins determinism of the padded (non-cube)
// layout: the same seed yields an identical product and identical Stats —
// rounds, words, and per-phase breakdown — run after run and across worker
// pool sizes.
func TestSemiring3DPaddedDeterminism(t *testing.T) {
	mp := ring.MinPlus{}
	for _, n := range []int{28, 60} {
		run := func(workers int) (*matrix.Dense[int64], clique.Stats) {
			rng := rand.New(rand.NewPCG(42, uint64(n)))
			a, b := randMinPlusMat(rng, n), randMinPlusMat(rng, n)
			net := clique.New(n, clique.WithWorkers(workers))
			p, err := ccmm.Semiring3D[int64](net, mp, mp, ccmm.Distribute(a), ccmm.Distribute(b))
			if err != nil {
				t.Fatal(err)
			}
			return p.Collect(), net.Stats()
		}
		baseP, baseS := run(1)
		for _, workers := range []int{1, 4, 16} {
			p, s := run(workers)
			if !matrix.Equal[int64](mp, baseP, p) {
				t.Fatalf("n=%d workers=%d: product not deterministic", n, workers)
			}
			if !reflect.DeepEqual(baseS, s) {
				t.Fatalf("n=%d workers=%d: stats not deterministic: %+v vs %+v", n, workers, baseS, s)
			}
		}
	}
}
