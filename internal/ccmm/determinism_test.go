package ccmm_test

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/matrix"
	"github.com/algebraic-clique/algclique/internal/ring"
)

// TestWorkerCountDoesNotAffectResults pins the parallel-execution
// contract: node-local computation runs on a worker pool, but results and
// accounting are identical for any pool size.
func TestWorkerCountDoesNotAffectResults(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 7))
	r := ring.Int64{}
	n := 64
	a, b := randIntMat(rng, n, 50), randIntMat(rng, n, 50)

	type outcome struct {
		product *matrix.Dense[int64]
		stats   clique.Stats
	}
	run := func(workers int, fast bool) outcome {
		net := clique.New(n, clique.WithWorkers(workers))
		var p *ccmm.RowMat[int64]
		var err error
		if fast {
			p, err = ccmm.FastBilinear[int64](net, r, r, nil, ccmm.Distribute(a), ccmm.Distribute(b))
		} else {
			p, err = ccmm.Semiring3D[int64](net, r, r, ccmm.Distribute(a), ccmm.Distribute(b))
		}
		if err != nil {
			t.Fatal(err)
		}
		return outcome{product: p.Collect(), stats: net.Stats()}
	}
	for _, fast := range []bool{false, true} {
		base := run(1, fast)
		for _, workers := range []int{2, 8, 32} {
			got := run(workers, fast)
			if !matrix.Equal[int64](r, base.product, got.product) {
				t.Fatalf("fast=%v workers=%d: product differs from sequential run", fast, workers)
			}
			if !reflect.DeepEqual(base.stats, got.stats) {
				t.Fatalf("fast=%v workers=%d: accounting differs: %+v vs %+v",
					fast, workers, base.stats, got.stats)
			}
		}
	}
}
