package ccmm

import (
	"fmt"
	"sync"

	"github.com/algebraic-clique/algclique/internal/bilinear"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/ring"
)

// Plan is the per-clique-size resolution of an Engine request: the concrete
// engine for ring and semiring algebras plus the bilinear scheme when the
// fast engine applies. Plans are immutable and memoised, so a session (or a
// pipeline of iterated products) resolves engine and scheme once instead of
// on every multiplication.
//
// Auto plans are additionally density-aware: each product opens with a
// one-round census of the operands' nonzero counts and routes through the
// sparse tile engine (EngineSparse) when the paper's ρ-bound predicts
// fewer rounds than the resolved dense engine — with a transparent
// fallback to the dense engine when the sparse engine's exact Σ ca·rb
// bound fails mid-call. SparseThreshold scales that comparison; 0 turns
// the census (and the sparse routing) off. See census.go.
type Plan struct {
	// N is the clique size the plan was resolved for.
	N int
	// Requested is the engine selection the plan resolves.
	Requested Engine
	// RingEngine is the concrete engine used for ring products.
	RingEngine Engine
	// SemiringEngine is the concrete engine used for semiring (min-plus,
	// Boolean) products.
	SemiringEngine Engine
	// Scheme is the bilinear scheme backing RingEngine == EngineFast; nil
	// when no scheme fits (forcing EngineFast then fails at multiply time,
	// exactly as the unplanned path does).
	Scheme *bilinear.Scheme
	// SparseThreshold scales the density-aware sparse/dense round
	// comparison (see DefaultSparseThreshold); 0 disables the census.
	SparseThreshold float64
}

type planKey struct {
	n  int
	e  Engine
	th float64
}

var planCache sync.Map // planKey → *Plan

// PlanFor resolves (and memoises) the plan for an n-node clique under the
// given engine selection, with the default density-aware threshold.
func PlanFor(n int, e Engine) *Plan {
	return PlanSparse(n, e, DefaultSparseThreshold)
}

// PlanSparse is PlanFor with an explicit sparse-routing threshold:
// products on an Auto plan go through the sparse engine when
// predictedSparseRounds ≤ threshold · predictedDenseRounds. A zero
// threshold disables the density census entirely.
func PlanSparse(n int, e Engine, threshold float64) *Plan {
	key := planKey{n, e, threshold}
	if v, ok := planCache.Load(key); ok {
		return v.(*Plan)
	}
	p := &Plan{
		N:               n,
		Requested:       e,
		RingEngine:      e.Resolve(n, true),
		SemiringEngine:  e.Resolve(n, false),
		SparseThreshold: threshold,
	}
	if p.RingEngine == EngineFast {
		if s, err := bilinear.Pick(n); err == nil {
			p.Scheme = s
		}
	}
	v, _ := planCache.LoadOrStore(key, p)
	return v.(*Plan)
}

// String implements fmt.Stringer.
func (p *Plan) String() string {
	return fmt.Sprintf("plan(n=%d ring=%v semiring=%v)", p.N, p.RingEngine, p.SemiringEngine)
}

func (p *Plan) check(net *clique.Network) error {
	if p.N != net.N() {
		return fmt.Errorf("ccmm: plan for n=%d used on an %d-node clique: %w", p.N, net.N(), ErrSize)
	}
	return nil
}

// MulRingPlanned multiplies two distributed matrices over a ring using an
// already-resolved plan.
func MulRingPlanned[T any](net *clique.Network, p *Plan, rg ring.Ring[T], codec ring.Codec[T], s, t *RowMat[T]) (*RowMat[T], error) {
	return MulRingScratch[T](net, p, nil, rg, codec, s, t)
}

// MulRingScratch is MulRingPlanned with caller-owned scratch pools: the
// resolved engine draws its message matrices, payload buffers, and block
// operands from sc, so a session (or any iterated-product pipeline) pays
// the engine's working set once. A nil sc uses a transient scratch.
func MulRingScratch[T any](net *clique.Network, p *Plan, sc *Scratch, rg ring.Ring[T], codec ring.Codec[T], s, t *RowMat[T]) (*RowMat[T], error) {
	m, _, err := MulRingRouted[T](net, p, sc, rg, codec, s, t)
	return m, err
}

// MulRingRouted is MulRingScratch reporting how the density-aware planner
// routed the product (see Route).
func MulRingRouted[T any](net *clique.Network, p *Plan, sc *Scratch, rg ring.Ring[T], codec ring.Codec[T], s, t *RowMat[T]) (m *RowMat[T], rt Route, err error) {
	defer catchAbort(&err)
	if err := p.check(net); err != nil {
		return nil, Route{}, err
	}
	if p.RingEngine == EngineSparse {
		m, err := SparseMulScratch[T](net, sc, rg, codec, s, t)
		return m, Route{Engine: EngineSparse}, err
	}
	if !p.censusApplies(net) {
		m, err := mulRingConcrete[T](net, p, sc, rg, codec, s, t)
		return m, Route{Engine: p.RingEngine}, err
	}
	n := net.N()
	if err := s.validate(n); err != nil {
		return nil, Route{}, err
	}
	if err := t.validate(n); err != nil {
		return nil, Route{}, err
	}
	bc := ring.AsBulk[T](codec)
	wd := float64(bc.EncodedLen(n)) / float64(n)
	return routeProduct[T](net, p, sc, rg, s, t, p.RingEngine,
		p.predictDenseRounds(p.RingEngine, wd), ring.TupleCodec[T]{Val: bc}.EncodedLen(1),
		func(sc *Scratch) (*RowMat[T], error) {
			return SparseMulScratch[T](net, sc, rg, codec, s, t)
		},
		func() (*RowMat[T], error) {
			return mulRingConcrete[T](net, p, sc, rg, codec, s, t)
		})
}

// mulRingConcrete executes the plan's resolved dense ring engine (no
// census, no routing) — the pre-density-aware dispatch.
func mulRingConcrete[T any](net *clique.Network, p *Plan, sc *Scratch, rg ring.Ring[T], codec ring.Codec[T], s, t *RowMat[T]) (*RowMat[T], error) {
	switch p.RingEngine {
	case EngineFast:
		return FastBilinearScratch[T](net, sc, rg, codec, p.Scheme, s, t)
	case Engine3D:
		return Semiring3DScratch[T](net, sc, rg, codec, s, t)
	case EngineNaive:
		return NaiveGatherScratch[T](net, sc, rg, codec, s, t)
	default:
		return nil, fmt.Errorf("ccmm: engine %v cannot multiply over a ring: %w", p.RingEngine, ErrSize)
	}
}

// MulIntPlanned multiplies distributed int64 matrices over the integer ring
// with an already-resolved plan.
func (p *Plan) MulIntPlanned(net *clique.Network, s, t *RowMat[int64]) (*RowMat[int64], error) {
	return p.MulIntScratch(net, nil, s, t)
}

// MulIntScratch is MulIntPlanned with caller-owned scratch pools.
func (p *Plan) MulIntScratch(net *clique.Network, sc *Scratch, s, t *RowMat[int64]) (*RowMat[int64], error) {
	r := ring.Int64{}
	return MulRingScratch[int64](net, p, sc, r, r, s, t)
}

// MulIntRouted is MulIntScratch reporting the density-aware route.
func (p *Plan) MulIntRouted(net *clique.Network, sc *Scratch, s, t *RowMat[int64]) (*RowMat[int64], Route, error) {
	r := ring.Int64{}
	return MulRingRouted[int64](net, p, sc, r, r, s, t)
}

// MulBoolPlanned computes the Boolean matrix product with an
// already-resolved plan (see MulBool for the embedding).
func (p *Plan) MulBoolPlanned(net *clique.Network, s, t *RowMat[int64]) (*RowMat[int64], error) {
	return p.MulBoolScratch(net, nil, s, t)
}

// MulBoolScratch is MulBoolPlanned with caller-owned scratch pools; the
// semiring engines ship the product through the bit-packed Boolean
// transport.
func (p *Plan) MulBoolScratch(net *clique.Network, sc *Scratch, s, t *RowMat[int64]) (*RowMat[int64], error) {
	m, _, err := p.MulBoolRouted(net, sc, s, t)
	return m, err
}

// MulBoolRouted is MulBoolScratch reporting the density-aware route. The
// sparse path multiplies over the Boolean semiring with bit-packed tuple
// values (ring.TupleCodec over ring.PackedBool).
func (p *Plan) MulBoolRouted(net *clique.Network, sc *Scratch, s, t *RowMat[int64]) (m *RowMat[int64], rt Route, err error) {
	defer catchAbort(&err)
	if err := p.check(net); err != nil {
		return nil, Route{}, err
	}
	if p.RingEngine == EngineSparse {
		m, err := mulBoolSparse(net, sc, s, t)
		return m, Route{Engine: EngineSparse}, err
	}
	dense := func() (*RowMat[int64], error) { return p.mulBoolDense(net, sc, s, t) }
	if !p.censusApplies(net) {
		m, err := dense()
		return m, Route{Engine: p.RingEngine}, err
	}
	n := net.N()
	if err := s.validate(n); err != nil {
		return nil, Route{}, err
	}
	if err := t.validate(n); err != nil {
		return nil, Route{}, err
	}
	// Dense Boolean products either ride the integer embedding on the
	// bilinear engine (one word per entry) or the bit-packed transport on
	// the semiring engines — predict whichever the plan resolved; the
	// sparse path's tuples carry bit-packed values either way.
	wdPacked := float64(ring.PackedBool{}.EncodedLen(n)) / float64(n)
	var densePred float64
	switch p.RingEngine {
	case EngineFast:
		densePred = p.predictDenseRounds(EngineFast, 1)
	case Engine3D:
		densePred = p.predictDenseRounds(Engine3D, wdPacked)
	default:
		densePred = p.predictDenseRounds(EngineNaive, wdPacked)
	}
	return routeProduct[int64](net, p, sc, ring.Int64{}, s, t, p.RingEngine, densePred,
		ring.TupleCodec[bool]{Val: ring.PackedBool{}}.EncodedLen(1),
		func(sc *Scratch) (*RowMat[int64], error) {
			return mulBoolSparse(net, sc, s, t)
		}, dense)
}

// mulBoolDense executes the plan's resolved dense Boolean path (no
// census): the integer embedding on the bilinear engine, the bit-packed
// Boolean semiring otherwise.
func (p *Plan) mulBoolDense(net *clique.Network, sc *Scratch, s, t *RowMat[int64]) (*RowMat[int64], error) {
	switch p.RingEngine {
	case EngineFast:
		r := ring.Int64{}
		prod, err := mulRingConcrete[int64](net, p, sc, r, r, s, t)
		if err != nil {
			return nil, err
		}
		for v := range prod.Rows {
			row := prod.Rows[v]
			for j := range row {
				if row[j] != 0 {
					row[j] = 1
				}
			}
		}
		return prod, nil
	case Engine3D:
		return mulBoolSemiring(net, Engine3D, sc, s, t)
	default:
		return mulBoolSemiring(net, EngineNaive, sc, s, t)
	}
}

// MulMinPlusPlanned computes the distance product with an already-resolved
// plan; the bilinear engine does not apply (min-plus is not a ring).
func (p *Plan) MulMinPlusPlanned(net *clique.Network, s, t *RowMat[int64]) (*RowMat[int64], error) {
	return p.MulMinPlusScratch(net, nil, s, t)
}

// MulMinPlusScratch is MulMinPlusPlanned with caller-owned scratch pools.
func (p *Plan) MulMinPlusScratch(net *clique.Network, sc *Scratch, s, t *RowMat[int64]) (*RowMat[int64], error) {
	m, _, err := p.MulMinPlusRouted(net, sc, s, t)
	return m, err
}

// MulMinPlusRouted is MulMinPlusScratch reporting the density-aware route;
// a min-plus entry is nonzero when it is finite.
func (p *Plan) MulMinPlusRouted(net *clique.Network, sc *Scratch, s, t *RowMat[int64]) (m *RowMat[int64], rt Route, err error) {
	defer catchAbort(&err)
	if err := p.check(net); err != nil {
		return nil, Route{}, err
	}
	mp := ring.MinPlus{}
	if p.SemiringEngine == EngineSparse {
		m, err := SparseMulScratch[int64](net, sc, mp, mp, s, t)
		return m, Route{Engine: EngineSparse}, err
	}
	dense := func() (*RowMat[int64], error) { return p.mulMinPlusDense(net, sc, s, t) }
	if !p.censusApplies(net) {
		m, err := dense()
		return m, Route{Engine: p.SemiringEngine}, err
	}
	n := net.N()
	if err := s.validate(n); err != nil {
		return nil, Route{}, err
	}
	if err := t.validate(n); err != nil {
		return nil, Route{}, err
	}
	bc := ring.AsBulk[int64](mp)
	wd := float64(bc.EncodedLen(n)) / float64(n)
	return routeProduct[int64](net, p, sc, mp, s, t, p.SemiringEngine,
		p.predictDenseRounds(p.SemiringEngine, wd), ring.TupleCodec[int64]{Val: bc}.EncodedLen(1),
		func(sc *Scratch) (*RowMat[int64], error) {
			return SparseMulScratch[int64](net, sc, mp, mp, s, t)
		}, dense)
}

// mulMinPlusDense executes the plan's resolved dense min-plus engine.
func (p *Plan) mulMinPlusDense(net *clique.Network, sc *Scratch, s, t *RowMat[int64]) (*RowMat[int64], error) {
	mp := ring.MinPlus{}
	switch p.SemiringEngine {
	case Engine3D:
		return Semiring3DScratch[int64](net, sc, mp, mp, s, t)
	case EngineNaive:
		return NaiveGatherScratch[int64](net, sc, mp, mp, s, t)
	default:
		return nil, fmt.Errorf("ccmm: engine %v cannot compute a min-plus product: %w", p.SemiringEngine, ErrSize)
	}
}
