package ccmm

import (
	"fmt"
	"sync"

	"github.com/algebraic-clique/algclique/internal/bilinear"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/ring"
)

// Plan is the per-clique-size resolution of an Engine request: the concrete
// engine for ring and semiring algebras plus the bilinear scheme when the
// fast engine applies. Plans are immutable and memoised, so a session (or a
// pipeline of iterated products) resolves engine and scheme once instead of
// on every multiplication.
type Plan struct {
	// N is the clique size the plan was resolved for.
	N int
	// Requested is the engine selection the plan resolves.
	Requested Engine
	// RingEngine is the concrete engine used for ring products.
	RingEngine Engine
	// SemiringEngine is the concrete engine used for semiring (min-plus,
	// Boolean) products.
	SemiringEngine Engine
	// Scheme is the bilinear scheme backing RingEngine == EngineFast; nil
	// when no scheme fits (forcing EngineFast then fails at multiply time,
	// exactly as the unplanned path does).
	Scheme *bilinear.Scheme
}

type planKey struct {
	n int
	e Engine
}

var planCache sync.Map // planKey → *Plan

// PlanFor resolves (and memoises) the plan for an n-node clique under the
// given engine selection.
func PlanFor(n int, e Engine) *Plan {
	key := planKey{n, e}
	if v, ok := planCache.Load(key); ok {
		return v.(*Plan)
	}
	p := &Plan{
		N:              n,
		Requested:      e,
		RingEngine:     e.Resolve(n, true),
		SemiringEngine: e.Resolve(n, false),
	}
	if p.RingEngine == EngineFast {
		if s, err := bilinear.Pick(n); err == nil {
			p.Scheme = s
		}
	}
	v, _ := planCache.LoadOrStore(key, p)
	return v.(*Plan)
}

// String implements fmt.Stringer.
func (p *Plan) String() string {
	return fmt.Sprintf("plan(n=%d ring=%v semiring=%v)", p.N, p.RingEngine, p.SemiringEngine)
}

func (p *Plan) check(net *clique.Network) error {
	if p.N != net.N() {
		return fmt.Errorf("ccmm: plan for n=%d used on an %d-node clique: %w", p.N, net.N(), ErrSize)
	}
	return nil
}

// MulRingPlanned multiplies two distributed matrices over a ring using an
// already-resolved plan.
func MulRingPlanned[T any](net *clique.Network, p *Plan, rg ring.Ring[T], codec ring.Codec[T], s, t *RowMat[T]) (*RowMat[T], error) {
	return MulRingScratch[T](net, p, nil, rg, codec, s, t)
}

// MulRingScratch is MulRingPlanned with caller-owned scratch pools: the
// resolved engine draws its message matrices, payload buffers, and block
// operands from sc, so a session (or any iterated-product pipeline) pays
// the engine's working set once. A nil sc uses a transient scratch.
func MulRingScratch[T any](net *clique.Network, p *Plan, sc *Scratch, rg ring.Ring[T], codec ring.Codec[T], s, t *RowMat[T]) (*RowMat[T], error) {
	if err := p.check(net); err != nil {
		return nil, err
	}
	switch p.RingEngine {
	case EngineFast:
		return FastBilinearScratch[T](net, sc, rg, codec, p.Scheme, s, t)
	case Engine3D:
		return Semiring3DScratch[T](net, sc, rg, codec, s, t)
	case EngineNaive:
		return NaiveGatherScratch[T](net, sc, rg, codec, s, t)
	default:
		return nil, fmt.Errorf("ccmm: engine %v cannot multiply over a ring: %w", p.RingEngine, ErrSize)
	}
}

// MulIntPlanned multiplies distributed int64 matrices over the integer ring
// with an already-resolved plan.
func (p *Plan) MulIntPlanned(net *clique.Network, s, t *RowMat[int64]) (*RowMat[int64], error) {
	return p.MulIntScratch(net, nil, s, t)
}

// MulIntScratch is MulIntPlanned with caller-owned scratch pools.
func (p *Plan) MulIntScratch(net *clique.Network, sc *Scratch, s, t *RowMat[int64]) (*RowMat[int64], error) {
	r := ring.Int64{}
	return MulRingScratch[int64](net, p, sc, r, r, s, t)
}

// MulBoolPlanned computes the Boolean matrix product with an
// already-resolved plan (see MulBool for the embedding).
func (p *Plan) MulBoolPlanned(net *clique.Network, s, t *RowMat[int64]) (*RowMat[int64], error) {
	return p.MulBoolScratch(net, nil, s, t)
}

// MulBoolScratch is MulBoolPlanned with caller-owned scratch pools; the
// semiring engines ship the product through the bit-packed Boolean
// transport.
func (p *Plan) MulBoolScratch(net *clique.Network, sc *Scratch, s, t *RowMat[int64]) (*RowMat[int64], error) {
	if err := p.check(net); err != nil {
		return nil, err
	}
	switch p.RingEngine {
	case EngineFast:
		prod, err := p.MulIntScratch(net, sc, s, t)
		if err != nil {
			return nil, err
		}
		for v := range prod.Rows {
			row := prod.Rows[v]
			for j := range row {
				if row[j] != 0 {
					row[j] = 1
				}
			}
		}
		return prod, nil
	case Engine3D:
		return mulBoolSemiring(net, Engine3D, sc, s, t)
	default:
		return mulBoolSemiring(net, EngineNaive, sc, s, t)
	}
}

// MulMinPlusPlanned computes the distance product with an already-resolved
// plan; the bilinear engine does not apply (min-plus is not a ring).
func (p *Plan) MulMinPlusPlanned(net *clique.Network, s, t *RowMat[int64]) (*RowMat[int64], error) {
	return p.MulMinPlusScratch(net, nil, s, t)
}

// MulMinPlusScratch is MulMinPlusPlanned with caller-owned scratch pools.
func (p *Plan) MulMinPlusScratch(net *clique.Network, sc *Scratch, s, t *RowMat[int64]) (*RowMat[int64], error) {
	if err := p.check(net); err != nil {
		return nil, err
	}
	mp := ring.MinPlus{}
	switch p.SemiringEngine {
	case Engine3D:
		return Semiring3DScratch[int64](net, sc, mp, mp, s, t)
	case EngineNaive:
		return NaiveGatherScratch[int64](net, sc, mp, mp, s, t)
	default:
		return nil, fmt.Errorf("ccmm: engine %v cannot compute a min-plus product: %w", p.SemiringEngine, ErrSize)
	}
}
