package ccmm_test

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/ring"
)

// Allocation-tracking benchmarks for the engine hot path: one persistent
// network (Reset between products, as sessions do) so the numbers measure
// the steady-state cost of a repeated product, not construction. allocs/op
// is the regression signal CI watches — the scratch pools and bulk codecs
// exist to drive it toward zero.

// BenchmarkSemiring3DAllocs measures the 3D engine in steady state over the
// one-word min-plus codec at cube (27, 64) and non-cube (100) sizes.
func BenchmarkSemiring3DAllocs(b *testing.B) {
	mp := ring.MinPlus{}
	for _, n := range []int{27, 64, 100} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewPCG(9, uint64(n)))
			s, t := ccmm.Distribute(randMinPlusMat(rng, n)), ccmm.Distribute(randMinPlusMat(rng, n))
			net := clique.New(n)
			sc := ccmm.NewScratch()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.Reset()
				if _, err := ccmm.Semiring3DScratch[int64](net, sc, mp, mp, s, t); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSemiring3DWitnessAllocs measures the width-2 (value + witness)
// codec through the same engine — the algebra behind every APSP squaring.
func BenchmarkSemiring3DWitnessAllocs(b *testing.B) {
	for _, n := range []int{27, 64, 100} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewPCG(10, uint64(n)))
			s, t := ccmm.Distribute(randMinPlusMat(rng, n)), ccmm.Distribute(randMinPlusMat(rng, n))
			net := clique.New(n)
			sc := ccmm.NewScratch()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.Reset()
				if _, _, err := ccmm.DistanceProduct3DScratch(net, sc, s, t); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFastBilinearAllocs measures the bilinear engine in steady state
// on scheme-compatible perfect squares (100 = 10² runs the d=2 Strassen
// scheme; 16 and 64 run the picked Strassen powers).
func BenchmarkFastBilinearAllocs(b *testing.B) {
	r := ring.Int64{}
	for _, n := range []int{16, 64, 100} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewPCG(11, uint64(n)))
			s, t := ccmm.Distribute(randIntMat(rng, n, 50)), ccmm.Distribute(randIntMat(rng, n, 50))
			net := clique.New(n)
			sc := ccmm.NewScratch()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.Reset()
				if _, err := ccmm.FastBilinearScratch[int64](net, sc, r, r, nil, s, t); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBoolPackedRounds compares the packed and unpacked Boolean
// transports through the 3D engine: same product, ~64× fewer words and
// rounds under the bit-packed codec.
func BenchmarkBoolPackedRounds(b *testing.B) {
	br := ring.Bool{}
	for _, n := range []int{64, 512} {
		rng := rand.New(rand.NewPCG(12, uint64(n)))
		rows := make([][]bool, n)
		for i := range rows {
			rows[i] = make([]bool, n)
			for j := range rows[i] {
				rows[i][j] = rng.IntN(2) == 1
			}
		}
		s := &ccmm.RowMat[bool]{Rows: rows}
		for _, packed := range []bool{false, true} {
			name := "unpacked"
			var codec ring.BulkCodec[bool] = ring.AsBulk[bool](br)
			if packed {
				name = "packed"
				codec = ring.PackedBool{}
			}
			b.Run(fmt.Sprintf("%s/n=%d", name, n), func(b *testing.B) {
				net := clique.New(n)
				sc := ccmm.NewScratch()
				var rounds int64
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					net.Reset()
					if _, err := ccmm.Semiring3DScratch[bool](net, sc, br, codec, s, s); err != nil {
						b.Fatal(err)
					}
					rounds = net.Rounds()
				}
				b.ReportMetric(float64(rounds), "rounds")
			})
		}
	}
}

// BenchmarkSparseAllocs measures the sparse tile engine in steady state on
// GNP-density integer operands: the tuple buffers, tile tables, and view
// matrices all pool through the scratch, so allocs/op must sit in the same
// range as the dense engines (the product result plus O(n) bookkeeping).
func BenchmarkSparseAllocs(b *testing.B) {
	r := ring.Int64{}
	for _, n := range []int{64, 100} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewPCG(12, uint64(n)))
			s := sparseIntMat(rng, n, 4, 50)
			t := sparseIntMat(rng, n, 4, 50)
			net := clique.New(n)
			sc := ccmm.NewScratch()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.Reset()
				if _, err := ccmm.SparseMulScratch[int64](net, sc, r, r, s, t); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
