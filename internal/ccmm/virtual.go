package ccmm

import (
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/routing"
)

// exchangeVirtual delivers per-virtual-pair word vectors over the real
// clique: vmsgs[v][u] travels from virtual node v to virtual node u, i.e.
// from real node v mod n to real node u mod n. Pairs hosted on the same
// real node are delivered locally (free in the model, like any self-send).
// The remaining traffic is multiplexed onto the real links in (virtual
// source, virtual destination) order and split back apart at the receiver.
//
// The algorithms using this helper are oblivious: every message length is
// fixed by (n, c) alone, so the split points are globally computable by
// every node and no headers travel on the wire — the same out-of-band
// addressing convention the routing layer documents.
//
// The returned matrix is a scratch *view* (entries borrow mailbox windows
// and loopback payloads); the caller must return it with sc.putView once
// consumed. The intermediate per-link concatenation buffers come from the
// scratch payload pool and are recycled here.
//
//cc:hotpath
func (l cubeLayout) exchangeVirtual(net *clique.Network, sc *Scratch, vmsgs [][][]clique.Word) [][][]clique.Word {
	n := l.n
	msgs := sc.getPayload(n)
	for v := range vmsgs {
		rv := l.real(v)
		for u, vec := range vmsgs[v] {
			if len(vec) == 0 {
				continue
			}
			if ru := l.real(u); ru != rv {
				msgs[rv][ru] = append(msgs[rv][ru], vec...)
			}
		}
	}
	in := routing.ExchangeScratch(net, routing.Auto, sc.rt, msgs)
	sc.putPayload(msgs) // the network copied the payloads into its queues

	vin := sc.getView(l.vn)
	offs := sc.linkOffs(n * n) // consumed words per real link [src*n + dst]
	for v := range vmsgs {
		rv := l.real(v)
		for u, vec := range vmsgs[v] {
			ln := len(vec)
			if ln == 0 {
				continue
			}
			ru := l.real(u)
			if ru == rv {
				vin[u][v] = vec
				continue
			}
			o := offs[rv*n+ru]
			vin[u][v] = in[ru][rv][o : o+ln]
			offs[rv*n+ru] = o + ln
		}
	}
	return vin
}

// exchangeVirtualPayload is exchangeVirtual on the direct transport: the
// per-virtual-pair messages are typed element slices that travel by
// reference (one payload per pair, multiplexed FIFO onto the real links),
// while the per-link word loads — chunkWords of each message's element
// count, i.e. the EncodedLen sums the encoded path would concatenate —
// are charged analytically. The strategy choice and ledger match
// exchangeVirtual exactly.
//
// The returned matrix is a typed scratch view (entries alias the senders'
// message buffers); the caller must return it with ts.putViews once
// consumed, before the sender buffers are rebuilt.
//
//cc:hotpath
func exchangeVirtualPayload[T any](l cubeLayout, net *clique.Network, sc *Scratch, ts *typedScratch[T], vmsgs [][][]T, chunkWords func(elems int) int64) [][][]T {
	n := l.n
	loads := sc.linkWords(n * n)
	for v := range vmsgs {
		rv := l.real(v)
		for u, vec := range vmsgs[v] {
			if len(vec) == 0 {
				continue
			}
			if ru := l.real(u); ru != rv {
				loads[rv*n+ru] += chunkWords(len(vec))
			}
		}
	}
	send := func(charged bool) {
		for v := range vmsgs {
			rv := l.real(v)
			row := vmsgs[v]
			for u := range row {
				if len(row[u]) == 0 {
					continue
				}
				if ru := l.real(u); ru != rv {
					var w int64
					if charged {
						w = chunkWords(len(row[u]))
					}
					net.SendPayload(rv, ru, w, &row[u])
				}
			}
		}
	}
	// Resolve Auto exactly as the encoded exchange does (direct cost = max
	// non-self link lens, two-phase cost = sum of the schedule maxima),
	// reusing the memoised schedule aggregates for the analytic charge.
	maxA, totalA, maxB, totalB, direct := routing.PlanCosts(n, sc.rt, loads)
	var mail *clique.Mail
	if maxA+maxB < direct {
		// The word loads of both Lenzen phases are charged analytically;
		// the payloads ride the final flush with zero additional words.
		net.FlushAnalytic(maxA, totalA)
		send(false)
		mail = net.FlushAnalytic(maxB, totalB)
	} else {
		send(true)
		mail = net.Flush()
	}
	vin := ts.getViews(l.vn)
	idx := sc.linkOffs(n * n) // consumed payloads per real link [src*n + dst]
	for v := range vmsgs {
		rv := l.real(v)
		for u, vec := range vmsgs[v] {
			if len(vec) == 0 {
				continue
			}
			ru := l.real(u)
			if ru == rv {
				vin[u][v] = vec
				continue
			}
			k := idx[rv*n+ru]
			vin[u][v] = *(mail.PayloadsFrom(ru, rv)[k].(*[]T))
			idx[rv*n+ru] = k + 1
		}
	}
	return vin
}
