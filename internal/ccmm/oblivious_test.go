package ccmm_test

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/ring"
)

// TestMatMulIsOblivious checks the §2 claim that both multiplication
// algorithms are oblivious: the communication pattern (rounds and words,
// per phase) is fixed by the clique size — only message contents depend on
// the input matrices.
func TestMatMulIsOblivious(t *testing.T) {
	r := ring.Int64{}
	run3D := func(n int, seed uint64) []clique.PhaseStat {
		rng := rand.New(rand.NewPCG(seed, 0))
		a, b := randIntMat(rng, n, 50), randIntMat(rng, n, 50)
		net := clique.New(n)
		if _, err := ccmm.Semiring3D[int64](net, r, r, ccmm.Distribute(a), ccmm.Distribute(b)); err != nil {
			t.Fatal(err)
		}
		return net.Stats().Phases
	}
	// Both the exact-cube and the padded (non-cube) layouts must be
	// oblivious.
	for _, n := range []int{27, 28} {
		if !reflect.DeepEqual(run3D(n, 1), run3D(n, 999)) {
			t.Errorf("n=%d: semiring 3D communication pattern depends on matrix values", n)
		}
	}

	runFast := func(seed uint64, sparse bool) []clique.PhaseStat {
		rng := rand.New(rand.NewPCG(seed, 0))
		n := 64
		a, b := randIntMat(rng, n, 50), randIntMat(rng, n, 50)
		if sparse {
			// Zero out most entries: an oblivious algorithm must not care.
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if (i+j)%5 != 0 {
						a.Set(i, j, 0)
						b.Set(i, j, 0)
					}
				}
			}
		}
		net := clique.New(n)
		if _, err := ccmm.FastBilinear[int64](net, r, r, nil, ccmm.Distribute(a), ccmm.Distribute(b)); err != nil {
			t.Fatal(err)
		}
		return net.Stats().Phases
	}
	dense := runFast(2, false)
	sparse := runFast(3, true)
	if !reflect.DeepEqual(dense, sparse) {
		t.Error("fast bilinear communication pattern depends on matrix values")
	}
}
