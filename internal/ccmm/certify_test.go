package ccmm_test

import (
	"errors"
	"math/rand/v2"
	"testing"

	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/matrix"
	"github.com/algebraic-clique/algclique/internal/ring"
)

// refMul is the triple-loop reference product over a semiring.
func refMul[T any](sr ring.Semiring[T], a, b *ccmm.RowMat[T]) *ccmm.RowMat[T] {
	n := a.N()
	c := ccmm.NewRowMat[T](n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			acc := sr.Zero()
			for k := 0; k < n; k++ {
				acc = sr.Add(acc, sr.Mul(a.Rows[i][k], b.Rows[k][j]))
			}
			c.Rows[i][j] = acc
		}
	}
	return c
}

func randRowMat(rng *rand.Rand, n int, lim int64) *ccmm.RowMat[int64] {
	m := matrix.New[int64](n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, rng.Int64N(2*lim)-lim)
		}
	}
	return ccmm.Distribute(m)
}

func TestCertifyIntProductAcceptsAndRejects(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	n := 12
	a, b := randRowMat(rng, n, 50), randRowMat(rng, n, 50)
	c := refMul[int64](ring.Int64{}, a, b)
	net := clique.New(n)

	ok, err := ccmm.CertifyIntProduct(net, a, b, c, 8, 0x5eed)
	if err != nil || !ok {
		t.Fatalf("correct product rejected: ok=%v err=%v", ok, err)
	}
	before := net.Stats()
	if before.Rounds == 0 || before.Words == 0 {
		t.Fatalf("certification charged nothing: %+v", before)
	}

	c.Rows[5][9]++ // single-entry corruption
	rejected := false
	for probe := 0; probe < 8 && !rejected; probe++ {
		ok, err = ccmm.CertifyIntProduct(net, a, b, c, 1, uint64(0x5eed+probe))
		if err != nil {
			t.Fatal(err)
		}
		rejected = !ok
	}
	if !rejected {
		t.Fatal("corrupted product passed 8 independent Freivalds probes")
	}
}

func TestCertifyFreivaldsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	n := 9
	a, b := randRowMat(rng, n, 20), randRowMat(rng, n, 20)
	c := refMul[int64](ring.Int64{}, a, b)
	c.Rows[0][0] += 3

	run := func() (bool, clique.Stats) {
		net := clique.New(n)
		ok, err := ccmm.CertifyIntProduct(net, a, b, c, 4, 99)
		if err != nil {
			t.Fatal(err)
		}
		return ok, net.Stats()
	}
	ok1, st1 := run()
	ok2, st2 := run()
	if ok1 != ok2 || st1.Rounds != st2.Rounds || st1.Words != st2.Words {
		t.Fatalf("certification not deterministic: (%v %+v) vs (%v %+v)", ok1, st1, ok2, st2)
	}
}

func TestCertifyMinPlusSpotCheck(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	n := 10
	mp := ring.MinPlus{}
	mk := func() *ccmm.RowMat[int64] {
		m := ccmm.NewRowMat[int64](n)
		for i := range m.Rows {
			for j := range m.Rows[i] {
				if rng.IntN(3) == 0 {
					m.Rows[i][j] = ring.Inf
				} else {
					m.Rows[i][j] = rng.Int64N(100)
				}
			}
		}
		return m
	}
	a, b := mk(), mk()
	c := refMul[int64](mp, a, b)
	net := clique.New(n)

	ok, err := ccmm.CertifyMinPlusProduct(net, a, b, c, 3, 0xabc)
	if err != nil || !ok {
		t.Fatalf("correct distance product rejected: ok=%v err=%v", ok, err)
	}

	// samples = n is a complete audit: any single wrong entry is caught.
	c.Rows[4][7]--
	ok, err = ccmm.CertifyMinPlusProduct(net, a, b, c, n, 0xabc)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("full spot-check audit missed a corrupted entry")
	}
}

func TestCertifyBoolSpotCheck(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 10))
	n := 11
	mk := func() *ccmm.RowMat[int64] {
		m := ccmm.NewRowMat[int64](n)
		for i := range m.Rows {
			for j := range m.Rows[i] {
				m.Rows[i][j] = int64(rng.IntN(2))
			}
		}
		return m
	}
	a, b := mk(), mk()
	// Boolean reference via the 0/1 semiring view used by the certifier.
	c := ccmm.NewRowMat[int64](n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				if a.Rows[i][k] != 0 && b.Rows[k][j] != 0 {
					c.Rows[i][j] = 1
					break
				}
			}
		}
	}
	net := clique.New(n)
	ok, err := ccmm.CertifyBoolProduct(net, a, b, c, n, 0xb001)
	if err != nil || !ok {
		t.Fatalf("correct Boolean product rejected: ok=%v err=%v", ok, err)
	}
	c.Rows[2][3] = 1 - c.Rows[2][3]
	ok, err = ccmm.CertifyBoolProduct(net, a, b, c, n, 0xb001)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("full Boolean audit missed a flipped entry")
	}
}

// TestCertifySpotCheckFailsOnDroppedProbeTraffic pins the fail-closed
// contract: faults hitting the certification exchange itself must fail the
// check, never vouch for the product.
func TestCertifySpotCheckFailsOnDroppedProbeTraffic(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 11))
	n := 8
	mp := ring.MinPlus{}
	a, b := randRowMat(rng, n, 40), randRowMat(rng, n, 40)
	c := refMul[int64](mp, a, b)
	net := clique.New(n)
	net.SetFaultInjector(clique.NewFaultInjector(clique.FaultPlan{Seed: 3, DropProb: 1}))
	defer net.SetFaultInjector(nil)

	ok, err := ccmm.CertifyMinPlusProduct(net, a, b, c, 2, 0xdead)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("spot-check passed although every probe delivery was dropped")
	}
}

// TestCertifyRoundLimitSurfacesTyped pins the abort conversion inside the
// certifiers.
func TestCertifyRoundLimitSurfacesTyped(t *testing.T) {
	rng := rand.New(rand.NewPCG(12, 12))
	n := 8
	a, b := randRowMat(rng, n, 40), randRowMat(rng, n, 40)
	c := refMul[int64](ring.Int64{}, a, b)
	net := clique.New(n, clique.WithRoundLimit(1))

	_, err := ccmm.CertifyIntProduct(net, a, b, c, 4, 1)
	var lim *clique.RoundLimitError
	if !errors.As(err, &lim) {
		t.Fatalf("err = %v, want *RoundLimitError", err)
	}
}

// TestPayloadCorruptersCoverEngineTypes exercises each registered
// corrupter against its payload type and checks exactly one element
// changed.
func TestPayloadCorruptersCoverEngineTypes(t *testing.T) {
	h := uint64(0x0123456789abcdef)
	apply := func(p clique.Payload) bool {
		for _, co := range ccmm.PayloadCorrupters {
			if co(p, h) {
				return true
			}
		}
		return false
	}

	ints := []int64{1, 2, 3, 4}
	orig := append([]int64(nil), ints...)
	if !apply(&ints) {
		t.Fatal("no corrupter for *[]int64")
	}
	diff := 0
	for i := range ints {
		if ints[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("int64 corrupter changed %d elements, want 1", diff)
	}

	bools := []bool{true, false, true}
	if !apply(&bools) {
		t.Fatal("no corrupter for *[]bool")
	}
	words := []clique.Word{7, 8}
	if !apply(&words) {
		t.Fatal("no corrupter for *[]Word")
	}
	valws := []ring.ValW{{V: 5, W: 1}}
	if !apply(&valws) {
		t.Fatal("no corrupter for *[]ValW")
	}
	if valws[0].V == 5 {
		t.Fatal("ValW corrupter left the value intact")
	}
	tupsI := []ring.Tuple[int64]{{Idx: 2, Val: 9}}
	if !apply(&tupsI) {
		t.Fatal("no corrupter for *[]Tuple[int64]")
	}
	if tupsI[0].Idx != 2 {
		t.Fatal("tuple corrupter touched the index half")
	}
	tupsB := []ring.Tuple[bool]{{Idx: 1, Val: true}}
	if !apply(&tupsB) {
		t.Fatal("no corrupter for *[]Tuple[bool]")
	}
	if tupsB[0].Val {
		t.Fatal("bool tuple corrupter left the value intact")
	}

	if apply(&struct{}{}) {
		t.Fatal("corrupters claimed an unknown payload type")
	}
	var empty []int64
	if apply(&empty) {
		t.Fatal("corrupters claimed an empty slice")
	}
}
