package ccmm

import (
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/matrix"
	"github.com/algebraic-clique/algclique/internal/ring"
)

// Semiring3D computes the distributed product P = S·T over an arbitrary
// semiring on an n-node clique for any n ≥ 1, following the 3D algorithm of
// §2.1. The index cube has side c = ⌈n^{1/3}⌉: the c³ virtual nodes each own
// one c²×c² product subcube, and real node v mod n simulates virtual node v
// (≤ ⌈c³/n⌉ ≤ 8 virtual nodes per real node). Rows and columns beyond n are
// padded with the semiring zero, which annihilates under multiplication, so
// the product restricted to the real n×n block is unchanged — and all-zero
// rows are never transmitted. Each real node sends and receives O(n^{4/3})
// words, which the routing layer delivers in O(n^{1/3}) rounds; on a perfect
// cube the virtual and real cliques coincide and the algorithm is exactly
// the paper's.
//
// Virtual node v's subcube is v1∗∗ × v2∗∗ × v3∗∗ in the paper's notation;
// the paper's step-1 description contains a small index slip for T
// (receiving rows ∗v2∗ would not match the S columns v2∗∗), so T rows here
// are grouped by their *first* digit: row w of T is needed by exactly the
// nodes u with u2 = w1, keeping both middle-index sets equal to v2∗∗.
func Semiring3D[T any](net *clique.Network, sr ring.Semiring[T], codec ring.Codec[T], s, t *RowMat[T]) (*RowMat[T], error) {
	return Semiring3DScratch[T](net, nil, sr, codec, s, t)
}

// Semiring3DScratch is Semiring3D with caller-owned scratch pools: message
// matrices, payloads, block operands, and product subcubes persist in sc
// across products, so a pipeline of repeated multiplications (or a
// session) runs the engine allocation-free in steady state apart from the
// returned result. It dispatches on the network's transport: the direct
// plane hands typed block rows end-to-end with the wire words charged
// analytically, the wire plane encodes every chunk through the codec's
// bulk interface, and TransportVerify runs both and diffs them. A packing
// codec (ring.PackedBool) is honoured on both planes, since every cost and
// offset is an EncodedLen sum of whole chunks. A nil sc uses a transient
// scratch.
func Semiring3DScratch[T any](net *clique.Network, sc *Scratch, sr ring.Semiring[T], codec ring.Codec[T], s, t *RowMat[T]) (p *RowMat[T], err error) {
	defer catchAbort(&err)
	switch net.Transport() {
	case clique.TransportWire:
		return semiring3DWire[T](net, sc, sr, codec, s, t)
	case clique.TransportVerify:
		return runVerified(net, func(net2 *clique.Network, wire bool) (*RowMat[T], error) {
			if wire {
				return semiring3DWire[T](net2, nil, sr, codec, s, t)
			}
			return semiring3DDirect[T](net2, sc, sr, codec, s, t)
		})
	default:
		return semiring3DDirect[T](net, sc, sr, codec, s, t)
	}
}

// semiring3DWire is the encoded 3D algorithm (the original path, kept for
// verification and WithWireTransport).
func semiring3DWire[T any](net *clique.Network, sc *Scratch, sr ring.Semiring[T], codec ring.Codec[T], s, t *RowMat[T]) (*RowMat[T], error) {
	n := net.N()
	if err := s.validate(n); err != nil {
		return nil, err
	}
	if err := t.validate(n); err != nil {
		return nil, err
	}
	if sc == nil {
		sc = NewScratch()
	}
	bc := ring.AsBulk[T](codec)
	ts := typedFrom[T](sc)
	lay := newCubeLayout(n)
	c, vn := lay.c, lay.vn
	c2 := c * c
	partLen := bc.EncodedLen(c2) // words per block-row chunk on the wire
	zero := sr.Zero()
	live := lay.liveDigits()
	// alive reports whether virtual node u's subcube touches real data;
	// dead subcubes receive nothing and compute nothing (see liveDigits).
	alive := func(u int) bool {
		u1, u2, u3 := lay.split(u)
		return u1 < live && u2 < live && u3 < live
	}

	// Precompute the c index groups x∗∗ (shared, read-only).
	groups := make([][]int, c)
	for x := 0; x < c; x++ {
		groups[x] = lay.firstDigitSet(x)
	}
	growBufs(&ts.bufs, n)
	growSlots(&ts.cubeS, n)
	growSlots(&ts.cubeT, n)
	growSlots(&ts.cubeProd, vn)
	zeroRow := ts.zeroRowFor(zero, c2)

	// Step 1: distribute entries. Virtual node v < n sends S[v, u2∗∗] to
	// each u ∈ v1∗∗ and T[v, u3∗∗] to each u with u2 = v1; column indices
	// ≥ n read as the semiring zero. Virtual nodes v ≥ n own all-zero
	// padding rows, which every node can synthesise locally, so they send
	// nothing. When both an S and a T part go to the same recipient the S
	// part precedes the T part; each message is built contiguously so the
	// scratch payload buffers are append-only.
	net.Phase("mm3d/distribute")
	vmsgs := sc.getPayload(vn)
	net.ForEach(func(v int) {
		// The sending virtual nodes are exactly v < n, each hosted by
		// real node v itself: every real node ships its own row slices.
		v1, _, _ := lay.split(v)
		srow, trow := s.Rows[v], t.Rows[v]
		buf := nodeBuf(ts.bufs, v, c2)
		// S parts go to u = (v1, u2, u3); the recipients with u2 = v1 get
		// this sender's T part too, appended right after the S part.
		// (v < n implies v1 < live, so every such u is alive.)
		for u2 := 0; u2 < live; u2++ {
			for u3 := 0; u3 < live; u3++ {
				u := lay.join(v1, u2, u3)
				msg := vmsgs[v][u][:0]
				gatherCols(buf, srow, groups[u2], n, zero)
				msg = bc.EncodeSlice(msg, buf)
				if u2 == v1 {
					gatherCols(buf, trow, groups[u3], n, zero)
					msg = bc.EncodeSlice(msg, buf)
				}
				vmsgs[v][u] = msg
			}
		}
		// T parts to the remaining nodes with u2 = v1 (u1 ≠ v1); dead
		// subcubes get no T rows.
		for u1 := 0; u1 < live; u1++ {
			if u1 == v1 {
				continue
			}
			for u3 := 0; u3 < live; u3++ {
				u := lay.join(u1, v1, u3)
				gatherCols(buf, trow, groups[u3], n, zero)
				vmsgs[v][u] = bc.EncodeSlice(vmsgs[v][u][:0], buf)
			}
		}
	})
	in := lay.exchangeVirtual(net, sc, vmsgs)

	// Step 2: local multiplication of the received c²×c² blocks, decoded
	// straight into scratch block operands. Rows from padding senders
	// (v ≥ n) are the semiring zero.
	net.Phase("mm3d/multiply")
	net.ForEach(func(r int) {
		sblk := slotAt(ts.cubeS, r, c2, c2)
		tblk := slotAt(ts.cubeT, r, c2, c2)
		for u := r; u < vn; u += n {
			if !alive(u) {
				continue
			}
			u1, u2, _ := lay.split(u)
			for pos, v := range groups[u1] { // S row senders: v1 = u1
				if v >= n {
					sblk.SetRow(pos, zeroRow)
					continue
				}
				bc.DecodeSlice(sblk.Row(pos), in[u][v])
			}
			for pos, v := range groups[u2] { // T row senders: v1 = u2
				if v >= n {
					tblk.SetRow(pos, zeroRow)
					continue
				}
				ws := in[u][v]
				if v1, _, _ := lay.split(v); v1 == u1 {
					ws = ws[partLen:] // S part precedes on shared links
				}
				bc.DecodeSlice(tblk.Row(pos), ws)
			}
			prod := slotAt(ts.cubeProd, u, c2, c2)
			matrix.MulInto(sr, prod, sblk, tblk)
		}
	})
	sc.putView(in)

	// Step 3: distribute the partial products: virtual node u sends
	// P^{(u2)}[x, u3∗∗] to each real row owner x ∈ u1∗∗ with x < n
	// (padding rows of the output are discarded, so they never travel).
	// Step 1's messages were already copied out by the exchange, so its
	// sender rows (v < n) are truncated first — step 3's senders rewrite
	// only their own product entries, and anything else (T-part recipients,
	// senders owning no live subcube) must not leak into the next exchange.
	net.Phase("mm3d/products")
	for v := 0; v < n; v++ {
		row := vmsgs[v]
		for u := range row {
			row[u] = row[u][:0]
		}
	}
	net.ForEach(func(r int) {
		for u := r; u < vn; u += n {
			if !alive(u) {
				continue // the product subcube was never built
			}
			u1, _, _ := lay.split(u)
			prod := ts.cubeProd[u]
			for pos, x := range groups[u1] {
				if x < n {
					vmsgs[u][x] = bc.EncodeSlice(vmsgs[u][x][:0], prod.Row(pos))
				}
			}
		}
	})
	in = lay.exchangeVirtual(net, sc, vmsgs)

	// Step 4: assemble P[x, ∗] = Σ_w P^{(w)}[x, ∗]. Output row owners are
	// the virtual nodes x < n, each hosted by real node x itself.
	net.Phase("mm3d/assemble")
	p := NewRowMat[T](n)
	net.ForEach(func(x int) {
		x1, _, _ := lay.split(x)
		row := p.Rows[x]
		for j := range row {
			row[j] = zero
		}
		piece := nodeBuf(ts.bufs, x, c2)
		for _, u := range groups[x1] { // senders: the live u with u1 = x1
			if !alive(u) {
				continue
			}
			_, _, u3 := lay.split(u)
			bc.DecodeSlice(piece, in[x][u])
			for i, col := range groups[u3] {
				if col < n {
					row[col] = sr.Add(row[col], piece[i])
				}
			}
		}
	})
	sc.putView(in)
	sc.putPayload(vmsgs)
	return p, nil
}

// semiring3DDirect is the 3D algorithm on the data plane: the same four
// phases as semiring3DWire with identical charging, but block rows travel
// as typed slices — gathered straight into payload buffers, received
// straight into block-operand rows, and the step-3 partial products
// shipped as views of the product subcubes with no copy at all.
func semiring3DDirect[T any](net *clique.Network, sc *Scratch, sr ring.Semiring[T], codec ring.Codec[T], s, t *RowMat[T]) (*RowMat[T], error) {
	n := net.N()
	if err := s.validate(n); err != nil {
		return nil, err
	}
	if err := t.validate(n); err != nil {
		return nil, err
	}
	if sc == nil {
		sc = NewScratch()
	}
	bc := ring.AsBulk[T](codec)
	ts := typedFrom[T](sc)
	lay := newCubeLayout(n)
	c, vn := lay.c, lay.vn
	c2 := c * c
	partWords := int64(bc.EncodedLen(c2)) // analytic words per block-row chunk
	chunkWords := func(elems int) int64 { return int64(elems/c2) * partWords }
	zero := sr.Zero()
	live := lay.liveDigits()
	alive := func(u int) bool {
		u1, u2, u3 := lay.split(u)
		return u1 < live && u2 < live && u3 < live
	}

	groups := make([][]int, c)
	for x := 0; x < c; x++ {
		groups[x] = lay.firstDigitSet(x)
	}
	growSlots(&ts.cubeS, n)
	growSlots(&ts.cubeT, n)
	growSlots(&ts.cubeProd, vn)
	zeroRow := ts.zeroRowFor(zero, c2)

	// Step 1: distribute entries — the same recipients and chunk layout as
	// the wire path (S part before T part on shared pairs), but the chunks
	// are the algebra values themselves.
	net.Phase("mm3d/distribute")
	pmsgs := ts.getPay(vn)
	net.ForEach(func(v int) {
		v1, _, _ := lay.split(v)
		srow, trow := s.Rows[v], t.Rows[v]
		for u2 := 0; u2 < live; u2++ {
			for u3 := 0; u3 < live; u3++ {
				u := lay.join(v1, u2, u3)
				msg := appendCols(pmsgs[v][u][:0], srow, groups[u2], n, zero)
				if u2 == v1 {
					msg = appendCols(msg, trow, groups[u3], n, zero)
				}
				pmsgs[v][u] = msg
			}
		}
		for u1 := 0; u1 < live; u1++ {
			if u1 == v1 {
				continue
			}
			for u3 := 0; u3 < live; u3++ {
				u := lay.join(u1, v1, u3)
				pmsgs[v][u] = appendCols(pmsgs[v][u][:0], trow, groups[u3], n, zero)
			}
		}
	})
	in := exchangeVirtualPayload(lay, net, sc, ts, pmsgs, chunkWords)

	// Step 2: local multiplication; received rows copy straight into the
	// block operands (a memmove, no decode).
	net.Phase("mm3d/multiply")
	net.ForEach(func(r int) {
		sblk := slotAt(ts.cubeS, r, c2, c2)
		tblk := slotAt(ts.cubeT, r, c2, c2)
		for u := r; u < vn; u += n {
			if !alive(u) {
				continue
			}
			u1, u2, _ := lay.split(u)
			for pos, v := range groups[u1] { // S row senders: v1 = u1
				if v >= n {
					sblk.SetRow(pos, zeroRow)
					continue
				}
				sblk.SetRow(pos, in[u][v][:c2])
			}
			for pos, v := range groups[u2] { // T row senders: v1 = u2
				if v >= n {
					tblk.SetRow(pos, zeroRow)
					continue
				}
				ws := in[u][v]
				if v1, _, _ := lay.split(v); v1 == u1 {
					ws = ws[c2:] // the S part precedes on shared pairs
				}
				tblk.SetRow(pos, ws[:c2])
			}
			prod := slotAt(ts.cubeProd, u, c2, c2)
			matrix.MulInto(sr, prod, sblk, tblk)
		}
	})
	ts.putViews(in)

	// Step 3: distribute the partial products as zero-copy views of the
	// product subcube rows.
	net.Phase("mm3d/products")
	vout := ts.getViews(vn)
	net.ForEach(func(r int) {
		for u := r; u < vn; u += n {
			if !alive(u) {
				continue
			}
			u1, _, _ := lay.split(u)
			prod := ts.cubeProd[u]
			for pos, x := range groups[u1] {
				if x < n {
					vout[u][x] = prod.Row(pos)
				}
			}
		}
	})
	in = exchangeVirtualPayload(lay, net, sc, ts, vout, chunkWords)

	// Step 4: assemble P[x, ∗] = Σ_w P^{(w)}[x, ∗] by accumulating the
	// received rows in place.
	net.Phase("mm3d/assemble")
	p := NewRowMat[T](n)
	net.ForEach(func(x int) {
		x1, _, _ := lay.split(x)
		row := p.Rows[x]
		for j := range row {
			row[j] = zero
		}
		for _, u := range groups[x1] { // senders: the live u with u1 = x1
			if !alive(u) {
				continue
			}
			_, _, u3 := lay.split(u)
			piece := in[x][u]
			for i, col := range groups[u3] {
				if col < n {
					row[col] = sr.Add(row[col], piece[i])
				}
			}
		}
	})
	ts.putViews(in)
	ts.putViews(vout)
	ts.putPay(pmsgs)
	return p, nil
}

// DistanceProduct3D computes the min-plus product P = S ⋆ T together with a
// witness matrix Q: Q[u][v] = w certifies P[u][v] = S[u][w] + T[w][v]
// (ring.NoWitness where P is infinite). This is the "easily modified"
// semiring algorithm of §3.3: T's entries are tagged with their row index
// and the tags ride through the min-plus algebra.
func DistanceProduct3D(net *clique.Network, s, t *RowMat[int64]) (p, q *RowMat[int64], err error) {
	return DistanceProduct3DScratch(net, nil, s, t)
}

// DistanceProduct3DScratch is DistanceProduct3D with caller-owned scratch
// pools; the witness-tagged operand conversions borrow pooled row matrices
// as well, so iterated squaring (APSP) allocates only its results.
func DistanceProduct3DScratch(net *clique.Network, sc *Scratch, s, t *RowMat[int64]) (p, q *RowMat[int64], err error) {
	n := net.N()
	if err := s.validate(n); err != nil {
		return nil, nil, err
	}
	if err := t.validate(n); err != nil {
		return nil, nil, err
	}
	if sc == nil {
		sc = NewScratch()
	}
	ts := typedFrom[ring.ValW](sc)
	sw := ts.getMat(n)
	tw := ts.getMat(n)
	defer ts.putMat(sw)
	defer ts.putMat(tw)
	// The witness-tagging and untagging conversions are free node-local
	// work; run them on the worker pool like every other per-node step.
	net.ForEach(func(v int) {
		srow, trow := sw.Rows[v], tw.Rows[v]
		for j := 0; j < n; j++ {
			srow[j] = ring.ValW{V: s.Rows[v][j], W: ring.NoWitness}
			tv := t.Rows[v][j]
			if ring.IsInf(tv) {
				trow[j] = ring.ValW{V: ring.Inf, W: ring.NoWitness}
			} else {
				trow[j] = ring.ValW{V: tv, W: int64(v)}
			}
		}
	})
	pw, err := Semiring3DScratch[ring.ValW](net, sc, ring.MinPlusW{}, ring.MinPlusW{}, sw, tw)
	if err != nil {
		return nil, nil, err
	}
	p = NewRowMat[int64](n)
	q = NewRowMat[int64](n)
	net.ForEach(func(v int) {
		prow, qrow, pwrow := p.Rows[v], q.Rows[v], pw.Rows[v]
		for j := 0; j < n; j++ {
			e := pwrow[j]
			if ring.IsInf(e.V) {
				prow[j] = ring.Inf
				qrow[j] = ring.NoWitness
			} else {
				prow[j] = e.V
				qrow[j] = e.W
			}
		}
	})
	return p, q, nil
}
