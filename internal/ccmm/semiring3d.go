package ccmm

import (
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/matrix"
	"github.com/algebraic-clique/algclique/internal/ring"
)

// Semiring3D computes the distributed product P = S·T over an arbitrary
// semiring on an n-node clique for any n ≥ 1, following the 3D algorithm of
// §2.1. The index cube has side c = ⌈n^{1/3}⌉: the c³ virtual nodes each own
// one c²×c² product subcube, and real node v mod n simulates virtual node v
// (≤ ⌈c³/n⌉ ≤ 8 virtual nodes per real node). Rows and columns beyond n are
// padded with the semiring zero, which annihilates under multiplication, so
// the product restricted to the real n×n block is unchanged — and all-zero
// rows are never transmitted. Each real node sends and receives O(n^{4/3})
// words, which the routing layer delivers in O(n^{1/3}) rounds; on a perfect
// cube the virtual and real cliques coincide and the algorithm is exactly
// the paper's.
//
// Virtual node v's subcube is v1∗∗ × v2∗∗ × v3∗∗ in the paper's notation;
// the paper's step-1 description contains a small index slip for T
// (receiving rows ∗v2∗ would not match the S columns v2∗∗), so T rows here
// are grouped by their *first* digit: row w of T is needed by exactly the
// nodes u with u2 = w1, keeping both middle-index sets equal to v2∗∗.
func Semiring3D[T any](net *clique.Network, sr ring.Semiring[T], codec ring.Codec[T], s, t *RowMat[T]) (*RowMat[T], error) {
	n := net.N()
	if err := s.validate(n); err != nil {
		return nil, err
	}
	if err := t.validate(n); err != nil {
		return nil, err
	}
	lay := newCubeLayout(n)
	c, vn := lay.c, lay.vn
	c2 := c * c
	width := codec.Width()
	zero := sr.Zero()
	live := lay.liveDigits()
	// alive reports whether virtual node u's subcube touches real data;
	// dead subcubes receive nothing and compute nothing (see liveDigits).
	alive := func(u int) bool {
		u1, u2, u3 := lay.split(u)
		return u1 < live && u2 < live && u3 < live
	}

	// Precompute the c index groups x∗∗ (shared, read-only).
	groups := make([][]int, c)
	for x := 0; x < c; x++ {
		groups[x] = lay.firstDigitSet(x)
	}

	// Step 1: distribute entries. Virtual node v < n sends S[v, u2∗∗] to
	// each u ∈ v1∗∗ and T[v, u3∗∗] to each u with u2 = v1; column indices
	// ≥ n read as the semiring zero. Virtual nodes v ≥ n own all-zero
	// padding rows, which every node can synthesise locally, so they send
	// nothing. When both an S and a T part go to the same recipient the S
	// part precedes the T part.
	net.Phase("mm3d/distribute")
	vmsgs := emptyMsgs(vn)
	net.ForEach(func(v int) {
		// The sending virtual nodes are exactly v < n, each hosted by
		// real node v itself: every real node ships its own row slices.
		v1, _, _ := lay.split(v)
		srow, trow := s.Rows[v], t.Rows[v]
		buf := make([]T, c2)
		for _, u := range groups[v1] {
			if !alive(u) {
				continue
			}
			_, u2, _ := lay.split(u)
			for i, col := range groups[u2] {
				if col < n {
					buf[i] = srow[col]
				} else {
					buf[i] = zero
				}
			}
			vmsgs[v][u] = appendEncoded(codec, vmsgs[v][u], buf)
		}
		// Nodes with u2 = v1: iterate u1 and u3 over the live digits only
		// (v1 < live already, since v < n) — dead subcubes get no T rows.
		for u1 := 0; u1 < live; u1++ {
			for u3 := 0; u3 < live; u3++ {
				u := lay.join(u1, v1, u3)
				for i, col := range groups[u3] {
					if col < n {
						buf[i] = trow[col]
					} else {
						buf[i] = zero
					}
				}
				vmsgs[v][u] = appendEncoded(codec, vmsgs[v][u], buf)
			}
		}
	})
	in := lay.exchangeVirtual(net, vmsgs)

	// Step 2: local multiplication of the received c²×c² blocks. Rows from
	// padding senders (v ≥ n) are the semiring zero.
	net.Phase("mm3d/multiply")
	prod := make([]*matrix.Dense[T], vn)
	zeroRow := make([]T, c2)
	for i := range zeroRow {
		zeroRow[i] = zero
	}
	net.ForEach(func(r int) {
		for u := r; u < vn; u += n {
			if !alive(u) {
				continue
			}
			u1, u2, _ := lay.split(u)
			sblk := matrix.New[T](c2, c2)
			tblk := matrix.New[T](c2, c2)
			for pos, v := range groups[u1] { // S row senders: v1 = u1
				if v >= n {
					sblk.SetRow(pos, zeroRow)
					continue
				}
				ws := in[u][v]
				sblk.SetRow(pos, decodeVec(codec, ws[:c2*width], c2))
			}
			for pos, v := range groups[u2] { // T row senders: v1 = u2
				if v >= n {
					tblk.SetRow(pos, zeroRow)
					continue
				}
				ws := in[u][v]
				if v1, _, _ := lay.split(v); v1 == u1 {
					ws = ws[c2*width:] // S part precedes on shared links
				}
				tblk.SetRow(pos, decodeVec(codec, ws[:c2*width], c2))
			}
			prod[u] = matrix.Mul(sr, sblk, tblk)
		}
	})

	// Step 3: distribute the partial products: virtual node u sends
	// P^{(u2)}[x, u3∗∗] to each real row owner x ∈ u1∗∗ with x < n
	// (padding rows of the output are discarded, so they never travel).
	net.Phase("mm3d/products")
	vmsgs = clearMsgs(vmsgs)
	net.ForEach(func(r int) {
		for u := r; u < vn; u += n {
			if !alive(u) {
				continue // prod[u] was never built
			}
			u1, _, _ := lay.split(u)
			for pos, x := range groups[u1] {
				if x < n {
					vmsgs[u][x] = encodeVec(codec, prod[u].Row(pos))
				}
			}
		}
	})
	in = lay.exchangeVirtual(net, vmsgs)

	// Step 4: assemble P[x, ∗] = Σ_w P^{(w)}[x, ∗]. Output row owners are
	// the virtual nodes x < n, each hosted by real node x itself.
	net.Phase("mm3d/assemble")
	p := NewRowMat[T](n)
	net.ForEach(func(x int) {
		x1, _, _ := lay.split(x)
		row := p.Rows[x]
		for j := range row {
			row[j] = zero
		}
		for _, u := range groups[x1] { // senders: the live u with u1 = x1
			if !alive(u) {
				continue
			}
			_, _, u3 := lay.split(u)
			piece := decodeVec(codec, in[x][u][:c2*width], c2)
			for i, col := range groups[u3] {
				if col < n {
					row[col] = sr.Add(row[col], piece[i])
				}
			}
		}
	})
	return p, nil
}

// DistanceProduct3D computes the min-plus product P = S ⋆ T together with a
// witness matrix Q: Q[u][v] = w certifies P[u][v] = S[u][w] + T[w][v]
// (ring.NoWitness where P is infinite). This is the "easily modified"
// semiring algorithm of §3.3: T's entries are tagged with their row index
// and the tags ride through the min-plus algebra.
func DistanceProduct3D(net *clique.Network, s, t *RowMat[int64]) (p, q *RowMat[int64], err error) {
	n := net.N()
	sw := &RowMat[ring.ValW]{Rows: make([][]ring.ValW, n)}
	tw := &RowMat[ring.ValW]{Rows: make([][]ring.ValW, n)}
	if err := s.validate(n); err != nil {
		return nil, nil, err
	}
	if err := t.validate(n); err != nil {
		return nil, nil, err
	}
	for v := 0; v < n; v++ {
		srow := make([]ring.ValW, n)
		trow := make([]ring.ValW, n)
		for j := 0; j < n; j++ {
			srow[j] = ring.ValW{V: s.Rows[v][j], W: ring.NoWitness}
			tv := t.Rows[v][j]
			if ring.IsInf(tv) {
				trow[j] = ring.ValW{V: ring.Inf, W: ring.NoWitness}
			} else {
				trow[j] = ring.ValW{V: tv, W: int64(v)}
			}
		}
		sw.Rows[v] = srow
		tw.Rows[v] = trow
	}
	pw, err := Semiring3D[ring.ValW](net, ring.MinPlusW{}, ring.MinPlusW{}, sw, tw)
	if err != nil {
		return nil, nil, err
	}
	p = NewRowMat[int64](n)
	q = NewRowMat[int64](n)
	for v := 0; v < n; v++ {
		for j := 0; j < n; j++ {
			e := pw.Rows[v][j]
			if ring.IsInf(e.V) {
				p.Rows[v][j] = ring.Inf
				q.Rows[v][j] = ring.NoWitness
			} else {
				p.Rows[v][j] = e.V
				q.Rows[v][j] = e.W
			}
		}
	}
	return p, q, nil
}
