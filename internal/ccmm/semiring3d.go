package ccmm

import (
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/matrix"
	"github.com/algebraic-clique/algclique/internal/ring"
	"github.com/algebraic-clique/algclique/internal/routing"
)

// Semiring3D computes the distributed product P = S·T over an arbitrary
// semiring on an n-node clique with n = c³ a perfect cube, following the 3D
// algorithm of §2.1: the n³ elementary products are tiled into n subcubes of
// side n^{2/3}, one per node. Each node sends and receives O(n^{4/3}) words,
// which the routing layer delivers in O(n^{1/3}) rounds.
//
// Node v's subcube is v1∗∗ × v2∗∗ × v3∗∗ in the paper's notation; the
// paper's step-1 description contains a small index slip for T (receiving
// rows ∗v2∗ would not match the S columns v2∗∗), so T rows here are grouped
// by their *first* digit: row w of T is needed by exactly the nodes u with
// u2 = w1, keeping both middle-index sets equal to v2∗∗.
func Semiring3D[T any](net *clique.Network, sr ring.Semiring[T], codec ring.Codec[T], s, t *RowMat[T]) (*RowMat[T], error) {
	n := net.N()
	if err := s.validate(n); err != nil {
		return nil, err
	}
	if err := t.validate(n); err != nil {
		return nil, err
	}
	lay, err := newCubeLayout(n)
	if err != nil {
		return nil, err
	}
	c := lay.c
	c2 := c * c
	width := codec.Width()

	// Precompute the c index groups x∗∗ (shared, read-only).
	groups := make([][]int, c)
	for x := 0; x < c; x++ {
		groups[x] = lay.firstDigitSet(x)
	}

	// Step 1: distribute entries. Node v sends S[v, u2∗∗] to each
	// u ∈ v1∗∗ and T[v, u3∗∗] to each u with u2 = v1. When both apply to
	// the same recipient the S part precedes the T part on the link.
	net.Phase("mm3d/distribute")
	msgs := emptyMsgs(n)
	net.ForEach(func(v int) {
		v1, _, _ := lay.split(v)
		srow, trow := s.Rows[v], t.Rows[v]
		buf := make([]T, c2)
		for _, u := range groups[v1] {
			_, u2, _ := lay.split(u)
			for i, col := range groups[u2] {
				buf[i] = srow[col]
			}
			msgs[v][u] = appendEncoded(codec, msgs[v][u], buf)
		}
		// Nodes with u2 = v1: iterate u1, u3 freely.
		for u1 := 0; u1 < c; u1++ {
			for u3 := 0; u3 < c; u3++ {
				u := lay.join(u1, v1, u3)
				for i, col := range groups[u3] {
					buf[i] = trow[col]
				}
				msgs[v][u] = appendEncoded(codec, msgs[v][u], buf)
			}
		}
	})
	in := routing.Exchange(net, routing.Auto, msgs)

	// Step 2: local multiplication of the received c²×c² blocks.
	net.Phase("mm3d/multiply")
	prod := make([]*matrix.Dense[T], n)
	net.ForEach(func(u int) {
		u1, u2, _ := lay.split(u)
		sblk := matrix.New[T](c2, c2)
		tblk := matrix.New[T](c2, c2)
		for pos, v := range groups[u1] { // S row senders: v1 = u1
			ws := in[u][v]
			sblk.SetRow(pos, decodeVec(codec, ws[:c2*width], c2))
		}
		for pos, v := range groups[u2] { // T row senders: v1 = u2
			ws := in[u][v]
			if v1, _, _ := lay.split(v); v1 == u1 {
				ws = ws[c2*width:] // S part precedes on shared links
			}
			tblk.SetRow(pos, decodeVec(codec, ws[:c2*width], c2))
		}
		prod[u] = matrix.Mul(sr, sblk, tblk)
	})

	// Step 3: distribute the partial products: node u sends
	// P^{(u2)}[x, u3∗∗] to each row owner x ∈ u1∗∗.
	net.Phase("mm3d/products")
	msgs = emptyMsgs(n)
	net.ForEach(func(u int) {
		u1, _, _ := lay.split(u)
		for pos, x := range groups[u1] {
			msgs[u][x] = encodeVec(codec, prod[u].Row(pos))
		}
	})
	in = routing.Exchange(net, routing.Auto, msgs)

	// Step 4: assemble P[x, ∗] = Σ_w P^{(w)}[x, ∗].
	net.Phase("mm3d/assemble")
	p := NewRowMat[T](n)
	net.ForEach(func(x int) {
		x1, _, _ := lay.split(x)
		row := p.Rows[x]
		for j := range row {
			row[j] = sr.Zero()
		}
		for _, u := range groups[x1] { // senders: u1 = x1
			_, _, u3 := lay.split(u)
			piece := decodeVec(codec, in[x][u][:c2*width], c2)
			for i, col := range groups[u3] {
				row[col] = sr.Add(row[col], piece[i])
			}
		}
	})
	return p, nil
}

// DistanceProduct3D computes the min-plus product P = S ⋆ T together with a
// witness matrix Q: Q[u][v] = w certifies P[u][v] = S[u][w] + T[w][v]
// (ring.NoWitness where P is infinite). This is the "easily modified"
// semiring algorithm of §3.3: T's entries are tagged with their row index
// and the tags ride through the min-plus algebra.
func DistanceProduct3D(net *clique.Network, s, t *RowMat[int64]) (p, q *RowMat[int64], err error) {
	n := net.N()
	sw := &RowMat[ring.ValW]{Rows: make([][]ring.ValW, n)}
	tw := &RowMat[ring.ValW]{Rows: make([][]ring.ValW, n)}
	if err := s.validate(n); err != nil {
		return nil, nil, err
	}
	if err := t.validate(n); err != nil {
		return nil, nil, err
	}
	for v := 0; v < n; v++ {
		srow := make([]ring.ValW, n)
		trow := make([]ring.ValW, n)
		for j := 0; j < n; j++ {
			srow[j] = ring.ValW{V: s.Rows[v][j], W: ring.NoWitness}
			tv := t.Rows[v][j]
			if ring.IsInf(tv) {
				trow[j] = ring.ValW{V: ring.Inf, W: ring.NoWitness}
			} else {
				trow[j] = ring.ValW{V: tv, W: int64(v)}
			}
		}
		sw.Rows[v] = srow
		tw.Rows[v] = trow
	}
	pw, err := Semiring3D[ring.ValW](net, ring.MinPlusW{}, ring.MinPlusW{}, sw, tw)
	if err != nil {
		return nil, nil, err
	}
	p = NewRowMat[int64](n)
	q = NewRowMat[int64](n)
	for v := 0; v < n; v++ {
		for j := 0; j < n; j++ {
			e := pw.Rows[v][j]
			if ring.IsInf(e.V) {
				p.Rows[v][j] = ring.Inf
				q.Rows[v][j] = ring.NoWitness
			} else {
				p.Rows[v][j] = e.V
				q.Rows[v][j] = e.W
			}
		}
	}
	return p, q, nil
}
