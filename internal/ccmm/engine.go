package ccmm

import (
	"fmt"

	"github.com/algebraic-clique/algclique/internal/bilinear"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/ring"
)

// Engine selects which distributed multiplication algorithm executes a
// product. The applications (§3 of the paper) are written against this
// abstraction so each can run over the fast bilinear algorithm when the
// clique size allows it and fall back otherwise.
type Engine int

const (
	// EngineAuto picks FastBilinear when a scheme fits the clique size,
	// then Semiring3D (which runs on any n via the padded cube layout)
	// for n ≥ 8, then NaiveGather for tiny cliques.
	EngineAuto Engine = iota
	// EngineFast forces the bilinear-scheme algorithm (§2.2).
	EngineFast
	// Engine3D forces the semiring 3D algorithm (§2.1).
	Engine3D
	// EngineNaive forces the learn-everything baseline.
	EngineNaive
	// EngineSparse forces the density-aware sparse tile engine (the §1.2
	// remark generalised; see sparse.go). It works over any semiring and
	// any n ≥ 8, but only on operands with Σ ca(y)·rb(y) < 2n²
	// (ErrTooDense otherwise). Under EngineAuto the planner routes
	// products through it dynamically when the one-round density census
	// predicts fewer rounds than the resolved dense engine.
	EngineSparse
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineFast:
		return "fast-bilinear"
	case Engine3D:
		return "semiring-3d"
	case EngineNaive:
		return "naive-gather"
	case EngineSparse:
		return "sparse"
	default:
		return fmt.Sprintf("engine(%d)", int(e))
	}
}

// Resolve maps EngineAuto to the best concrete engine for an n-node clique.
// ringAlgebra reports whether the product algebra is a ring (only rings may
// use the bilinear engine). Semiring3D handles every clique size via the
// padded cube layout, so the O(n)-round NaiveGather is chosen only for
// cliques too small (n < 8, other than the trivial cube n = 1) for the 3D
// multiplexing overhead to pay off.
//
// EngineSparse never comes out of a static resolution: its worth depends
// on the operands' density, which only the per-product census can see, so
// Auto plans keep a dense resolved engine here and route to the sparse
// engine dynamically (see Plan and census.go). A forced EngineSparse
// passes through like every forced engine.
func (e Engine) Resolve(n int, ringAlgebra bool) Engine {
	if e != EngineAuto {
		return e
	}
	if ringAlgebra {
		if _, err := bilinear.Pick(n); err == nil {
			return EngineFast
		}
	}
	if n >= 8 || n == 1 {
		return Engine3D
	}
	return EngineNaive
}

// MulRing multiplies two distributed matrices over a ring using the chosen
// engine (resolved through the memoised plan cache).
func MulRing[T any](net *clique.Network, e Engine, rg ring.Ring[T], codec ring.Codec[T], s, t *RowMat[T]) (*RowMat[T], error) {
	return MulRingPlanned[T](net, PlanFor(net.N(), e), rg, codec, s, t)
}

// MulRingWith is MulRing with caller-owned scratch pools — the form every
// iterated-product pipeline uses so repeated products share one working
// set.
func MulRingWith[T any](net *clique.Network, e Engine, sc *Scratch, rg ring.Ring[T], codec ring.Codec[T], s, t *RowMat[T]) (*RowMat[T], error) {
	return MulRingScratch[T](net, PlanFor(net.N(), e), sc, rg, codec, s, t)
}

// MulInt multiplies distributed int64 matrices over the integer ring.
func MulInt(net *clique.Network, e Engine, s, t *RowMat[int64]) (*RowMat[int64], error) {
	return MulIntWith(net, e, nil, s, t)
}

// MulIntWith is MulInt with caller-owned scratch pools.
func MulIntWith(net *clique.Network, e Engine, sc *Scratch, s, t *RowMat[int64]) (*RowMat[int64], error) {
	return PlanFor(net.N(), e).MulIntScratch(net, sc, s, t)
}

// MulBoolWith is MulBool with caller-owned scratch pools.
func MulBoolWith(net *clique.Network, e Engine, sc *Scratch, s, t *RowMat[int64]) (*RowMat[int64], error) {
	return PlanFor(net.N(), e).MulBoolScratch(net, sc, s, t)
}

// MulMinPlusWith is MulMinPlus with caller-owned scratch pools.
func MulMinPlusWith(net *clique.Network, e Engine, sc *Scratch, s, t *RowMat[int64]) (*RowMat[int64], error) {
	return PlanFor(net.N(), e).MulMinPlusScratch(net, sc, s, t)
}

// MulBool computes the Boolean matrix product. Over the bilinear engine the
// product is computed in the integer ring and collapsed entrywise to 0/1
// (the entries are walk counts ≤ n, and an entry is non-zero exactly when
// the Boolean product is true — the standard embedding the paper uses in
// §3.1). Semiring engines multiply over the Boolean semiring directly,
// shipped through the bit-packed transport (ring.PackedBool): 64 entries
// per word, cutting Boolean-product bandwidth and rounds ~64×.
// Inputs must be 0/1 matrices.
func MulBool(net *clique.Network, e Engine, s, t *RowMat[int64]) (*RowMat[int64], error) {
	return PlanFor(net.N(), e).MulBoolScratch(net, nil, s, t)
}

func mulBoolSemiring(net *clique.Network, e Engine, sc *Scratch, s, t *RowMat[int64]) (*RowMat[int64], error) {
	return mulBoolVia(net, sc, s, t, func(sc *Scratch, sb, tb *RowMat[bool]) (*RowMat[bool], error) {
		br := ring.Bool{}
		if e == Engine3D {
			return Semiring3DScratch[bool](net, sc, br, ring.PackedBool{}, sb, tb)
		}
		return NaiveGatherScratch[bool](net, sc, br, ring.PackedBool{}, sb, tb)
	})
}

// mulBoolSparse runs a Boolean product through the sparse tile engine: the
// 0/1 operands convert to the Boolean semiring and the tuple streams carry
// bit-packed values (ring.TupleCodec over ring.PackedBool).
func mulBoolSparse(net *clique.Network, sc *Scratch, s, t *RowMat[int64]) (*RowMat[int64], error) {
	return mulBoolVia(net, sc, s, t, func(sc *Scratch, sb, tb *RowMat[bool]) (*RowMat[bool], error) {
		return SparseMulScratch[bool](net, sc, ring.Bool{}, ring.PackedBool{}, sb, tb)
	})
}

// mulBoolVia converts 0/1 integer operands to the Boolean semiring through
// pooled row matrices, runs the given Boolean product, and converts the
// result back.
func mulBoolVia(net *clique.Network, sc *Scratch, s, t *RowMat[int64], run func(sc *Scratch, sb, tb *RowMat[bool]) (*RowMat[bool], error)) (*RowMat[int64], error) {
	n := net.N()
	// Validate before converting: the conversion below writes through
	// pooled n×n buffers, which malformed operands must never reach.
	if err := s.validate(n); err != nil {
		return nil, err
	}
	if err := t.validate(n); err != nil {
		return nil, err
	}
	if sc == nil {
		sc = NewScratch()
	}
	ts := typedFrom[bool](sc)
	toBool := func(m *RowMat[int64]) *RowMat[bool] {
		out := ts.getMat(n)
		net.ForEach(func(v int) {
			b, row := out.Rows[v], m.Rows[v]
			for j, x := range row {
				b[j] = x != 0
			}
		})
		return out
	}
	sb, tb := toBool(s), toBool(t)
	defer ts.putMat(sb)
	defer ts.putMat(tb)
	p, err := run(sc, sb, tb)
	if err != nil {
		return nil, err
	}
	out := &RowMat[int64]{Rows: make([][]int64, len(p.Rows))}
	net.ForEach(func(v int) {
		row := p.Rows[v]
		ints := make([]int64, len(row))
		for j, b := range row {
			if b {
				ints[j] = 1
			}
		}
		out.Rows[v] = ints
	})
	return out, nil
}

// MulMinPlus computes the distance product over the (min, +) semiring.
// The bilinear engine does not apply (min-plus is not a ring); EngineAuto
// resolves to Semiring3D — O(n^{1/3}) rounds on any clique size n ≥ 8 —
// and to NaiveGather only on tiny cliques. For the ring-embedded fast
// distance product with bounded entries, see the distance package
// (Lemma 18).
func MulMinPlus(net *clique.Network, e Engine, s, t *RowMat[int64]) (*RowMat[int64], error) {
	return PlanFor(net.N(), e).MulMinPlusPlanned(net, s, t)
}
