package ccmm

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/ring"
)

// TestScratchTrimReleasesPools checks Trim drops every pooled structure a
// product accumulated — word pools, typed arms, link tallies — and that
// the scratch is fully usable (and correct) afterwards.
func TestScratchTrimReleasesPools(t *testing.T) {
	const n = 27
	net := clique.New(n)
	defer net.Close()
	sc := NewScratch()
	rng := rand.New(rand.NewPCG(7, n))
	s, u := randIntMat(rng, n, 50), randIntMat(rng, n, 50)
	r := ring.Int64{}
	first, err := Semiring3DScratch[int64](net, sc, r, r, s, u)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.typed) == 0 {
		t.Fatalf("sanity: product left no typed scratch state")
	}
	sc.Trim()
	if len(sc.payload) != 0 || len(sc.views) != 0 {
		t.Fatalf("Trim kept %d payload and %d view pool sizes", len(sc.payload), len(sc.views))
	}
	if sc.typed != nil || sc.offs != nil || sc.wloads != nil {
		t.Fatalf("Trim kept typed arms or link tallies")
	}
	net.Reset()
	again, err := Semiring3DScratch[int64](net, sc, r, r, s, u)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Rows, again.Rows) {
		t.Fatalf("product changed after Trim")
	}
}

// TestPayloadPoolCapsSpikes checks the typed payload pool releases entries
// that ballooned past the high-water capacity while keeping modest ones.
func TestPayloadPoolCapsSpikes(t *testing.T) {
	ts := &typedScratch[int64]{}
	m := ts.getPay(2)
	m[0][1] = make([]int64, entryRetainCap+1)
	m[1][0] = make([]int64, 16)
	ts.putPay(m)
	m2 := ts.getPay(2)
	if cap(m2[0][1]) != 0 {
		t.Fatalf("pool kept %d elements of spiked capacity, want 0", cap(m2[0][1]))
	}
	if cap(m2[1][0]) == 0 {
		t.Fatalf("pool dropped the modest buffer's capacity")
	}
}
