package ccmm

import "fmt"

// cubeLayout realises the §2.1 index scheme: node v on an n = c³ clique is
// the base-c three-digit tuple (v1, v2, v3).
type cubeLayout struct {
	c int // n^{1/3}
}

// newCubeLayout returns the layout for clique size n, or an error when n is
// not a perfect cube.
func newCubeLayout(n int) (cubeLayout, error) {
	c := icbrt(n)
	if c*c*c != n {
		return cubeLayout{}, fmt.Errorf("ccmm: clique size %d is not a perfect cube: %w", n, ErrSize)
	}
	return cubeLayout{c: c}, nil
}

func icbrt(n int) int {
	if n <= 0 {
		return 0
	}
	c := 0
	for (c+1)*(c+1)*(c+1) <= n {
		c++
	}
	return c
}

func (l cubeLayout) split(v int) (v1, v2, v3 int) {
	return v / (l.c * l.c), (v / l.c) % l.c, v % l.c
}

func (l cubeLayout) join(v1, v2, v3 int) int {
	return v1*l.c*l.c + v2*l.c + v3
}

// firstDigitSet returns x∗∗ = {v : v1 = x}, in increasing node order.
func (l cubeLayout) firstDigitSet(x int) []int {
	out := make([]int, 0, l.c*l.c)
	for v2 := 0; v2 < l.c; v2++ {
		for v3 := 0; v3 < l.c; v3++ {
			out = append(out, l.join(x, v2, v3))
		}
	}
	return out
}

// gridLayout realises the §2.2 two-level index scheme on an n = q² clique
// with block dimension d | q: node v is the mixed-radix tuple (v1, v2, v3)
// with v1 ∈ [d], v2 ∈ [q], v3 ∈ [q/d], and carries the secondary label
// ℓ(v) = (x1, x2) ∈ [q]² with v = x1·q + x2.
type gridLayout struct {
	q  int // √n
	d  int // scheme block dimension
	qd int // q / d
}

func newGridLayout(n, d int) (gridLayout, error) {
	q := isqrt(n)
	if q*q != n {
		return gridLayout{}, fmt.Errorf("ccmm: clique size %d is not a perfect square: %w", n, ErrSize)
	}
	if d < 1 || q%d != 0 {
		return gridLayout{}, fmt.Errorf("ccmm: block dimension %d does not divide √n = %d: %w", d, q, ErrSize)
	}
	return gridLayout{q: q, d: d, qd: q / d}, nil
}

func isqrt(n int) int {
	if n <= 0 {
		return 0
	}
	q := 0
	for (q+1)*(q+1) <= n {
		q++
	}
	return q
}

func (l gridLayout) split(v int) (v1, v2, v3 int) {
	return v / (l.q * l.qd), (v / l.qd) % l.q, v % l.qd
}

func (l gridLayout) join(v1, v2, v3 int) int {
	return v1*l.q*l.qd + v2*l.qd + v3
}

// label returns ℓ(v) = (x1, x2).
func (l gridLayout) label(v int) (x1, x2 int) {
	return v / l.q, v % l.q
}

// nodeAt returns the node with label (x1, x2).
func (l gridLayout) nodeAt(x1, x2 int) int {
	return x1*l.q + x2
}

// groupSet returns ∗x∗ = {v : v2 = x} ordered by (v1, v3); this ordering is
// the block-row order used for the assembled q×q submatrices: index
// i·(q/d) + u3 inside a block corresponds to global index join(i, x, u3).
func (l gridLayout) groupSet(x int) []int {
	out := make([]int, 0, l.q)
	for v1 := 0; v1 < l.d; v1++ {
		for v3 := 0; v3 < l.qd; v3++ {
			out = append(out, l.join(v1, x, v3))
		}
	}
	return out
}

// posInGroup returns the position of v within groupSet(v2): v1·(q/d) + v3.
func (l gridLayout) posInGroup(v int) int {
	v1, _, v3 := l.split(v)
	return v1*l.qd + v3
}
