package ccmm

import "fmt"

// cubeLayout realises the §2.1 index scheme on an arbitrary n-node clique
// by padding to the next cube: with c = ⌈n^{1/3}⌉ the layout addresses
// vn = c³ ≥ n virtual nodes, each the base-c three-digit tuple (v1, v2, v3),
// and real node v mod n simulates virtual node v (≤ ⌈c³/n⌉ ≤ 8 virtual
// nodes per real node, so the asymptotic round bound is unchanged). On a
// perfect cube the layout is the paper's: vn = n and every node simulates
// exactly itself.
type cubeLayout struct {
	c  int // ⌈n^{1/3}⌉, the cube side
	n  int // real clique size
	vn int // c³ virtual nodes
}

// newCubeLayout returns the (possibly padded) layout for clique size n ≥ 1.
func newCubeLayout(n int) cubeLayout {
	if n < 1 {
		panic(fmt.Sprintf("ccmm: clique size %d < 1", n))
	}
	c := CbrtCeil(n)
	return cubeLayout{c: c, n: n, vn: c * c * c}
}

// CbrtCeil returns ⌈n^{1/3}⌉ for n ≥ 1 — the side of the smallest cube
// holding n. It is the one cube-root helper shared by the cube layout, the
// combinatorial baselines, and the public padding logic.
func CbrtCeil(n int) int {
	c := 1
	for c*c*c < n {
		c++
	}
	return c
}

// real returns the real node simulating virtual node v. Virtual nodes
// v < n are simulated by themselves, so matrix rows never move: row v of
// the input lives at real node v, which is exactly virtual node v's host.
func (l cubeLayout) real(v int) int { return v % l.n }

// liveDigits returns the number of digit values d whose group d∗∗ contains
// a real matrix index (< n). All three digits of a subcube owner (u1, u2,
// u3) select first-digit groups of matrix indices — output rows, middle
// indices, and output columns respectively — so a subcube carries real
// data only when every digit is below this bound: a dead u1 means all its
// output rows are padding, a dead u2 means the S columns/T rows are all
// zero (the block product is the zero matrix), and a dead u3 means every
// output column is discarded. Dead subcubes are neither fed nor computed.
func (l cubeLayout) liveDigits() int {
	c2 := l.c * l.c
	return (l.n + c2 - 1) / c2
}

func (l cubeLayout) split(v int) (v1, v2, v3 int) {
	return v / (l.c * l.c), (v / l.c) % l.c, v % l.c
}

func (l cubeLayout) join(v1, v2, v3 int) int {
	return v1*l.c*l.c + v2*l.c + v3
}

// firstDigitSet returns x∗∗ = {v : v1 = x}, in increasing node order.
func (l cubeLayout) firstDigitSet(x int) []int {
	out := make([]int, 0, l.c*l.c)
	for v2 := 0; v2 < l.c; v2++ {
		for v3 := 0; v3 < l.c; v3++ {
			out = append(out, l.join(x, v2, v3))
		}
	}
	return out
}

// gridLayout realises the §2.2 two-level index scheme on an n = q² clique
// with block dimension d | q: node v is the mixed-radix tuple (v1, v2, v3)
// with v1 ∈ [d], v2 ∈ [q], v3 ∈ [q/d], and carries the secondary label
// ℓ(v) = (x1, x2) ∈ [q]² with v = x1·q + x2.
type gridLayout struct {
	q  int // √n
	d  int // scheme block dimension
	qd int // q / d
}

func newGridLayout(n, d int) (gridLayout, error) {
	q := isqrt(n)
	if q*q != n {
		return gridLayout{}, fmt.Errorf("ccmm: clique size %d is not a perfect square: %w", n, ErrSize)
	}
	if d < 1 || q%d != 0 {
		return gridLayout{}, fmt.Errorf("ccmm: block dimension %d does not divide √n = %d: %w", d, q, ErrSize)
	}
	return gridLayout{q: q, d: d, qd: q / d}, nil
}

func isqrt(n int) int {
	if n <= 0 {
		return 0
	}
	q := 0
	for (q+1)*(q+1) <= n {
		q++
	}
	return q
}

func (l gridLayout) split(v int) (v1, v2, v3 int) {
	return v / (l.q * l.qd), (v / l.qd) % l.q, v % l.qd
}

func (l gridLayout) join(v1, v2, v3 int) int {
	return v1*l.q*l.qd + v2*l.qd + v3
}

// label returns ℓ(v) = (x1, x2).
func (l gridLayout) label(v int) (x1, x2 int) {
	return v / l.q, v % l.q
}

// nodeAt returns the node with label (x1, x2).
func (l gridLayout) nodeAt(x1, x2 int) int {
	return x1*l.q + x2
}

// groupSet returns ∗x∗ = {v : v2 = x} ordered by (v1, v3); this ordering is
// the block-row order used for the assembled q×q submatrices: index
// i·(q/d) + u3 inside a block corresponds to global index join(i, x, u3).
func (l gridLayout) groupSet(x int) []int {
	out := make([]int, 0, l.q)
	for v1 := 0; v1 < l.d; v1++ {
		for v3 := 0; v3 < l.qd; v3++ {
			out = append(out, l.join(v1, x, v3))
		}
	}
	return out
}

// posInGroup returns the position of v within groupSet(v2): v1·(q/d) + v3.
func (l gridLayout) posInGroup(v int) int {
	v1, _, v3 := l.split(v)
	return v1*l.qd + v3
}
