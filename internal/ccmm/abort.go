package ccmm

import "github.com/algebraic-clique/algclique/internal/clique"

// The simulator aborts a run by panicking from charge — a round budget
// tripping, a context cancelling, a crashed node sending — because the
// abort condition surfaces deep inside an engine's schedule, under ForEach
// fan-outs, where no error return path exists. That panic is an internal
// control-flow mechanism, not an API: every exported product entry point
// in this package converts it to a typed error return with catchAbort, so
// callers (and the session layer above) see *clique.RoundLimitError,
// *clique.CanceledError, or *clique.FaultError as ordinary errors that
// errors.As can match. Anything else recovered is a genuine bug and is
// re-panicked unchanged.

// catchAbort converts a controlled simulator abort unwinding the deferred
// function into a typed error assignment; use as
//
//	defer catchAbort(&err)
//
// on entry points with a named error result.
func catchAbort(err *error) {
	r := recover()
	if r == nil {
		return
	}
	e, ok := clique.AsAbort(r)
	if !ok {
		panic(r)
	}
	*err = e
}
