// Package ccmm implements the paper's congested-clique matrix
// multiplication algorithms (Theorem 1):
//
//   - Semiring3D: the "3D" algorithm — O(n^{1/3}) rounds over any semiring
//     and any clique size via the padded cube layout (§2.1), with a
//     witness-producing variant for distance products.
//   - FastBilinear: the bilinear-scheme simulation — O(n^{1-2/σ}) rounds
//     over rings for a scheme with O(n^σ) multiplications (§2.2, Lemma 10).
//   - NaiveGather: the trivial O(n)-round baseline (every node learns the
//     whole right operand).
//
// Matrices are distributed one row per node (RowMat); this is the paper's
// input/output convention.
package ccmm

import (
	"errors"
	"fmt"
	"sync/atomic"

	"github.com/algebraic-clique/algclique/internal/matrix"
)

// ErrSize reports an input whose dimensions are incompatible with the
// requested algorithm on the given clique.
var ErrSize = errors.New("incompatible size for congested-clique matrix multiplication")

// denseAllocs counts every NewRowMat call process-wide. Dense row matrices
// are the one Θ(n²) object the engines materialise, so the counter is the
// instrumentation the CSR operand plane's memory gate rests on: a product
// that claims to have stayed CSR end-to-end must leave it unchanged
// (ccbench's csr experiment hard-fails otherwise).
var denseAllocs atomic.Int64

// DenseAllocs returns the number of dense row matrices allocated by this
// process so far (see NewRowMat).
func DenseAllocs() int64 { return denseAllocs.Load() }

// RowMat is an n×n matrix distributed over an n-node clique: node v owns
// Rows[v].
type RowMat[T any] struct {
	Rows [][]T
}

// NewRowMat returns a distributed matrix with n zero-value rows of length n.
func NewRowMat[T any](n int) *RowMat[T] {
	denseAllocs.Add(1)
	rows := make([][]T, n)
	for i := range rows {
		rows[i] = make([]T, n)
	}
	return &RowMat[T]{Rows: rows}
}

// Distribute splits a square dense matrix into per-node rows (copied).
func Distribute[T any](m *matrix.Dense[T]) *RowMat[T] {
	if m.Rows() != m.Cols() {
		panic(fmt.Sprintf("ccmm: Distribute wants a square matrix, got %d×%d", m.Rows(), m.Cols()))
	}
	n := m.Rows()
	out := &RowMat[T]{Rows: make([][]T, n)}
	for v := 0; v < n; v++ {
		row := make([]T, n)
		copy(row, m.Row(v))
		out.Rows[v] = row
	}
	return out
}

// Collect assembles the distributed rows into a dense matrix (copied).
func (m *RowMat[T]) Collect() *matrix.Dense[T] {
	return matrix.FromRows(m.Rows)
}

// N returns the matrix dimension (= clique size).
func (m *RowMat[T]) N() int { return len(m.Rows) }

func (m *RowMat[T]) validate(n int) error {
	if len(m.Rows) != n {
		return fmt.Errorf("ccmm: matrix has %d rows on an %d-node clique: %w", len(m.Rows), n, ErrSize)
	}
	for v, r := range m.Rows {
		if len(r) != n {
			return fmt.Errorf("ccmm: row %d has %d entries, want %d: %w", v, len(r), n, ErrSize)
		}
	}
	return nil
}
