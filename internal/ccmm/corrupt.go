package ccmm

import (
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/ring"
)

// PayloadCorrupters are the fault injector's direct-plane corrupters for
// every payload type the engines ship by reference (see
// clique.PayloadCorrupter): dense rows of algebra elements, packed word
// chunks, and the sparse engine's tuple streams. The simulator stays
// agnostic of payload types; the layer that boxes them registers how to
// perturb them. Each corrupter flips bits in (or toggles) exactly one
// element, chosen by the injector's draw, and only Val halves of tuples
// are touched — a garbled value models a bit flip in transit, while a
// garbled index would mostly model a different bug (misrouted memory) and
// routinely escalate to out-of-range panics instead of wrong data.
var PayloadCorrupters = []clique.PayloadCorrupter{
	corruptInt64Row,
	corruptBoolRow,
	corruptWordRow,
	corruptValWRow,
	corruptTupleInt64Row,
	corruptTupleBoolRow,
}

func corruptInt64Row(p clique.Payload, h uint64) bool {
	s, ok := p.(*[]int64)
	if !ok || len(*s) == 0 {
		return false
	}
	(*s)[h%uint64(len(*s))] ^= int64(1) << ((h >> 32) & 63)
	return true
}

func corruptBoolRow(p clique.Payload, h uint64) bool {
	s, ok := p.(*[]bool)
	if !ok || len(*s) == 0 {
		return false
	}
	i := h % uint64(len(*s))
	(*s)[i] = !(*s)[i]
	return true
}

func corruptWordRow(p clique.Payload, h uint64) bool {
	s, ok := p.(*[]clique.Word)
	if !ok || len(*s) == 0 {
		return false
	}
	(*s)[h%uint64(len(*s))] ^= 1 << ((h >> 32) & 63)
	return true
}

func corruptValWRow(p clique.Payload, h uint64) bool {
	s, ok := p.(*[]ring.ValW)
	if !ok || len(*s) == 0 {
		return false
	}
	(*s)[h%uint64(len(*s))].V ^= int64(1) << ((h >> 32) & 63)
	return true
}

func corruptTupleInt64Row(p clique.Payload, h uint64) bool {
	s, ok := p.(*[]ring.Tuple[int64])
	if !ok || len(*s) == 0 {
		return false
	}
	(*s)[h%uint64(len(*s))].Val ^= int64(1) << ((h >> 32) & 63)
	return true
}

func corruptTupleBoolRow(p clique.Payload, h uint64) bool {
	s, ok := p.(*[]ring.Tuple[bool])
	if !ok || len(*s) == 0 {
		return false
	}
	i := h % uint64(len(*s))
	(*s)[i].Val = !(*s)[i].Val
	return true
}
