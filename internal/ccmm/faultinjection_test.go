package ccmm_test

import (
	"errors"
	"math/rand/v2"
	"testing"

	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/ring"
)

// TestRoundBudgetAbortsRunawayAlgorithm injects a round budget below what
// the 3D algorithm needs and checks the typed abort surfaces as an
// ordinary error return — the abort still travels as a panic inside the
// engine's schedule, but the entry point converts it, so callers never
// need a recover dance.
func TestRoundBudgetAbortsRunawayAlgorithm(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	r := ring.Int64{}
	n := 27
	a, b := randIntMat(rng, n, 10), randIntMat(rng, n, 10)
	net := clique.New(n, clique.WithRoundLimit(5)) // 3D needs ~20 here

	_, err := ccmm.Semiring3D[int64](net, r, r, ccmm.Distribute(a), ccmm.Distribute(b))
	if err == nil {
		t.Fatal("expected a round-limit error")
	}
	var lim *clique.RoundLimitError
	if !errors.As(err, &lim) {
		t.Fatalf("err = %v (%T), want *RoundLimitError", err, err)
	}
	if lim.Limit != 5 || lim.Rounds <= 5 {
		t.Errorf("unexpected limit error: %+v", lim)
	}
}

// TestRoundBudgetPermitsCompliantAlgorithm pins the complement: a generous
// budget lets the same computation finish.
func TestRoundBudgetPermitsCompliantAlgorithm(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	r := ring.Int64{}
	n := 27
	a, b := randIntMat(rng, n, 10), randIntMat(rng, n, 10)
	net := clique.New(n, clique.WithRoundLimit(500))
	if _, err := ccmm.Semiring3D[int64](net, r, r, ccmm.Distribute(a), ccmm.Distribute(b)); err != nil {
		t.Fatal(err)
	}
}
