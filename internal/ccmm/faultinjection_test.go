package ccmm_test

import (
	"errors"
	"math/rand/v2"
	"testing"

	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/ring"
)

// TestRoundBudgetAbortsRunawayAlgorithm injects a round budget below what
// the 3D algorithm needs and checks the typed abort surfaces mid-flight —
// the mechanism tests use to catch complexity regressions.
func TestRoundBudgetAbortsRunawayAlgorithm(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	r := ring.Int64{}
	n := 27
	a, b := randIntMat(rng, n, 10), randIntMat(rng, n, 10)
	net := clique.New(n, clique.WithRoundLimit(5)) // 3D needs ~20 here

	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("expected round-limit panic")
		}
		var lim *clique.RoundLimitError
		err, ok := rec.(error)
		if !ok || !errors.As(err, &lim) {
			t.Fatalf("panic value %v (%T), want *RoundLimitError", rec, rec)
		}
		if lim.Limit != 5 || lim.Rounds <= 5 {
			t.Errorf("unexpected limit error: %+v", lim)
		}
	}()
	_, _ = ccmm.Semiring3D[int64](net, r, r, ccmm.Distribute(a), ccmm.Distribute(b))
}

// TestRoundBudgetPermitsCompliantAlgorithm pins the complement: a generous
// budget lets the same computation finish.
func TestRoundBudgetPermitsCompliantAlgorithm(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	r := ring.Int64{}
	n := 27
	a, b := randIntMat(rng, n, 10), randIntMat(rng, n, 10)
	net := clique.New(n, clique.WithRoundLimit(500))
	if _, err := ccmm.Semiring3D[int64](net, r, r, ccmm.Distribute(a), ccmm.Distribute(b)); err != nil {
		t.Fatal(err)
	}
}
