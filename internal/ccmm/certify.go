package ccmm

import (
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/ring"
)

// This file is the detection half of the fault plane: cheap distributed
// checks that a computed product C really equals A·B, run on the same
// clique (and charged to the same ledger) as the product itself.
//
// Two regimes, because the algebra decides what a cheap check can prove:
//
//   - Rings (integer, Z_p): Freivalds' certificate. Each probe draws a
//     shared pseudorandom x ∈ {0,1}ⁿ from the seed, computes y = Bx with
//     one broadcast round, and every node v checks (A·y)_v = (C·x)_v
//     locally. If C ≠ A·B then the difference D = A·B − C has a nonzero
//     entry, and for x uniform over {0,1}ⁿ, Pr[Dx = 0] ≤ 1/2 — the
//     standard cancellation argument, which needs subtraction (a ring
//     embedding into an integral domain). k independent probes push the
//     false-accept probability below 2⁻ᵏ at O(k) rounds total.
//
//   - Semirings (min-plus, Boolean): no subtraction, no cancellation — a
//     wrong entry can hide inside min or OR, so Freivalds proves nothing.
//     Instead each node deterministically re-derives s seed-chosen entries
//     of its own output row from first principles: node v picks s columns,
//     every node w ships B[w][j] for those columns (s·width words per
//     link, one flush), and v recomputes C[v][j] = ⊕_k A[v][k] ⊗ B[k][j].
//     This is a spot-check, not a certificate: it catches any corruption
//     touching a sampled entry, and s = n audits the entire row.
//
// Both checks end with a one-round verdict broadcast so every node (and
// the caller) agrees on pass/fail, and both convert simulator aborts —
// including faults injected into the certification traffic itself — into
// typed errors, so a fault storm during certification reads as a failed
// attempt, never a wrong verdict.

// certMix is the SplitMix64 finaliser (same mixer the fault injector
// uses), duplicated here to keep the derivation local and frozen: probe
// vectors and spot-check columns must be identical across processes for
// replayed chaos campaigns.
func certMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// certBit is bit j of the probe-th shared Freivalds vector: every node
// derives it locally from the shared seed, so the vector costs no
// communication.
func certBit(seed uint64, probe, j int) bool {
	h := certMix(seed ^ uint64(probe)*0x9e3779b97f4a7c15)
	return certMix(h^uint64(j))&1 == 1
}

// certCols returns the s distinct columns node v spot-checks, derived
// from the seed by a partial Fisher–Yates shuffle of [0, n).
func certCols(seed uint64, v, n, s int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	h := certMix(seed ^ 0xc2b2ae3d27d4eb4f ^ uint64(v))
	for i := 0; i < s; i++ {
		h = certMix(h)
		j := i + int(h%uint64(n-i))
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:s]
}

// CertifyFreivalds runs probes rounds of Freivalds' check on c = a·b over
// a ring, returning whether every probe accepted. A wrong product is
// accepted with probability at most 2^-probes (over the seed-derived probe
// vectors) when the ring embeds in an integral domain — which is why this
// check is reserved for genuine rings; semiring products go through
// CertifySpotCheck. Cost: codec-width rounds of broadcast plus one verdict
// round per probe. Simulator aborts (round budget, cancellation, faults
// injected into the certification traffic) surface as typed errors.
func CertifyFreivalds[T any](net *clique.Network, rg ring.Ring[T], cd ring.Codec[T], a, b, c *RowMat[T], probes int, seed uint64) (ok bool, err error) {
	defer catchAbort(&err)
	n := net.N()
	if err := a.validate(n); err != nil {
		return false, err
	}
	if err := b.validate(n); err != nil {
		return false, err
	}
	if err := c.validate(n); err != nil {
		return false, err
	}
	if probes <= 0 {
		probes = 1
	}
	w := cd.Width()
	enc := make([]clique.Word, n*w)
	vecs := make([][]clique.Word, n)
	for v := range vecs {
		vecs[v] = enc[v*w : (v+1)*w]
	}
	y := make([]T, n)
	bad := make([]clique.Word, n)
	for p := 0; p < probes; p++ {
		// y_v = (B·x)_v is local to node v, which owns row v of B.
		net.ForEach(func(v int) {
			acc := rg.Zero()
			for j, bv := range b.Rows[v] {
				if certBit(seed, p, j) {
					acc = rg.Add(acc, bv)
				}
			}
			cd.Encode(acc, vecs[v])
		})
		got := net.Broadcast(vecs)
		for v := 0; v < n; v++ {
			y[v] = cd.Decode(got[v])
		}
		// Node v owns rows v of A and C: both sides of the probe identity
		// (A·y)_v = (C·x)_v are local once y arrived.
		net.ForEach(func(v int) {
			lhs, rhs := rg.Zero(), rg.Zero()
			arow, crow := a.Rows[v], c.Rows[v]
			for j := 0; j < n; j++ {
				lhs = rg.Add(lhs, rg.Mul(arow[j], y[j]))
				if certBit(seed, p, j) {
					rhs = rg.Add(rhs, crow[j])
				}
			}
			if rg.Equal(lhs, rhs) {
				bad[v] = 0
			} else {
				bad[v] = 1
			}
		})
		for _, f := range net.BroadcastWord(bad) {
			if f != 0 {
				return false, nil
			}
		}
	}
	return true, nil
}

// CertifySpotCheck re-derives samples seed-chosen entries of every output
// row of c = a·b over a semiring and returns whether all of them match.
// Unlike Freivalds it needs no subtraction, so it is the check for
// min-plus and Boolean products; the price is coverage instead of a
// probabilistic certificate — a corruption is caught iff a sampled entry
// depends on it. samples is clamped to [1, n]; samples = n audits every
// entry of every row. Cost: samples·width rounds of point-to-point
// traffic in one flush, plus one verdict round.
func CertifySpotCheck[T any](net *clique.Network, sr ring.Semiring[T], cd ring.Codec[T], a, b, c *RowMat[T], samples int, seed uint64) (ok bool, err error) {
	defer catchAbort(&err)
	n := net.N()
	if err := a.validate(n); err != nil {
		return false, err
	}
	if err := b.validate(n); err != nil {
		return false, err
	}
	if err := c.validate(n); err != nil {
		return false, err
	}
	if samples <= 0 {
		samples = 1
	}
	if samples > n {
		samples = n
	}
	w := cd.Width()
	cols := make([][]int, n)
	for v := range cols {
		cols[v] = certCols(seed, v, n, samples)
	}
	// Column j of B is scattered one entry per node; every node ships its
	// entry of each column v asked for. The column choice is seed-derived,
	// so senders know it without a request round.
	enc := make([]clique.Word, w)
	for src := 0; src < n; src++ {
		for v := 0; v < n; v++ {
			if v == src {
				continue
			}
			for _, j := range cols[v] {
				cd.Encode(b.Rows[src][j], enc)
				net.SendVec(src, v, enc)
			}
		}
	}
	mail := net.Flush()
	bad := make([]clique.Word, n)
	net.ForEach(func(v int) {
		bad[v] = 0
		for i, j := range cols[v] {
			acc := sr.Zero()
			for k := 0; k < n; k++ {
				var bkj T
				if k == v {
					bkj = b.Rows[v][j]
				} else {
					vec := mail.From(v, k)
					if len(vec) < (i+1)*w {
						// A dropped delivery fails the check rather than
						// vouching for entries it cannot recompute.
						bad[v] = 1
						return
					}
					bkj = cd.Decode(vec[i*w : (i+1)*w])
				}
				acc = sr.Add(acc, sr.Mul(a.Rows[v][k], bkj))
			}
			if !sr.Equal(acc, c.Rows[v][j]) {
				bad[v] = 1
				return
			}
		}
	})
	for _, f := range net.BroadcastWord(bad) {
		if f != 0 {
			return false, nil
		}
	}
	return true, nil
}

// boolInt64 views the session layer's 0/1 int64 matrices as the Boolean
// semiring (any nonzero entry is true), so Boolean products can be
// spot-checked in their native representation.
type boolInt64 struct{}

func (boolInt64) Zero() int64 { return 0 }
func (boolInt64) One() int64  { return 1 }
func (boolInt64) Add(a, b int64) int64 {
	if a != 0 || b != 0 {
		return 1
	}
	return 0
}
func (boolInt64) Mul(a, b int64) int64 {
	if a != 0 && b != 0 {
		return 1
	}
	return 0
}
func (boolInt64) Equal(a, b int64) bool { return (a != 0) == (b != 0) }

// CertifyIntProduct is Freivalds' check for integer products — the
// session layer's MatMul results.
func CertifyIntProduct(net *clique.Network, a, b, c *RowMat[int64], probes int, seed uint64) (bool, error) {
	r := ring.Int64{}
	return CertifyFreivalds[int64](net, r, r, a, b, c, probes, seed)
}

// CertifyBoolProduct spot-checks a Boolean product in the session layer's
// 0/1 int64 representation (OR has no inverse, so Freivalds does not
// apply).
func CertifyBoolProduct(net *clique.Network, a, b, c *RowMat[int64], samples int, seed uint64) (bool, error) {
	return CertifySpotCheck[int64](net, boolInt64{}, ring.Int64{}, a, b, c, samples, seed)
}

// CertifyMinPlusProduct spot-checks a distance product (min has no
// inverse, so Freivalds does not apply).
func CertifyMinPlusProduct(net *clique.Network, a, b, c *RowMat[int64], samples int, seed uint64) (bool, error) {
	mp := ring.MinPlus{}
	return CertifySpotCheck[int64](net, mp, mp, a, b, c, samples, seed)
}
