package ccmm

import (
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/ring"
)

// encodeVec serialises vals into a fresh word vector using the codec.
func encodeVec[T any](codec ring.Codec[T], vals []T) []clique.Word {
	w := codec.Width()
	out := make([]clique.Word, len(vals)*w)
	for i, v := range vals {
		codec.Encode(v, out[i*w:(i+1)*w])
	}
	return out
}

// appendEncoded serialises vals onto dst and returns the extended slice.
func appendEncoded[T any](codec ring.Codec[T], dst []clique.Word, vals []T) []clique.Word {
	w := codec.Width()
	base := len(dst)
	dst = append(dst, make([]clique.Word, len(vals)*w)...)
	for i, v := range vals {
		codec.Encode(v, dst[base+i*w:base+(i+1)*w])
	}
	return dst
}

// decodeVec deserialises count elements from ws.
func decodeVec[T any](codec ring.Codec[T], ws []clique.Word, count int) []T {
	w := codec.Width()
	out := make([]T, count)
	for i := range out {
		out[i] = codec.Decode(ws[i*w : (i+1)*w])
	}
	return out
}

// emptyMsgs allocates an n×n exchange buffer.
func emptyMsgs(n int) [][][]clique.Word {
	m := make([][][]clique.Word, n)
	for i := range m {
		m[i] = make([][]clique.Word, n)
	}
	return m
}

// clearMsgs nils every entry so an exchange buffer can be refilled for the
// next step without reallocating the n+1 index arrays. Exchange copies the
// payload words onto the links, so dropping the references here is safe.
func clearMsgs(msgs [][][]clique.Word) [][][]clique.Word {
	for _, row := range msgs {
		for i := range row {
			row[i] = nil
		}
	}
	return msgs
}
