package ccmm

// gatherCols fills buf[i] with row[cols[i]] for every in-range column and
// the semiring zero for padding columns (index ≥ n). It is the gather step
// in front of every bulk encode: the engines assemble a block row into a
// scratch buffer and ship it through one EncodeSlice call, with no
// per-element codec dispatch anywhere on the path.
func gatherCols[T any](buf []T, row []T, cols []int, n int, zero T) {
	for i, col := range cols {
		if col < n {
			buf[i] = row[col]
		} else {
			buf[i] = zero
		}
	}
}

// appendCols is gatherCols for the direct transport: it appends the
// gathered block row onto a typed payload buffer, which then travels as-is
// (no encode step) while its wire cost is charged from EncodedLen.
func appendCols[T any](dst []T, row []T, cols []int, n int, zero T) []T {
	for _, col := range cols {
		if col < n {
			dst = append(dst, row[col])
		} else {
			dst = append(dst, zero)
		}
	}
	return dst
}
