package ccmm_test

import (
	"errors"
	"math/rand/v2"
	"os"
	"reflect"
	"testing"

	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/matrix"
	"github.com/algebraic-clique/algclique/internal/ring"
)

// csrOf compresses a distributed row matrix into CSR, keeping non-kept
// entries out (the reference conversion for the differential tests).
func csrOf[T any](m *ccmm.RowMat[T], keep func(T) bool) *matrix.CSR[T] {
	return matrix.CSRFromDense(m.Collect(), keep)
}

// diffCSR runs the CSR engine on all three transports against the dense 3D
// reference and asserts the CSR product is bit-identical to compressing
// the dense one, with bit-identical direct/wire ledgers.
func diffCSR[T any](t *testing.T, name string, n int, sr ring.Semiring[T], codec ring.Codec[T], keep func(T) bool, s, tm *ccmm.RowMat[T]) {
	t.Helper()
	refNet := clique.New(n)
	defer refNet.Close()
	dense, err := ccmm.Semiring3D[T](refNet, sr, codec, s, tm)
	if err != nil {
		t.Fatalf("%s n=%d: dense reference: %v", name, n, err)
	}
	want := csrOf(dense, keep)

	sc, tc := csrOf(s, keep), csrOf(tm, keep)
	direct := clique.New(n)
	defer direct.Close()
	gotD, err := ccmm.SparseMulCSR[T](direct, nil, sr, codec, sc, tc)
	if err != nil {
		t.Fatalf("%s n=%d: CSR direct: %v", name, n, err)
	}
	wire := clique.New(n, clique.WithTransport(clique.TransportWire))
	defer wire.Close()
	gotW, err := ccmm.SparseMulCSR[T](wire, nil, sr, codec, sc, tc)
	if err != nil {
		t.Fatalf("%s n=%d: CSR wire: %v", name, n, err)
	}
	if !reflect.DeepEqual(gotD, want) {
		t.Fatalf("%s n=%d: CSR direct product differs from compressed dense 3D", name, n)
	}
	if !reflect.DeepEqual(gotW, want) {
		t.Fatalf("%s n=%d: CSR wire product differs from compressed dense 3D", name, n)
	}
	ds, ws := direct.Stats(), wire.Stats()
	if ds.Rounds != ws.Rounds || ds.Words != ws.Words || ds.Flushes != ws.Flushes {
		t.Fatalf("%s n=%d: ledgers diverge: direct %d rounds / %d words / %d flushes, wire %d / %d / %d",
			name, n, ds.Rounds, ds.Words, ds.Flushes, ws.Rounds, ws.Words, ws.Flushes)
	}
	if !reflect.DeepEqual(ds.Phases, ws.Phases) {
		t.Fatalf("%s n=%d: phase ledgers diverge:\ndirect %+v\nwire   %+v", name, n, ds.Phases, ws.Phases)
	}

	verify := clique.New(n, clique.WithTransport(clique.TransportVerify))
	defer verify.Close()
	gotV, err := ccmm.SparseMulCSR[T](verify, nil, sr, codec, sc, tc)
	if err != nil {
		t.Fatalf("%s n=%d: transport verification failed: %v", name, n, err)
	}
	if !reflect.DeepEqual(gotV, want) {
		t.Fatalf("%s n=%d: verified CSR product differs", name, n)
	}
}

// TestCSRMatchesDenseAllAlgebras is the differential suite of the CSR
// engine: for every shipped algebra and a sample of clique sizes, the CSR
// product must equal the compressed dense 3D product on both transport
// planes, with bit-identical ledgers.
func TestCSRMatchesDenseAllAlgebras(t *testing.T) {
	for _, n := range []int{8, 9, 13, 16, 27, 33, 64, 100} {
		rng := rand.New(rand.NewPCG(uint64(n), 77))
		base := sparseIntMat(rng, n, 2, 50)
		base2 := sparseIntMat(rng, n, 2, 50)

		diffCSR[int64](t, "int64", n, ring.Int64{}, ring.Int64{},
			func(x int64) bool { return x != 0 }, base, base2)

		mp := ring.MinPlus{}
		toMP := func(x int64) int64 {
			if x == 0 {
				return ring.Inf
			}
			return x
		}
		diffCSR[int64](t, "min-plus", n, mp, mp,
			func(x int64) bool { return !ring.IsInf(x) }, mapMat(base, toMP), mapMat(base2, toMP))

		toBool := func(x int64) bool { return x != 0 }
		keepBool := func(b bool) bool { return b }
		diffCSR[bool](t, "bool", n, ring.Bool{}, ring.Bool{},
			keepBool, mapMat(base, toBool), mapMat(base2, toBool))
		diffCSR[bool](t, "packed-bool", n, ring.Bool{}, ring.PackedBool{},
			keepBool, mapMat(base, toBool), mapMat(base2, toBool))
	}
}

// TestCSRNilValAdjacency: a nil-Val CSR operand (the adjacency encoding)
// behaves exactly like the same structure with explicit one values.
func TestCSRNilValAdjacency(t *testing.T) {
	const n = 32
	rng := rand.New(rand.NewPCG(15, 16))
	a := sparseIntMat(rng, n, 3, 1)
	b := sparseIntMat(rng, n, 3, 1)
	keep := func(b bool) bool { return b }
	toBool := func(x int64) bool { return x != 0 }
	sa, sb := csrOf(mapMat(a, toBool), keep), csrOf(mapMat(b, toBool), keep)

	net := clique.New(n)
	defer net.Close()
	withVals, err := ccmm.SparseMulCSR[bool](net, nil, ring.Bool{}, ring.PackedBool{}, sa, sb)
	if err != nil {
		t.Fatal(err)
	}
	saN := &matrix.CSR[bool]{N: n, RowPtr: sa.RowPtr, Col: sa.Col}
	sbN := &matrix.CSR[bool]{N: n, RowPtr: sb.RowPtr, Col: sb.Col}
	net2 := clique.New(n)
	defer net2.Close()
	nilVals, err := ccmm.SparseMulCSR[bool](net2, nil, ring.Bool{}, ring.PackedBool{}, saN, sbN)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(withVals, nilVals) {
		t.Fatal("nil-Val adjacency product differs from explicit-value product")
	}
	st, st2 := net.Stats(), net2.Stats()
	if st.Rounds != st2.Rounds || st.Words != st2.Words {
		t.Fatalf("nil-Val ledger %d/%d differs from explicit %d/%d", st2.Rounds, st2.Words, st.Rounds, st.Words)
	}
}

// TestCSRScratchReuse: distinct products through one shared scratch match
// fresh-scratch runs — pooled slot tables and arenas must not leak state.
func TestCSRScratchReuse(t *testing.T) {
	const n = 33
	r := ring.Int64{}
	keep := func(x int64) bool { return x != 0 }
	sc := ccmm.NewScratch()
	for trial := 0; trial < 4; trial++ {
		rng := rand.New(rand.NewPCG(6, uint64(trial)))
		a := csrOf(sparseIntMat(rng, n, 1+trial, 20), keep)
		b := csrOf(sparseIntMat(rng, n, 2, 20), keep)
		shared := clique.New(n)
		got, err := ccmm.SparseMulCSR[int64](shared, sc, r, r, a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		fresh := clique.New(n)
		want, err := ccmm.SparseMulCSR[int64](fresh, nil, r, r, a, b)
		if err != nil {
			t.Fatalf("trial %d fresh: %v", trial, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: shared-scratch CSR product differs from fresh", trial)
		}
		if shared.Rounds() != fresh.Rounds() || shared.Words() != fresh.Words() {
			t.Fatalf("trial %d: shared-scratch ledger %d/%d differs from fresh %d/%d",
				trial, shared.Rounds(), shared.Words(), fresh.Rounds(), fresh.Words())
		}
		shared.Close()
		fresh.Close()
	}
}

// TestCSRDensityBoundary pins the shared census bound on the CSR path:
// Σ ca·rb = 2n²−1 is accepted, 2n² rejected with ErrTooDense.
func TestCSRDensityBoundary(t *testing.T) {
	const n = 8
	r := ring.Int64{}
	keep := func(x int64) bool { return x != 0 }

	s, tm := withColRowCounts(n, []int{8, 8, 7}, []int{8, 7, 1})
	net := clique.New(n)
	defer net.Close()
	if _, err := ccmm.SparseMulCSR[int64](net, nil, r, r, csrOf(s, keep), csrOf(tm, keep)); err != nil {
		t.Fatalf("Σ = 2n²−1 rejected: %v", err)
	}

	s, tm = withColRowCounts(n, []int{8, 8, 8}, []int{8, 7, 1})
	net2 := clique.New(n)
	defer net2.Close()
	_, err := ccmm.SparseMulCSR[int64](net2, nil, r, r, csrOf(s, keep), csrOf(tm, keep))
	if !errors.Is(err, ccmm.ErrTooDense) {
		t.Fatalf("Σ = 2n² err = %v, want ErrTooDense", err)
	}
}

// TestCSRRoutedDensifyFallback drives the density-aware CSR planner
// through all three outcomes: sparse via census, dense via census on dense
// operands (densified through the pool), and the transparent fallback when
// the planner's estimate is refuted by the exact census.
func TestCSRRoutedDensifyFallback(t *testing.T) {
	const n = 100
	p := ccmm.PlanFor(n, ccmm.EngineAuto)
	keep := func(x int64) bool { return x != 0 }
	rng := rand.New(rand.NewPCG(23, 24))
	a := sparseIntMat(rng, n, 4, 50)
	b := sparseIntMat(rng, n, 4, 50)

	net := clique.New(n)
	defer net.Close()
	got, route, err := p.MulIntCSRRouted(net, nil, csrOf(a, keep), csrOf(b, keep))
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsSparse() || route.Engine != ccmm.EngineSparse || !route.Census || route.Fallback {
		t.Fatalf("sparse input route = %+v (sparse=%v), want sparse via census", route, got.IsSparse())
	}
	ref := clique.New(n)
	defer ref.Close()
	dense, err := ccmm.Semiring3D[int64](ref, ring.Int64{}, ring.Int64{}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Sparse, csrOf(dense, keep)) {
		t.Fatal("routed CSR product differs from compressed dense 3D")
	}

	// Dense operands: routed to the dense engine through densification.
	dm := ccmm.NewRowMat[int64](n)
	for v := range dm.Rows {
		for j := range dm.Rows[v] {
			dm.Rows[v][j] = 1 + int64((v+j)%7)
		}
	}
	net2 := clique.New(n)
	defer net2.Close()
	got2, route2, err := p.MulIntCSRRouted(net2, nil, csrOf(dm, keep), csrOf(dm, keep))
	if err != nil {
		t.Fatal(err)
	}
	if got2.IsSparse() || route2.Engine != ccmm.EngineFast || !route2.Census || route2.Fallback {
		t.Fatalf("dense input route = %+v (sparse=%v), want dense via census", route2, got2.IsSparse())
	}
	ref2 := clique.New(n)
	defer ref2.Close()
	want2, err := ccmm.Semiring3D[int64](ref2, ring.Int64{}, ring.Int64{}, dm, dm)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2.Dense.Rows, want2.Rows) {
		t.Fatal("densified product differs from dense 3D")
	}

	// Skewed operands: row counts look sparse, column weights are too
	// dense — the exact census rejects and the product completes dense.
	skewS := ccmm.NewRowMat[int64](n)
	skewT := ccmm.NewRowMat[int64](n)
	for v := 0; v < n; v++ {
		skewS.Rows[v][0] = 1
		skewS.Rows[v][1] = 1
	}
	for z := 0; z < n; z++ {
		skewT.Rows[0][z] = 1
		skewT.Rows[1][z] = 1
	}
	net3 := clique.New(n)
	defer net3.Close()
	got3, route3, err := p.MulIntCSRRouted(net3, nil, csrOf(skewS, keep), csrOf(skewT, keep))
	if err != nil {
		t.Fatal(err)
	}
	if got3.IsSparse() || !route3.Fallback || route3.Engine != ccmm.EngineFast {
		t.Fatalf("skewed input route = %+v, want dense-fallback", route3)
	}
}

// TestCSRRoutedBoolMinPlus: the Boolean and min-plus routed entries match
// their dense references, and sparse Boolean products come back value-free.
// The plan forces EngineSparse — at n = 64 the auto planner correctly
// prefers the dense fast-bilinear engine, and this test is about the
// sparse path.
func TestCSRRoutedBoolMinPlus(t *testing.T) {
	const n = 64
	p := ccmm.PlanFor(n, ccmm.EngineSparse)
	keep := func(x int64) bool { return x != 0 }
	rng := rand.New(rand.NewPCG(25, 26))
	a := sparseIntMat(rng, n, 3, 1)
	b := sparseIntMat(rng, n, 3, 1)
	ca, cb := csrOf(a, keep), csrOf(b, keep)

	net := clique.New(n)
	defer net.Close()
	got, route, err := p.MulBoolCSRRouted(net, nil, ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsSparse() || route.Engine != ccmm.EngineSparse {
		t.Fatalf("bool route = %+v (sparse=%v), want sparse", route, got.IsSparse())
	}
	if got.Sparse.Val != nil {
		t.Fatal("sparse Boolean product carries values; want nil Val")
	}
	ref := clique.New(n)
	defer ref.Close()
	wantB, err := p.MulBoolPlanned(ref, a, b)
	if err != nil {
		t.Fatal(err)
	}
	wantCSR := csrOf(wantB, keep)
	if !reflect.DeepEqual(got.Sparse.RowPtr, wantCSR.RowPtr) || !reflect.DeepEqual(got.Sparse.Col, wantCSR.Col) {
		t.Fatal("sparse Boolean product structure differs from dense Boolean product")
	}

	toMP := func(x int64) int64 {
		if x == 0 {
			return ring.Inf
		}
		return x
	}
	ma, mb := mapMat(a, toMP), mapMat(b, toMP)
	keepMP := func(x int64) bool { return !ring.IsInf(x) }
	net2 := clique.New(n)
	defer net2.Close()
	got2, _, err := p.MulMinPlusCSRRouted(net2, nil, csrOf(ma, keepMP), csrOf(mb, keepMP))
	if err != nil {
		t.Fatal(err)
	}
	ref2 := clique.New(n)
	defer ref2.Close()
	wantMP, err := ccmm.Semiring3D[int64](ref2, ring.MinPlus{}, ring.MinPlus{}, ma, mb)
	if err != nil {
		t.Fatal(err)
	}
	if !got2.IsSparse() || !reflect.DeepEqual(got2.Sparse, csrOf(wantMP, keepMP)) {
		t.Fatal("min-plus CSR product differs from compressed dense reference")
	}
}

// TestCSRDensifyCapRejects: beyond csrDensifyCap the planner refuses to
// densify — a product that cannot stay sparse errors with ErrTooDense
// instead of allocating Θ(n²) state.
func TestCSRDensifyCapRejects(t *testing.T) {
	const n = 8200                              // above the 8192 densify cap; sparse-link network, so cheap
	p := ccmm.PlanSparse(n, ccmm.EngineAuto, 0) // census disabled → dense route
	net := clique.New(n)
	defer net.Close()
	empty := matrix.NewCSR[int64](n)
	_, _, err := p.MulIntCSRRouted(net, nil, empty, empty)
	if !errors.Is(err, ccmm.ErrTooDense) {
		t.Fatalf("densify above cap err = %v, want ErrTooDense", err)
	}
}

// TestCSRNoDenseAllocs: the forced CSR path must never allocate a dense
// row matrix — the process-wide counter the ccbench memory gate watches.
func TestCSRNoDenseAllocs(t *testing.T) {
	const n = 256
	keep := func(x int64) bool { return x != 0 }
	rng := rand.New(rand.NewPCG(31, 7))
	a := csrOf(sparseIntMat(rng, n, 4, 9), keep)
	b := csrOf(sparseIntMat(rng, n, 4, 9), keep)
	net := clique.New(n)
	defer net.Close()
	before := ccmm.DenseAllocs()
	if _, err := ccmm.SparseMulCSR[int64](net, nil, ring.Int64{}, ring.Int64{}, a, b); err != nil {
		t.Fatal(err)
	}
	if d := ccmm.DenseAllocs() - before; d != 0 {
		t.Fatalf("CSR product allocated %d dense row matrices; want 0", d)
	}
}

// gnpCSR draws a GNP(n, c/n)-style adjacency as a nil-Val CSR directly —
// geometric skip sampling, Θ(nnz) work and memory, never a dense row.
func gnpCSR(rng *rand.Rand, n int, avgDeg float64) *matrix.CSR[bool] {
	m := matrix.NewCSR[bool](n)
	p := avgDeg / float64(n)
	if p >= 1 {
		p = 0.999
	}
	for v := 0; v < n; v++ {
		c := -1
		for {
			// Geometric(p) skip to the next present edge.
			u := rng.Float64()
			skip := 1
			for q := 1 - p; u < 1 && q > 0; {
				f := u / q
				if f >= 1 {
					break
				}
				u = f
				skip++
				if skip > n {
					break
				}
			}
			c += skip
			if c >= n {
				break
			}
			m.Col = append(m.Col, int32(c))
		}
		m.RowPtr[v+1] = int64(len(m.Col))
	}
	return m
}

// TestCSRLargeMemoryFootprint squares a GNP(10⁵, 8/n) adjacency on the CSR
// path and asserts no dense n×n buffer is ever allocated — the in-process
// half of the ccbench csr memory gate. Opt-in: it runs only when
// CCMM_CSR_LARGE is set (the CI memory lane sets it) and never under
// -short, so plain `go test ./...` stays fast.
func TestCSRLargeMemoryFootprint(t *testing.T) {
	if testing.Short() {
		t.Skip("large-n CSR memory test skipped in -short mode")
	}
	if os.Getenv("CCMM_CSR_LARGE") == "" {
		t.Skip("large-n CSR memory test is opt-in: set CCMM_CSR_LARGE=1")
	}
	const n = 100000
	rng := rand.New(rand.NewPCG(42, 43))
	adj := gnpCSR(rng, n, 8)
	net := clique.New(n)
	defer net.Close()
	before := ccmm.DenseAllocs()
	sq, err := ccmm.SparseMulCSR[bool](net, nil, ring.Bool{}, ring.PackedBool{}, adj, adj)
	if err != nil {
		t.Fatal(err)
	}
	if d := ccmm.DenseAllocs() - before; d != 0 {
		t.Fatalf("GNP(1e5) CSR square allocated %d dense row matrices; want 0", d)
	}
	if sq.NNZ() == 0 {
		t.Fatal("GNP(1e5) square came back empty")
	}
	t.Logf("GNP(%d, 8/n): nnz(A)=%d nnz(A²)=%d rounds=%d words=%d",
		n, adj.NNZ(), sq.NNZ(), net.Rounds(), net.Words())
}
