package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	cc "github.com/algebraic-clique/algclique"
)

// Op identifies a service operation. The three product ops are batchable:
// the admission layer coalesces compatible requests into one session batch
// call. The graph ops run one request at a time but still share one warm
// session per drained batch.
type Op string

const (
	OpMatMul          Op = "matmul"
	OpMatMulBool      Op = "matmul-bool"
	OpDistanceProduct Op = "distance-product"
	OpAPSP            Op = "apsp"
	OpTriangles       Op = "triangles"
	OpSparseSquare    Op = "sparse-square"
)

// Ops lists every operation the service plane accepts.
var Ops = []Op{OpMatMul, OpMatMulBool, OpDistanceProduct, OpAPSP, OpTriangles, OpSparseSquare}

// binary reports whether the op multiplies two operands (A and B); the
// graph ops take a single adjacency/weight matrix in A.
func (o Op) binary() bool {
	switch o {
	case OpMatMul, OpMatMulBool, OpDistanceProduct:
		return true
	}
	return false
}

// batchable reports whether requests of this op coalesce into a session
// batch entry point.
func (o Op) batchable() bool { return o.binary() }

func (o Op) valid() bool {
	for _, k := range Ops {
		if o == k {
			return true
		}
	}
	return false
}

// Request is one tenant query. A is the left operand — for the graph ops
// the adjacency (0/1) or weight matrix (Inf = no edge) — and B the right
// operand of the product ops. The zero Seed means "unseeded" (the ops
// served here are deterministic anyway; the field exists so future
// randomised ops inherit the plumbing).
type Request struct {
	Tenant string
	Op     Op
	A, B   [][]int64
	Seed   uint64

	// Fault, when set, arms a seeded chaos plan on the request's session
	// operation (cc.WithFaultInjection): the op recovers to a certified
	// bit-correct result or fails with a typed fault-plane error. Plans
	// are per request; co-batched requests each get their own injector.
	Fault *cc.FaultPlan
	// Certify > 0 arms result certification with that many probes
	// (cc.WithCertification), which also gives a faulted product its
	// retry budget.
	Certify int

	ctx      context.Context
	enqueued time.Time
	done     chan Result
	// answered is the dispatcher's single-delivery latch: every admitted
	// request is answered exactly once, even when the serving path
	// panics. Only the owning queue's dispatcher touches it.
	answered bool
}

// callOptions assembles the session CallOptions a request carries into
// its batch item or graph call.
func (r *Request) callOptions() []cc.CallOption {
	opts := []cc.CallOption{cc.WithContext(r.ctx)}
	if r.Seed != 0 {
		opts = append(opts, cc.WithSeed(r.Seed))
	}
	if r.Fault != nil {
		opts = append(opts, cc.WithFaultInjection(*r.Fault))
	}
	if r.Certify > 0 {
		opts = append(opts, cc.WithCertification(r.Certify))
	}
	return opts
}

// Result is the service's answer to one request.
type Result struct {
	// Matrix holds the result matrix of the matrix-valued ops (products,
	// APSP distances, sparse square); nil for count-valued ops.
	Matrix [][]int64
	// Count holds the triangle count.
	Count int64
	// Stats is the simulated communication cost the session measured.
	Stats cc.Stats
	// QueueWait is the time the request spent queued before its batch
	// started; Service the time from batch start to completion (a request
	// late in a coalesced batch includes its predecessors' compute).
	QueueWait time.Duration
	Service   time.Duration
	// Err is the request's failure, nil on success. Rejections
	// (*OverloadError, ErrDraining) never reach a session; expirations
	// (context.DeadlineExceeded, context.Canceled) may be decided while
	// still queued.
	Err error
}

// ErrDraining is returned for requests submitted after Shutdown began.
var ErrDraining = errors.New("serve: server is draining")

// errQueueFull and errTenantQuota are the unwrap targets of
// *OverloadError, distinguishing global queue pressure from a single
// tenant exceeding its fair share.
var (
	errQueueFull   = errors.New("serve: queue full")
	errTenantQuota = errors.New("serve: tenant queue quota exceeded")
)

// OverloadError is the admission layer's backpressure signal (HTTP 429):
// the request's (size, op) queue — or the tenant's fair share of it — is
// full. RetryAfter is the server's estimate of when capacity frees up,
// derived from the queue depth and the recent per-request service time.
type OverloadError struct {
	// RetryAfter is the suggested backoff before resubmitting.
	RetryAfter time.Duration
	// Tenant is true when the tenant's per-queue quota, not the whole
	// queue, was exhausted.
	Tenant bool
}

func (e *OverloadError) Error() string {
	if e.Tenant {
		return fmt.Sprintf("serve: tenant queue quota exceeded (retry after %v)", e.RetryAfter)
	}
	return fmt.Sprintf("serve: queue full (retry after %v)", e.RetryAfter)
}

// Unwrap lets errors.Is distinguish the two admission failures.
func (e *OverloadError) Unwrap() error {
	if e.Tenant {
		return errTenantQuota
	}
	return errQueueFull
}

// validate checks a request's shape against the server limits before it
// can occupy a queue slot.
func (r *Request) validate(cfg Config) error {
	if !r.Op.valid() {
		return fmt.Errorf("serve: unknown op %q", r.Op)
	}
	if r.Tenant == "" {
		return errors.New("serve: missing tenant")
	}
	n := len(r.A)
	if n < cfg.MinSize || n > cfg.MaxSize {
		return fmt.Errorf("serve: instance size %d outside the served range [%d, %d]", n, cfg.MinSize, cfg.MaxSize)
	}
	if err := squareShape("a", r.A, n); err != nil {
		return err
	}
	if r.Op.binary() {
		if len(r.B) != n {
			return fmt.Errorf("serve: operand sizes %d and %d differ", n, len(r.B))
		}
		return squareShape("b", r.B, n)
	}
	if r.B != nil {
		return fmt.Errorf("serve: op %q takes a single matrix", r.Op)
	}
	switch r.Op {
	case OpTriangles, OpSparseSquare:
		// The subgraph ops run on undirected simple graphs.
		for i := range r.A {
			for j, v := range r.A[i] {
				if v != 0 && v != 1 {
					return fmt.Errorf("serve: op %q wants a 0/1 adjacency matrix (entry [%d][%d] = %d)", r.Op, i, j, v)
				}
				if r.A[i][j] != r.A[j][i] {
					return fmt.Errorf("serve: op %q wants a symmetric adjacency matrix (entry [%d][%d])", r.Op, i, j)
				}
			}
			if r.A[i][i] != 0 {
				return fmt.Errorf("serve: op %q wants a loop-free adjacency matrix (entry [%d][%d])", r.Op, i, i)
			}
		}
	case OpAPSP:
		for i := range r.A {
			for j, w := range r.A[i] {
				if w < 0 && !cc.IsInf(w) {
					return fmt.Errorf("serve: op %q wants non-negative weights (entry [%d][%d] = %d)", r.Op, i, j, w)
				}
			}
		}
	}
	return nil
}

func squareShape(name string, m [][]int64, n int) error {
	for i, row := range m {
		if len(row) != n {
			return fmt.Errorf("serve: operand %s row %d has %d entries, want %d", name, i, len(row), n)
		}
	}
	return nil
}

// graphOf builds the undirected simple graph a validated adjacency matrix
// describes.
func graphOf(a [][]int64) *cc.Graph {
	n := len(a)
	g := cc.NewGraph(n, false)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if a[i][j] != 0 {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// weightedOf builds the directed weighted graph a validated weight matrix
// describes (Inf = no edge; the diagonal is implicitly zero).
func weightedOf(a [][]int64) *cc.Weighted {
	n := len(a)
	g := cc.NewWeighted(n, true)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && !cc.IsInf(a[i][j]) {
				g.SetEdge(i, j, a[i][j])
			}
		}
	}
	return g
}
