package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	cc "github.com/algebraic-clique/algclique"
)

// TestPoisonedSessionNeverRepooled reproduces the crash-safety hole this
// suite exists to close: a request whose operation panics on its session
// (an injected untyped panic, standing in for a buggy run) used to kill
// the dispatcher and leave the session eligible for re-pooling. The
// contract now: the guilty request is answered with *SessionPanicError,
// its co-batched requests are re-served on fresh sessions, the poisoned
// sessions are discarded — never re-pooled — and the dispatcher survives
// to serve the next batch.
func TestPoisonedSessionNeverRepooled(t *testing.T) {
	s := New(Config{MaxBatch: 4, MaxWait: time.Second})
	defer s.Shutdown(context.Background())
	ctx := context.Background()

	a, b := testMat(8, 1), testMat(8, 2)
	want := naiveMul(a, b)

	var wg sync.WaitGroup
	results := make([]Result, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := Request{Tenant: "t", Op: OpMatMul, A: a, B: b}
			if i == 0 {
				// The first flush of the product panics mid-operation.
				req.Fault = &cc.FaultPlan{Seed: 7, PanicAtFlush: 1}
			}
			results[i] = s.Do(ctx, req)
		}(i)
	}
	wg.Wait()

	var spe *SessionPanicError
	if !errors.As(results[0].Err, &spe) {
		t.Fatalf("poison request err = %v, want *SessionPanicError", results[0].Err)
	}
	if spe.Op != OpMatMul {
		t.Fatalf("SessionPanicError.Op = %q, want %q", spe.Op, OpMatMul)
	}
	for i := 1; i < 4; i++ {
		if results[i].Err != nil {
			t.Fatalf("co-batched request %d failed: %v", i, results[i].Err)
		}
		if !matEq(results[i].Matrix, want) {
			t.Fatalf("co-batched request %d got a wrong product after retry", i)
		}
	}

	// Two sessions were poisoned (the coalesced batch's, then the solo
	// retry that isolated the guilty request); both must be gone from the
	// pool, not cached.
	st := s.Pool()
	if st.Discards != 2 {
		t.Fatalf("pool discards = %d, want 2: %+v", st.Discards, st)
	}
	if int64(st.Idle+st.InUse) != st.Misses-st.Discards {
		t.Fatalf("pool caches %d sessions of %d built with %d discarded — a poisoned session was re-pooled: %+v",
			st.Idle+st.InUse, st.Misses, st.Discards, st)
	}

	// The dispatcher survived: the same queue serves the next request.
	res := s.Do(ctx, Request{Tenant: "t", Op: OpMatMul, A: a, B: b})
	if res.Err != nil {
		t.Fatalf("request after poisoning failed: %v", res.Err)
	}
	if !matEq(res.Matrix, want) {
		t.Fatal("request after poisoning got a wrong product")
	}

	ts := s.Tenants()["t"]
	if ts.Admitted != 5 || ts.Completed != 4 || ts.Failed != 1 {
		t.Fatalf("tenant ledger = %+v, want 5 admitted / 4 completed / 1 failed", ts)
	}
}

// TestPoisonedGraphOpSession is the graph-op (non-batchable) arm of the
// poisoning contract: the panicking request gets the typed error, its
// session is discarded, and the requests behind it in the same drained
// batch are served on a fresh session.
func TestPoisonedGraphOpSession(t *testing.T) {
	s := New(Config{MaxBatch: 4, MaxWait: time.Second})
	defer s.Shutdown(context.Background())
	ctx := context.Background()

	// A triangle plus an isolated path: exactly one triangle.
	n := 8
	adj := make([][]int64, n)
	for i := range adj {
		adj[i] = make([]int64, n)
	}
	edge := func(i, j int) { adj[i][j], adj[j][i] = 1, 1 }
	edge(0, 1)
	edge(1, 2)
	edge(2, 0)
	edge(4, 5)

	var wg sync.WaitGroup
	results := make([]Result, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := Request{Tenant: "g", Op: OpTriangles, A: adj}
			if i == 0 {
				req.Fault = &cc.FaultPlan{Seed: 3, PanicAtFlush: 1}
			}
			results[i] = s.Do(ctx, req)
		}(i)
	}
	wg.Wait()

	var spe *SessionPanicError
	poisoned, served := 0, 0
	for _, res := range results {
		switch {
		case errors.As(res.Err, &spe):
			poisoned++
			if spe.Op != OpTriangles {
				t.Fatalf("SessionPanicError.Op = %q, want %q", spe.Op, OpTriangles)
			}
		case res.Err != nil:
			t.Fatalf("graph request failed with unexpected error: %v", res.Err)
		default:
			served++
			if res.Count != 1 {
				t.Fatalf("triangles = %d, want 1", res.Count)
			}
		}
	}
	if poisoned != 1 || served != 2 {
		t.Fatalf("poisoned %d / served %d, want 1 / 2", poisoned, served)
	}

	st := s.Pool()
	if st.Discards != 1 {
		t.Fatalf("pool discards = %d, want 1: %+v", st.Discards, st)
	}
	if int64(st.Idle+st.InUse) != st.Misses-st.Discards {
		t.Fatalf("a poisoned session was re-pooled: %+v", st)
	}
}

// TestServeChaosCertifiedRequests drives faulted, certified requests
// through the service plane: every answer is either bit-correct (the
// session's retry budget recovered it, certification vouching) or a typed
// fault-plane error — never a silently wrong product, and no admitted
// request is lost.
func TestServeChaosCertifiedRequests(t *testing.T) {
	s := New(Config{MaxBatch: 4, MaxWait: 20 * time.Millisecond})
	defer s.Shutdown(context.Background())
	ctx := context.Background()

	a, b := testMat(8, 3), testMat(8, 4)
	want := naiveMul(a, b)

	var wg sync.WaitGroup
	results := make([]Result, 12)
	for i := 0; i < len(results); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = s.Do(ctx, Request{
				Tenant:  "chaos",
				Op:      OpMatMul,
				A:       a,
				B:       b,
				Fault:   &cc.FaultPlan{Seed: uint64(i + 1), CorruptProb: 0.01, DropProb: 0.005, MaxFaults: 6},
				Certify: 10,
			})
		}(i)
	}
	wg.Wait()

	recovered := 0
	for i, res := range results {
		if res.Err != nil {
			var fe *cc.FaultError
			var ce *cc.CertificationError
			if !errors.As(res.Err, &fe) && !errors.As(res.Err, &ce) {
				t.Fatalf("request %d: untyped chaos error %v", i, res.Err)
			}
			continue
		}
		if !matEq(res.Matrix, want) {
			t.Fatalf("request %d: chaos produced a silently wrong product", i)
		}
		if !res.Stats.Certified {
			t.Fatalf("request %d: returned product was not certified", i)
		}
		recovered++
	}
	if recovered == 0 {
		t.Fatal("no chaos request recovered; the plans are too hot for the test to mean anything")
	}

	ts := s.Tenants()["chaos"]
	if ts.Completed+ts.Failed != int64(len(results)) {
		t.Fatalf("ledger lost requests: %+v of %d", ts, len(results))
	}
}

// TestPoolDiscard exercises the pool's discard path directly: the session
// leaves the accounting entirely and the footprint estimate returns to
// its pre-checkout level.
func TestPoolDiscard(t *testing.T) {
	p := NewPool(0)
	defer p.Close()

	sess, hit, err := p.Get(8)
	if err != nil || hit {
		t.Fatalf("Get = (%v, %v), want a fresh session", hit, err)
	}
	p.Discard(sess)
	st := p.Stats()
	if st.Discards != 1 || st.Idle != 0 || st.InUse != 0 {
		t.Fatalf("after Discard: %+v, want 1 discard and an empty pool", st)
	}
	if st.FootprintBytes != 0 {
		t.Fatalf("footprint = %d after discarding the only session", st.FootprintBytes)
	}

	// Discarding a session the pool does not know is a safe no-op on the
	// accounting (the session is still closed).
	other, _ := cc.NewClique(4)
	p.Discard(other)
	if st := p.Stats(); st.Discards != 1 {
		t.Fatalf("unknown-session Discard changed the ledger: %+v", st)
	}

	// A Put after Discard must not resurrect the entry.
	p.Put(sess)
	if st := p.Stats(); st.Idle != 0 {
		t.Fatalf("Put after Discard re-pooled the session: %+v", st)
	}
}

// TestDoWithBackoff covers the client helper's three exits: immediate
// success, budget exhaustion against a saturated queue, and an expiring
// context cutting a backoff sleep short.
func TestDoWithBackoff(t *testing.T) {
	ctx := context.Background()
	a, b := testMat(8, 1), testMat(8, 2)

	// Success needs no retries (a default server with no pressure).
	clean := New(Config{})
	res := DoWithBackoff(ctx, clean, Request{Tenant: "ok", Op: OpMatMulBool, A: mod2(a), B: mod2(b)}, Backoff{})
	if res.Err != nil {
		t.Fatalf("clean DoWithBackoff failed: %v", res.Err)
	}
	clean.Shutdown(ctx)

	// MaxBatch 2 with a long window keeps the occupant queued; QueueCap 1
	// makes the queue saturate under it.
	s := New(Config{QueueCap: 1, TenantQueueCap: 1, MaxBatch: 2, MaxWait: 10 * time.Second})
	defer s.Shutdown(context.Background())

	// Saturate the matmul queue: the occupant sits in the coalescing
	// window until Shutdown drains it.
	occupied := make(chan Result, 1)
	go func() {
		occupied <- s.Do(ctx, Request{Tenant: "hog", Op: OpMatMul, A: a, B: b})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Tenants()["hog"].Admitted < 1 {
		if time.Now().After(deadline) {
			t.Fatal("occupant never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	res = DoWithBackoff(ctx, s, Request{Tenant: "late", Op: OpMatMul, A: a, B: b},
		Backoff{Base: time.Millisecond, Max: 4 * time.Millisecond, Attempts: 3})
	var over *OverloadError
	if !errors.As(res.Err, &over) {
		t.Fatalf("backoff against a full queue = %v, want *OverloadError", res.Err)
	}
	if elapsed := time.Since(start); elapsed < time.Millisecond {
		t.Fatalf("three attempts finished in %v; the helper never backed off", elapsed)
	}

	// A context expiring during the backoff sleep surfaces promptly.
	shortCtx, cancel := context.WithTimeout(ctx, 30*time.Millisecond)
	defer cancel()
	res = DoWithBackoff(shortCtx, s, Request{Tenant: "late", Op: OpMatMul, A: a, B: b},
		Backoff{Base: 10 * time.Second, Max: 10 * time.Second, Attempts: 5})
	if !errors.Is(res.Err, context.DeadlineExceeded) {
		t.Fatalf("backoff past the deadline = %v, want context.DeadlineExceeded", res.Err)
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if res := <-occupied; res.Err != nil {
		t.Fatalf("occupant was lost in the drain: %v", res.Err)
	}
}

// mod2 reduces a test matrix to 0/1 entries for the Boolean ops.
func mod2(m [][]int64) [][]int64 {
	out := make([][]int64, len(m))
	for i, row := range m {
		out[i] = make([]int64, len(row))
		for j, v := range row {
			out[i][j] = v % 2
		}
	}
	return out
}
