package serve

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// Backoff tunes DoWithBackoff. The zero value is usable: a 1ms first
// delay doubling to a 250ms cap, 8 attempts, half of each delay
// jittered.
type Backoff struct {
	// Base is the delay after the first rejection; it doubles per retry.
	Base time.Duration
	// Max caps the grown delay. The server's Retry-After hint may exceed
	// it: the server knows when capacity frees up, so the hint wins.
	Max time.Duration
	// Attempts caps total submissions (not retries); the last rejection
	// is returned as-is.
	Attempts int
	// Jitter in (0, 1] is the fraction of each delay randomised: the
	// sleep is drawn uniformly from [delay·(1−Jitter), delay], so
	// concurrent clients rejected together do not resubmit together.
	// Zero means the default (0.5); negative disables jitter.
	Jitter float64
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 250 * time.Millisecond
	}
	if b.Attempts <= 0 {
		b.Attempts = 8
	}
	if b.Jitter == 0 {
		b.Jitter = 0.5
	}
	if b.Jitter > 1 {
		b.Jitter = 1
	}
	return b
}

// DoWithBackoff submits a request, retrying admission rejections
// (*OverloadError) with jittered exponential backoff. The server's
// RetryAfter hint is honored as a lower bound on each delay, and the
// context bounds the whole exchange: a deadline or cancellation during a
// backoff sleep surfaces immediately as the context's error. Everything
// that is not an overload — validation failures, ErrDraining (permanent:
// retrying only burns the deadline), or the operation's own result — is
// returned as-is from the attempt that produced it.
func DoWithBackoff(ctx context.Context, s *Server, req Request, b Backoff) Result {
	b = b.withDefaults()
	if ctx == nil {
		ctx = context.Background()
	}
	delay := b.Base
	for attempt := 1; ; attempt++ {
		res := s.Do(ctx, req)
		var over *OverloadError
		if res.Err == nil || !errors.As(res.Err, &over) || attempt >= b.Attempts {
			return res
		}
		wait := delay
		if over.RetryAfter > wait {
			wait = over.RetryAfter
		}
		if b.Jitter > 0 {
			if span := time.Duration(float64(wait) * b.Jitter); span > 0 {
				wait -= time.Duration(rand.Int63n(int64(span) + 1))
			}
		}
		timer := time.NewTimer(wait)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return Result{Err: ctx.Err()}
		}
		if delay *= 2; delay > b.Max {
			delay = b.Max
		}
	}
}
