// Package serve is the multi-tenant service plane over warm algclique
// sessions: a long-running process multiplexing many callers over a
// budgeted pool of per-size sessions. Requests pass three layers —
//
//  1. admission: bounded per-(size, op) queues with per-tenant quotas;
//     full queues reject immediately with a Retry-After estimate
//     (*OverloadError → HTTP 429) instead of building unbounded backlog;
//  2. batching: a dispatcher per active queue coalesces compatible
//     requests, up to MaxBatch or until the oldest has waited MaxWait,
//     into the session batch entry points (MatMulBatch and friends), so
//     plan resolution, scratch pools, and network arming amortise across
//     requests from different tenants; batches are composed round-robin
//     across tenants, so one tenant's backlog cannot starve the rest;
//  3. execution: a warm session checked out of the Pool runs the batch,
//     each request under its own cancellation context; expired requests
//     are answered without ever touching a session.
//
// Per-tenant ledgers aggregate the session Stats (rounds, words, routing
// decisions) plus queue wait and service time. Shutdown seals admission
// and drains: every admitted request is answered before Shutdown returns.
package serve

import (
	"context"
	"fmt"
	"time"

	"sync"

	cc "github.com/algebraic-clique/algclique"
)

// Config tunes the service plane. The zero value is not usable; call
// (Config).withDefaults or use DefaultConfig.
type Config struct {
	// MemoryBudget bounds the session pool's estimated footprint in
	// bytes (≤ 0: unbounded). Under pressure the pool Trims idle
	// sessions first, then evicts them LRU.
	MemoryBudget int64
	// QueueCap bounds each (size, op) admission queue; TenantQueueCap
	// bounds one tenant's share of it (defaults to half).
	QueueCap       int
	TenantQueueCap int
	// MaxBatch caps how many requests coalesce into one session batch;
	// MaxWait is how long the oldest request may wait for co-batchers.
	MaxBatch int
	MaxWait  time.Duration
	// MinSize and MaxSize bound the served instance sizes.
	MinSize, MaxSize int
	// SessionOptions configure every pooled session (engine, workers,
	// transport, sparse threshold).
	SessionOptions []cc.SessionOption
}

// DefaultConfig is the served default: a 256 MiB pool, 64-deep queues,
// 16-request batches coalescing for at most 2ms, sizes 2–512.
func DefaultConfig() Config { return Config{}.withDefaults() }

func (c Config) withDefaults() Config {
	if c.MemoryBudget == 0 {
		c.MemoryBudget = 256 << 20
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.TenantQueueCap <= 0 {
		c.TenantQueueCap = (c.QueueCap + 1) / 2
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.MinSize <= 0 {
		c.MinSize = 2
	}
	if c.MaxSize <= 0 {
		c.MaxSize = 512
	}
	return c
}

// Server is the service plane. Build with New, submit with Do (or the
// HTTP handler), stop with Shutdown.
type Server struct {
	cfg    Config
	pool   *Pool
	ledger *ledger

	mu          sync.Mutex
	queues      map[qkey]*queue
	draining    bool
	stopc       chan struct{}
	drained     chan struct{}
	dispatchers sync.WaitGroup
}

// New builds a server; it owns a fresh session pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:     cfg,
		pool:    NewPool(cfg.MemoryBudget, cfg.SessionOptions...),
		ledger:  newLedger(),
		queues:  make(map[qkey]*queue),
		stopc:   make(chan struct{}),
		drained: make(chan struct{}),
	}
}

// Config returns the server's effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// Pool exposes the session pool's accounting.
func (s *Server) Pool() PoolStats { return s.pool.Stats() }

// Tenants returns a snapshot of every tenant's ledger.
func (s *Server) Tenants() map[string]TenantStats { return s.ledger.snapshot() }

// QueueStats describes one admission queue's state.
type QueueStats struct {
	N     int `json:"n"`
	Op    Op  `json:"op"`
	Depth int `json:"depth"`
	Cap   int `json:"cap"`
	// EwmaServiceMs is the smoothed per-request service time backing the
	// Retry-After estimates.
	EwmaServiceMs float64 `json:"ewma_service_ms"`
}

// Queues returns a snapshot of every active admission queue.
func (s *Server) Queues() []QueueStats {
	s.mu.Lock()
	qs := make([]*queue, 0, len(s.queues))
	for _, q := range s.queues {
		qs = append(qs, q)
	}
	s.mu.Unlock()
	out := make([]QueueStats, 0, len(qs))
	for _, q := range qs {
		q.mu.Lock()
		out = append(out, QueueStats{
			N: q.key.n, Op: q.key.op, Depth: q.size, Cap: q.cap,
			EwmaServiceMs: float64(q.ewmaPerReqNs) / 1e6,
		})
		q.mu.Unlock()
	}
	return out
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Do submits a request and waits for its result. ctx is the request's
// deadline/cancellation: it rejects the wait (and, if still queued when a
// dispatcher reaches it, the request itself) once done. Backpressure
// surfaces as *OverloadError, draining as ErrDraining — neither occupies
// a queue slot. An admitted request is always answered, even when the
// submitting caller has given up.
func (s *Server) Do(ctx context.Context, req Request) Result {
	if err := req.validate(s.cfg); err != nil {
		return Result{Err: err}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	req.ctx = ctx
	req.enqueued = time.Now()
	req.done = make(chan Result, 1)

	q, err := s.queueFor(qkey{n: len(req.A), op: req.Op})
	if err != nil {
		s.ledger.rejected(req.Tenant)
		return Result{Err: err}
	}
	if err := q.admit(&req); err != nil {
		s.ledger.rejected(req.Tenant)
		return Result{Err: err}
	}
	s.ledger.admitted(req.Tenant)
	select {
	case res := <-req.done:
		return res
	case <-ctx.Done():
		// The request stays admitted; its dispatcher will observe the
		// expired context and answer it (into the buffered channel).
		return Result{Err: ctx.Err()}
	}
}

// queueFor returns (building on demand) the admission queue for key,
// starting its dispatcher. New queues are refused while draining.
func (s *Server) queueFor(key qkey) (*queue, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	if q, ok := s.queues[key]; ok {
		return q, nil
	}
	q := newQueue(key, s.cfg.QueueCap, s.cfg.TenantQueueCap, s.cfg.MaxBatch)
	s.queues[key] = q
	s.dispatchers.Add(1)
	go s.dispatch(q)
	return q, nil
}

// dispatch is one queue's service loop: wait for pending requests,
// coalesce up to MaxBatch / MaxWait, serve the batch on a pooled session.
// It exits once the queue is sealed and empty.
func (s *Server) dispatch(q *queue) {
	defer s.dispatchers.Done()
	for {
		if !s.waitPending(q) {
			return
		}
		s.coalesce(q)
		if batch := q.take(q.maxBatch); len(batch) > 0 {
			s.serveBatch(q, batch)
		}
	}
}

// waitPending blocks until q has a waiting request (true) or is sealed
// and empty (false).
func (s *Server) waitPending(q *queue) bool {
	for {
		size, sealed := q.state()
		if size > 0 {
			return true
		}
		if sealed {
			return false
		}
		select {
		case <-q.wake:
		case <-s.stopc:
			// Sealing happens before stopc closes; loop once more and
			// exit when the queue reads empty.
		}
	}
}

// coalesce holds the batch window open: it returns when the queue holds a
// full batch, the oldest request has waited MaxWait, or the server is
// draining (drain batches as fast as possible).
func (s *Server) coalesce(q *queue) {
	for {
		size, sealed := q.state()
		if sealed || size >= q.maxBatch {
			return
		}
		wait := s.cfg.MaxWait - q.age(time.Now())
		if wait <= 0 {
			return
		}
		timer := time.NewTimer(wait)
		select {
		case <-timer.C:
			return
		case <-q.wake:
			timer.Stop()
		case <-s.stopc:
			timer.Stop()
			return
		}
	}
}

// SessionPanicError is the answer to a request whose operation panicked
// on its serving session. The panic is contained at the dispatcher; the
// session is poisoned — discarded from the pool, never serving another
// request — and only the guilty request pays for it.
type SessionPanicError struct {
	// Op is the operation that panicked.
	Op Op
	// Panic is the recovered panic value.
	Panic any
}

func (e *SessionPanicError) Error() string {
	return fmt.Sprintf("serve: %s panicked on its session (session discarded): %v", e.Op, e.Panic)
}

// serveBatch answers one drained batch: expired requests immediately,
// everything else on warm sessions — coalesced into one session batch
// call for the batchable ops, one call per request for the graph ops.
// The deferred guard is the dispatcher's last resort: the session-call
// panics are recovered at the call sites below, so anything reaching it
// is a bug in the serving path itself — it must still neither kill the
// dispatcher nor strand an admitted request.
func (s *Server) serveBatch(q *queue, batch []*Request) {
	start := time.Now()
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		for _, req := range batch {
			if !req.answered {
				s.respond(q, req, start, Result{Err: fmt.Errorf("serve: internal panic serving batch: %v", r)})
			}
		}
	}()
	live := make([]*Request, 0, len(batch))
	for _, req := range batch {
		if err := req.ctx.Err(); err != nil {
			wait := start.Sub(req.enqueued)
			s.ledger.expired(req.Tenant, wait)
			req.answered = true
			req.done <- Result{Err: err, QueueWait: wait}
			continue
		}
		live = append(live, req)
	}
	if len(live) == 0 {
		return
	}
	if q.key.op.batchable() {
		s.serveProducts(q, live, start)
	} else {
		s.serveGraphOps(q, live, start)
	}
	if dur := time.Since(start); len(live) > 0 {
		q.observe(dur / time.Duration(len(live)))
	}
}

// respond completes one request: stamps queue wait and service time,
// folds the result into the tenant ledger, and delivers it.
func (s *Server) respond(q *queue, req *Request, start time.Time, res Result) {
	now := time.Now()
	res.QueueWait = start.Sub(req.enqueued)
	res.Service = now.Sub(start)
	s.ledger.served(req.Tenant, &res)
	req.answered = true
	req.done <- res
}

// serveProducts coalesces product requests into the session batch entry
// points, each item under its own request context and per-request fault
// and certification options. A batch call stops at its first failing
// item; the failing request is answered with its error and the batch
// resumes with the rest, so one cancelled or over-limit request cannot
// fail its co-batchers.
//
// A panic escaping a session call poisons the session: it is discarded —
// never re-pooled — and the unanswered requests re-run one per batch on a
// fresh session until the guilty one panics alone and is answered with
// *SessionPanicError. (A batch panic unwinds before the session can
// report which item it was on, and any results computed earlier in that
// call are lost with it; the ops are deterministic, so re-running the
// survivors just re-derives the same answers.)
func (s *Server) serveProducts(q *queue, reqs []*Request, start time.Time) {
	remaining := reqs
	solo := false
	for len(remaining) > 0 {
		sess, _, err := s.pool.Get(q.key.n)
		if err != nil {
			for _, req := range remaining {
				s.respond(q, req, start, Result{Err: err})
			}
			return
		}
		poisoned := false
		for len(remaining) > 0 {
			batch := remaining
			if solo {
				batch = remaining[:1]
			}
			items := make([]cc.BatchItem, len(batch))
			for i, req := range batch {
				items[i] = cc.BatchItem{A: req.A, B: req.B, Opts: req.callOptions()}
			}
			prods, stats, err, panicked := runProducts(sess, q.key.op, items)
			for i := range prods {
				s.respond(q, batch[i], start, Result{Matrix: prods[i], Stats: stats[i]})
			}
			remaining = remaining[len(prods):]
			switch {
			case panicked:
				poisoned = true
				if len(batch) == 1 {
					// Isolated on its own session, the panicking request
					// is the guilty one: typed error, no more retries.
					s.respond(q, remaining[0], start, Result{Err: err})
					remaining = remaining[1:]
					solo = false // survivors may coalesce again
				} else {
					// An unattributable batch panic: isolate the guilty
					// request by re-running one per batch.
					solo = true
				}
			case err == nil:
				// Every item of this batch was served; a solo run keeps
				// draining the rest on the same session.
			case len(prods) < len(batch):
				// The failing item: its error is its answer; resume with
				// the rest.
				s.respond(q, remaining[0], start, Result{Err: err})
				remaining = remaining[1:]
			default:
				// A batch-level failure with nothing to pin it on (engine
				// misconfiguration): everything left gets the error.
				for _, req := range remaining {
					s.respond(q, req, start, Result{Err: err})
				}
				remaining = nil
			}
			if poisoned {
				break
			}
		}
		if poisoned {
			s.pool.Discard(sess)
		} else {
			s.pool.Put(sess)
		}
	}
}

// runProducts makes one session batch call, converting an escaping panic
// — a poisoned session — into a typed error and a poisoned signal. This
// recover (and its twin in runGraphOp) is what keeps a dispatcher alive
// across a panicking run.
func runProducts(sess *cc.Clique, op Op, items []cc.BatchItem) (prods []cc.Mat, stats []cc.Stats, err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			prods, stats = nil, nil
			err = &SessionPanicError{Op: op, Panic: r}
			panicked = true
		}
	}()
	switch op {
	case OpMatMul:
		prods, stats, err = sess.MatMulBatch(items)
	case OpMatMulBool:
		prods, stats, err = sess.MatMulBoolBatch(items)
	case OpDistanceProduct:
		prods, stats, err = sess.DistanceProductBatch(items)
	default:
		err = fmt.Errorf("serve: op %q is not batchable", op)
	}
	return
}

// serveGraphOps runs the non-batchable requests one session call each,
// sharing one warm session until a call panics; the poisoned session is
// discarded and the rest of the drained batch continues on a fresh one.
func (s *Server) serveGraphOps(q *queue, reqs []*Request, start time.Time) {
	remaining := reqs
	for len(remaining) > 0 {
		sess, _, err := s.pool.Get(q.key.n)
		if err != nil {
			for _, req := range remaining {
				s.respond(q, req, start, Result{Err: err})
			}
			return
		}
		poisoned := false
		for len(remaining) > 0 {
			res, panicked := runGraphOp(sess, remaining[0])
			s.respond(q, remaining[0], start, res)
			remaining = remaining[1:]
			if panicked {
				poisoned = true
				break
			}
		}
		if poisoned {
			s.pool.Discard(sess)
		} else {
			s.pool.Put(sess)
		}
	}
}

// runGraphOp executes one non-batchable request on a session, converting
// an escaping panic into *SessionPanicError and a poisoned signal.
func runGraphOp(sess *cc.Clique, req *Request) (res Result, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			res = Result{Err: &SessionPanicError{Op: req.Op, Panic: r}}
			panicked = true
		}
	}()
	opts := req.callOptions()
	switch req.Op {
	case OpAPSP:
		apsp, stats, err := sess.APSP(weightedOf(req.A), opts...)
		if err != nil {
			return Result{Err: err, Stats: stats}, false
		}
		return Result{Matrix: apsp.Dist, Stats: stats}, false
	case OpTriangles:
		count, stats, err := sess.CountTriangles(graphOf(req.A), opts...)
		return Result{Count: count, Stats: stats, Err: err}, false
	case OpSparseSquare:
		sq, stats, err := sess.SquareAdjacencySparse(graphOf(req.A), opts...)
		return Result{Matrix: sq, Stats: stats, Err: err}, false
	}
	return Result{Err: fmt.Errorf("serve: unknown op %q", req.Op)}, false
}

// Shutdown drains the server gracefully: admission seals immediately (new
// requests get ErrDraining), every already-admitted request is served or
// answered, the dispatchers exit, and the pool closes. ctx bounds the
// wait; on expiry the server keeps draining in the background but
// Shutdown returns ctx.Err(). Shutdown is idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		for _, q := range s.queues {
			q.seal()
		}
		close(s.stopc)
		go func() {
			s.dispatchers.Wait()
			s.pool.Close()
			close(s.drained)
		}()
	}
	s.mu.Unlock()

	select {
	case <-s.drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
