package serve

import (
	"sync"
	"time"
)

// TenantStats is one tenant's cumulative service ledger, aggregated from
// every request the tenant submitted and the session Stats its completed
// operations measured.
type TenantStats struct {
	// Admitted counts requests that entered a queue; Rejected ones turned
	// away by backpressure (queue full, quota, draining); Expired ones
	// whose deadline passed while still queued (they never reach a
	// session); Completed and Failed the terminal outcomes of served
	// requests.
	Admitted, Rejected, Expired, Completed, Failed int64
	// Rounds and Words total the simulated communication cost of the
	// tenant's completed operations.
	Rounds, Words int64
	// RoutedSparse/RoutedDense/RoutedFallback count the density-aware
	// planner's routing decisions across the tenant's operations (see
	// algclique.Stats.Routing).
	RoutedSparse, RoutedDense, RoutedFallback int64
	// QueueWait and Service accumulate time spent queued and in service;
	// MaxQueueWait is the worst single queue wait.
	QueueWait, Service, MaxQueueWait time.Duration
}

// ledger is the server's per-tenant stats registry.
type ledger struct {
	mu sync.Mutex
	m  map[string]*TenantStats
}

func newLedger() *ledger {
	return &ledger{m: make(map[string]*TenantStats)}
}

func (l *ledger) tenant(name string) *TenantStats {
	t := l.m[name]
	if t == nil {
		t = &TenantStats{}
		l.m[name] = t
	}
	return t
}

func (l *ledger) admitted(name string) {
	l.mu.Lock()
	l.tenant(name).Admitted++
	l.mu.Unlock()
}

func (l *ledger) rejected(name string) {
	l.mu.Lock()
	l.tenant(name).Rejected++
	l.mu.Unlock()
}

func (l *ledger) expired(name string, wait time.Duration) {
	l.mu.Lock()
	t := l.tenant(name)
	t.Expired++
	t.QueueWait += wait
	if wait > t.MaxQueueWait {
		t.MaxQueueWait = wait
	}
	l.mu.Unlock()
}

// served folds a terminal Result into the tenant's ledger.
func (l *ledger) served(name string, res *Result) {
	l.mu.Lock()
	t := l.tenant(name)
	if res.Err != nil {
		t.Failed++
	} else {
		t.Completed++
	}
	t.Rounds += res.Stats.Rounds
	t.Words += res.Stats.Words
	switch res.Stats.Routing {
	case "sparse":
		t.RoutedSparse++
	case "dense":
		t.RoutedDense++
	case "dense-fallback":
		t.RoutedFallback++
	}
	t.QueueWait += res.QueueWait
	if res.QueueWait > t.MaxQueueWait {
		t.MaxQueueWait = res.QueueWait
	}
	t.Service += res.Service
	l.mu.Unlock()
}

// snapshot returns a copy of every tenant's stats.
func (l *ledger) snapshot() map[string]TenantStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]TenantStats, len(l.m))
	for name, t := range l.m {
		out[name] = *t
	}
	return out
}
