package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	cc "github.com/algebraic-clique/algclique"
)

// testMat builds a deterministic n×n matrix with small entries.
func testMat(n int, salt int64) [][]int64 {
	m := make([][]int64, n)
	x := uint64(salt)*2862933555777941757 + 3037000493
	for i := range m {
		m[i] = make([]int64, n)
		for j := range m[i] {
			x = x*2862933555777941757 + 3037000493
			m[i][j] = int64(x % 7)
		}
	}
	return m
}

func naiveMul(a, b [][]int64) [][]int64 {
	n := len(a)
	c := make([][]int64, n)
	for i := range c {
		c[i] = make([]int64, n)
		for k := 0; k < n; k++ {
			if a[i][k] == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				c[i][j] += a[i][k] * b[k][j]
			}
		}
	}
	return c
}

func matEq(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestServerMatMulRoundTrip(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown(context.Background())

	a, b := testMat(8, 1), testMat(8, 2)
	res := s.Do(context.Background(), Request{Tenant: "t", Op: OpMatMul, A: a, B: b})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !matEq(res.Matrix, naiveMul(a, b)) {
		t.Fatal("served product differs from the naive reference")
	}
	if res.Stats.Rounds == 0 {
		t.Fatal("served result carries no session stats")
	}
	if res.Service <= 0 || res.QueueWait < 0 {
		t.Fatalf("timings not stamped: wait %v, service %v", res.QueueWait, res.Service)
	}
	ts := s.Tenants()["t"]
	if ts.Admitted != 1 || ts.Completed != 1 || ts.Rounds != res.Stats.Rounds {
		t.Fatalf("tenant ledger = %+v, want the one completed request folded in", ts)
	}
}

func TestServerValidationRejects(t *testing.T) {
	s := New(Config{MinSize: 4, MaxSize: 16})
	defer s.Shutdown(context.Background())
	ctx := context.Background()

	cases := []Request{
		{Tenant: "t", Op: "nope", A: testMat(8, 1), B: testMat(8, 2)},
		{Tenant: "", Op: OpMatMul, A: testMat(8, 1), B: testMat(8, 2)},
		{Tenant: "t", Op: OpMatMul, A: testMat(2, 1), B: testMat(2, 2)},   // below MinSize
		{Tenant: "t", Op: OpMatMul, A: testMat(32, 1), B: testMat(32, 2)}, // above MaxSize
		{Tenant: "t", Op: OpMatMul, A: testMat(8, 1), B: testMat(6, 2)},   // size mismatch
		{Tenant: "t", Op: OpTriangles, A: testMat(8, 1)},                  // not 0/1
		{Tenant: "t", Op: OpTriangles, A: testMat(8, 1), B: testMat(8, 2)},
	}
	for i, req := range cases {
		if res := s.Do(ctx, req); res.Err == nil {
			t.Errorf("case %d: invalid request was accepted", i)
		}
	}
	// None of these may have touched a session or a queue slot.
	if st := s.Pool(); st.Hits+st.Misses != 0 {
		t.Fatalf("invalid requests reached the pool: %+v", st)
	}
}

func TestServerExpiredRequestNeverReachesSession(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown(context.Background())

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired before the dispatcher can reach it
	res := s.Do(ctx, Request{Tenant: "t", Op: OpMatMul, A: testMat(8, 1), B: testMat(8, 2)})
	if !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("Do = %v, want context.Canceled", res.Err)
	}
	// The dispatcher answers the stale request asynchronously; wait for
	// the ledger to record the expiry, then check no session was used.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if ts := s.Tenants()["t"]; ts.Expired == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("expiry never reached the ledger: %+v", s.Tenants()["t"])
		}
		time.Sleep(time.Millisecond)
	}
	if st := s.Pool(); st.Hits+st.Misses != 0 {
		t.Fatalf("expired request checked out a session: %+v", st)
	}
}

func TestServerTenantQuotaUnderHog(t *testing.T) {
	// A long coalescing window keeps the hog's requests queued while the
	// quota and the other tenant's admission are probed.
	s := New(Config{
		QueueCap:       8,
		TenantQueueCap: 4,
		MaxBatch:       16,
		MaxWait:        time.Second,
	})
	defer s.Shutdown(context.Background())

	a, b := testMat(8, 1), testMat(8, 2)
	want := naiveMul(a, b)
	ctx := context.Background()

	var wg sync.WaitGroup
	hogRes := make([]Result, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			hogRes[i] = s.Do(ctx, Request{Tenant: "hog", Op: OpMatMul, A: a, B: b})
		}(i)
	}
	// Wait until all four occupy the queue (the batch window holds them).
	deadline := time.Now().Add(5 * time.Second)
	for s.Tenants()["hog"].Admitted < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("hog backlog never formed: %+v", s.Tenants()["hog"])
		}
		time.Sleep(time.Millisecond)
	}

	res := s.Do(ctx, Request{Tenant: "hog", Op: OpMatMul, A: a, B: b})
	if !errors.Is(res.Err, errTenantQuota) {
		t.Fatalf("hog's 5th request = %v, want tenant quota rejection", res.Err)
	}
	var overload *OverloadError
	if !errors.As(res.Err, &overload) || !overload.Tenant {
		t.Fatalf("hog's 5th request = %#v, want *OverloadError{Tenant: true}", res.Err)
	}

	// The other tenant still gets in: the hog exhausted its quota, not
	// the queue.
	mouse := s.Do(ctx, Request{Tenant: "mouse", Op: OpMatMul, A: a, B: b})
	if mouse.Err != nil {
		t.Fatalf("mouse request rejected while only the hog was over quota: %v", mouse.Err)
	}
	if !matEq(mouse.Matrix, want) {
		t.Fatal("mouse got a wrong product")
	}
	wg.Wait()
	for i, r := range hogRes {
		if r.Err != nil {
			t.Fatalf("hog request %d failed: %v", i, r.Err)
		}
		if !matEq(r.Matrix, want) {
			t.Fatalf("hog request %d got a wrong product", i)
		}
	}
	ts := s.Tenants()["hog"]
	if ts.Rejected != 1 || ts.Completed != 4 {
		t.Fatalf("hog ledger = %+v, want 4 completed / 1 rejected", ts)
	}
}

func TestServerGracefulDrainLosesNothing(t *testing.T) {
	s := New(Config{MaxWait: 20 * time.Millisecond, MaxBatch: 8})

	tenants := []string{"alpha", "beta", "gamma", "delta"}
	ops := []Op{OpMatMul, OpMatMulBool, OpDistanceProduct, OpTriangles}
	const perTenant = 10

	graph := make([][]int64, 8)
	for i := range graph {
		graph[i] = make([]int64, 8)
	}
	for i := 0; i < 7; i++ {
		graph[i][i+1], graph[i+1][i] = 1, 1
	}

	var wg sync.WaitGroup
	results := make(chan Result, len(tenants)*perTenant)
	for ti, tenant := range tenants {
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func(tenant string, k int) {
				defer wg.Done()
				op := ops[k%len(ops)]
				req := Request{Tenant: tenant, Op: op}
				if op == OpTriangles {
					req.A = graph
				} else {
					req.A, req.B = testMat(8, int64(k)), testMat(8, int64(k+100))
				}
				results <- s.Do(context.Background(), req)
			}(tenant, ti*perTenant+i)
		}
	}

	// Shut down while the submissions are in flight: everything admitted
	// must still be answered, everything else must see ErrDraining.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
	close(results)

	var served, drained int
	for res := range results {
		switch {
		case res.Err == nil:
			served++
		case errors.Is(res.Err, ErrDraining):
			drained++
		default:
			t.Fatalf("request lost to unexpected error: %v", res.Err)
		}
	}
	if served+drained != len(tenants)*perTenant {
		t.Fatalf("accounted for %d of %d requests", served+drained, len(tenants)*perTenant)
	}

	var admitted, completed int64
	for _, ts := range s.Tenants() {
		admitted += ts.Admitted
		completed += ts.Completed
	}
	if admitted != int64(served) || completed != admitted {
		t.Fatalf("ledger: admitted %d, completed %d, served %d — admitted requests were lost",
			admitted, completed, served)
	}

	// Shutdown is idempotent and the pool is closed.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	if res := s.Do(context.Background(), Request{Tenant: "late", Op: OpMatMul, A: testMat(8, 1), B: testMat(8, 2)}); !errors.Is(res.Err, ErrDraining) {
		t.Fatalf("post-shutdown Do = %v, want ErrDraining", res.Err)
	}
}

func TestServerGraphOps(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown(context.Background())
	ctx := context.Background()

	// A 4-cycle with one chord: exactly two triangles.
	n := 8
	adj := make([][]int64, n)
	for i := range adj {
		adj[i] = make([]int64, n)
	}
	edge := func(i, j int) { adj[i][j], adj[j][i] = 1, 1 }
	edge(0, 1)
	edge(1, 2)
	edge(2, 3)
	edge(3, 0)
	edge(0, 2)

	res := s.Do(ctx, Request{Tenant: "t", Op: OpTriangles, A: adj})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Count != 2 {
		t.Fatalf("triangles = %d, want 2", res.Count)
	}

	// APSP on a weighted path.
	w := make([][]int64, n)
	for i := range w {
		w[i] = make([]int64, n)
		for j := range w[i] {
			if i != j {
				w[i][j] = cc.Inf
			}
		}
	}
	for i := 0; i < n-1; i++ {
		w[i][i+1] = int64(i + 1)
	}
	res = s.Do(ctx, Request{Tenant: "t", Op: OpAPSP, A: w})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if got := res.Matrix[0][n-1]; got != 1+2+3+4+5+6+7 {
		t.Fatalf("dist[0][%d] = %d, want 28", n-1, got)
	}
	if got := res.Matrix[n-1][0]; !cc.IsInf(got) {
		t.Fatalf("dist[%d][0] = %d, want Inf on the directed path", n-1, got)
	}

	res = s.Do(ctx, Request{Tenant: "t", Op: OpSparseSquare, A: adj})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Matrix[1][3] == 0 {
		t.Fatal("square misses the length-2 path 1→2→3")
	}

	// Repeated graph ops on one size must come from the warm pool.
	if st := s.Pool(); st.Misses != 1 {
		t.Fatalf("pool stats = %+v, want a single session built", st)
	}
}
