package serve

import (
	"errors"
	"testing"
	"time"
)

func req(tenant string, at time.Time) *Request {
	return &Request{Tenant: tenant, Op: OpMatMul, enqueued: at}
}

func TestQueueAdmitRejections(t *testing.T) {
	q := newQueue(qkey{n: 8, op: OpMatMul}, 4, 2, 4)
	t0 := time.Now()

	if err := q.admit(req("a", t0)); err != nil {
		t.Fatal(err)
	}
	if err := q.admit(req("a", t0)); err != nil {
		t.Fatal(err)
	}
	// Third request from the same tenant exceeds its quota of 2 even
	// though the queue has room.
	err := q.admit(req("a", t0))
	if !errors.Is(err, errTenantQuota) {
		t.Fatalf("over-quota admit = %v, want tenant quota error", err)
	}
	var overload *OverloadError
	if !errors.As(err, &overload) || !overload.Tenant || overload.RetryAfter <= 0 {
		t.Fatalf("over-quota admit = %#v, want *OverloadError{Tenant: true} with a retry hint", err)
	}

	// Other tenants fill the remaining slots; the next admission fails on
	// global capacity regardless of tenant.
	if err := q.admit(req("b", t0)); err != nil {
		t.Fatal(err)
	}
	if err := q.admit(req("c", t0)); err != nil {
		t.Fatal(err)
	}
	err = q.admit(req("d", t0))
	if !errors.Is(err, errQueueFull) {
		t.Fatalf("full-queue admit = %v, want queue-full error", err)
	}
	if !errors.As(err, &overload) || overload.Tenant || overload.RetryAfter <= 0 {
		t.Fatalf("full-queue admit = %#v, want *OverloadError{Tenant: false} with a retry hint", err)
	}

	q.seal()
	if err := q.admit(req("b", t0)); !errors.Is(err, ErrDraining) {
		t.Fatalf("sealed admit = %v, want ErrDraining", err)
	}
	// Sealed queues keep their backlog for draining.
	if size, sealed := q.state(); size != 4 || !sealed {
		t.Fatalf("state = (%d, %v), want (4, true)", size, sealed)
	}
}

func TestQueueTakeRoundRobinAcrossTenants(t *testing.T) {
	q := newQueue(qkey{n: 8, op: OpMatMul}, 16, 8, 16)
	t0 := time.Now()

	// A hog tenant enqueues 6 requests before two small tenants enqueue
	// 2 each. A fair batch must interleave, not serve the hog's backlog
	// first.
	for i := 0; i < 6; i++ {
		if err := q.admit(req("hog", t0.Add(time.Duration(i)))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := q.admit(req("x", t0.Add(time.Duration(10+i)))); err != nil {
			t.Fatal(err)
		}
		if err := q.admit(req("y", t0.Add(time.Duration(20+i)))); err != nil {
			t.Fatal(err)
		}
	}

	batch := q.take(6)
	if len(batch) != 6 {
		t.Fatalf("take(6) returned %d requests", len(batch))
	}
	byTenant := map[string]int{}
	for _, r := range batch {
		byTenant[r.Tenant]++
	}
	if byTenant["hog"] != 2 || byTenant["x"] != 2 || byTenant["y"] != 2 {
		t.Fatalf("batch composition = %v, want 2 per tenant", byTenant)
	}
	// FIFO within each tenant: the hog's first two requests come first.
	var hogTimes []time.Time
	for _, r := range batch {
		if r.Tenant == "hog" {
			hogTimes = append(hogTimes, r.enqueued)
		}
	}
	if !hogTimes[0].Equal(t0) || !hogTimes[1].Equal(t0.Add(1)) {
		t.Fatalf("hog requests served out of FIFO order: %v", hogTimes)
	}

	// The remainder is all hog; take drains it and the queue empties.
	rest := q.take(16)
	if len(rest) != 4 {
		t.Fatalf("second take returned %d requests, want 4", len(rest))
	}
	for _, r := range rest {
		if r.Tenant != "hog" {
			t.Fatalf("leftover request from tenant %q", r.Tenant)
		}
	}
	if size, _ := q.state(); size != 0 {
		t.Fatalf("queue size = %d after draining, want 0", size)
	}
}

func TestQueueOldestTracksRemainder(t *testing.T) {
	q := newQueue(qkey{n: 8, op: OpMatMul}, 16, 16, 16)
	t0 := time.Now()
	for i := 0; i < 4; i++ {
		if err := q.admit(req("a", t0.Add(time.Duration(i)*time.Millisecond))); err != nil {
			t.Fatal(err)
		}
	}
	if got := q.age(t0.Add(10 * time.Millisecond)); got != 10*time.Millisecond {
		t.Fatalf("age = %v, want 10ms", got)
	}
	q.take(2)
	// The oldest remaining request was enqueued at t0+2ms.
	if got := q.age(t0.Add(10 * time.Millisecond)); got != 8*time.Millisecond {
		t.Fatalf("age after take = %v, want 8ms", got)
	}
	q.take(16)
	if got := q.age(t0.Add(10 * time.Millisecond)); got != 0 {
		t.Fatalf("age of empty queue = %v, want 0", got)
	}
}
