package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

type wireResult struct {
	Op          string          `json:"op"`
	QueueWaitMs float64         `json:"queue_wait_ms"`
	ServiceMs   float64         `json:"service_ms"`
	Stats       json.RawMessage `json:"stats"`
	Count       int64           `json:"count"`
	Result      [][]int64       `json:"result"`
}

func post(t *testing.T, srv *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestHTTPMatMulRoundTrip(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown(context.Background())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	a, b := testMat(8, 1), testMat(8, 2)
	resp, body := post(t, srv, "/v1/matmul", map[string]any{"tenant": "web", "a": a, "b": b})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	// The streamed body must still be one valid JSON document.
	var res wireResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("streamed response is not valid JSON: %v\n%s", err, body)
	}
	if res.Op != "matmul" {
		t.Fatalf("op = %q", res.Op)
	}
	if !matEq(res.Result, naiveMul(a, b)) {
		t.Fatal("served product differs from the naive reference")
	}
	var stats struct {
		Rounds int64 `json:"Rounds"`
	}
	if err := json.Unmarshal(res.Stats, &stats); err != nil || stats.Rounds == 0 {
		t.Fatalf("stats missing from response: %v (%s)", err, res.Stats)
	}
	if ts := s.Tenants()["web"]; ts.Completed != 1 {
		t.Fatalf("tenant ledger = %+v, want the HTTP request folded in", ts)
	}
}

func TestHTTPTenantHeaderAndTriangles(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown(context.Background())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	n := 8
	adj := make([][]int64, n)
	for i := range adj {
		adj[i] = make([]int64, n)
	}
	adj[0][1], adj[1][0] = 1, 1
	adj[1][2], adj[2][1] = 1, 1
	adj[0][2], adj[2][0] = 1, 1

	raw, _ := json.Marshal(map[string]any{"a": adj})
	req, _ := http.NewRequest("POST", srv.URL+"/v1/triangles", bytes.NewReader(raw))
	req.Header.Set("X-Tenant", "hdr-tenant")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var res wireResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Count != 1 {
		t.Fatalf("count = %d, want 1", res.Count)
	}
	if ts := s.Tenants()["hdr-tenant"]; ts.Completed != 1 {
		t.Fatalf("X-Tenant header was not honoured: %+v", s.Tenants())
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	s := New(Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	a, b := testMat(8, 1), testMat(8, 2)

	// Unknown op and malformed shapes are 400s.
	if resp, body := post(t, srv, "/v1/transpose", map[string]any{"tenant": "t", "a": a}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown op: status %d: %s", resp.StatusCode, body)
	}
	if resp, body := post(t, srv, "/v1/matmul", map[string]any{"tenant": "t", "a": a}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing operand: status %d: %s", resp.StatusCode, body)
	}
	var envelope wireError
	resp, body := post(t, srv, "/v1/matmul", map[string]any{"a": a, "b": b})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing tenant: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &envelope); err != nil || envelope.Error == "" {
		t.Fatalf("error envelope missing: %v (%s)", err, body)
	}

	// An unmeetable deadline is a 504: the request expires in the queue.
	resp, _ = post(t, srv, "/v1/matmul", map[string]any{"tenant": "t", "a": a, "b": b, "deadline_ms": 1})
	if resp.StatusCode != http.StatusGatewayTimeout && resp.StatusCode != http.StatusOK {
		t.Fatalf("tight deadline: status %d", resp.StatusCode)
	}

	// Healthz flips and queries get 503 once draining.
	if resp, err := srv.Client().Get(srv.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if resp, err := srv.Client().Get(srv.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}
	resp, body = post(t, srv, "/v1/matmul", map[string]any{"tenant": "t", "a": a, "b": b})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining query: status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining rejection carries no Retry-After")
	}
}

func TestHTTPStats(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown(context.Background())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	a, b := testMat(8, 1), testMat(8, 2)
	if resp, body := post(t, srv, "/v1/matmul", map[string]any{"tenant": "t", "a": a, "b": b}); resp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d: %s", resp.StatusCode, body)
	}
	resp, err := srv.Client().Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Draining bool                   `json:"draining"`
		Pool     PoolStats              `json:"pool"`
		Queues   []QueueStats           `json:"queues"`
		Tenants  map[string]TenantStats `json:"tenants"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Draining {
		t.Fatal("stats report draining on a live server")
	}
	if doc.Pool.Misses != 1 {
		t.Fatalf("pool stats = %+v, want one session built", doc.Pool)
	}
	if len(doc.Queues) != 1 || doc.Queues[0].Op != OpMatMul || doc.Queues[0].N != 8 {
		t.Fatalf("queue stats = %+v", doc.Queues)
	}
	if doc.Tenants["t"].Completed != 1 {
		t.Fatalf("tenant stats = %+v", doc.Tenants)
	}
}
