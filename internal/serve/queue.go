package serve

import (
	"sync"
	"time"
)

// qkey identifies one admission queue: requests of one operation on one
// instance size (the op fixes the algebra) coalesce into session batches.
type qkey struct {
	n  int
	op Op
}

// tenantq is one tenant's FIFO inside a queue.
type tenantq struct {
	name string
	reqs []*Request
}

// queue is a bounded, tenant-fair admission queue for one (size, op) key.
// Requests are held in per-tenant FIFOs; take composes batches round-robin
// across tenants, so a hog tenant's backlog cannot starve the others —
// each take hands every waiting tenant an equal share of the batch
// (up to rounding). Admission rejects when the queue is full or when one
// tenant holds more than its quota of the slots, which bounds how much of
// the shared capacity a single tenant can occupy.
type queue struct {
	key          qkey
	cap          int
	tenantQuota  int
	maxBatch     int
	ewmaPerReqNs int64 // smoothed per-request service time, retry estimates

	mu      sync.Mutex
	size    int
	sealed  bool
	tenants map[string]*tenantq
	ring    []*tenantq // round-robin order over tenants with waiting requests
	next    int        // ring cursor
	oldest  time.Time  // enqueue time of the oldest waiting request
	wake    chan struct{}
}

func newQueue(key qkey, capacity, tenantQuota, maxBatch int) *queue {
	return &queue{
		key: key, cap: capacity, tenantQuota: tenantQuota, maxBatch: maxBatch,
		tenants: make(map[string]*tenantq),
		wake:    make(chan struct{}, 1),
	}
}

// admit enqueues a request, or rejects it with *OverloadError (queue or
// tenant quota full) / ErrDraining (sealed).
func (q *queue) admit(r *Request) error {
	q.mu.Lock()
	if q.sealed {
		q.mu.Unlock()
		return ErrDraining
	}
	if q.size >= q.cap {
		retry := q.retryAfterLocked(q.size)
		q.mu.Unlock()
		return &OverloadError{RetryAfter: retry}
	}
	tq := q.tenants[r.Tenant]
	if tq == nil {
		tq = &tenantq{name: r.Tenant}
		q.tenants[r.Tenant] = tq
	}
	if len(tq.reqs) >= q.tenantQuota {
		retry := q.retryAfterLocked(len(tq.reqs))
		q.mu.Unlock()
		return &OverloadError{RetryAfter: retry, Tenant: true}
	}
	if len(tq.reqs) == 0 {
		q.ring = append(q.ring, tq)
	}
	tq.reqs = append(tq.reqs, r)
	if q.size == 0 {
		q.oldest = r.enqueued
	}
	q.size++
	q.mu.Unlock()
	select {
	case q.wake <- struct{}{}:
	default:
	}
	return nil
}

// retryAfterLocked estimates when a rejected caller should retry: the
// depth ahead of it times the smoothed per-request service time, clamped
// to a sane range (mu held).
func (q *queue) retryAfterLocked(depth int) time.Duration {
	per := time.Duration(q.ewmaPerReqNs)
	if per <= 0 {
		per = 5 * time.Millisecond
	}
	retry := per * time.Duration(depth)
	if retry < 10*time.Millisecond {
		retry = 10 * time.Millisecond
	}
	if retry > 5*time.Second {
		retry = 5 * time.Second
	}
	return retry
}

// observe folds a completed batch's per-request service time into the
// retry estimate.
func (q *queue) observe(perReq time.Duration) {
	q.mu.Lock()
	if q.ewmaPerReqNs == 0 {
		q.ewmaPerReqNs = perReq.Nanoseconds()
	} else {
		q.ewmaPerReqNs = (3*q.ewmaPerReqNs + perReq.Nanoseconds()) / 4
	}
	q.mu.Unlock()
}

// state reports the queue depth and whether it is sealed.
func (q *queue) state() (size int, sealed bool) {
	q.mu.Lock()
	size, sealed = q.size, q.sealed
	q.mu.Unlock()
	return
}

// age returns how long the oldest waiting request has been queued.
func (q *queue) age(now time.Time) time.Duration {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.size == 0 {
		return 0
	}
	return now.Sub(q.oldest)
}

// seal rejects all future admissions; already-queued requests stay and
// must be drained.
func (q *queue) seal() {
	q.mu.Lock()
	q.sealed = true
	q.mu.Unlock()
	select {
	case q.wake <- struct{}{}:
	default:
	}
}

// take removes up to max requests, round-robin across the tenants with
// waiting requests — one request per tenant per ring pass — preserving
// each tenant's FIFO order.
func (q *queue) take(max int) []*Request {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.size == 0 || max <= 0 {
		return nil
	}
	if max > q.size {
		max = q.size
	}
	batch := make([]*Request, 0, max)
	for len(batch) < max && len(q.ring) > 0 {
		if q.next >= len(q.ring) {
			q.next = 0
		}
		tq := q.ring[q.next]
		batch = append(batch, tq.reqs[0])
		tq.reqs = tq.reqs[1:]
		if len(tq.reqs) == 0 {
			q.ring = append(q.ring[:q.next], q.ring[q.next+1:]...)
			// The cursor now points at the next tenant already.
		} else {
			q.next++
		}
	}
	q.size -= len(batch)
	if q.size > 0 {
		// The oldest remaining request sets the next coalescing window.
		oldest := time.Time{}
		for _, tq := range q.ring {
			if len(tq.reqs) > 0 && (oldest.IsZero() || tq.reqs[0].enqueued.Before(oldest)) {
				oldest = tq.reqs[0].enqueued
			}
		}
		q.oldest = oldest
	}
	return batch
}
