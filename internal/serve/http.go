package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"time"
)

// wireRequest is the JSON body of a query: POST /v1/{op}. The tenant may
// come from the body or the X-Tenant header (the body wins). DeadlineMs,
// when positive, bounds the request end to end — queue wait included —
// and expired requests are answered without ever reaching a session.
type wireRequest struct {
	Tenant     string    `json:"tenant"`
	A          [][]int64 `json:"a"`
	B          [][]int64 `json:"b,omitempty"`
	Seed       uint64    `json:"seed,omitempty"`
	DeadlineMs int64     `json:"deadline_ms,omitempty"`
}

// wireError is the JSON error envelope.
type wireError struct {
	Error string `json:"error"`
}

// maxBodyBytes bounds a request body: a 2048² dense int64 matrix in JSON
// stays well under it, and it stops an abusive tenant from buffering
// gigabytes into the decoder.
const maxBodyBytes = 1 << 28

// Handler returns the server's HTTP API:
//
//	POST /v1/{op}   run a query (op ∈ matmul, matmul-bool,
//	                distance-product, apsp, triangles, sparse-square)
//	GET  /stats     pool, queue, and per-tenant ledger snapshot
//	GET  /healthz   200 while serving, 503 while draining
//
// Query responses stream: the stats header fields are written first and
// the result matrix follows row by row with periodic flushes, so a large
// product starts arriving while later rows are still being encoded.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/{op}", s.handleQuery)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	op := Op(r.PathValue("op"))
	var body wireRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad request body: %w", err))
		return
	}
	tenant := body.Tenant
	if tenant == "" {
		tenant = r.Header.Get("X-Tenant")
	}

	ctx := r.Context()
	if body.DeadlineMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(body.DeadlineMs)*time.Millisecond)
		defer cancel()
	}
	res := s.Do(ctx, Request{
		Tenant: tenant,
		Op:     op,
		A:      body.A,
		B:      body.B,
		Seed:   body.Seed,
	})
	if res.Err != nil {
		status, retry := statusOf(res.Err)
		if retry > 0 {
			w.Header().Set("Retry-After", fmt.Sprintf("%d", int64(math.Ceil(retry.Seconds()))))
		}
		writeError(w, status, res.Err)
		return
	}
	writeResult(w, op, &res)
}

// statusOf maps a service error to its HTTP status and, for backpressure,
// the Retry-After hint.
func statusOf(err error) (status int, retry time.Duration) {
	var overload *OverloadError
	switch {
	case errors.As(err, &overload):
		return http.StatusTooManyRequests, overload.RetryAfter
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, time.Second
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, 0
	case errors.Is(err, context.Canceled):
		// The client went away; the status is moot but 499-style
		// semantics map closest onto 504 here.
		return http.StatusGatewayTimeout, 0
	default:
		return http.StatusBadRequest, 0
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(wireError{Error: err.Error()})
}

// flushEvery is how many result rows are written between flushes when
// streaming a matrix.
const flushEvery = 64

// writeResult streams one successful result. The scalar fields (stats,
// timings, count) come first so a client can start consuming them while
// the matrix rows — the O(n²) part — stream behind with periodic flushes.
func writeResult(w http.ResponseWriter, op Op, res *Result) {
	w.Header().Set("Content-Type", "application/json")
	stats, err := json.Marshal(res.Stats)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	flusher, _ := w.(http.Flusher)
	fmt.Fprintf(w, `{"op":%q,"queue_wait_ms":%.3f,"service_ms":%.3f,"stats":%s`,
		op, float64(res.QueueWait.Microseconds())/1000, float64(res.Service.Microseconds())/1000, stats)
	if op == OpTriangles {
		fmt.Fprintf(w, `,"count":%d`, res.Count)
	}
	if res.Matrix != nil {
		fmt.Fprint(w, `,"result":[`)
		if flusher != nil {
			flusher.Flush()
		}
		for i, row := range res.Matrix {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			fmt.Fprint(w, "\n")
			raw, err := json.Marshal(row)
			if err != nil {
				return // headers are gone; nothing better to do mid-stream
			}
			w.Write(raw)
			if flusher != nil && (i+1)%flushEvery == 0 {
				flusher.Flush()
			}
		}
		fmt.Fprint(w, "\n]")
	}
	fmt.Fprint(w, "}\n")
	if flusher != nil {
		flusher.Flush()
	}
}

// serverStats is the /stats document.
type serverStats struct {
	Draining bool                   `json:"draining"`
	Pool     PoolStats              `json:"pool"`
	Queues   []QueueStats           `json:"queues"`
	Tenants  map[string]TenantStats `json:"tenants"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(serverStats{
		Draining: s.Draining(),
		Pool:     s.Pool(),
		Queues:   s.Queues(),
		Tenants:  s.Tenants(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}
