package serve

import (
	"sync"
	"testing"

	cc "github.com/algebraic-clique/algclique"
)

func TestPoolHitMissAccounting(t *testing.T) {
	p := NewPool(0)
	defer p.Close()

	s1, hit, err := p.Get(8)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first Get reported a hit on an empty pool")
	}
	p.Put(s1)
	s2, hit, err := p.Get(8)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("second Get for the same size missed a warm pool")
	}
	if s2 != s1 {
		t.Fatal("second Get did not return the cached session")
	}
	if _, hit, _ := p.Get(16); hit {
		t.Fatal("Get for a different size reported a hit")
	}
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 1 hit / 2 misses", st)
	}
	if got := st.HitRate(); got < 0.33 || got > 0.34 {
		t.Fatalf("HitRate() = %v, want 1/3", got)
	}
}

func TestPoolBudgetTrimsThenEvicts(t *testing.T) {
	// Budget fits two warm size-8 sessions plus one trimmed residual.
	budget := 2*sessionBytes(8) + trimmedBytes(8)
	p := NewPool(budget)
	defer p.Close()

	var sess []*cc.Clique
	for i := 0; i < 3; i++ {
		s, _, err := p.Get(8)
		if err != nil {
			t.Fatal(err)
		}
		sess = append(sess, s)
	}
	// Three in use is over budget, but in-use sessions are never touched.
	if st := p.Stats(); st.Trims != 0 || st.Evictions != 0 {
		t.Fatalf("in-use sessions were shrunk: %+v", st)
	}
	// The first check-in goes over budget with one idle session: tier one
	// trims it, which is enough — no eviction.
	p.Put(sess[0])
	st := p.Stats()
	if st.Trims != 1 || st.Evictions != 0 {
		t.Fatalf("after first Put: %+v, want exactly one trim, no eviction", st)
	}
	if st.FootprintBytes > budget {
		t.Fatalf("footprint %d over budget %d after trim", st.FootprintBytes, budget)
	}
	p.Put(sess[1]) // footprint unchanged; still within budget
	if st := p.Stats(); st.Trims != 1 || st.Evictions != 0 {
		t.Fatalf("under-budget Put shrank the pool: %+v", st)
	}

	// A trimmed survivor must still serve: the second Get below pops the
	// trimmed sess[0] (stack order), restores its footprint estimate, and
	// the session runs a real operation.
	if _, hit, err := p.Get(8); err != nil || !hit {
		t.Fatalf("Get = hit %v, err %v; want a warm hit", hit, err)
	}
	revived, hit, err := p.Get(8)
	if err != nil || !hit {
		t.Fatalf("Get = hit %v, err %v; want the trimmed session back", hit, err)
	}
	a := make([][]int64, 8)
	for i := range a {
		a[i] = make([]int64, 8)
	}
	a[0][1], a[1][0] = 1, 1
	if _, _, err := revived.MatMul(a, a); err != nil {
		t.Fatalf("trimmed-then-revived session failed: %v", err)
	}

	// Tier two: shrink the budget below what trimming alone can reach and
	// check the pool evicts down to it, LRU-first.
	p.Put(revived)
	p.Put(sess[1])
	p.Put(sess[2])
	p.mu.Lock()
	p.budget = trimmedBytes(8)
	p.shrinkLocked()
	p.mu.Unlock()
	st = p.Stats()
	if st.Evictions == 0 {
		t.Fatalf("pool never evicted under a tight budget: %+v", st)
	}
	if st.FootprintBytes > trimmedBytes(8) {
		t.Fatalf("footprint %d over budget %d after eviction", st.FootprintBytes, trimmedBytes(8))
	}
	if st.Idle != 1 {
		t.Fatalf("idle = %d after eviction pass, want 1", st.Idle)
	}
}

func TestPoolLRUEvictionOrder(t *testing.T) {
	p := NewPool(0)
	defer p.Close()

	a, _, _ := p.Get(8)
	b, _, _ := p.Get(12)
	p.Put(a) // a is now least recently used
	p.Put(b)

	// Shrink to a budget that only one trimmed session fits: a (LRU) must
	// be evicted, b must survive.
	p.mu.Lock()
	p.budget = trimmedBytes(12) + trimmedBytes(8)/2
	p.shrinkLocked()
	p.mu.Unlock()

	st := p.Stats()
	if st.Idle != 1 {
		t.Fatalf("idle = %d after shrink, want 1 (stats %+v)", st.Idle, st)
	}
	if _, hit, _ := p.Get(12); !hit {
		t.Fatal("most recently used session was evicted before the LRU one")
	}
}

func TestPoolClose(t *testing.T) {
	p := NewPool(0)
	s, _, err := p.Get(8)
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	if _, _, err := p.Get(8); err != ErrPoolClosed {
		t.Fatalf("Get after Close = %v, want ErrPoolClosed", err)
	}
	p.Put(s) // must close the straggler, not cache it
	if st := p.Stats(); st.Idle != 0 || st.InUse != 0 {
		t.Fatalf("closed pool still holds sessions: %+v", st)
	}
}

// TestPoolChurnConcurrent hammers a tightly budgeted pool from many
// goroutines — checkout, run an operation, check in — while a janitor
// loops Shrink. Under -race this exercises Trim and Close racing in-flight
// operations across the pool boundary.
func TestPoolChurnConcurrent(t *testing.T) {
	p := NewPool(sessionBytes(8) + trimmedBytes(12))
	defer p.Close()

	dist := func(n int) [][]int64 {
		w := make([][]int64, n)
		for i := range w {
			w[i] = make([]int64, n)
			for j := range w[i] {
				if i != j {
					w[i][j] = cc.Inf
				}
			}
		}
		for i := 0; i < n-1; i++ {
			w[i][i+1] = int64(i + 1)
		}
		return w
	}
	mats := map[int][][]int64{8: dist(8), 12: dist(12)}

	const workers = 8
	const iters = 20
	stop := make(chan struct{})
	janitorDone := make(chan struct{})
	go func() { // janitor
		defer close(janitorDone)
		for {
			select {
			case <-stop:
				return
			default:
				p.Shrink()
			}
		}
	}()
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := 8
			if g%2 == 1 {
				n = 12
			}
			d := mats[n]
			for i := 0; i < iters; i++ {
				s, _, err := p.Get(n)
				if err != nil {
					errc <- err
					return
				}
				if _, _, err := s.DistanceProduct(d, d); err != nil {
					errc <- err
					p.Put(s)
					return
				}
				p.Put(s)
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	<-janitorDone
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if st := p.Stats(); st.Hits+st.Misses != workers*iters {
		t.Fatalf("pool lost Gets: %+v", st)
	}
}
