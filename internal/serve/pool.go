package serve

import (
	"errors"
	"sync"

	cc "github.com/algebraic-clique/algclique"
)

// ErrPoolClosed is returned by Get after the pool is closed.
var ErrPoolClosed = errors.New("serve: session pool is closed")

// sessionBytes coarsely estimates the resident footprint of a warm
// session for clique size n: the simulator's per-link queue and mailbox
// capacity, the engine scratch (message matrices, block operands), and up
// to four pooled operand buffers are all small multiples of n² words. The
// budget is a control knob driving eviction order, not an accounting
// guarantee.
func sessionBytes(n int) int64 { return 64*int64(n)*int64(n) + 1<<14 }

// trimmedBytes is the post-Trim residual: the pooled buffers and queue
// payloads are released (they rebuild lazily on the next operation), but
// the clique's n×n link table, worker pool, and memoised plan survive.
func trimmedBytes(n int) int64 { return 24*int64(n)*int64(n) + 1<<12 }

// poolEntry is one cached session with its LRU stamp.
type poolEntry struct {
	sess    *cc.Clique
	n       int
	used    uint64 // LRU sequence number of the last Get/Put
	trimmed bool   // Trim released its working set; it regrows on use
}

// Pool caches warm sessions per clique size so the per-size setup the
// session API amortises — networks, memoised plans, scratch pools, operand
// buffers — is paid once per (size, lifetime of the cache) instead of per
// request. Eviction is LRU across all sizes under a configurable memory
// budget, in two tiers: an over-budget pool first Trims idle sessions
// (cheap to revive — the session survives, its buffers rebuild lazily),
// and only then Closes and drops whole sessions. In-use sessions are
// never touched; the budget can therefore be exceeded transiently while
// every session is checked out.
//
// Pool is safe for concurrent use. Get/Put never block on session work:
// session.Trim serialises against in-flight operations via the session's
// own mutex, and the pool only Trims idle (checked-in) sessions.
type Pool struct {
	mu       sync.Mutex
	budget   int64
	opts     []cc.SessionOption
	idle     map[int][]*poolEntry
	inUse    map[*cc.Clique]*poolEntry
	seq      uint64
	resid    int64 // estimated bytes of all cached sessions (idle + in use)
	closed   bool
	hits     int64
	misses   int64
	evicted  int64
	trims    int64
	discards int64
}

// PoolStats is a snapshot of the pool's accounting.
type PoolStats struct {
	// Hits and Misses count Get calls served from the cache vs by
	// building a fresh session.
	Hits, Misses int64
	// Evictions counts sessions closed under memory pressure; Trims
	// counts idle sessions trimmed under pressure (tier one).
	Evictions, Trims int64
	// Discards counts checked-out sessions the serving layer declared
	// poisoned (an operation panicked on them) and Discard closed instead
	// of re-caching.
	Discards int64
	// Idle and InUse count currently cached sessions.
	Idle, InUse int
	// FootprintBytes is the pool's estimated resident footprint;
	// BudgetBytes the configured budget.
	FootprintBytes, BudgetBytes int64
}

// HitRate is Hits/(Hits+Misses), 0 before the first Get.
func (s PoolStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// NewPool builds a session pool with the given memory budget in bytes
// (≤ 0 means unbounded) whose sessions are constructed with opts.
func NewPool(budget int64, opts ...cc.SessionOption) *Pool {
	return &Pool{
		budget: budget,
		opts:   opts,
		idle:   make(map[int][]*poolEntry),
		inUse:  make(map[*cc.Clique]*poolEntry),
	}
}

// Get checks out a session for clique size n, reviving the most recently
// used idle one (hit) or building a fresh session (miss). The caller must
// return it with Put.
func (p *Pool) Get(n int) (sess *cc.Clique, hit bool, err error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, false, ErrPoolClosed
	}
	p.seq++
	if stack := p.idle[n]; len(stack) > 0 {
		e := stack[len(stack)-1]
		p.idle[n] = stack[:len(stack)-1]
		if e.trimmed {
			// The working set regrows as soon as the session runs an op.
			p.resid += sessionBytes(n) - trimmedBytes(n)
			e.trimmed = false
		}
		e.used = p.seq
		p.inUse[e.sess] = e
		p.hits++
		p.mu.Unlock()
		return e.sess, true, nil
	}
	p.misses++
	s, err := cc.NewClique(n, p.opts...)
	if err != nil {
		p.mu.Unlock()
		return nil, false, err
	}
	e := &poolEntry{sess: s, n: n, used: p.seq}
	p.inUse[s] = e
	p.resid += sessionBytes(n)
	p.shrinkLocked()
	p.mu.Unlock()
	return s, false, nil
}

// Put checks a session back in. Sessions the pool does not know (or that
// arrive after Close) are closed instead of cached.
func (p *Pool) Put(sess *cc.Clique) {
	p.mu.Lock()
	e, ok := p.inUse[sess]
	if !ok || p.closed {
		if ok {
			delete(p.inUse, sess)
		}
		p.mu.Unlock()
		if ok {
			sess.Close()
		}
		return
	}
	delete(p.inUse, sess)
	p.seq++
	e.used = p.seq
	p.idle[e.n] = append(p.idle[e.n], e)
	p.shrinkLocked()
	p.mu.Unlock()
}

// Discard removes a checked-out session from the pool permanently and
// closes it — the anti-Put, for sessions poisoned by a panic escaping an
// operation: their internal state cannot be trusted, so they must never
// serve another request. Discarding a session the pool does not know
// still closes it but leaves the accounting untouched.
func (p *Pool) Discard(sess *cc.Clique) {
	if sess == nil {
		return
	}
	p.mu.Lock()
	e, known := p.inUse[sess]
	if known {
		delete(p.inUse, sess)
		// In-use entries are never in the trimmed state (Get clears it).
		p.resid -= sessionBytes(e.n)
		p.discards++
	}
	p.mu.Unlock()
	sess.Close()
}

// Shrink enforces the budget now: Trim idle sessions LRU-first, then
// evict. Serving paths shrink on every Get/Put; a janitor goroutine may
// also call this periodically.
func (p *Pool) Shrink() {
	p.mu.Lock()
	p.shrinkLocked()
	p.mu.Unlock()
}

// shrinkLocked brings the estimated footprint back under budget (mu
// held). Tier one trims the least recently used idle sessions; tier two
// closes them. session.Trim is safe here even if a stale caller raced a
// Put: the session's own mutex serialises Trim against operations.
func (p *Pool) shrinkLocked() {
	if p.budget <= 0 {
		return
	}
	for p.resid > p.budget {
		if e := p.lruIdleLocked(false); e != nil {
			e.sess.Trim()
			e.trimmed = true
			p.resid -= sessionBytes(e.n) - trimmedBytes(e.n)
			p.trims++
			continue
		}
		e := p.lruIdleLocked(true)
		if e == nil {
			return // everything left is in use; transiently over budget
		}
		p.dropLocked(e)
		e.sess.Close()
		p.evicted++
	}
}

// lruIdleLocked returns the least recently used idle entry — skipping
// already-trimmed ones unless trimmedToo is set — or nil.
func (p *Pool) lruIdleLocked(trimmedToo bool) *poolEntry {
	var lru *poolEntry
	for _, stack := range p.idle {
		for _, e := range stack {
			if !trimmedToo && e.trimmed {
				continue
			}
			if lru == nil || e.used < lru.used {
				lru = e
			}
		}
	}
	return lru
}

// dropLocked removes an idle entry from the cache and its footprint from
// the estimate (mu held).
func (p *Pool) dropLocked(e *poolEntry) {
	stack := p.idle[e.n]
	for i, cand := range stack {
		if cand == e {
			p.idle[e.n] = append(stack[:i], stack[i+1:]...)
			break
		}
	}
	if e.trimmed {
		p.resid -= trimmedBytes(e.n)
	} else {
		p.resid -= sessionBytes(e.n)
	}
}

// Stats returns a snapshot of the pool's accounting.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	idle := 0
	for _, stack := range p.idle {
		idle += len(stack)
	}
	return PoolStats{
		Hits: p.hits, Misses: p.misses,
		Evictions: p.evicted, Trims: p.trims,
		Discards: p.discards,
		Idle:     idle, InUse: len(p.inUse),
		FootprintBytes: p.resid, BudgetBytes: p.budget,
	}
}

// Close closes every idle session and marks the pool closed: further Gets
// fail, and sessions still checked out are closed on Put.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	var toClose []*cc.Clique
	for n, stack := range p.idle {
		for _, e := range stack {
			toClose = append(toClose, e.sess)
		}
		delete(p.idle, n)
	}
	p.resid = 0
	p.mu.Unlock()
	for _, s := range toClose {
		s.Close()
	}
}
