package distance

import (
	"fmt"
	"math"

	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/graphs"
	"github.com/algebraic-clique/algclique/internal/ring"
)

// ApproxDistanceProduct computes a (1+delta)-approximate min-plus product
// of matrices with entries in {0, …, M} ∪ {∞} (Lemma 20): for each scale
// i ≤ log_{1+δ} M the entries are divided by (1+δ)^i, capped at
// ~2(1+δ)/δ, pushed through the small-entry distance product of Lemma 18,
// and the best rescaled estimate wins:
//
//	P[u][v] ≤ P̃[u][v] ≤ (1+δ)·P[u][v].
func ApproxDistanceProduct(net *clique.Network, engine ccmm.Engine, s, t *ccmm.RowMat[int64], m int64, delta float64) (*ccmm.RowMat[int64], error) {
	if delta <= 0 || delta > 1 {
		return nil, fmt.Errorf("distance: delta = %v outside (0, 1]: %w", delta, ccmm.ErrSize)
	}
	if m < 1 {
		return nil, fmt.Errorf("distance: entry bound M = %d must be ≥ 1: %w", m, ccmm.ErrSize)
	}
	n := net.N()
	scaleCap := int64(math.Ceil(2*(1+delta)/delta)) + 1
	levels := int(math.Ceil(math.Log(float64(m))/math.Log(1+delta))) + 1

	best := ccmm.NewRowMat[int64](n)
	for v := 0; v < n; v++ {
		for j := 0; j < n; j++ {
			best.Rows[v][j] = ring.Inf
		}
	}
	for i := 0; i < levels; i++ {
		pow := math.Pow(1+delta, float64(i))
		thresh := 2 * math.Pow(1+delta, float64(i+1)) / delta
		scale := func(src *ccmm.RowMat[int64]) *ccmm.RowMat[int64] {
			out := ccmm.NewRowMat[int64](n)
			for v, row := range src.Rows {
				orow := out.Rows[v]
				for j, x := range row {
					if ring.IsInf(x) || float64(x) > thresh {
						orow[j] = ring.Inf
					} else {
						orow[j] = int64(math.Ceil(float64(x)/pow - 1e-9))
					}
				}
			}
			return out
		}
		p, err := DistanceProductSmall(net, engine, scale(s), scale(t), scaleCap)
		if err != nil {
			return nil, err
		}
		for v := 0; v < n; v++ {
			brow, prow := best.Rows[v], p.Rows[v]
			for j := 0; j < n; j++ {
				if ring.IsInf(prow[j]) {
					continue
				}
				est := int64(math.Floor(pow*float64(prow[j]) + 1e-9))
				if est < brow[j] {
					brow[j] = est
				}
			}
		}
	}
	return best, nil
}

// ApproxOpts configures APSPApprox.
type ApproxOpts struct {
	// Delta is the per-product rounding parameter δ; the end-to-end stretch
	// is (1+δ)^⌈log₂ n⌉. Zero selects 1/⌈log₂ n⌉², giving the paper's
	// (1+o(1)) stretch (Theorem 9).
	Delta float64
}

// APSPApprox computes (1+ε)-approximate all-pairs shortest paths for
// directed graphs with non-negative integer weights (Theorem 9): iterated
// squaring where every distance product is the Lemma 20 approximation.
// After ⌈log₂ n⌉ squarings every estimate D̃ satisfies
//
//	d(u,v) ≤ D̃[u][v] ≤ (1+δ)^⌈log₂ n⌉ · d(u,v).
//
// The returned stretch bound is that factor.
func APSPApprox(net *clique.Network, engine ccmm.Engine, g *graphs.Weighted, opts ApproxOpts) (dist *ccmm.RowMat[int64], stretch float64, err error) {
	if err := checkWeightedSize(net, g); err != nil {
		return nil, 0, err
	}
	n := net.N()
	iters := log2Ceil(n)
	delta := opts.Delta
	if delta == 0 {
		l := float64(iters)
		if l < 1 {
			l = 1
		}
		delta = 1 / (l * l)
	}
	if delta <= 0 || delta > 1 {
		return nil, 0, fmt.Errorf("distance: delta = %v outside (0, 1]: %w", delta, ccmm.ErrSize)
	}
	w := weightRows(g)
	var maxW int64 = 1
	for v := 0; v < n; v++ {
		for j, x := range w.Rows[v] {
			if v == j || ring.IsInf(x) {
				continue
			}
			if x < 0 {
				return nil, 0, fmt.Errorf("distance: weight (%d,%d) = %d; approximate APSP needs non-negative weights: %w",
					v, j, x, ccmm.ErrSize)
			}
			if x > maxW {
				maxW = x
			}
		}
	}
	// Entry bound after i squarings: path weights ≤ n·maxW, inflated by the
	// accumulated stretch; bound everything by that once.
	bound := float64(int64(n)*maxW) * math.Pow(1+delta, float64(iters))
	m := int64(math.Ceil(bound)) + 1

	for iter := 0; iter < iters; iter++ {
		net.Phase(fmt.Sprintf("apsp-approx/square-%d", iter))
		w, err = ApproxDistanceProduct(net, engine, w, w, m, delta)
		if err != nil {
			return nil, 0, err
		}
	}
	return w, math.Pow(1+delta, float64(iters)), nil
}
