package distance

import (
	"fmt"
	"math/rand/v2"

	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/ring"
)

// Oracle computes a distance product of distributed matrices; the witness
// machinery of §3.4 is generic over it, so it works with the semiring (3D)
// product, the Lemma 18 ring-embedded product, or the naive baseline.
type Oracle func(s, t *ccmm.RowMat[int64]) (*ccmm.RowMat[int64], error)

// MinPlusOracle adapts ccmm.MulMinPlus to the Oracle interface.
func MinPlusOracle(net *clique.Network, engine ccmm.Engine) Oracle {
	sc := ccmm.NewScratch() // shared by every product the oracle serves
	return func(s, t *ccmm.RowMat[int64]) (*ccmm.RowMat[int64], error) {
		return ccmm.MulMinPlusWith(net, engine, sc, s, t)
	}
}

// SmallWeightOracle adapts DistanceProductSmall (Lemma 18) to the Oracle
// interface for entries bounded by m.
func SmallWeightOracle(net *clique.Network, engine ccmm.Engine, m int64) Oracle {
	sc := ccmm.NewScratch() // shared by every product the oracle serves
	return func(s, t *ccmm.RowMat[int64]) (*ccmm.RowMat[int64], error) {
		return distanceProductSmall(net, engine, sc, s, t, m)
	}
}

// WitnessOpts configures FindWitnesses.
type WitnessOpts struct {
	// Seed drives the sampled column subsets.
	Seed uint64
	// Repetitions is the paper's c·log n trials per subset size; 0 selects
	// 4·(⌈log₂ n⌉+1).
	Repetitions int
}

// FindWitnesses recovers a witness matrix Q for a distance product
// P = S ⋆ T (Lemma 21, §3.4): Q[u][v] = w with S[u][w] + T[w][v] = P[u][v]
// for every finite entry, using only distance-product calls against the
// oracle plus O(1)-round verification exchanges.
//
// Pairs with a unique witness are found by O(log n) bit-masked products;
// general pairs by random column subsets of geometric sizes, each subset
// re-running the unique-witness probe. All candidates are explicitly
// verified in-network, so the result is always sound; if sampling fails to
// resolve every pair (probability n^{-Ω(1)} with the default repetitions),
// an error is returned.
func FindWitnesses(net *clique.Network, oracle Oracle, s, t, p *ccmm.RowMat[int64], opts WitnessOpts) (*ccmm.RowMat[int64], error) {
	n := net.N()
	if err := validateSameSize(n, s, t, p); err != nil {
		return nil, err
	}
	reps := opts.Repetitions
	if reps <= 0 {
		reps = 4 * (log2Ceil(n) + 1)
	}
	q := ccmm.NewRowMat[int64](n)
	resolved := make([][]bool, n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			q.Rows[u][v] = ring.NoWitness
			// Infinite product entries need no witness.
		}
		resolved[u] = make([]bool, n)
		for v := 0; v < n; v++ {
			resolved[u][v] = ring.IsInf(p.Rows[u][v])
		}
	}
	// Column view of T, used by every verification round (one round).
	net.Phase("witness/transpose")
	tcol := transposeExchange(net, t)

	full := make([]bool, n)
	for i := range full {
		full[i] = true
	}
	tryProbe := func(subset []bool) error {
		cand, err := uniqueWitnessProbe(net, oracle, s, t, subset)
		if err != nil {
			return err
		}
		return verifyAndMerge(net, s, p, tcol, cand, q, resolved)
	}
	// Unique-witness pass over the full column set.
	if err := tryProbe(full); err != nil {
		return nil, err
	}
	if allResolved(net, resolved) {
		return q, nil
	}
	// Sampling: subset sizes 2^i; each size repeated `reps` times. A pair
	// with r witnesses, n/2^{i+1} ≤ r < n/2^i, sees exactly one sampled
	// witness with constant probability (Seidel's argument).
	rng := rand.New(rand.NewPCG(opts.Seed, 0x9d2c5680))
	for i := 0; (1 << i) <= n; i++ {
		size := 1 << i
		for j := 0; j < reps; j++ {
			subset := make([]bool, n)
			for k := 0; k < size; k++ {
				subset[rng.IntN(n)] = true
			}
			if err := tryProbe(subset); err != nil {
				return nil, err
			}
			if allResolved(net, resolved) {
				return q, nil
			}
		}
	}
	missing := 0
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if !resolved[u][v] {
				missing++
			}
		}
	}
	return nil, fmt.Errorf("distance: witness sampling left %d pairs unresolved; increase Repetitions", missing)
}

func validateSameSize(n int, mats ...*ccmm.RowMat[int64]) error {
	for _, m := range mats {
		if m.N() != n {
			return fmt.Errorf("distance: matrix size %d on %d-node clique: %w", m.N(), n, ccmm.ErrSize)
		}
	}
	return nil
}

// uniqueWitnessProbe runs the bit-probing of §3.4 within the given column
// subset: for each bit position it multiplies the masked operands and marks
// the bit where the masked product equals the subset product. For pairs
// with a unique witness in the subset, the assembled index is that witness.
func uniqueWitnessProbe(net *clique.Network, oracle Oracle, s, t *ccmm.RowMat[int64], subset []bool) (*ccmm.RowMat[int64], error) {
	n := net.N()
	net.Phase("witness/probe")
	base, err := oracle(maskCols(s, subset), maskRows(t, subset))
	if err != nil {
		return nil, err
	}
	cand := ccmm.NewRowMat[int64](n)
	bits := log2Ceil(n)
	if bits == 0 {
		bits = 1 // n = 1 still needs one probe to identify index 0… trivially
	}
	for i := 0; i < bits; i++ {
		vi := make([]bool, n)
		for v := 0; v < n; v++ {
			vi[v] = subset[v] && (v>>i)&1 == 1
		}
		pi, err := oracle(maskCols(s, vi), maskRows(t, vi))
		if err != nil {
			return nil, err
		}
		for u := 0; u < n; u++ {
			prow, brow, crow := pi.Rows[u], base.Rows[u], cand.Rows[u]
			for v := 0; v < n; v++ {
				if !ring.IsInf(brow[v]) && prow[v] == brow[v] {
					crow[v] |= 1 << i
				}
			}
		}
	}
	// Pairs infinite in the subset product have no candidate.
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if ring.IsInf(base.Rows[u][v]) {
				cand.Rows[u][v] = ring.NoWitness
			}
		}
	}
	return cand, nil
}

func maskCols(s *ccmm.RowMat[int64], keep []bool) *ccmm.RowMat[int64] {
	n := len(s.Rows)
	out := ccmm.NewRowMat[int64](n)
	for u := 0; u < n; u++ {
		row, src := out.Rows[u], s.Rows[u]
		for v := 0; v < n; v++ {
			if keep[v] {
				row[v] = src[v]
			} else {
				row[v] = ring.Inf
			}
		}
	}
	return out
}

func maskRows(t *ccmm.RowMat[int64], keep []bool) *ccmm.RowMat[int64] {
	n := len(t.Rows)
	out := ccmm.NewRowMat[int64](n)
	for w := 0; w < n; w++ {
		row, src := out.Rows[w], t.Rows[w]
		for v := 0; v < n; v++ {
			if keep[w] {
				row[v] = src[v]
			} else {
				row[v] = ring.Inf
			}
		}
	}
	return out
}

// transposeExchange gives node v the column T[·][v]: each node sends one
// word per link — one round. On the direct transport the round is charged
// analytically and each node reads its column in place.
func transposeExchange(net *clique.Network, t *ccmm.RowMat[int64]) [][]int64 {
	n := net.N()
	col := make([][]int64, n)
	if net.Transport() != clique.TransportWire {
		net.FlushAnalytic(uniformAllToAll(n))
		net.ForEach(func(v int) {
			col[v] = make([]int64, n)
			for w := 0; w < n; w++ {
				col[v][w] = t.Rows[w][v]
			}
		})
		return col
	}
	for w := 0; w < n; w++ {
		row := t.Rows[w]
		for v := 0; v < n; v++ {
			net.Send(w, v, clique.Word(row[v]))
		}
	}
	mail := net.Flush()
	for v := 0; v < n; v++ {
		col[v] = make([]int64, n)
		for w := 0; w < n; w++ {
			col[v][w] = int64(mail.From(v, w)[0])
		}
	}
	return col
}

// verifyAndMerge checks candidates in-network and records certified
// witnesses. Node u ships (w, S[u][w], P[u][v]) to v — three words per
// link; v, holding column v of T, confirms S[u][w] + T[w][v] = P[u][v] and
// answers with one bit. On the direct transport the probe and reply
// rounds are charged analytically and the verifier reads the three values
// in place — same verdicts, same ledger, no words materialised.
func verifyAndMerge(net *clique.Network, s, p *ccmm.RowMat[int64], tcol [][]int64, cand, q *ccmm.RowMat[int64], resolved [][]bool) error {
	if net.Transport() != clique.TransportWire {
		return verifyAndMergeDirect(net, s, p, tcol, cand, q, resolved)
	}
	n := net.N()
	net.Phase("witness/verify")
	type probe struct{ u, v int }
	asked := make([][]probe, n) // indexed by verifier v
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			w := cand.Rows[u][v]
			if resolved[u][v] || w < 0 || w >= int64(n) {
				continue
			}
			net.Send(u, v, clique.Word(w))
			net.Send(u, v, clique.Word(s.Rows[u][w]))
			net.Send(u, v, clique.Word(p.Rows[u][v]))
			asked[v] = append(asked[v], probe{u: u, v: v})
		}
	}
	mail := net.Flush()
	verdicts := make([][]bool, n)
	net.ForEach(func(v int) {
		verdicts[v] = make([]bool, n)
		mail.Each(v, func(src int, words []clique.Word) {
			w := int64(words[0])
			sval := int64(words[1])
			pval := int64(words[2])
			tval := tcol[v][w]
			if !ring.IsInf(sval) && !ring.IsInf(tval) && sval+tval == pval {
				verdicts[v][src] = true
			}
		})
	})
	// One-bit replies.
	for v := 0; v < n; v++ {
		for _, pr := range asked[v] {
			var bit clique.Word
			if verdicts[v][pr.u] {
				bit = 1
			}
			net.Send(v, pr.u, bit)
		}
	}
	reply := net.Flush()
	for u := 0; u < n; u++ {
		reply.Each(u, func(src int, words []clique.Word) {
			if words[0] == 1 {
				q.Rows[u][src] = cand.Rows[u][src]
				resolved[u][src] = true
			}
		})
	}
	return nil
}

// uniformAllToAll is the analytic load of a one-word-per-ordered-pair
// round: max link load 1 (0 on a single node, where only the free
// self-link exists) and n·(n−1) words.
func uniformAllToAll(n int) (maxLoad, total int64) {
	if n <= 1 {
		return 0, 0
	}
	return 1, int64(n) * int64(n-1)
}

// verifyAndMergeDirect is verifyAndMerge on the data plane: the same two
// charged exchanges (three probe words out, one verdict bit back, per
// unresolved candidate pair), with the verifier evaluating
// S[u][w] + T[w][v] = P[u][v] against the shared state directly.
func verifyAndMergeDirect(net *clique.Network, s, p *ccmm.RowMat[int64], tcol [][]int64, cand, q *ccmm.RowMat[int64], resolved [][]bool) error {
	n := net.N()
	net.Phase("witness/verify")
	probed := func(u, v int) bool {
		w := cand.Rows[u][v]
		return !resolved[u][v] && w >= 0 && w < int64(n)
	}
	var asked int64 // probed pairs on non-self links
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && probed(u, v) {
				asked++
			}
		}
	}
	var maxProbe int64
	if asked > 0 {
		maxProbe = 3
	}
	net.FlushAnalytic(maxProbe, 3*asked)
	verdicts := make([][]bool, n)
	net.ForEach(func(v int) {
		verdicts[v] = make([]bool, n)
		for u := 0; u < n; u++ {
			if !probed(u, v) {
				continue
			}
			w := cand.Rows[u][v]
			sval, tval := s.Rows[u][w], tcol[v][w]
			if !ring.IsInf(sval) && !ring.IsInf(tval) && sval+tval == p.Rows[u][v] {
				verdicts[v][u] = true
			}
		}
	})
	// One-bit replies.
	var maxReply int64
	if asked > 0 {
		maxReply = 1
	}
	net.FlushAnalytic(maxReply, asked)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if probed(u, v) && verdicts[v][u] {
				q.Rows[u][v] = cand.Rows[u][v]
				resolved[u][v] = true
			}
		}
	}
	return nil
}

// allResolved agrees globally (one broadcast round) on whether every pair
// has a witness.
func allResolved(net *clique.Network, resolved [][]bool) bool {
	n := net.N()
	flags := make([]clique.Word, n)
	for u := 0; u < n; u++ {
		done := clique.Word(1)
		for v := 0; v < n; v++ {
			if !resolved[u][v] {
				done = 0
				break
			}
		}
		flags[u] = done
	}
	for _, f := range net.BroadcastWord(flags) {
		if f == 0 {
			return false
		}
	}
	return true
}

// RoutingFromDistances reconstructs a routing table from exact distances:
// the witness of the product W' ⋆ D (W' the weight matrix with the diagonal
// lifted to ∞) at (u, v) is a neighbour w of u with W(u,w) + d(w,v) =
// d(u,v) — a first hop. Witnesses come from FindWitnesses over the given
// oracle.
func RoutingFromDistances(net *clique.Network, oracle Oracle, w, d *ccmm.RowMat[int64], opts WitnessOpts) (*ccmm.RowMat[int64], error) {
	n := net.N()
	if err := validateSameSize(n, w, d); err != nil {
		return nil, err
	}
	lifted := ccmm.NewRowMat[int64](n)
	// The target entries: distances, with the diagonal lifted to ∞ so that
	// the (trivially zero) pairs (u,u) are exempt from witness search — the
	// lifted product cannot reach 0 there.
	target := ccmm.NewRowMat[int64](n)
	for u := 0; u < n; u++ {
		copy(lifted.Rows[u], w.Rows[u])
		lifted.Rows[u][u] = ring.Inf
		copy(target.Rows[u], d.Rows[u])
		target.Rows[u][u] = ring.Inf
	}
	q, err := FindWitnesses(net, oracle, lifted, d, target, opts)
	if err != nil {
		return nil, err
	}
	for u := 0; u < n; u++ {
		q.Rows[u][u] = int64(u)
	}
	return q, nil
}
