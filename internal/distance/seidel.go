package distance

import (
	"fmt"

	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/graphs"
	"github.com/algebraic-clique/algclique/internal/ring"
)

// APSPSeidel computes exact all-pairs shortest-path distances for
// unweighted undirected graphs (Corollary 7) by Seidel's recursion:
// square the graph (one Boolean product), solve APSP on G² recursively,
// and resolve the parity of each distance through the integer product
// S = D·A and the degree test of Lemma 17. The recursion terminates after
// O(log n) levels when G² = G (a disjoint union of cliques), so
// disconnected graphs are handled and yield ring.Inf across components.
func APSPSeidel(net *clique.Network, engine ccmm.Engine, g *graphs.Graph) (*ccmm.RowMat[int64], error) {
	if g.Directed() {
		return nil, fmt.Errorf("distance: Seidel's algorithm requires an undirected graph: %w", ccmm.ErrSize)
	}
	if g.N() != net.N() {
		return nil, fmt.Errorf("distance: graph has %d nodes on an %d-node clique: %w",
			g.N(), net.N(), ccmm.ErrSize)
	}
	n := net.N()
	a := &ccmm.RowMat[int64]{Rows: make([][]int64, n)}
	net.ForEach(func(v int) {
		row := make([]int64, n)
		g.Row(v).ForEach(func(u int) { row[u] = 1 })
		a.Rows[v] = row
	})
	// One scratch pool serves the whole recursion: every level's Boolean
	// squaring and parity product share a working set.
	return seidelRec(net, engine, ccmm.NewScratch(), a, 0, log2Ceil(n)+2)
}

func seidelRec(net *clique.Network, engine ccmm.Engine, sc *ccmm.Scratch, a *ccmm.RowMat[int64], depth, maxDepth int) (*ccmm.RowMat[int64], error) {
	if depth > maxDepth {
		return nil, fmt.Errorf("distance: Seidel recursion exceeded depth %d (internal invariant)", maxDepth)
	}
	n := len(a.Rows)
	net.Phase(fmt.Sprintf("seidel/square-%d", depth))
	a2, err := ccmm.MulBoolWith(net, engine, sc, a, a)
	if err != nil {
		return nil, err
	}
	// B = adjacency of G²: d(u,v) ≤ 2, excluding the diagonal.
	b := ccmm.NewRowMat[int64](n)
	fixpoint := make([]bool, n)
	net.ForEach(func(v int) {
		brow, arow, a2row := b.Rows[v], a.Rows[v], a2.Rows[v]
		same := true
		for j := 0; j < n; j++ {
			if j == v {
				continue
			}
			if arow[j] != 0 || a2row[j] != 0 {
				brow[j] = 1
			}
			if brow[j] != arow[j] {
				same = false
			}
		}
		fixpoint[v] = same
	})
	// One broadcast round agrees on the fixpoint globally.
	flags := make([]clique.Word, n)
	for v := 0; v < n; v++ {
		if !fixpoint[v] {
			flags[v] = 1
		}
	}
	changed := false
	for _, f := range net.BroadcastWord(flags) {
		if f != 0 {
			changed = true
			break
		}
	}
	if !changed {
		// G is a disjoint union of cliques: distance 1 to neighbours,
		// infinity across components.
		d := ccmm.NewRowMat[int64](n)
		net.ForEach(func(v int) {
			row, arow := d.Rows[v], a.Rows[v]
			for j := 0; j < n; j++ {
				switch {
				case j == v:
					row[j] = 0
				case arow[j] != 0:
					row[j] = 1
				default:
					row[j] = ring.Inf
				}
			}
		})
		return d, nil
	}

	d2, err := seidelRec(net, engine, sc, b, depth+1, maxDepth)
	if err != nil {
		return nil, err
	}

	// Degrees of G are broadcast once (one round); the local sums fan out
	// over the worker pool, one node per task.
	net.Phase(fmt.Sprintf("seidel/parity-%d", depth))
	degWords := make([]clique.Word, n)
	net.ForEach(func(v int) {
		var deg int64
		for _, x := range a.Rows[v] {
			deg += x
		}
		degWords[v] = clique.Word(deg)
	})
	bc := net.BroadcastWord(degWords)
	degs := make([]int64, n)
	for v := 0; v < n; v++ {
		degs[v] = int64(bc[v])
	}

	// S = D₂'·A over the integers, with infinities capped to n: the capped
	// entries only involve cross-component pairs, whose output stays ∞, and
	// capping keeps the product within int64 (true distances are < n).
	capped := ccmm.NewRowMat[int64](n)
	net.ForEach(func(v int) {
		crow, drow := capped.Rows[v], d2.Rows[v]
		for j := 0; j < n; j++ {
			if ring.IsInf(drow[j]) {
				crow[j] = int64(n)
			} else {
				crow[j] = drow[j]
			}
		}
	})
	s, err := ccmm.MulIntWith(net, engine, sc, capped, a)
	if err != nil {
		return nil, err
	}

	// Lemma 17: d(u,v) = 2·d₂(u,v) − 1 exactly when S[u][v] < d₂(u,v)·deg(v).
	d := ccmm.NewRowMat[int64](n)
	net.ForEach(func(u int) {
		row, d2row, srow := d.Rows[u], d2.Rows[u], s.Rows[u]
		for v := 0; v < n; v++ {
			switch {
			case u == v:
				row[v] = 0
			case ring.IsInf(d2row[v]):
				row[v] = ring.Inf
			case srow[v] < d2row[v]*degs[v]:
				row[v] = 2*d2row[v] - 1
			default:
				row[v] = 2 * d2row[v]
			}
		}
	})
	return d, nil
}
