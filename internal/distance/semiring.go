package distance

import (
	"fmt"

	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/graphs"
	"github.com/algebraic-clique/algclique/internal/ring"
)

// APSPSemiring computes exact all-pairs shortest paths and routing tables
// for weighted directed graphs by iterated squaring of the weight matrix
// over the min-plus semiring (Corollary 6): ⌈log₂ n⌉ distance products on
// the 3D algorithm, each O(n^{1/3}) rounds on any clique size (the padded
// cube layout), witnesses riding in-band. Weights may be negative;
// negative cycles are detected and rejected.
func APSPSemiring(net *clique.Network, g *graphs.Weighted) (*Result, error) {
	if err := checkWeightedSize(net, g); err != nil {
		return nil, err
	}
	n := net.N()
	w := weightRows(g)

	// Initial routing table: direct edges point at the target.
	next := ccmm.NewRowMat[int64](n)
	for u := 0; u < n; u++ {
		row := next.Rows[u]
		for v := 0; v < n; v++ {
			switch {
			case u == v:
				row[v] = int64(u)
			case !ring.IsInf(w.Rows[u][v]):
				row[v] = int64(v)
			default:
				row[v] = ring.NoWitness
			}
		}
	}

	// One scratch pool serves every squaring: the ⌈log₂ n⌉ products reuse
	// the same message matrices, payload buffers, and block operands.
	sc := ccmm.NewScratch()
	for iter := 0; iter < log2Ceil(n); iter++ {
		net.Phase(fmt.Sprintf("apsp3d/square-%d", iter))
		w2, q, err := ccmm.DistanceProduct3DScratch(net, sc, w, w)
		if err != nil {
			return nil, err
		}
		// R[u,v] ← R[u, Q[u,v]] where the square strictly improved — a
		// purely local update, since node u owns all three rows involved.
		// Reads go to a snapshot of the previous table so that updates
		// within the same squaring cannot observe each other.
		net.ForEach(func(u int) {
			wrow, w2row := w.Rows[u], w2.Rows[u]
			nrow, qrow := next.Rows[u], q.Rows[u]
			old := make([]int64, n)
			copy(old, nrow)
			for v := 0; v < n; v++ {
				if w2row[v] < wrow[v] {
					nrow[v] = old[qrow[v]]
				}
			}
		})
		w = w2
	}

	// Negative-cycle check: any negative diagonal entry is broadcast.
	diag := make([]clique.Word, n)
	for v := 0; v < n; v++ {
		if w.Rows[v][v] < 0 {
			diag[v] = 1
		}
	}
	for _, flag := range net.BroadcastWord(diag) {
		if flag != 0 {
			return nil, fmt.Errorf("distance: graph contains a negative cycle")
		}
	}
	return &Result{Dist: w, Next: next}, nil
}
