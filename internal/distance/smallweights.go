package distance

import (
	"fmt"

	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/graphs"
	"github.com/algebraic-clique/algclique/internal/ring"
)

// DistanceProductSmall computes the min-plus product S ⋆ T of matrices with
// entries in {0, 1, …, M} ∪ {∞} via the polynomial-ring embedding of
// Lemma 18: entry w becomes the monomial X^w, ∞ becomes 0, the product is
// taken over Z[X]/X^{2M+1} with the selected (ring-capable) engine, and the
// result entry is the degree of the lowest non-zero monomial. Each ring
// element costs 2M+1 words on the wire, realising the paper's O(M·n^ρ)
// round bound.
func DistanceProductSmall(net *clique.Network, engine ccmm.Engine, s, t *ccmm.RowMat[int64], m int64) (*ccmm.RowMat[int64], error) {
	return distanceProductSmall(net, engine, nil, s, t, m)
}

func distanceProductSmall(net *clique.Network, engine ccmm.Engine, sc *ccmm.Scratch, s, t *ccmm.RowMat[int64], m int64) (*ccmm.RowMat[int64], error) {
	if m < 1 {
		return nil, fmt.Errorf("distance: entry bound M = %d must be ≥ 1: %w", m, ccmm.ErrSize)
	}
	n := net.N()
	pr := ring.NewPoly(int(2*m + 1))
	embed := func(src *ccmm.RowMat[int64], name string) (*ccmm.RowMat[ring.PolyElem], error) {
		out := &ccmm.RowMat[ring.PolyElem]{Rows: make([][]ring.PolyElem, len(src.Rows))}
		for v, row := range src.Rows {
			prow := make([]ring.PolyElem, len(row))
			for j, w := range row {
				if !ring.IsInf(w) {
					if w < 0 || w > m {
						return nil, fmt.Errorf("distance: %s entry (%d,%d) = %d outside {0..%d, ∞}: %w",
							name, v, j, w, m, ccmm.ErrSize)
					}
					prow[j] = pr.Monomial(w)
				}
			}
			out.Rows[v] = prow
		}
		return out, nil
	}
	sp, err := embed(s, "left")
	if err != nil {
		return nil, err
	}
	tp, err := embed(t, "right")
	if err != nil {
		return nil, err
	}
	pp, err := ccmm.MulRingWith[ring.PolyElem](net, engine, sc, pr, pr, sp, tp)
	if err != nil {
		return nil, err
	}
	out := ccmm.NewRowMat[int64](n)
	for v := 0; v < n; v++ {
		row := out.Rows[v]
		for j := 0; j < n; j++ {
			if deg, ok := pr.MinDegree(pp.Rows[v][j]); ok {
				row[j] = deg
			} else {
				row[j] = ring.Inf
			}
		}
	}
	return out, nil
}

// APSPBounded computes all-pairs shortest paths up to distance M
// (Lemma 19): iterated squaring where entries above M are truncated to ∞
// before every product, so every product stays within the Lemma 18 regime.
// Output entries are exact distances ≤ M; pairs farther apart (or
// unreachable) are ∞.
func APSPBounded(net *clique.Network, engine ccmm.Engine, w *ccmm.RowMat[int64], m int64) (*ccmm.RowMat[int64], error) {
	return apspBounded(net, engine, ccmm.NewScratch(), w, m)
}

func apspBounded(net *clique.Network, engine ccmm.Engine, sc *ccmm.Scratch, w *ccmm.RowMat[int64], m int64) (*ccmm.RowMat[int64], error) {
	if m < 1 {
		return nil, fmt.Errorf("distance: distance bound M = %d must be ≥ 1: %w", m, ccmm.ErrSize)
	}
	n := net.N()
	cur := truncateAbove(w, m)
	for iter := 0; iter < log2Ceil(n); iter++ {
		net.Phase(fmt.Sprintf("apsp-bounded/square-%d", iter))
		next, err := distanceProductSmall(net, engine, sc, cur, cur, m)
		if err != nil {
			return nil, err
		}
		cur = truncateAbove(next, m)
	}
	return cur, nil
}

func truncateAbove(w *ccmm.RowMat[int64], m int64) *ccmm.RowMat[int64] {
	out := ccmm.NewRowMat[int64](len(w.Rows))
	for v, row := range w.Rows {
		orow := out.Rows[v]
		for j, x := range row {
			if x > m {
				orow[j] = ring.Inf
			} else {
				orow[j] = x
			}
		}
	}
	return out
}

// APSPSmallWeights computes exact APSP for directed graphs with positive
// integer weights and (unknown) weighted diameter U in O~(U·n^ρ) rounds
// (Corollary 8): first the reachability closure via Boolean squaring, then
// APSPBounded under a doubling guess for U until every reachable pair has a
// finite distance.
func APSPSmallWeights(net *clique.Network, engine ccmm.Engine, g *graphs.Weighted) (*ccmm.RowMat[int64], error) {
	if err := checkWeightedSize(net, g); err != nil {
		return nil, err
	}
	n := net.N()
	w := weightRows(g)
	// One scratch pool serves the reachability closure and every bounded
	// squaring of the doubling search.
	sc := ccmm.NewScratch()
	var maxW int64 = 1
	for v := 0; v < n; v++ {
		for j, x := range w.Rows[v] {
			if v == j || ring.IsInf(x) {
				continue
			}
			if x < 1 {
				return nil, fmt.Errorf("distance: weight (%d,%d) = %d; small-weight APSP needs positive weights: %w",
					v, j, x, ccmm.ErrSize)
			}
			if x > maxW {
				maxW = x
			}
		}
	}

	// Reachability closure: Boolean iterated squaring of A ∨ I.
	net.Phase("apsp-smallw/reach")
	reach := ccmm.NewRowMat[int64](n)
	for v := 0; v < n; v++ {
		row := reach.Rows[v]
		for j, x := range w.Rows[v] {
			if v == j || !ring.IsInf(x) {
				row[j] = 1
			}
		}
	}
	var err error
	for iter := 0; iter < log2Ceil(n); iter++ {
		reach, err = ccmm.MulBoolWith(net, engine, sc, reach, reach)
		if err != nil {
			return nil, err
		}
	}

	// Doubling search over U: at most log₂(n·maxW)+1 guesses.
	limit := int64(n) * maxW
	for u := int64(1); ; u *= 2 {
		if u > 2*limit {
			return nil, fmt.Errorf("distance: diameter search exceeded %d (internal invariant)", 2*limit)
		}
		d, err := apspBounded(net, engine, sc, w, u)
		if err != nil {
			return nil, err
		}
		// All-reachable check: one broadcast round.
		ok := make([]clique.Word, n)
		for v := 0; v < n; v++ {
			complete := clique.Word(1)
			for j := 0; j < n; j++ {
				if reach.Rows[v][j] != 0 && ring.IsInf(d.Rows[v][j]) {
					complete = 0
					break
				}
			}
			ok[v] = complete
		}
		done := true
		for _, f := range net.BroadcastWord(ok) {
			if f == 0 {
				done = false
				break
			}
		}
		if done {
			return d, nil
		}
	}
}
