// Package distance implements the paper's distance-computation algorithms
// (§3.3–3.4):
//
//   - APSPSemiring: exact weighted directed APSP via min-plus iterated
//     squaring with in-band witnesses and routing tables (Corollary 6).
//   - APSPSeidel: exact unweighted undirected APSP (Corollary 7, Lemma 17).
//   - DistanceProductSmall / APSPBounded / APSPSmallWeights: the
//     polynomial-ring embedding for small weights (Lemma 18, Lemma 19,
//     Corollary 8 with diameter doubling).
//   - ApproxDistanceProduct / APSPApprox: the (1+o(1))-approximation by
//     weight rounding (Lemma 20, Theorem 9).
//   - FindWitnesses: witness recovery for arbitrary distance-product
//     oracles (§3.4, Lemma 21) and routing-table construction from
//     distances.
package distance

import (
	"fmt"

	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/graphs"
	"github.com/algebraic-clique/algclique/internal/matrix"
	"github.com/algebraic-clique/algclique/internal/ring"
)

// Result bundles the outputs of an APSP computation. Dist[u][v] is the
// shortest-path distance (ring.Inf when unreachable). Next, when non-nil,
// is the routing table: Next[u][v] is the first hop after u on a shortest
// u→v path (the paper's R[u,v]), v itself for direct edges, u on the
// diagonal, and ring.NoWitness for unreachable pairs.
type Result struct {
	Dist *ccmm.RowMat[int64]
	Next *ccmm.RowMat[int64]
}

// weightRows distributes the weight matrix one row per node.
func weightRows(g *graphs.Weighted) *ccmm.RowMat[int64] {
	n := g.N()
	out := &ccmm.RowMat[int64]{Rows: make([][]int64, n)}
	for v := 0; v < n; v++ {
		row := make([]int64, n)
		copy(row, g.Matrix().Row(v))
		out.Rows[v] = row
	}
	return out
}

func checkWeightedSize(net *clique.Network, g *graphs.Weighted) error {
	if g.N() != net.N() {
		return fmt.Errorf("distance: graph has %d nodes on an %d-node clique: %w",
			g.N(), net.N(), ccmm.ErrSize)
	}
	return nil
}

// log2Ceil returns ⌈log₂ n⌉ for n ≥ 1.
func log2Ceil(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}

// ValidateRouting is a centralised test helper: it walks every routing-table
// path and confirms it realises the claimed distance within n hops.
func ValidateRouting(g *graphs.Weighted, dist, next *matrix.Dense[int64]) error {
	n := g.N()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			d := dist.At(u, v)
			if u == v {
				if d != 0 {
					return fmt.Errorf("distance: d(%d,%d) = %d, want 0", u, u, d)
				}
				continue
			}
			if ring.IsInf(d) {
				if next.At(u, v) != ring.NoWitness {
					return fmt.Errorf("distance: unreachable pair (%d,%d) has next hop %d", u, v, next.At(u, v))
				}
				continue
			}
			cur := u
			var total int64
			for steps := 0; cur != v; steps++ {
				if steps > n {
					return fmt.Errorf("distance: routing loop on pair (%d,%d)", u, v)
				}
				hop := next.At(cur, v)
				if hop < 0 || hop >= int64(n) {
					return fmt.Errorf("distance: bad next hop %d at (%d,%d)", hop, cur, v)
				}
				w := g.Weight(cur, int(hop))
				if ring.IsInf(w) {
					return fmt.Errorf("distance: routing uses non-edge (%d,%d)", cur, hop)
				}
				total += w
				cur = int(hop)
			}
			if total != d {
				return fmt.Errorf("distance: path for (%d,%d) has weight %d, distance says %d", u, v, total, d)
			}
		}
	}
	return nil
}
